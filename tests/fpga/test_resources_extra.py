"""Resource-model specifics: width riders, style pragmas, port scaling."""

import pytest

from repro.fpga.resources import (
    BRAM_THRESHOLD_BITS,
    estimate_resources,
)
from repro.hdl import Module, elaborate, when


def _with_ram(depth, width, read_ports=1, style=None, rider_width=0):
    m = Module("m")
    we = m.input("we", 1)
    addr_w = max(1, (depth - 1).bit_length())
    a = m.input("a", addr_w)
    d = m.input("d", width)
    mem = m.mem("mem", depth, width)
    if style:
        mem.meta["style"] = style
    if rider_width:
        rider = m.mem("tags", depth, rider_width)
        rider.meta["width_rider_of"] = mem
        with when(we):
            rider.write(a, 0)
    outs = []
    for i in range(read_ports):
        o = m.output(f"o{i}", width)
        o <<= mem.read((a + i).trunc(addr_w))
        outs.append(o)
    with when(we):
        mem.write(a, d)
    return m


class TestBramAccounting:
    def test_width_rider_adds_bram_width(self):
        # 64 x 30b = 1920b: below threshold alone; the 8b rider pushes the
        # combined word to 38b -> 64*38 = 2432b >= threshold AND two width
        # banks (38 > 32)
        base = estimate_resources(elaborate(_with_ram(64, 30)))
        riding = estimate_resources(elaborate(_with_ram(64, 30, rider_width=8)))
        assert base.brams == 0
        assert riding.brams == 2

    def test_rider_itself_costs_nothing(self):
        riding = estimate_resources(elaborate(_with_ram(512, 32, rider_width=4)))
        # one 36b-wide bank pair at depth 512: ceil(36/32)=2
        assert riding.brams == 2

    def test_distributed_pragma_forces_lutram(self):
        est = estimate_resources(
            elaborate(_with_ram(512, 32, style="distributed"))
        )
        assert est.brams == 0
        assert est.lutram_luts > 0

    def test_read_port_replication(self):
        one = estimate_resources(elaborate(_with_ram(512, 32, read_ports=1)))
        four = estimate_resources(elaborate(_with_ram(512, 32, read_ports=4)))
        assert four.brams > one.brams

    def test_threshold_constant_is_sane(self):
        assert 1024 <= BRAM_THRESHOLD_BITS <= 4096


class TestLutAccounting:
    def test_wider_logic_costs_more(self):
        def adder(width):
            m = Module("m")
            a = m.input("a", width)
            b = m.input("b", width)
            o = m.output("o", width)
            o <<= a + b
            return estimate_resources(elaborate(m)).total_luts

        assert adder(64) > adder(8)

    def test_rom_scales_with_ports(self):
        def rom_design(ports):
            m = Module("m")
            a = m.input("a", 8)
            rom = m.rom("rom", list(range(256)), 8)
            for i in range(ports):
                o = m.output(f"o{i}", 8)
                o <<= rom.read(a ^ i)
            return estimate_resources(elaborate(m)).rom_luts

        assert rom_design(4) == pytest.approx(4 * rom_design(1))
