"""Critical-path endpoint: the protection must be off the critical path."""

from repro.accel.baseline import AesAcceleratorBaseline
from repro.accel.protected import AesAcceleratorProtected
from repro.fpga import critical_path_endpoint, critical_path_levels
from repro.hdl import elaborate


def test_endpoint_is_the_aes_datapath_in_both_designs():
    base_levels, base_ep = critical_path_endpoint(
        elaborate(AesAcceleratorBaseline())
    )
    prot_levels, prot_ep = critical_path_endpoint(
        elaborate(AesAcceleratorProtected())
    )
    # same depth, and the endpoint is an AES stage register — the tag
    # checks never become the limiting path (Table 2's +0.0 % frequency)
    assert base_levels == prot_levels
    assert "pipe.sc" in base_ep and "data_r" in base_ep
    assert "pipe.sc" in prot_ep and "data_r" in prot_ep


def test_endpoint_matches_levels():
    nl = elaborate(AesAcceleratorProtected())
    levels, _ep = critical_path_endpoint(nl)
    assert levels == critical_path_levels(nl)
