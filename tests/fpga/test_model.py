"""Resource/timing model: unit behaviour plus the Table 2 shape."""

import pytest

from repro.accel.baseline import AesAcceleratorBaseline
from repro.accel.protected import AesAcceleratorProtected
from repro.fpga.report import PAPER_TABLE2, render_table2, table2_for_modules
from repro.fpga.resources import estimate_resources, overhead_percent
from repro.fpga.timing import critical_path_levels, fmax_mhz, timing_summary
from repro.hdl import Module, elaborate, when


def _tiny_design(regs=4, mem_bits=0, rom=False):
    m = Module("t")
    a = m.input("a", 8)
    b = m.input("b", 8)
    o = m.output("o", 8)
    acc = None
    for i in range(regs):
        r = m.reg(f"r{i}", 8)
        r <<= (a ^ b) + i
        acc = r
    if mem_bits:
        width = 32
        depth = mem_bits // width
        mem = m.mem("buf", depth, width)
        addr_w = max(1, (depth - 1).bit_length())
        with when(a[0]):
            mem.write(a[4:0].resize(addr_w), b.zext(32))
    if rom:
        table = m.rom("tab", list(range(256)), 8)
        o <<= table.read(a)
    else:
        o <<= acc
    return m


class TestResources:
    def test_ff_count_is_reg_bits(self):
        est = estimate_resources(elaborate(_tiny_design(regs=5)))
        assert est.ffs == 40

    def test_rom_costs_luts_not_bram(self):
        est = estimate_resources(elaborate(_tiny_design(rom=True)))
        assert est.brams == 0
        assert est.rom_luts > 20  # an 8-bit 256-entry table is ~40 LUTs

    def test_large_ram_costs_bram(self):
        est = estimate_resources(elaborate(_tiny_design(mem_bits=16384)))
        assert est.brams >= 1

    def test_small_ram_is_lutram(self):
        est = estimate_resources(elaborate(_tiny_design(mem_bits=512)))
        assert est.brams == 0
        assert est.lutram_luts > 0

    def test_overhead_percent(self):
        assert overhead_percent(100, 106) == pytest.approx(6.0)
        assert overhead_percent(0, 10) == 0.0


class TestTiming:
    def test_deeper_logic_is_slower(self):
        shallow = elaborate(_tiny_design(regs=1))
        m = Module("deep")
        a = m.input("a", 8)
        o = m.output("o", 8)
        x = a
        for _ in range(20):
            x = (x + 1) ^ a
        o <<= x
        deep = elaborate(m)
        assert critical_path_levels(deep) > critical_path_levels(shallow)
        assert fmax_mhz(deep) < fmax_mhz(shallow)

    def test_summary_fields(self):
        s = timing_summary(elaborate(_tiny_design()))
        assert set(s) == {"levels", "period_ns", "fmax_mhz"}


@pytest.fixture(scope="module")
def rows():
    return table2_for_modules(AesAcceleratorBaseline(), AesAcceleratorProtected())


class TestTable2Shape:
    """The paper's Table 2: who pays what, directionally."""

    def test_luts_overhead_small_and_positive(self, rows):
        assert 0 < rows["LUTs"].overhead < 15

    def test_luts_overhead_near_paper(self, rows):
        paper = PAPER_TABLE2["LUTs"][2]
        assert abs(rows["LUTs"].overhead - paper) < 3.0

    def test_ffs_overhead_positive(self, rows):
        assert rows["FFs"].overhead > 0

    def test_brams_overhead_positive(self, rows):
        assert 0 < rows["BRAMs"].overhead <= 15

    def test_frequency_unchanged(self, rows):
        """The protection sits off the critical path — the paper's
        headline 0.0 % frequency impact."""
        assert rows["Frequency (MHz)"].overhead == pytest.approx(0.0)

    def test_absolute_frequency_plausible(self, rows):
        assert 250 <= rows["Frequency (MHz)"].baseline <= 500

    def test_render_includes_paper_column(self, rows):
        text = render_table2(rows)
        assert "Paper" in text and "LUTs" in text
