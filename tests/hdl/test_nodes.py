import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hdl.nodes import (
    BinaryOp,
    Concat,
    Const,
    Downgrade,
    Mux,
    Slice,
    UnaryOp,
    WidthError,
    all_of,
    any_of,
    cat,
    declassify,
    lit,
    mux,
    mux_case,
    walk,
)

B8 = st.integers(min_value=0, max_value=255)


def c8(v):
    return Const(v, 8)


class TestConst:
    def test_in_range(self):
        assert Const(255, 8).value == 255

    def test_out_of_range(self):
        with pytest.raises(WidthError):
            Const(256, 8)

    def test_eval(self):
        assert Const(7, 4).eval_op([]) == 7


class TestOperatorSugar:
    def test_and_or_xor_widths(self):
        a, b = c8(0xF0), c8(0x0F)
        assert (a & b).eval_op([0xF0, 0x0F]) == 0
        assert (a | b).eval_op([0xF0, 0x0F]) == 0xFF
        assert (a ^ b).eval_op([0xF0, 0x0F]) == 0xFF

    def test_invert_masks(self):
        assert (~c8(0)).eval_op([0]) == 0xFF

    def test_add_wraps(self):
        assert (c8(200) + c8(100)).eval_op([200, 100]) == (300 & 0xFF)

    def test_sub_wraps(self):
        assert (c8(0) - c8(1)).eval_op([0, 1]) == 0xFF

    def test_comparisons_are_one_bit(self):
        assert c8(3).eq(3).width == 1
        assert c8(3).lt(4).eval_op([3, 4]) == 1
        assert c8(3).ge(4).eval_op([3, 4]) == 0

    def test_shift_keeps_width(self):
        n = c8(0x81) << 1
        assert n.width == 8
        assert n.eval_op([0x81, 1]) == 0x02

    def test_int_coercion(self):
        n = c8(1) + 2
        assert isinstance(n, BinaryOp)

    def test_no_python_truth_value(self):
        with pytest.raises(TypeError):
            bool(c8(1))

    def test_reductions(self):
        assert c8(0).red_or().eval_op([0]) == 0
        assert c8(1).red_or().eval_op([1]) == 1
        assert c8(0xFF).red_and().eval_op([0xFF]) == 1
        assert c8(0xFE).red_and().eval_op([0xFE]) == 0
        assert c8(0b0111).red_xor().eval_op([0b0111]) == 1

    def test_is_zero(self):
        n = c8(0).is_zero()
        inner = n.a.eval_op([0])
        assert n.eval_op([inner]) == 1


class TestSlice:
    def test_getitem_slice(self):
        n = c8(0xAB)[7:4]
        assert n.width == 4
        assert n.eval_op([0xAB]) == 0xA

    def test_single_bit(self):
        assert c8(0x80)[7].eval_op([0x80]) == 1

    def test_out_of_range(self):
        with pytest.raises(WidthError):
            Slice(c8(0), 8, 0)

    def test_reversed_bounds(self):
        with pytest.raises(WidthError):
            Slice(c8(0), 2, 5)

    def test_step_rejected(self):
        with pytest.raises(ValueError):
            c8(0)[7:0:2]


class TestConcat:
    def test_msb_first(self):
        n = cat(Const(0xA, 4), Const(0xB, 4))
        assert n.width == 8
        assert n.eval_op([0xA, 0xB]) == 0xAB

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Concat([])

    def test_zext(self):
        n = Const(0x3, 2).zext(8)
        assert n.width == 8

    def test_zext_narrower_rejected(self):
        with pytest.raises(WidthError):
            c8(0).zext(4)

    def test_trunc(self):
        assert c8(0xAB).trunc(4).eval_op([0xAB]) == 0xB


class TestMux:
    def test_selects(self):
        m = Mux(Const(1, 1), c8(5), c8(9))
        assert m.eval_op([1, 5, 9]) == 5
        assert m.eval_op([0, 5, 9]) == 9

    def test_width_harmonised(self):
        m = Mux(Const(1, 1), Const(1, 4), c8(0))
        assert m.width == 8

    def test_mux_case_priority(self):
        n = mux_case(c8(0), [(Const(1, 1), c8(1)), (Const(1, 1), c8(2))])
        # earlier entries take priority: outermost mux is the first case
        assert n.sel.value == 1
        assert n.if_true.value == 1


class TestReduceHelpers:
    def test_all_of_empty_is_true(self):
        assert all_of().value == 1

    def test_any_of_empty_is_false(self):
        assert any_of().value == 0

    def test_all_of_single_passthrough(self):
        a = Const(1, 1)
        assert all_of(a) is a

    def test_balanced_depth(self):
        conds = [Const(1, 1) for _ in range(32)]
        tree = all_of(*conds)

        def depth(n):
            ops = n.operands()
            return 1 + max((depth(o) for o in ops), default=0)

        assert depth(tree) <= 7  # log2(32)+1, not 32


class TestDowngrade:
    def test_identity_semantics(self):
        n = declassify(c8(7), None, None)
        assert isinstance(n, Downgrade)
        assert n.eval_op([7]) == 7

    def test_bad_kind(self):
        with pytest.raises(ValueError):
            Downgrade(c8(0), "launder", None, None)


class TestWalk:
    def test_operands_before_users(self):
        a, b = c8(1), c8(2)
        n = a + b
        order = walk([n])
        assert order.index(a) < order.index(n)
        assert order.index(b) < order.index(n)

    def test_shared_nodes_once(self):
        a = c8(1)
        n = a + a
        order = walk([n])
        assert order.count(a) == 1


class TestEvalAgainstPython:
    @given(B8, B8)
    def test_binary_ops_match_python(self, x, y):
        cases = {
            "and": x & y,
            "or": x | y,
            "xor": x ^ y,
            "add": (x + y) & 0xFF,
            "sub": (x - y) & 0xFF,
            "mul": (x * y) & 0xFF,
            "eq": int(x == y),
            "lt": int(x < y),
            "ge": int(x >= y),
        }
        for op, want in cases.items():
            node = BinaryOp(op, c8(x), c8(y))
            assert node.eval_op([x, y]) == want, op

    @given(B8, st.integers(min_value=0, max_value=7))
    def test_shifts_match_python(self, x, s):
        shl = BinaryOp("shl", c8(x), Const(s, 3))
        shr = BinaryOp("shr", c8(x), Const(s, 3))
        assert shl.eval_op([x, s]) == (x << s) & 0xFF
        assert shr.eval_op([x, s]) == x >> s

    @given(B8)
    def test_slice_concat_roundtrip(self, x):
        hi, lo = c8(x)[7:4], c8(x)[3:0]
        joined = cat(hi, lo)
        assert joined.eval_op([x >> 4, x & 0xF]) == x
