import pytest

from repro.hdl import HdlError, Module, Simulator, when
from repro.hdl.memory import rom


class TestMemApi:
    def test_depth_positive(self):
        m = Module("m")
        with pytest.raises(ValueError):
            m.mem("bad", 0, 8)

    def test_init_length_checked(self):
        m = Module("m")
        with pytest.raises(HdlError):
            m.mem("bad", 4, 8, init=[1, 2, 3])

    def test_init_values_checked(self):
        m = Module("m")
        with pytest.raises(HdlError):
            m.mem("bad", 2, 8, init=[0, 256])

    def test_write_width_checked(self):
        m = Module("m")
        mem = m.mem("mem", 4, 8)
        wide = m.input("wide", 16)
        with pytest.raises(HdlError):
            mem.write(0, wide)

    def test_narrow_write_zero_extends(self):
        m = Module("m")
        we = m.input("we", 1)
        mem = m.mem("mem", 4, 8)
        out = m.output("out", 8)
        out <<= mem.read(0)
        with when(we):
            mem.write(0, m.input("din", 4))
        sim = Simulator(m)
        sim.poke("m.we", 1)
        sim.poke("m.din", 0xF)
        sim.step()
        assert sim.peek_mem("m.mem", 0) == 0x0F

    def test_rom_helper(self):
        m = Module("m")
        r = m.rom("tab", [5, 6, 7], 8)
        assert r.is_rom()
        assert r.depth == 3

    def test_is_rom_flips_on_write(self):
        m = Module("m")
        mem = m.mem("mem", 4, 8)
        assert mem.is_rom()
        mem.write(0, 1)
        assert not mem.is_rom()

    def test_addr_width(self):
        m = Module("m")
        assert m.mem("a", 8, 8).addr_width == 3
        assert m.mem("b", 9, 8).addr_width == 4
        assert m.mem("c", 1, 8).addr_width == 1

    def test_multiple_writes_same_cycle_last_wins(self):
        m = Module("m")
        we = m.input("we", 1)
        mem = m.mem("mem", 4, 8)
        out = m.output("out", 8)
        out <<= mem.read(0)
        with when(we):
            mem.write(0, 0x11)
            mem.write(0, 0x22)  # program order: later write wins
        sim = Simulator(m)
        sim.poke("m.we", 1)
        sim.step()
        assert sim.peek_mem("m.mem", 0) == 0x22

    def test_read_during_write_returns_old_value(self):
        m = Module("m")
        we = m.input("we", 1)
        mem = m.mem("mem", 4, 8, init=[9, 0, 0, 0])
        out = m.output("out", 8)
        out <<= mem.read(0)
        with when(we):
            mem.write(0, 0x55)
        sim = Simulator(m)
        sim.poke("m.we", 1)
        assert sim.peek("m.out") == 9  # synchronous write: old value visible
        sim.step()
        assert sim.peek("m.out") == 0x55

    def test_module_level_rom_free_function(self):
        m = Module("m")
        r = rom("t", m, [1, 2, 3, 4], 8)
        assert r.depth == 4 and r.width == 8
