import pytest

from repro.hdl import Module, Simulator, elaborate, elaborate_shallow, when
from repro.hdl.nodes import HdlError


class Inner(Module):
    def __init__(self):
        super().__init__("inner")
        self.i = self.input("i", 8)
        self.o = self.output("o", 8)
        self.state = self.reg("state", 8)
        self.scratch = self.mem("scratch", 4, 8)
        self.state <<= self.i + 1
        self.o <<= self.state
        with when(self.i[0]):
            self.scratch.write(self.i[2:1], self.i)


class Outer(Module):
    def __init__(self):
        super().__init__("outer")
        self.x = self.input("x", 8)
        self.y = self.output("y", 8)
        self.child = self.submodule(Inner())
        self.child.i <<= self.x
        self.y <<= self.child.o + self.child.scratch.read(0)


class TestFlatElaboration:
    def test_hierarchy_flattened(self):
        nl = elaborate(Outer())
        paths = {s.path for s in nl.signals}
        assert "outer.x" in paths
        assert "outer.inner.state" in paths

    def test_only_root_inputs_free(self):
        nl = elaborate(Outer())
        free = {s.path for s in nl.inputs}
        assert free == {"outer.x"}

    def test_child_input_is_driven_comb(self):
        nl = elaborate(Outer())
        child_i = nl.signal_by_path("outer.inner.i")
        assert child_i in nl.drivers

    def test_simulates(self):
        sim = Simulator(Outer())
        sim.poke("outer.x", 5)
        sim.step()
        assert sim.peek("outer.y") == 6

    def test_stats(self):
        nl = elaborate(Outer())
        stats = nl.stats()
        assert stats["regs"] == 1
        assert stats["mems"] == 1
        assert stats["nodes"] > 0


class TestShallowElaboration:
    def test_child_outputs_free(self):
        nl = elaborate_shallow(Outer())
        free = {s.path for s in nl.inputs}
        assert "outer.inner.o" in free
        assert "outer.x" in free

    def test_child_internals_absent(self):
        nl = elaborate_shallow(Outer())
        paths = {s.path for s in nl.signals}
        assert "outer.inner.state" not in paths
        assert "outer.inner.i" in paths  # ports stay

    def test_child_mems_read_only(self):
        nl = elaborate_shallow(Outer())
        mems = {m.path: m for m in nl.mems}
        assert "outer.inner.scratch" in mems
        assert nl.mem_writes[mems["outer.inner.scratch"]] == []

    def test_undriven_child_input_rejected(self):
        top = Module("t")
        top.submodule(Inner())  # nobody drives inner.i
        with pytest.raises(HdlError):
            elaborate_shallow(top)


class TestMemReachability:
    def test_foreign_mem_read_rejected(self):
        other = Module("other")
        foreign = other.mem("foreign", 4, 8)

        m = Module("m")
        a = m.input("a", 2)
        o = m.output("o", 8)
        o <<= foreign.read(a)
        with pytest.raises(HdlError):
            elaborate(m)
