import pytest

from repro.hdl import (
    HdlError,
    Module,
    Simulator,
    elaborate,
    elsewhen,
    otherwise,
    when,
)
from repro.hdl.signal import SignalKind


class TestDeclarations:
    def test_duplicate_name_rejected(self):
        m = Module("m")
        m.wire("x", 4)
        with pytest.raises(HdlError):
            m.wire("x", 4)

    def test_signal_kinds(self):
        m = Module("m")
        assert m.input("i", 1).kind_ is SignalKind.INPUT
        assert m.output("o", 1, default=0).kind_ is SignalKind.OUTPUT
        assert m.wire("w", 1, default=0).kind_ is SignalKind.WIRE
        assert m.reg("r", 1).kind_ is SignalKind.REG

    def test_paths(self):
        parent = Module("top")
        child = parent.submodule(Module("sub"))
        sig = child.wire("w", 1, default=0)
        assert sig.path == "top.sub.w"

    def test_submodule_unique_instance_names(self):
        parent = Module("top")
        a = parent.submodule(Module("sub"))
        b = parent.submodule(Module("sub"))
        assert a.inst_name != b.inst_name

    def test_reparenting_rejected(self):
        p1, p2 = Module("a"), Module("b")
        child = Module("c")
        p1.submodule(child)
        with pytest.raises(HdlError):
            p2.submodule(child)

    def test_init_must_fit(self):
        m = Module("m")
        with pytest.raises(HdlError):
            m.reg("r", 4, init=16)


class TestWhenSemantics:
    def _build(self):
        m = Module("m")
        m.a = m.input("a", 1)
        m.b = m.input("b", 1)
        m.out = m.output("out", 8, default=0)
        return m

    def test_when_otherwise(self):
        m = self._build()
        with when(m.a):
            m.out <<= 1
        with otherwise():
            m.out <<= 2
        sim = Simulator(m)
        sim.poke("m.a", 1)
        assert sim.peek("m.out") == 1
        sim.poke("m.a", 0)
        assert sim.peek("m.out") == 2

    def test_elsewhen_chain(self):
        m = self._build()
        with when(m.a):
            m.out <<= 1
        with elsewhen(m.b):
            m.out <<= 2
        with otherwise():
            m.out <<= 3
        sim = Simulator(m)
        for a, b, want in [(1, 0, 1), (1, 1, 1), (0, 1, 2), (0, 0, 3)]:
            sim.poke("m.a", a)
            sim.poke("m.b", b)
            assert sim.peek("m.out") == want

    def test_last_assignment_wins(self):
        m = self._build()
        m.out <<= 5
        with when(m.a):
            m.out <<= 7
        m.out <<= 9  # unconditional later assignment overrides everything
        sim = Simulator(m)
        sim.poke("m.a", 1)
        assert sim.peek("m.out") == 9

    def test_nested_when(self):
        m = self._build()
        with when(m.a):
            with when(m.b):
                m.out <<= 3
        sim = Simulator(m)
        sim.poke("m.a", 1)
        sim.poke("m.b", 0)
        assert sim.peek("m.out") == 0
        sim.poke("m.b", 1)
        assert sim.peek("m.out") == 3

    def test_orphan_otherwise_rejected(self):
        Module("fresh")  # starting a module clears any previous chain
        with pytest.raises(HdlError):
            with otherwise():
                pass

    def test_orphan_elsewhen_rejected(self):
        Module("fresh")
        with pytest.raises(HdlError):
            with elsewhen(1):
                pass

    def test_chain_does_not_leak_across_modules(self):
        m1 = self._build()
        with when(m1.a):
            m1.out <<= 1
        # constructing a new module clears m1's chain: an otherwise here
        # must not silently attach to it
        Module("m2")
        with pytest.raises(HdlError):
            with otherwise():
                pass


class TestAssignmentRules:
    def test_top_input_not_assignable(self):
        m = Module("m")
        i = m.input("i", 1)
        with pytest.raises(HdlError):
            i <<= 1

    def test_conditional_only_without_default_rejected(self):
        m = Module("m")
        a = m.input("a", 1)
        w = m.wire("w", 4)  # no default
        with when(a):
            w <<= 3
        with pytest.raises(HdlError):
            elaborate(m)

    def test_undriven_wire_rejected(self):
        m = Module("m")
        m.wire("w", 4)
        with pytest.raises(HdlError):
            elaborate(m)

    def test_too_wide_driver_rejected(self):
        m = Module("m")
        w = m.wire("w", 4, default=0)
        with pytest.raises(HdlError):
            w <<= m.input("i", 8)

    def test_narrow_driver_zero_extended(self):
        m = Module("m")
        i = m.input("i", 4)
        w = m.output("w", 8)
        w <<= i
        sim = Simulator(m)
        sim.poke("m.i", 0xF)
        assert sim.peek("m.w") == 0x0F

    def test_register_holds_without_assignment(self):
        m = Module("m")
        en = m.input("en", 1)
        r = m.reg("r", 8, init=42)
        with when(en):
            r <<= 7
        sim = Simulator(m)
        sim.step(3)
        assert sim.peek("m.r") == 42
        sim.poke("m.en", 1)
        sim.step()
        assert sim.peek("m.r") == 7


class TestCombLoop:
    def test_detected(self):
        from repro.hdl import CombLoopError

        m = Module("m")
        a = m.wire("a", 1, default=0)
        b = m.wire("b", 1, default=0)
        a <<= b
        b <<= a
        with pytest.raises(CombLoopError):
            elaborate(m)

    def test_register_breaks_loop(self):
        m = Module("m")
        r = m.reg("r", 1)
        w = m.wire("w", 1, default=0)
        w <<= ~r
        r <<= w
        sim = Simulator(m)
        v0 = sim.peek("m.r")
        sim.step()
        assert sim.peek("m.r") == 1 - v0
