"""Differential tests: every backend must match the interpreter.

The compiled and batched (lanes=1) backends are each run against the
same stimuli as the reference interpreter; the batched cases skip
cleanly when numpy is unavailable.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hdl import Module, Simulator, cat, mux, otherwise, when
from repro.hdl.nodes import HdlError, UnknownMemoryError, UnknownSignalError

BACKENDS = ("compiled", "interp", "batched")


def _make_sim(module, backend):
    if backend == "batched":
        pytest.importorskip("numpy")
    return Simulator(module, backend=backend)


class Alu(Module):
    """A small ALU exercising most node kinds."""

    def __init__(self):
        super().__init__("alu")
        self.op = self.input("op", 3)
        self.a = self.input("a", 16)
        self.b = self.input("b", 16)
        self.acc = self.reg("acc", 16)
        self.res = self.output("res", 16, default=0)

        with when(self.op.eq(0)):
            self.res <<= self.a + self.b
        with elsewhen_(self.op, 1):
            self.res <<= self.a - self.b
        with elsewhen_(self.op, 2):
            self.res <<= self.a & self.b
        with elsewhen_(self.op, 3):
            self.res <<= self.a ^ self.b
        with elsewhen_(self.op, 4):
            self.res <<= mux(self.a.lt(self.b), self.a, self.b)
        with elsewhen_(self.op, 5):
            self.res <<= cat(self.a[7:0], self.b[7:0])
        with otherwise():
            self.res <<= self.acc
        self.acc <<= self.res


def elsewhen_(sig, v):
    from repro.hdl import elsewhen

    return elsewhen(sig.eq(v))


class MemUnit(Module):
    def __init__(self):
        super().__init__("mu")
        self.we = self.input("we", 1)
        self.addr = self.input("addr", 4)
        self.din = self.input("din", 8)
        self.m = self.mem("m", 12, 8)  # non-power-of-two depth
        self.rom = self.rom("rom", [i * 3 % 251 for i in range(16)], 8)
        self.dout = self.output("dout", 8)
        self.romout = self.output("romout", 8)
        self.dout <<= self.m.read(self.addr)
        self.romout <<= self.rom.read(self.addr)
        with when(self.we):
            self.m.write(self.addr, self.din)


def _run_sequence(backend, stimuli):
    sim = _make_sim(Alu(), backend)
    trace = []
    for op, a, b in stimuli:
        sim.poke("alu.op", op)
        sim.poke("alu.a", a)
        sim.poke("alu.b", b)
        trace.append((sim.peek("alu.res"), sim.peek("alu.acc")))
        sim.step()
    return trace


class TestBackendEquivalence:
    @pytest.mark.parametrize("backend", ["compiled", "batched"])
    def test_alu_random_differential(self, backend):
        rng = random.Random(1234)
        stimuli = [
            (rng.randrange(8), rng.getrandbits(16), rng.getrandbits(16))
            for _ in range(200)
        ]
        assert _run_sequence(backend, stimuli) == _run_sequence(
            "interp", stimuli
        )

    @pytest.mark.parametrize("backend", ["compiled", "batched"])
    @settings(max_examples=25, deadline=None)
    @given(stimuli=st.lists(
        st.tuples(
            st.integers(0, 7), st.integers(0, 0xFFFF), st.integers(0, 0xFFFF)
        ),
        min_size=1, max_size=20,
    ))
    def test_alu_property_differential(self, backend, stimuli):
        assert _run_sequence(backend, stimuli) == _run_sequence(
            "interp", stimuli
        )

    def test_memory_differential(self):
        rng = random.Random(99)
        sims = {b: _make_sim(MemUnit(), b) for b in BACKENDS}
        for _ in range(100):
            we, addr, din = rng.randrange(2), rng.randrange(16), rng.getrandbits(8)
            outs = {}
            for b, sim in sims.items():
                sim.poke("mu.we", we)
                sim.poke("mu.addr", addr)
                sim.poke("mu.din", din)
                outs[b] = (sim.peek("mu.dout"), sim.peek("mu.romout"))
                sim.step()
            assert outs["compiled"] == outs["interp"] == outs["batched"]

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_out_of_range_mem_read_is_zero(self, backend):
        sim = _make_sim(MemUnit(), backend)
        sim.poke("mu.addr", 14)  # beyond depth 12
        assert sim.peek("mu.dout") == 0

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_out_of_range_mem_write_dropped(self, backend):
        sim = _make_sim(MemUnit(), backend)
        sim.poke("mu.we", 1)
        sim.poke("mu.addr", 15)
        sim.poke("mu.din", 0xAA)
        sim.step()  # must not raise
        assert all(
            sim.peek_mem("mu.m", i) == 0 for i in range(12)
        )


class TestSimulatorApi:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_poke_rejects_oversize(self, backend):
        sim = _make_sim(MemUnit(), backend)
        with pytest.raises(ValueError):
            sim.poke("mu.din", 256)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_poke_non_input_rejected(self, backend):
        from repro.hdl import HdlError

        sim = _make_sim(MemUnit(), backend)
        with pytest.raises(HdlError):
            sim.poke("mu.dout", 1)

    def test_lanes_require_batched_backend(self):
        with pytest.raises(ValueError):
            Simulator(MemUnit(), backend="compiled", lanes=4)

    def test_reset(self):
        sim = Simulator(MemUnit())
        sim.poke("mu.we", 1)
        sim.poke("mu.addr", 3)
        sim.poke("mu.din", 55)
        sim.step()
        assert sim.peek_mem("mu.m", 3) == 55
        sim.reset()
        assert sim.peek_mem("mu.m", 3) == 0
        assert sim.cycle == 0

    def test_poke_mem_backdoor(self):
        sim = Simulator(MemUnit())
        sim.poke_mem("mu.m", 5, 0x7E)
        sim.poke("mu.addr", 5)
        assert sim.peek("mu.dout") == 0x7E

    def test_run_until_timeout(self):
        sim = Simulator(MemUnit())
        with pytest.raises(TimeoutError):
            sim.run_until("mu.dout", 1, max_cycles=5)

    def test_unknown_signal(self):
        sim = Simulator(MemUnit())
        # UnknownSignalError subclasses both HdlError and KeyError, names
        # the missing path and the scope searched, and str() must be the
        # plain message (KeyError's repr-quoting would mangle it)
        with pytest.raises(HdlError, match=r"mu\.nope"):
            sim.peek("mu.nope")
        with pytest.raises(KeyError):
            sim.peek("mu.nope")
        with pytest.raises(UnknownSignalError) as exc:
            sim.poke("mu.nope", 1)
        assert "mu.nope" in str(exc.value)
        assert "netlist of module" in str(exc.value)
        assert not str(exc.value).startswith("'")

    def test_unknown_memory(self):
        sim = Simulator(MemUnit())
        with pytest.raises(UnknownMemoryError, match=r"mu\.nomem"):
            sim.peek_mem("mu.nomem", 0)
        with pytest.raises(KeyError):
            sim.poke_mem("mu.nomem", 0, 1)
