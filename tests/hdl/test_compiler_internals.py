"""Compiled backend specifics: codegen coverage for every node kind."""

import pytest

from repro.hdl import Module, Simulator, cat, declassify, lit, mux, when
from repro.hdl.elaborate import elaborate
from repro.hdl.sim.compiler import CompiledBackend
from repro.ifc.label import Label
from repro.ifc.lattice import two_point

TP = two_point()
P_T = Label(TP, "public", "trusted")


class Kitchen(Module):
    """Every operator in one module (codegen coverage)."""

    def __init__(self):
        super().__init__("k")
        a = self.input("a", 8)
        b = self.input("b", 8)
        self.a, self.b = a, b
        o1 = self.output("redand", 8)
        o1 <<= a.red_and().zext(8)
        o2 = self.output("redxor", 8)
        o2 <<= a.red_xor().zext(8)
        o3 = self.output("sub", 8)
        o3 <<= a - b
        o4 = self.output("le", 1)
        o4 <<= a.le(b)
        o5 = self.output("gt", 1)
        o5 <<= a.gt(b)
        o6 = self.output("shr_dyn", 8)
        o6 <<= a >> b[2:0]
        o7 = self.output("dg", 8)
        o7 <<= declassify(a, P_T, P_T)
        o8 = self.output("slice_id", 8)
        o8 <<= a[7:0]  # full-width slice: identity codegen path
        o9 = self.output("cat3", 8)
        o9 <<= cat(a[7:6], b[3:0], a[1:0])


@pytest.fixture(scope="module")
def sim():
    return Simulator(Kitchen())


class TestCodegen:
    def test_reductions(self, sim):
        sim.poke("k.a", 0xFF)
        assert sim.peek("k.redand") == 1
        sim.poke("k.a", 0xFE)
        assert sim.peek("k.redand") == 0
        sim.poke("k.a", 0b0110)
        assert sim.peek("k.redxor") == 0
        sim.poke("k.a", 0b0111)
        assert sim.peek("k.redxor") == 1

    def test_sub_and_compares(self, sim):
        sim.poke("k.a", 5)
        sim.poke("k.b", 9)
        assert sim.peek("k.sub") == (5 - 9) & 0xFF
        assert sim.peek("k.le") == 1
        assert sim.peek("k.gt") == 0

    def test_dynamic_shift(self, sim):
        sim.poke("k.a", 0x80)
        sim.poke("k.b", 3)
        assert sim.peek("k.shr_dyn") == 0x10

    def test_downgrade_is_identity_in_sim(self, sim):
        sim.poke("k.a", 0x3C)
        assert sim.peek("k.dg") == 0x3C

    def test_identity_slice(self, sim):
        sim.poke("k.a", 0xAB)
        assert sim.peek("k.slice_id") == 0xAB

    def test_concat_layout(self, sim):
        sim.poke("k.a", 0b11000010)
        sim.poke("k.b", 0b00001111)
        # cat(a[7:6], b[3:0], a[1:0]) = 11 | 1111 | 10
        assert sim.peek("k.cat3") == 0b11111110


class TestGeneratedSource:
    def test_source_is_compilable_text(self):
        be = CompiledBackend(elaborate(Kitchen()))
        assert "def eval_comb(state, mems, env):" in be.source
        assert "def step(state, mems, env):" in be.source
        compile(be.source, "<test>", "exec")  # must not raise

    def test_rom_read_unguarded_when_pow2(self):
        m = Module("m")
        a = m.input("a", 8)
        rom = m.rom("rom", list(range(256)), 8)
        out = m.output("out", 8)
        out <<= rom.read(a)
        be = CompiledBackend(elaborate(m))
        # power-of-two depth covering the address space: direct index
        assert "if" not in be.source.split("def step")[0].split("mems[0]")[1][:30]

    def test_non_pow2_mem_guarded(self):
        m = Module("m")
        a = m.input("a", 4)
        mem = m.mem("mem", 12, 8)
        out = m.output("out", 8)
        out <<= mem.read(a)
        with when(a[0]):
            mem.write(a, 1)
        be = CompiledBackend(elaborate(m))
        assert "< 12" in be.source
