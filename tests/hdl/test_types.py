import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hdl.types import Bool, UInt, bit_length_for, check_width, fits, mask_for


class TestMaskFor:
    def test_small_widths(self):
        assert mask_for(1) == 1
        assert mask_for(8) == 0xFF
        assert mask_for(128) == (1 << 128) - 1

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            mask_for(0)
        with pytest.raises(ValueError):
            mask_for(-3)

    @given(st.integers(min_value=1, max_value=512))
    def test_mask_is_all_ones(self, w):
        m = mask_for(w)
        assert m.bit_length() == w
        assert m & (m + 1) == 0


class TestFits:
    def test_bounds(self):
        assert fits(0, 1)
        assert fits(255, 8)
        assert not fits(256, 8)
        assert not fits(-1, 8)

    @given(st.integers(min_value=1, max_value=200), st.integers(min_value=0))
    def test_fits_iff_within_mask(self, w, v):
        assert fits(v, w) == (v <= mask_for(w))


class TestCheckWidth:
    def test_accepts_ints(self):
        assert check_width(7) == 7

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            check_width(True)

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            check_width(0)

    def test_rejects_str(self):
        with pytest.raises(TypeError):
            check_width("8")


class TestBitLengthFor:
    def test_examples(self):
        assert bit_length_for(1) == 1
        assert bit_length_for(2) == 1
        assert bit_length_for(3) == 2
        assert bit_length_for(256) == 8
        assert bit_length_for(257) == 9

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            bit_length_for(0)

    @given(st.integers(min_value=2, max_value=1 << 20))
    def test_covers_all_indices(self, n):
        w = bit_length_for(n)
        assert (1 << w) >= n
        assert (1 << (w - 1)) < n or w == 1


class TestUInt:
    def test_repr_and_mask(self):
        t = UInt(12)
        assert t.width == 12
        assert t.mask() == 0xFFF
        assert "12" in repr(t)

    def test_bool_is_one_bit(self):
        assert Bool().width == 1
