"""Differential fuzzing of the batched backend.

The batched backend re-implements the whole netlist evaluator on numpy
vectors, with enough codegen tricks (byte slabs, mask-multiplied muxes,
fused masked commits) that "looks right" is worthless.  The ground truth
is the two scalar backends: for random stimulus, **every** signal —
combinational and registered — must match the interpreter and the
compiled backend bit-for-bit, cycle by cycle, in every lane.
"""

import random

import pytest

np = pytest.importorskip("numpy")

from repro.accel.mini import MiniTaggedPipeline
from repro.accel.protected import AesAcceleratorProtected
from repro.hdl import HdlError, Simulator, elaborate
from repro.hdl.sim import BatchSimulator
from repro.hdl.sim.batched import batch_cache_stats, clear_batch_cache
from repro.hdl.sim.compiler import clear_compile_cache, compile_cache_stats


def _fuzz_against_scalar_backends(design, cycles, lanes, seed):
    """Drive all three backends with one random stream; compare everything."""
    nl = elaborate(design)
    interp = Simulator(nl, backend="interp")
    compiled = Simulator(nl, backend="compiled")
    batched = BatchSimulator(nl, lanes=lanes)

    rng = random.Random(seed)
    inputs = list(nl.inputs)
    watched = list(nl.comb) + list(nl.regs)
    for cyc in range(cycles):
        for sig in inputs:
            v = rng.getrandbits(sig.width)
            interp.poke(sig, v)
            compiled.poke(sig, v)
            batched.poke_all(sig, v)
        for sig in watched:
            vi = interp.peek(sig)
            vc = compiled.peek(sig)
            vb = batched.peek_all(sig)
            assert vi == vc and all(v == vi for v in vb), (
                f"cycle {cyc}, {sig.path}: interp={vi:#x} compiled={vc:#x} "
                f"batched={vb}"
            )
        interp.step()
        compiled.step()
        batched.step()


class TestDifferentialFuzz:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_mini_pipeline_all_signals(self, seed):
        _fuzz_against_scalar_backends(MiniTaggedPipeline(), cycles=100,
                                      lanes=3, seed=seed)

    @pytest.mark.slow
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_protected_accelerator_all_signals(self, seed):
        _fuzz_against_scalar_backends(AesAcceleratorProtected(), cycles=100,
                                      lanes=2, seed=seed)


class TestLaneIndependence:
    def test_lanes_track_independent_scalar_runs(self):
        """Each lane with its own stimulus == its own scalar simulator."""
        lanes = 4
        nl = elaborate(MiniTaggedPipeline())
        batched = BatchSimulator(nl, lanes=lanes)
        refs = [Simulator(nl, backend="compiled") for _ in range(lanes)]
        rngs = [random.Random(100 + ln) for ln in range(lanes)]

        inputs = list(nl.inputs)
        watched = list(nl.comb) + list(nl.regs)
        for cyc in range(60):
            for sig in inputs:
                for ln in range(lanes):
                    v = rngs[ln].getrandbits(sig.width)
                    batched.poke(sig, ln, v)
                    refs[ln].poke(sig, v)
            for sig in watched:
                got = batched.peek_all(sig)
                want = [refs[ln].peek(sig) for ln in range(lanes)]
                assert got == want, f"cycle {cyc}, {sig.path}"
            batched.step()
            for ref in refs:
                ref.step()

    def test_poke_all_accepts_per_lane_sequence(self):
        nl = elaborate(MiniTaggedPipeline())
        bs = BatchSimulator(nl, lanes=3)
        sig = next(iter(nl.inputs))
        bs.poke_all(sig, [1, 0, 1])
        assert bs.peek_all(sig) == [1, 0, 1]
        assert bs.peek(sig, 1) == 0


class TestBatchCompileCache:
    def test_batched_programs_shared_by_fingerprint(self):
        clear_batch_cache()
        nl1 = elaborate(MiniTaggedPipeline())
        nl2 = elaborate(MiniTaggedPipeline())
        assert nl1.fingerprint() == nl2.fingerprint()
        b1 = BatchSimulator(nl1, lanes=1)
        stats = batch_cache_stats()
        assert stats["misses"] == 1 and stats["entries"] == 1
        # same structure, different lane count: code is reused, only the
        # per-instance arrays are rebuilt
        b2 = BatchSimulator(nl2, lanes=8)
        stats = batch_cache_stats()
        assert stats["hits"] == 1 and stats["entries"] == 1
        assert b1._be.source == b2._be.source

    def test_distinct_designs_get_distinct_entries(self):
        clear_batch_cache()
        BatchSimulator(elaborate(MiniTaggedPipeline()), lanes=1)
        fp_mini = elaborate(MiniTaggedPipeline()).fingerprint()
        fp_prot = elaborate(AesAcceleratorProtected()).fingerprint()
        assert fp_mini != fp_prot

    def test_compiled_backend_cache_counts_hits(self):
        clear_compile_cache()
        Simulator(elaborate(MiniTaggedPipeline()), backend="compiled")
        Simulator(elaborate(MiniTaggedPipeline()), backend="compiled")
        stats = compile_cache_stats()
        assert stats["misses"] == 1 and stats["hits"] == 1


class TestBatchSimulatorApi:
    def setup_method(self):
        self.nl = elaborate(MiniTaggedPipeline())
        self.input = next(iter(self.nl.inputs))
        self.non_input = next(iter(self.nl.comb))

    def test_poke_non_input_raises(self):
        bs = BatchSimulator(self.nl, lanes=2)
        with pytest.raises(HdlError):
            bs.poke(self.non_input, 0, 1)
        with pytest.raises(HdlError):
            bs.poke_all(self.non_input, 1)

    def test_engine_poke_non_input_raises_on_every_backend(self):
        # regression for the input-set membership check: it must use the
        # hoisted frozenset, not accidentally accept any known signal
        for backend in ("interp", "compiled", "batched"):
            sim = Simulator(self.nl, backend=backend)
            with pytest.raises(HdlError):
                sim.poke(self.non_input, 1)

    def test_poke_oversized_value_raises(self):
        bs = BatchSimulator(self.nl, lanes=1)
        with pytest.raises(ValueError):
            bs.poke(self.input, 0, 1 << self.input.width)

    def test_bad_lane_counts_rejected(self):
        with pytest.raises(ValueError):
            BatchSimulator(self.nl, lanes=0)
        with pytest.raises(ValueError):
            Simulator(self.nl, backend="compiled", lanes=4)

    def test_reset_restores_register_inits(self):
        bs = BatchSimulator(self.nl, lanes=2)
        rng = random.Random(9)
        for _ in range(10):
            for sig in self.nl.inputs:
                bs.poke_all(sig, rng.getrandbits(sig.width))
            bs.step()
        bs.reset()
        for sig in self.nl.inputs:
            bs.poke_all(sig, 0)
        for reg in self.nl.regs:
            assert bs.peek_all(reg) == [reg.init] * 2
