import os

import pytest

from repro.hdl import HdlError, Module, Simulator, lit, mux, when
from repro.hdl.sim.trace import Trace, read_vcd, vcd_ident


class Counter(Module):
    def __init__(self):
        super().__init__("c")
        self.en = self.input("en", 1)
        self.count = self.reg("count", 8)
        with when(self.en):
            self.count <<= self.count + 1


def test_trace_records_per_cycle():
    sim = Simulator(Counter())
    tr = Trace(sim, ["c.count", "c.en"])
    sim.poke("c.en", 1)
    sim.step(5)
    assert len(tr) == 5
    assert tr.column("c.count") == [0, 1, 2, 3, 4]


def test_trace_at_cycle():
    sim = Simulator(Counter())
    tr = Trace(sim, ["c.count"])
    sim.poke("c.en", 1)
    sim.step(3)
    assert tr.at(2)["c.count"] == 2


def test_column_of_unrecorded_signal_raises():
    sim = Simulator(Counter())
    tr = Trace(sim, ["c.count"])
    sim.step(2)
    with pytest.raises(HdlError, match="not recorded"):
        tr.column("c.en")


def test_at_unknown_cycle_raises():
    sim = Simulator(Counter())
    tr = Trace(sim, ["c.count"])
    sim.step(3)
    with pytest.raises(HdlError, match="recorded cycles: 0..2"):
        tr.at(99)


def test_at_on_empty_trace_raises():
    sim = Simulator(Counter())
    tr = Trace(sim, ["c.count"])
    with pytest.raises(HdlError, match="<empty>"):
        tr.at(0)


def test_lookups_stay_fast_on_long_traces():
    sim = Simulator(Counter())
    tr = Trace(sim, ["c.count", "c.en"])
    sim.poke("c.en", 1)
    sim.step(400)
    # O(1) dict lookups under the hood — spot-check correctness
    assert tr.at(399)["c.count"] == (399 % 256)
    assert tr.column("c.en")[-1] == 1


def test_vcd_output(tmp_path):
    sim = Simulator(Counter())
    tr = Trace(sim, ["c.count", "c.en"])
    sim.poke("c.en", 1)
    sim.step(4)
    path = os.path.join(tmp_path, "wave.vcd")
    tr.write_vcd(path)
    with open(path) as f:
        text = f.read()
    assert "$timescale" in text
    assert "$scope module c $end" in text
    assert "$var wire 8 ! count $end" in text
    assert "#0" in text and "#3" in text


def test_vcd_ident_allocation():
    # base-94 over printable ASCII; wraps to multi-char past 94
    assert vcd_ident(0) == "!"
    assert vcd_ident(93) == "~"
    assert vcd_ident(94) == "!\""
    assert len({vcd_ident(n) for n in range(500)}) == 500
    for n in range(500):
        assert all(33 <= ord(c) <= 126 for c in vcd_ident(n))


def test_vcd_round_trip(tmp_path):
    sim = Simulator(Counter())
    tr = Trace(sim, ["c.count", "c.en"])
    sim.poke("c.en", 1)
    sim.step(6)
    path = os.path.join(tmp_path, "rt.vcd")
    tr.write_vcd(path)
    parsed = read_vcd(path)
    assert parsed["timescale"] == "1ns"
    assert parsed["widths"] == {"c.count": 8, "c.en": 1}
    # reconstruct the count column from the value changes
    changes = dict(parsed["changes"]["c.count"])
    rebuilt, cur = [], None
    for cycle in range(6):
        cur = changes.get(cycle, cur)
        rebuilt.append(cur)
    assert rebuilt == tr.column("c.count")
    assert dict(parsed["changes"]["c.en"])[0] == 1


class Nested(Module):
    def __init__(self):
        super().__init__("top")
        self.en = self.input("en", 1)
        self.inner = self.submodule(Counter())
        self.inner.en <<= self.en
        self.total = self.output("total", 8)
        self.total <<= self.inner.count + 1


def test_vcd_hierarchical_scopes(tmp_path):
    sim = Simulator(Nested())
    tr = Trace(sim, ["top.total", "top.c.count"])
    sim.poke("top.en", 1)
    sim.step(3)
    path = os.path.join(tmp_path, "nest.vcd")
    tr.write_vcd(path)
    parsed = read_vcd(path)
    assert parsed["widths"] == {"top.total": 8, "top.c.count": 8}
    text = open(path).read()
    assert "$scope module top $end" in text
    assert "$scope module c $end" in text
    assert text.count("$upscope $end") == 2


def test_trace_on_batched_backend_matches_compiled():
    numpy = pytest.importorskip("numpy")  # noqa: F841
    ref_sim = Simulator(Counter(), backend="compiled")
    ref = Trace(ref_sim, ["c.count", "c.en"])
    ref_sim.poke("c.en", 1)
    ref_sim.step(7)

    sim = Simulator(Counter(), backend="batched", lanes=3)
    tr = Trace(sim, ["c.count", "c.en"])
    sim.poke("c.en", 1)
    sim.step(7)
    assert tr.column("c.count") == ref.column("c.count")
    assert tr.cycles == ref.cycles

    # per-lane capture: lanes run in lockstep here, so lane 2 matches too
    sim2 = Simulator(Counter(), backend="batched", lanes=3)
    tr2 = Trace(sim2.lanes_sim, ["c.count"], lane=2)
    sim2.poke("c.en", 1)
    sim2.step(7)
    assert tr2.column("c.count") == ref.column("c.count")


def test_label_annotated_vcd_round_trip(tmp_path):
    from repro.ifc.label import Label
    from repro.ifc.lattice import two_point
    from repro.ifc.tracker import LabelTracker

    TP = two_point()
    S_T = Label(TP, "secret", "trusted")

    class Leaky(Module):
        def __init__(self):
            super().__init__("m")
            self.sel = self.input("sel", 1)
            self.sec = self.input("sec", 8, label=S_T)
            self.out = self.output("out", 8)
            self.out <<= mux(self.sel, self.sec, lit(0, 8))

    sim = Simulator(Leaky())
    tracker = LabelTracker(sim, TP)   # tracker first: labels settle
    tr = Trace(sim, ["m.out", "m.sec"], tracker=tracker)  # then capture
    sim.poke("m.sec", 0x5A)
    sim.step(2)
    sim.poke("m.sel", 1)              # now the secret reaches m.out
    sim.step(2)

    n = len(TP.principals)
    labels = tr.label_column("m.out")
    assert labels[0] is not None and repr(labels[0]) != repr(S_T)
    assert repr(labels[-1]) == repr(S_T)

    path = os.path.join(tmp_path, "labels.vcd")
    tr.write_vcd(path)
    parsed = read_vcd(path)
    assert parsed["widths"]["m.out"] == 8
    assert parsed["widths"]["m.out__conf"] == n
    assert parsed["widths"]["m.out__integ"] == n

    conf = dict(parsed["changes"]["m.out__conf"])
    expect_enc = S_T.encode()
    # at cycle 2 the mux takes the secret branch: conf bits go high
    assert conf[2] == expect_enc >> n
    assert conf[0] != conf[2]

    # labels=False suppresses the overlay entirely
    bare = os.path.join(tmp_path, "bare.vcd")
    tr.write_vcd(bare, labels=False)
    assert "m.out__conf" not in read_vcd(bare)["widths"]


def test_batched_per_lane_trace_diverges_with_faults():
    numpy = pytest.importorskip("numpy")  # noqa: F841
    from repro.faults.plan import Fault, FaultPlan

    plan = FaultPlan([Fault("c.count", "transient", 1, cycle=3, lane=1)])
    sim = Simulator(Counter(), backend="batched", lanes=2,
                    fault_targets=["c.count"], fault_plan=plan)
    t0 = Trace(sim.lanes_sim, ["c.count"], lane=0)
    t1 = Trace(sim.lanes_sim, ["c.count"], lane=1)
    sim.poke("c.en", 1)
    sim.step(6)
    col0, col1 = t0.column("c.count"), t1.column("c.count")
    assert col0 == [0, 1, 2, 3, 4, 5]
    assert col0 != col1
