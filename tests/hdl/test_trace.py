import os

import pytest

from repro.hdl import HdlError, Module, Simulator, when
from repro.hdl.sim.trace import Trace


class Counter(Module):
    def __init__(self):
        super().__init__("c")
        self.en = self.input("en", 1)
        self.count = self.reg("count", 8)
        with when(self.en):
            self.count <<= self.count + 1


def test_trace_records_per_cycle():
    sim = Simulator(Counter())
    tr = Trace(sim, ["c.count", "c.en"])
    sim.poke("c.en", 1)
    sim.step(5)
    assert len(tr) == 5
    assert tr.column("c.count") == [0, 1, 2, 3, 4]


def test_trace_at_cycle():
    sim = Simulator(Counter())
    tr = Trace(sim, ["c.count"])
    sim.poke("c.en", 1)
    sim.step(3)
    assert tr.at(2)["c.count"] == 2


def test_column_of_unrecorded_signal_raises():
    sim = Simulator(Counter())
    tr = Trace(sim, ["c.count"])
    sim.step(2)
    with pytest.raises(HdlError, match="not recorded"):
        tr.column("c.en")


def test_at_unknown_cycle_raises():
    sim = Simulator(Counter())
    tr = Trace(sim, ["c.count"])
    sim.step(3)
    with pytest.raises(HdlError, match="recorded cycles: 0..2"):
        tr.at(99)


def test_at_on_empty_trace_raises():
    sim = Simulator(Counter())
    tr = Trace(sim, ["c.count"])
    with pytest.raises(HdlError, match="<empty>"):
        tr.at(0)


def test_lookups_stay_fast_on_long_traces():
    sim = Simulator(Counter())
    tr = Trace(sim, ["c.count", "c.en"])
    sim.poke("c.en", 1)
    sim.step(400)
    # O(1) dict lookups under the hood — spot-check correctness
    assert tr.at(399)["c.count"] == (399 % 256)
    assert tr.column("c.en")[-1] == 1


def test_vcd_output(tmp_path):
    sim = Simulator(Counter())
    tr = Trace(sim, ["c.count", "c.en"])
    sim.poke("c.en", 1)
    sim.step(4)
    path = os.path.join(tmp_path, "wave.vcd")
    tr.write_vcd(path)
    with open(path) as f:
        text = f.read()
    assert "$timescale" in text
    assert "c_count" in text
    assert "#0" in text and "#3" in text
