import os

from repro.hdl import Module, Simulator, when
from repro.hdl.sim.trace import Trace


class Counter(Module):
    def __init__(self):
        super().__init__("c")
        self.en = self.input("en", 1)
        self.count = self.reg("count", 8)
        with when(self.en):
            self.count <<= self.count + 1


def test_trace_records_per_cycle():
    sim = Simulator(Counter())
    tr = Trace(sim, ["c.count", "c.en"])
    sim.poke("c.en", 1)
    sim.step(5)
    assert len(tr) == 5
    assert tr.column("c.count") == [0, 1, 2, 3, 4]


def test_trace_at_cycle():
    sim = Simulator(Counter())
    tr = Trace(sim, ["c.count"])
    sim.poke("c.en", 1)
    sim.step(3)
    assert tr.at(2)["c.count"] == 2


def test_vcd_output(tmp_path):
    sim = Simulator(Counter())
    tr = Trace(sim, ["c.count", "c.en"])
    sim.poke("c.en", 1)
    sim.step(4)
    path = os.path.join(tmp_path, "wave.vcd")
    tr.write_vcd(path)
    with open(path) as f:
        text = f.read()
    assert "$timescale" in text
    assert "c_count" in text
    assert "#0" in text and "#3" in text
