"""The `python -m repro` command-line interface."""

import json

import pytest

from repro.__main__ import main


class TestCheckCommand:
    def test_list(self, capsys):
        assert main(["check", "--list"]) == 0
        out = capsys.readouterr().out
        assert "protected" in out and "scratchpad" in out

    def test_pass_exits_zero(self, capsys):
        assert main(["check", "scratchpad"]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_fail_exits_one(self, capsys):
        assert main(["check", "keyexp-flawed"]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_json_output(self, capsys):
        assert main(["check", "cache-tags-broken", "--json"]) == 1
        data = json.loads(capsys.readouterr().out)
        assert data["ok"] is False
        assert data["errors"]

    def test_unknown_module(self, capsys):
        assert main(["check", "nonsense"]) == 2


class TestVerilogCommand:
    def test_to_file(self, tmp_path, capsys):
        out = tmp_path / "pad.v"
        assert main(["verilog", "scratchpad", "-o", str(out)]) == 0
        text = out.read_text()
        assert "module scratchpad" in text
        assert "endmodule" in text

    def test_unknown_module(self):
        assert main(["verilog", "nonsense"]) == 2


class TestAttackCommand:
    def test_master_key(self, capsys):
        assert main(["attack", "master-key"]) == 0
        out = capsys.readouterr().out
        assert "eve=True" in out       # baseline
        assert "eve=False" in out      # protected

    def test_unknown_attack(self):
        assert main(["attack", "nonsense"]) == 2


class TestTopLevel:
    def test_no_command_prints_help(self, capsys):
        assert main([]) == 2
        assert "usage" in capsys.readouterr().out.lower()

    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "LUTs" in out and "Paper" in out
