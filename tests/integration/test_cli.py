"""The `python -m repro` command-line interface."""

import json

import pytest

from repro.__main__ import main


class TestCheckCommand:
    def test_list(self, capsys):
        assert main(["check", "--list"]) == 0
        out = capsys.readouterr().out
        assert "protected" in out and "scratchpad" in out

    def test_pass_exits_zero(self, capsys):
        assert main(["check", "scratchpad"]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_fail_exits_one(self, capsys):
        assert main(["check", "keyexp-flawed"]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_json_output(self, capsys):
        assert main(["check", "cache-tags-broken", "--json"]) == 1
        data = json.loads(capsys.readouterr().out)
        assert data["ok"] is False
        assert data["errors"]

    def test_unknown_module(self, capsys):
        assert main(["check", "nonsense"]) == 2


class TestVerilogCommand:
    def test_to_file(self, tmp_path, capsys):
        out = tmp_path / "pad.v"
        assert main(["verilog", "scratchpad", "-o", str(out)]) == 0
        text = out.read_text()
        assert "module scratchpad" in text
        assert "endmodule" in text

    def test_unknown_module(self):
        assert main(["verilog", "nonsense"]) == 2


class TestAttackCommand:
    def test_master_key(self, capsys):
        assert main(["attack", "master-key"]) == 0
        out = capsys.readouterr().out
        assert "eve=True" in out       # baseline
        assert "eve=False" in out      # protected

    def test_unknown_attack(self):
        assert main(["attack", "nonsense"]) == 2


class TestObsCommand:
    def test_demo_report(self, capsys):
        assert main(["obs", "--demo"]) == 0
        out = capsys.readouterr().out
        assert "telemetry report" in out
        assert "security events" in out

    def test_json_summary(self, capsys):
        assert main(["obs", "--demo", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert {"metrics", "security_events", "trace_spans", "sim"} <= \
            set(data)
        # the quantile gauges from the latency reservoir are exported
        assert "repro_soc_request_latency_quantile_cycles" in data["metrics"]

    def test_out_artifacts(self, tmp_path, capsys):
        assert main(["obs", "--demo", "--out", str(tmp_path)]) == 0
        for name in ("metrics.prom", "metrics.jsonl", "trace.json",
                     "security.jsonl"):
            assert (tmp_path / name).exists()


class TestObsLeakageCommand:
    def test_demo_verdict_and_exit_code(self, capsys):
        assert main(["obs", "leakage", "--demo"]) == 0
        out = capsys.readouterr().out
        assert "VERDICT: baseline timing channel detected" in out
        assert "LEAK" in out and "clean" in out

    def test_json_and_out_artifact(self, tmp_path, capsys):
        assert main(["obs", "leakage", "--demo", "--json",
                     "--out", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        data = json.loads(out.splitlines()[0])
        assert data["ok"] is True
        report = json.loads((tmp_path / "leakage_report.json").read_text())
        assert report["baseline"]["leaky"] is True
        assert report["protected"]["leaky"] is False

    def test_unknown_scenario_rejected(self):
        with pytest.raises(SystemExit):
            main(["obs", "leakage", "--scenario", "nonsense"])


class TestObsProfileCommand:
    def test_demo_render(self, capsys):
        assert main(["obs", "profile", "--demo"]) == 0
        out = capsys.readouterr().out
        assert "profile: aes" in out
        assert "hottest nets" in out

    def test_out_artifacts(self, tmp_path, capsys):
        assert main(["obs", "profile", "--demo", "--out",
                     str(tmp_path)]) == 0
        folded = (tmp_path / "flamegraph.folded").read_text()
        assert folded.strip().startswith("aes")
        heat = json.loads((tmp_path / "toggle_heatmap.json").read_text())
        assert heat["nets"] and heat["windows"]
        trace = json.loads((tmp_path / "profile_trace.json").read_text())
        assert any(e["ph"] == "C" for e in trace["traceEvents"])

    def test_json_heatmap(self, capsys):
        assert main(["obs", "profile", "--demo", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["backend"] == "compiled"
        assert data["cycles_sampled"] > 0


class TestObsPowerCommand:
    def test_demo_verdict_and_exit_code(self, capsys):
        assert main(["obs", "power", "--demo", "--no-ifc-check"]) == 0
        out = capsys.readouterr().out
        assert "power side-channel campaign" in out
        assert "VERDICT: unmasked round flagged and broken" in out

    def test_json_and_out_artifacts(self, tmp_path, capsys):
        assert main(["obs", "power", "--demo", "--json",
                     "--out", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        data = json.loads(out.splitlines()[0])
        assert data["ok"] is True
        assert data["baseline_broken"] is True
        assert data["masking_effective"] is True
        report = json.loads((tmp_path / "power_report.json").read_text())
        assert report["unmasked"]["tvla"]["flagged"] is True
        assert report["masked"]["cpa"]["recovered_bytes"] == 0
        md = (tmp_path / "power_report.md").read_text()
        assert "| design | backend |" in md

    def test_starved_budget_fails_gate(self, capsys):
        # 48 random traces cannot break the unmasked round -> exit 1
        assert main(["obs", "power", "--traces", "48",
                     "--tvla-traces", "16", "--no-ifc-check"]) == 1
        assert "UNEXPECTED" in capsys.readouterr().out


class TestObsHistoryCommand:
    def _bench(self, tmp_path, value):
        (tmp_path / "BENCH_t.json").write_text(json.dumps(
            {"kind": "gauge", "metric": "repro_bench_gbps",
             "labels": {}, "value": value}) + "\n")

    def test_first_run_appends_baseline(self, tmp_path, capsys):
        self._bench(tmp_path, 40.0)
        ledger = tmp_path / "BENCH_history.jsonl"
        assert main(["obs", "history", "--root", str(tmp_path),
                     "--history", str(ledger)]) == 0
        out = capsys.readouterr().out
        assert "baseline run" in out
        assert ledger.exists()
        assert len(ledger.read_text().splitlines()) == 1

    def test_regression_detected_and_fails_when_asked(self, tmp_path,
                                                      capsys):
        self._bench(tmp_path, 40.0)
        ledger = tmp_path / "BENCH_history.jsonl"
        assert main(["obs", "history", "--root", str(tmp_path),
                     "--history", str(ledger)]) == 0
        capsys.readouterr()
        self._bench(tmp_path, 10.0)  # throughput fell 75%
        assert main(["obs", "history", "--root", str(tmp_path),
                     "--history", str(ledger),
                     "--fail-on-regression"]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_no_append_leaves_ledger_untouched(self, tmp_path, capsys):
        self._bench(tmp_path, 40.0)
        ledger = tmp_path / "BENCH_history.jsonl"
        assert main(["obs", "history", "--root", str(tmp_path),
                     "--history", str(ledger), "--no-append"]) == 0
        assert not ledger.exists()

    def test_missing_bench_files_is_an_error(self, tmp_path, capsys):
        assert main(["obs", "history", "--root", str(tmp_path)]) == 1
        assert "no BENCH_" in capsys.readouterr().out


class TestTopLevel:
    def test_no_command_prints_help(self, capsys):
        assert main([]) == 2
        assert "usage" in capsys.readouterr().out.lower()

    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "LUTs" in out and "Paper" in out
