"""The leakage detector's verdicts must hold on every sim backend.

The paired stall-channel campaign is the CI gate for the paper's core
claim; this suite pins the same seeded verdict — baseline flagged,
protected clean — across the interpreter, the compiled backend, and the
batched numpy backend.
"""

import pytest

from repro.obs.leakage import run_paired_campaign

TRIALS = 8  # smallest campaign that clears |t| > 4.5 deterministically


def _run(backend):
    if backend == "batched":
        pytest.importorskip("numpy")
    return run_paired_campaign(scenario="stall", trials=TRIALS,
                               seed=2026, backend=backend)


@pytest.mark.parametrize("backend", ["compiled", "batched"])
def test_verdict_holds(backend):
    result = _run(backend)
    assert result.baseline.leaky
    assert not result.protected.leaky
    assert result.ok


@pytest.mark.slow
def test_verdict_holds_on_interp():
    result = _run("interp")
    assert result.baseline.leaky
    assert not result.protected.leaky
    assert result.ok


def test_backends_agree_on_samples():
    """Identical seeds produce identical latency populations on the
    compiled and batched backends (the interp case is covered by the
    slow test above; all three share one deterministic netlist)."""
    a = _run("compiled")
    b = _run("batched")
    ta = a.baseline.observable("probe_latency").ttest
    tb = b.baseline.observable("probe_latency").ttest
    assert (ta.mean0, ta.mean1, ta.n0, ta.n1) == \
        (tb.mean0, tb.mean1, tb.n0, tb.n1)
