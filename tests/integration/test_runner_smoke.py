"""The EXPERIMENTS runner produces a complete, well-formed report."""

import pytest

from repro.eval.runner import run_all


@pytest.mark.slow
def test_run_all_covers_every_artefact(tmp_path):
    out = tmp_path / "EXPERIMENTS.md"
    text = run_all(out=str(out))
    assert out.read_text() == text

    for heading in (
        "## Table 1", "## Table 2", "## Fig. 3", "## Fig. 5", "## Fig. 6",
        "## Fig. 7", "## Fig. 8", "## §3.2.2", "## §2.1", "## Fig. 1",
        "## Ablations", "## §4",
    ):
        assert heading in text, heading

    # the report must state the headline outcomes
    assert "ENFORCED" in text and "BROKEN" in text
    assert "Paper Δ" in text
    assert "mutual information" in text
    assert "FAIL" not in text.replace("FAIL'", "")  # no failing checks inside
