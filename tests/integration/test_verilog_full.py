"""Deep structural validation of the exported full-accelerator Verilog."""

import re

import pytest

from repro.accel.protected import AesAcceleratorProtected
from repro.hdl import elaborate
from repro.hdl.verilog import VerilogWriter

IDENT = r"[A-Za-z_][A-Za-z0-9_]*"


@pytest.fixture(scope="module")
def export():
    netlist = elaborate(AesAcceleratorProtected())
    writer = VerilogWriter(netlist, "aes_protected")
    return netlist, writer.emit()


class TestFullExport:
    def test_every_register_declared_and_reset_and_driven(self, export):
        netlist, source = export
        for reg in netlist.regs:
            name = re.sub(r"[^A-Za-z0-9_]", "_",
                          reg.path[len(netlist.root.path) + 1:])
            assert re.search(rf"\breg \[\d+:0\] {name};", source), name
            # one reset assignment and one next-state assignment
            assert source.count(f"{name} <= ") >= 2, name

    def test_every_memory_declared(self, export):
        netlist, source = export
        for mem in netlist.mems:
            name = re.sub(r"[^A-Za-z0-9_]", "_",
                          mem.path[len(netlist.root.path) + 1:])
            assert re.search(
                rf"\breg \[\d+:0\] {name} \[0:{mem.depth - 1}\];", source
            ), name

    def test_every_root_port_present(self, export):
        netlist, source = export
        header = source.split(");", 1)[0]
        for sig in netlist.inputs:
            name = sig.path[len(netlist.root.path) + 1:]
            assert re.search(rf"input wire \[\d+:0\] {name}\b", header), name

    def test_ssa_wires_defined_before_nothing_dangles(self, export):
        _netlist, source = export
        defined = set(re.findall(rf"wire \[\d+:0\] (n\d+) =", source))
        used = set(re.findall(r"\b(n\d+)\b", source))
        assert used <= defined | set(), sorted(used - defined)[:5]

    def test_identifier_uniqueness(self, export):
        _netlist, source = export
        decls = re.findall(rf"(?:wire|reg) \[\d+:0\] ({IDENT})[ ;\[=]", source)
        assert len(decls) == len(set(decls))

    def test_single_always_block_and_balanced_begins(self, export):
        _netlist, source = export
        assert source.count("always @(posedge clk)") == 1
        begins = len(re.findall(r"\bbegin\b", source))
        ends = len(re.findall(r"\bend\b", source))
        assert begins == ends

    def test_rom_initials_match_contents(self, export):
        netlist, source = export
        # spot-check: the first S-box entry of stage 1
        assert re.search(r"pipe_sa1_sbox\[0\] = 8'h63;", source)

    def test_downgrade_sites_annotated(self, export):
        _netlist, source = export
        assert source.count("reviewed downgrade") >= 3
