"""One consolidated statement: every module of the protected design
passes its static check — the reproduction's Table-1 backbone."""

import pytest

from repro.accel.common import LATTICE
from repro.accel.config_regs import ConfigRegs
from repro.accel.debug import DebugPeripheral
from repro.accel.declassifier import Declassifier
from repro.accel.arbiter import RequestArbiter
from repro.accel.key_expand_unit import KeyExpandUnit
from repro.accel.mini import MiniTaggedPipeline
from repro.accel.output_buffer import OutputBuffer
from repro.accel.pipeline import AesPipeline
from repro.accel.protected import AesAcceleratorProtected
from repro.accel.round_stages import StageA, StageB, StageC
from repro.accel.scratchpad import KeyScratchpad
from repro.accel.stall import StallController
from repro.accel.wide import AesEngineWide, WordSerialKeyExpand
from repro.hdl import elaborate, elaborate_shallow
from repro.ifc.checker import IfcChecker
from repro.soc.hw_system import ArbitratedAccelerator

CASES = [
    ("StageA", lambda: StageA(1, True), elaborate),
    ("StageB-last", lambda: StageB(10, True), elaborate),
    ("StageC", lambda: StageC(5, True), elaborate),
    ("KeyExpandUnit", lambda: KeyExpandUnit(True), elaborate),
    ("WordSerialKeyExpand-256", lambda: WordSerialKeyExpand(256, True),
     elaborate),
    ("KeyScratchpad", lambda: KeyScratchpad(True), elaborate),
    ("OutputBuffer", lambda: OutputBuffer(True), elaborate),
    ("ConfigRegs", lambda: ConfigRegs(True), elaborate),
    ("DebugPeripheral", lambda: DebugPeripheral(True), elaborate),
    ("Declassifier", lambda: Declassifier(True), elaborate),
    ("StallController-30", lambda: StallController(30, True), elaborate),
    ("RequestArbiter", lambda: RequestArbiter(True), elaborate),
    ("MiniTaggedPipeline", lambda: MiniTaggedPipeline(2, guarded=True),
     elaborate),
    ("AesPipeline", lambda: AesPipeline(True), elaborate_shallow),
    ("AesEngineWide-256", lambda: AesEngineWide(256, True),
     elaborate_shallow),
    ("AesAcceleratorProtected", AesAcceleratorProtected, elaborate_shallow),
    ("ArbitratedAccelerator", ArbitratedAccelerator, elaborate_shallow),
]


@pytest.mark.parametrize("name,build,elab", CASES,
                         ids=[c[0] for c in CASES])
def test_module_verifies(name, build, elab):
    report = IfcChecker(elab(build()), LATTICE,
                        max_hypotheses=1 << 20).check()
    assert report.ok(), f"{name}: {report.summary()}"
