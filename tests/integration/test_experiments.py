"""Integration: the evaluation harness reproduces the paper's results."""

import pytest

from repro.eval.audit import classify_errors, protection_effort, run_audit
from repro.eval.figures import (
    fig3_cache_tags,
    fig5_scratchpad,
    fig6_label_error,
    fig7_sharing,
    fig8_static,
)
from repro.eval.table1 import run_table1
from repro.eval.table2 import measure_throughput


class TestTable1:
    def test_protected_enforces_all_six(self):
        results = run_table1(protected=True)
        assert all(r.enforced for r in results), [
            r for r in results if not r.enforced
        ]

    def test_baseline_breaks_all_six(self):
        results = run_table1(protected=False)
        assert all(not r.enforced for r in results), [
            r for r in results if r.enforced
        ]


class TestThroughput:
    def test_one_block_per_cycle(self):
        t = measure_throughput(protected=True, blocks=32)
        assert t.blocks_per_cycle == pytest.approx(1.0)
        assert t.all_correct

    def test_latency_about_30(self):
        t = measure_throughput(protected=True, blocks=8)
        assert 30 <= t.latency <= 33

    def test_gbps_in_paper_ballpark(self):
        """Paper: 51.2 Gbps @ 400 MHz; we model ~370 MHz → ~47 Gbps."""
        t = measure_throughput(protected=True, blocks=8)
        assert 35 <= t.gbps <= 55


class TestFigures:
    def test_fig3(self):
        good, bad = fig3_cache_tags()
        assert good.ok() and not bad.ok()

    def test_fig5(self):
        res = fig5_scratchpad()
        assert res["baseline"].overwritten
        assert not res["protected"].overwritten

    def test_fig6(self):
        flawed, fixed = fig6_label_error()
        assert not flawed.ok() and fixed.ok()

    def test_fig7_fine_grained_wins(self):
        sharing = fig7_sharing(blocks_per_user=6)
        assert sharing.all_correct
        assert sharing.speedup > 3.0

    def test_fig8_static(self):
        guarded, unguarded = fig8_static()
        assert guarded.ok() and not unguarded.ok()


class TestAudit:
    @pytest.fixture(scope="class")
    def report(self):
        return run_audit()

    def test_finds_errors(self, report):
        assert not report.ok()

    def test_covers_all_vulnerability_classes(self, report):
        classes = classify_errors(report)
        for expected in ("debug disclosure", "output disclosure",
                         "config tampering", "scratchpad overrun",
                         "timing channel"):
            assert expected in classes, classes.keys()

    def test_effort_metric(self):
        effort = protection_effort()
        assert effort["downgrade_sites"] >= 3
        assert effort["tagged_memories"] >= 4
        assert effort["extra_register_bits"] > 0
