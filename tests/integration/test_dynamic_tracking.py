"""RTLIFT-style runtime validation on the *full* protected accelerator:
a benign multi-user run tracks clean; the §3.1 attacks raise runtime
violations on the baseline wherever labels are attached."""

import pytest

from repro.accel.baseline import AesAcceleratorBaseline
from repro.accel.common import (
    CMD_ENCRYPT,
    CMD_LOAD_KEY,
    LATTICE,
    MASTER_SLOT,
    user_label,
)
from repro.accel.driver import AcceleratorDriver, make_users
from repro.accel.protected import AesAcceleratorProtected
from repro.eval.audit import annotate_baseline
from repro.ifc.tracker import LabelTracker


@pytest.mark.slow
def test_protected_run_tracks_clean():
    """Key load + encrypts from two users: no dynamic violations."""
    users = make_users()
    drv = AcceleratorDriver(AesAcceleratorProtected())
    tracker = LabelTracker(drv.sim, LATTICE)
    drv.allocate_slot(1, users["u0"])
    drv.load_key(users["u0"], 1, 0x1111)
    drv.set_reader(users["u0"])
    drv.encrypt(users["u0"], 1, 0xAAAA)
    drv.step(40)
    violations = [
        v for v in tracker.violations
        # the reviewed stall downgrade is the only permitted exception,
        # and it is a downgrade *marker*, not a flow violation
        if v.kind == "flow"
    ]
    assert violations == [], violations[:5]


@pytest.mark.slow
def test_baseline_attack_raises_runtime_violations():
    """The master-key misuse, run under the auditor's labels, violates at
    runtime exactly where the static audit predicted."""
    accel = AesAcceleratorBaseline()
    annotate_baseline(accel)
    drv = AcceleratorDriver(accel)
    tracker = LabelTracker(drv.sim, LATTICE)
    eve = user_label("p1").encode()
    drv.set_reader(eve)
    drv.encrypt(eve, MASTER_SLOT, 0x1234)
    drv.step(40)
    assert not tracker.ok()
    sinks = {v.sink for v in tracker.violations}
    assert any("out_data" in s for s in sinks), sinks
