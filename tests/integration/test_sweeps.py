"""Unit-level checks of the sweep drivers (small configurations)."""

import pytest

from repro.eval.sweeps import contention_sweep, covert_bandwidth


@pytest.mark.slow
class TestContention:
    def test_isolation_holds_at_every_load(self):
        points = contention_sweep(blocks_per_user=4)
        assert [p.users for p in points] == [1, 2, 3]
        for p in points:
            assert p.correct
            assert 30 <= p.mean_latency <= 45

    def test_throughput_scales_with_users(self):
        points = contention_sweep(blocks_per_user=4)
        rates = [p.blocks_per_cycle for p in points]
        assert rates == sorted(rates)  # more users = better utilisation


@pytest.mark.slow
class TestCovertBandwidth:
    def test_baseline_has_capacity_protected_has_none(self):
        results = covert_bandwidth(windows=(16,), bits=6)
        base = results["baseline"][0]
        prot = results["protected"][0]
        assert base["mi_bits"] > 0.9
        assert base["bandwidth_bps"] > 1e5   # > 100 kb/s at the clock
        assert prot["mi_bits"] == 0.0
        assert prot["bandwidth_bps"] == 0.0
