"""Executable noninterference: the property the whole paper is about.

Two complete SoC runs differ **only** in Alice's secrets (her key and
plaintexts).  Everything Eve can observe — her ciphertexts, the cycles
they arrive, the accelerator's ready signal at her issue attempts, her
debug-port reads, her counter views — must be bit- and cycle-identical
across the two runs.

On the protected design this holds even while Alice floods the pipeline
and her reader stalls (the §3.1 scenario).  On the baseline the same
scenario produces *different* Eve-observations — the covert channel in
hyperproperty form.
"""

import pytest

from repro.accel.baseline import AesAcceleratorBaseline
from repro.accel.common import user_label
from repro.accel.driver import AcceleratorDriver
from repro.accel.protected import AesAcceleratorProtected

ALICE = user_label("p0").encode()
EVE = user_label("p1").encode()
EVE_KEY = 0xE0E1E2E3E4E5E6E7E8E9EAEBECEDEEEF


def eve_observation_trace(protected: bool, alice_key: int,
                          alice_blocks, alice_reader_stalls: bool):
    """Run the shared-accelerator scenario; return everything Eve sees."""
    accel = AesAcceleratorProtected() if protected else AesAcceleratorBaseline()
    drv = AcceleratorDriver(accel)
    sim = drv.sim
    top = drv.top

    if protected:
        drv.allocate_slot(1, ALICE)
        drv.allocate_slot(2, EVE)
    drv.load_key(ALICE, 1, alice_key)
    drv.load_key(EVE, 2, EVE_KEY)

    trace = []

    def observe(reader_is_eve: bool):
        if reader_is_eve:
            trace.append((
                sim.cycle,
                sim.peek(f"{top}.out_valid"),
                sim.peek(f"{top}.out_data"),
                sim.peek(f"{top}.in_ready"),
                sim.peek(f"{top}.dbg_data"),
            ))

    # deterministic interleaved schedule: Alice floods, Eve probes at
    # fixed cycles (retrying while the accelerator is not ready — the
    # retry behaviour itself is part of what Eve observes); Alice's
    # reader withholds readiness during the encoding window when asked
    base = sim.cycle
    alice_queue = list(alice_blocks)
    eve_pending = []
    for t in range(200):
        cyc = sim.cycle - base
        if cyc in (40, 55, 70):
            eve_pending.append(0xE7E00000 + cyc)
        reader_is_eve = (t % 2 == 1)
        reader = EVE if reader_is_eve else ALICE
        withhold = (not reader_is_eve) and alice_reader_stalls and t < 60
        sim.poke(f"{top}.rd_user", reader)
        sim.poke(f"{top}.out_ready", 0 if withhold else 1)

        ready = sim.peek(f"{top}.in_ready")
        if eve_pending and ready:
            drv._poke_cmd(0, EVE, slot=2, data=eve_pending.pop(0))
        elif alice_queue and ready:
            drv._poke_cmd(0, ALICE, slot=1, data=alice_queue.pop(0))
        else:
            drv._idle_inputs()

        observe(reader_is_eve)
        sim.step()
    return trace


SECRET_A = {"key": 0xA1A2A3A4A5A6A7A8A9AAABACADAEAFA0,
            "blocks": [0x1111 + i for i in range(20)]}
SECRET_B = {"key": 0xB1B2B3B4B5B6B7B8B9BABBBCBDBEBFB0,
            "blocks": [0x9999_0000 + 7 * i for i in range(20)]}


class TestNoninterference:
    @pytest.mark.slow
    @pytest.mark.parametrize("stalls", [False, True])
    def test_protected_is_noninterfering(self, stalls):
        t1 = eve_observation_trace(True, SECRET_A["key"], SECRET_A["blocks"],
                                   stalls)
        t2 = eve_observation_trace(True, SECRET_B["key"], SECRET_B["blocks"],
                                   stalls)
        assert t1 == t2, (
            "Eve's observations depend on Alice's secrets: "
            f"first divergence {next((a, b) for a, b in zip(t1, t2) if a != b)}"
        )

    @pytest.mark.slow
    def test_baseline_interferes_under_stall(self):
        t1 = eve_observation_trace(False, SECRET_A["key"], SECRET_A["blocks"],
                                   True)
        t2 = eve_observation_trace(False, SECRET_B["key"], SECRET_B["blocks"],
                                   True)
        assert t1 != t2  # the baseline leaks through Eve's view

    @pytest.mark.slow
    def test_eve_results_are_still_live(self):
        """Noninterference must not be achieved by starving Eve."""
        trace = eve_observation_trace(True, SECRET_A["key"],
                                      SECRET_A["blocks"], True)
        eve_outputs = [row for row in trace if row[1] == 1]
        assert eve_outputs, "Eve never received her ciphertexts"


class TestBatchedLaneSweep:
    """The same hyperproperty, run as lanes of one batched simulation.

    Each lane pair shares the whole public schedule and differs only in
    Alice's key and plaintexts; Eve's per-lane observations must be
    identical within every pair on the protected design.
    """

    @pytest.mark.slow
    @pytest.mark.parametrize("stalls", [False, True])
    def test_protected_lane_pairs_noninterfere(self, stalls):
        pytest.importorskip("numpy")
        from repro.eval import lane_noninterference_sweep

        results = lane_noninterference_sweep(protected=True, pairs=2,
                                             stalls=stalls)
        assert all(r.observations > 0 for r in results)
        assert all(r.equal for r in results), f"lane pairs diverged: {results}"

    @pytest.mark.slow
    def test_baseline_lane_pair_interferes(self):
        pytest.importorskip("numpy")
        from repro.eval import lane_noninterference_sweep

        results = lane_noninterference_sweep(protected=False, pairs=1,
                                             stalls=True)
        assert not results[0].equal  # the baseline leaks across lanes
