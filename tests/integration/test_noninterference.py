"""Executable noninterference: the property the whole paper is about.

Two complete SoC runs differ **only** in Alice's secrets (her key and
plaintexts).  Everything Eve can observe — her ciphertexts, the cycles
they arrive, the accelerator's ready signal at her issue attempts, her
debug-port reads, her counter views — must be bit- and cycle-identical
across the two runs.

On the protected design this holds even while Alice floods the pipeline
and her reader stalls (the §3.1 scenario).  On the baseline the same
scenario produces *different* Eve-observations — the covert channel in
hyperproperty form.
"""

import pytest

from repro.accel.baseline import AesAcceleratorBaseline
from repro.accel.common import user_label
from repro.accel.driver import AcceleratorDriver
from repro.accel.protected import AesAcceleratorProtected

ALICE = user_label("p0").encode()
EVE = user_label("p1").encode()
EVE_KEY = 0xE0E1E2E3E4E5E6E7E8E9EAEBECEDEEEF


def eve_observation_trace(protected: bool, alice_key: int,
                          alice_blocks, alice_reader_stalls: bool):
    """Run the shared-accelerator scenario; return everything Eve sees."""
    accel = AesAcceleratorProtected() if protected else AesAcceleratorBaseline()
    drv = AcceleratorDriver(accel)
    sim = drv.sim
    top = drv.top

    if protected:
        drv.allocate_slot(1, ALICE)
        drv.allocate_slot(2, EVE)
    drv.load_key(ALICE, 1, alice_key)
    drv.load_key(EVE, 2, EVE_KEY)

    trace = []

    def observe(reader_is_eve: bool):
        if reader_is_eve:
            trace.append((
                sim.cycle,
                sim.peek(f"{top}.out_valid"),
                sim.peek(f"{top}.out_data"),
                sim.peek(f"{top}.in_ready"),
                sim.peek(f"{top}.dbg_data"),
            ))

    # deterministic interleaved schedule: Alice floods, Eve probes at
    # fixed cycles (retrying while the accelerator is not ready — the
    # retry behaviour itself is part of what Eve observes); Alice's
    # reader withholds readiness during the encoding window when asked
    base = sim.cycle
    alice_queue = list(alice_blocks)
    eve_pending = []
    for t in range(200):
        cyc = sim.cycle - base
        if cyc in (40, 55, 70):
            eve_pending.append(0xE7E00000 + cyc)
        reader_is_eve = (t % 2 == 1)
        reader = EVE if reader_is_eve else ALICE
        withhold = (not reader_is_eve) and alice_reader_stalls and t < 60
        sim.poke(f"{top}.rd_user", reader)
        sim.poke(f"{top}.out_ready", 0 if withhold else 1)

        ready = sim.peek(f"{top}.in_ready")
        if eve_pending and ready:
            drv._poke_cmd(0, EVE, slot=2, data=eve_pending.pop(0))
        elif alice_queue and ready:
            drv._poke_cmd(0, ALICE, slot=1, data=alice_queue.pop(0))
        else:
            drv._idle_inputs()

        observe(reader_is_eve)
        sim.step()
    return trace


SECRET_A = {"key": 0xA1A2A3A4A5A6A7A8A9AAABACADAEAFA0,
            "blocks": [0x1111 + i for i in range(20)]}
SECRET_B = {"key": 0xB1B2B3B4B5B6B7B8B9BABBBCBDBEBFB0,
            "blocks": [0x9999_0000 + 7 * i for i in range(20)]}


class TestNoninterference:
    @pytest.mark.slow
    @pytest.mark.parametrize("stalls", [False, True])
    def test_protected_is_noninterfering(self, stalls):
        t1 = eve_observation_trace(True, SECRET_A["key"], SECRET_A["blocks"],
                                   stalls)
        t2 = eve_observation_trace(True, SECRET_B["key"], SECRET_B["blocks"],
                                   stalls)
        assert t1 == t2, (
            "Eve's observations depend on Alice's secrets: "
            f"first divergence {next((a, b) for a, b in zip(t1, t2) if a != b)}"
        )

    @pytest.mark.slow
    def test_baseline_interferes_under_stall(self):
        t1 = eve_observation_trace(False, SECRET_A["key"], SECRET_A["blocks"],
                                   True)
        t2 = eve_observation_trace(False, SECRET_B["key"], SECRET_B["blocks"],
                                   True)
        assert t1 != t2  # the baseline leaks through Eve's view

    @pytest.mark.slow
    def test_eve_results_are_still_live(self):
        """Noninterference must not be achieved by starving Eve."""
        trace = eve_observation_trace(True, SECRET_A["key"],
                                      SECRET_A["blocks"], True)
        eve_outputs = [row for row in trace if row[1] == 1]
        assert eve_outputs, "Eve never received her ciphertexts"


class TestBatchedLaneSweep:
    """The same hyperproperty, run as lanes of one batched simulation.

    Each lane pair shares the whole public schedule and differs only in
    Alice's key and plaintexts; Eve's per-lane observations must be
    identical within every pair on the protected design.
    """

    @pytest.mark.slow
    @pytest.mark.parametrize("stalls", [False, True])
    def test_protected_lane_pairs_noninterfere(self, stalls):
        pytest.importorskip("numpy")
        from repro.eval import lane_noninterference_sweep

        results = lane_noninterference_sweep(protected=True, pairs=2,
                                             stalls=stalls)
        assert all(r.observations > 0 for r in results)
        assert all(r.equal for r in results), f"lane pairs diverged: {results}"

    @pytest.mark.slow
    def test_baseline_lane_pair_interferes(self):
        pytest.importorskip("numpy")
        from repro.eval import lane_noninterference_sweep

        results = lane_noninterference_sweep(protected=False, pairs=1,
                                             stalls=True)
        assert not results[0].equal  # the baseline leaks across lanes


class TestSynthesizedTagLanePairs:
    """Lane-pair noninterference witnessed at the *synthesized tag* level.

    With ``tag_tracking=True`` the labels are hardware state, vectorised
    per lane like any other register.  A lane pair that shares the whole
    public schedule and differs only in Alice's secret payloads must
    agree not just on Eve's observations but on every shadow tag — the
    enforcement state itself must be noninterfering, or the tags would
    *be* a covert channel.  Meanwhile lanes carrying different traffic
    must grow genuinely different labels (per-lane divergence), or the
    vectorisation would be trivially passing by broadcasting lane 0.
    """

    @pytest.mark.parametrize("stalls", [False, True])
    def test_lane_pair_tags_and_observations_agree(self, stalls):
        pytest.importorskip("numpy")
        from repro.accel.common import LATTICE
        from repro.accel.mini import BUBBLE_TAG, MiniTaggedPipeline
        from repro.hdl.sim.batched import BatchSimulator

        sim = BatchSimulator(MiniTaggedPipeline(3, guarded=True), lanes=4,
                             tag_tracking=True, lattice=LATTICE)
        watched = ["mini.out_valid", "mini.out_tag", "mini.out_data",
                   "mini.data0", "mini.data2"]
        rows = [[] for _ in range(4)]
        for t in range(48):
            alice_turn = (t % 3) != 2
            tag = ALICE if alice_turn else EVE
            # lanes 0/1: same public schedule, secrets differ on Alice's
            # turns only; lane 2: Eve-only traffic; lane 3: idle bubbles
            secret = [0xA0 ^ (3 * t), 0x5C + t] if alice_turn \
                else [0xE0 + t % 16] * 2
            sim.poke_all("mini.in_valid", [1, 1, int(not alice_turn), 0])
            sim.poke_all("mini.in_tag", [tag, tag, EVE, BUBBLE_TAG])
            sim.poke_all("mini.in_data",
                         [secret[0] & 0xFF, secret[1] & 0xFF,
                          (0xE0 + t % 16), 0])
            sim.poke_all("mini.rd_tag", [EVE] * 4)
            sim.poke_all("mini.stall_req",
                         [int(stalls and t % 4 == 0)] * 4)
            for lane in range(4):
                otag = sim.peek("mini.out_tag", lane)
                rows[lane].append((
                    sim.peek("mini.out_valid", lane),
                    otag,
                    # Eve reads her own blocks; secrets stay opaque to her
                    sim.peek("mini.out_data", lane) if otag == EVE else None,
                    tuple(sim.tags.label_of(s, lane) for s in watched),
                ))
            sim.step(1)

        assert rows[0] == rows[1], (
            "Eve's view (or the shadow tags) of the lane pair depends on "
            "Alice's secrets: first divergence "
            f"{next((a, b) for a, b in zip(rows[0], rows[1]) if a != b)}")
        # per-lane divergence: the Alice lanes' tag trajectories must
        # differ from both the Eve-only lane's and the idle lane's
        assert [r[3] for r in rows[0]] != [r[3] for r in rows[2]]
        assert [r[3] for r in rows[0]] != [r[3] for r in rows[3]]
        # and Alice's confidentiality really shows up in lane 0's labels
        alice_conf = user_label("p0").conf
        assert any(alice_conf <= lab.conf
                   for r in rows[0] for lab in r[3]), (
            "Alice's data never tainted a watched signal on her lane")
