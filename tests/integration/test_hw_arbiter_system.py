"""HDL-level composition: the RequestArbiter feeding the protected
accelerator inside one netlist (the full Fig. 4 front end)."""

import pytest

from repro.accel.common import CMD_ENCRYPT, LATTICE, user_label
from repro.aes import encrypt_block
from repro.hdl import Simulator, elaborate_shallow
from repro.ifc.checker import IfcChecker
from repro.soc.hw_system import ArbitratedAccelerator as ArbitratedSystem

KEYS = {
    0: 0x000102030405060708090A0B0C0D0E0F,
    1: 0x101112131415161718191A1B1C1D1E1F,
}


@pytest.fixture(scope="module")
def sys_sim():
    sim = Simulator(ArbitratedSystem())
    sim.poke("sys.out_ready_i", 1)
    # provision via port 0 as the supervisor
    from repro.accel.common import CMD_CONFIG, CMD_LOAD_KEY, supervisor_label

    sup = supervisor_label().encode()

    def one_shot(port, cmd, tag, slot=0, word=0, addr=0, data=0):
        sim.poke(f"sys.pv{port}", 1)
        sim.poke(f"sys.pcmd{port}", cmd)
        sim.poke(f"sys.ptag{port}", tag)
        sim.poke(f"sys.pslot{port}", slot)
        sim.poke(f"sys.pword{port}", word)
        sim.poke(f"sys.paddr{port}", addr)
        sim.poke(f"sys.pdata{port}", data)
        for _ in range(12):
            granted = sim.peek(f"sys.pgrant{port}")
            sim.step()
            if granted:
                break
        sim.poke(f"sys.pv{port}", 0)

    for user, slot in ((0, 1), (1, 2)):
        tag = user_label(f"p{user}").encode()
        for cell in (2 * slot, 2 * slot + 1):
            one_shot(0, CMD_CONFIG, sup, addr=8 + cell, data=tag)
        key = KEYS[user]
        one_shot(user, CMD_LOAD_KEY, tag, slot=slot, word=0, data=key >> 64)
        one_shot(user, CMD_LOAD_KEY, tag, slot=slot, word=1,
                 data=key & ((1 << 64) - 1))
        sim.step(20)
    return sim, one_shot


class TestArbitratedSystem:
    def test_two_ports_encrypt_concurrently(self, sys_sim):
        sim, one_shot = sys_sim
        pts = {0: 0xAAA0, 1: 0xBBB1}
        for user, slot in ((0, 1), (1, 2)):
            tag = user_label(f"p{user}").encode()
            one_shot(user, CMD_ENCRYPT, tag, slot=slot, data=pts[user])
        got = {}
        for cycle in range(120):
            for user in (0, 1):
                sim.poke("sys.rd_user_i", user_label(f"p{user}").encode())
                if sim.peek("sys.out_valid_o"):
                    got[user] = sim.peek("sys.out_data_o")
            sim.step()
        assert got[0] == encrypt_block(pts[0], KEYS[0])
        assert got[1] == encrypt_block(pts[1], KEYS[1])

    def test_shallow_check_of_composition(self):
        report = IfcChecker(
            elaborate_shallow(ArbitratedSystem()), LATTICE
        ).check()
        assert report.ok(), report.summary()
