"""The compiled simulator must match the interpreter on the *full*
protected accelerator, cycle for cycle, across a mixed workload."""

import random

import pytest

from repro.accel.common import (
    CMD_CONFIG,
    CMD_DECRYPT,
    CMD_ENCRYPT,
    CMD_LOAD_KEY,
    supervisor_label,
    user_label,
)
from repro.accel.protected import AesAcceleratorProtected
from repro.hdl.sim import Simulator

WATCH = ["aes.out_valid", "aes.out_tag", "aes.out_data", "aes.in_ready",
         "aes.suppressed_count", "aes.blocked_count", "aes.cfg_rdata"]


def _drive(sim, rng):
    """One deterministic pseudo-random stimulus cycle."""
    users = [user_label(f"p{i}").encode() for i in range(3)]
    sup = supervisor_label().encode()
    roll = rng.random()
    sim.poke("aes.out_ready", rng.randint(0, 1))
    sim.poke("aes.rd_user", rng.choice(users))
    if roll < 0.15:
        sim.poke("aes.in_valid", 1)
        sim.poke("aes.in_cmd", CMD_CONFIG)
        sim.poke("aes.in_user", sup)
        sim.poke("aes.in_addr", rng.randrange(16))
        sim.poke("aes.in_data", rng.getrandbits(32))
    elif roll < 0.3:
        sim.poke("aes.in_valid", 1)
        sim.poke("aes.in_cmd", CMD_LOAD_KEY)
        sim.poke("aes.in_user", rng.choice(users))
        sim.poke("aes.in_slot", rng.randrange(4))
        sim.poke("aes.in_word", rng.randrange(8))
        sim.poke("aes.in_data", rng.getrandbits(128))
    elif roll < 0.8:
        sim.poke("aes.in_valid", 1)
        sim.poke("aes.in_cmd",
                 CMD_ENCRYPT if rng.random() < 0.7 else CMD_DECRYPT)
        sim.poke("aes.in_user", rng.choice(users))
        sim.poke("aes.in_slot", rng.randrange(4))
        sim.poke("aes.in_data", rng.getrandbits(128))
    else:
        sim.poke("aes.in_valid", 0)


@pytest.mark.slow
def test_full_accelerator_backends_agree():
    traces = {}
    for backend in ("compiled", "interp"):
        sim = Simulator(AesAcceleratorProtected(), backend=backend)
        rng = random.Random(0xD1FF)
        rows = []
        for _ in range(120):
            _drive(sim, rng)
            rows.append(tuple(sim.peek(w) for w in WATCH))
            sim.step()
        traces[backend] = rows
    assert traces["compiled"] == traces["interp"]


def test_compiled_source_is_deterministic():
    from repro.hdl.sim.compiler import CompiledBackend
    from repro.hdl.elaborate import elaborate
    from repro.accel.scratchpad import KeyScratchpad

    a = CompiledBackend(elaborate(KeyScratchpad(protected=True))).source
    b = CompiledBackend(elaborate(KeyScratchpad(protected=True))).source
    # variable names embed object ids, so compare shapes instead
    import re

    canon = lambda s: re.sub(r"v\d+_[0-9a-f]+", "v", s)
    assert canon(a) == canon(b)
