"""Every example must run to completion as a real subprocess."""

import os
import subprocess
import sys

import pytest

EXAMPLES = os.path.join(os.path.dirname(__file__), "..", "..", "examples")


def run_example(name, *args, timeout=600):
    return subprocess.run(
        [sys.executable, os.path.join(EXAMPLES, name), *args],
        capture_output=True, text=True, timeout=timeout,
    )


@pytest.mark.slow
class TestExamples:
    def test_quickstart(self):
        result = run_example("quickstart.py")
        assert result.returncode == 0, result.stderr
        assert "OK" in result.stdout

    def test_multi_tenant_cloud(self, tmp_path):
        out = tmp_path / "telemetry"
        result = run_example("multi_tenant_cloud.py", str(out))
        assert result.returncode == 0, result.stderr
        assert "isolation held" in result.stdout
        # the run must leave machine-readable telemetry evidence behind
        assert (out / "metrics.prom").exists()
        assert (out / "trace.json").exists()
        events = (out / "security.jsonl").read_text()
        assert '"kind": "declassification"' in events
        assert '"kind": "stall_granted"' in events or \
            '"kind": "stall_denied"' in events

    def test_encrypted_storage(self):
        result = run_example("encrypted_storage.py")
        assert result.returncode == 0, result.stderr
        assert "matches the software CBC" in result.stdout

    def test_security_audit(self, tmp_path):
        log = tmp_path / "audit.jsonl"
        result = run_example("security_audit.py", str(log))
        assert result.returncode == 0, result.stderr
        assert "vulnerability class found statically" in result.stdout
        assert '"kind": "ifc_check"' in log.read_text()

    def test_covert_channel_demo(self):
        result = run_example("covert_channel_demo.py")
        assert result.returncode == 0, result.stderr
        assert "'HI'" in result.stdout          # baseline decodes it
        assert "0.000 bits" in result.stdout    # protected doesn't

    def test_trace_pipeline(self, tmp_path):
        result = run_example("trace_pipeline.py", str(tmp_path / "p.vcd"))
        assert result.returncode == 0, result.stderr
        assert "wrote" in result.stdout
        assert (tmp_path / "p.vcd").exists()

    def test_export_rtl(self, tmp_path):
        result = run_example("export_rtl.py", str(tmp_path))
        assert result.returncode == 0, result.stderr
        assert (tmp_path / "aes_protected.v").exists()
        text = (tmp_path / "aes_protected.v").read_text()
        assert "module aes_protected" in text
