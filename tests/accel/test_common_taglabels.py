"""Tag constants, label constructors, and domain helpers."""

import pytest

from repro.accel.common import (
    FREE_TAG,
    LATTICE,
    VALID_CELL_TAGS,
    VALID_REQUEST_TAGS,
    make_tag,
    master_key_label,
    public_label,
    supervisor_label,
    tag_conf_bits,
    tag_integ_bits,
    user_label,
)
from repro.accel.taglabels import (
    authority_label,
    data_label,
    readout_label,
    released_label,
    request_label,
)
from repro.hdl import Module
from repro.ifc.label import Label


class TestTagConstants:
    def test_supervisor_is_top_trusted(self):
        sup = supervisor_label()
        assert sup.conf == LATTICE.conf_top
        assert sup.integ == LATTICE.integ_bottom  # fully vouched

    def test_master_equals_paper_top_top(self):
        assert master_key_label() == Label(LATTICE, "secret", "trusted")

    def test_free_tag_is_public_trusted(self):
        assert Label.decode(LATTICE, FREE_TAG) == public_label()

    def test_user_labels_isolated(self):
        a, b = user_label("p0"), user_label("p1")
        assert not a.flows_to(b) and not b.flows_to(a)
        assert a.flows_to(supervisor_label().with_integ(a.integ)) or True

    def test_request_tags_distinct_and_valid(self):
        assert len(set(VALID_REQUEST_TAGS)) == len(VALID_REQUEST_TAGS)
        for tag in VALID_REQUEST_TAGS:
            assert 0 <= tag <= 0xFF

    def test_cell_tags_superset_of_request_tags(self):
        assert set(VALID_REQUEST_TAGS) <= set(VALID_CELL_TAGS)
        assert FREE_TAG in VALID_CELL_TAGS

    def test_cell_tags_closed_under_pairwise_join(self):
        for a in VALID_REQUEST_TAGS:
            for b in VALID_REQUEST_TAGS:
                la = Label.decode(LATTICE, a)
                lb = Label.decode(LATTICE, b)
                assert la.join(lb).encode() in VALID_CELL_TAGS

    def test_nibble_helpers(self):
        tag = make_tag(0b1100, 0b0011)
        assert tag_conf_bits(tag) == 0b1100
        assert tag_integ_bits(tag) == 0b0011


class TestLabelConstructors:
    def _sig(self, width=8):
        m = Module("m")
        return m.input("t", width)

    def test_data_label_decodes(self):
        sig = self._sig()
        dl = data_label(sig)
        tag = user_label("p2").encode()
        assert dl.resolve(tag) == user_label("p2")
        assert dl.domain == VALID_CELL_TAGS

    def test_request_label_domain(self):
        dl = request_label(self._sig())
        assert dl.domain == VALID_REQUEST_TAGS

    def test_authority_label_keeps_only_integrity(self):
        dl = authority_label(self._sig())
        tag = user_label("p1").encode()
        resolved = dl.resolve(tag)
        assert resolved.conf == LATTICE.conf_bottom
        assert resolved.integ == user_label("p1").integ

    def test_released_label_is_public_with_vouch(self):
        dl = released_label(self._sig())
        tag = user_label("p3").encode()
        resolved = dl.resolve(tag)
        assert resolved.conf == LATTICE.conf_bottom
        assert resolved.integ == user_label("p3").integ

    def test_readout_label_is_untrusted(self):
        dl = readout_label(self._sig())
        tag = supervisor_label().encode()
        resolved = dl.resolve(tag)
        assert resolved.conf == LATTICE.conf_top
        assert resolved.integ == LATTICE.integ_top  # untrusted

    def test_narrow_tag_signal_rejected_by_tag_label(self):
        from repro.ifc.dependent import tag_label

        with pytest.raises(ValueError):
            tag_label(self._sig(width=4), LATTICE)
