"""AXI4-Lite front-end: register map, handshakes, security behaviour."""

import pytest

from repro.accel.axi import (
    AxiLiteFrontend,
    REG_CMD,
    REG_COUNTERS,
    REG_RESP0,
    REG_RESP_TAG,
    REG_STATUS,
)
from repro.accel.common import (
    CMD_CONFIG,
    CMD_ENCRYPT,
    CMD_LOAD_KEY,
    LATTICE,
    supervisor_label,
    user_label,
)
from repro.aes import encrypt_block
from repro.hdl import Simulator, elaborate_shallow
from repro.ifc.checker import IfcChecker

ALICE = user_label("p0").encode()
EVE = user_label("p1").encode()
SUP = supervisor_label().encode()
KEY = 0x000102030405060708090A0B0C0D0E0F


class AxiHost:
    """Minimal AXI master driving the bridge."""

    def __init__(self):
        self.sim = Simulator(AxiLiteFrontend())

    def write(self, word_addr, value, user):
        s = self.sim
        s.poke("axi.awvalid", 1)
        s.poke("axi.awaddr", word_addr * 4)
        s.poke("axi.awuser", user)
        s.poke("axi.wvalid", 1)
        s.poke("axi.wdata", value)
        s.poke("axi.bready", 1)
        assert s.peek("axi.awready") and s.peek("axi.wready")
        assert s.peek("axi.bvalid")
        s.step()
        s.poke("axi.awvalid", 0)
        s.poke("axi.wvalid", 0)

    def read(self, word_addr, user):
        s = self.sim
        s.poke("axi.arvalid", 1)
        s.poke("axi.araddr", word_addr * 4)
        s.poke("axi.aruser", user)
        s.poke("axi.rready", 1)
        assert s.peek("axi.rvalid")
        value = s.peek("axi.rdata")
        s.step()
        s.poke("axi.arvalid", 0)
        return value

    def put128(self, value, user):
        for i in range(4):
            self.write(i, (value >> (96 - 32 * i)) & 0xFFFFFFFF, user)

    def fire(self, cmd, user, slot=0, word=0, addr=0):
        bits = ((cmd & 3) << 1 | (slot & 3) << 3 | (word & 7) << 5
                | (addr & 0xF) << 8 | 1)
        self.write(REG_CMD, bits, user)

    def get128(self, base, user):
        value = 0
        for i in range(4):
            value = (value << 32) | self.read(base + i, user)
        return value


@pytest.fixture()
def host():
    h = AxiHost()
    for cell in (2, 3):
        h.put128(ALICE, SUP)
        h.fire(CMD_CONFIG, SUP, addr=8 + cell)
        h.sim.step(2)
    h.put128(KEY >> 64, ALICE)
    h.fire(CMD_LOAD_KEY, ALICE, slot=1, word=0)
    h.sim.step(2)
    h.put128(KEY & ((1 << 64) - 1), ALICE)
    h.fire(CMD_LOAD_KEY, ALICE, slot=1, word=1)
    h.sim.step(20)
    return h


class TestTransactions:
    def test_encrypt_over_axi(self, host):
        pt = 0x00112233445566778899AABBCCDDEEFF
        host.put128(pt, ALICE)
        host.fire(CMD_ENCRYPT, ALICE, slot=1)
        for _ in range(60):
            if host.read(REG_STATUS, ALICE) & 2:
                break
            host.sim.step()
        assert host.get128(REG_RESP0, ALICE) == encrypt_block(pt, KEY)

    def test_resp_tag_names_the_owner(self, host):
        host.put128(0x1, ALICE)
        host.fire(CMD_ENCRYPT, ALICE, slot=1)
        for _ in range(60):
            if host.read(REG_STATUS, ALICE) & 2:
                break
            host.sim.step()
        tag = host.read(REG_RESP_TAG, ALICE)
        assert tag & 0xF == ALICE & 0xF  # vouch nibble survives release

    def test_counters_register(self, host):
        # master-key misuse over AXI bumps the suppressed counter
        host.put128(0x2, ALICE)
        host.fire(CMD_ENCRYPT, ALICE, slot=0)
        host.sim.step(60)
        counters = host.read(REG_COUNTERS, ALICE)
        assert counters & 0xFF >= 1  # suppressed byte

    def test_cross_user_operand_fragments_never_mix(self, host):
        """Eve writing one data word resets Alice's staged operand."""
        host.put128(0xA11CE, ALICE)
        host.write(1, 0xEE, EVE)  # Eve touches DATA1
        host.fire(CMD_ENCRYPT, EVE, slot=1)
        host.sim.step(60)
        # whatever came out, it must not be Alice's operand under her key
        resp = host.get128(REG_RESP0, EVE)
        assert resp != encrypt_block(0xA11CE, KEY)

    def test_mailbox_only_captures_routed_blocks(self, host):
        """Polling with Eve's tag never captures Alice's decrypt output."""
        ct = encrypt_block(0x5EC2E7, KEY)
        host.put128(ct, ALICE)
        host.fire(1, ALICE, slot=1)  # decrypt: plaintext keeps Alice's conf
        # poll only as Eve while the block drains
        for _ in range(60):
            host.read(REG_STATUS, EVE)
            host.sim.step()
        assert host.get128(REG_RESP0, EVE) != 0x5EC2E7


class TestStatic:
    def test_bridge_verifies_modularly(self):
        report = IfcChecker(
            elaborate_shallow(AxiLiteFrontend()), LATTICE,
            max_hypotheses=1 << 20,
        ).check()
        assert report.ok(), report.summary()
