"""The 30-stage pipeline: correctness vs the reference cipher,
throughput, fine-grained interleaving, guards, and the modular check."""

import random

import pytest

from repro.accel.common import LATTICE, OP_DEC, OP_ENC, user_label
from repro.accel.pipeline import AesPipeline
from repro.aes import decrypt_block, encrypt_block
from repro.hdl import Simulator, elaborate_shallow
from repro.ifc.checker import IfcChecker

KEY1 = 0x000102030405060708090A0B0C0D0E0F
KEY2 = 0xFEDCBA9876543210FEDCBA9876543210
T1 = user_label("p1").encode()
T2 = user_label("p2").encode()


@pytest.fixture(scope="module")
def pipe_sim():
    sim = Simulator(AesPipeline(protected=True))
    sim.poke("pipe.advance", 1)
    for slot, key, tag in ((1, KEY1, T1), (2, KEY2, T2)):
        sim.poke("pipe.kx_start", 1)
        sim.poke("pipe.kx_slot", slot)
        sim.poke("pipe.kx_key", key)
        sim.poke("pipe.kx_key_tag", tag)
        sim.step()
        sim.poke("pipe.kx_start", 0)
        sim.run_until("pipe.kx_busy", 0, 50)
    return sim


def _issue(sim, op, slot, tag, data, valid=1):
    sim.poke("pipe.in_valid", valid)
    sim.poke("pipe.in_op", op)
    sim.poke("pipe.in_slot", slot)
    sim.poke("pipe.in_user", tag)
    sim.poke("pipe.in_data", data)


def _collect(sim, n, max_cycles=120):
    outs = []
    for _ in range(max_cycles):
        if sim.peek("pipe.out_valid"):
            outs.append((sim.peek("pipe.out_data"), sim.peek("pipe.out_tag"),
                         sim.peek("pipe.out_op")))
        sim.step()
        sim.poke("pipe.in_valid", 0)
        if len(outs) >= n:
            break
    return outs


class TestCorrectness:
    def test_single_encrypt(self, pipe_sim):
        pt = 0x00112233445566778899AABBCCDDEEFF
        _issue(pipe_sim, OP_ENC, 1, T1, pt)
        outs = _collect(pipe_sim, 1)
        assert outs[0][0] == encrypt_block(pt, KEY1)

    def test_single_decrypt(self, pipe_sim):
        pt = 0x42
        ct = encrypt_block(pt, KEY2)
        _issue(pipe_sim, OP_DEC, 2, T2, ct)
        outs = _collect(pipe_sim, 1)
        assert outs[0][0] == pt

    def test_latency_is_30_cycles(self, pipe_sim):
        _issue(pipe_sim, OP_ENC, 1, T1, 0x1234)
        issued = pipe_sim.cycle
        for _ in range(60):
            pipe_sim.step()
            pipe_sim.poke("pipe.in_valid", 0)
            if pipe_sim.peek("pipe.out_valid"):
                break
        assert pipe_sim.cycle - issued == 30

    def test_back_to_back_throughput(self, pipe_sim):
        rng = random.Random(5)
        pts = [rng.getrandbits(128) for _ in range(10)]
        for i, pt in enumerate(pts):
            _issue(pipe_sim, OP_ENC, 1, T1, pt)
            pipe_sim.step()
        pipe_sim.poke("pipe.in_valid", 0)
        outs = _collect(pipe_sim, 10)
        assert [o[0] for o in outs] == [encrypt_block(p, KEY1) for p in pts]
        # one result per cycle once the pipe is full
        assert len(outs) == 10

    def test_interleaved_users_and_ops(self, pipe_sim):
        """Fig. 7: different users, different keys, enc and dec mixed,
        one issue per cycle."""
        rng = random.Random(9)
        jobs = []
        for i in range(8):
            pt = rng.getrandbits(128)
            if i % 2 == 0:
                jobs.append((OP_ENC, 1, T1, pt, encrypt_block(pt, KEY1)))
            else:
                ct = encrypt_block(pt, KEY2)
                jobs.append((OP_DEC, 2, T2, ct, pt))
        for op, slot, tag, data, _want in jobs:
            _issue(pipe_sim, op, slot, tag, data)
            pipe_sim.step()
        pipe_sim.poke("pipe.in_valid", 0)
        outs = _collect(pipe_sim, len(jobs))
        assert [o[0] for o in outs] == [j[4] for j in jobs]

    def test_output_tag_is_join_of_user_and_key(self, pipe_sim):
        from repro.ifc.label import Label

        _issue(pipe_sim, OP_ENC, 2, T1, 0x77)  # user p1, key slot owned p2
        outs = _collect(pipe_sim, 1)
        joined = Label.decode(LATTICE, T1).join(Label.decode(LATTICE, T2))
        assert outs[0][1] == joined.encode()

    def test_stall_freezes_pipeline(self, pipe_sim):
        _issue(pipe_sim, OP_ENC, 1, T1, 0xAA)
        pipe_sim.step()
        pipe_sim.poke("pipe.in_valid", 0)
        pipe_sim.poke("pipe.advance", 0)
        pipe_sim.step(50)  # frozen: nothing should come out
        assert pipe_sim.peek("pipe.out_valid") == 0
        pipe_sim.poke("pipe.advance", 1)
        outs = _collect(pipe_sim, 1)
        assert outs[0][0] == encrypt_block(0xAA, KEY1)


class TestRkGuard:
    def test_rekey_mid_flight_yields_garbage_not_leak(self):
        """Re-tagging a slot while blocks are in flight zeroes the round
        keys for those blocks (fail-secure)."""
        sim = Simulator(AesPipeline(protected=True))
        sim.poke("pipe.advance", 1)
        sim.poke("pipe.kx_start", 1)
        sim.poke("pipe.kx_slot", 1)
        sim.poke("pipe.kx_key", KEY1)
        sim.poke("pipe.kx_key_tag", T1)
        sim.step()
        sim.poke("pipe.kx_start", 0)
        sim.run_until("pipe.kx_busy", 0, 50)

        pt = 0x5A5A
        _issue(sim, OP_ENC, 1, T1, pt)
        sim.step()
        sim.poke("pipe.in_valid", 0)
        sim.step(5)
        # mid-flight, the slot is re-keyed to another owner
        sim.poke("pipe.kx_start", 1)
        sim.poke("pipe.kx_slot", 1)
        sim.poke("pipe.kx_key", KEY2)
        sim.poke("pipe.kx_key_tag", T2)
        sim.step()
        sim.poke("pipe.kx_start", 0)
        outs = _collect(sim, 1, max_cycles=60)
        # neither the old-key nor new-key ciphertext leaks out correctly
        assert outs[0][0] != encrypt_block(pt, KEY1)
        assert outs[0][0] != encrypt_block(pt, KEY2)


class TestStatic:
    def test_modular_check_passes(self):
        report = IfcChecker(
            elaborate_shallow(AesPipeline(protected=True)), LATTICE
        ).check()
        assert report.ok(), report.summary()
