"""End-to-end behaviour of both accelerator tops through the driver."""

import random

import pytest

from repro.accel.common import CMD_CONFIG, MASTER_SLOT
from repro.accel.config_regs import CFG_SCRATCH
from repro.accel.driver import AcceleratorDriver, make_users
from repro.accel.key_expand_unit import DEFAULT_MASTER_KEY
from repro.aes import decrypt_block, encrypt_block

KEY = 0x00112233445566778899AABBCCDDEEFF
RNG = random.Random(77)


def _provision(drv, users, slot=1, who="u0", key=KEY):
    if drv.module.protected:
        drv.allocate_slot(slot, users[who])
    drv.load_key(users[who], slot, key)


class TestProtectedTop:
    def test_encrypt_decrypt_roundtrip(self, protected_driver, users):
        drv = protected_driver
        _provision(drv, users)
        drv.set_reader(users["u0"])
        pt = RNG.getrandbits(128)
        ct, lat = drv.encrypt_blocking(users["u0"], 1, pt)
        assert ct == encrypt_block(pt, KEY)
        assert 30 <= lat <= 35
        drv.decrypt(users["u0"], 1, ct)
        got = None
        for _ in range(60):
            drv.step()
            for r in drv.take_responses():
                got = r.data
        assert got == pt

    def test_two_users_interleaved(self, protected_driver, users):
        drv = protected_driver
        key2 = 0xA5A5A5A5A5A5A5A5A5A5A5A5A5A5A5A5
        _provision(drv, users, 1, "u0", KEY)
        _provision(drv, users, 2, "u1", key2)
        pts = [RNG.getrandbits(128) for _ in range(6)]
        for i, pt in enumerate(pts):
            who = "u0" if i % 2 == 0 else "u1"
            drv.encrypt(users[who], 1 if i % 2 == 0 else 2, pt)
        # drain: alternate readers
        for i in range(120):
            drv.set_reader(users["u0"] if i % 2 == 0 else users["u1"])
            drv.step()
        got = sorted(r.data for r in drv.take_responses())
        want = sorted(
            encrypt_block(pt, KEY if i % 2 == 0 else key2)
            for i, pt in enumerate(pts)
        )
        assert got == want

    def test_key_expansion_constant_time_at_top(self, users):
        from repro.accel.protected import AesAcceleratorProtected

        times = set()
        for key in (0, (1 << 128) - 1):
            drv = AcceleratorDriver(AesAcceleratorProtected())
            drv.allocate_slot(1, users["u0"])
            hi, lo = key >> 64, key & ((1 << 64) - 1)
            drv.issue(2, users["u0"], slot=1, word=0, data=hi)
            drv.issue(2, users["u0"], slot=1, word=1, data=lo)
            times.add(drv.wait_key_ready())
        assert len(times) == 1

    def test_counters_start_clean(self, protected_driver):
        counters = protected_driver.counters()
        assert counters["suppressed_count"] == 0
        assert counters["blocked_count"] == 0
        assert counters["dropped_count"] == 0

    def test_config_scratch_roundtrip(self, protected_driver, users):
        drv = protected_driver
        drv.write_config(users["supervisor"], CFG_SCRATCH, 0x12345678)
        assert drv.read_config(CFG_SCRATCH) == 0x12345678


class TestBaselineTop:
    def test_encrypt_matches_reference(self, baseline_driver, users):
        drv = baseline_driver
        _provision(drv, users)
        drv.set_reader(users["u0"])
        pt = RNG.getrandbits(128)
        ct, _ = drv.encrypt_blocking(users["u0"], 1, pt)
        assert ct == encrypt_block(pt, KEY)

    def test_master_key_usable_by_anyone(self, baseline_driver, users):
        drv = baseline_driver
        drv.set_reader(users["u1"])
        pt = 0x13579BDF
        ct, _ = drv.encrypt_blocking(users["u1"], MASTER_SLOT, pt)
        assert ct == encrypt_block(pt, DEFAULT_MASTER_KEY)

    def test_any_user_writes_config(self, baseline_driver, users):
        drv = baseline_driver
        drv.write_config(users["u1"], CFG_SCRATCH, 0xE11)
        assert drv.read_config(CFG_SCRATCH) == 0xE11


class TestDriverApi:
    def test_issue_timeout(self, protected_driver, users):
        drv = protected_driver
        # jam the pipe: never drain, flood until in_ready stays low...
        # simpler: out_ready low with full pipeline eventually stalls accepts
        drv.sim.poke(f"{drv.top}.out_ready", 0)
        # the protected design drops rather than wedging, so in_ready stays
        # high; just confirm issue() returns promptly
        drv.encrypt(users["u0"], 1, 0x1)

    def test_make_users_shape(self, users):
        assert set(users) == {"u0", "u1", "u2", "u3", "supervisor"}
        assert users["supervisor"] == 0xFF
