"""RoundPowerUnit: functional parity with the reference round, and the
masking invariant — the unmasked value exists only on the host."""

import random

import pytest

from repro.accel.masked import (
    ROUND_LATENCY,
    RoundPowerUnit,
    mask128,
    masked_sbox_table,
    recombine,
    reference_round,
)
from repro.aes.constants import SBOX
from repro.hdl import Simulator

BACKENDS = ("compiled", "interp", "batched")


def _sim(masked, backend):
    if backend == "batched":
        pytest.importorskip("numpy")
    return Simulator(RoundPowerUnit(masked=masked), backend=backend)


def _run(sim, pokes, table=None):
    sim.reset()  # reset first: it restores memories to their init image
    if table is not None:
        for addr, v in enumerate(table):
            sim.poke_mem("roundpow.msbox", addr, v)
    for sig, v in pokes.items():
        sim.poke(f"roundpow.{sig}", v)
    sim.poke("roundpow.in_valid", 1)
    sim.step(1)
    sim.poke("roundpow.in_valid", 0)
    sim.step(ROUND_LATENCY - 1)
    assert sim.peek("roundpow.out_valid") == 1


class TestHelpers:
    def test_mask128_replicates(self):
        assert mask128(0xAB) == int("AB" * 16, 16)

    def test_masked_table_recomputation(self):
        table = masked_sbox_table(0x3C, 0x5A)
        for v in range(256):
            assert table[v] == SBOX[v ^ 0x3C] ^ 0x5A

    def test_zero_masks_are_identity(self):
        assert masked_sbox_table(0, 0) == list(SBOX)


class TestUnmasked:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_matches_reference(self, backend):
        rng = random.Random(71)
        sim = _sim(False, backend)
        for _ in range(3):
            p, k = rng.getrandbits(128), rng.getrandbits(128)
            _run(sim, {"in_state": p, "in_key": k})
            assert sim.peek("roundpow.out_share0") == reference_round(p, k)


class TestMasked:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_shares_recombine_to_reference(self, backend):
        rng = random.Random(72)
        sim = _sim(True, backend)
        for _ in range(3):
            p, k = rng.getrandbits(128), rng.getrandbits(128)
            # m_out = 0 degenerates to the unmasked table; exclude it so
            # the blinded-share assertion below is meaningful
            m_in, m_out = rng.randrange(256), rng.randrange(1, 256)
            _run(sim, {"in_state": p ^ mask128(m_in), "in_key": k,
                       "in_mask_out": m_out},
                 table=masked_sbox_table(m_in, m_out))
            s0 = sim.peek("roundpow.out_share0")
            mk = sim.peek("roundpow.out_mask")
            assert recombine(s0, mk) == reference_round(p, k)
            assert s0 != reference_round(p, k)  # share alone is blinded

    def test_unmasked_value_absent_from_every_signal(self):
        """The recombined round output never appears in the netlist:
        every 128-bit signal holds a share, not the secret value."""
        rng = random.Random(73)
        p, k = rng.getrandbits(128), rng.getrandbits(128)
        m_in, m_out = 0x9D, 0x4E
        secret = reference_round(p, k)
        sub_secret = int.from_bytes(
            bytes(SBOX[b] for b in (p ^ k).to_bytes(16, "big")), "big")

        sim = _sim(True, "compiled")
        sim.reset()
        for addr, v in enumerate(masked_sbox_table(m_in, m_out)):
            sim.poke_mem("roundpow.msbox", addr, v)
        sim.poke("roundpow.in_state", p ^ mask128(m_in))
        sim.poke("roundpow.in_key", k)
        sim.poke("roundpow.in_mask_out", m_out)
        sim.poke("roundpow.in_valid", 1)
        seen = set()
        for cycle in range(ROUND_LATENCY + 2):
            seen.update(sim.values())
            sim.step(1)
            sim.poke("roundpow.in_valid", 0)
        seen.update(sim.values())
        assert secret not in seen
        assert sub_secret not in seen
