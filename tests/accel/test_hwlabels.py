"""The gate-level tag operations must agree with the Label algebra —
property-tested over every encodable label pair."""

from hypothesis import given
from hypothesis import strategies as st

from repro.accel.common import LATTICE, make_tag, tag_conf_bits, tag_integ_bits
from repro.accel.hwlabels import (
    conf_bits,
    hw_conf_leq,
    hw_conf_meet,
    hw_declassify_ok,
    hw_flows_to,
    hw_is_supervisor,
    hw_join,
    integ_bits,
    make_tag_expr,
)
from repro.hdl import Module, Simulator
from repro.ifc.label import Label
from repro.ifc.nonmalleable import may_declassify

tags = st.integers(min_value=0, max_value=255)


class _HwOps(Module):
    """Harness exposing every hardware tag op on two tag inputs."""

    def __init__(self):
        super().__init__("hw")
        self.a = self.input("a", 8)
        self.b = self.input("b", 8)
        o = self.output
        self.flows = o("flows", 1)
        self.flows <<= hw_flows_to(self.a, self.b)
        self.cleq = o("cleq", 1)
        self.cleq <<= hw_conf_leq(conf_bits(self.a), conf_bits(self.b))
        self.join = o("join", 8)
        self.join <<= hw_join(self.a, self.b)
        self.cmeet = o("cmeet", 4)
        self.cmeet <<= hw_conf_meet(conf_bits(self.a), conf_bits(self.b))
        self.dok = o("dok", 1)
        self.dok <<= hw_declassify_ok(self.a, self.a)
        self.sup = o("sup", 1)
        self.sup <<= hw_is_supervisor(self.a)
        self.rebuilt = o("rebuilt", 8)
        self.rebuilt <<= make_tag_expr(conf_bits(self.a), integ_bits(self.a))


import pytest


@pytest.fixture(scope="module")
def sim():
    return Simulator(_HwOps())


@given(tags, tags)
def test_flows_matches_label_algebra(a, b):
    s = Simulator(_HwOps())  # cheap build; hypothesis needs isolation
    s.poke("hw.a", a)
    s.poke("hw.b", b)
    la, lb = Label.decode(LATTICE, a), Label.decode(LATTICE, b)
    assert s.peek("hw.flows") == int(la.flows_to(lb))
    assert s.peek("hw.cleq") == int(la.conf_flows_to(lb))
    assert s.peek("hw.join") == la.join(lb).encode()
    assert s.peek("hw.cmeet") == LATTICE.encode_conf(
        LATTICE.conf_meet(la.conf, lb.conf)
    )
    assert s.peek("hw.rebuilt") == a


@given(tags)
def test_declassify_gate_matches_eq1(data_tag):
    """hw_declassify_ok(tag, tag) == Eq. (1) with the block's own
    authority and a public target (the §3.2.2 exit check)."""
    s = Simulator(_HwOps())
    s.poke("hw.a", data_tag)
    s.poke("hw.b", 0)
    decoded = Label.decode(LATTICE, data_tag)
    target = Label(LATTICE, "public", decoded.integ)
    authority = Label(LATTICE, "public", decoded.integ)
    assert s.peek("hw.dok") == int(may_declassify(decoded, target, authority))


def test_supervisor_detection(sim):
    from repro.accel.common import supervisor_label, user_label

    sim.poke("hw.a", supervisor_label().encode())
    assert sim.peek("hw.sup") == 1
    sim.poke("hw.a", user_label("p0").encode())
    assert sim.peek("hw.sup") == 0


class TestTagHelpers:
    def test_make_tag_roundtrip(self):
        tag = make_tag(0b1010, 0b0101)
        assert tag_conf_bits(tag) == 0b1010
        assert tag_integ_bits(tag) == 0b0101

    def test_masking(self):
        assert make_tag(0xFF, 0xFF) == 0xFF
