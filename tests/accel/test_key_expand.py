import pytest

from repro.accel.common import LATTICE, user_label
from repro.accel.key_expand_unit import DEFAULT_MASTER_KEY, KeyExpandUnit
from repro.aes import expand_key, round_key_as_int
from repro.hdl import Simulator, elaborate
from repro.ifc.checker import IfcChecker


def _expand(sim, slot, key, tag):
    sim.poke("keyexp.start", 1)
    sim.poke("keyexp.slot", slot)
    sim.poke("keyexp.key", key)
    sim.poke("keyexp.key_tag", tag)
    sim.step()
    sim.poke("keyexp.start", 0)
    return sim.run_until("keyexp.ready", 1, 200) + 1


class TestFunctional:
    def test_round_keys_match_reference(self):
        sim = Simulator(KeyExpandUnit(protected=True))
        key = 0x2B7E151628AED2A6ABF7158809CF4F3C
        _expand(sim, 2, key, user_label("p2").encode())
        want = [round_key_as_int(rk) for rk in expand_key(key, 128)]
        got = [sim.peek_mem("keyexp.rk_mem_2", i) for i in range(11)]
        assert got == want

    def test_master_key_preloaded(self):
        sim = Simulator(KeyExpandUnit(protected=True))
        want = [round_key_as_int(rk) for rk in
                expand_key(DEFAULT_MASTER_KEY, 128)]
        got = [sim.peek_mem("keyexp.rk_mem_0", i) for i in range(11)]
        assert got == want

    def test_constant_time(self):
        cycles = set()
        for key in (0, (1 << 128) - 1, 0xDEADBEEF):
            sim = Simulator(KeyExpandUnit(protected=True))
            cycles.add(_expand(sim, 1, key, 0x11))
        assert len(cycles) == 1

    def test_flawed_variant_is_key_dependent(self):
        def t(key):
            sim = Simulator(KeyExpandUnit(protected=False, timing_flaw=True))
            return _expand(sim, 1, key, 0x11)

        assert t(0) != t((1 << 128) - 1)

    def test_slot_tag_updated(self):
        sim = Simulator(KeyExpandUnit(protected=True))
        tag = user_label("p3").encode()
        _expand(sim, 3, 0x1234, tag)
        assert sim.peek("keyexp.slot_tag_3") == tag

    def test_busy_during_expansion(self):
        sim = Simulator(KeyExpandUnit(protected=True))
        sim.poke("keyexp.start", 1)
        sim.poke("keyexp.slot", 1)
        sim.poke("keyexp.key", 7)
        sim.poke("keyexp.key_tag", 0x11)
        sim.step()
        sim.poke("keyexp.start", 0)
        assert sim.peek("keyexp.busy") == 1
        sim.step(15)
        assert sim.peek("keyexp.busy") == 0

    def test_rekey_guard_blocks_stale_expansion(self):
        """If the slot is re-tagged mid-expansion the guarded writes stop
        (fail-secure) rather than mixing keys across owners."""
        sim = Simulator(KeyExpandUnit(protected=True))
        sim.poke("keyexp.start", 1)
        sim.poke("keyexp.slot", 1)
        sim.poke("keyexp.key", 0xAAAA)
        sim.poke("keyexp.key_tag", user_label("p1").encode())
        sim.step()
        sim.poke("keyexp.start", 0)
        sim.step(2)
        # backdoor: another owner grabs the slot tag mid-flight
        sim_state_tag = user_label("p2").encode()
        # (simulate via the register directly)
        reg = sim.netlist.signal_by_path("keyexp.slot_tag_1")
        idx = sim._be.state_index[reg]
        sim._state[idx] = sim_state_tag
        sim._dirty = True
        before = [sim.peek_mem("keyexp.rk_mem_1", i) for i in range(11)]
        sim.step(12)
        after = [sim.peek_mem("keyexp.rk_mem_1", i) for i in range(11)]
        assert before == after  # no further writes landed


class TestStatic:
    def test_protected_unit_verifies(self):
        report = IfcChecker(
            elaborate(KeyExpandUnit(protected=True)), LATTICE
        ).check()
        assert report.ok(), report.summary()

    def test_flawed_unit_flagged_on_timing(self):
        """Fig. 6: the data-dependent schedule shows up as label errors on
        the public busy/ready signals."""
        report = IfcChecker(
            elaborate(KeyExpandUnit(protected=True, timing_flaw=True)),
            LATTICE,
        ).check()
        assert not report.ok()
        sinks = " ".join(report.distinct_sinks())
        assert "busy" in sinks or "ready" in sinks
