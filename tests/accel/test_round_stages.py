"""Pipeline stage modules: functional vs the software round functions,
tag/metadata lockstep, and modular static checks."""

import random

import pytest

from repro.accel.common import LATTICE, OP_DEC, OP_ENC
from repro.accel.round_stages import StageA, StageB, StageC
from repro.aes import (
    add_round_key,
    block_to_state,
    inv_mix_columns,
    inv_shift_rows,
    inv_sub_bytes,
    mix_columns,
    shift_rows,
    state_to_block,
    sub_bytes,
)
from repro.hdl import Simulator, elaborate
from repro.ifc.checker import IfcChecker

RNG = random.Random(2024)


def _drive(sim, name, data, op, tag=0x11, rk=None):
    sim.poke(f"{name}.advance", 1)
    sim.poke(f"{name}.valid_i", 1)
    sim.poke(f"{name}.data_i", data)
    sim.poke(f"{name}.op_i", op)
    sim.poke(f"{name}.tag_i", tag)
    sim.poke(f"{name}.slot_i", 2)
    if rk is not None:
        sim.poke(f"{name}.rk_i", rk)
    sim.step()


class TestStageA:
    def test_encrypt_is_sub_bytes(self):
        sim = Simulator(StageA(2, protected=True))
        v = RNG.getrandbits(128)
        _drive(sim, "sa2", v, OP_ENC)
        want = state_to_block(sub_bytes(block_to_state(v)))
        assert sim.peek("sa2.data_o") == want

    def test_decrypt_is_inv_shift_rows(self):
        sim = Simulator(StageA(2, protected=True))
        v = RNG.getrandbits(128)
        _drive(sim, "sa2", v, OP_DEC)
        want = state_to_block(inv_shift_rows(block_to_state(v)))
        assert sim.peek("sa2.data_o") == want

    def test_metadata_travels_with_data(self):
        sim = Simulator(StageA(1, protected=True))
        _drive(sim, "sa1", 0xABC, OP_DEC, tag=0x42)
        assert sim.peek("sa1.tag_o") == 0x42
        assert sim.peek("sa1.op_o") == OP_DEC
        assert sim.peek("sa1.slot_o") == 2
        assert sim.peek("sa1.valid_o") == 1

    def test_stall_holds_everything(self):
        sim = Simulator(StageA(1, protected=True))
        _drive(sim, "sa1", 0x1, OP_ENC, tag=0x11)
        held_data = sim.peek("sa1.data_o")
        sim.poke("sa1.advance", 0)
        sim.poke("sa1.data_i", 0xFFFF)
        sim.poke("sa1.tag_i", 0x99)
        sim.step(3)
        assert sim.peek("sa1.data_o") == held_data
        assert sim.peek("sa1.tag_o") == 0x11

    def test_bad_round_index(self):
        with pytest.raises(ValueError):
            StageA(0, protected=True)
        with pytest.raises(ValueError):
            StageA(11, protected=True)


class TestStageB:
    def test_encrypt_mid_round(self):
        sim = Simulator(StageB(4, protected=True))
        v = RNG.getrandbits(128)
        _drive(sim, "sb4", v, OP_ENC)
        want = state_to_block(mix_columns(shift_rows(block_to_state(v))))
        assert sim.peek("sb4.data_o") == want

    def test_encrypt_last_round_skips_mixcolumns(self):
        sim = Simulator(StageB(10, protected=True))
        v = RNG.getrandbits(128)
        _drive(sim, "sb10", v, OP_ENC)
        want = state_to_block(shift_rows(block_to_state(v)))
        assert sim.peek("sb10.data_o") == want

    def test_decrypt_is_inv_sub_bytes(self):
        sim = Simulator(StageB(7, protected=True))
        v = RNG.getrandbits(128)
        _drive(sim, "sb7", v, OP_DEC)
        want = state_to_block(inv_sub_bytes(block_to_state(v)))
        assert sim.peek("sb7.data_o") == want


class TestStageC:
    def test_encrypt_is_ark(self):
        sim = Simulator(StageC(3, protected=True))
        v, rk = RNG.getrandbits(128), RNG.getrandbits(128)
        _drive(sim, "sc3", v, OP_ENC, rk=rk)
        assert sim.peek("sc3.data_o") == v ^ rk

    def test_decrypt_mid_round_adds_inv_mixcolumns(self):
        sim = Simulator(StageC(3, protected=True))
        v, rk = RNG.getrandbits(128), RNG.getrandbits(128)
        _drive(sim, "sc3", v, OP_DEC, rk=rk)
        st = add_round_key(block_to_state(v), block_to_state(rk))
        want = state_to_block(inv_mix_columns(st))
        assert sim.peek("sc3.data_o") == want

    def test_decrypt_last_round_plain_ark(self):
        sim = Simulator(StageC(10, protected=True))
        v, rk = RNG.getrandbits(128), RNG.getrandbits(128)
        _drive(sim, "sc10", v, OP_DEC, rk=rk)
        assert sim.peek("sc10.data_o") == v ^ rk


class TestStaticChecks:
    @pytest.mark.parametrize("cls,r", [(StageA, 1), (StageB, 10), (StageC, 5)])
    def test_protected_stage_verifies(self, cls, r):
        report = IfcChecker(elaborate(cls(r, protected=True)), LATTICE).check()
        assert report.ok(), report.summary()

    def test_baseline_stage_has_no_obligations(self):
        report = IfcChecker(elaborate(StageA(1, protected=False)), LATTICE).check()
        assert report.checked_sinks == 0
