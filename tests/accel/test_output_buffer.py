"""Per-principal output holding buffer: isolation, drops, routing."""

import pytest

from repro.accel.common import LATTICE, user_label
from repro.accel.output_buffer import PER_PRINCIPAL_DEPTH, OutputBuffer
from repro.hdl import Simulator, elaborate
from repro.ifc.checker import IfcChecker
from repro.ifc.label import Label

ALICE = user_label("p0").encode()
EVE = user_label("p1").encode()
# declassified enc outputs: public conf, the user's vouch
ALICE_REL = Label(LATTICE, "public", ("p0",)).encode()
EVE_REL = Label(LATTICE, "public", ("p1",)).encode()


@pytest.fixture()
def sim():
    s = Simulator(OutputBuffer(protected=True))
    s.poke("outbuf.pop", 0)
    s.poke("outbuf.push", 0)
    return s


def push(s, tag, data):
    s.poke("outbuf.push", 1)
    s.poke("outbuf.push_tag", tag)
    s.poke("outbuf.push_data", data)
    s.step()
    s.poke("outbuf.push", 0)


def pop(s, rd_tag):
    s.poke("outbuf.rd_tag", rd_tag)
    if not s.peek("outbuf.out_valid"):
        return None
    data = s.peek("outbuf.out_data")
    s.poke("outbuf.pop", 1)
    s.step()
    s.poke("outbuf.pop", 0)
    return data


class TestFifoPerPrincipal:
    def test_order_within_principal(self, sim):
        for i in range(3):
            push(sim, ALICE_REL, 0xA0 + i)
        got = [pop(sim, ALICE) for _ in range(3)]
        assert got == [0xA0, 0xA1, 0xA2]

    def test_principals_do_not_interfere(self, sim):
        push(sim, ALICE_REL, 0xAA)
        push(sim, EVE_REL, 0xEE)
        # Eve drains hers even though Alice's is older and unread
        assert pop(sim, EVE) == 0xEE
        assert pop(sim, ALICE) == 0xAA

    def test_reader_cannot_take_foreign_entry(self, sim):
        push(sim, ALICE_REL, 0xAA)
        sim.poke("outbuf.rd_tag", EVE)
        assert sim.peek("outbuf.out_valid") == 0

    def test_own_slot_overflow_drops_own_block(self, sim):
        for i in range(PER_PRINCIPAL_DEPTH + 2):
            push(sim, ALICE_REL, i)
        assert sim.peek("outbuf.dropped") == 2
        # Eve's slot is unaffected
        push(sim, EVE_REL, 0x55)
        assert pop(sim, EVE) == 0x55

    def test_full_reflects_incoming_slot(self, sim):
        for i in range(PER_PRINCIPAL_DEPTH):
            push(sim, ALICE_REL, i)
        sim.poke("outbuf.push_tag", ALICE_REL)
        assert sim.peek("outbuf.full") == 1
        sim.poke("outbuf.push_tag", EVE_REL)
        assert sim.peek("outbuf.full") == 0

    def test_empty_flag(self, sim):
        assert sim.peek("outbuf.empty") == 1
        push(sim, ALICE_REL, 1)
        assert sim.peek("outbuf.empty") == 0
        pop(sim, ALICE)
        assert sim.peek("outbuf.empty") == 1

    def test_confidential_entry_needs_dominating_reader(self, sim):
        """A decrypt output keeps (user-conf, user-vouch): only that user
        reads it; a released (public) one also only routes to its owner
        via the vouch check."""
        alice_secret = Label(LATTICE, ("p0",), ("p0",)).encode()
        push(sim, alice_secret, 0x5EC)
        sim.poke("outbuf.rd_tag", EVE)
        assert sim.peek("outbuf.out_valid") == 0
        assert pop(sim, ALICE) == 0x5EC


class TestStatic:
    def test_protected_buffer_verifies(self):
        report = IfcChecker(
            elaborate(OutputBuffer(protected=True)), LATTICE,
            max_hypotheses=1 << 20,
        ).check()
        assert report.ok(), report.summary()
