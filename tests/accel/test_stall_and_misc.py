"""Stall controller (Fig. 8), config registers, debug peripheral,
declassifier, and arbiter."""

import pytest

from repro.accel.common import (
    LATTICE,
    OP_DEC,
    OP_ENC,
    master_key_label,
    supervisor_label,
    user_label,
)
from repro.accel.arbiter import RequestArbiter
from repro.accel.config_regs import CFG_FEATURES, ConfigRegs, FEATURE_DEBUG_EN
from repro.accel.debug import DebugPeripheral
from repro.accel.declassifier import Declassifier
from repro.accel.stall import StallController
from repro.hdl import Simulator, elaborate
from repro.ifc.checker import IfcChecker
from repro.ifc.label import Label

ALICE = user_label("p0")
EVE = user_label("p1")
SUP = supervisor_label()


class TestStallController:
    def _sim(self, n=4):
        return Simulator(StallController(n, protected=True))

    def test_empty_pipeline_grants_anyone(self):
        sim = self._sim()
        sim.poke("stallctl.stall_req", 1)
        sim.poke("stallctl.req_tag", ALICE.encode())
        assert sim.peek("stallctl.stall") == 1

    def test_own_data_only_grants(self):
        sim = self._sim()
        sim.poke("stallctl.v0", 1)
        sim.poke("stallctl.c0", 0b0001)  # Alice's conf in stage 0
        sim.poke("stallctl.stall_req", 1)
        sim.poke("stallctl.req_tag", ALICE.encode())
        assert sim.peek("stallctl.stall") == 1

    def test_foreign_data_denies(self):
        """Fig. 8: Eve's data in flight denies Alice's stall."""
        sim = self._sim()
        sim.poke("stallctl.v0", 1)
        sim.poke("stallctl.c0", 0b0001)  # Alice
        sim.poke("stallctl.v1", 1)
        sim.poke("stallctl.c1", 0b0010)  # Eve
        sim.poke("stallctl.stall_req", 1)
        sim.poke("stallctl.req_tag", ALICE.encode())
        assert sim.peek("stallctl.stall") == 0
        assert sim.peek("stallctl.allowed") == 0

    def test_invalid_stages_ignored(self):
        sim = self._sim()
        sim.poke("stallctl.v0", 0)
        sim.poke("stallctl.c0", 0b0010)  # Eve's conf but invalid
        sim.poke("stallctl.v1", 1)
        sim.poke("stallctl.c1", 0b0001)
        sim.poke("stallctl.stall_req", 1)
        sim.poke("stallctl.req_tag", ALICE.encode())
        assert sim.peek("stallctl.stall") == 1

    def test_public_requester_needs_all_public(self):
        sim = self._sim()
        sim.poke("stallctl.v0", 1)
        sim.poke("stallctl.c0", 0b0001)
        sim.poke("stallctl.stall_req", 1)
        sim.poke("stallctl.req_tag", Label(LATTICE, "public", "trusted").encode())
        assert sim.peek("stallctl.stall") == 1  # ∅ ⊑ anything

    def test_baseline_always_grants(self):
        sim = Simulator(StallController(4, protected=False))
        sim.poke("stallctl.v0", 1)
        sim.poke("stallctl.c0", 0b0010)
        sim.poke("stallctl.stall_req", 1)
        sim.poke("stallctl.req_tag", ALICE.encode())
        assert sim.peek("stallctl.stall") == 1

    def test_static_check(self):
        report = IfcChecker(
            elaborate(StallController(4, protected=True)), LATTICE
        ).check()
        assert report.ok(), report.summary()


class TestConfigRegs:
    def test_supervisor_writes(self):
        sim = Simulator(ConfigRegs(protected=True))
        sim.poke("cfg.we", 1)
        sim.poke("cfg.addr", 3)
        sim.poke("cfg.wdata", 0xBEEF)
        sim.poke("cfg.user_tag", SUP.encode())
        sim.step()
        sim.poke("cfg.we", 0)
        sim.poke("cfg.raddr", 3)
        assert sim.peek("cfg.rdata") == 0xBEEF

    def test_user_write_blocked(self):
        sim = Simulator(ConfigRegs(protected=True))
        sim.poke("cfg.we", 1)
        sim.poke("cfg.addr", 3)
        sim.poke("cfg.wdata", 0x1337)
        sim.poke("cfg.user_tag", EVE.encode())
        assert sim.peek("cfg.wr_blocked") == 1
        sim.step()
        sim.poke("cfg.we", 0)
        sim.poke("cfg.raddr", 3)
        assert sim.peek("cfg.rdata") == 0

    def test_reads_open_to_all(self):
        sim = Simulator(ConfigRegs(protected=True))
        sim.poke("cfg.raddr", CFG_FEATURES)
        assert sim.peek("cfg.rdata") != 0  # reset features readable

    def test_feature_bits_decoded(self):
        sim = Simulator(ConfigRegs(protected=True))
        sim.poke("cfg.we", 1)
        sim.poke("cfg.addr", CFG_FEATURES)
        sim.poke("cfg.wdata", FEATURE_DEBUG_EN)
        sim.poke("cfg.user_tag", SUP.encode())
        sim.step()
        assert sim.peek("cfg.debug_en") == 1
        assert sim.peek("cfg.outbuf_en") == 0

    def test_static_check(self):
        report = IfcChecker(elaborate(ConfigRegs(protected=True)), LATTICE).check()
        assert report.ok(), report.summary()


class TestDebugPeripheral:
    def _capture(self, sim, data, tag):
        sim.poke("debug.enable", 1)
        sim.poke("debug.cap_valid", 1)
        sim.poke("debug.cap_data", data)
        sim.poke("debug.cap_tag", tag)
        sim.step()
        sim.poke("debug.cap_valid", 0)

    def test_supervisor_reads_trace(self):
        sim = Simulator(DebugPeripheral(protected=True))
        self._capture(sim, 0xDA7A, ALICE.encode())
        sim.poke("debug.raddr", 0)
        sim.poke("debug.reader_tag", SUP.encode())
        assert sim.peek("debug.rdata") == 0xDA7A

    def test_foreign_reader_blocked(self):
        sim = Simulator(DebugPeripheral(protected=True))
        self._capture(sim, 0xDA7A, ALICE.encode())
        sim.poke("debug.raddr", 0)
        sim.poke("debug.reader_tag", EVE.encode())
        assert sim.peek("debug.rdata") == 0
        assert sim.peek("debug.rdenied") == 1

    def test_baseline_open_to_all(self):
        sim = Simulator(DebugPeripheral(protected=False))
        self._capture(sim, 0xDA7A, ALICE.encode())
        sim.poke("debug.raddr", 0)
        sim.poke("debug.reader_tag", EVE.encode())
        assert sim.peek("debug.rdata") == 0xDA7A

    def test_disabled_trace_captures_nothing(self):
        sim = Simulator(DebugPeripheral(protected=True))
        sim.poke("debug.enable", 0)
        sim.poke("debug.cap_valid", 1)
        sim.poke("debug.cap_data", 0x1)
        sim.poke("debug.cap_tag", ALICE.encode())
        sim.step()
        sim.poke("debug.reader_tag", SUP.encode())
        sim.poke("debug.raddr", 0)
        assert sim.peek("debug.rdata") == 0

    def test_static_check(self):
        report = IfcChecker(
            elaborate(DebugPeripheral(protected=True)), LATTICE
        ).check()
        assert report.ok(), report.summary()


class TestDeclassifier:
    def _present(self, sim, tag, op, data=0x11):
        sim.poke("declass.in_valid", 1)
        sim.poke("declass.in_tag", tag)
        sim.poke("declass.in_op", op)
        sim.poke("declass.in_data", data)

    def test_own_key_ciphertext_released_public(self):
        sim = Simulator(Declassifier(protected=True))
        own = ALICE.join(ALICE).encode()
        self._present(sim, own, OP_ENC, 0xC7)
        assert sim.peek("declass.out_valid") == 1
        out_tag = sim.peek("declass.out_tag")
        assert Label.decode(LATTICE, out_tag).conf == frozenset()

    def test_master_key_misuse_suppressed(self):
        sim = Simulator(Declassifier(protected=True))
        mixed = ALICE.join(master_key_label()).encode()
        self._present(sim, mixed, OP_ENC)
        assert sim.peek("declass.out_valid") == 0
        assert sim.peek("declass.suppressed") == 1
        assert sim.peek("declass.out_data") == 0  # nothing leaks

    def test_supervisor_master_release(self):
        sim = Simulator(Declassifier(protected=True))
        tag = SUP.join(master_key_label()).encode()
        self._present(sim, tag, OP_ENC)
        assert sim.peek("declass.out_valid") == 1

    def test_decrypt_keeps_label(self):
        sim = Simulator(Declassifier(protected=True))
        own = ALICE.join(ALICE).encode()
        self._present(sim, own, OP_DEC, 0x9)
        assert sim.peek("declass.out_valid") == 1
        assert sim.peek("declass.out_tag") == own

    def test_static_check(self):
        report = IfcChecker(
            elaborate(Declassifier(protected=True)), LATTICE
        ).check()
        assert report.ok(), report.summary()


class TestArbiter:
    def _sim(self):
        sim = Simulator(RequestArbiter(protected=True))
        sim.poke("arbiter.ready", 1)
        return sim

    def test_single_requester_granted(self):
        sim = self._sim()
        sim.poke("arbiter.v2", 1)
        sim.poke("arbiter.cmd2", 1)
        sim.poke("arbiter.data2", 0x22)
        sim.poke("arbiter.tag2", user_label("p2").encode())
        assert sim.peek("arbiter.out_valid") == 1
        assert sim.peek("arbiter.grant2") == 1
        assert sim.peek("arbiter.out_data") == 0x22
        assert sim.peek("arbiter.out_tag") == user_label("p2").encode()

    def test_round_robin_rotates(self):
        sim = self._sim()
        for i in range(4):
            sim.poke(f"arbiter.v{i}", 1)
            sim.poke(f"arbiter.tag{i}", user_label(f"p{i}").encode())
        grants = []
        for _ in range(8):
            g = [sim.peek(f"arbiter.grant{i}") for i in range(4)]
            grants.append(g.index(1))
            sim.step()
        # every port served twice over 8 cycles
        assert sorted(grants) == [0, 0, 1, 1, 2, 2, 3, 3]

    def test_no_request_no_grant(self):
        sim = self._sim()
        assert sim.peek("arbiter.out_valid") == 0
        assert all(sim.peek(f"arbiter.grant{i}") == 0 for i in range(4))

    def test_not_ready_blocks_grant(self):
        sim = self._sim()
        sim.poke("arbiter.ready", 0)
        sim.poke("arbiter.v0", 1)
        assert sim.peek("arbiter.grant0") == 0

    def test_static_check(self):
        report = IfcChecker(
            elaborate(RequestArbiter(protected=True)), LATTICE
        ).check()
        assert report.ok(), report.summary()
