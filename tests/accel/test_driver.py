"""Transaction driver behaviour."""

import pytest

from repro.accel.common import CMD_ENCRYPT
from repro.accel.driver import AcceleratorDriver, Response, make_users
from repro.accel.protected import AesAcceleratorProtected
from repro.aes import encrypt_block

KEY = 0x0F1E2D3C4B5A69788796A5B4C3D2E1F0


class TestDriver:
    def test_allocate_and_load(self, protected_driver, users):
        drv = protected_driver
        drv.allocate_slot(2, users["u1"])
        drv.load_key(users["u1"], 2, KEY)
        assert drv.sim.peek_mem(f"{drv.top}.scratchpad.cells", 4) == KEY >> 64
        assert drv.sim.peek_mem(f"{drv.top}.scratchpad.tags", 4) == users["u1"]

    def test_encrypt_blocking_measures_latency(self, protected_driver, users):
        drv = protected_driver
        drv.allocate_slot(1, users["u0"])
        drv.load_key(users["u0"], 1, KEY)
        drv.set_reader(users["u0"])
        ct, latency = drv.encrypt_blocking(users["u0"], 1, 0x11)
        assert ct == encrypt_block(0x11, KEY)
        assert latency >= 30

    def test_suppressed_block_returns_none(self, protected_driver, users):
        drv = protected_driver
        drv.set_reader(users["u1"])
        ct, latency = drv.encrypt_blocking(users["u1"], 0, 0x22,
                                           max_cycles=60)
        assert ct is None
        assert drv.counters()["suppressed_count"] == 1

    def test_responses_carry_cycle_and_tag(self, protected_driver, users):
        drv = protected_driver
        drv.allocate_slot(1, users["u0"])
        drv.load_key(users["u0"], 1, KEY)
        drv.set_reader(users["u0"])
        drv.encrypt(users["u0"], 1, 0x1)
        drv.step(40)
        (resp,) = drv.take_responses()
        assert isinstance(resp, Response)
        assert resp.cycle > 0
        assert resp.tag & 0xF == users["u0"] & 0xF
        assert "Response(" in repr(resp)

    def test_take_responses_clears(self, protected_driver, users):
        drv = protected_driver
        drv.allocate_slot(1, users["u0"])
        drv.load_key(users["u0"], 1, KEY)
        drv.set_reader(users["u0"])
        drv.encrypt(users["u0"], 1, 0x1)
        drv.step(40)
        assert drv.take_responses()
        assert drv.take_responses() == []

    def test_wait_key_ready_timeout(self, protected_driver):
        with pytest.raises(TimeoutError):
            # nothing pending: kx never goes busy, but the wait sees idle
            # immediately, so force a tiny budget on a busy engine instead
            drv = protected_driver
            users = make_users()
            drv.allocate_slot(1, users["u0"])
            hi = KEY >> 64
            lo = KEY & ((1 << 64) - 1)
            drv.issue(2, users["u0"], slot=1, word=0, data=hi)
            drv.issue(2, users["u0"], slot=1, word=1, data=lo)
            drv.wait_key_ready(max_cycles=1)

    def test_make_users_distinct(self):
        users = make_users()
        assert len(set(users.values())) == 5
