"""AES-128/192/256 wide engine (Fig. 1's key-length generality)."""

import random

import pytest

from repro.accel.common import LATTICE, OP_DEC, OP_ENC, user_label
from repro.accel.wide import AesEngineWide, WordSerialKeyExpand
from repro.aes import decrypt_block, encrypt_block, expand_key, round_key_as_int
from repro.hdl import Simulator, elaborate, elaborate_shallow
from repro.ifc.checker import IfcChecker

VECTORS = {
    128: 0x2B7E151628AED2A6ABF7158809CF4F3C,
    192: 0x8E73B0F7DA0E6452C810F32B809079E562F8EAD2522C6B7B,
    256: 0x603DEB1015CA71BE2B73AEF0857D77811F352C073B6108D72D9810A30914DFF4,
}


def _expand(sim, key, tag=0x11):
    sim.poke("wkexp.start", 1)
    sim.poke("wkexp.key", key)
    sim.poke("wkexp.key_tag", tag)
    sim.step()
    sim.poke("wkexp.start", 0)
    return sim.run_until("wkexp.ready", 1, 100) + 1


class TestWordSerialSchedule:
    @pytest.mark.parametrize("bits", [128, 192, 256])
    def test_matches_reference(self, bits):
        key = VECTORS[bits]
        sim = Simulator(WordSerialKeyExpand(bits))
        _expand(sim, key)
        want = []
        for rk in expand_key(key, bits):
            v = round_key_as_int(rk)
            want += [(v >> (96 - 32 * j)) & 0xFFFFFFFF for j in range(4)]
        got = [sim.peek_mem("wkexp.rk_mem", i) for i in range(len(want))]
        assert got == want

    @pytest.mark.parametrize("bits", [128, 192, 256])
    def test_constant_time(self, bits):
        cycles = set()
        for key in (0, (1 << bits) - 1):
            sim = Simulator(WordSerialKeyExpand(bits))
            cycles.add(_expand(sim, key))
        assert len(cycles) == 1

    def test_rekey_replaces_schedule(self):
        sim = Simulator(WordSerialKeyExpand(128))
        _expand(sim, VECTORS[128])
        first = sim.peek_mem("wkexp.rk_mem", 43)
        _expand(sim, VECTORS[128] ^ 0xFF)
        assert sim.peek_mem("wkexp.rk_mem", 43) != first

    def test_bad_key_size(self):
        with pytest.raises(ValueError):
            WordSerialKeyExpand(160)

    @pytest.mark.parametrize("bits", [128, 192, 256])
    def test_protected_unit_verifies(self, bits):
        report = IfcChecker(
            elaborate(WordSerialKeyExpand(bits, protected=True)), LATTICE
        ).check()
        assert report.ok(), report.summary()


class TestWideEngine:
    @pytest.mark.parametrize("bits", [128, 192, 256])
    def test_encrypt_decrypt_roundtrip(self, bits):
        rng = random.Random(bits)
        key = rng.getrandbits(bits)
        sim = Simulator(AesEngineWide(bits))
        sim.poke("wide.advance", 1)
        sim.poke("wide.kx_start", 1)
        sim.poke("wide.kx_key", key)
        sim.poke("wide.kx_key_tag", 0x11)
        sim.step()
        sim.poke("wide.kx_start", 0)
        sim.run_until("wide.kx_busy", 0, 100)

        pt = rng.getrandbits(128)
        sim.poke("wide.in_valid", 1)
        sim.poke("wide.in_op", OP_ENC)
        sim.poke("wide.in_user", 0x11)
        sim.poke("wide.in_data", pt)
        sim.step()
        sim.poke("wide.in_valid", 0)
        lat = sim.run_until("wide.out_valid", 1, 100) + 1
        ct = sim.peek("wide.out_data")
        assert ct == encrypt_block(pt, key, bits)
        assert lat == 3 * {128: 10, 192: 12, 256: 14}[bits]

        sim.step(2)
        sim.poke("wide.in_valid", 1)
        sim.poke("wide.in_op", OP_DEC)
        sim.poke("wide.in_data", ct)
        sim.step()
        sim.poke("wide.in_valid", 0)
        sim.run_until("wide.out_valid", 1, 100)
        assert sim.peek("wide.out_data") == pt

    @pytest.mark.parametrize("bits,latency", [(128, 30), (192, 36), (256, 42)])
    def test_latency_is_3nr(self, bits, latency):
        assert AesEngineWide(bits).latency == latency

    def test_back_to_back_throughput_256(self):
        rng = random.Random(256)
        key = rng.getrandbits(256)
        sim = Simulator(AesEngineWide(256))
        sim.poke("wide.advance", 1)
        sim.poke("wide.kx_start", 1)
        sim.poke("wide.kx_key", key)
        sim.poke("wide.kx_key_tag", 0x11)
        sim.step()
        sim.poke("wide.kx_start", 0)
        sim.run_until("wide.kx_busy", 0, 100)
        pts = [rng.getrandbits(128) for _ in range(6)]
        for pt in pts:
            sim.poke("wide.in_valid", 1)
            sim.poke("wide.in_op", OP_ENC)
            sim.poke("wide.in_user", 0x11)
            sim.poke("wide.in_data", pt)
            sim.step()
        sim.poke("wide.in_valid", 0)
        outs = []
        for _ in range(60):
            if sim.peek("wide.out_valid"):
                outs.append(sim.peek("wide.out_data"))
            sim.step()
        assert outs == [encrypt_block(pt, key, 256) for pt in pts]

    def test_protected_wide_verifies_modularly(self):
        report = IfcChecker(
            elaborate_shallow(AesEngineWide(256, protected=True)), LATTICE
        ).check()
        assert report.ok(), report.summary()
