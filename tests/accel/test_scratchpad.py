import pytest

from repro.accel.common import (
    FREE_TAG,
    LATTICE,
    master_key_label,
    supervisor_label,
    user_label,
)
from repro.accel.key_expand_unit import DEFAULT_MASTER_KEY
from repro.accel.scratchpad import KeyScratchpad
from repro.hdl import Simulator, elaborate
from repro.ifc.checker import IfcChecker

SUP = supervisor_label().encode()
ALICE = user_label("p0").encode()
EVE = user_label("p1").encode()


def _alloc(sim, cell, tag, as_user=SUP):
    sim.poke("scratchpad.set_tag", 1)
    sim.poke("scratchpad.set_cell", cell)
    sim.poke("scratchpad.set_value", tag)
    sim.poke("scratchpad.user_tag", as_user)
    sim.step()
    sim.poke("scratchpad.set_tag", 0)


def _write(sim, cell, data, tag):
    sim.poke("scratchpad.we", 1)
    sim.poke("scratchpad.wcell", cell)
    sim.poke("scratchpad.wdata", data)
    sim.poke("scratchpad.user_tag", tag)
    blocked = sim.peek("scratchpad.wr_blocked")
    sim.step()
    sim.poke("scratchpad.we", 0)
    return blocked


class TestTagChecks:
    def test_owner_may_write(self):
        sim = Simulator(KeyScratchpad(protected=True))
        _alloc(sim, 3, ALICE)
        assert _write(sim, 3, 0xAB, ALICE) == 0
        assert sim.peek_mem("scratchpad.cells", 3) == 0xAB

    def test_foreign_write_blocked(self):
        sim = Simulator(KeyScratchpad(protected=True))
        _alloc(sim, 3, ALICE)
        assert _write(sim, 3, 0xEE, EVE) == 1
        assert sim.peek_mem("scratchpad.cells", 3) == 0

    def test_free_cells_reject_unallocated_writes(self):
        """FREE is (⊥,⊤): secret key material cannot land in a public
        cell — not even the supervisor's — until the cell is allocated."""
        sim = Simulator(KeyScratchpad(protected=True))
        assert _write(sim, 4, 0x1, EVE) == 1
        assert _write(sim, 4, 0x2, SUP) == 1
        _alloc(sim, 4, SUP)
        assert _write(sim, 4, 0x3, SUP) == 0

    def test_master_cells_reject_users(self):
        sim = Simulator(KeyScratchpad(protected=True))
        assert _write(sim, 0, 0xBAD, EVE) == 1
        assert (sim.peek_mem("scratchpad.cells", 0)
                == DEFAULT_MASTER_KEY >> 64)

    def test_alloc_requires_supervisor(self):
        sim = Simulator(KeyScratchpad(protected=True))
        _alloc(sim, 5, EVE, as_user=EVE)  # Eve self-allocating
        assert sim.peek_mem("scratchpad.tags", 5) == FREE_TAG

    def test_realloc_changes_owner(self):
        sim = Simulator(KeyScratchpad(protected=True))
        _alloc(sim, 6, ALICE)
        _alloc(sim, 6, EVE)
        assert _write(sim, 6, 0x9, EVE) == 0

    def test_baseline_has_no_checks(self):
        sim = Simulator(KeyScratchpad(protected=False))
        assert _write(sim, 0, 0xBAD, EVE) == 0
        assert sim.peek_mem("scratchpad.cells", 0) == 0xBAD


class TestKeyPort:
    def test_key128_concatenates_cells(self):
        sim = Simulator(KeyScratchpad(protected=True))
        _alloc(sim, 2, ALICE)
        _alloc(sim, 3, ALICE)
        _write(sim, 2, 0x1111, ALICE)
        _write(sim, 3, 0x2222, ALICE)
        sim.poke("scratchpad.rslot", 1)
        assert sim.peek("scratchpad.key128") == (0x1111 << 64) | 0x2222

    def test_key_tag_is_join_of_cells(self):
        sim = Simulator(KeyScratchpad(protected=True))
        _alloc(sim, 2, ALICE)
        _alloc(sim, 3, EVE)  # mixed ownership
        sim.poke("scratchpad.rslot", 1)
        from repro.ifc.label import Label

        tag = sim.peek("scratchpad.key_tag")
        joined = Label.decode(LATTICE, ALICE).join(Label.decode(LATTICE, EVE))
        assert tag == joined.encode()

    def test_master_slot_tag(self):
        sim = Simulator(KeyScratchpad(protected=True))
        sim.poke("scratchpad.rslot", 0)
        assert sim.peek("scratchpad.key_tag") == master_key_label().encode()


class TestReadPort:
    def test_rdata_and_rtag(self):
        sim = Simulator(KeyScratchpad(protected=True))
        _alloc(sim, 4, ALICE)
        _write(sim, 4, 0x77, ALICE)
        sim.poke("scratchpad.rcell", 4)
        assert sim.peek("scratchpad.rdata") == 0x77
        assert sim.peek("scratchpad.rtag") == ALICE


class TestStatic:
    def test_protected_verifies(self):
        report = IfcChecker(
            elaborate(KeyScratchpad(protected=True)), LATTICE
        ).check()
        assert report.ok(), report.summary()

    def test_unguarded_write_variant_fails(self):
        """Remove the tag check and the checker objects (Fig. 5's point)."""
        from repro.hdl import when

        pad = KeyScratchpad(protected=True)
        # adversarial modification: an extra unchecked write path
        with when(pad.set_tag):  # any strobe, no supervisor gate
            pad.cells.write(pad.wcell, pad.wdata)
        report = IfcChecker(elaborate(pad), LATTICE).check()
        assert not report.ok()
