"""Property-based differential test: every round-transform expression
tree must match the software reference on arbitrary blocks."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accel.round_exprs import (
    from_bytes,
    get_byte,
    inv_mix_columns_expr,
    inv_shift_rows_expr,
    mix_columns_expr,
    rot_word_expr,
    sbox_lookup_expr,
    shift_rows_expr,
    sub_word_expr,
    xtime_expr,
)
from repro.aes import (
    SBOX,
    block_to_state,
    inv_mix_columns,
    inv_shift_rows,
    mix_columns,
    shift_rows,
    state_to_block,
    sub_bytes,
)
from repro.aes.gf import xtime
from repro.hdl import Module, Simulator

blocks = st.integers(min_value=0, max_value=(1 << 128) - 1)
bytes_ = st.integers(min_value=0, max_value=255)


class _Harness(Module):
    def __init__(self):
        super().__init__("h")
        self.d = self.input("d", 128)
        self.b = self.input("b", 8)
        self.w = self.input("w", 32)
        rom = self.rom("sbox", SBOX, 8)
        outs = {
            "sr": shift_rows_expr(self.d),
            "isr": inv_shift_rows_expr(self.d),
            "mc": mix_columns_expr(self.d),
            "imc": inv_mix_columns_expr(self.d),
            "sb": sbox_lookup_expr(self.d, rom),
        }
        for name, expr in outs.items():
            out = self.output(name, 128)
            out <<= expr
        xt = self.output("xt", 8)
        xt <<= xtime_expr(self.b)
        rw = self.output("rw", 32)
        rw <<= rot_word_expr(self.w)
        sw = self.output("sw", 32)
        sw <<= sub_word_expr(self.w, rom)
        byte5 = self.output("byte5", 8)
        byte5 <<= get_byte(self.d, 5)
        rebuilt = self.output("rebuilt", 128)
        rebuilt <<= from_bytes([get_byte(self.d, i) for i in range(16)])


import pytest

# one shared simulator: hypothesis drives values through pokes only
_SIM = Simulator(_Harness())


@settings(max_examples=40, deadline=None)
@given(blocks)
def test_block_transforms(v):
    s = _SIM
    s.poke("h.d", v)
    state = block_to_state(v)
    assert s.peek("h.sr") == state_to_block(shift_rows(state))
    assert s.peek("h.isr") == state_to_block(inv_shift_rows(state))
    assert s.peek("h.mc") == state_to_block(mix_columns(state))
    assert s.peek("h.imc") == state_to_block(inv_mix_columns(state))
    assert s.peek("h.sb") == state_to_block(sub_bytes(state))
    assert s.peek("h.rebuilt") == v
    assert s.peek("h.byte5") == state[5]


@settings(max_examples=40, deadline=None)
@given(bytes_)
def test_xtime(v):
    s = _SIM
    s.poke("h.b", v)
    assert s.peek("h.xt") == xtime(v)


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=(1 << 32) - 1))
def test_word_helpers(w):
    s = _SIM
    s.poke("h.w", w)
    rotated = ((w << 8) | (w >> 24)) & 0xFFFFFFFF
    assert s.peek("h.rw") == rotated
    subbed = 0
    for i in range(4):
        subbed |= SBOX[(w >> (8 * i)) & 0xFF] << (8 * i)
    assert s.peek("h.sw") == subbed


def test_from_bytes_needs_16():
    from repro.hdl import lit

    with pytest.raises(ValueError):
        from_bytes([lit(0, 8)] * 15)
