"""Pipeline correctness under arbitrary stall patterns: whatever the
advance signal does, blocks come out correct and in order."""

import random

import pytest

from repro.accel.common import OP_ENC, user_label
from repro.accel.pipeline import AesPipeline
from repro.aes import encrypt_block
from repro.hdl import Simulator

KEY = 0x2B7E151628AED2A6ABF7158809CF4F3C
TAG = user_label("p0").encode()


@pytest.fixture(scope="module")
def keyed_pipe():
    sim = Simulator(AesPipeline(protected=True))
    sim.poke("pipe.advance", 1)
    sim.poke("pipe.kx_start", 1)
    sim.poke("pipe.kx_slot", 1)
    sim.poke("pipe.kx_key", KEY)
    sim.poke("pipe.kx_key_tag", TAG)
    sim.step()
    sim.poke("pipe.kx_start", 0)
    sim.run_until("pipe.kx_busy", 0, 50)
    return sim


@pytest.mark.parametrize("seed", [1, 7, 42])
def test_random_stall_pattern_preserves_results(keyed_pipe, seed):
    sim = keyed_pipe
    rng = random.Random(seed)
    pts = [rng.getrandbits(128) for _ in range(5)]
    queue = list(pts)
    outs = []
    for _ in range(400):
        advance = rng.random() < 0.6
        sim.poke("pipe.advance", int(advance))
        if advance and queue:
            sim.poke("pipe.in_valid", 1)
            sim.poke("pipe.in_op", OP_ENC)
            sim.poke("pipe.in_slot", 1)
            sim.poke("pipe.in_user", TAG)
            sim.poke("pipe.in_data", queue[0])
        else:
            sim.poke("pipe.in_valid", 0)
        if advance and sim.peek("pipe.out_valid"):
            outs.append(sim.peek("pipe.out_data"))
        sim.step()
        if advance and queue:
            queue.pop(0)
        if len(outs) == len(pts):
            break
    sim.poke("pipe.advance", 1)
    sim.poke("pipe.in_valid", 0)
    # drain any leftovers
    for _ in range(60):
        if len(outs) == len(pts):
            break
        if sim.peek("pipe.out_valid"):
            outs.append(sim.peek("pipe.out_data"))
        sim.step()
    assert outs == [encrypt_block(pt, KEY) for pt in pts]


def test_observation_port_reflects_round1(keyed_pipe):
    from repro.aes import block_to_state, state_to_block, sub_bytes
    from repro.aes.key_schedule import expand_key, round_key_as_int

    sim = keyed_pipe
    sim.poke("pipe.advance", 1)
    pt = 0x42
    sim.poke("pipe.in_valid", 1)
    sim.poke("pipe.in_op", OP_ENC)
    sim.poke("pipe.in_slot", 1)
    sim.poke("pipe.in_user", TAG)
    sim.poke("pipe.in_data", pt)
    sim.step()
    sim.poke("pipe.in_valid", 0)
    # after one cycle the observation point holds SubBytes(pt ^ rk0)
    rk0 = round_key_as_int(expand_key(KEY, 128)[0])
    want = state_to_block(sub_bytes(block_to_state(pt ^ rk0)))
    assert sim.peek("pipe.obs_valid") == 1
    assert sim.peek("pipe.obs_data") == want
    assert sim.peek("pipe.obs_tag") == sim.peek("pipe.sa1.tag_o")
