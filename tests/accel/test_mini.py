"""The reduced Fig. 8 composition — static proof and simulation."""

import pytest

from repro.accel.common import LATTICE, user_label
from repro.accel.mini import BUBBLE_TAG, MiniTaggedPipeline
from repro.hdl import Simulator, elaborate
from repro.ifc.checker import IfcChecker

ALICE = user_label("p0").encode()
EVE = user_label("p1").encode()


class TestStaticProof:
    @pytest.mark.parametrize("n", [2, 3])
    def test_guarded_verifies_without_data_downgrade(self, n):
        report = IfcChecker(
            elaborate(MiniTaggedPipeline(n, guarded=True)), LATTICE,
            max_hypotheses=1 << 20,
        ).check()
        assert report.ok(), report.summary()

    def test_unguarded_shows_the_covert_channel(self):
        report = IfcChecker(
            elaborate(MiniTaggedPipeline(2, guarded=False)), LATTICE,
            max_hypotheses=1 << 20,
        ).check()
        assert not report.ok()
        # the errors land on the data registers: the reader's level flows
        # into other users' data timing
        assert any("data" in e.sink for e in report.errors)


class TestSimulation:
    def _sim(self, guarded=True):
        sim = Simulator(MiniTaggedPipeline(3, guarded=guarded))
        sim.poke("mini.in_valid", 0)
        sim.poke("mini.stall_req", 0)
        sim.poke("mini.rd_tag", ALICE)
        return sim

    def _push(self, sim, tag, data):
        sim.poke("mini.in_valid", 1)
        sim.poke("mini.in_tag", tag)
        sim.poke("mini.in_data", data)
        sim.step()
        sim.poke("mini.in_valid", 0)

    def test_data_flows_through(self):
        sim = self._sim()
        self._push(sim, ALICE, 0x5A)
        sim.step(2)
        assert sim.peek("mini.out_valid") == 1
        assert sim.peek("mini.out_data") == 0x5A
        assert sim.peek("mini.out_tag") == ALICE

    def test_bubbles_read_as_invalid(self):
        sim = self._sim()
        sim.step(5)
        assert sim.peek("mini.out_valid") == 0
        assert sim.peek("mini.out_tag") == BUBBLE_TAG

    def test_stall_granted_when_pipe_is_own(self):
        sim = self._sim()
        self._push(sim, ALICE, 1)
        sim.poke("mini.stall_req", 1)
        sim.poke("mini.rd_tag", ALICE)
        held = sim.peek("mini.out_valid")
        sim.step(4)
        # pipeline frozen: the block never progresses
        assert sim.peek("mini.out_valid") == held

    def test_stall_denied_with_foreign_data(self):
        sim = self._sim()
        self._push(sim, ALICE, 1)
        self._push(sim, EVE, 2)
        sim.poke("mini.stall_req", 1)
        sim.poke("mini.rd_tag", ALICE)  # Alice tries to stall over Eve
        # pipeline keeps moving: blocks reach and leave the exit
        seen = []
        for _ in range(4):
            seen.append(sim.peek("mini.out_valid"))
            sim.step()
        assert 1 in seen and seen[-1] == 0

    def test_unguarded_always_stalls(self):
        sim = self._sim(guarded=False)
        self._push(sim, ALICE, 1)
        self._push(sim, EVE, 2)
        sim.poke("mini.stall_req", 1)
        sim.poke("mini.rd_tag", ALICE)
        sim.step(6)
        assert sim.peek("mini.out_valid") == 0  # frozen over Eve's data
