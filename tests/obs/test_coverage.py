"""Coverage observatory: collector, map algebra, planes, gate, CLI."""

import argparse
import json

import pytest

from repro.hdl import Module, Simulator, mux, when
from repro.obs.coverage import (
    THRESHOLDS,
    CoverageCollector,
    CoverageMap,
    append_ledger,
    enforcement_net,
    load_ledger,
    run_coverage_collection,
    run_coverage_campaign,
)

BACKENDS = ("interp", "compiled", "batched")


class Toggler(Module):
    """Tiny design with known toggle behaviour plus a RAM and a ROM."""

    def __init__(self):
        super().__init__("tg")
        self.en = self.input("en", 1)
        self.d = self.input("d", 8)
        self.addr = self.input("addr", 4)
        self.cnt = self.reg("cnt", 8)
        self.hi = self.reg("hi", 4)  # never driven past reset: stays dead
        self.m = self.mem("m", 12, 8)
        self.rom = self.rom("rom", [7 * i % 251 for i in range(16)], 8)
        self.q = self.output("q", 8)
        self.romq = self.output("romq", 8)
        self.cnt <<= mux(self.en, self.cnt + 1, self.cnt)
        self.q <<= self.m.read(self.addr)
        self.romq <<= self.rom.read(self.addr)
        with when(self.en):
            self.m.write(self.addr, self.d)


def _make_sim(backend, lanes=1):
    if backend == "batched":
        pytest.importorskip("numpy")
        return Simulator(Toggler(), backend=backend, lanes=lanes)
    return Simulator(Toggler(), backend=backend)


def _drive(sim):
    for cyc in range(12):
        sim.poke("tg.en", cyc % 3 != 0)
        sim.poke("tg.d", (0x5A + cyc) & 0xFF)
        sim.poke("tg.addr", cyc % 5)
        sim.step()


class TestCollectorSmallDesign:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_counter_toggles_recorded(self, backend):
        sim = _make_sim(backend)
        with CoverageCollector(sim) as col:
            _drive(sim)
        cm = col.map
        cnt = cm.signals["tg.cnt"]
        # the counter reaches 8 -> bits 0..3 rose; bit 0 also fell
        assert cnt["rise"] & 0x1 and cnt["fall"] & 0x1
        assert cnt["ever"] & 0x8
        # the never-driven register stays fully silent
        hi = cm.signals["tg.hi"]
        assert hi["rise"] == hi["fall"] == hi["ever"] == 0
        assert cm.cycles == 13  # 12 stepped snapshots + the finish() one

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_mem_write_and_read_addresses(self, backend):
        sim = _make_sim(backend)
        with CoverageCollector(sim) as col:
            _drive(sim)
        m = col.map.mems["tg.m"]
        # en is low on cycles 0,3,6,9 — writes land on addrs {1,2,4} etc.
        assert m["written"] != 0
        assert m["read_observed"]
        # addr cycles 0..4 were all presented to the read port
        assert m["read"] & 0b11111 == 0b11111
        rom = col.map.mems["tg.rom"]
        assert rom["read"] & 0b11111 == 0b11111
        assert rom["written"] == 0

    def test_same_value_write_is_invisible(self):
        # documented approximation: content diffing cannot see a write
        # that stores the value already present
        sim = _make_sim("compiled")
        with CoverageCollector(sim) as col:
            sim.poke("tg.en", 1)
            sim.poke("tg.d", 0)   # mem cells reset to 0
            sim.poke("tg.addr", 9)
            sim.step()
            sim.step()
        assert not col.map.mems["tg.m"]["written"] & (1 << 9)

    def test_cross_backend_fingerprints_identical(self):
        pytest.importorskip("numpy")
        fps = set()
        for backend in BACKENDS:
            lanes = 3 if backend == "batched" else 1
            sim = _make_sim(backend, lanes=lanes)
            with CoverageCollector(sim) as col:
                _drive(sim)
            fps.add(col.map.fingerprint())
        assert len(fps) == 1

    def test_detach_restores_hot_path(self):
        sim = _make_sim("compiled")
        col = CoverageCollector(sim)
        col.finish()
        before = col.map.cycles
        sim.step(5)
        assert col.map.cycles == before


class TestCoverageMap:
    def _map(self, rise, fall, ever):
        cm = CoverageMap()
        cm.signals["x"] = {"width": 8, "rise": rise, "fall": fall,
                           "ever": ever}
        cm.cycles = 10
        cm.backends = ["interp"]
        return cm

    def test_merge_is_union(self):
        a = self._map(0x01, 0x02, 0x03)
        b = self._map(0x10, 0x20, 0x30)
        b.backends = ["compiled"]
        a.merge(b)
        assert a.signals["x"] == {"width": 8, "rise": 0x11, "fall": 0x22,
                                  "ever": 0x33}
        assert a.cycles == 20 and a.backends == ["interp", "compiled"]

    def test_round_trip_and_fingerprint_stability(self):
        a = self._map(0x0F, 0xF0, 0xFF)
        a.mems["m"] = {"depth": 12, "written": 0b101, "read": 0b11,
                       "read_observed": True}
        b = CoverageMap.from_dict(a.to_dict())
        assert b.to_dict() == a.to_dict()
        assert b.fingerprint() == a.fingerprint()

    def test_fingerprint_ignores_cycles_and_backends(self):
        a = self._map(1, 2, 3)
        b = self._map(1, 2, 3)
        b.cycles = 999
        b.backends = ["batched"]
        assert a.fingerprint() == b.fingerprint()
        c = self._map(1, 2, 7)
        assert c.fingerprint() != a.fingerprint()

    def test_toggle_stats(self):
        cm = self._map(0b0111, 0b0110, 0b0111)
        cm.signals["dead"] = {"width": 4, "rise": 0, "fall": 0, "ever": 0}
        stats = cm.toggle_stats()
        assert stats == {"nets": 2, "bits": 12, "toggled_bits": 2,
                         "dead_nets": 1}
        assert cm.toggle_stats(["x"])["nets"] == 1


class TestEnforcementNet:
    def test_guard_nets_classified(self):
        assert enforcement_net("aes.stallctl.stall")
        assert enforcement_net("aes.declass.out_valid")
        assert enforcement_net("aes.outbuf.count0")
        assert enforcement_net("aes.advance")
        assert enforcement_net("aes.pipe.sa1.tag_r")

    def test_monitor_plane_excluded(self):
        assert not enforcement_net("aes.pipe.sa1.data_r__conf")
        assert not enforcement_net("aes.pipe.sa1.data_r__integ")
        assert not enforcement_net("__tag.viol0.sticky")
        assert not enforcement_net("aes.pipe.sa1.data_r")


class TestLedger:
    def test_append_load_merges(self, tmp_path):
        path = str(tmp_path / "COVERAGE_ledger.jsonl")
        a = CoverageMap()
        a.signals["x"] = {"width": 4, "rise": 0b01, "fall": 0, "ever": 0b01}
        b = CoverageMap()
        b.signals["x"] = {"width": 4, "rise": 0b10, "fall": 0b10,
                          "ever": 0b11}
        append_ledger(path, a, {"ok": True})
        append_ledger(path, b, {"ok": True})
        count, merged = load_ledger(path)
        assert count == 2
        assert merged.signals["x"]["rise"] == 0b11
        assert merged.signals["x"]["ever"] == 0b11

    def test_missing_ledger_is_empty(self, tmp_path):
        count, merged = load_ledger(str(tmp_path / "nope.jsonl"))
        assert count == 0 and not merged.signals


@pytest.fixture(scope="module")
def accel_coverage():
    """One full compiled-backend collection, shared across gate tests."""
    return run_coverage_collection(backend="compiled")


class TestAcceleratorCoverage:
    def test_enforcement_guards_exercised(self, accel_coverage):
        cmap, census = accel_coverage
        guard_paths = [p for p in cmap.signals if enforcement_net(p)]
        stats = cmap.toggle_stats(guard_paths)
        assert stats["toggled_bits"] / stats["bits"] \
            >= THRESHOLDS["enforcement_toggle"]

    def test_stall_and_drop_paths_both_covered(self, accel_coverage):
        cmap, _ = accel_coverage
        for path in ("aes.stallctl.stall", "aes.advance",
                     "aes.outbuf.push_blocked"):
            s = cmap.signals[path]
            assert s["rise"] and s["fall"], f"{path} never toggled"
        # the drop counter is monotonic: it rises when the mixed-burst
        # overrun is denied its stall, and never falls back
        assert cmap.signals["aes.outbuf.dropped_r"]["rise"]

    def test_shadow_nets_carry_taint(self, accel_coverage):
        cmap, census = accel_coverage
        tainted = sum(1 for _pl, _orig, sh in census["shadow_nets"]
                      if cmap.signals.get(sh, {}).get("ever", 0))
        assert tainted / len(census["shadow_nets"]) >= THRESHOLDS["taint"]

    def test_fault_arm_phase_arms_sites(self, accel_coverage):
        cmap, census = accel_coverage
        armed = sum(
            1 for site in census["sites"]
            if (cmap.signals.get(site["now"], {}).get("ever", 0)
                | cmap.signals.get(site["sticky"], {}).get("ever", 0)))
        assert armed / len(census["sites"]) >= THRESHOLDS["sites_armed"]

    def test_scratchpad_and_roundkey_mems_covered(self, accel_coverage):
        cmap, _ = accel_coverage
        cells = cmap.mems["aes.scratchpad.cells"]
        assert cells["written"] != 0 and cells["read"] != 0


class TestGateReport:
    @pytest.fixture(scope="class")
    def report(self, tmp_path_factory):
        ledger = str(tmp_path_factory.mktemp("cov") / "ledger.jsonl")
        return run_coverage_campaign(backends=("compiled",), smoke=True,
                                     ledger=ledger), ledger

    def test_smoke_gate_passes_with_real_holes(self, report):
        rep, _ = report
        assert rep.ok
        assert rep.consistent
        holes = rep.holes()
        assert holes, "a passing gate must still name its holes"
        names = {h["name"] for h in holes}
        # the suppression path is a known, genuinely unexercised guard
        assert "aes.declass.suppressed" in names

    def test_verdicts_cover_every_threshold(self, report):
        rep, _ = report
        v = rep.verdicts()
        assert set(v) == set(THRESHOLDS)
        assert all(entry["ok"] for entry in v.values())

    def test_render_and_md_and_payload(self, report):
        rep, _ = report
        text = rep.render()
        assert "VERDICT: PASS" in text
        assert "bit-identical: True" in text
        md = rep.render_md()
        assert "| plane check |" in md and "Ranked holes" in md
        payload = rep.to_dict(holes_limit=5)
        json.dumps(payload)  # must be serializable
        assert len(payload["holes"]) == 5
        assert payload["holes_total"] > 5

    def test_ledger_entry_appended(self, report):
        rep, ledger = report
        count, merged = load_ledger(ledger)
        assert count == 1
        assert merged.fingerprint() == rep.map.fingerprint()
        assert rep.cumulative == {"entries": 1,
                                  "structural_toggle":
                                  pytest.approx(
                                      rep.planes["structural"]["fraction"])}


class TestCli:
    def test_cli_smoke_writes_artifacts(self, tmp_path, capsys):
        from repro.obs.coverage import cmd_obs_coverage

        out = tmp_path / "covout"
        args = argparse.Namespace(
            backend="compiled", seed=2026, lanes=2, smoke=True,
            no_faults=True, ledger=str(tmp_path / "ledger.jsonl"),
            out=str(out), json=True)
        rc = cmd_obs_coverage(args)
        assert rc == 0
        first = capsys.readouterr().out.splitlines()[0]
        payload = json.loads(first)
        assert payload["ok"] is True
        assert payload["consistent"] is True
        for name in ("coverage_report.json", "coverage_report.md",
                     "coverage_map.json"):
            assert (out / name).exists()
        reloaded = CoverageMap.from_dict(
            json.loads((out / "coverage_map.json").read_text()))
        assert reloaded.fingerprint() in payload["fingerprints"].values()
