"""Metrics registry: instruments, labels, export formats, null path."""

import json
import math

import pytest

from repro.obs import MetricsRegistry, NullRegistry, NULL_INSTRUMENT
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    escape_label_value,
    sample_quantile,
    unescape_label_value,
)


class TestCounter:
    def test_inc_and_value(self):
        c = MetricsRegistry().counter("reqs_total")
        c.inc()
        c.inc(4)
        assert c.value() == 5

    def test_labels_are_independent_series(self):
        c = MetricsRegistry().counter("reqs_total", labelnames=("user",))
        c.inc(user="alice")
        c.inc(2, user="bob")
        assert c.value(user="alice") == 1
        assert c.value(user="bob") == 2
        assert c.value(user="charlie") == 0

    def test_undeclared_label_rejected(self):
        c = MetricsRegistry().counter("reqs_total", labelnames=("user",))
        with pytest.raises(ValueError, match="no label"):
            c.inc(tenant="alice")

    def test_counters_only_go_up(self):
        c = MetricsRegistry().counter("reqs_total")
        with pytest.raises(ValueError):
            c.inc(-1)


class TestGauge:
    def test_set_inc_dec(self):
        g = MetricsRegistry().gauge("inflight")
        g.set(10)
        g.inc(5)
        g.dec(2)
        assert g.value() == 13


class TestHistogram:
    def test_observe_count_sum_mean(self):
        h = MetricsRegistry().histogram("latency_cycles")
        for v in (30, 31, 33, 100):
            h.observe(v)
        assert h.count() == 4
        assert h.sum() == 194
        assert h.mean() == pytest.approx(48.5)

    def test_quantile_returns_bucket_bound(self):
        h = MetricsRegistry().histogram("latency_cycles")
        for v in (30, 31, 33, 100):
            h.observe(v)
        assert h.quantile(0.5) == 32.0   # 2 of 4 fall at or below 32
        assert h.quantile(1.0) == 128.0  # the 100 lands in (64, 128]

    def test_default_buckets_end_at_inf(self):
        assert DEFAULT_BUCKETS[-1] == math.inf

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("h", buckets=(10.0, 5.0))

    def test_samples_include_bucket_sum_count(self):
        h = MetricsRegistry().histogram("lat", buckets=(10.0, 20.0))
        h.observe(15)
        names = {name for name, _k, _v in h.samples()}
        assert names == {"repro_lat_bucket", "repro_lat_sum",
                         "repro_lat_count"}
        # cumulative buckets: 0 in <=10, 1 in <=20, 1 in +Inf
        buckets = [(dict(k).get("le"), v) for name, k, v in h.samples()
                   if name.endswith("_bucket")]
        assert buckets == [("10.0", 0), ("20.0", 1), ("+Inf", 1)]


class TestLabelEscaping:
    # the three characters the Prometheus exposition format requires
    # escaping inside label values: backslash, double quote, newline
    CASES = ['plain', 'quo"te', 'back\\slash', 'new\nline',
             'all\\"of\nthem', '\\n is not a newline', '']

    @pytest.mark.parametrize("value", CASES)
    def test_round_trip(self, value):
        assert unescape_label_value(escape_label_value(value)) == value

    def test_escaped_forms(self):
        assert escape_label_value('a"b') == 'a\\"b'
        assert escape_label_value('a\\b') == 'a\\\\b'
        assert escape_label_value('a\nb') == 'a\\nb'
        # a literal backslash-n must not collapse into a newline
        assert escape_label_value('a\\nb') == 'a\\\\nb'
        assert unescape_label_value('a\\\\nb') == 'a\\nb'

    @pytest.mark.parametrize("value", CASES)
    def test_rendered_series_line_stays_single_line(self, value):
        reg = MetricsRegistry()
        reg.counter("x_total", labelnames=("k",)).inc(k=value)
        text = [ln for ln in reg.to_prometheus().splitlines()
                if not ln.startswith("#") and ln]
        assert len(text) == 1
        assert text[0].endswith(" 1")

    def test_distinct_values_stay_distinct_series(self):
        # without escaping these two values render identically
        reg = MetricsRegistry()
        c = reg.counter("x_total", labelnames=("k",))
        c.inc(k='a\\nb')
        c.inc(2, k='a\nb')
        lines = {ln for ln in reg.to_prometheus().splitlines()
                 if ln.startswith("repro_x_total")}
        assert len(lines) == 2


class TestHistogramReservoir:
    def test_exact_quantiles_from_reservoir(self):
        h = MetricsRegistry().histogram("lat", reservoir=256)
        for v in range(1, 101):  # 1..100
            h.observe(v)
        assert h.quantile(0.5) == pytest.approx(50.5)
        assert h.quantile(0.95) == pytest.approx(95.05)
        assert h.quantile(0.99) == pytest.approx(99.01)
        assert h.quantile(0.0) == 1 and h.quantile(1.0) == 100

    def test_no_reservoir_falls_back_to_buckets(self):
        h = MetricsRegistry().histogram("lat")
        for v in (30, 31, 33, 100):
            h.observe(v)
        assert h.samples_seen() == []
        assert h.quantile(0.5) == 32.0  # bucket upper bound, as before

    def test_reservoir_is_bounded_and_deterministic(self):
        def fill():
            h = MetricsRegistry().histogram("lat", reservoir=16)
            for v in range(1000):
                h.observe(v)
            return h

        a, b = fill(), fill()
        assert len(a.samples_seen()) == 16
        assert a.samples_seen() == b.samples_seen()  # seeded RNG

    def test_reservoir_per_label_series(self):
        h = MetricsRegistry().histogram("lat", labelnames=("user",),
                                        reservoir=8)
        h.observe(30, user="alice")
        h.observe(99, user="bob")
        assert h.samples_seen(user="alice") == [30.0]
        assert h.samples_seen(user="bob") == [99.0]
        assert h.quantile(0.5, user="alice") == 30.0


class TestSampleQuantile:
    def test_empty_and_single(self):
        assert sample_quantile([], 0.5) is None
        assert sample_quantile([42.0], 0.0) == 42.0
        assert sample_quantile([42.0], 0.5) == 42.0
        assert sample_quantile([42.0], 1.0) == 42.0

    def test_linear_interpolation(self):
        vals = [10.0, 20.0, 30.0, 40.0]
        assert sample_quantile(vals, 0.5) == pytest.approx(25.0)
        assert sample_quantile(vals, 0.25) == pytest.approx(17.5)
        assert sample_quantile(vals, 0.0) == 10.0
        assert sample_quantile(vals, 1.0) == 40.0

    def test_input_order_is_irrelevant(self):
        assert sample_quantile([40.0, 10.0, 30.0, 20.0], 0.5) == \
            sample_quantile([10.0, 20.0, 30.0, 40.0], 0.5)

    def test_matches_histogram_reservoir_quantile(self):
        # the histogram's exact-quantile path must be the same function
        h = MetricsRegistry().histogram("lat", reservoir=256)
        vals = [float(v) for v in range(1, 101)]
        for v in vals:
            h.observe(v)
        for q in (0.5, 0.95, 0.99):
            assert h.quantile(q) == pytest.approx(sample_quantile(vals, q))


class TestRegistry:
    def test_namespace_prefix(self):
        reg = MetricsRegistry()
        assert reg.counter("x_total").name == "repro_x_total"
        assert MetricsRegistry(namespace="").counter("y").name == "y"

    def test_registration_is_idempotent(self):
        reg = MetricsRegistry()
        a = reg.counter("x_total", labelnames=("user",))
        b = reg.counter("x_total", labelnames=("user",))
        assert a is b

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x_total")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("x_total")

    def test_prometheus_text_format(self):
        reg = MetricsRegistry()
        c = reg.counter("reqs_total", "requests", labelnames=("user",))
        c.inc(3, user="alice")
        text = reg.to_prometheus()
        assert "# HELP repro_reqs_total requests" in text
        assert "# TYPE repro_reqs_total counter" in text
        assert 'repro_reqs_total{user="alice"} 3' in text

    def test_jsonl_round_trips(self):
        reg = MetricsRegistry()
        reg.gauge("cps", labelnames=("backend",)).set(123.5,
                                                      backend="compiled")
        rows = [json.loads(line) for line in reg.to_jsonl().splitlines()]
        assert rows == [{"metric": "repro_cps", "kind": "gauge",
                         "labels": {"backend": "compiled"}, "value": 123.5}]

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("n_total", labelnames=("k",)).inc(k="v")
        snap = reg.snapshot()
        assert snap["repro_n_total"]['{k="v"}'] == 1

    def test_write_files(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("n_total").inc()
        reg.write_prometheus(str(tmp_path / "m.prom"))
        reg.write_jsonl(str(tmp_path / "m.jsonl"))
        assert "repro_n_total 1" in (tmp_path / "m.prom").read_text()
        assert '"repro_n_total"' in (tmp_path / "m.jsonl").read_text()


class TestNullPath:
    def test_null_registry_hands_out_shared_noop(self):
        reg = NullRegistry()
        c = reg.counter("x")
        assert c is NULL_INSTRUMENT
        c.inc()
        c.observe(5)
        c.set(1)
        assert c.value() == 0
        assert c.samples() == []
