"""Metrics registry: instruments, labels, export formats, null path."""

import json
import math

import pytest

from repro.obs import MetricsRegistry, NullRegistry, NULL_INSTRUMENT
from repro.obs.metrics import DEFAULT_BUCKETS


class TestCounter:
    def test_inc_and_value(self):
        c = MetricsRegistry().counter("reqs_total")
        c.inc()
        c.inc(4)
        assert c.value() == 5

    def test_labels_are_independent_series(self):
        c = MetricsRegistry().counter("reqs_total", labelnames=("user",))
        c.inc(user="alice")
        c.inc(2, user="bob")
        assert c.value(user="alice") == 1
        assert c.value(user="bob") == 2
        assert c.value(user="charlie") == 0

    def test_undeclared_label_rejected(self):
        c = MetricsRegistry().counter("reqs_total", labelnames=("user",))
        with pytest.raises(ValueError, match="no label"):
            c.inc(tenant="alice")

    def test_counters_only_go_up(self):
        c = MetricsRegistry().counter("reqs_total")
        with pytest.raises(ValueError):
            c.inc(-1)


class TestGauge:
    def test_set_inc_dec(self):
        g = MetricsRegistry().gauge("inflight")
        g.set(10)
        g.inc(5)
        g.dec(2)
        assert g.value() == 13


class TestHistogram:
    def test_observe_count_sum_mean(self):
        h = MetricsRegistry().histogram("latency_cycles")
        for v in (30, 31, 33, 100):
            h.observe(v)
        assert h.count() == 4
        assert h.sum() == 194
        assert h.mean() == pytest.approx(48.5)

    def test_quantile_returns_bucket_bound(self):
        h = MetricsRegistry().histogram("latency_cycles")
        for v in (30, 31, 33, 100):
            h.observe(v)
        assert h.quantile(0.5) == 32.0   # 2 of 4 fall at or below 32
        assert h.quantile(1.0) == 128.0  # the 100 lands in (64, 128]

    def test_default_buckets_end_at_inf(self):
        assert DEFAULT_BUCKETS[-1] == math.inf

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("h", buckets=(10.0, 5.0))

    def test_samples_include_bucket_sum_count(self):
        h = MetricsRegistry().histogram("lat", buckets=(10.0, 20.0))
        h.observe(15)
        names = {name for name, _k, _v in h.samples()}
        assert names == {"repro_lat_bucket", "repro_lat_sum",
                         "repro_lat_count"}
        # cumulative buckets: 0 in <=10, 1 in <=20, 1 in +Inf
        buckets = [(dict(k).get("le"), v) for name, k, v in h.samples()
                   if name.endswith("_bucket")]
        assert buckets == [("10.0", 0), ("20.0", 1), ("+Inf", 1)]


class TestRegistry:
    def test_namespace_prefix(self):
        reg = MetricsRegistry()
        assert reg.counter("x_total").name == "repro_x_total"
        assert MetricsRegistry(namespace="").counter("y").name == "y"

    def test_registration_is_idempotent(self):
        reg = MetricsRegistry()
        a = reg.counter("x_total", labelnames=("user",))
        b = reg.counter("x_total", labelnames=("user",))
        assert a is b

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x_total")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("x_total")

    def test_prometheus_text_format(self):
        reg = MetricsRegistry()
        c = reg.counter("reqs_total", "requests", labelnames=("user",))
        c.inc(3, user="alice")
        text = reg.to_prometheus()
        assert "# HELP repro_reqs_total requests" in text
        assert "# TYPE repro_reqs_total counter" in text
        assert 'repro_reqs_total{user="alice"} 3' in text

    def test_jsonl_round_trips(self):
        reg = MetricsRegistry()
        reg.gauge("cps", labelnames=("backend",)).set(123.5,
                                                      backend="compiled")
        rows = [json.loads(line) for line in reg.to_jsonl().splitlines()]
        assert rows == [{"metric": "repro_cps", "kind": "gauge",
                         "labels": {"backend": "compiled"}, "value": 123.5}]

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("n_total", labelnames=("k",)).inc(k="v")
        snap = reg.snapshot()
        assert snap["repro_n_total"]['{k="v"}'] == 1

    def test_write_files(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("n_total").inc()
        reg.write_prometheus(str(tmp_path / "m.prom"))
        reg.write_jsonl(str(tmp_path / "m.jsonl"))
        assert "repro_n_total 1" in (tmp_path / "m.prom").read_text()
        assert '"repro_n_total"' in (tmp_path / "m.jsonl").read_text()


class TestNullPath:
    def test_null_registry_hands_out_shared_noop(self):
        reg = NullRegistry()
        c = reg.counter("x")
        assert c is NULL_INSTRUMENT
        c.inc()
        c.observe(5)
        c.set(1)
        assert c.value() == 0
        assert c.samples() == []
