"""Per-module profiler: sampling, attribution, exports, backend parity."""

import json

import pytest

from repro.hdl import Module, Simulator, when
from repro.obs.profile import (
    SimProfiler,
    module_of,
    signal_costs,
    subsystem_of,
)

BACKENDS = ("compiled", "interp", "batched")


class Blinker(Module):
    """Tiny design with one busy net and one idle net."""

    def __init__(self):
        super().__init__("b")
        self.en = self.input("en", 1)
        self.tick = self.reg("tick", 1)
        self.idle = self.reg("idle", 8)
        self.tick <<= ~self.tick
        with when(self.en):
            self.idle <<= self.idle + 1


def _sim(backend):
    if backend == "batched":
        pytest.importorskip("numpy")
    return Simulator(Blinker(), backend=backend)


class TestPathHelpers:
    def test_module_of(self):
        assert module_of("aes.pipe.s3.state") == "aes.pipe.s3"
        assert module_of("clk") == "clk"

    def test_subsystem_of(self):
        assert subsystem_of("aes.pipe.s3") == "aes.pipe"
        assert subsystem_of("aes") == "aes"


class TestValuesSnapshot:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_values_matches_peek(self, backend):
        sim = _sim(backend)
        sim.poke("b.en", 1)
        sim.step(3)
        vals = sim.values()
        sigs = sim.value_signals()
        assert len(vals) == len(sigs)
        assert vals == [sim.peek(s) for s in sigs]


class TestSignalCosts:
    def test_every_signal_charged_once(self):
        sim = _sim("compiled")
        costs = signal_costs(sim.netlist)
        assert all(costs[s] == 0 for s in sim.netlist.inputs)
        assert all(costs[r] >= 1 for r in sim.netlist.regs)


class TestSimProfiler:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_toggle_attribution(self, backend):
        sim = _sim(backend)
        with SimProfiler(sim) as prof:
            sim.step(10)
        rep = prof.report()
        # tick flips every cycle; en never poked, idle never counts
        assert rep.net_toggles["b.tick"] == 9  # 9 deltas over 10 samples
        assert "b.en" not in rep.net_toggles
        assert rep.cycles_sampled == 10
        assert rep.backend == backend

    def test_sample_interval_skips_cycles(self):
        sim = _sim("compiled")
        prof = SimProfiler(sim, sample_interval=2)
        sim.step(10)
        prof.detach()
        assert prof.report().cycles_sampled == 5

    def test_detach_stops_sampling(self):
        sim = _sim("compiled")
        prof = SimProfiler(sim)
        sim.step(4)
        prof.detach()
        sim.step(4)
        assert prof.report().cycles_sampled == 4

    def test_bad_interval_rejected(self):
        with pytest.raises(ValueError):
            SimProfiler(_sim("compiled"), sample_interval=0)

    def test_window_series_buckets(self):
        sim = _sim("compiled")
        with SimProfiler(sim, window=4) as prof:
            sim.step(8)
        rep = prof.report()
        starts = [s for s, _ in rep.window_series]
        assert starts == [0, 4]
        assert all(counts.get("b", 0) > 0 for _, counts in rep.window_series)

    def test_window_hamming_tracks_toggles(self):
        sim = _sim("compiled")
        with SimProfiler(sim, window=4) as prof:
            sim.step(8)
        rep = prof.report()
        hamming = dict(rep.hamming_series)
        assert sorted(hamming) == [s for s, _ in rep.window_series]
        # every toggle flips at least one bit, so HD >= toggle count
        for start, counts in rep.window_series:
            for grp, n in counts.items():
                assert hamming[start].get(grp, 0) >= n


class TestReportExports:
    @pytest.fixture()
    def report(self):
        sim = _sim("compiled")
        with SimProfiler(sim) as prof:
            sim.step(12)
        return prof.report()

    def test_folded_stacks_nonempty_and_parseable(self, report):
        stacks = report.folded_stacks()
        assert stacks
        for line in stacks:
            frames, weight = line.rsplit(" ", 1)
            assert frames and int(weight) >= 1

    def test_write_all_artifacts(self, report, tmp_path):
        paths = report.write_all(str(tmp_path))
        folded = (tmp_path / "flamegraph.folded").read_text()
        assert folded.strip()
        trace = json.loads((tmp_path / "profile_trace.json").read_text())
        counters = [e for e in trace["traceEvents"] if e["ph"] == "C"]
        assert counters and counters[0]["name"] == "toggle_activity"
        heat = json.loads((tmp_path / "toggle_heatmap.json").read_text())
        assert heat["nets"]["b.tick"] == 11
        assert heat["windows"]
        for w in heat["windows"]:
            # satellite contract: old keys intact, hamming added per window
            assert {"start_cycle", "toggles", "hamming"} <= set(w)
            for grp, n in w["toggles"].items():
                assert w["hamming"].get(grp, 0) >= n
        assert set(paths) == {"flamegraph", "profile_trace",
                              "toggle_heatmap"}

    def test_wall_time_distributed_by_cost(self, report):
        total_cost = sum(m["node_cost"]
                         for m in report.module_stats.values())
        total_est = sum(m["est_wall_us"]
                        for m in report.module_stats.values())
        assert total_cost > 0
        assert total_est == pytest.approx(report.wall_seconds * 1e6)

    def test_render_mentions_hot_net(self, report):
        text = report.render()
        assert "b.tick" in text
        assert "backend=compiled" in text
