"""Uniform simulator telemetry: cache stats, SimStats, lane utilization."""

import pytest

import repro.obs as obs
from repro.accel.mini import MiniTaggedPipeline
from repro.hdl import Simulator, elaborate
from repro.obs import MetricsRegistry
from repro.obs.simhooks import (
    clear_compile_caches,
    compile_cache_stats,
    lane_utilization,
    publish_sim_metrics,
    sim_stats,
)

numpy = pytest.importorskip("numpy")


class TestCompileCacheStats:
    def test_every_backend_reports_the_same_fields(self):
        stats = compile_cache_stats()
        assert set(stats) == {"interp", "compiled", "batched"}
        for backend, fields in stats.items():
            assert set(fields) == {"entries", "hits", "misses"}, backend

    def test_clear_resets_both_codegen_caches(self):
        nl = elaborate(MiniTaggedPipeline())
        Simulator(nl, backend="compiled")
        Simulator(nl, backend="batched", lanes=2)
        assert compile_cache_stats()["compiled"]["entries"] >= 1
        assert compile_cache_stats()["batched"]["entries"] >= 1
        clear_compile_caches()
        for backend in ("compiled", "batched"):
            assert compile_cache_stats()[backend] == {
                "entries": 0, "hits": 0, "misses": 0}

    def test_hits_and_misses_accumulate(self):
        clear_compile_caches()
        Simulator(elaborate(MiniTaggedPipeline()), backend="compiled")
        Simulator(elaborate(MiniTaggedPipeline()), backend="compiled")
        stats = compile_cache_stats()["compiled"]
        assert stats == {"entries": 1, "hits": 1, "misses": 1}

    def test_interp_backend_reports_zeros(self):
        Simulator(elaborate(MiniTaggedPipeline()), backend="interp")
        assert compile_cache_stats()["interp"] == {
            "entries": 0, "hits": 0, "misses": 0}


class TestSimStats:
    def test_stats_accumulate_only_while_enabled(self):
        sim = Simulator(MiniTaggedPipeline(), backend="compiled")
        sim.step(10)
        assert sim.stats.timed_cycles == 0  # telemetry off: clock untouched
        with obs.capture():
            sim.step(7)
        assert sim.stats.timed_cycles == 7
        assert sim.stats.step_calls == 1
        assert sim.stats.wall_seconds > 0
        assert sim.stats.cycles_per_second() > 0
        assert sim.cycle == 17

    def test_sim_stats_dict(self):
        sim = Simulator(MiniTaggedPipeline(), backend="compiled")
        with obs.capture():
            sim.step(5)
        info = sim_stats(sim)
        assert info["backend"] == "compiled"
        assert info["lanes"] == 1
        assert info["cycles"] == 5
        assert info["timed_cycles"] == 5
        assert info["lane_cycles_per_second"] == info["cycles_per_second"]


class TestLaneUtilization:
    def test_batched_fraction(self):
        sim = Simulator(MiniTaggedPipeline(), backend="batched", lanes=4)
        sig = next(iter(sim.netlist.inputs))
        for lane in range(4):
            sim.lanes_sim.poke(sig, lane, 1 if lane < 3 else 0)
        assert lane_utilization(sim, sig) == 0.75

    def test_scalar_backend_has_no_lane_axis(self):
        sim = Simulator(MiniTaggedPipeline(), backend="compiled")
        sig = next(iter(sim.netlist.inputs))
        assert lane_utilization(sim, sig) is None


class TestPublishSimMetrics:
    @pytest.mark.parametrize("backend,lanes",
                             [("interp", 1), ("compiled", 1), ("batched", 4)])
    def test_identical_metric_surface_across_backends(self, backend, lanes):
        sim = Simulator(MiniTaggedPipeline(), backend=backend, lanes=lanes)
        with obs.capture():
            sim.step(3)
        reg = MetricsRegistry()
        publish_sim_metrics(sim, reg)
        snap = reg.snapshot()
        expected = {
            "repro_sim_cycles_total",
            "repro_sim_wall_seconds",
            "repro_sim_cycles_per_second",
            "repro_sim_lane_cycles_per_second",
            "repro_sim_compile_cache_entries",
            "repro_sim_compile_cache_hits",
            "repro_sim_compile_cache_misses",
        }
        assert expected <= set(snap)
        labels = f'{{backend="{backend}",lanes="{lanes}"}}'
        assert snap["repro_sim_cycles_total"][labels] == 3
        # cache gauges carry all three backends regardless of which ran
        assert set(snap["repro_sim_compile_cache_entries"]) == {
            '{backend="interp"}', '{backend="compiled"}',
            '{backend="batched"}'}

    def test_lane_utilization_gauge(self):
        sim = Simulator(MiniTaggedPipeline(), backend="batched", lanes=2)
        sig = next(iter(sim.netlist.inputs))
        sim.lanes_sim.poke(sig, 0, 1)
        reg = MetricsRegistry()
        publish_sim_metrics(sim, reg, active_signal=sig)
        g = reg.get("sim_lane_utilization")
        assert g.value(backend="batched", lanes="2") == 0.5
