"""The flow provenance explorer: scenarios, report artifacts, CLI."""

import json

import pytest

from repro.obs.flows import FlowReport, ScenarioResult


class TestScenarioVerdict:
    def _result(self):
        r = ScenarioResult("n", "t", "d")
        r.static_errors = 1
        r.dynamic_violations = 1
        r.static_sources = frozenset({"a", "b"})
        r.dynamic_sources = frozenset({"a"})
        from repro.ifc.witness import Witness, WitnessSource

        r.protected_witness = Witness(
            "sink", "dynamic", [],
            [WitnessSource("a", "input", 0, "(secret, trusted)", True)])
        return r

    def test_ok_composes_all_gates(self):
        r = self._result()
        assert r.agree and r.baseline_flagged
        assert r.protected_clean and r.protected_witnessed
        assert r.ok

    def test_dynamic_superset_fails_agreement(self):
        r = self._result()
        r.dynamic_sources = frozenset({"a", "c"})
        assert not r.agree
        assert not r.ok

    def test_unwitnessed_static_verdict_fails(self):
        r = self._result()
        r.dynamic_sources = frozenset()
        assert not r.agree

    def test_protected_violation_fails(self):
        r = self._result()
        r.protected_violations = 2
        assert not r.protected_clean
        assert not r.ok

    def test_report_render_and_markdown(self):
        rep = FlowReport("compiled", 2026, [self._result()])
        assert rep.ok
        text = rep.render()
        assert "flow provenance report" in text
        assert "VERDICT: ok (1/1 scenarios)" in text
        md = rep.render_markdown()
        assert md.startswith("# Flow provenance report")
        assert "| n | 1 static / 1 dynamic | yes | yes | yes | pass |" in md

    def test_empty_report_is_a_failure(self):
        assert not FlowReport("compiled", 2026, []).ok


class TestFlowsCli:
    def test_cli(self, tmp_path, capsys):
        from repro.__main__ import main

        code = main(["obs", "flows", "--json", "--out", str(tmp_path)])
        stdout = capsys.readouterr().out
        assert code == 0
        data = json.loads(stdout.splitlines()[0])
        assert data["ok"] is True
        names = [s["name"] for s in data["scenarios"]]
        assert names == ["legal_declass", "debug_leak",
                         "scratchpad_overrun", "stall_guard"]
        report = json.loads((tmp_path / "flow_report.json").read_text())
        assert report["ok"] is True
        for s in report["scenarios"]:
            assert s["baseline"]["dynamic_witness"]["steps"], s["name"]
            assert s["protected"]["witness"]["sources"], s["name"]
        md = (tmp_path / "flow_report.md").read_text()
        assert "witness" in md
        # the security stream rode along with witness-enriched events
        events = [json.loads(ln) for ln in
                  (tmp_path / "security.jsonl").read_text().splitlines()]
        enriched = [e for e in events if e["kind"] == "label_violation"
                    and e.get("witness_sources")]
        assert enriched


class TestExitCodeContract:
    """Every subcommand: 0 = pass, 1 = gate failure, 2 = usage error."""

    def test_pass_is_zero(self, capsys):
        from repro.__main__ import main

        assert main(["check", "scratchpad"]) == 0

    def test_gate_failure_is_one(self, capsys):
        from repro.__main__ import main

        assert main(["check", "keyexp-flawed"]) == 1

    def test_usage_error_is_two(self, capsys):
        from repro.__main__ import main

        assert main([]) == 2
        assert main(["check", "nonsense"]) == 2
        assert main(["verilog", "nonsense"]) == 2
        assert main(["attack", "nonsense"]) == 2

    def test_argparse_usage_error_exits_two(self):
        from repro.__main__ import main

        with pytest.raises(SystemExit) as exc:
            main(["obs", "flows", "--backend", "nonsense"])
        assert exc.value.code == 2
