"""Timing-channel detector: statistics, verdict logic, seeded campaigns."""

import json

import pytest

from repro.obs.leakage import (
    MI_THRESHOLD,
    Observable,
    T_CAP,
    T_THRESHOLD,
    analyze,
    binned_mutual_information,
    run_paired_campaign,
    run_soc_campaign,
    run_stall_channel_campaign,
    welch_t_test,
)


class TestWelchTTest:
    def test_identical_groups_give_zero(self):
        r = welch_t_test([30, 31, 32], [30, 31, 32])
        assert r.t == 0.0
        assert not r.significant()

    def test_known_value(self):
        # hand-checked: means 2 vs 5, var 1 each, n=3 → t = 3/sqrt(2/3)
        r = welch_t_test([1, 2, 3], [4, 5, 6])
        assert r.t == pytest.approx(3 / (2 / 3) ** 0.5)
        assert r.df == pytest.approx(4.0)
        assert r.mean0 == 2 and r.mean1 == 5

    def test_sign_tracks_direction(self):
        assert welch_t_test([10] * 4, [20, 21, 22, 23]).t > 0
        assert welch_t_test([20, 21, 22, 23], [10] * 4).t < 0

    def test_zero_variance_equal_means(self):
        r = welch_t_test([30, 30, 30], [30, 30])
        assert r.t == 0.0

    def test_zero_variance_separated_means_capped(self):
        # deterministic simulators produce exactly this shape
        r = welch_t_test([30, 30, 30], [34, 34, 34])
        assert r.t == T_CAP
        assert r.significant()
        json.dumps(r.to_dict())  # finite, serializable

    def test_empty_group_rejected(self):
        with pytest.raises(ValueError):
            welch_t_test([], [1, 2])


class TestMutualInformation:
    def test_perfectly_separating_observable_is_one_bit(self):
        values = [30] * 8 + [40] * 8
        conds = [0] * 8 + [1] * 8
        assert binned_mutual_information(values, conds) == pytest.approx(1.0)

    def test_constant_observable_is_zero(self):
        assert binned_mutual_information([30] * 10, [0, 1] * 5) == 0.0

    def test_independent_observable_is_small(self):
        # same value multiset under both conditions → exactly MI = 0
        values = [30, 31, 32, 33] * 2
        conds = [0] * 4 + [1] * 4
        assert binned_mutual_information(values, conds) == pytest.approx(
            0.0, abs=1e-9)

    def test_never_negative(self):
        import random

        rng = random.Random(7)
        values = [rng.gauss(0, 1) for _ in range(50)]
        conds = [rng.randint(0, 1) for _ in range(50)]
        assert binned_mutual_information(values, conds) >= 0.0

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            binned_mutual_information([1.0], [0, 1])


class TestObservableAnalysis:
    def _obs(self, g0, g1):
        o = Observable("lat")
        o.extend(0, g0)
        o.extend(1, g1)
        return o

    def test_split_partitions_by_condition(self):
        o = self._obs([30, 31], [40])
        assert o.split() == ([30.0, 31.0], [40.0])
        assert len(o) == 3

    def test_separated_groups_flagged_leaky(self):
        rep = analyze(self._obs([30] * 6, [40] * 6))
        assert rep.leaky
        assert rep.ttest.significant(T_THRESHOLD)
        assert rep.mi > MI_THRESHOLD

    def test_identical_groups_clean(self):
        rep = analyze(self._obs([30, 31, 32], [30, 31, 32]))
        assert not rep.leaky

    def test_both_tests_must_fire(self):
        # equal means but distinguishable distributions: MI is a full
        # bit, yet t = 0 — the t-gate keeps the verdict clean
        rep = analyze(self._obs([20] * 6 + [40] * 6, [30] * 12))
        assert rep.mi > MI_THRESHOLD
        assert not rep.ttest.significant()
        assert not rep.leaky

    def test_single_condition_rejected(self):
        o = Observable("lat")
        o.extend(0, [30, 31])
        with pytest.raises(ValueError, match="both conditions"):
            analyze(o)

    def test_to_dict_keys(self):
        rep = analyze(self._obs([30] * 4, [40] * 4))
        d = rep.to_dict()
        assert d["leaky"] is True
        assert set(d) >= {"observable", "unit", "t_test", "mi_bits",
                          "t_threshold", "mi_threshold"}


class TestStallCampaign:
    def test_baseline_flagged_protected_clean(self):
        baseline = run_stall_channel_campaign(False, trials=8)
        protected = run_stall_channel_campaign(True, trials=8)
        assert baseline.leaky
        assert not protected.leaky
        obs = baseline.observable("probe_latency")
        assert abs(obs.ttest.t) > T_THRESHOLD
        assert obs.mi > 0

    def test_deterministic_across_runs(self):
        a = run_stall_channel_campaign(False, trials=8, seed=99)
        b = run_stall_channel_campaign(False, trials=8, seed=99)
        assert a.to_dict() == b.to_dict()

    def test_too_few_trials_rejected(self):
        with pytest.raises(ValueError, match="at least 4"):
            run_stall_channel_campaign(False, trials=2)


class TestSocCampaign:
    def test_baseline_flagged_protected_clean(self):
        baseline = run_soc_campaign(False, trials=4)
        protected = run_soc_campaign(True, trials=4)
        assert baseline.leaky
        assert not protected.leaky
        assert {o.name for o in baseline.observables} == {
            "service_latency", "queue_delay"}

    def test_too_few_trials_rejected(self):
        with pytest.raises(ValueError, match="at least 2"):
            run_soc_campaign(False, trials=1)


class TestPairedCampaign:
    def test_stall_scenario_ok(self):
        result = run_paired_campaign(scenario="stall", trials=8)
        assert result.ok
        assert "VERDICT: baseline timing channel detected" in result.render()
        d = result.to_dict()
        assert d["ok"] and d["baseline"]["leaky"]
        assert not d["protected"]["leaky"]

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            run_paired_campaign(scenario="nonsense")
