"""Bench-history ledger: gauge loading, direction logic, regressions."""

import json

from repro.obs.history import (
    EXPECTED_GAUGE_FAMILIES,
    GaugeDelta,
    HistoryComparison,
    append_history,
    compare_with_history,
    diff_gauges,
    find_bench_files,
    gauge_key,
    load_gauges,
    metric_direction,
    missing_families,
    read_history,
)


def _gauge_line(metric, value, **labels):
    return json.dumps({"kind": "gauge", "metric": metric,
                       "labels": labels, "value": value})


class TestDirections:
    def test_throughput_metrics_higher_is_better(self):
        assert metric_direction("repro_bench_sim_lane_cycles_per_second") \
            == "higher"
        assert metric_direction("repro_bench_gbps") == "higher"
        assert metric_direction("repro_bench_blocks_per_cycle") == "higher"
        assert metric_direction("repro_bench_sim_batched_speedup") == "higher"

    def test_latency_metrics_lower_is_better(self):
        assert metric_direction("repro_bench_latency_cycles") == "lower"
        assert metric_direction("repro_obs_overhead_seconds") == "lower"

    def test_unknown_metric_is_neutral(self):
        assert metric_direction("repro_bench_score") == "neutral"


class TestLoadGauges:
    def test_reads_jsonl_gauges(self, tmp_path):
        p = tmp_path / "BENCH_x.json"
        p.write_text(_gauge_line("m", 1.5, backend="compiled") + "\n"
                     + json.dumps({"kind": "counter", "metric": "n",
                                   "labels": {}, "value": 2}) + "\n")
        gauges = load_gauges([str(p)])
        assert gauges == {gauge_key("m", {"backend": "compiled"}): 1.5}

    def test_find_bench_files_excludes_ledger(self, tmp_path):
        (tmp_path / "BENCH_a.json").write_text("")
        (tmp_path / "BENCH_history.jsonl").write_text("")
        found = find_bench_files(str(tmp_path))
        assert [f.rsplit("/", 1)[-1] for f in found] == ["BENCH_a.json"]


class TestExpectedFamilies:
    """Satellite of the fleet PR: a whole benchmark silently not running
    must surface as a MISSING-family warning, not vanish quietly."""

    @staticmethod
    def _full_set():
        return {gauge_key(prefixes[0] + "x", {}): 1.0
                for prefixes in EXPECTED_GAUGE_FAMILIES.values()}

    def test_fleet_family_is_registered(self):
        assert "fleet" in EXPECTED_GAUGE_FAMILIES
        assert EXPECTED_GAUGE_FAMILIES["fleet"] == ("repro_bench_fleet_",)

    def test_all_families_present_no_warnings(self):
        assert missing_families(self._full_set()) == []

    def test_absent_family_is_flagged(self):
        gauges = self._full_set()
        gauges.pop(gauge_key("repro_bench_fleet_x", {}))
        assert missing_families(gauges) == ["fleet"]

    def test_overlapping_prefixes_resolve_to_longest(self):
        # repro_bench_fleet_obs_* satisfies only the fleet_obs family —
        # it must never mask a missing "fleet" benchmark
        gauges = {gauge_key("repro_bench_fleet_obs_x", {}): 1.0}
        missing = missing_families(gauges)
        assert "fleet" in missing
        assert "fleet_obs" not in missing

    def test_comparison_renders_family_warning(self):
        comparison = HistoryComparison([], missing_families=["fleet"])
        text = comparison.render()
        assert "gauge family 'fleet'" in text
        assert "repro_bench_fleet_" in text
        assert comparison.to_dict()["missing_families"] == ["fleet"]

    def test_compare_with_history_wires_families(self, tmp_path):
        ledger = tmp_path / "BENCH_history.jsonl"
        comparison = compare_with_history(str(ledger), self._full_set())
        assert comparison.missing_families == []
        comparison = compare_with_history(
            str(ledger), {gauge_key("repro_bench_gbps", {}): 1.0})
        assert "fleet" in comparison.missing_families
        assert "throughput" not in comparison.missing_families


class TestDeltas:
    def test_regression_direction_aware(self):
        slower = GaugeDelta("x_cycles_per_second", (), 100.0, 80.0)
        assert slower.is_regression() and not slower.is_improvement()
        faster = GaugeDelta("x_latency_cycles", (), 100.0, 80.0)
        assert faster.is_improvement() and not faster.is_regression()

    def test_tolerance_absorbs_noise(self):
        wiggle = GaugeDelta("x_cycles_per_second", (), 100.0, 95.0)
        assert not wiggle.is_regression(tolerance=0.10)
        assert wiggle.is_regression(tolerance=0.01)

    def test_neutral_metrics_never_flag(self):
        d = GaugeDelta("x_score", (), 100.0, 1.0)
        assert not d.is_regression() and not d.is_improvement()

    def test_new_and_removed_not_comparable(self):
        assert GaugeDelta("x_gbps", (), None, 5.0).change is None
        assert GaugeDelta("x_gbps", (), 5.0, None).change is None
        assert not GaugeDelta("x_gbps", (), None, 5.0).is_regression()

    def test_diff_covers_union(self):
        before = {gauge_key("a", {}): 1.0, gauge_key("b", {}): 2.0}
        after = {gauge_key("b", {}): 2.0, gauge_key("c", {}): 3.0}
        deltas = diff_gauges(before, after)
        assert [d.metric for d in deltas] == ["a", "b", "c"]


class TestLedger:
    def test_append_then_read_round_trips(self, tmp_path):
        ledger = str(tmp_path / "BENCH_history.jsonl")
        gauges = {gauge_key("m", {"k": "v"}): 1.0}
        append_history(ledger, gauges, note="first", timestamp=10.0)
        append_history(ledger, gauges, note="second", timestamp=20.0)
        entries = read_history(ledger)
        assert [e["note"] for e in entries] == ["first", "second"]
        assert entries[0]["gauges"] == [
            {"metric": "m", "labels": {"k": "v"}, "value": 1.0}]

    def test_missing_ledger_is_empty_history(self, tmp_path):
        assert read_history(str(tmp_path / "nope.jsonl")) == []

    def test_first_comparison_is_baseline(self, tmp_path):
        ledger = str(tmp_path / "h.jsonl")
        cmp_ = compare_with_history(ledger, {gauge_key("m_gbps", {}): 1.0})
        assert cmp_.previous_entry is None
        assert not cmp_.regressions
        assert "baseline run" in cmp_.render()

    def test_regression_against_last_entry(self, tmp_path):
        ledger = str(tmp_path / "h.jsonl")
        key = gauge_key("m_cycles_per_second", {})
        append_history(ledger, {key: 100.0}, timestamp=1.0)
        append_history(ledger, {key: 200.0}, timestamp=2.0)  # most recent
        cmp_ = compare_with_history(ledger, {key: 100.0})
        assert len(cmp_.regressions) == 1
        assert "REGRESSION" in cmp_.render()
        d = cmp_.to_dict()
        assert d["regressions"][0]["before"] == 200.0

    def test_improvement_reported(self, tmp_path):
        ledger = str(tmp_path / "h.jsonl")
        key = gauge_key("m_latency_cycles", {})
        append_history(ledger, {key: 100.0}, timestamp=1.0)
        cmp_ = compare_with_history(ledger, {key: 50.0})
        assert len(cmp_.improvements) == 1
        assert not cmp_.regressions

    def test_missing_gauge_called_out_explicitly(self, tmp_path):
        ledger = str(tmp_path / "h.jsonl")
        kept = gauge_key("m_gbps", {})
        gone = gauge_key("m_vanished_gbps", {"backend": "batched"})
        append_history(ledger, {kept: 1.0, gone: 7.5}, timestamp=1.0)
        cmp_ = compare_with_history(ledger, {kept: 1.0})
        assert [d.metric for d in cmp_.missing] == ["m_vanished_gbps"]
        text = cmp_.render()
        assert "MISSING    m_vanished_gbps{backend=batched}" in text
        assert "was 7.5 in the previous run" in text
        assert "1 missing" in text
        d = cmp_.to_dict()
        assert d["missing"][0]["metric"] == "m_vanished_gbps"
        assert d["missing"][0]["before"] == 7.5
        assert d["missing"][0]["after"] is None

    def test_no_missing_when_gauges_match(self, tmp_path):
        ledger = str(tmp_path / "h.jsonl")
        key = gauge_key("m_gbps", {})
        append_history(ledger, {key: 1.0}, timestamp=1.0)
        cmp_ = compare_with_history(ledger, {key: 1.0})
        assert cmp_.missing == []
        assert "0 missing" in cmp_.render()
