"""Security-event stream: the log itself, the hardware probe, and the
software layers (checker, trackers) that emit into it."""

import json

import pytest

import repro.obs as obs
from repro.hdl import Module, Simulator
from repro.ifc.checker import IfcChecker
from repro.ifc.glift import GliftTracker
from repro.ifc.label import Label
from repro.ifc.lattice import two_point
from repro.ifc.tracker import LabelTracker
from repro.obs import NullSecurityEventLog, SecurityEventLog

TP = two_point()
S_T = Label(TP, "secret", "trusted")
P_T = Label(TP, "public", "trusted")


class TestEventLog:
    def test_emit_count_filter(self):
        log = SecurityEventLog()
        log.emit("stall_denied", cycle=10, source="stallctl")
        log.emit("declassification", cycle=11, source="declass", tag=17)
        log.emit("declassification", cycle=12, source="declass", tag=34)
        assert log.count() == 3
        assert log.count("declassification") == 2
        assert log.counts() == {"declassification": 2, "stall_denied": 1}
        tags = [e.detail["tag"] for e in log.filter("declassification")]
        assert tags == [17, 34]

    def test_jsonl_flattens_detail(self):
        log = SecurityEventLog()
        log.emit("tag_check_denial", cycle=5, source="scratchpad",
                 user_tag=3)
        (row,) = [json.loads(line) for line in log.to_jsonl().splitlines()]
        assert row == {"kind": "tag_check_denial", "cycle": 5,
                       "source": "scratchpad", "user_tag": 3}

    def test_clear(self):
        log = SecurityEventLog()
        log.emit("x")
        log.clear()
        assert log.count() == 0 and log.counts() == {}

    def test_null_log_drops_everything(self):
        log = NullSecurityEventLog()
        log.emit("stall_denied", cycle=1)
        assert log.count() == 0


class TestSoftwareEmitters:
    def test_static_checker_emits_verdict(self):
        m = Module("m")
        sec = m.input("sec", 8, label=S_T)
        out = m.output("out", 8, label=P_T)
        out <<= sec
        from repro.hdl.elaborate import elaborate

        with obs.capture() as t:
            report = IfcChecker(elaborate(m), TP).check()
        assert not report.ok()
        (ev,) = t.security.filter("ifc_check")
        assert ev.detail["ok"] is False
        assert ev.detail["errors"] == len(report.errors)

    def test_label_tracker_emits_violation(self):
        m = Module("m")
        sec = m.input("sec", 8, label=S_T)
        out = m.output("out", 8, label=P_T)
        out <<= sec
        with obs.capture() as t:
            sim = Simulator(m, backend="compiled")
            tr = LabelTracker(sim, TP)
            sim.poke("m.sec", 5)
            sim.step()
        assert not tr.ok()
        (ev,) = t.security.filter("label_violation")
        assert ev.detail["sink"] == "m.out"

    def test_glift_tracker_emits_violation(self):
        m = Module("g")
        a = m.input("a", 8)
        out = m.output("out", 8)
        out <<= a ^ 0xFF
        with obs.capture() as t:
            sim = Simulator(m)
            tr = GliftTracker(sim, {"g.a": 0xFF}, sinks=["g.out"])
            sim.poke("g.a", 1)
            sim.step()
        assert not tr.ok()
        (ev,) = t.security.filter("glift_violation")
        assert ev.detail["sink"] == "g.out"
        assert ev.detail["taint_mask"] == 0xFF

    def test_no_emission_when_disabled(self):
        m = Module("m")
        sec = m.input("sec", 8, label=S_T)
        out = m.output("out", 8, label=P_T)
        out <<= sec
        assert obs.telemetry() is None
        sim = Simulator(m, backend="compiled")
        tr = LabelTracker(sim, TP)
        sim.poke("m.sec", 5)
        sim.step()
        assert not tr.ok()  # violations still recorded locally


class TestHardwareProbe:
    """The probe rides the driver on the protected design."""

    def test_workload_emits_declassifications(self):
        from repro.soc import SoCSystem, encrypt_stream, random_blocks

        with obs.capture() as t:
            soc = SoCSystem(protected=True)
            soc.provision_keys()
            soc.submit_all(
                encrypt_stream("alice", 1, random_blocks(3, seed=1)))
            soc.drain()
        counts = t.security.counts()
        assert counts.get("declassification") == 3
        # the probe mirrors every event into the metrics registry
        m = t.metrics.get("security_events_total")
        assert m.value(kind="declassification") == 3

    def test_backpressure_emits_stall_and_hold_events(self):
        from repro.soc import SoCSystem, mixed_workload

        with obs.capture() as t:
            soc = SoCSystem(protected=True, reader_stutter=2)
            soc.provision_keys()
            tenants = [("alice", 1), ("bob", 2), ("charlie", 3)]
            soc.submit_all(mixed_workload(tenants, 8, seed=2026))
            soc.drain()
        counts = t.security.counts()
        assert counts.get("output_hold", 0) >= 1
        stalls = (counts.get("stall_granted", 0)
                  + counts.get("stall_denied", 0))
        assert stalls >= 1

    def test_baseline_design_has_no_enforcement_events(self):
        from repro.soc import SoCSystem, encrypt_stream, random_blocks

        with obs.capture() as t:
            soc = SoCSystem(protected=False)
            soc.provision_keys()
            soc.submit_all(
                encrypt_stream("alice", 1, random_blocks(2, seed=1)))
            soc.drain()
        # the baseline has no enforcement signals; the probe skips it
        assert t.security.counts().get("declassification") is None

    def test_probe_detach(self):
        from repro.soc import SoCSystem, encrypt_stream, random_blocks

        with obs.capture() as t:
            soc = SoCSystem(protected=True)
            soc.provision_keys()
            soc.submit_all(
                encrypt_stream("alice", 1, random_blocks(2, seed=1)))
            soc.drain()
            before = t.security.count()
            soc.driver.probe.detach()
            soc.submit_all(
                encrypt_stream("alice", 1, random_blocks(2, seed=2)))
            soc.drain()
        assert t.security.count("declassification") == 2
        assert t.security.count() >= before
