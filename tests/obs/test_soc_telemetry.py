"""Request-lifecycle telemetry through the SoC harness."""

import repro.obs as obs
from repro.soc import SoCSystem, encrypt_stream, mixed_workload, random_blocks


def _run(telemetry=None, blocks=3, **soc_kwargs):
    soc = SoCSystem(protected=True, telemetry=telemetry, **soc_kwargs)
    soc.provision_keys()
    soc.submit_all(encrypt_stream("alice", 1, random_blocks(blocks, seed=9)))
    soc.drain()
    return soc


class TestLifecycleMetrics:
    def test_submitted_and_delivered_counters(self):
        t = obs.Telemetry()
        _run(telemetry=t)
        snap = t.metrics.snapshot()
        assert snap["repro_soc_requests_submitted_total"]['{user="alice"}'] == 3
        assert snap["repro_soc_requests_delivered_total"]['{user="alice"}'] == 3

    def test_latency_histogram_matches_request_records(self):
        t = obs.Telemetry()
        soc = _run(telemetry=t)
        h = t.metrics.get("soc_request_latency_cycles")
        delivered = soc.results_for("alice")
        assert h.count(user="alice") == len(delivered)
        assert h.sum(user="alice") == sum(r.latency for r in delivered)

    def test_latency_quantile_gauges_are_exact(self):
        t = obs.Telemetry()
        soc = _run(telemetry=t, blocks=5)
        soc.publish_latency_quantiles()
        g = t.metrics.get("soc_request_latency_quantile_cycles")
        latencies = sorted(r.latency for r in soc.results_for("alice"))
        # p50 of the reservoir interpolates the true sample population
        mid = len(latencies) // 2
        expected_p50 = (latencies[mid] if len(latencies) % 2
                        else (latencies[mid - 1] + latencies[mid]) / 2)
        assert g.value(user="alice", quantile="p50") == expected_p50
        assert g.value(user="alice", quantile="p99") <= latencies[-1]
        # users with no traffic get no series
        assert g.value(user="bob", quantile="p50") == 0

    def test_quantile_gauges_carry_shard_label(self):
        """publish_latency_quantiles exports both the legacy per-user
        gauge and the shard-labelled family with identical values
        (satellite of the fleet PR)."""
        t = obs.Telemetry()
        soc = _run(telemetry=t, blocks=5, shard_id="7")
        soc.publish_latency_quantiles()
        legacy = t.metrics.get("soc_request_latency_quantile_cycles")
        sharded = t.metrics.get("soc_shard_request_latency_quantile_cycles")
        for q in ("p50", "p95", "p99"):
            assert sharded.value(shard="7", user="alice", quantile=q) \
                == legacy.value(user="alice", quantile=q)
        # the legacy family keeps its exact name and label set
        snap = t.metrics.snapshot()
        assert any('user="alice"' in k and "shard" not in k
                   for k in snap["repro_soc_request_latency_quantile_cycles"])
        assert any('shard="7"' in k
                   for k in
                   snap["repro_soc_shard_request_latency_quantile_cycles"])

    def test_latency_samples_feed_detector(self):
        soc = _run(blocks=4)
        samples = soc.latency_samples()
        assert len(samples["alice"]) == 4
        assert all(s > 0 for s in samples["alice"])
        delays = soc.queue_delay_samples()
        assert len(delays["alice"]) == 4

    def test_cycle_stamps_are_consistent(self):
        soc = _run()
        for r in soc.results_for("alice"):
            assert r.submitted_cycle <= r.issued_cycle <= r.delivered_cycle
            assert r.latency == r.delivered_cycle - r.issued_cycle
            assert r.queue_cycles == r.issued_cycle - r.submitted_cycle
            assert r.total_cycles == r.delivered_cycle - r.submitted_cycle
            # backward-compatible alias from before the rename
            assert r.completed_cycle == r.delivered_cycle

    def test_request_spans_on_per_user_tracks(self):
        t = obs.Telemetry()
        _run(telemetry=t)
        spans = [e for e in t.tracer.events if e["ph"] == "X"]
        names = {e["name"] for e in spans}
        assert {"request", "queued", "service"} <= names
        requests = [e for e in spans if e["name"] == "request"]
        assert len(requests) == 3
        # all of alice's spans live on one named track
        track_meta = [e for e in t.tracer.events if e["ph"] == "M"]
        named = {e["tid"]: e["args"]["name"] for e in track_meta}
        for ev in requests:
            assert named[ev["tid"]] == "user:alice"

    def test_dropped_requests_counted(self):
        t = obs.Telemetry()
        soc = SoCSystem(protected=True, telemetry=t, reader_stutter=2)
        soc.provision_keys()
        tenants = [("alice", 1), ("bob", 2), ("charlie", 3)]
        soc.submit_all(mixed_workload(tenants, 8, seed=2026))
        soc.drain()
        dropped = t.metrics.get("soc_requests_dropped_total")
        total_dropped = sum(v for _n, _k, v in dropped.samples())
        assert total_dropped == len(soc.dropped_requests)
        assert t.security.count("request_dropped") == len(
            soc.dropped_requests)

    def test_inflight_gauge_returns_to_zero(self):
        t = obs.Telemetry()
        _run(telemetry=t)
        g = t.metrics.get("soc_inflight_requests")
        assert g.value() == 0


class TestDisabledPath:
    def test_disabled_records_nothing(self):
        assert obs.telemetry() is None
        soc = _run()
        assert soc.obs is None
        assert len(soc.results_for("alice")) == 3

    def test_explicit_telemetry_wins_over_global(self):
        mine = obs.Telemetry()
        with obs.capture() as ambient:
            _run(telemetry=mine)
        assert mine.metrics.snapshot()
        assert ambient.metrics.get("soc_requests_submitted_total") is None
