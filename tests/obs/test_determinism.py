"""Seeded determinism: same seed, byte-identical gate reports.

CI diffing, the bench-history ledger, and the coverage fingerprints all
assume a seeded campaign is a pure function of its seed.  These tests
pin that down per gate: two runs with the same seed must produce
byte-identical canonical JSON (wall-clock-derived gauges stripped), and
a different seed must actually change the measurements.
"""

import pytest

from repro.gate import canonical_json, strip_volatile

SEED = 424242


def _canon(payload) -> str:
    return canonical_json(strip_volatile(payload))


class TestLeakageDeterminism:
    def test_same_seed_byte_identical(self):
        from repro.obs.leakage import run_paired_campaign

        a = run_paired_campaign(trials=6, seed=SEED)
        b = run_paired_campaign(trials=6, seed=SEED)
        assert _canon(a.to_dict()) == _canon(b.to_dict())

    def test_different_seed_differs(self):
        from repro.obs.leakage import run_paired_campaign

        a = run_paired_campaign(trials=6, seed=SEED)
        b = run_paired_campaign(trials=6, seed=SEED + 1)
        assert _canon(a.to_dict()) != _canon(b.to_dict())


class TestFaultDeterminism:
    def test_same_seed_byte_identical(self):
        from repro.faults.campaign import run_paired_fault_campaign

        a = run_paired_fault_campaign(seed=SEED, smoke=True)
        b = run_paired_fault_campaign(seed=SEED, smoke=True)
        assert _canon(a.to_dict()) == _canon(b.to_dict())

    def test_scenario_sampling_is_seeded(self):
        from repro.faults.campaign import protected_fault_scenarios

        a = protected_fault_scenarios(SEED, smoke=True, shadow_tags=True)
        b = protected_fault_scenarios(SEED, smoke=True, shadow_tags=True)
        assert [(s.name, [f.target for f in s.plan.faults]) for s in a] \
            == [(s.name, [f.target for f in s.plan.faults]) for s in b]


class TestPowerDeterminism:
    def test_same_seed_byte_identical(self):
        from repro.obs.power import run_power_campaign

        kwargs = dict(seed=SEED, traces=24, tvla_traces=12,
                      check_protected=False, with_attribution=False)
        a = run_power_campaign(**kwargs)
        b = run_power_campaign(**kwargs)
        assert _canon(a.to_dict()) == _canon(b.to_dict())


class TestFleetDeterminism:
    """The fleet gate shares one seed across traffic, chaos, and retry
    jitter; two runs must agree byte-for-byte even though chaos kills
    shards mid-run (satellite of the fleet PR)."""

    @staticmethod
    def _run(seed):
        from repro.soc.fleet import run_fleet_gate

        return run_fleet_gate(seed=seed, shards=2, horizon=512,
                              tenants=4, workers="inline",
                              kills=1, wedges=1, check_ifc=False)

    def test_same_seed_byte_identical(self):
        a = self._run(SEED)
        b = self._run(SEED)
        assert _canon(a.to_dict()) == _canon(b.to_dict())

    def test_different_seed_differs(self):
        a = self._run(SEED)
        b = self._run(SEED + 1)
        assert _canon(a.to_dict()) != _canon(b.to_dict())


class TestFleetObsDeterminism:
    """The fleet observatory report hashes the stitched trace and the
    merged worker telemetry; two same-seed runs must agree byte-for-byte,
    digests included (satellite of the fleet-observatory PR)."""

    @staticmethod
    def _run(seed):
        from repro.obs.fleet import run_fleet_obs_gate

        report, _fobs = run_fleet_obs_gate(
            seed=seed, shards=2, horizon=512, tenants=4,
            workers="inline", kills=1, wedges=1, identity=False)
        return report

    def test_same_seed_byte_identical(self):
        a = self._run(SEED)
        b = self._run(SEED)
        assert _canon(a.to_dict()) == _canon(b.to_dict())

    def test_different_seed_differs(self):
        a = self._run(SEED)
        b = self._run(SEED + 1)
        assert _canon(a.to_dict()) != _canon(b.to_dict())


class TestCoverageDeterminism:
    def test_repeat_collection_bit_identical(self):
        from repro.obs.coverage import run_coverage_collection

        a, _ = run_coverage_collection(backend="compiled",
                                       with_fault_arm=False)
        b, _ = run_coverage_collection(backend="compiled",
                                       with_fault_arm=False)
        assert a.fingerprint() == b.fingerprint()
        assert a.to_dict()["signals"] == b.to_dict()["signals"]

    def test_backends_bit_identical(self):
        pytest.importorskip("numpy")
        from repro.obs.coverage import run_coverage_collection

        fps = {}
        for backend, lanes in (("compiled", 1), ("batched", 2)):
            cmap, _ = run_coverage_collection(backend=backend, lanes=lanes,
                                              with_fault_arm=False)
            fps[backend] = cmap.fingerprint()
        assert fps["compiled"] == fps["batched"]
