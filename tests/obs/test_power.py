"""Power observatory: collector uniformity across backends, VCD replay,
attribution grouping, and the TVLA/CPA detectors on the round unit."""

import os
import random

import pytest

from repro.hdl import Module, Simulator, cat, when
from repro.hdl.sim.trace import Trace
from repro.obs.power import (
    CPA_RECOVERY_TARGET,
    DEFAULT_TVLA_TRACES,
    PowerCollector,
    TRACE_CYCLES,
    collect_attribution,
    collect_power_traces,
    cpa_attack,
    power_group,
    power_trace_from_vcd,
    run_power_campaign,
    tvla_test,
)

SEED = 2026


class TestPowerGroup:
    def test_shadow_tag_suffixes(self):
        assert power_group("aes.rounds.state__conf") == "shadow_tags"
        assert power_group("aes.outbuf.tag__integ") == "shadow_tags"

    def test_key_schedule(self):
        assert power_group("aes.keyexp.rk3") == "key_schedule"
        assert power_group("aes.ksbox_out") == "key_schedule"

    def test_scratchpad_and_control(self):
        assert power_group("aes.scratchpad.mem_q") == "scratchpad"
        assert power_group("aes.stallctl.pending") == "control"
        assert power_group("aes.declass.ok") == "control"
        assert power_group("aes.outbuf.data") == "control"

    def test_default_is_datapath(self):
        assert power_group("aes.rounds.state2") == "datapath"
        assert power_group("roundpow.in_state") == "datapath"


class TestCrossBackendEquality:
    """Satellite: the HD trace of a given plaintext is bit-identical on
    interp, compiled, and batched (per-lane) backends."""

    @pytest.mark.parametrize("masked", [False, True])
    def test_hd_traces_identical(self, masked):
        pytest.importorskip("numpy")
        n = 16
        ref = None
        for backend, lanes in (("compiled", 1), ("interp", 1),
                               ("batched", 8)):
            _, traces, _ = collect_power_traces(
                masked=masked, ntraces=n, seed=SEED, backend=backend,
                lanes=lanes)
            assert len(traces) == n
            assert all(len(t) == TRACE_CYCLES - 1 for t in traces)
            if ref is None:
                ref = traces
            else:
                assert traces == ref, f"{backend} diverges from compiled"

    def test_plaintexts_deterministic_across_backends(self):
        p1, _, _ = collect_power_traces(ntraces=4, seed=SEED,
                                        backend="compiled")
        p2, _, _ = collect_power_traces(ntraces=4, seed=SEED,
                                        backend="interp")
        assert p1 == p2


class _Lfsr(Module):
    """8-bit Fibonacci LFSR — busy every cycle, so the VCD records every
    timestep and the replay loses nothing to trailing quiet cycles."""

    def __init__(self):
        super().__init__("lfsr")
        self.en = self.input("en", 1)
        self.state = self.reg("state", 8, init=1)
        fb = (self.state[7] ^ self.state[5] ^ self.state[4]
              ^ self.state[3])
        with when(self.en):
            self.state <<= cat(self.state[6:0], fb)


class TestVcdReplay:
    """Satellite: the offline VCD path recomputes the live HD trace."""

    def test_round_trip_matches_collector(self, tmp_path):
        sim = Simulator(_Lfsr(), backend="compiled")
        paths = [s.path for s in sim.value_signals()]
        col = PowerCollector(sim)
        tr = Trace(sim, paths)
        sim.poke("lfsr.en", 1)
        col.start_trace()
        sim.step(12)
        col.detach()
        path = os.path.join(tmp_path, "power.vcd")
        tr.write_vcd(path)
        live = col.traces_hd[0][0]
        replayed = power_trace_from_vcd(path)
        assert replayed == live
        assert sum(live) > 0  # the LFSR actually toggled

    def test_signal_subset_filter(self, tmp_path):
        sim = Simulator(_Lfsr(), backend="compiled")
        tr = Trace(sim, ["lfsr.state", "lfsr.en"])
        sim.poke("lfsr.en", 1)
        sim.step(8)
        path = os.path.join(tmp_path, "subset.vcd")
        tr.write_vcd(path)
        full = power_trace_from_vcd(path)
        only_state = power_trace_from_vcd(path, signals=["lfsr.state"])
        assert len(only_state) == len(full)
        assert all(s <= f for s, f in zip(only_state, full))

    def test_empty_vcd_selection_yields_empty_trace(self, tmp_path):
        sim = Simulator(_Lfsr(), backend="compiled")
        tr = Trace(sim, ["lfsr.state"])
        sim.poke("lfsr.en", 1)
        sim.step(4)
        path = os.path.join(tmp_path, "none.vcd")
        tr.write_vcd(path)
        assert power_trace_from_vcd(path, signals=["no.such"]) == []


class TestCollector:
    def test_idle_until_start_trace(self):
        sim = Simulator(_Lfsr(), backend="compiled")
        with PowerCollector(sim) as col:
            sim.poke("lfsr.en", 1)
            sim.step(5)
            assert col.traces_hd == []
            col.start_trace()
            sim.step(3)
        assert len(col.traces_hd) == 1
        assert len(col.traces_hd[0][0]) == 2  # first snapshot is reference

    def test_weighted_at_least_hd(self):
        sim = Simulator(_Lfsr(), backend="compiled")
        with PowerCollector(sim) as col:
            sim.poke("lfsr.en", 1)
            col.start_trace()
            sim.step(6)
        hd = col.traces_hd[0][0]
        wt = col.traces_weighted[0][0]
        assert all(w >= h for w, h in zip(wt, hd))

    def test_group_hd_accounts_every_bit(self):
        sim = Simulator(_Lfsr(), backend="compiled")
        with PowerCollector(sim) as col:
            sim.poke("lfsr.en", 1)
            col.start_trace()
            sim.step(6)
        assert sum(col.group_hd.values()) == sum(col.traces_hd[0][0])

    def test_shadow_tag_plane_visible_under_tag_tracking(self):
        from repro.accel.common import LATTICE
        from repro.accel.mini import MiniTaggedPipeline

        sim = Simulator(MiniTaggedPipeline(2, guarded=True),
                        backend="compiled", tag_tracking=True,
                        lattice=LATTICE)
        with PowerCollector(sim) as col:
            assert "shadow_tags" in col.group_names


class TestDetectors:
    def test_cpa_needs_traces(self):
        with pytest.raises(ValueError, match="trace count"):
            cpa_attack([[1, 2, 3]] * 4, [0] * 4, key=0)

    def test_cpa_recovers_unmasked_key(self):
        plains, traces, _ = collect_power_traces(
            masked=False, ntraces=512, seed=SEED, backend="compiled")
        from repro.obs.power import _campaign_key
        key = _campaign_key(SEED)  # the key collect_power_traces used
        cpa = cpa_attack(traces, plains, key)
        assert cpa.recovered >= CPA_RECOVERY_TARGET
        assert cpa.traces == 512

    def test_tvla_flags_unmasked_round(self):
        key = random.Random(SEED).getrandbits(128)
        _, fixed, _ = collect_power_traces(
            ntraces=DEFAULT_TVLA_TRACES, seed=SEED + 1,
            backend="compiled", fixed_plain=0, key=key)
        _, rand, _ = collect_power_traces(
            ntraces=DEFAULT_TVLA_TRACES, seed=SEED + 2,
            backend="compiled", key=key)
        res = tvla_test(fixed, rand)
        assert res.flagged
        assert res.max_t > res.t_threshold
        assert 0 <= res.worst_point < TRACE_CYCLES - 1

    def test_tvla_identical_groups_not_flagged(self):
        rng = random.Random(9)
        tr = [[rng.randrange(100, 110) for _ in range(3)]
              for _ in range(40)]
        res = tvla_test(tr, tr)
        assert not res.flagged
        assert res.max_t == 0.0


class TestAttribution:
    def test_protected_accel_touches_every_plane(self):
        attr = collect_attribution(backend="compiled", cycles=40)
        for plane in ("datapath", "key_schedule", "scratchpad",
                      "control", "shadow_tags"):
            assert attr.get(plane, 0) > 0, f"{plane} silent"


class TestCampaign:
    def test_paired_campaign_verdict(self):
        result = run_power_campaign(
            seed=SEED, backend="compiled", traces=512, tvla_traces=32,
            check_protected=False, with_attribution=False)
        assert result.baseline_broken
        assert result.masking_effective
        assert result.ok
        d = result.to_dict()
        assert d["ok"] is True
        assert d["unmasked"]["cpa"]["recovered_bytes"] >= \
            CPA_RECOVERY_TARGET
        assert d["masked"]["cpa"]["recovered_bytes"] == 0
        text = result.render()
        assert "VERDICT" in text
        md = result.render_md()
        assert "Power side-channel report" in md
