"""Tracer: spans, instants, track metadata, Chrome trace-event export."""

import json

from repro.obs import NullTracer, Tracer


def test_begin_end_span():
    clock = iter([10.0, 40.0])
    t = Tracer(clock=lambda: next(clock))
    span = t.begin("request", cat="soc", tid=1, user="alice")
    t.end(span)
    assert span.duration == 30.0
    assert t.span_count() == 1
    (ev,) = t.events
    assert ev["ph"] == "X" and ev["ts"] == 10.0 and ev["dur"] == 30.0
    assert ev["args"] == {"user": "alice"}


def test_span_context_manager():
    ticks = iter([1.0, 5.0])
    t = Tracer(clock=lambda: next(ticks))
    with t.span("compile", cat="sim"):
        pass
    assert t.span_count() == 1
    assert t.events[0]["dur"] == 4.0


def test_complete_backfills_retroactive_span():
    t = Tracer()
    t.complete("service", start=100, duration=30, cat="soc", tid=2, slot=1)
    (ev,) = t.events
    assert ev["ts"] == 100.0 and ev["dur"] == 30.0 and ev["tid"] == 2
    assert ev["args"]["slot"] == 1


def test_instant_and_counter_events():
    t = Tracer()
    t.instant("request_dropped", tid=3, ts=55, user="bob")
    t.counter("inflight", {"requests": 7}, ts=60)
    phases = [e["ph"] for e in t.events]
    assert phases == ["i", "C"]
    assert t.span_count() == 0


def test_name_track_emits_metadata_once():
    t = Tracer()
    t.name_track(1, "user:alice")
    t.name_track(1, "user:alice")  # duplicate is dropped
    t.name_track(2, "user:bob")
    meta = [e for e in t.events if e["ph"] == "M"]
    assert len(meta) == 2
    assert meta[0]["args"]["name"] == "user:alice"


def test_chrome_trace_export_is_valid_json(tmp_path):
    t = Tracer()
    t.complete("request", 0, 30, tid=1)
    t.write_chrome_trace(str(tmp_path / "trace.json"))
    doc = json.loads((tmp_path / "trace.json").read_text())
    assert isinstance(doc["traceEvents"], list)
    assert doc["traceEvents"][0]["name"] == "request"
    # every event has the keys chrome://tracing needs
    for ev in doc["traceEvents"]:
        assert {"name", "ph", "pid", "tid"} <= set(ev)


def test_unclosed_span_is_autoclosed_at_export():
    clock = iter([10.0, 25.0, 25.0])
    t = Tracer(clock=lambda: next(clock))
    t.begin("dangling", cat="soc", tid=2, user="alice")
    doc = t.to_chrome_trace()
    spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    warns = [e for e in doc["traceEvents"]
             if e["ph"] == "i" and e["name"] == "unclosed_span_autoclosed"]
    assert len(spans) == 1, "open span must not vanish from the export"
    assert spans[0]["ts"] == 10.0 and spans[0]["dur"] == 15.0
    assert spans[0]["args"]["autoclosed"] is True
    assert len(warns) == 1 and warns[0]["args"]["span"] == "dangling"
    assert t.open_spans() == []


def test_autoclose_never_ends_before_start():
    t = Tracer(clock=lambda: 5.0)
    t.begin("future", ts=100.0)
    assert t.close_open_spans() == 1
    (warn, span) = t.events
    assert span["ph"] == "X" and span["ts"] == 100.0 and span["dur"] == 0.0
    # repeated export is idempotent: nothing left open to close again
    assert t.close_open_spans() == 0


def test_null_tracer_records_nothing():
    t = NullTracer()
    span = t.begin("x")
    t.end(span)
    t.complete("y", 0, 1)
    t.instant("z")
    t.counter("c", {"v": 1})
    t.name_track(1, "track")
    assert t.events == []
    assert t.span_count() == 0
