"""Fleet observatory: burn-rate engine, alert correlation, harvest, gate."""

import pytest

from repro.obs.fleet import (
    FLEET_PID,
    SHARD_PID_BASE,
    BurnRateEngine,
    FleetObservatory,
    correlate_alerts,
    run_fleet_obs_gate,
)

#: 10% error budget makes the burn arithmetic legible by hand
SLOS = {"gold": {"p99": 100.0, "goodput": 0.9}}

#: the CI gate's seed — the one scenario pinned end-to-end
GATE_SEED = 2026


class _Req:
    """Minimal stand-in for a FleetRequest in hook-level tests."""

    def __init__(self, rid, tenant="t0", slo_class="gold", trace="abc"):
        self.id = rid
        self.tenant = tenant
        self.slo_class = slo_class
        self.trace_id = trace
        self.status = "queued"
        self.latency = None
        self.submitted_cycle = 0
        self.delivered_cycle = None
        self.attempts = 0
        self.retries = 0


class TestBurnRateEngine:
    def _engine(self, **kw):
        kw.setdefault("fast_window", 2)
        kw.setdefault("slow_window", 4)
        kw.setdefault("threshold", 2.0)
        kw.setdefault("min_events", 2)
        return BurnRateEngine(SLOS, **kw)

    def test_budget_and_burn_math(self):
        e = self._engine()
        assert e.budget("gold") == pytest.approx(0.1)
        # 1 bad of 5 = 20% bad fraction = 2x the 10% budget
        assert e.burn(1, 5, "gold") == pytest.approx(2.0)
        assert e.burn(0, 5, "gold") == 0.0
        assert e.burn(0, 0, "gold") == 0.0  # empty window never burns

    def test_episode_opens_and_closes_with_the_burn(self):
        e = self._engine()
        for _ in range(4):
            e.observe(0, "gold", False)
        e.evaluate(0)
        for bad in (True, True, False, False):
            e.observe(1, "gold", bad)
        e.evaluate(1)  # fast window 0-1: 2/8 bad -> burn 2.5, opens
        assert "gold" in e._active
        for _ in range(4):
            e.observe(2, "gold", False)
        e.evaluate(2)  # slow window 0-2: 2/12 -> burn 1.67, lapses
        episodes = e.finalize()
        assert len(episodes) == 1
        ep = episodes[0]
        assert ep["slo_class"] == "gold"
        assert ep["start"] == 1 and ep["end"] == 1
        assert ep["peak_fast"] == pytest.approx(2.5)
        assert ep["bad_events"] == 2

    def test_min_events_suppresses_thin_traffic_pages(self):
        # one bad request on an otherwise idle class burns at 10x but
        # must not page: a single event is not an outage signal
        e = self._engine(min_events=4)
        e.observe(0, "gold", True)
        e.evaluate(0)
        assert e.finalize() == []

    def test_windows_are_per_class(self):
        slos = dict(SLOS, bronze={"p99": 500.0, "goodput": 0.5})
        e = BurnRateEngine(slos, fast_window=2, slow_window=4,
                           threshold=2.0, min_events=2)
        for _ in range(4):
            e.observe(0, "gold", True)
            e.observe(0, "bronze", False)
        e.evaluate(0)
        episodes = e.finalize()
        assert [ep["slo_class"] for ep in episodes] == ["gold"]


class TestCorrelateAlerts:
    def test_perfect_attribution(self):
        out = correlate_alerts([{"slo_class": "gold", "start": 10}],
                               [{"round": 8, "kind": "kill", "shard": 0}],
                               match_rounds=5)
        assert out["precision"] == 1.0 and out["recall"] == 1.0
        assert out["episodes"][0]["matched"] is True
        assert out["chaos_fired"][0]["covered"] is True

    def test_false_alert_costs_precision(self):
        out = correlate_alerts([{"slo_class": "gold", "start": 50}],
                               [{"round": 0, "kind": "kill", "shard": 0}],
                               match_rounds=5)
        assert out["precision"] == 0.0 and out["recall"] == 0.0

    def test_missed_event_costs_recall(self):
        out = correlate_alerts(
            [{"slo_class": "gold", "start": 2}],
            [{"round": 0, "kind": "kill", "shard": 0},
             {"round": 30, "kind": "wedge", "shard": 1}],
            match_rounds=5)
        assert out["precision"] == 1.0
        assert out["recall"] == 0.5

    def test_match_window_is_inclusive(self):
        ev = [{"round": 10, "kind": "kill", "shard": 0}]
        for start, hit in ((10, True), (15, True), (9, False), (16, False)):
            out = correlate_alerts([{"slo_class": "g", "start": start}],
                                   ev, match_rounds=5)
            assert out["episodes"][0]["matched"] is hit, start

    def test_empty_is_vacuously_perfect(self):
        out = correlate_alerts([], [])
        assert out["precision"] == 1.0 and out["recall"] == 1.0


class TestHarvest:
    def test_counters_accumulate_across_epochs(self):
        fobs = FleetObservatory(SLOS)
        row = ("add", "repro_x_total", (("user", "a"),), 3.0)
        fobs.harvest(0, 1, 0, {"metrics": [row]})
        fobs.harvest(0, 2, 0,
                     {"metrics": [("add", "repro_x_total",
                                   (("user", "a"),), 2.0)]})
        key = ("repro_x_total", (("shard", "0"), ("user", "a")))
        assert fobs.merged[key] == 5.0
        assert fobs.merged_kind["repro_x_total"] == "sum"

    def test_gauges_overwrite(self):
        fobs = FleetObservatory(SLOS)
        fobs.harvest(0, 1, 0, {"metrics": [("set", "repro_g", (), 5.0)]})
        fobs.harvest(0, 1, 0, {"metrics": [("set", "repro_g", (), 7.0)]})
        assert fobs.merged[("repro_g", (("shard", "0"),))] == 7.0
        assert fobs.merged_kind["repro_g"] == "gauge"

    def test_shard_label_keeps_shards_distinct(self):
        fobs = FleetObservatory(SLOS)
        for shard in (0, 1):
            fobs.harvest(shard, 1, 0,
                         {"metrics": [("add", "repro_x_total", (), 1.0)]})
        assert len(fobs.merged) == 2
        assert all(("shard", str(s)) in labels
                   for s, (_n, labels) in enumerate(sorted(fobs.merged)))

    def test_spans_shift_into_fleet_cycles_without_mutating_source(self):
        fobs = FleetObservatory(SLOS)
        raw = {"name": "sim_round", "cat": "fleet", "ph": "X", "ts": 10.0,
               "dur": 4.0, "pid": 1, "tid": 0, "args": {"round": 3}}
        fobs.harvest(2, 1, 100, {"spans": [raw]})
        (ev,) = fobs.shard_events
        assert ev["pid"] == SHARD_PID_BASE + 2
        assert ev["ts"] == 110.0
        # the inline host hands over its live event objects — harvest
        # must copy, never mutate
        assert raw["pid"] == 1 and raw["ts"] == 10.0

    def test_worker_span_closes_the_chain(self):
        fobs = FleetObservatory(SLOS)
        req = _Req(7, trace="abc")
        fobs.on_admit(req, cycle=0)
        fobs.harvest(1, 1, 0, {"spans": [
            {"name": "shard_request", "ph": "X", "ts": 5.0, "dur": 2.0,
             "pid": 9, "tid": 1, "args": {"rid": 7, "trace": "abc"}}]})
        assert fobs.chains[7]["worker"] is True
        assert fobs.trace_mismatches == 0
        flows = [e for e in fobs.shard_events if e.get("ph") == "t"]
        assert len(flows) == 1 and flows[0]["id"] == 7
        assert flows[0]["pid"] == SHARD_PID_BASE + 1

    def test_trace_id_mismatch_is_counted(self):
        fobs = FleetObservatory(SLOS)
        fobs.on_admit(_Req(7, trace="abc"), cycle=0)
        fobs.harvest(1, 1, 0, {"spans": [
            {"name": "shard_terminal", "ph": "i", "ts": 5.0,
             "pid": 9, "tid": 1, "args": {"rid": 7, "trace": "zzz"}}]})
        assert fobs.trace_mismatches == 1

    def test_metadata_dedupes_across_respawn_epochs(self):
        fobs = FleetObservatory(SLOS)
        meta = {"name": "thread_name", "ph": "M", "pid": 0, "tid": 1,
                "args": {"name": "user:alice"}}
        fobs.harvest(0, 1, 0, {"spans": [dict(meta, args=dict(meta["args"]))]})
        fobs.harvest(0, 2, 0, {"spans": [dict(meta, args=dict(meta["args"]))]})
        metas = [e for e in fobs.shard_events if e.get("ph") == "M"]
        assert len(metas) == 1


@pytest.fixture(scope="module")
def smoke_gate():
    return run_fleet_obs_gate(seed=GATE_SEED, shards=2, horizon=512,
                              tenants=4, workers="inline",
                              kills=1, wedges=1, identity=False)


class TestGateSmoke:
    def test_gate_passes(self, smoke_gate):
        report, _ = smoke_gate
        assert report.ok()
        assert report.completeness["fraction"] == 1.0
        assert report.completeness["trace_mismatches"] == 0
        assert report.completeness["incomplete"] == []

    def test_alerts_attribute_to_seeded_chaos(self, smoke_gate):
        report, _ = smoke_gate
        assert report.correlation["precision"] == 1.0
        assert report.correlation["recall"] == 1.0
        assert report.chaos_fired == report.chaos_injected >= 2

    def test_trace_spans_both_sides_of_the_pipe(self, smoke_gate):
        _, fobs = smoke_gate
        events = fobs.all_events()
        pids = {e["pid"] for e in events}
        assert FLEET_PID in pids
        assert {SHARD_PID_BASE, SHARD_PID_BASE + 1} <= pids
        phases = {e["ph"] for e in events}
        assert {"s", "t", "f"} <= phases  # admission -> shard -> delivery
        names = {e["name"] for e in events}
        assert any(n.startswith("chaos_") for n in names)
        assert {"seat_provision", "sim_round", "fleet_request"} <= names

    def test_all_harvested_series_carry_a_shard_label(self, smoke_gate):
        _, fobs = smoke_gate
        assert fobs.merged
        for _name, labels in fobs.merged:
            assert any(k == "shard" for k, _v in labels)


class TestCrossHostIdentity:
    def test_process_workers_match_inline(self):
        report, _ = run_fleet_obs_gate(
            seed=GATE_SEED, shards=2, horizon=512, tenants=4,
            workers="process", kills=1, wedges=1, identity=True)
        assert report.identity["workers_compared"] == ["process", "inline"]
        assert report.identity["telemetry_ok"]
        assert report.identity["trace_ok"]
        assert report.ok()
