"""GF(2^8) field laws and S-box self-derivation."""

from hypothesis import given
from hypothesis import strategies as st

from repro.aes.constants import INV_SBOX, SBOX
from repro.aes.gf import (
    affine_transform,
    ginv,
    gmul,
    gpow,
    sbox_from_first_principles,
    xtime,
)

B = st.integers(min_value=0, max_value=255)
NZ = st.integers(min_value=1, max_value=255)


class TestXtime:
    def test_known_values(self):
        assert xtime(0x57) == 0xAE
        assert xtime(0xAE) == 0x47
        assert xtime(0x80) == 0x1B

    @given(B)
    def test_matches_gmul_by_two(self, a):
        assert xtime(a) == gmul(a, 2)


class TestFieldLaws:
    @given(B, B)
    def test_commutative(self, a, b):
        assert gmul(a, b) == gmul(b, a)

    @given(B, B, B)
    def test_associative(self, a, b, c):
        assert gmul(gmul(a, b), c) == gmul(a, gmul(b, c))

    @given(B, B, B)
    def test_distributes_over_xor(self, a, b, c):
        assert gmul(a, b ^ c) == gmul(a, b) ^ gmul(a, c)

    @given(B)
    def test_one_is_identity(self, a):
        assert gmul(a, 1) == a

    @given(B)
    def test_zero_annihilates(self, a):
        assert gmul(a, 0) == 0

    @given(NZ)
    def test_inverse(self, a):
        assert gmul(a, ginv(a)) == 1

    def test_inv_zero_convention(self):
        assert ginv(0) == 0

    @given(NZ)
    def test_order_of_multiplicative_group(self, a):
        assert gpow(a, 255) == 1

    @given(B, st.integers(min_value=0, max_value=300),
           st.integers(min_value=0, max_value=300))
    def test_pow_adds_exponents(self, a, m, n):
        assert gmul(gpow(a, m), gpow(a, n)) == gpow(a, m + n)


class TestSboxDerivation:
    def test_sbox_from_inverse_and_affine(self):
        for x in range(256):
            assert sbox_from_first_principles(x) == SBOX[x]

    def test_affine_of_zero(self):
        assert affine_transform(0) == 0x63
        assert SBOX[0] == 0x63

    def test_inv_sbox_is_inverse(self):
        for x in range(256):
            assert INV_SBOX[SBOX[x]] == x
            assert SBOX[INV_SBOX[x]] == x

    def test_sbox_is_permutation(self):
        assert sorted(SBOX) == list(range(256))

    def test_sbox_has_no_fixed_points(self):
        assert all(SBOX[x] != x for x in range(256))
        assert all(SBOX[x] != (x ^ 0xFF) for x in range(256))
