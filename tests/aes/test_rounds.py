import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.aes.rounds import (
    add_round_key,
    block_to_state,
    inv_mix_columns,
    inv_shift_rows,
    inv_sub_bytes,
    mix_columns,
    shift_rows,
    state_to_block,
    sub_bytes,
)

states = st.lists(st.integers(0, 255), min_size=16, max_size=16)
blocks = st.integers(min_value=0, max_value=(1 << 128) - 1)


class TestInverses:
    @given(states)
    def test_sub_bytes(self, s):
        assert inv_sub_bytes(sub_bytes(s)) == s

    @given(states)
    def test_shift_rows(self, s):
        assert inv_shift_rows(shift_rows(s)) == s

    @given(states)
    def test_mix_columns(self, s):
        assert inv_mix_columns(mix_columns(s)) == s

    @given(states, states)
    def test_add_round_key_involution(self, s, k):
        assert add_round_key(add_round_key(s, k), k) == s


class TestShiftRowsGeometry:
    def test_row0_unchanged(self):
        s = list(range(16))
        out = shift_rows(s)
        assert [out[0], out[4], out[8], out[12]] == [s[0], s[4], s[8], s[12]]

    def test_row1_rotates_by_one(self):
        s = list(range(16))
        out = shift_rows(s)
        # row 1 entries live at indices 1,5,9,13
        assert [out[1], out[5], out[9], out[13]] == [s[5], s[9], s[13], s[1]]

    def test_fips_example(self):
        # FIPS-197 example round 1 shift_rows input/output
        s = block_to_state(0xD42711AEE0BF98F1B8B45DE51E415230)
        out = shift_rows(s)
        assert state_to_block(out) == 0xD4BF5D30E0B452AEB84111F11E2798E5


class TestMixColumns:
    def test_fips_example_column(self):
        # FIPS-197 §5.1.3 test column
        s = [0xD4, 0xBF, 0x5D, 0x30] + [0] * 12
        out = mix_columns(s)
        assert out[:4] == [0x04, 0x66, 0x81, 0xE5]

    def test_columns_independent(self):
        a = [1] * 4 + [0] * 12
        b = [0] * 4 + [1] * 4 + [0] * 8
        assert mix_columns(a)[4:] == [0] * 12
        assert mix_columns(b)[:4] == [0] * 4


class TestBlockConversion:
    @given(blocks)
    def test_roundtrip(self, b):
        assert state_to_block(block_to_state(b)) == b

    def test_byte_order_msb_first(self):
        s = block_to_state(0x000102030405060708090A0B0C0D0E0F)
        assert s == list(range(16))

    def test_rejects_oversize(self):
        with pytest.raises(ValueError):
            block_to_state(1 << 128)

    def test_rejects_short_state(self):
        with pytest.raises(ValueError):
            sub_bytes([1, 2, 3])
