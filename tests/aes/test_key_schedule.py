"""Key-expansion details against FIPS-197 Appendix A."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aes.key_schedule import (
    expand_key,
    key_bytes_from_int,
    round_key_as_int,
)

A1_KEY = 0x2B7E151628AED2A6ABF7158809CF4F3C
A2_KEY = 0x8E73B0F7DA0E6452C810F32B809079E562F8EAD2522C6B7B
A3_KEY = (0x603DEB1015CA71BE2B73AEF0857D7781 << 128
          | 0x1F352C073B6108D72D9810A30914DFF4)


def words_of(round_keys):
    out = []
    for rk in round_keys:
        v = round_key_as_int(rk)
        out += [(v >> (96 - 32 * i)) & 0xFFFFFFFF for i in range(4)]
    return out


class TestAppendixA:
    def test_a1_first_and_last_words(self):
        w = words_of(expand_key(A1_KEY, 128))
        assert w[0] == 0x2B7E1516
        assert w[4] == 0xA0FAFE17   # FIPS A.1, i=4
        assert w[43] == 0xB6630CA6  # last word

    def test_a2_samples(self):
        w = words_of(expand_key(A2_KEY, 192))
        assert w[0] == 0x8E73B0F7
        assert w[6] == 0xFE0C91F7   # first generated word (i=6)
        assert w[51] == 0x01002202  # last word

    def test_a3_samples(self):
        w = words_of(expand_key(A3_KEY, 256))
        assert w[0] == 0x603DEB10
        assert w[8] == 0x9BA35411   # i=8, uses RotWord+SubWord
        assert w[12] == 0xA8B09C1A  # i=12, uses the extra SubWord
        assert w[59] == 0x706C631E  # last word

    def test_counts(self):
        assert len(expand_key(0, 128)) == 11
        assert len(expand_key(0, 192)) == 13
        assert len(expand_key(0, 256)) == 15


class TestKeyBytes:
    def test_big_endian_order(self):
        assert key_bytes_from_int(0x0102, 128)[-2:] == [0x01, 0x02]
        assert key_bytes_from_int(0x0102, 128)[0] == 0

    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            key_bytes_from_int(0, 100)
        with pytest.raises(ValueError):
            key_bytes_from_int(1 << 192, 192)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, (1 << 128) - 1))
    def test_roundtrip(self, key):
        data = key_bytes_from_int(key, 128)
        assert len(data) == 16
        back = 0
        for b in data:
            back = (back << 8) | b
        assert back == key


class TestScheduleProperties:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, (1 << 128) - 1))
    def test_first_round_key_is_the_key(self, key):
        assert round_key_as_int(expand_key(key, 128)[0]) == key

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, (1 << 128) - 1), st.integers(0, (1 << 128) - 1))
    def test_injective_on_samples(self, k1, k2):
        if k1 != k2:
            assert expand_key(k1, 128) != expand_key(k2, 128)
