"""SP 800-38A vectors for ECB/CBC/CTR plus padding properties."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aes.modes import (
    cbc_decrypt,
    cbc_encrypt,
    ctr_crypt,
    ecb_decrypt,
    ecb_encrypt,
    pad_pkcs7,
    unpad_pkcs7,
)

KEY = 0x2B7E151628AED2A6ABF7158809CF4F3C
PT = bytes.fromhex(
    "6bc1bee22e409f96e93d7e117393172a"
    "ae2d8a571e03ac9c9eb76fac45af8e51"
)
IV = 0x000102030405060708090A0B0C0D0E0F


class TestEcb:
    def test_sp80038a_vector(self):
        ct = ecb_encrypt(PT, KEY)
        assert ct.hex().startswith("3ad77bb40d7a3660a89ecaf32466ef97")
        assert ct.hex()[32:64] == "f5d3d58503b9699de785895a96fdbaaf"

    def test_roundtrip(self):
        assert ecb_decrypt(ecb_encrypt(PT, KEY), KEY) == PT

    def test_unaligned_rejected(self):
        with pytest.raises(ValueError):
            ecb_encrypt(b"short", KEY)


class TestCbc:
    def test_sp80038a_vector(self):
        ct = cbc_encrypt(PT, KEY, IV)
        assert ct.hex()[:32] == "7649abac8119b246cee98e9b12e9197d"
        assert ct.hex()[32:64] == "5086cb9b507219ee95db113a917678b2"

    def test_roundtrip(self):
        assert cbc_decrypt(cbc_encrypt(PT, KEY, IV), KEY, IV) == PT

    def test_iv_matters(self):
        assert cbc_encrypt(PT, KEY, IV) != cbc_encrypt(PT, KEY, IV ^ 1)

    def test_identical_blocks_differ(self):
        two_same = b"A" * 32
        ct = cbc_encrypt(two_same, KEY, IV)
        assert ct[:16] != ct[16:]


class TestCtr:
    def test_sp80038a_vector(self):
        nonce = 0xF0F1F2F3F4F5F6F7F8F9FAFBFCFDFEFF
        ct = ctr_crypt(PT, KEY, nonce)
        assert ct.hex()[:32] == "874d6191b620e3261bef6864990db6ce"

    def test_symmetric(self):
        nonce = 0x1234
        assert ctr_crypt(ctr_crypt(PT, KEY, nonce), KEY, nonce) == PT

    def test_partial_final_block(self):
        data = b"exactly 21 bytes long"
        assert len(data) == 21
        ct = ctr_crypt(data, KEY, 7)
        assert len(ct) == 21
        assert ctr_crypt(ct, KEY, 7) == data

    @settings(max_examples=20, deadline=None)
    @given(st.binary(min_size=0, max_size=100), st.integers(0, (1 << 128) - 1))
    def test_roundtrip_any_length(self, data, nonce):
        assert ctr_crypt(ctr_crypt(data, KEY, nonce), KEY, nonce) == data


class TestPadding:
    @given(st.binary(min_size=0, max_size=64))
    def test_pad_unpad_roundtrip(self, data):
        padded = pad_pkcs7(data)
        assert len(padded) % 16 == 0
        assert unpad_pkcs7(padded) == data

    def test_full_block_pad(self):
        assert len(pad_pkcs7(b"x" * 16)) == 32

    def test_bad_padding_rejected(self):
        with pytest.raises(ValueError):
            unpad_pkcs7(b"\x00" * 16)
        with pytest.raises(ValueError):
            unpad_pkcs7(b"")
        with pytest.raises(ValueError):
            unpad_pkcs7(b"x" * 15 + b"\x05")

    @given(st.binary(min_size=0, max_size=64))
    def test_padded_ecb_roundtrip(self, data):
        ct = ecb_encrypt(pad_pkcs7(data), KEY)
        assert unpad_pkcs7(ecb_decrypt(ct, KEY)) == data
