"""Property suite for the AES reference model.

Complements ``test_cipher.py``: one parametrized round-trip property
covering all three FIPS-197 key sizes, plus the Appendix C known-answer
vectors pinned in *both* directions so a regression in either half of
the cipher can't hide behind the inverse.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aes.cipher import decrypt_block, encrypt_block

BLOCK = st.integers(min_value=0, max_value=(1 << 128) - 1)

# FIPS-197 Appendix C: plaintext 00112233445566778899aabbccddeeff with
# the key bytes 00 01 02 ... for each key size.
APPENDIX_C = {
    128: (0x000102030405060708090A0B0C0D0E0F,
          0x69C4E0D86A7B0430D8CDB78070B4C55A),
    192: (0x000102030405060708090A0B0C0D0E0F1011121314151617,
          0xDDA97CA4864CDFE06EAF70A0EC0D7191),
    256: (0x000102030405060708090A0B0C0D0E0F101112131415161718191A1B1C1D1E1F,
          0x8EA2B7CA516745BFEAFC49904B496089),
}
APPENDIX_C_PT = 0x00112233445566778899AABBCCDDEEFF


class TestRoundTripProperty:
    @pytest.mark.parametrize("key_bits", [128, 192, 256])
    @settings(max_examples=25, deadline=None)
    @given(pt=BLOCK, data=st.data())
    def test_decrypt_inverts_encrypt(self, key_bits, pt, data):
        key = data.draw(st.integers(0, (1 << key_bits) - 1))
        ct = encrypt_block(pt, key, key_bits=key_bits)
        assert decrypt_block(ct, key, key_bits=key_bits) == pt

    @pytest.mark.parametrize("key_bits", [128, 192, 256])
    @settings(max_examples=25, deadline=None)
    @given(ct=BLOCK, data=st.data())
    def test_encrypt_inverts_decrypt(self, key_bits, ct, data):
        key = data.draw(st.integers(0, (1 << key_bits) - 1))
        pt = decrypt_block(ct, key, key_bits=key_bits)
        assert encrypt_block(pt, key, key_bits=key_bits) == ct


class TestAppendixCPinned:
    @pytest.mark.parametrize("key_bits", [128, 192, 256])
    def test_encrypt_direction(self, key_bits):
        key, ct = APPENDIX_C[key_bits]
        assert encrypt_block(APPENDIX_C_PT, key, key_bits=key_bits) == ct

    @pytest.mark.parametrize("key_bits", [128, 192, 256])
    def test_decrypt_direction(self, key_bits):
        key, ct = APPENDIX_C[key_bits]
        assert decrypt_block(ct, key, key_bits=key_bits) == APPENDIX_C_PT
