"""FIPS-197 vectors and cipher properties for all key sizes."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aes.cipher import (
    block_to_bytes,
    bytes_to_block,
    decrypt_block,
    encrypt_block,
    encrypt_round_states,
)
from repro.aes.key_schedule import expand_key, round_key_as_int

blocks = st.integers(min_value=0, max_value=(1 << 128) - 1)
keys128 = st.integers(min_value=0, max_value=(1 << 128) - 1)


class TestFips197Vectors:
    def test_appendix_b(self):
        pt = 0x3243F6A8885A308D313198A2E0370734
        key = 0x2B7E151628AED2A6ABF7158809CF4F3C
        assert encrypt_block(pt, key) == 0x3925841D02DC09FBDC118597196A0B32

    def test_appendix_c1_aes128(self):
        pt = 0x00112233445566778899AABBCCDDEEFF
        key = 0x000102030405060708090A0B0C0D0E0F
        assert encrypt_block(pt, key, 128) == (
            0x69C4E0D86A7B0430D8CDB78070B4C55A
        )

    def test_appendix_c2_aes192(self):
        pt = 0x00112233445566778899AABBCCDDEEFF
        key = 0x000102030405060708090A0B0C0D0E0F1011121314151617
        assert encrypt_block(pt, key, 192) == (
            0xDDA97CA4864CDFE06EAF70A0EC0D7191
        )

    def test_appendix_c3_aes256(self):
        pt = 0x00112233445566778899AABBCCDDEEFF
        key = int(
            "000102030405060708090a0b0c0d0e0f"
            "101112131415161718191a1b1c1d1e1f", 16
        )
        assert encrypt_block(pt, key, 256) == (
            0x8EA2B7CA516745BFEAFC49904B496089
        )

    def test_key_expansion_appendix_a1(self):
        key = 0x2B7E151628AED2A6ABF7158809CF4F3C
        rks = expand_key(key, 128)
        assert round_key_as_int(rks[1]) == 0xA0FAFE1788542CB123A339392A6C7605
        assert round_key_as_int(rks[10]) == 0xD014F9A8C9EE2589E13F0CC8B6630CA6

    def test_key_expansion_a2_a3_lengths(self):
        assert len(expand_key(0, 192)) == 13
        assert len(expand_key(0, 256)) == 15

    def test_bad_key_size(self):
        with pytest.raises(ValueError):
            encrypt_block(0, 0, 160)

    def test_key_too_large(self):
        with pytest.raises(ValueError):
            expand_key(1 << 128, 128)


class TestRoundtrip:
    @settings(max_examples=30, deadline=None)
    @given(blocks, keys128)
    def test_decrypt_inverts_encrypt_128(self, pt, key):
        assert decrypt_block(encrypt_block(pt, key), key) == pt

    @settings(max_examples=10, deadline=None)
    @given(blocks, st.integers(0, (1 << 192) - 1))
    def test_roundtrip_192(self, pt, key):
        assert decrypt_block(encrypt_block(pt, key, 192), key, 192) == pt

    @settings(max_examples=10, deadline=None)
    @given(blocks, st.integers(0, (1 << 256) - 1))
    def test_roundtrip_256(self, pt, key):
        assert decrypt_block(encrypt_block(pt, key, 256), key, 256) == pt

    @settings(max_examples=20, deadline=None)
    @given(blocks, keys128)
    def test_encryption_changes_plaintext(self, pt, key):
        assert encrypt_block(pt, key) != pt or pt == decrypt_block(pt, key)

    @given(blocks, keys128, keys128)
    @settings(max_examples=15, deadline=None)
    def test_different_keys_differ(self, pt, k1, k2):
        if k1 != k2:
            assert encrypt_block(pt, k1) != encrypt_block(pt, k2)


class TestRoundStates:
    def test_first_state_is_initial_ark(self):
        pt, key = 0x1234, 0x5678
        states = encrypt_round_states(pt, key)
        rk0 = round_key_as_int(expand_key(key, 128)[0])
        assert states[0] == pt ^ rk0

    def test_last_state_is_ciphertext(self):
        pt, key = 0xAAAA, 0xBBBB
        states = encrypt_round_states(pt, key)
        assert states[-1] == encrypt_block(pt, key)
        assert len(states) == 11


class TestByteHelpers:
    @given(blocks)
    def test_roundtrip(self, b):
        assert bytes_to_block(block_to_bytes(b)) == b

    def test_rejects_wrong_length(self):
        with pytest.raises(ValueError):
            bytes_to_block([1, 2, 3])
