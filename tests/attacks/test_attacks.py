"""Every §2.1/§3.1 attack: succeeds on the baseline, defeated on the
protected design."""

import random

import pytest

from repro.attacks.buffer_overflow import run_overflow_attack
from repro.attacks.debug_leak import (
    ALICE_KEY,
    KNOWN_PLAINTEXT,
    invert_round1_trace,
    run_debug_leak,
)
from repro.attacks.key_misuse import run_key_misuse
from repro.attacks.key_timing import (
    distinguish_keys,
    expansion_cycles,
    predicted_extra_cycles,
    timing_profile,
)
from repro.attacks.timing_channel import run_covert_channel
from repro.attacks.trojan import check_clean_stage, check_trojan_stage
from repro.aes import encrypt_round_states


class TestCovertChannel:
    BITS = [1, 0, 1, 1, 0, 0, 1, 0]

    @pytest.mark.slow
    def test_baseline_channel_decodes(self):
        res = run_covert_channel(False, self.BITS, stall_cycles=16)
        assert res.accuracy == 1.0
        assert res.mutual_information() > 0.9

    @pytest.mark.slow
    def test_protected_channel_is_closed(self):
        res = run_covert_channel(True, self.BITS, stall_cycles=16)
        assert res.mutual_information() == 0.0
        # latencies show no separation between 0-bits and 1-bits
        assert set(res.latencies_zero) == set(res.latencies_one)


class TestKeyScheduleTiming:
    def test_flawed_unit_distinguishes_keys(self):
        d, ca, cb = distinguish_keys(0, (1 << 128) - 1, protected=False)
        assert d and ca != cb

    def test_timing_matches_model(self):
        base = expansion_cycles(0, protected=False)
        for key in (0, 0xDEADBEEF << 96, (1 << 128) - 1):
            extra = predicted_extra_cycles(key)
            assert expansion_cycles(key, protected=False) == base - \
                predicted_extra_cycles(0) + extra

    def test_protected_is_constant_time(self):
        profile = timing_profile([0, 1, (1 << 128) - 1, 0xABC], protected=True)
        assert len(set(profile.values())) == 1


class TestBufferOverflow:
    def test_baseline_overwrites_and_decrypts(self):
        res = run_overflow_attack(False)
        assert res.overwritten
        assert res.eve_recovers_plaintext

    def test_protected_blocks(self):
        res = run_overflow_attack(True)
        assert not res.overwritten
        assert not res.eve_recovers_plaintext
        assert res.blocked_count >= 2  # both overrun writes flagged


class TestDebugLeak:
    def test_inversion_math(self):
        states = encrypt_round_states(KNOWN_PLAINTEXT, ALICE_KEY)
        from repro.aes import (
            block_to_state,
            state_to_block,
            sub_bytes,
        )
        # the traced value is SubBytes(initial ARK state)
        traced = state_to_block(sub_bytes(block_to_state(states[0])))
        assert invert_round1_trace(traced, KNOWN_PLAINTEXT) == ALICE_KEY

    def test_baseline_full_key_recovery(self):
        res = run_debug_leak(False)
        assert res.key_recovered
        assert res.cfg_after != 0  # Eve really enabled the trace

    def test_protected_defeated_twice_over(self):
        res = run_debug_leak(True)
        assert not res.key_recovered
        assert res.blocked_count >= 1  # config write and/or readout denied


class TestKeyMisuse:
    def test_baseline_eve_gets_master_ciphertext(self):
        res = run_key_misuse(False)
        assert res.eve_succeeded

    def test_protected_suppresses_eve_allows_supervisor(self):
        res = run_key_misuse(True)
        assert not res.eve_succeeded
        assert res.supervisor_succeeded
        assert res.suppressed_count >= 1


class TestTrojan:
    def test_trojan_flagged_statically(self):
        report = check_trojan_stage()
        assert not report.ok()
        sinks = report.distinct_sinks()
        # both the tag-clearing and the data splice are visible
        assert any("tag_r" in s for s in sinks)

    def test_clean_stage_passes(self):
        assert check_clean_stage().ok()
