"""Synthesized shadow tags under fault injection.

The tag transform runs *before* fault instrumentation
(`engine.Simulator.__init__`), so shadow ``__conf`` nets are ordinary
fault targets.  Two properties must hold on the protected design:

* **detected, not masked** — an over-tainting stuck-at on a shadow net
  lights up the synthesized flow sites downstream; a corrupted monitor
  announces itself instead of silently passing.
* **not load-bearing** — the shadow plane only observes; any shadow
  fault (over- or under-tainting) leaves the design's own enforcement
  and hence delivery correctness bit-for-bit intact.  The fail-safe
  verdict never depends on the monitor being healthy.
"""

from __future__ import annotations

import pytest

from repro.accel.common import CMD_ENCRYPT, LATTICE, user_label
from repro.accel.driver import AcceleratorDriver
from repro.accel.protected import AesAcceleratorProtected
from repro.aes.cipher import encrypt_block
from repro.faults.campaign import (
    protected_fault_scenarios,
    run_fault_campaign,
)
from repro.faults.plan import Fault, FaultKind, FaultPlan

ALICE = user_label("p0").encode()
EVE = user_label("p1").encode()
KEY_A = 0x0102030405060708090A0B0C0D0E0F10
KEY_B = 0x1112131415161718191A1B1C1D1E1F20
SHADOW_NET = "aes.pipe.sc3.data_r__conf"


def _tagged_driver(fault_targets):
    drv = AcceleratorDriver(AesAcceleratorProtected(), backend="compiled",
                            tag_tracking=True, lattice=LATTICE,
                            fault_targets=fault_targets)
    sim = drv.sim
    sim.poke(f"{drv.top}.out_ready", 1)
    sim.poke(f"{drv.top}.rd_user", ALICE)
    drv._idle_inputs()
    drv.allocate_slot(1, ALICE)
    drv.allocate_slot(2, EVE)
    drv.load_key(ALICE, 1, KEY_A)
    drv.load_key(EVE, 2, KEY_B)
    return drv


def _run_blocks(drv):
    """Issue one block per user; return {reader: [data…]} deliveries."""
    drv.issue(CMD_ENCRYPT, ALICE, slot=1, data=0xAA)
    drv.issue(CMD_ENCRYPT, EVE, slot=2, data=0xBB)
    got = {ALICE: [], EVE: []}
    for t in range(160):
        reader = ALICE if t % 2 == 0 else EVE
        drv.set_reader(reader)
        drv.step()
        for r in drv.take_responses():
            got[reader].append(r.data)
    return got


def _flow_sites_fired(sim):
    return [v for v in sim.tags.violations() if v.site.kind == "flow"]


class TestShadowNetFaults:
    def test_clean_run_has_quiet_monitor(self):
        drv = _tagged_driver([SHADOW_NET])
        got = _run_blocks(drv)
        assert _flow_sites_fired(drv.sim) == []
        assert got[ALICE] == [encrypt_block(0xAA, KEY_A)]
        assert got[EVE] == [encrypt_block(0xBB, KEY_B)]

    def test_stuck_at_one_is_detected_not_masked(self):
        """Over-tainting a shadow conf net must trip the synthesized flow
        sites downstream of the fault — loudly."""
        drv = _tagged_driver([SHADOW_NET])
        sim = drv.sim
        sim.load_fault_plan(FaultPlan([
            Fault(SHADOW_NET, FaultKind.STUCK_AT_1, 0xF,
                  cycle=sim.cycle + 2, duration=40)]))
        got = _run_blocks(drv)
        sim.clear_fault_plan()

        fired = _flow_sites_fired(sim)
        assert fired, "stuck-at-1 on a shadow tag net was silently masked"
        # the over-taint propagates: more than one downstream sink fires
        assert len(fired) > 1
        assert any(v.site.path.startswith("aes.pipe.") for v in fired)
        # ...while the design's own enforcement (and data) is untouched
        assert got[ALICE] == [encrypt_block(0xAA, KEY_A)]
        assert got[EVE] == [encrypt_block(0xBB, KEY_B)]

    def test_stuck_at_zero_does_not_weaken_enforcement(self):
        """Under-tainting the monitor cannot open the real tag plane: the
        shadow nets observe the design, they do not gate it."""
        drv = _tagged_driver([SHADOW_NET])
        sim = drv.sim
        sim.load_fault_plan(FaultPlan([
            Fault(SHADOW_NET, FaultKind.STUCK_AT_0, 0xF,
                  cycle=sim.cycle + 2, duration=40)]))
        got = _run_blocks(drv)
        sim.clear_fault_plan()
        assert got[ALICE] == [encrypt_block(0xAA, KEY_A)]
        assert got[EVE] == [encrypt_block(0xBB, KEY_B)]
        # no cross-user delivery happened at all
        assert encrypt_block(0xAA, KEY_A) not in got[EVE]
        assert encrypt_block(0xBB, KEY_B) not in got[ALICE]


class TestShadowTagCampaign:
    def test_scenario_list_targets_shadow_nets(self):
        scenarios = protected_fault_scenarios(2026, smoke=True,
                                              shadow_tags=True)
        shadow = [s for s in scenarios if s.category == "shadow_tag"]
        assert shadow, "shadow_tags=True produced no shadow-tag scenarios"
        for s in shadow:
            assert all(t.endswith("__conf")
                       for t in s.plan.signal_targets())
        # and the flag is purely additive: the default list is unchanged
        base = protected_fault_scenarios(2026, smoke=True)
        assert [s.name for s in scenarios[:len(base)]] == \
            [s.name for s in base]

    @pytest.mark.slow
    def test_campaign_fail_safe_with_shadow_faults(self):
        report = run_fault_campaign(True, seed=2026, smoke=True,
                                    shadow_tags=True)
        assert report.leaks == 0
        assert report.harness_ok
        by_cat = {}
        for o in report.outcomes:
            by_cat.setdefault(o.scenario.category, []).append(o)
        # the control run keeps a quiet monitor
        (control,) = by_cat["control"]
        assert control.details["tag_flow_sites"] == 0
        # over-taint scenarios are detected by the synthesized sites;
        # the under-taint one stays clean (monitor quiet, data intact)
        shadows = by_cat["shadow_tag"]
        assert any(o.outcome == "detected" for o in shadows)
        for o in shadows:
            assert o.outcome in ("detected", "clean")
            assert o.details["missing_outputs"] == 0
