"""Fault-plan semantics: instrumentation identity, injection effects,
cross-backend equivalence, and the error paths.

The injector works by netlist transformation (every target signal gets
flip/stuck1/stuck0 control inputs), so the two properties that matter
most are (a) with an empty plan the instrumented design is cycle-exact
with the pristine one, and (b) all three backends agree on the faulted
trace — the campaign verdict depends on both.
"""

import pytest

from repro.faults.plan import (
    Fault,
    FaultKind,
    FaultPlan,
    FaultPlanError,
    faulted_value,
    instrument,
)
from repro.hdl import Module, Simulator
from repro.hdl.nodes import UnknownMemoryError, UnknownSignalError

BACKENDS = ("compiled", "interp", "batched")


def _make_sim(module, backend, **kw):
    if backend == "batched":
        pytest.importorskip("numpy")
    return Simulator(module, backend=backend, **kw)


class Counter(Module):
    """8-bit counter with an enable and a held capture register."""

    def __init__(self):
        super().__init__("cnt")
        self.en = self.input("en", 1)
        self.q = self.reg("q", 8)
        self.q <<= self.q + self.en
        self.cap = self.reg("cap", 8)  # held unless captured below
        self.snap = self.input("snap", 1)
        from repro.hdl import when
        with when(self.snap):
            self.cap <<= self.q
        self.out = self.output("out", 8)
        self.out <<= self.q ^ self.cap


class MemBox(Module):
    def __init__(self):
        super().__init__("mb")
        self.m = self.mem("m", 4, 8)
        self.addr = self.input("addr", 2)
        self.dout = self.output("dout", 8)
        self.dout <<= self.m.read(self.addr)


class TestFaultedValue:
    def test_transient_xor(self):
        assert faulted_value(0b1010, FaultKind.TRANSIENT, 0b0110, 4) == 0b1100

    def test_stuck_at_1_or(self):
        assert faulted_value(0b1000, FaultKind.STUCK_AT_1, 0b0001, 4) == 0b1001

    def test_stuck_at_0_clear(self):
        assert faulted_value(0b1111, FaultKind.STUCK_AT_0, 0b0101, 4) == 0b1010


class TestPlanValidation:
    def test_zero_mask_rejected(self):
        with pytest.raises(FaultPlanError):
            Fault("cnt.q", FaultKind.TRANSIENT, 0, cycle=1)

    def test_negative_cycle_rejected(self):
        with pytest.raises(FaultPlanError):
            Fault("cnt.q", FaultKind.TRANSIENT, 1, cycle=-1)

    def test_zero_duration_rejected(self):
        with pytest.raises(FaultPlanError):
            Fault("cnt.q", FaultKind.TRANSIENT, 1, cycle=0, duration=0)

    def test_shift_preserves_everything_but_cycle(self):
        plan = FaultPlan([Fault("cnt.q", FaultKind.STUCK_AT_1, 3, cycle=2,
                                duration=4)])
        moved = plan.shifted(10)
        assert moved.faults[0].cycle == 12
        assert moved.faults[0].duration == 4
        assert plan.faults[0].cycle == 2  # original untouched

    def test_window(self):
        plan = FaultPlan([
            Fault("cnt.q", FaultKind.TRANSIENT, 1, cycle=3),
            Fault("cnt.cap", FaultKind.STUCK_AT_0, 1, cycle=7, duration=5),
        ])
        assert plan.window() == (3, 12)  # half-open: last active cycle is 11


class TestInstrumentation:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_identity_with_no_active_fault(self, backend):
        """Instrumented targets with zero masks must not perturb the design."""
        plain = _make_sim(Counter(), backend)
        inst = _make_sim(Counter(), backend, fault_targets=["cnt.q", "cnt.cap"])
        for sim in (plain, inst):
            sim.poke("cnt.en", 1)
            sim.poke("cnt.snap", 0)
        for cyc in range(20):
            snap = 1 if cyc == 7 else 0
            for sim in (plain, inst):
                sim.poke("cnt.snap", snap)
                sim.step()
            assert inst.peek("cnt.out") == plain.peek("cnt.out")
            assert inst.peek("cnt.cap") == plain.peek("cnt.cap")

    def test_input_target_rejected(self):
        with pytest.raises(FaultPlanError, match="input"):
            Simulator(Counter(), fault_targets=["cnt.en"])

    def test_unknown_target_names_signal_and_scope(self):
        with pytest.raises(UnknownSignalError, match=r"cnt\.ghost"):
            Simulator(Counter(), fault_targets=["cnt.ghost"])

    def test_instrument_pure(self):
        """instrument() must copy; the source netlist stays untouched."""
        sim = Simulator(Counter())
        n_inputs = len(sim.netlist.inputs)
        out, controls = instrument(sim.netlist, ["cnt.q"])
        assert len(sim.netlist.inputs) == n_inputs
        assert len(out.inputs) == n_inputs + 3
        assert set(controls) == {"cnt.q"}


class TestInjection:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_transient_flip_upsets_register(self, backend):
        sim = _make_sim(Counter(), backend, fault_targets=["cnt.q"])
        sim.poke("cnt.en", 1)
        sim.poke("cnt.snap", 0)
        plan = FaultPlan([Fault("cnt.q", FaultKind.TRANSIENT, 0x80, cycle=5)])
        sim.load_fault_plan(plan)
        sim.step(5)
        assert sim.peek("cnt.q") == 5
        sim.step()  # faulted commit: (5 + 1) ^ 0x80
        assert sim.peek("cnt.q") == 0x86
        sim.step()  # transient over; counting resumes from the upset value
        assert sim.peek("cnt.q") == 0x87
        assert sim.fault_events == 1

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_stuck_at_window(self, backend):
        sim = _make_sim(Counter(), backend, fault_targets=["cnt.q"])
        sim.poke("cnt.en", 1)
        sim.poke("cnt.snap", 0)
        sim.load_fault_plan(FaultPlan([
            Fault("cnt.q", FaultKind.STUCK_AT_0, 0xFF, cycle=3, duration=4)]))
        sim.step(10)
        # cycles 3..6 commit 0; counting restarts after the window
        assert sim.peek("cnt.q") == 10 - 7

    def test_backends_agree_on_faulted_trace(self):
        pytest.importorskip("numpy")
        plan = FaultPlan([
            Fault("cnt.q", FaultKind.TRANSIENT, 0x0F, cycle=4),
            Fault("cnt.cap", FaultKind.STUCK_AT_1, 0x10, cycle=6, duration=3),
        ])
        traces = {}
        for backend in BACKENDS:
            sim = _make_sim(Counter(), backend,
                            fault_targets=["cnt.q", "cnt.cap"])
            sim.poke("cnt.en", 1)
            sim.poke("cnt.snap", 0)
            sim.load_fault_plan(plan)
            trace = []
            for cyc in range(15):
                sim.poke("cnt.snap", 1 if cyc in (2, 8) else 0)
                sim.step()
                trace.append((sim.peek("cnt.q"), sim.peek("cnt.cap"),
                              sim.peek("cnt.out")))
            traces[backend] = trace
        assert traces["compiled"] == traces["interp"] == traces["batched"]

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_clear_plan_restores_identity(self, backend):
        sim = _make_sim(Counter(), backend, fault_targets=["cnt.q"])
        sim.poke("cnt.en", 1)
        sim.poke("cnt.snap", 0)
        sim.load_fault_plan(FaultPlan([
            Fault("cnt.q", FaultKind.STUCK_AT_0, 0xFF, cycle=0,
                  duration=1000)]))
        sim.step(5)
        assert sim.peek("cnt.q") == 0
        sim.clear_fault_plan()
        sim.step(5)
        assert sim.peek("cnt.q") == 5

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_reset_restarts_schedule(self, backend):
        sim = _make_sim(Counter(), backend, fault_targets=["cnt.q"])
        sim.poke("cnt.en", 1)
        sim.poke("cnt.snap", 0)
        sim.load_fault_plan(FaultPlan([
            Fault("cnt.q", FaultKind.TRANSIENT, 0x40, cycle=2)]))
        sim.step(6)
        first = sim.peek("cnt.q")
        sim.reset()
        sim.poke("cnt.en", 1)
        sim.poke("cnt.snap", 0)
        sim.step(6)
        assert sim.peek("cnt.q") == first  # same upset replays after reset

    def test_plan_for_uninstrumented_target_rejected(self):
        sim = Simulator(Counter(), fault_targets=["cnt.q"])
        with pytest.raises(FaultPlanError, match=r"cnt\.cap"):
            sim.load_fault_plan(FaultPlan([
                Fault("cnt.cap", FaultKind.TRANSIENT, 1, cycle=0)]))


class TestMemoryFaults:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_transient_mem_flip_persists(self, backend):
        sim = _make_sim(MemBox(), backend)
        sim.poke_mem("mb.m", 2, 0x55)
        sim.load_fault_plan(FaultPlan([
            Fault("mb.m", FaultKind.TRANSIENT, 0x0F, cycle=3, addr=2)]))
        sim.poke("mb.addr", 2)
        sim.step(3)
        assert sim.peek_mem("mb.m", 2) == 0x55
        sim.step()
        # an SEU sticks until the design rewrites the cell
        assert sim.peek_mem("mb.m", 2) == 0x5A
        sim.step(3)
        assert sim.peek_mem("mb.m", 2) == 0x5A

    def test_unknown_memory_target(self):
        sim = Simulator(MemBox())
        with pytest.raises(UnknownMemoryError, match=r"mb\.ghost"):
            sim.load_fault_plan(FaultPlan([
                Fault("mb.ghost", FaultKind.TRANSIENT, 1, cycle=0, addr=0)]))

    def test_mem_addr_out_of_range(self):
        sim = Simulator(MemBox())
        with pytest.raises(FaultPlanError, match="addr"):
            sim.load_fault_plan(FaultPlan([
                Fault("mb.m", FaultKind.TRANSIENT, 1, cycle=0, addr=9)]))


class TestBatchedLanes:
    def test_lane_scoped_fault(self):
        """A lane-targeted fault must leave sibling lanes untouched."""
        np = pytest.importorskip("numpy")
        del np
        from repro.hdl.sim.batched import BatchSimulator
        sim = BatchSimulator(Counter(), lanes=3, fault_targets=["cnt.q"])
        sim.poke_all("cnt.en", 1)
        sim.poke_all("cnt.snap", 0)
        sim.load_fault_plan(FaultPlan([
            Fault("cnt.q", FaultKind.TRANSIENT, 0x80, cycle=4, lane=1)]))
        sim.step(6)
        assert sim.peek_all("cnt.q") == [6, (5 ^ 0x80) + 1, 6]

    def test_lane_out_of_range(self):
        pytest.importorskip("numpy")
        from repro.hdl.sim.batched import BatchSimulator
        sim = BatchSimulator(Counter(), lanes=2, fault_targets=["cnt.q"])
        with pytest.raises(FaultPlanError, match="lane"):
            sim.load_fault_plan(FaultPlan([
                Fault("cnt.q", FaultKind.TRANSIENT, 1, cycle=0, lane=5)]))
