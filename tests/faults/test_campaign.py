"""Campaign-level properties: determinism, fail-safe verdict, reporting.

The full acceptance sweep runs via ``python -m repro faults`` in CI;
here the smoke campaign (compiled backend) pins the verdict machinery
and the per-seed determinism the gate relies on.
"""

import pytest

from repro.faults.campaign import (
    CampaignReport,
    baseline_fault_scenarios,
    detection_accuracy,
    failsafe_accuracy,
    injected_outcomes,
    protected_fault_scenarios,
    run_fault_campaign,
    run_paired_fault_campaign,
)


def _plan_fingerprint(scenarios):
    return [
        (s.name, s.category,
         [f.to_dict() for f in s.plan.faults])
        for s in scenarios
    ]


class TestScenarioGeneration:
    def test_deterministic_per_seed(self):
        a = _plan_fingerprint(protected_fault_scenarios(seed=7, smoke=False))
        b = _plan_fingerprint(protected_fault_scenarios(seed=7, smoke=False))
        assert a == b
        assert (_plan_fingerprint(baseline_fault_scenarios(seed=7))
                == _plan_fingerprint(baseline_fault_scenarios(seed=7)))

    def test_seed_changes_plans(self):
        a = _plan_fingerprint(protected_fault_scenarios(seed=1, smoke=True))
        b = _plan_fingerprint(protected_fault_scenarios(seed=2, smoke=True))
        assert a != b

    def test_control_scenario_present(self):
        for scenarios in (protected_fault_scenarios(seed=3, smoke=True),
                          baseline_fault_scenarios(seed=3, smoke=True)):
            controls = [s for s in scenarios if s.category == "control"]
            assert len(controls) == 1
            assert len(controls[0].plan) == 0

    def test_smoke_is_subset_sized(self):
        smoke = protected_fault_scenarios(seed=4, smoke=True)
        full = protected_fault_scenarios(seed=4, smoke=False)
        assert 1 < len(smoke) < len(full)

    def test_categories_cover_enforcement_surface(self):
        cats = {s.category
                for s in protected_fault_scenarios(seed=5, smoke=False)}
        assert {"pipe_tag", "scratch_tag", "stall", "declass"} <= cats


@pytest.mark.slow
class TestSmokeCampaign:
    @pytest.fixture(scope="class")
    def paired(self):
        return run_paired_fault_campaign(seed=2026, backend="compiled",
                                         smoke=True)

    def test_protected_fail_safe(self, paired):
        assert paired.protected.leaks == 0
        assert paired.protected.harness_ok
        assert paired.fail_safe

    def test_baseline_detectably_corrupted(self, paired):
        assert paired.baseline.corrupted + paired.baseline.leaks >= 1
        assert paired.detection
        assert paired.ok

    def test_report_roundtrip(self, paired):
        d = paired.protected.to_dict()
        assert d["design"] == "protected"
        assert d["leaked"] == 0
        assert d["scenarios"] == len(paired.protected.outcomes)
        text = paired.render()
        assert "VERDICT" in text

    def test_campaign_deterministic(self, paired):
        again = run_fault_campaign(protected=True, seed=2026,
                                   backend="compiled", smoke=True)
        assert again.verdict_rows() == paired.protected.verdict_rows()

    def test_verdicts_are_classified(self, paired):
        legal = {"clean", "degraded", "corrupted", "leaked", "detected"}
        for report in (paired.protected, paired.baseline):
            assert {o.outcome for o in report.outcomes} <= legal

    def test_baseline_detection_accuracy_is_full(self, paired):
        # regression: the bench gauge sat at 0.5 while half the baseline
        # pipe_tag faults hit conf bits the delivery path never reads;
        # scenarios now stay in the vouch nibble, so every injected
        # fault must be host-visible
        assert detection_accuracy(paired.baseline) == 1.0


class TestReportShape:
    def test_harness_flag_fails_on_bad_control(self):
        from repro.faults.campaign import FaultScenario, ScenarioOutcome
        from repro.faults.plan import FaultPlan
        ctrl = FaultScenario("no_fault", "control", FaultPlan([]))
        rep = CampaignReport(
            design="protected", backend="compiled", seed=1,
            outcomes=[ScenarioOutcome(ctrl, "corrupted", {})])
        assert not rep.harness_ok


class TestAccuracyHelpers:
    def _report(self, outcomes):
        from repro.faults.campaign import FaultScenario, ScenarioOutcome
        from repro.faults.plan import FaultPlan
        ctrl = FaultScenario("no_fault", "control", FaultPlan([]))
        fault = FaultScenario("f", "pipe_tag", FaultPlan([]))
        outs = [ScenarioOutcome(ctrl, "clean", {})]
        outs += [ScenarioOutcome(fault, o, {}) for o in outcomes]
        return CampaignReport(design="baseline", backend="compiled",
                              seed=1, outcomes=outs)

    def test_control_excluded_from_injected(self):
        rep = self._report(["corrupted", "clean"])
        assert len(injected_outcomes(rep)) == 2

    def test_detection_counts_detected_outcomes(self):
        # the original accounting only counted "corrupted"; a shadow-tag
        # "detected" verdict and a "leaked" one are equally visible
        rep = self._report(["corrupted", "detected", "leaked", "clean"])
        assert detection_accuracy(rep) == pytest.approx(0.75)
        rep = self._report(["detected", "detected"])
        assert detection_accuracy(rep) == 1.0

    def test_failsafe_counts_everything_but_leaks(self):
        rep = self._report(["corrupted", "detected", "leaked", "clean"])
        assert failsafe_accuracy(rep) == pytest.approx(0.75)
        assert failsafe_accuracy(self._report(["clean"])) == 1.0
