"""Dynamic tracker on the real hardware idioms: per-slot dependent-label
memories, tagged writes, and a runtime-poked misconfiguration."""

import pytest

from repro.accel.common import LATTICE, user_label
from repro.accel.key_expand_unit import KeyExpandUnit
from repro.accel.output_buffer import OutputBuffer
from repro.hdl.sim import Simulator
from repro.ifc.label import Label
from repro.ifc.tracker import LabelTracker

ALICE = user_label("p0")
EVE = user_label("p1")
ALICE_REL = Label(LATTICE, "public", ("p0",))


class TestKeyExpandDynamics:
    def test_clean_expansion_tracks_clean(self):
        sim = Simulator(KeyExpandUnit(protected=True))
        tracker = LabelTracker(sim, LATTICE)
        sim.poke("keyexp.start", 1)
        sim.poke("keyexp.slot", 1)
        sim.poke("keyexp.key", 0xABCD)
        sim.poke("keyexp.key_tag", ALICE.encode())
        sim.step()
        sim.poke("keyexp.start", 0)
        sim.run_until("keyexp.ready", 1, 50)
        assert tracker.ok(), tracker.summary()
        # the slot RAM's cells now carry Alice's label
        assert tracker.mem_label_of("keyexp.rk_mem_1", 5) == ALICE

    def test_poked_tag_mismatch_is_flagged(self):
        """Backdoor-flip the slot tag mid-expansion: the dependent-label
        memory write turns into a runtime violation (or is guarded away —
        either way no silent mislabel)."""
        sim = Simulator(KeyExpandUnit(protected=True))
        tracker = LabelTracker(sim, LATTICE)
        sim.poke("keyexp.start", 1)
        sim.poke("keyexp.slot", 1)
        sim.poke("keyexp.key", 0xABCD)
        sim.poke("keyexp.key_tag", ALICE.encode())
        sim.step()
        sim.poke("keyexp.start", 0)
        sim.step(2)
        # supervisor-level backdoor: retag slot 1 to Eve mid-flight
        reg = sim.netlist.signal_by_path("keyexp.slot_tag_1")
        sim._state[sim._be.state_index[reg]] = EVE.encode()
        sim._dirty = True
        before = [sim.peek_mem("keyexp.rk_mem_1", i) for i in range(11)]
        sim.step(12)
        after = [sim.peek_mem("keyexp.rk_mem_1", i) for i in range(11)]
        # the runtime guard stopped the writes: fail-secure, tracker clean
        assert before == after
        assert tracker.ok()


class TestOutputBufferDynamics:
    def test_tagged_write_uses_incoming_tag(self):
        sim = Simulator(OutputBuffer(protected=True))
        tracker = LabelTracker(sim, LATTICE)
        sim.poke("outbuf.push", 1)
        sim.poke("outbuf.push_tag", ALICE_REL.encode())
        sim.poke("outbuf.push_data", 0x77)
        sim.step()
        sim.poke("outbuf.push", 0)
        assert tracker.ok(), tracker.summary()
        # slot of vouch{p0} is index 0; head of that FIFO is address 0
        assert tracker.mem_label_of("outbuf.dataq", 0) == ALICE_REL

    def test_set_mem_label_override(self):
        sim = Simulator(OutputBuffer(protected=True))
        tracker = LabelTracker(sim, LATTICE)
        tracker.set_mem_label("outbuf.dataq", 3, ALICE)
        assert tracker.mem_label_of("outbuf.dataq", 3) == ALICE
