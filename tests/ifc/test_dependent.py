import pytest

from repro.hdl import Module
from repro.ifc.dependent import CellTagLabel, DependentLabel, resolve_label, tag_label
from repro.ifc.label import Label
from repro.ifc.lattice import SecurityLattice, two_point

TP = two_point()
P_T = Label(TP, "public", "trusted")
P_U = Label(TP, "public", "untrusted")
LAT4 = SecurityLattice(("a", "b", "c", "d"))


def _selector(width=1):
    m = Module("m")
    return m.input("sel", width)


class TestDependentLabel:
    def test_dict_mapping(self):
        dl = DependentLabel(_selector(), {0: P_T, 1: P_U}, TP)
        assert dl.resolve(0) == P_T
        assert dl.resolve(1) == P_U

    def test_out_of_domain(self):
        dl = DependentLabel(_selector(), {0: P_T}, TP)
        with pytest.raises(KeyError):
            dl.resolve(5)

    def test_callable_needs_domain(self):
        with pytest.raises(ValueError):
            DependentLabel(_selector(), lambda v: P_T, TP)

    def test_empty_domain_rejected(self):
        with pytest.raises(ValueError):
            DependentLabel(_selector(), {}, TP)

    def test_upper_bound_is_join(self):
        dl = DependentLabel(_selector(), {0: P_T, 1: P_U}, TP)
        ub = dl.upper_bound()
        assert P_T.flows_to(ub) and P_U.flows_to(ub)

    def test_lower_bound_is_meet(self):
        dl = DependentLabel(_selector(), {0: P_T, 1: P_U}, TP)
        lb = dl.lower_bound()
        assert lb.flows_to(P_T) and lb.flows_to(P_U)

    def test_repr_mentions_selector(self):
        dl = DependentLabel(_selector(), {0: P_T}, TP)
        assert "DL(" in repr(dl)


class TestTagLabel:
    def test_decodes_all_values(self):
        sel = _selector(8)
        dl = tag_label(sel, LAT4)
        assert len(dl.domain) == 256
        assert dl.resolve(0xFF) == Label(LAT4, "secret", "trusted")
        assert dl.resolve(0x00) == Label(LAT4, "public", "untrusted")

    def test_narrow_selector_rejected(self):
        with pytest.raises(ValueError):
            tag_label(_selector(4), LAT4)


class TestCellTagLabel:
    def _tag_mem(self):
        m = Module("m")
        return m.mem("tags", 4, 8)

    def test_resolve_decodes(self):
        ctl = CellTagLabel(self._tag_mem(), LAT4)
        assert ctl.resolve(0xF0) == Label(LAT4, "secret", "untrusted")

    def test_domain_restriction(self):
        ctl = CellTagLabel(self._tag_mem(), LAT4, domain=[0x11, 0x22])
        assert ctl.domain == [0x11, 0x22]
        ub = ctl.upper_bound()
        assert ctl.resolve(0x11).flows_to(ub)

    def test_empty_domain_rejected(self):
        with pytest.raises(ValueError):
            CellTagLabel(self._tag_mem(), LAT4, domain=[])


class TestResolveLabel:
    def test_static_passthrough(self):
        assert resolve_label(P_T) == P_T

    def test_dependent_with_value(self):
        dl = DependentLabel(_selector(), {0: P_T, 1: P_U}, TP)
        assert resolve_label(dl, 1) == P_U

    def test_dependent_without_value_is_upper(self):
        dl = DependentLabel(_selector(), {0: P_T, 1: P_U}, TP)
        assert resolve_label(dl) == dl.upper_bound()
