"""Lattice axioms, checked exhaustively (4 principals → 16 elements per
dimension) and with hypothesis over random principal subsets."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ifc.lattice import SecurityLattice, two_point

LAT = SecurityLattice(("a", "b", "c", "d"))
CONF = LAT.all_conf()
INTEG = LAT.all_integ()

subsets = st.sets(st.sampled_from(["a", "b", "c", "d"])).map(frozenset)


class TestConstruction:
    def test_needs_principals(self):
        with pytest.raises(ValueError):
            SecurityLattice(())

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError):
            SecurityLattice(("a", "a"))

    def test_named_levels(self):
        assert LAT.conf("public") == frozenset()
        assert LAT.conf("secret") == LAT.full
        assert LAT.integ("trusted") == LAT.full
        assert LAT.integ("untrusted") == frozenset()
        assert LAT.conf("a") == frozenset(("a",))

    def test_unknown_principal(self):
        with pytest.raises(KeyError):
            LAT.conf("zz")
        with pytest.raises(KeyError):
            LAT.conf(["a", "zz"])


class TestConfOrder:
    def test_bottom_top(self):
        for c in CONF:
            assert LAT.conf_leq(LAT.conf_bottom, c)
            assert LAT.conf_leq(c, LAT.conf_top)

    @given(subsets, subsets)
    def test_join_is_lub(self, a, b):
        j = LAT.conf_join(a, b)
        assert LAT.conf_leq(a, j) and LAT.conf_leq(b, j)
        for u in CONF:
            if LAT.conf_leq(a, u) and LAT.conf_leq(b, u):
                assert LAT.conf_leq(j, u)

    @given(subsets, subsets)
    def test_meet_is_glb(self, a, b):
        m = LAT.conf_meet(a, b)
        assert LAT.conf_leq(m, a) and LAT.conf_leq(m, b)
        for l in CONF:
            if LAT.conf_leq(l, a) and LAT.conf_leq(l, b):
                assert LAT.conf_leq(l, m)

    @given(subsets, subsets)
    def test_antisymmetry(self, a, b):
        if LAT.conf_leq(a, b) and LAT.conf_leq(b, a):
            assert a == b


class TestIntegOrder:
    def test_trusted_is_flow_bottom(self):
        for i in INTEG:
            assert LAT.integ_leq(LAT.integ_bottom, i)
            assert LAT.integ_leq(i, LAT.integ_top)

    def test_trusted_names(self):
        assert LAT.integ_bottom == LAT.full  # everyone vouches
        assert LAT.integ_top == frozenset()  # nobody vouches

    @given(subsets, subsets)
    def test_join_is_lub(self, a, b):
        j = LAT.integ_join(a, b)
        assert LAT.integ_leq(a, j) and LAT.integ_leq(b, j)
        for u in INTEG:
            if LAT.integ_leq(a, u) and LAT.integ_leq(b, u):
                assert LAT.integ_leq(j, u)

    @given(subsets, subsets, subsets)
    def test_transitivity(self, a, b, c):
        if LAT.integ_leq(a, b) and LAT.integ_leq(b, c):
            assert LAT.integ_leq(a, c)


class TestReflection:
    """The paper's r(·): r(P)=U, r(S)=T, r(U)=P, r(T)=S."""

    def test_paper_identities_two_point(self):
        tp = two_point()
        P, S = tp.conf_bottom, tp.conf_top
        U, T = tp.integ_top, tp.integ_bottom
        assert tp.reflect_ci(P) == U
        assert tp.reflect_ci(S) == T
        assert tp.reflect_ic(U) == P
        assert tp.reflect_ic(T) == S

    @given(subsets)
    def test_involution(self, c):
        assert LAT.reflect_ic(LAT.reflect_ci(c)) == c

    @given(subsets, subsets)
    def test_order_preserving_on_sets(self, a, b):
        # conf subset order maps to vouch subset order
        if a <= b:
            assert LAT.reflect_ci(a) <= LAT.reflect_ci(b)


class TestEncoding:
    def test_roundtrip_all(self):
        for c in CONF:
            assert LAT.decode_conf(LAT.encode_conf(c)) == c

    def test_tag_width(self):
        assert LAT.tag_width == 8
        assert two_point().tag_width == 2

    def test_names(self):
        assert LAT.conf_names(frozenset()) == "public"
        assert LAT.conf_names(LAT.full) == "secret"
        assert "a" in LAT.conf_names(frozenset(("a",)))
        assert LAT.integ_names(LAT.full) == "trusted"
        assert LAT.integ_names(frozenset()) == "untrusted"

    def test_equality_and_hash(self):
        other = SecurityLattice(("a", "b", "c", "d"))
        assert LAT == other
        assert hash(LAT) == hash(other)
        assert LAT != two_point()
