"""Dynamic label tracking: runtime flows, tag resolution, violations."""

from repro.hdl import Module, Simulator, declassify, mux, when
from repro.ifc.dependent import DependentLabel
from repro.ifc.label import Label
from repro.ifc.lattice import two_point
from repro.ifc.tracker import LabelTracker

TP = two_point()
P_T = Label(TP, "public", "trusted")
P_U = Label(TP, "public", "untrusted")
S_T = Label(TP, "secret", "trusted")
S_U = Label(TP, "secret", "untrusted")


def _sim(module):
    # the tracker needs per-cycle values; either backend works
    return Simulator(module, backend="compiled")


class TestBasicTracking:
    def test_secret_to_public_violation(self):
        m = Module("m")
        sec = m.input("sec", 8, label=S_T)
        out = m.output("out", 8, label=P_T)
        out <<= sec
        sim = _sim(m)
        tr = LabelTracker(sim, TP)
        sim.poke("m.sec", 5)
        sim.step()
        assert not tr.ok()
        assert tr.violations[0].sink == "m.out"

    def test_clean_design_is_clean(self):
        m = Module("m")
        pub = m.input("pub", 8, label=P_T)
        out = m.output("out", 8, label=S_T)
        out <<= pub + 1
        sim = _sim(m)
        tr = LabelTracker(sim, TP)
        sim.step(5)
        assert tr.ok()

    def test_labels_flow_through_registers(self):
        m = Module("m")
        x = m.input("x", 8, label=P_T)
        r = m.reg("r", 8)
        r <<= x
        sim = _sim(m)
        tr = LabelTracker(sim, TP)
        tr.set_source_label(x, S_T)  # testbench override
        sim.step()
        assert tr.label_of(r) == S_T

    def test_mux_takes_branch_label(self):
        m = Module("m")
        sel = m.input("sel", 1, label=P_T)
        hi = m.input("hi", 8, label=S_T)
        lo = m.input("lo", 8, label=P_T)
        out = m.output("out", 8)
        out <<= mux(sel, hi, lo)
        sim = _sim(m)
        tr = LabelTracker(sim, TP)
        sim.poke("m.sel", 0)
        sim.step()
        assert tr.label_of(out) == P_T  # untaken secret branch ignored
        sim.poke("m.sel", 1)
        sim.step()
        assert tr.label_of(out) == S_T

    def test_memory_cell_labels(self):
        m = Module("m")
        we = m.input("we", 1, label=P_T)
        addr = m.input("addr", 2, label=P_T)
        din = m.input("din", 8, label=S_T)
        store = m.mem("store", 4, 8)
        out = m.output("out", 8)
        out <<= store.read(addr)
        with when(we):
            store.write(addr, din)
        sim = _sim(m)
        tr = LabelTracker(sim, TP)
        sim.poke("m.we", 1)
        sim.poke("m.addr", 2)
        sim.step()
        assert tr.mem_label_of("m.store", 2) == S_T
        assert tr.mem_label_of("m.store", 1) == P_T  # untouched cell


class TestDependentResolution:
    def test_sink_resolved_at_runtime_value(self):
        m = Module("m")
        way = m.input("way", 1, label=P_T)
        dl = DependentLabel(way, {0: P_T, 1: P_U}, TP)
        din = m.input("din", 8, label=dl)
        out = m.output("out", 8, label=P_T)
        out <<= din
        sim = _sim(m)
        tr = LabelTracker(sim, TP)
        sim.poke("m.way", 0)
        sim.step()
        assert tr.ok()           # trusted case: fine
        sim.poke("m.way", 1)
        sim.step()
        assert not tr.ok()       # untrusted case: violation at runtime

    def test_downgrade_checked_dynamically(self):
        m = Module("m")
        sec = m.input("sec", 8, label=S_U)
        out = m.output("out", 8, label=P_U)
        out <<= declassify(sec, P_U, P_U)  # unauthorised
        sim = _sim(m)
        tr = LabelTracker(sim, TP)
        sim.step()
        assert any(v.kind == "downgrade" for v in tr.violations)

    def test_summary(self):
        m = Module("m")
        sec = m.input("sec", 8, label=S_T)
        out = m.output("out", 8, label=P_T)
        out <<= sec
        sim = _sim(m)
        tr = LabelTracker(sim, TP)
        sim.step(2)
        assert "VIOLATIONS" in tr.summary()
