import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ifc.label import (
    Label,
    bottom,
    join_all,
    meet_all,
    public_untrusted,
    secret_trusted,
    top,
)
from repro.ifc.lattice import SecurityLattice, two_point

LAT = SecurityLattice(("a", "b", "c", "d"))
subsets = st.sets(st.sampled_from(["a", "b", "c", "d"])).map(frozenset)
labels = st.builds(lambda c, i: Label(LAT, c, i), subsets, subsets)


class TestConstruction:
    def test_named(self):
        l = Label(LAT, "public", "trusted")
        assert l.conf == frozenset()
        assert l.integ == LAT.full

    def test_paper_corners(self):
        assert bottom(LAT) == Label(LAT, "public", "trusted")
        assert top(LAT) == Label(LAT, "secret", "untrusted")
        assert secret_trusted(LAT) == Label(LAT, "secret", "trusted")
        assert public_untrusted(LAT) == Label(LAT, "public", "untrusted")

    def test_repr_paper_style(self):
        assert repr(Label(LAT, "secret", "trusted")) == "(secret, trusted)"


class TestFlowRelation:
    def test_bottom_flows_everywhere(self):
        for l in (top(LAT), secret_trusted(LAT), public_untrusted(LAT)):
            assert bottom(LAT).flows_to(l)

    def test_secret_not_to_public(self):
        assert not secret_trusted(LAT).conf_flows_to(bottom(LAT))

    def test_untrusted_not_to_trusted(self):
        assert not public_untrusted(LAT).integ_flows_to(bottom(LAT))

    def test_incomparable_users(self):
        a = Label(LAT, ("a",), ("a",))
        b = Label(LAT, ("b",), ("b",))
        assert not a.flows_to(b)
        assert not b.flows_to(a)

    @given(labels, labels)
    def test_flows_iff_both_dimensions(self, x, y):
        assert x.flows_to(y) == (x.conf_flows_to(y) and x.integ_flows_to(y))

    def test_cross_lattice_rejected(self):
        with pytest.raises(ValueError):
            bottom(LAT).flows_to(bottom(two_point()))


class TestAlgebra:
    @given(labels, labels)
    def test_join_upper_bound(self, x, y):
        j = x.join(y)
        assert x.flows_to(j) and y.flows_to(j)

    @given(labels, labels)
    def test_meet_lower_bound(self, x, y):
        m = x.meet(y)
        assert m.flows_to(x) and m.flows_to(y)

    @given(labels)
    def test_join_idempotent(self, x):
        assert x.join(x) == x

    @given(labels, labels)
    def test_join_commutes(self, x, y):
        assert x.join(y) == y.join(x)

    @given(labels, labels, labels)
    def test_join_associates(self, x, y, z):
        assert x.join(y).join(z) == x.join(y.join(z))

    @given(labels, labels)
    def test_absorption(self, x, y):
        assert x.join(x.meet(y)) == x
        assert x.meet(x.join(y)) == x

    def test_join_all_meet_all(self):
        xs = [Label(LAT, ("a",), ("a",)), Label(LAT, ("b",), ("b",))]
        assert join_all(xs, LAT) == Label(LAT, ("a", "b"), ())
        assert meet_all(xs, LAT) == Label(LAT, (), ("a", "b"))


class TestPaperExamples:
    """§2.4's worked lattice operations on the two-point instance."""

    def test_conf_join_example(self):
        # (P,U) ⊔C (S,U) ⇒ (S,U)
        tp = two_point()
        pu = Label(tp, "public", "untrusted")
        su = Label(tp, "secret", "untrusted")
        assert pu.join(su).conf == su.conf

    def test_integ_join_example(self):
        # (P,U) ⊔I (P,T) ⇒ (P,U)
        tp = two_point()
        pu = Label(tp, "public", "untrusted")
        pt = Label(tp, "public", "trusted")
        assert pu.join(pt).integ == pu.integ


class TestTagEncoding:
    def test_roundtrip(self):
        for conf in LAT.all_conf():
            for integ in LAT.all_integ():
                l = Label(LAT, conf, integ)
                assert Label.decode(LAT, l.encode()) == l

    def test_layout(self):
        # conf nibble above integ nibble
        l = Label(LAT, ("a",), ("b",))
        tag = l.encode()
        assert tag >> 4 == LAT.encode_conf(l.conf)
        assert tag & 0xF == LAT.encode_integ(l.integ)

    @given(labels, labels)
    def test_hw_subset_check_matches_flow(self, x, y):
        # the gate-level comparison the accelerator uses
        conf_ok = (x.encode() >> 4) & ~(y.encode() >> 4) & 0xF == 0
        integ_ok = (y.encode() & 0xF) & ~(x.encode() & 0xF) & 0xF == 0
        assert (conf_ok and integ_ok) == x.flows_to(y)

    def test_hashable(self):
        assert len({bottom(LAT), bottom(LAT), top(LAT)}) == 2
