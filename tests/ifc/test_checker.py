"""Static checker behaviour: explicit flows, implicit flows, timing
channels, inference, dependent labels, and downgrades."""

import pytest

from repro.hdl import Module, declassify, elaborate, endorse, mux, otherwise, when
from repro.ifc.checker import IfcChecker, check_design
from repro.ifc.dependent import DependentLabel
from repro.ifc.label import Label
from repro.ifc.lattice import two_point

TP = two_point()
P_T = Label(TP, "public", "trusted")
P_U = Label(TP, "public", "untrusted")
S_T = Label(TP, "secret", "trusted")
S_U = Label(TP, "secret", "untrusted")


def check(module, **kw):
    return IfcChecker(elaborate(module), TP, **kw).check()


class TestExplicitFlows:
    def test_direct_leak_flagged(self):
        m = Module("m")
        sec = m.input("sec", 8, label=S_T)
        out = m.output("out", 8, label=P_T)
        out <<= sec
        rep = check(m)
        assert not rep.ok()
        assert rep.errors[0].sink == "m.out"

    def test_legal_upward_flow(self):
        m = Module("m")
        pub = m.input("pub", 8, label=P_T)
        out = m.output("out", 8, label=S_T)
        out <<= pub
        assert check(m).ok()

    def test_integrity_violation_flagged(self):
        m = Module("m")
        dirty = m.input("dirty", 8, label=P_U)
        out = m.output("out", 8, label=P_T)
        out <<= dirty
        rep = check(m)
        assert not rep.ok()

    def test_arithmetic_mixes_labels(self):
        m = Module("m")
        sec = m.input("sec", 8, label=S_T)
        pub = m.input("pub", 8, label=P_T)
        out = m.output("out", 8, label=P_T)
        out <<= (sec + pub) ^ 3
        assert not check(m).ok()

    def test_constant_is_public(self):
        m = Module("m")
        out = m.output("out", 8, label=P_T)
        out <<= 42
        assert check(m).ok()


class TestImplicitFlows:
    def test_condition_leaks_into_branch(self):
        m = Module("m")
        sec = m.input("sec", 1, label=S_T)
        out = m.output("out", 1, label=P_T, default=0)
        with when(sec):
            out <<= 1
        assert not check(m).ok()

    def test_mux_selector_leaks(self):
        m = Module("m")
        sec = m.input("sec", 1, label=S_T)
        out = m.output("out", 8, label=P_T)
        out <<= mux(sec, 1, 2)
        assert not check(m).ok()

    def test_register_enable_leaks(self):
        """Timing of a register update is a flow (the Fig. 6 mechanism)."""
        m = Module("m")
        sec = m.input("sec", 1, label=S_T)
        pub = m.input("pub", 8, label=P_T)
        r = m.reg("r", 8, label=P_T)
        with when(sec):
            r <<= pub
        assert not check(m).ok()

    def test_counter_timing_channel(self):
        """A public 'valid' whose timing depends on a secret — Fig. 6."""
        m = Module("m")
        key = m.input("key", 8, label=S_T)
        start = m.input("start", 1, label=P_T)
        cnt = m.reg("cnt", 8)
        valid = m.output("valid", 1, label=P_T, default=0)
        with when(start):
            cnt <<= key
        with when(cnt.ne(0)):
            cnt <<= cnt - 1
        with when(cnt.eq(1)):
            valid <<= 1
        rep = check(m)
        assert not rep.ok()
        assert rep.errors_at("valid")


class TestInference:
    def test_labels_propagate_through_wires(self):
        m = Module("m")
        sec = m.input("sec", 8, label=S_T)
        mid = m.wire("mid", 8)            # unlabelled
        out = m.output("out", 8, label=P_T)
        mid <<= sec ^ 5
        out <<= mid
        assert not check(m).ok()

    def test_labels_propagate_through_registers(self):
        m = Module("m")
        sec = m.input("sec", 8, label=S_T)
        r1 = m.reg("r1", 8)
        r2 = m.reg("r2", 8)
        out = m.output("out", 8, label=P_T)
        r1 <<= sec
        r2 <<= r1
        out <<= r2
        assert not check(m).ok()

    def test_labels_propagate_through_memories(self):
        m = Module("m")
        sec = m.input("sec", 8, label=S_T)
        addr = m.input("addr", 2, label=P_T)
        we = m.input("we", 1, label=P_T)
        store = m.mem("store", 4, 8)      # unlabelled
        out = m.output("out", 8, label=P_T)
        with when(we):
            store.write(addr, sec)
        out <<= store.read(addr)
        assert not check(m).ok()

    def test_unlabelled_input_warns(self):
        m = Module("m")
        x = m.input("x", 8)
        out = m.output("out", 8, label=S_T)
        out <<= x
        rep = check(m)
        assert rep.ok()
        assert any("no label" in w for w in rep.warnings)


class TestGuardedFlows:
    """Runtime checks make flows vacuous — the checker's fold precision."""

    def test_guard_makes_flow_safe(self):
        m = Module("m")
        sel = m.input("sel", 1, label=P_T)
        dl = DependentLabel(sel, {0: P_T, 1: S_T}, TP)
        hi = m.input("hi", 8, label=dl)
        out = m.output("out", 8, label=P_T, default=0)
        with when(sel.eq(0)):
            out <<= hi  # only taken when hi is public
        assert check(m).ok()

    def test_unguarded_variant_fails(self):
        m = Module("m")
        sel = m.input("sel", 1, label=P_T)
        dl = DependentLabel(sel, {0: P_T, 1: S_T}, TP)
        hi = m.input("hi", 8, label=dl)
        out = m.output("out", 8, label=P_T, default=0)
        out <<= hi
        rep = check(m)
        assert not rep.ok()
        # the error names the hypothesis that breaks it
        assert any(h.get("m.sel") == 1 for h in
                   (e.hypothesis for e in rep.errors))


class TestDependentSinks:
    def test_data_follows_tag_register(self):
        """The Fig. 7 pattern: data reg labelled by its own tag reg."""
        m = Module("m")
        adv = m.input("adv", 1, label=P_T)
        adv.meta["enumerate"] = True
        tag_i = m.input("tag_i", 1, label=P_T)
        dl_in = DependentLabel(tag_i, {0: P_T, 1: S_T}, TP)
        data_i = m.input("data_i", 8, label=dl_in)
        tag_r = m.reg("tag_r", 1, label=P_T)
        data_r = m.reg("data_r", 8,
                       label=DependentLabel(tag_r, {0: P_T, 1: S_T}, TP))
        with when(adv):
            tag_r <<= tag_i
            data_r <<= data_i
        assert check(m).ok()

    def test_desynchronised_tag_fails(self):
        """Tag and data updated under different conditions — flagged."""
        m = Module("m")
        adv = m.input("adv", 1, label=P_T)
        adv.meta["enumerate"] = True
        tag_i = m.input("tag_i", 1, label=P_T)
        dl_in = DependentLabel(tag_i, {0: P_T, 1: S_T}, TP)
        data_i = m.input("data_i", 8, label=dl_in)
        tag_r = m.reg("tag_r", 1, label=P_T)
        data_r = m.reg("data_r", 8,
                       label=DependentLabel(tag_r, {0: P_T, 1: S_T}, TP))
        with when(adv):
            data_r <<= data_i       # data moves...
        tag_r <<= 0                  # ...but the tag is forced public
        assert not check(m).ok()


class TestDowngrades:
    def test_declassify_authorised(self):
        m = Module("m")
        sec = m.input("sec", 8, label=S_T)
        out = m.output("out", 8, label=P_T)
        out <<= declassify(sec, P_T, P_T)
        rep = check(m)
        assert rep.ok()
        assert rep.downgrades_verified >= 1

    def test_declassify_unauthorised(self):
        m = Module("m")
        sec = m.input("sec", 8, label=S_U)
        out = m.output("out", 8, label=P_U)
        out <<= declassify(sec, P_U, P_U)
        rep = check(m)
        assert not rep.ok()
        assert any(e.kind == "downgrade" for e in rep.errors)

    def test_endorse_raises_integrity(self):
        m = Module("m")
        dirty = m.input("dirty", 8, label=P_U)
        out = m.output("out", 8, label=P_T)
        out <<= endorse(dirty, P_T, P_T)
        assert check(m).ok()

    def test_downgrade_in_untaken_branch_not_checked(self):
        """A declassify behind a guard that provably blocks the bad case
        is vacuous there — the runtime-check idiom."""
        m = Module("m")
        ok = m.input("ok", 1, label=P_T)
        ok.meta["enumerate"] = True
        sec = m.input("sec", 8, label=S_U)  # untrusted: cannot declassify
        out = m.output("out", 8, label=P_U, default=0)
        with when(ok.eq(0)):
            pass
        # mux: the declassify only sits on the (never-authorised) branch
        # guarded by a constant-0 condition, so it is never evaluated
        from repro.hdl import lit

        out <<= mux(lit(0, 1), declassify(sec, P_U, P_U), lit(0, 8))
        assert check(m).ok()


class TestReporting:
    def test_summary_format(self):
        m = Module("m")
        sec = m.input("sec", 8, label=S_T)
        out = m.output("out", 8, label=P_T)
        out <<= sec
        rep = check(m)
        text = rep.summary()
        assert "FAIL" in text and "m.out" in text

    def test_check_design_convenience(self):
        m = Module("m")
        pub = m.input("pub", 8, label=P_T)
        out = m.output("out", 8, label=S_T)
        out <<= pub
        assert check_design(m, TP).ok()

    def test_budget_exhaustion_reported(self):
        m = Module("m")
        sel = m.input("sel", 8, label=P_T)
        dl = DependentLabel(sel, {v: (S_T if v else P_T) for v in range(256)}, TP)
        hi = m.input("hi", 8, label=dl)
        out = m.output("out", 8, label=P_T)
        out <<= hi
        rep = IfcChecker(elaborate(m), TP, max_hypotheses=4).check()
        assert any(e.kind == "structure" for e in rep.errors)
