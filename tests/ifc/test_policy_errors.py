"""Policy objects (Table 1 rows) and structured report behaviour."""

import pytest

from repro.ifc.errors import CheckReport, LabelError
from repro.ifc.policy import TABLE1_POLICIES, FlowPolicy, PolicyCheckResult


class TestPolicies:
    def test_six_rows(self):
        assert len(TABLE1_POLICIES) == 6
        assert [p.policy_id for p in TABLE1_POLICIES] == [
            f"P{i}" for i in range(1, 7)
        ]

    def test_kinds_match_paper(self):
        # Table 1: C, I, C, C, I, I
        assert [p.kind for p in TABLE1_POLICIES] == list("CICCII")

    def test_assets(self):
        assets = [p.asset for p in TABLE1_POLICIES]
        assert assets == ["Keys", "Keys", "Keys", "Plaintext", "Plaintext",
                          "Configs"]

    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError):
            FlowPolicy("PX", "x", "r", "Z", "s", "k", "never")

    def test_result_enforced(self):
        p = TABLE1_POLICIES[0]
        assert PolicyCheckResult(p, True, True).enforced
        assert not PolicyCheckResult(p, True, False).enforced
        assert not PolicyCheckResult(p, False, True).enforced
        assert "ENFORCED" in repr(PolicyCheckResult(p, True, True))


class TestCheckReport:
    def _err(self, sink="m.x", kind="flow"):
        return LabelError(sink, "(secret, trusted)", "(public, trusted)",
                          kind=kind, hypothesis={"m.way": 1}, detail="boom")

    def test_ok_transitions(self):
        rep = CheckReport("design")
        assert rep.ok()
        rep.add_error(self._err())
        assert not rep.ok()

    def test_errors_at_and_distinct_sinks(self):
        rep = CheckReport("design")
        rep.add_error(self._err("m.a"))
        rep.add_error(self._err("m.a"))
        rep.add_error(self._err("m.b"))
        assert len(rep.errors_at("m.a")) == 2
        assert rep.distinct_sinks() == ["m.a", "m.b"]

    def test_summary_contents(self):
        rep = CheckReport("design")
        rep.add_error(self._err())
        rep.add_warning("something odd")
        text = rep.summary()
        assert "FAIL" in text
        assert "something odd" in text
        assert "m.way=1" in text

    def test_label_error_repr(self):
        e = self._err(kind="downgrade")
        text = repr(e)
        assert "downgrade error" in text
        assert "⋢" in text
        assert "boom" in text

    def test_repr_status(self):
        rep = CheckReport("d")
        assert "PASS" in repr(rep)
        rep.add_error(self._err())
        assert "FAIL" in repr(rep)
