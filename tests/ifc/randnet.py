"""Seeded random labelled designs for the synth/tracker differential tests.

Each seed deterministically builds a small :class:`~repro.hdl.module.Module`
whose expression graph covers every netlist node kind — unary and binary
operators (including the value-aware ``and``/``or`` precision cases),
muxes, slices, concats, memory reads (in- and out-of-range), and
declassify/endorse downgrade cells — together with every label style the
interpreted :class:`~repro.ifc.tracker.LabelTracker` understands:

* unlabelled and statically labelled inputs,
* a hardware-decoded dependent label (``tag_label``, full tag domain),
* a small-domain dependent label over a ``way`` selector,
* registers with static declared labels (runtime-checked sinks),
* memories labelled none/static/per-cell/dependent-on-a-register
  (the last exercising the tracker's next-value selector subtlety),
* declared combinational sinks chosen *low* often enough that flow
  violations actually fire.

Stimulus is seeded too: :func:`stimulus` yields per-cycle input maps that
keep every dependent-label selector inside its declared domain (the
interpreted oracle raises ``KeyError`` outside it; the synthesized logic
would fall back to a conservative bound — staying in-domain is what makes
the two comparable bit-for-bit).
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

from repro.hdl.module import Module, when
from repro.hdl.nodes import (
    BinaryOp,
    Concat,
    Const,
    Mux,
    Slice,
    UnaryOp,
    declassify,
    endorse,
)
from repro.hdl.types import mask_for
from repro.ifc.dependent import DependentLabel, tag_label
from repro.ifc.label import Label
from repro.ifc.lattice import SecurityLattice, two_point

FOUR = SecurityLattice(("p0", "p1", "p2", "p3"))

#: comb cycles per differential case — long enough for labels to travel
#: through every register and memory cell a few times over
CYCLES = 40


def _random_label(rng: random.Random, lattice: SecurityLattice) -> Label:
    n = len(lattice.principals)
    return Label(
        lattice,
        lattice.decode_conf(rng.getrandbits(n)),
        lattice.decode_integ(rng.getrandbits(n)),
    )


class RandomDesign:
    """One generated module plus everything a testbench needs to drive it."""

    def __init__(self, seed: int):
        rng = random.Random(seed)
        self.seed = seed
        self.lattice = two_point() if seed % 2 else FOUR
        lat = self.lattice
        n = len(lat.principals)
        tw = 2 * n
        m = Module(f"rnd{seed}")
        self.module = m
        #: input path -> ("any", width) | ("domain", values)
        self.input_specs: Dict[str, Tuple[str, object]] = {}
        pool: List = []

        def free_input(name: str, width: int, label=None):
            sig = m.input(name, width, label=label)
            self.input_specs[sig.path] = ("any", width)
            pool.append(sig)
            return sig

        # -- inputs, one per label style ---------------------------------------
        tag_in = free_input("tag_in", tw)          # public hardware tag
        free_input("plain", 8)                      # unlabelled (⊥ source)
        free_input("lab_in", 8, _random_label(rng, lat))
        m_tagged = m.input("tagged", 8, label=tag_label(tag_in, lat))
        self.input_specs[m_tagged.path] = ("any", 8)
        pool.append(m_tagged)
        way = m.input("way", 2)
        self.input_specs[way.path] = ("domain", list(range(4)))
        pool.append(way)
        way_map = {v: _random_label(rng, lat) for v in range(4)}
        dep_in = m.input("dep_in", 8,
                         label=DependentLabel(way, way_map, lat))
        self.input_specs[dep_in.path] = ("any", 8)
        pool.append(dep_in)

        # -- registers (all driven; some declared sinks) -------------------------
        regs = []
        for i in range(rng.randint(2, 4)):
            label = _random_label(rng, lat) if rng.random() < 0.5 else None
            r = m.reg(f"r{i}", 8, init=rng.getrandbits(8), label=label)
            regs.append(r)
            pool.append(r)
        selreg = m.reg("selreg", 2)                 # memory-label selector
        pool.append(selreg)

        # -- memory, alternating label styles ------------------------------------
        self.mem = None
        if rng.random() < 0.7:
            style = rng.choice(("none", "static", "cells", "dep"))
            depth = 5                               # non-power-of-2: some
            kwargs = {}                             # addresses out of range
            if style == "static":
                kwargs["label"] = _random_label(rng, lat)
            elif style == "cells":
                kwargs["cell_labels"] = [_random_label(rng, lat)
                                         for _ in range(depth)]
            elif style == "dep":
                kwargs["label"] = DependentLabel(
                    selreg, {v: _random_label(rng, lat) for v in range(4)},
                    lat, domain=range(4))
            self.mem = m.mem("ram", depth, 8, **kwargs)

        # -- expression soup over the pool ----------------------------------------
        def pick():
            return rng.choice(pool)

        def rand_expr():
            k = rng.random()
            a = pick()
            if k < 0.12:
                return UnaryOp(rng.choice(("not", "redor", "redand",
                                           "redxor")), a)
            if k < 0.45:
                op = rng.choice(("and", "or", "xor", "add", "sub", "mul",
                                 "eq", "lt", "shl", "shr", "and", "or"))
                return BinaryOp(op, a, pick())
            if k < 0.60:
                return Mux(pick(), a, pick())
            if k < 0.70:
                hi = rng.randrange(a.width)
                return Slice(a, hi, rng.randint(0, hi))
            if k < 0.78:
                return Concat([a, pick()])
            if k < 0.86 and self.mem is not None:
                return self.mem.read(pick().resize(3))
            if k < 0.94:
                kind = rng.choice((declassify, endorse))
                return kind(a, _random_label(rng, lat),
                            _random_label(rng, lat))
            return BinaryOp("or", a, Const(rng.getrandbits(4), 4))

        wires = []
        for i in range(rng.randint(8, 14)):
            label = None
            roll = rng.random()
            if roll < 0.25:
                label = _random_label(rng, lat)     # declared comb sink
            elif roll < 0.32:
                label = tag_label(tag_in, lat)      # hardware-decoded sink
            w = m.wire(f"w{i}", 8, label=label)
            w.assign(rand_expr().resize(8))
            wires.append(w)
            pool.append(w)

        # -- state updates ----------------------------------------------------------
        selreg.assign(way)
        for i, r in enumerate(regs):
            if rng.random() < 0.5:
                # last driver wins, so the unconditional fallback goes first
                r.assign(rand_expr().resize(8), conditions=())
                with when(pick()):
                    r.assign(rand_expr().resize(8))
            else:
                r.assign(rand_expr().resize(8))
        if self.mem is not None:
            for _ in range(rng.randint(1, 2)):
                with when(pick().resize(1)):
                    self.mem.write(pick().resize(3), rand_expr().resize(8))

        out = m.output("out", 8, label=_random_label(rng, lat))
        out.assign(rand_expr().resize(8))

    def stimulus(self, seed: int, cycles: int = CYCLES) -> List[Dict[str, int]]:
        """Per-cycle input maps, domain-respecting, deterministic."""
        rng = random.Random(seed ^ 0x5711)
        frames = []
        for _ in range(cycles):
            frame = {}
            for path, (kind, arg) in self.input_specs.items():
                if kind == "domain":
                    frame[path] = rng.choice(arg)
                else:
                    frame[path] = rng.getrandbits(arg) & mask_for(arg)
            frames.append(frame)
        return frames


def random_design(seed: int) -> RandomDesign:
    return RandomDesign(seed)
