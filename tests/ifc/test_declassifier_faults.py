"""Deny-by-default under mutated and forged tags (fault-injection PR).

The pipeline-exit :class:`~repro.accel.declassifier.Declassifier` is the
single gate between secret ciphertext and the public output.  The fault
campaign flips bits on its inputs; these properties pin the invariant
that makes those faults fail-safe: for *every* 8-bit tag pattern — valid
encoding or forged garbage — an encrypt block is released iff the
nonmalleable rule ``conf(tag) ⊆ vouch(tag)`` holds, and a suppressed
block leaves all-zero data on the bus.  There is no tag value, reachable
or not, that unlocks release by accident.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accel.common import (
    OP_DEC,
    OP_ENC,
    tag_conf_bits,
    tag_integ_bits,
)
from repro.accel.declassifier import Declassifier
from repro.hdl import Simulator

tags = st.integers(min_value=0, max_value=255)
data_words = st.integers(min_value=0, max_value=(1 << 128) - 1)
bit_positions = st.integers(min_value=0, max_value=7)

# the declassifier is purely combinational, so one simulator instance is
# safely shared across hypothesis examples
_SIM = Simulator(Declassifier(protected=True))


def _probe(tag: int, op: int, data: int, valid: int = 1):
    s = _SIM
    s.poke("declass.in_valid", valid)
    s.poke("declass.in_tag", tag)
    s.poke("declass.in_op", op)
    s.poke("declass.in_data", data)
    return {
        "out_valid": s.peek("declass.out_valid"),
        "out_tag": s.peek("declass.out_tag"),
        "out_data": s.peek("declass.out_data"),
        "suppressed": s.peek("declass.suppressed"),
    }


def _oracle_ok(tag: int) -> bool:
    """Nonmalleable release rule: every key that touched the block
    (conf nibble) is vouched for by the originating user (integ nibble)."""
    return (tag_conf_bits(tag) & ~tag_integ_bits(tag) & 0xF) == 0


class TestDenyByDefault:
    @settings(max_examples=256, deadline=None)
    @given(tags, data_words)
    def test_release_iff_oracle_for_all_256_tags(self, tag, data):
        out = _probe(tag, OP_ENC, data)
        if _oracle_ok(tag):
            assert out["out_valid"] == 1
            assert out["suppressed"] == 0
        else:
            assert out["out_valid"] == 0
            assert out["suppressed"] == 1
            # fail-safe: a suppressed block must not echo its payload
            assert out["out_data"] == 0

    @settings(max_examples=128, deadline=None)
    @given(tags, bit_positions, data_words)
    def test_single_bit_mutation_never_widens_release(self, tag, bit, data):
        """Flipping one tag bit may flip the verdict, but the mutated
        verdict must still match the oracle for the mutated tag — the
        decision depends only on the tag actually presented, so a fault
        can at worst convert one correctly-judged tag into another."""
        mutated = tag ^ (1 << bit)
        out = _probe(mutated, OP_ENC, data)
        assert out["out_valid"] == (1 if _oracle_ok(mutated) else 0)

    @settings(max_examples=128, deadline=None)
    @given(tags, data_words)
    def test_forged_conf_without_vouch_is_suppressed(self, tag, data):
        """A forged tag claiming extra key confidentiality (conf bits the
        integ nibble does not cover) must always be suppressed."""
        integ = tag_integ_bits(tag)
        if integ == 0xF:
            return  # vouches for every key; no uncovered bit to forge
        uncovered = (~integ & 0xF)
        uncovered &= -uncovered  # lowest key bit outside the vouch set
        forged = tag | (uncovered << 4)
        out = _probe(forged, OP_ENC, data)
        assert out["out_valid"] == 0
        assert out["suppressed"] == 1
        assert out["out_data"] == 0

    @settings(max_examples=128, deadline=None)
    @given(tags, data_words)
    def test_released_tag_is_public(self, tag, data):
        """When release happens the outgoing tag must carry no
        confidentiality — only the vouch nibble survives."""
        out = _probe(tag, OP_ENC, data)
        if out["out_valid"]:
            assert tag_conf_bits(out["out_tag"]) == 0
            assert tag_integ_bits(out["out_tag"]) == tag_integ_bits(tag)

    @settings(max_examples=128, deadline=None)
    @given(tags, data_words)
    def test_decrypt_path_is_not_declassified(self, tag, data):
        """Plaintext keeps its full label: the declassifier must pass the
        tag through unchanged so downstream routing stays label-checked."""
        out = _probe(tag, OP_DEC, data)
        assert out["out_valid"] == 1
        assert out["out_tag"] == tag
        assert out["out_data"] == data
        assert out["suppressed"] == 0

    @settings(max_examples=64, deadline=None)
    @given(tags, data_words)
    def test_invalid_input_never_releases(self, tag, data):
        out = _probe(tag, OP_ENC, data, valid=0)
        assert out["out_valid"] == 0
        assert out["suppressed"] == 0
