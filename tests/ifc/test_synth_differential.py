"""Differential oracle: synthesized shadow tags vs the interpreted tracker.

For every seeded random design (:mod:`tests.ifc.randnet`) the same netlist
runs twice — once on the interpreted backend with the untouched
:class:`~repro.ifc.tracker.LabelTracker` as the *oracle*, once with
``tag_tracking=True`` so the labels live as synthesized shadow logic
inside the design under test — and every label the two engines compute
must agree, cycle for cycle:

* the settled label of every combinational signal each cycle,
* which declared flow sinks fire a violation each cycle (site-for-site),
* every register label after each clock edge,
* every memory cell's label after each clock edge.

The comparison runs on all three value backends (interp, compiled,
batched) so the suite pins the tag semantics of each code generator, not
just the transform.  Downgrade sites are *not* cross-checked here: the
synthesized check is eager (evaluated every cycle) while the tracker only
checks downgrades its lazy evaluation actually reaches, so the hardware
reports a superset by design (see ``repro.ifc.synth`` module docs).

Mismatch reports name the module, the signal, and the first divergent
cycle so a failing seed is immediately actionable.
"""

from __future__ import annotations

from collections import Counter

import pytest

from repro.hdl.elaborate import elaborate
from repro.hdl.sim import Simulator
from repro.ifc.tracker import LabelTracker

from .randnet import CYCLES, random_design

SEEDS = list(range(70))
BACKENDS = ("interp", "compiled", "batched")


def _sink_key(sink: str) -> str:
    """Normalise a sink name for oracle/DUT comparison.

    The oracle names memory-write sinks per resolved address
    (``ram[3]``), the synthesized site per write port (``ram[write]``);
    both collapse to the memory path, compared as per-cycle counts.
    """
    return sink.split("[", 1)[0]


class Mismatch(AssertionError):
    pass


def run_differential(seed: int, backend: str, lanes: int = 1,
                     cycles: int = CYCLES) -> dict:
    """Run one seed on one backend; raises Mismatch on first divergence.

    Returns coverage counters so callers can assert the campaign actually
    exercised labels, violations and memories.
    """
    design = random_design(seed)
    nl = elaborate(design.module)
    top = design.module.name

    oracle_sim = Simulator(nl, backend="interp")
    oracle = LabelTracker(oracle_sim, design.lattice)

    kwargs = dict(backend=backend, tag_tracking=True, lattice=design.lattice)
    if backend == "batched":
        kwargs["lanes"] = lanes
    dut = Simulator(nl, **kwargs)
    plan = dut.tag_plan
    flow_sites = [s for s in plan.sites if s.kind == "flow"]

    stats = Counter()

    def bail(sig_path, cycle, what, want, got):
        raise Mismatch(
            f"seed {seed} backend {backend}: module {top!r}, signal "
            f"{sig_path!r}: first divergent cycle {cycle}: {what}: "
            f"oracle={want!r} synthesized={got!r}")

    for cycle, frame in enumerate(design.stimulus(seed, cycles)):
        for path, value in frame.items():
            oracle_sim.poke(path, value)
            dut.poke(path, value)

        seen = len(oracle.violations)
        oracle_sim.step()  # oracle watcher computes this cycle's labels

        # 1. settled combinational labels, pre-edge
        for sig in nl.comb:
            want = oracle._last_env[sig][1]
            got = dut.tags.label_of(sig.path)
            if got != want:
                bail(sig.path, cycle, "comb label", want, got)
            if want != oracle._bottom:
                stats["nontrivial_comb_labels"] += 1

        # 2. flow-violation sites firing this cycle
        want_fired = Counter(
            _sink_key(v.sink)
            for v in oracle.violations[seen:] if v.kind == "flow")
        got_fired = Counter(
            _sink_key(site.path)
            for site in flow_sites if dut.peek(site.now))
        if want_fired != got_fired:
            diff = set(want_fired) | set(got_fired)
            where = ", ".join(
                f"{k}: oracle={want_fired[k]} synthesized={got_fired[k]}"
                for k in sorted(diff)
                if want_fired[k] != got_fired[k])
            bail(where, cycle, "flow-violation sites", dict(want_fired),
                 dict(got_fired))
        stats["violations"] += sum(want_fired.values())

        dut.step()

        # 3. committed register labels, post-edge
        for reg in nl.regs:
            want = oracle.reg_labels[reg]
            got = dut.tags.label_of(reg.path)
            if got != want:
                bail(reg.path, cycle, "register label after edge", want, got)

        # 4. committed memory-cell labels, post-edge
        for mem in nl.mems:
            for addr in range(mem.depth):
                want = oracle.mem_labels[mem][addr]
                got = dut.tags.mem_label_of(mem, addr)
                if got != want:
                    bail(f"{mem.path}[{addr}]", cycle,
                         "memory cell label after edge", want, got)
            stats["mem_cells_checked"] += mem.depth

    stats["cycles"] = cycles
    return stats


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("seed", SEEDS)
def test_synthesized_tags_match_tracker(seed, backend):
    if backend == "batched":
        pytest.importorskip("numpy")
    run_differential(seed, backend, lanes=2 if backend == "batched" else 1)


def test_campaign_exercises_violations_and_state():
    """The seed pool must actually cover the interesting behaviours —
    a campaign where no declared sink ever fires proves nothing."""
    total = Counter()
    for seed in SEEDS[:20]:
        total.update(run_differential(seed, "compiled"))
    assert total["nontrivial_comb_labels"] > 100, (
        "random designs never produced an above-bottom label")
    assert total["violations"] > 10, (
        "random designs never fired a declared flow sink")
    assert total["mem_cells_checked"] > 0, (
        "random designs never instantiated a memory")


def test_batched_lanes_agree_with_oracle_on_every_lane():
    """Broadcast stimulus: every lane of the batched DUT must carry the
    oracle's labels, not just lane 0."""
    pytest.importorskip("numpy")
    seed = 3
    design = random_design(seed)
    nl = elaborate(design.module)
    oracle_sim = Simulator(nl, backend="interp")
    oracle = LabelTracker(oracle_sim, design.lattice)
    dut = Simulator(nl, backend="batched", lanes=4, tag_tracking=True,
                    lattice=design.lattice)
    for frame in design.stimulus(seed, 20):
        for path, value in frame.items():
            oracle_sim.poke(path, value)
            dut.poke(path, value)
        oracle_sim.step()
        for sig in nl.comb:
            want = oracle._last_env[sig][1]
            for lane in range(4):
                assert dut.tags.label_of(sig.path, lane=lane) == want
        dut.step()
        for reg in nl.regs:
            for lane in range(4):
                assert dut.tags.label_of(reg.path, lane=lane) == \
                    oracle.reg_labels[reg]
