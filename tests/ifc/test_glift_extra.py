"""GLIFT edge rules: tainted shift amounts, comparisons, address taint."""

from repro.hdl import Module, Simulator, when
from repro.ifc.glift import GliftTracker


class _Shifty(Module):
    def __init__(self):
        super().__init__("s")
        self.a = self.input("a", 8)
        self.n = self.input("n", 3)
        o1 = self.output("shl", 8)
        o1 <<= self.a << self.n
        o2 = self.output("shr", 8)
        o2 <<= self.a >> self.n
        o3 = self.output("lt", 1)
        o3 <<= self.a.lt(0x80)


def _run(a=0, n=0, ta=0, tn=0):
    sim = Simulator(_Shifty())
    tr = GliftTracker(sim, {"s.a": ta, "s.n": tn})
    sim.poke("s.a", a)
    sim.poke("s.n", n)
    sim.step()
    return tr


class TestShiftRules:
    def test_clean_amount_shifts_taint(self):
        tr = _run(a=0, n=2, ta=0b0011)
        assert tr.taint_of("s.shl") == 0b1100
        tr = _run(a=0, n=1, ta=0b1100)
        assert tr.taint_of("s.shr") == 0b0110

    def test_tainted_amount_saturates(self):
        tr = _run(a=1, n=0, ta=0, tn=0b111)
        assert tr.taint_of("s.shl") == 0xFF
        assert tr.taint_of("s.shr") == 0xFF


class TestCompareRules:
    def test_lt_taints_when_relevant(self):
        tr = _run(a=0x7F, ta=0x80)   # the tainted MSB decides < 0x80
        assert tr.taint_of("s.lt") == 1

    def test_lt_clean_when_operands_clean(self):
        tr = _run(a=0x7F, ta=0)
        assert tr.taint_of("s.lt") == 0


class TestAddressTaint:
    def test_tainted_address_read_taints_result(self):
        m = Module("m")
        a = m.input("a", 2)
        mem = m.mem("mem", 4, 8, init=[1, 2, 3, 4])  # distinct contents
        out = m.output("out", 8)
        out <<= mem.read(a)
        sim = Simulator(m)
        tr = GliftTracker(sim, {"m.a": 0b11})
        sim.step()
        assert tr.taint_of("m.out") == 0xFF

    def test_tainted_address_uniform_contents_still_flags_cell_taint(self):
        m = Module("m")
        a = m.input("a", 2)
        mem = m.mem("mem", 4, 8)  # all cells equal (zero)
        out = m.output("out", 8)
        out <<= mem.read(a)
        sim = Simulator(m)
        tr = GliftTracker(sim, {"m.a": 0b11})
        sim.step()
        # equal contents: the address reveals nothing through the value
        assert tr.taint_of("m.out") == 0

    def test_tainted_address_write_taints_all_cells(self):
        m = Module("m")
        we = m.input("we", 1)
        a = m.input("a", 2)
        d = m.input("d", 8)
        mem = m.mem("mem", 4, 8)
        out = m.output("out", 8)
        out <<= mem.read(0)
        with when(we):
            mem.write(a, d)
        sim = Simulator(m)
        tr = GliftTracker(sim, {"m.a": 0b11})
        sim.poke("m.we", 1)
        sim.step()
        for i in range(4):
            assert tr.mem_taint_of("m.mem", i) == 0xFF
