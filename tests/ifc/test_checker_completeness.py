"""Completeness sampling: deliberately planted leaks must be caught.

(The checker is conservative, so it can reject safe designs; this file
guards the other direction — a secret→public path through any operator
mix must never verify.)
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hdl import Module, Simulator, elaborate, mux, when
from repro.ifc.checker import IfcChecker
from repro.ifc.label import Label
from repro.ifc.lattice import two_point

TP = two_point()
P_T = Label(TP, "public", "trusted")
S_T = Label(TP, "secret", "trusted")


def build_leaky_design(seed: int):
    """A random design with a guaranteed secret→public dataflow.

    Returns (module, probe) where `probe` drives the secret input with
    two values and checks the public output actually differs — i.e. the
    leak is *live*, not dead logic.
    """
    rng = random.Random(seed)
    m = Module("leaky")
    sec = m.input("sec", 8, label=S_T)
    pub = m.input("pub", 8, label=P_T)
    x = sec
    ops = []
    for _ in range(rng.randrange(1, 6)):
        kind = rng.randrange(6)
        if kind == 0:
            x = x ^ pub
        elif kind == 1:
            x = x + rng.getrandbits(8)
        elif kind == 2:
            x = mux(pub[0], x, x ^ 0xFF)
        elif kind == 3:
            x = (x << 1) | x[7].zext(8)  # rotate keeps all bits live
        elif kind == 4:
            r = m.reg(f"r{len(ops)}", 8)
            r <<= x
            x = r
        else:
            x = ~x
        ops.append(kind)
    out = m.output("out", 8, label=P_T)
    out <<= x
    return m


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=0, max_value=100_000))
def test_planted_leak_always_caught(seed):
    design = build_leaky_design(seed)
    report = IfcChecker(elaborate(design), TP).check()
    assert not report.ok(), f"seed {seed}: a live secret→public path verified"


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=100_000))
def test_planted_leak_is_live(seed):
    """Sanity on the generator itself: the leak is observable."""
    design = build_leaky_design(seed)
    sim = Simulator(design)
    sim.poke("leaky.pub", 0x5A)
    outs = set()
    for secret in (0x00, 0xFF, 0x0F, 0xA5):
        sim.poke("leaky.sec", secret)
        sim.step(8)  # flush any registers in the chain
        outs.add(sim.peek("leaky.out"))
    assert len(outs) > 1
