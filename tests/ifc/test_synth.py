"""Unit tests for the shadow-tag transform's public surface.

The differential suite (:mod:`tests.ifc.test_synth_differential`) pins
the *semantics* against the interpreted tracker; this file pins the
*API*: the tag encoding, :class:`~repro.ifc.synth.TagPlan` bookkeeping,
and every :class:`~repro.ifc.synth.TagView` entry point including its
error behaviour and the ``repro.obs`` forwarding hook.
"""

from __future__ import annotations

import itertools

import pytest

import repro.obs as obs
from repro.hdl.module import Module
from repro.hdl.sim import Simulator
from repro.ifc.dependent import tag_label
from repro.ifc.label import Label, bottom, top
from repro.ifc.lattice import SecurityLattice, two_point
from repro.ifc.synth import decode_tag, encode_tag

TP = two_point()
FOUR = SecurityLattice(("p0", "p1", "p2", "p3"))
S_T = Label(TP, "secret", "trusted")
P_T = Label(TP, "public", "trusted")
P_U = Label(TP, "public", "untrusted")


def all_labels(lattice):
    n = len(lattice.principals)
    for c, i in itertools.product(range(1 << n), repeat=2):
        yield Label(lattice, lattice.decode_conf(c), lattice.decode_integ(i))


class TestEncoding:
    @pytest.mark.parametrize("lattice", [TP, FOUR], ids=["two_point", "four"])
    def test_round_trip_every_label(self, lattice):
        for lab in all_labels(lattice):
            c, d = encode_tag(lattice, lab)
            assert decode_tag(lattice, c, d) == lab

    def test_bottom_is_all_zeros(self):
        """(public, trusted) must encode as 0/0 — it is what fresh state
        (zeroed registers, reset) naturally carries."""
        for lattice in (TP, FOUR):
            assert encode_tag(lattice, bottom(lattice)) == (0, 0)
            n = len(lattice.principals)
            mask = (1 << n) - 1
            assert encode_tag(lattice, top(lattice)) == (mask, mask)

    def test_distrust_inversion(self):
        # trusted = full vouch set = zero distrust bits
        c, d = encode_tag(TP, S_T)
        assert d == 0 and c != 0
        c, d = encode_tag(TP, P_U)
        assert c == 0 and d != 0

    def test_decode_masks_stray_high_bits(self):
        n = len(TP.principals)
        lab = decode_tag(TP, (1 << n) | 1, (0xF0 << n))
        assert lab == decode_tag(TP, 1, 0)


def _leaky_module():
    """A secret input feeding a declared-public wire: one flow site that
    fires whenever the input label exceeds public."""
    m = Module("leak")
    sec = m.input("sec", 8, label=S_T)
    out = m.output("out", 8, label=P_T)
    out <<= sec
    return m


def _clean_module():
    m = Module("ok")
    a = m.input("a", 8, label=P_T)
    out = m.output("out", 8, label=S_T)
    out <<= a
    return m


class TestTagPlan:
    def test_stats_counts_nets_and_sites(self):
        sim = Simulator(_leaky_module(), backend="compiled",
                        tag_tracking=True, lattice=TP)
        st = sim.tag_plan.stats()
        assert st["principals"] == len(TP.principals)
        assert st["tag_nets"] == 2 * len(sim.tag_plan.conf)
        assert st["tag_net_bits"] == st["principals"] * st["tag_nets"]
        assert st["free_tag_inputs"] == 2      # sec's conf + distrust nets
        assert st["flow_sites"] == 1
        assert st["downgrade_sites"] == 0
        assert st["shadow_mems"] == 0

    def test_shadow_mems_counted(self):
        m = Module("mm")
        a = m.input("a", 8)
        ram = m.mem("ram", 4, 8, cell_labels=[S_T, P_T, S_T, P_T])
        out = m.wire("out", 8)
        out.assign(ram.read(a.resize(2)))
        sim = Simulator(m, backend="compiled", tag_tracking=True, lattice=TP)
        assert sim.tag_plan.stats()["shadow_mems"] == 2


class TestTagViewQueries:
    def test_label_of_unknown_signal_raises(self):
        sim = Simulator(_leaky_module(), backend="compiled",
                        tag_tracking=True, lattice=TP)
        with pytest.raises(KeyError):
            sim.tags.label_of("leak.nonexistent")

    def test_label_of_decodes_declared_input_label(self):
        sim = Simulator(_leaky_module(), backend="compiled",
                        tag_tracking=True, lattice=TP)
        assert sim.tags.label_of("leak.sec") == S_T
        assert sim.tags.label_of("leak.out") == S_T  # data flows through

    def test_single_lane_rejects_nonzero_lane(self):
        sim = Simulator(_leaky_module(), backend="compiled",
                        tag_tracking=True, lattice=TP)
        with pytest.raises(ValueError):
            sim.tags.label_of("leak.sec", lane=1)

    def test_mem_labels_initialised_from_cell_labels(self):
        m = Module("mm")
        a = m.input("a", 8)
        cells = [S_T, P_T, P_U, bottom(TP)]
        ram = m.mem("ram", 4, 8, cell_labels=cells)
        out = m.wire("out", 8)
        out.assign(ram.read(a.resize(2)))
        sim = Simulator(m, backend="compiled", tag_tracking=True, lattice=TP)
        for addr, want in enumerate(cells):
            assert sim.tags.mem_label_of("mm.ram", addr) == want

    def test_mem_labels_initialised_from_static_label(self):
        m = Module("mm")
        a = m.input("a", 8)
        ram = m.mem("ram", 4, 8, label=S_T)
        out = m.wire("out", 8)
        out.assign(ram.read(a.resize(2)))
        sim = Simulator(m, backend="compiled", tag_tracking=True, lattice=TP)
        for addr in range(4):
            assert sim.tags.mem_label_of("mm.ram", addr) == S_T

    def test_mem_label_of_unlabelled_design_raises(self):
        sim = Simulator(_leaky_module(), backend="compiled",
                        tag_tracking=True, lattice=TP)
        with pytest.raises(KeyError):
            sim.tags.mem_label_of("leak.ram", 0)


class TestSourceLabels:
    def test_set_source_label_overrides_declared(self):
        sim = Simulator(_leaky_module(), backend="compiled",
                        tag_tracking=True, lattice=TP)
        sim.tags.set_source_label("leak.sec", P_T)
        assert sim.tags.label_of("leak.sec") == P_T
        assert sim.tags.label_of("leak.out") == P_T

    def test_set_source_label_survives_reset(self):
        sim = Simulator(_leaky_module(), backend="compiled",
                        tag_tracking=True, lattice=TP)
        sim.tags.set_source_label("leak.sec", P_U)
        sim.poke("leak.sec", 1)
        sim.step(3)
        sim.reset()
        # reset re-zeroes the free tag inputs; reseed() must reapply the
        # testbench-set label, not fall back to the declared one
        assert sim.tags.label_of("leak.sec") == P_U

    def test_declared_label_reapplied_after_reset(self):
        sim = Simulator(_leaky_module(), backend="compiled",
                        tag_tracking=True, lattice=TP)
        sim.poke("leak.sec", 1)
        sim.step(2)
        sim.reset()
        assert sim.tags.label_of("leak.sec") == S_T

    def test_non_input_raises(self):
        sim = Simulator(_leaky_module(), backend="compiled",
                        tag_tracking=True, lattice=TP)
        with pytest.raises(KeyError):
            sim.tags.set_source_label("leak.out", P_T)

    def test_hardware_derived_label_raises(self):
        """A tag_label input's label is decoded from hardware nets — no
        free tag inputs exist for the testbench to drive."""
        m = Module("hw")
        t = m.input("t", 2 * len(TP.principals))
        d = m.input("d", 8, label=tag_label(t, TP))
        out = m.output("out", 8)
        out <<= d
        sim = Simulator(m, backend="compiled", tag_tracking=True, lattice=TP)
        with pytest.raises(KeyError):
            sim.tags.set_source_label("hw.d", P_T)


class TestViolations:
    def test_sticky_first_cycle_and_count(self):
        sim = Simulator(_leaky_module(), backend="compiled",
                        tag_tracking=True, lattice=TP)
        assert sim.tags.ok() and not sim.tags.any_violation()
        assert sim.tags.violations() == []
        sim.poke("leak.sec", 0xAB)
        for _ in range(5):
            sim.step()
        assert sim.tags.any_violation()
        assert not sim.tags.ok()
        (v,) = sim.tags.violations()
        assert v.site.path == "leak.out"
        assert v.site.kind == "flow"
        assert v.first_cycle == 0
        assert v.count == 5
        assert v.lane == 0
        assert v.as_dict()["sink"] == "leak.out"
        assert "VIOLATIONS" in sim.tags.summary()

    def test_violation_stops_counting_when_label_drops(self):
        sim = Simulator(_leaky_module(), backend="compiled",
                        tag_tracking=True, lattice=TP)
        sim.poke("leak.sec", 1)
        sim.step(2)
        sim.tags.set_source_label("leak.sec", P_T)  # flow becomes legal
        sim.step(3)
        (v,) = sim.tags.violations()
        assert v.count == 2  # sticky remembers, count stops

    def test_clean_design_stays_clean(self):
        sim = Simulator(_clean_module(), backend="compiled",
                        tag_tracking=True, lattice=TP)
        sim.poke("ok.a", 0xFF)
        sim.step(10)
        assert sim.tags.ok()
        assert "CLEAN" in sim.tags.summary()

    def test_emit_forwards_to_security_stream(self):
        sim = Simulator(_leaky_module(), backend="compiled",
                        tag_tracking=True, lattice=TP)
        sim.poke("leak.sec", 7)
        sim.step(3)
        with obs.capture() as t:
            out = sim.tags.violations(emit=True)
        assert len(out) == 1
        (ev,) = t.security.filter("label_violation")
        assert ev.source == "synth"
        assert ev.detail["sink"] == "leak.out"
        assert ev.detail["count"] == 3
        assert ev.cycle == 0

    def test_emit_without_telemetry_is_quiet(self):
        sim = Simulator(_leaky_module(), backend="compiled",
                        tag_tracking=True, lattice=TP)
        sim.poke("leak.sec", 7)
        sim.step()
        assert obs.telemetry() is None
        assert len(sim.tags.violations(emit=True)) == 1  # no crash
