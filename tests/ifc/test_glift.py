"""GLIFT bit-precise taint tracking — gate rules, value-aware precision,
and the crypto-needs-declassification demonstration."""

import pytest

from repro.hdl import Module, Simulator, declassify, mux, when
from repro.ifc.glift import GliftTracker, _ripple_up
from repro.ifc.label import Label
from repro.ifc.lattice import two_point

TP = two_point()
P_T = Label(TP, "public", "trusted")


class _Gates(Module):
    def __init__(self):
        super().__init__("g")
        self.a = self.input("a", 8)
        self.b = self.input("b", 8)
        self.sel = self.input("sel", 1)
        for name, expr in {
            "o_and": self.a & self.b,
            "o_or": self.a | self.b,
            "o_xor": self.a ^ self.b,
            "o_add": self.a + self.b,
            "o_eq": self.a.eq(self.b),
            "o_mux": mux(self.sel, self.a, self.b),
        }.items():
            out = self.output(name, expr.width)
            out <<= expr


def _track(a=0, b=0, sel=0, ta=0, tb=0, tsel=0):
    sim = Simulator(_Gates())
    tr = GliftTracker(sim, {"g.a": ta, "g.b": tb, "g.sel": tsel})
    sim.poke("g.a", a)
    sim.poke("g.b", b)
    sim.poke("g.sel", sel)
    sim.step()
    return sim, tr


class TestGateRules:
    def test_and_with_untainted_zero_is_clean(self):
        _sim, tr = _track(a=0xFF, b=0x00, ta=0xFF, tb=0)
        assert tr.taint_of("g.o_and") == 0

    def test_and_with_untainted_one_passes_taint(self):
        _sim, tr = _track(a=0xFF, b=0x0F, ta=0xFF, tb=0)
        assert tr.taint_of("g.o_and") == 0x0F

    def test_or_with_untainted_one_is_clean(self):
        _sim, tr = _track(a=0x00, b=0xFF, ta=0xFF, tb=0)
        assert tr.taint_of("g.o_or") == 0

    def test_xor_always_propagates(self):
        _sim, tr = _track(a=0, b=0, ta=0xF0, tb=0x0F)
        assert tr.taint_of("g.o_xor") == 0xFF

    def test_add_ripples_upward(self):
        _sim, tr = _track(a=0, b=0, ta=0b100, tb=0)
        assert tr.taint_of("g.o_add") == 0b11111100

    def test_eq_decided_by_untainted_bits_is_clean(self):
        # low nibble tainted, but the untainted high nibbles already differ
        _sim, tr = _track(a=0xA0, b=0x50, ta=0x0F, tb=0)
        assert tr.taint_of("g.o_eq") == 0

    def test_eq_undecided_is_tainted(self):
        _sim, tr = _track(a=0xA0, b=0xA0, ta=0x0F, tb=0)
        assert tr.taint_of("g.o_eq") == 1

    def test_mux_clean_sel_takes_branch_taint(self):
        _sim, tr = _track(sel=1, ta=0xAA, tb=0x55)
        assert tr.taint_of("g.o_mux") == 0xAA
        _sim, tr = _track(sel=0, ta=0xAA, tb=0x55)
        assert tr.taint_of("g.o_mux") == 0x55

    def test_mux_tainted_sel_taints_differing_bits(self):
        _sim, tr = _track(a=0xF0, b=0x0F, sel=0, tsel=1)
        assert tr.taint_of("g.o_mux") == 0xFF

    def test_mux_tainted_sel_equal_branches_clean(self):
        _sim, tr = _track(a=0x33, b=0x33, sel=0, tsel=1)
        assert tr.taint_of("g.o_mux") == 0

    def test_ripple_helper(self):
        assert _ripple_up(0, 8) == 0
        assert _ripple_up(0b1, 8) == 0xFF
        assert _ripple_up(0b10000, 8) == 0xF0


class TestStateAndSinks:
    def test_taint_flows_through_registers(self):
        m = Module("m")
        x = m.input("x", 8)
        r = m.reg("r", 8)
        r <<= x
        out = m.output("out", 8)
        out <<= r
        sim = Simulator(m)
        tr = GliftTracker(sim, {"m.x": 0x0F}, sinks=["m.out"])
        sim.step(2)
        assert tr.taint_of("m.r") == 0x0F
        assert not tr.ok()
        assert tr.violations[0].taint_mask == 0x0F

    def test_memory_cells_carry_taint(self):
        m = Module("m")
        we = m.input("we", 1)
        addr = m.input("addr", 2)
        din = m.input("din", 8)
        mem = m.mem("mem", 4, 8)
        out = m.output("out", 8)
        out <<= mem.read(addr)
        with when(we):
            mem.write(addr, din)
        sim = Simulator(m)
        tr = GliftTracker(sim, {"m.din": 0xFF})
        sim.poke("m.we", 1)
        sim.poke("m.addr", 2)
        sim.step()
        assert tr.mem_taint_of("m.mem", 2) == 0xFF
        assert tr.mem_taint_of("m.mem", 1) == 0

    def test_downgrade_clears_when_honored(self):
        m = Module("m")
        x = m.input("x", 8)
        out = m.output("out", 8)
        out <<= declassify(x, P_T, P_T)
        sim = Simulator(m)
        tr = GliftTracker(sim, {"m.x": 0xFF}, honor_downgrades=True)
        sim.step()
        assert tr.taint_of("m.out") == 0

    def test_downgrade_kept_by_default(self):
        m = Module("m")
        x = m.input("x", 8)
        out = m.output("out", 8)
        out <<= declassify(x, P_T, P_T)
        sim = Simulator(m)
        tr = GliftTracker(sim, {"m.x": 0xFF})
        sim.step()
        assert tr.taint_of("m.out") == 0xFF


class TestCryptoStory:
    """§5: GLIFT shows the key reaching the ciphertext (noninterference is
    too strict) and the declassifier realising the paper's release point."""

    def _pipe(self):
        from repro.accel.pipeline import AesPipeline

        sim = Simulator(AesPipeline(protected=True))
        sim.poke("pipe.advance", 1)
        sim.poke("pipe.kx_start", 1)
        sim.poke("pipe.kx_slot", 1)
        sim.poke("pipe.kx_key", 0x1234)
        sim.poke("pipe.kx_key_tag", 0x11)
        sim.step()
        sim.poke("pipe.kx_start", 0)
        sim.run_until("pipe.kx_busy", 0, 50)
        return sim

    @pytest.mark.slow
    def test_key_taints_every_ciphertext_bit(self):
        sim = self._pipe()
        tr = GliftTracker(sim, {"pipe.kx_key": (1 << 128) - 1})
        # taint the round-key RAM of slot 1 directly (the key already went in)
        rk_mem = sim._resolve_mem("pipe.keyexp.rk_mem_1")
        for i in range(11):
            tr.mem_taint[rk_mem][i] = (1 << 128) - 1
        sim.poke("pipe.in_valid", 1)
        sim.poke("pipe.in_op", 0)
        sim.poke("pipe.in_slot", 1)
        sim.poke("pipe.in_user", 0x11)
        sim.poke("pipe.in_data", 0xABCD)
        sim.step()
        sim.poke("pipe.in_valid", 0)
        sim.run_until("pipe.out_valid", 1, 50)
        tr.refresh()
        assert tr.taint_of("pipe.out_data") == (1 << 128) - 1
