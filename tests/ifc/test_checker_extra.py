"""Additional checker behaviours: elsewhen chains, shallow-vs-flat
agreement, JSON export, and the key-timing entropy quantification."""

import json

import pytest

from repro.hdl import Module, elaborate, elaborate_shallow, elsewhen, otherwise, when
from repro.ifc.checker import IfcChecker, check_module_shallow
from repro.ifc.label import Label
from repro.ifc.lattice import two_point

TP = two_point()
P_T = Label(TP, "public", "trusted")
S_T = Label(TP, "secret", "trusted")


class TestElsewhenFlows:
    def test_chain_condition_leaks(self):
        m = Module("m")
        sec = m.input("sec", 2, label=S_T)
        out = m.output("out", 4, label=P_T, default=0)
        with when(sec.eq(0)):
            out <<= 1
        with elsewhen(sec.eq(1)):
            out <<= 2
        with otherwise():
            out <<= 3
        rep = IfcChecker(elaborate(m), TP).check()
        assert not rep.ok()

    def test_chain_with_public_condition_is_fine(self):
        m = Module("m")
        pub = m.input("pub", 2, label=P_T)
        sec = m.input("sec", 4, label=S_T)
        out = m.output("out", 4, label=S_T, default=0)
        with when(pub.eq(0)):
            out <<= sec
        with elsewhen(pub.eq(1)):
            out <<= 7
        rep = IfcChecker(elaborate(m), TP).check()
        assert rep.ok()


class Child(Module):
    def __init__(self):
        super().__init__("child")
        self.i = self.input("i", 8, label=P_T)
        self.o = self.output("o", 8, label=P_T)
        self.o <<= self.i + 1


class Parent(Module):
    def __init__(self, violate=False):
        super().__init__("parent")
        self.sec = self.input("sec", 8, label=S_T)
        self.pub = self.input("pub", 8, label=P_T)
        self.child = self.submodule(Child())
        self.child.i <<= self.sec if violate else self.pub
        self.out = self.output("out", 8, label=S_T)
        self.out <<= self.child.o


class TestModularChecking:
    def test_shallow_catches_port_contract_violation(self):
        rep = check_module_shallow(Parent(violate=True), TP)
        assert not rep.ok()
        assert any("child.i" in e.sink for e in rep.errors)

    def test_shallow_passes_correct_wiring(self):
        assert check_module_shallow(Parent(violate=False), TP).ok()

    def test_flat_agrees_on_violation(self):
        """Flat checking inlines the child; the violation still surfaces
        (at the child's internals or the port)."""
        flat = IfcChecker(elaborate(Parent(violate=True)), TP).check()
        assert not flat.ok()

    def test_flat_agrees_on_pass(self):
        assert IfcChecker(elaborate(Parent(violate=False)), TP).check().ok()


class TestJsonReport:
    def test_roundtrips_through_json(self):
        m = Module("m")
        sec = m.input("sec", 8, label=S_T)
        out = m.output("out", 8, label=P_T)
        out <<= sec
        rep = IfcChecker(elaborate(m), TP).check()
        data = json.loads(rep.to_json())
        assert data["ok"] is False
        assert data["design"] == "m"
        assert data["errors"][0]["sink"] == "m.out"
        assert data["checked_sinks"] == 1
        assert "hypotheses_potential" in data


class TestTimingEntropy:
    def test_flawed_unit_leaks_bits(self):
        from repro.attacks.key_timing import leaked_bits_estimate

        leaked = leaked_bits_estimate(n_samples=32, protected=False)
        assert leaked > 1.5  # ~2.7 bits in the limit

    def test_protected_unit_leaks_nothing(self):
        from repro.attacks.key_timing import leaked_bits_estimate

        assert leaked_bits_estimate(n_samples=8, protected=True) == 0.0
