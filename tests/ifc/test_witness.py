"""Witness chains: the shared evidence structures, the dynamic ledger's
source→sink explanations, and the static checker's counterexamples."""

import pytest

from repro.hdl import Module, Simulator, declassify, mux, when
from repro.ifc.label import Label
from repro.ifc.lattice import two_point
from repro.ifc.tracker import LabelTracker
from repro.ifc.witness import (
    Witness,
    WitnessSource,
    WitnessStep,
    merge_source_sets,
    normalize_source,
    sources_agree,
)

TP = two_point()
P_T = Label(TP, "public", "trusted")
S_T = Label(TP, "secret", "trusted")


def _sim(module):
    return Simulator(module, backend="compiled")


class TestWitnessStructures:
    def test_normalize_source_strips_cell_index(self):
        assert normalize_source("aes.keyexp.rk_mem_1[10]") == \
            "aes.keyexp.rk_mem_1"
        assert normalize_source("aes.in_data") == "aes.in_data"

    def test_source_set_and_render(self):
        w = Witness(
            sink="m.out", mode="dynamic",
            steps=[WitnessStep("m.sec", "input", 0, "(secret, trusted)"),
                   WitnessStep("m.out", "sink", 1, "(secret, trusted)",
                               via=("declassify->(public, trusted)",))],
            sources=[WitnessSource("m.sec", "input", 0,
                                   "(secret, trusted)", True),
                     WitnessSource("m.pub", "input", 0,
                                   "(public, trusted)", False)])
        assert w.source_set() == frozenset({"m.sec"})
        assert w.source_set(offending_only=False) == \
            frozenset({"m.sec", "m.pub"})
        text = w.render()
        assert "dynamic witness -> m.out" in text
        assert "<- source" in text and "<- sink" in text
        assert "offending sources: m.sec" in text
        assert "decision points crossed" in text
        assert w.crossed() == ["declassify->(public, trusted)"]

    def test_as_dict_round_trips_shapes(self):
        w = Witness("m.out", "static",
                    [WitnessStep("m.a", "input", None, "(secret, trusted)")],
                    [WitnessSource("m.a", "input", None,
                                   "(secret, trusted)", True)],
                    hypothesis={"m.tag": 2})
        d = w.as_dict()
        assert d["sink"] == "m.out" and d["mode"] == "static"
        assert d["steps"][0]["cycle"] is None
        assert d["sources"][0]["offending"] is True
        assert d["hypothesis"] == {"m.tag": 2}

    def test_sources_agree_is_subset_with_nonempty_dynamic(self):
        assert sources_agree([], [])
        assert sources_agree(["a", "b"], ["a"])
        assert sources_agree(["a"], ["a"])
        assert not sources_agree(["a"], ["a", "b"])  # dynamic exceeds static
        assert not sources_agree(["a"], [])          # no corroboration
        assert not sources_agree([], ["a"])

    def test_merge_source_sets_skips_none(self):
        w = Witness("s", "dynamic", [],
                    [WitnessSource("m.x", "input", 0, "l", True)])
        assert merge_source_sets([w, None]) == frozenset({"m.x"})


class TestDynamicWitness:
    def _leaky(self):
        m = Module("m")
        sec = m.input("sec", 8, label=S_T)
        r = m.reg("r", 8)
        r <<= sec
        out = m.output("out", 8, label=P_T)
        out <<= r + 1
        return m

    def test_violation_carries_witness_chain(self):
        sim = _sim(self._leaky())
        tr = LabelTracker(sim, TP, provenance=True)
        sim.poke("m.sec", 7)
        sim.step(3)
        assert tr.violations
        v = tr.violations[0]
        assert v.witness is not None
        assert v.witness.source_set() == frozenset({"m.sec"})
        paths = [s.path for s in v.witness.steps]
        assert paths[0] == "m.sec" and paths[-1] == "m.out"
        # cycles are non-decreasing along the chain
        cycles = [s.cycle for s in v.witness.steps]
        assert cycles == sorted(cycles)

    def test_explain_requires_provenance(self):
        sim = _sim(self._leaky())
        tr = LabelTracker(sim, TP)
        sim.step()
        with pytest.raises(RuntimeError, match="provenance"):
            tr.explain("m.out")

    def test_explain_unwatched_comb_names_watch(self):
        m = Module("m")
        a = m.input("a", 8)
        w = m.wire("mid", 8)
        w <<= a + 1
        out = m.output("out", 8)
        out <<= w
        sim = _sim(m)
        tr = LabelTracker(sim, TP, provenance=True)
        sim.step()
        with pytest.raises(KeyError, match="watch"):
            tr.explain("m.mid")
        tr.watch("m.mid")
        sim.step()
        assert tr.explain("m.mid").steps

    def test_downgrade_crossing_recorded_in_via(self):
        m = Module("m")
        sec = m.input("sec", 8, label=S_T)
        out = m.output("out", 8, label=P_T)
        out <<= declassify(sec, P_T, S_T)
        sim = _sim(m)
        tr = LabelTracker(sim, TP, provenance=True)
        sim.poke("m.sec", 3)
        sim.step(2)
        assert tr.ok()
        w = tr.explain("m.out")
        assert any("declassify" in note for note in w.crossed())
        # the released secret is still named as a (non-offending) origin
        assert "m.sec" in w.source_set(offending_only=False)

    def test_explain_mem_traces_cell_write(self):
        m = Module("m")
        we = m.input("we", 1, label=P_T)
        din = m.input("din", 8, label=S_T)
        store = m.mem("store", 4, 8)
        out = m.output("out", 8)
        out <<= store.read(0)
        with when(we):
            store.write(0, din)
        sim = _sim(m)
        tr = LabelTracker(sim, TP, provenance=True)
        sim.poke("m.we", 1)
        sim.poke("m.din", 0x42)
        sim.step(2)
        w = tr.explain_mem("m.store", 0)
        assert "m.din" in w.source_set(offending_only=False)

    def test_window_prunes_but_recent_explained(self):
        sim = _sim(self._leaky())
        tr = LabelTracker(sim, TP, provenance=True, window=4)
        sim.poke("m.sec", 1)
        sim.step(20)
        assert all(e.cycle >= 20 - 4 - 1 for e in tr.ledger.values())
        assert tr.explain("m.out").steps  # latest cycle still answerable


class TestTrackerTelemetryEnrichment:
    def test_violation_event_carries_witness_fields(self):
        import repro.obs as obs

        m = Module("m")
        sec = m.input("sec", 8, label=S_T)
        out = m.output("out", 8, label=P_T)
        out <<= sec
        with obs.capture() as t:
            sim = _sim(m)
            tr = LabelTracker(sim, TP, provenance=True)
            sim.poke("m.sec", 9)
            sim.step()
        assert not tr.ok()
        events = [e for e in t.security.events
                  if e.kind == "label_violation"]
        assert events
        detail = events[0].detail
        assert detail["witness_sources"] == ["m.sec"]
        assert "witness -> m.out" in detail["witness"]


class TestStaticWitness:
    def test_flow_error_witness_names_source(self):
        from repro.hdl.elaborate import elaborate
        from repro.ifc.checker import IfcChecker

        m = Module("m")
        sec = m.input("sec", 8, label=S_T)
        r = m.reg("r", 8)
        r <<= sec
        out = m.output("out", 8, label=P_T)
        out <<= r
        report = IfcChecker(elaborate(m), TP).check()
        assert not report.ok()
        err = report.errors[0]
        assert err.witness is not None
        assert err.witness.mode == "static"
        assert err.witness.source_set() == frozenset({"m.sec"})
        paths = [s.path for s in err.witness.steps]
        assert paths[0] == "m.sec" and paths[-1] == "m.out"
        assert all(s.cycle is None for s in err.witness.steps)

    def test_witness_in_report_json(self):
        from repro.hdl.elaborate import elaborate
        from repro.ifc.checker import IfcChecker

        m = Module("m")
        sec = m.input("sec", 8, label=S_T)
        out = m.output("out", 8, label=P_T)
        out <<= sec
        report = IfcChecker(elaborate(m), TP).check()
        d = report.as_dict()
        assert d["errors"][0]["witness"]["sources"][0]["path"] == "m.sec"

    def test_hypothesis_attached_to_witness(self):
        from repro.eval.audit import run_audit

        report = run_audit(timing_flaw=True)
        assert not report.ok()
        witnessed = [e for e in report.errors if e.witness is not None]
        assert witnessed
        # the out_data disclosure blames the request data and key RAMs
        out_errs = [e for e in witnessed if "out_data" in e.sink]
        assert out_errs
        sources = set()
        for e in out_errs:
            sources |= e.witness.source_set()
        assert "aes.in_data" in sources
        assert any("rk_mem" in s for s in sources)
        # the timing-flaw errors blame the key material behind the stall
        busy_errs = [e for e in witnessed if "busy" in e.sink
                     or "ready" in e.sink]
        assert busy_errs
        for e in busy_errs:
            assert e.witness.source_set(), \
                f"static witness for {e.sink} names no sources"


class TestProtectedEnforcementWitnesses:
    """Every runtime enforcement event on the protected design is
    explainable: blocked/released flows carry non-empty witness chains
    naming the true secret source."""

    @pytest.fixture(scope="class")
    def flows_report(self):
        from repro.obs.flows import run_flow_scenarios

        return run_flow_scenarios()

    def test_all_scenarios_pass(self, flows_report):
        assert flows_report.ok
        assert len(flows_report.scenarios) == 4

    def test_baseline_violations_name_true_secret_sources(self,
                                                          flows_report):
        secret_bases = ("aes.in_data", "aes.pipe.keyexp.rk_mem",
                        "aes.scratchpad.cells")
        for s in flows_report.scenarios:
            assert s.dynamic_sources, s.name
            for src in s.dynamic_sources:
                assert src.startswith(secret_bases), (s.name, src)

    def test_static_overapproximates_dynamic(self, flows_report):
        for s in flows_report.scenarios:
            assert s.dynamic_sources <= s.static_sources, s.name

    def test_protected_flows_witnessed(self, flows_report):
        for s in flows_report.scenarios:
            w = s.protected_witness
            assert w is not None, s.name
            assert w.source_set(offending_only=False), s.name
        by_name = {s.name: s for s in flows_report.scenarios}
        # the blocked debug read is explained by the victim's data
        dbg = by_name["debug_leak"].protected_witness
        assert "aes.in_data" in dbg.source_set(offending_only=False)
        # the guarded victim cell is explained by the victim's key load
        pad = by_name["scratchpad_overrun"].protected_witness
        assert "aes.in_data" in pad.source_set(offending_only=False)
        # the reviewed stall downgrade is on the advance witness
        stall = by_name["stall_guard"].protected_witness
        assert any("endorse" in note or "declassify" in note
                   for note in stall.crossed())
