"""Algebraic properties of the synthesized tag logic, per node kind.

Two laws the shadow logic must satisfy regardless of stimulus:

**Monotonicity** — in monotone mode (``tag_precise=False``) the tag of
any node's output dominates the join of the tags of the signals feeding
it, absent a downgrade marker.  (Precise mode deliberately breaks this
for value-aware ``and``/``or``/``mux`` — that's its point — so the
companion law there is *refinement*: the precise tag always flows to the
monotone one.)

**Downgrade locality** — a downgrade cell rewrites only its own output
tag, by exactly the nonmalleable result label (``declassified`` /
``endorsed``); sibling signals that do not read through the marker keep
their tags bit-for-bit, whatever expression kind consumes the
downgraded value downstream.

Both are parametrized over every netlist node kind so a future tag rule
for one kind cannot silently regress another.
"""

from __future__ import annotations

import random

import pytest

from repro.hdl.module import Module
from repro.hdl.nodes import (
    BinaryOp,
    Concat,
    Mux,
    Slice,
    UnaryOp,
    declassify,
    endorse,
)
from repro.hdl.sim import Simulator
from repro.ifc.label import Label, bottom, join_all
from repro.ifc.lattice import SecurityLattice
from repro.ifc.nonmalleable import declassified, endorsed

LAT = SecurityLattice(("p0", "p1", "p2", "p3"))


def _label(rng: random.Random) -> Label:
    n = len(LAT.principals)
    return Label(LAT, LAT.decode_conf(rng.getrandbits(n)),
                 LAT.decode_integ(rng.getrandbits(n)))


# (name, builder(a, b, sel, mem) -> node, which inputs feed it)
NODE_KINDS = [
    ("unary_not", lambda a, b, s, m: UnaryOp("not", a), ("a",)),
    ("unary_redor", lambda a, b, s, m: UnaryOp("redor", a), ("a",)),
    ("unary_redand", lambda a, b, s, m: UnaryOp("redand", a), ("a",)),
    ("unary_redxor", lambda a, b, s, m: UnaryOp("redxor", a), ("a",)),
    ("binary_and", lambda a, b, s, m: BinaryOp("and", a, b), ("a", "b")),
    ("binary_or", lambda a, b, s, m: BinaryOp("or", a, b), ("a", "b")),
    ("binary_xor", lambda a, b, s, m: BinaryOp("xor", a, b), ("a", "b")),
    ("binary_add", lambda a, b, s, m: BinaryOp("add", a, b), ("a", "b")),
    ("binary_sub", lambda a, b, s, m: BinaryOp("sub", a, b), ("a", "b")),
    ("binary_mul", lambda a, b, s, m: BinaryOp("mul", a, b), ("a", "b")),
    ("binary_eq", lambda a, b, s, m: BinaryOp("eq", a, b), ("a", "b")),
    ("binary_lt", lambda a, b, s, m: BinaryOp("lt", a, b), ("a", "b")),
    ("binary_shl", lambda a, b, s, m: BinaryOp("shl", a, b), ("a", "b")),
    ("binary_shr", lambda a, b, s, m: BinaryOp("shr", a, b), ("a", "b")),
    ("mux", lambda a, b, s, m: Mux(s, a, b), ("a", "b", "sel")),
    ("slice", lambda a, b, s, m: Slice(a, 5, 2), ("a",)),
    ("concat", lambda a, b, s, m: Concat([a, b]), ("a", "b")),
    ("memread", lambda a, b, s, m: m.read(Slice(a, 2, 0)), ("a",)),
]


def _build(node_fn, wrap=None):
    """One-wire module: ``out <= kind(a, b, sel)`` (optionally wrapped)."""
    mod = Module("prop")
    a = mod.input("a", 8)
    b = mod.input("b", 8)
    sel = mod.input("sel", 1)
    mem = mod.mem("ram", 8, 8, cell_labels=[bottom(LAT)] * 8)
    expr = node_fn(a, b, sel, mem)
    if wrap is not None:
        expr = wrap(expr, b)
    out = mod.wire("out", 16)
    out.assign(expr.resize(16))
    return mod


@pytest.mark.parametrize("name,node_fn,feeds",
                         NODE_KINDS, ids=[k[0] for k in NODE_KINDS])
def test_monotone_output_dominates_input_join(name, node_fn, feeds):
    rng = random.Random(hash(name) & 0xFFFF)
    mod = _build(node_fn)
    dut = Simulator(mod, backend="compiled", tag_tracking=True,
                    lattice=LAT, tag_precise=False)
    for trial in range(25):
        labels = {p: _label(rng) for p in ("a", "b", "sel")}
        for p, lab in labels.items():
            dut.tags.set_source_label(f"prop.{p}", lab)
        dut.tags.reseed()
        dut.poke("prop.a", rng.getrandbits(8))
        dut.poke("prop.b", rng.getrandbits(8))
        dut.poke("prop.sel", rng.getrandbits(1))
        got = dut.tags.label_of("prop.out")
        feed_join = join_all([labels[p] for p in feeds], LAT)
        assert feed_join.flows_to(got), (
            f"{name}: monotone tag {got!r} lost part of the input join "
            f"{feed_join!r} (inputs {labels!r})")
        # and no label invention: everything in the output tag came from
        # some input of the cone
        all_join = join_all(list(labels.values()), LAT)
        assert got.flows_to(all_join), (
            f"{name}: monotone tag {got!r} exceeds the join of every "
            f"source {all_join!r}")


@pytest.mark.parametrize("name,node_fn,feeds",
                         NODE_KINDS, ids=[k[0] for k in NODE_KINDS])
def test_precise_refines_monotone(name, node_fn, feeds):
    rng = random.Random(hash(name) & 0xFFFF)
    mod_p = _build(node_fn)
    mod_m = _build(node_fn)
    precise = Simulator(mod_p, backend="compiled", tag_tracking=True,
                        lattice=LAT, tag_precise=True)
    monotone = Simulator(mod_m, backend="compiled", tag_tracking=True,
                         lattice=LAT, tag_precise=False)
    for trial in range(25):
        vals = {"a": rng.getrandbits(8), "b": rng.getrandbits(8),
                "sel": rng.getrandbits(1)}
        for dut, top in ((precise, "prop"), (monotone, "prop")):
            for p in ("a", "b", "sel"):
                dut.tags.set_source_label(f"{top}.{p}", _label(
                    random.Random(trial * 7 + hash(p) % 97)))
                dut.poke(f"{top}.{p}", vals[p])
            dut.tags.reseed()
        got_p = precise.tags.label_of("prop.out")
        got_m = monotone.tags.label_of("prop.out")
        assert got_p.flows_to(got_m), (
            f"{name}: precise tag {got_p!r} does not refine monotone "
            f"tag {got_m!r}")


@pytest.mark.parametrize("name,node_fn,feeds",
                         NODE_KINDS, ids=[k[0] for k in NODE_KINDS])
@pytest.mark.parametrize("dg", ["declassify", "endorse"])
def test_downgrade_locality(name, node_fn, feeds, dg):
    """A downgrade marker inside the cone of ``out`` must not perturb the
    tag of a sibling wire, and the marker's own output must carry exactly
    the nonmalleable result label."""
    rng = random.Random(hash((name, dg)) & 0xFFFF)
    target = _label(rng)
    authority = _label(rng)
    kind = declassify if dg == "declassify" else endorse

    mod = Module("prop")
    a = mod.input("a", 8)
    b = mod.input("b", 8)
    sel = mod.input("sel", 1)
    mem = mod.mem("ram", 8, 8, cell_labels=[bottom(LAT)] * 8)
    dg_out = mod.wire("dg_out", 8)
    dg_out.assign(kind(a, target, authority))
    # downstream: the node kind under test consumes the downgraded value
    down = mod.wire("down", 16)
    down.assign(node_fn(dg_out, b, sel, mem).resize(16))
    # sibling: same expression shape, no downgrade in its cone
    side = mod.wire("side", 16)
    side.assign(node_fn(a, b, sel, mem).resize(16))

    dut = Simulator(mod, backend="compiled", tag_tracking=True,
                    lattice=LAT, tag_check_downgrades=False)
    mod2 = _build(node_fn)
    ref = Simulator(mod2, backend="compiled", tag_tracking=True,
                    lattice=LAT)
    for trial in range(25):
        la, lb, ls = _label(rng), _label(rng), _label(rng)
        dut.tags.set_source_label("prop.a", la)
        dut.tags.set_source_label("prop.b", lb)
        dut.tags.set_source_label("prop.sel", ls)
        dut.tags.reseed()
        dut.poke("prop.a", rng.getrandbits(8))
        dut.poke("prop.b", rng.getrandbits(8))
        dut.poke("prop.sel", rng.getrandbits(1))

        want_dg = (declassified(la, target) if dg == "declassify"
                   else endorsed(la, target))
        assert dut.tags.label_of("prop.dg_out") == want_dg, (
            f"{dg} output label wrong: {dut.tags.label_of('prop.dg_out')!r}"
            f" != {want_dg!r}")

        # locality: the sibling cone never sees the downgrade
        ref.tags.set_source_label("prop.a", la)
        ref.tags.set_source_label("prop.b", lb)
        ref.tags.set_source_label("prop.sel", ls)
        ref.tags.reseed()
        ref.poke("prop.a", dut.peek("prop.a"))
        ref.poke("prop.b", dut.peek("prop.b"))
        ref.poke("prop.sel", dut.peek("prop.sel"))
        assert dut.tags.label_of("prop.side") == \
            ref.tags.label_of("prop.out"), (
            f"{dg} marker perturbed the sibling {name} cone")
