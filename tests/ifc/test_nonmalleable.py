"""Eq. (1) — anchored on the paper's worked examples, then generalised."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ifc.label import Label, bottom, secret_trusted
from repro.ifc.lattice import SecurityLattice, two_point
from repro.ifc.nonmalleable import (
    check_downgrade,
    declassified,
    downgraded_label,
    endorsed,
    may_declassify,
    may_endorse,
)

TP = two_point()
P_T = Label(TP, "public", "trusted")
P_U = Label(TP, "public", "untrusted")
S_T = Label(TP, "secret", "trusted")
S_U = Label(TP, "secret", "untrusted")

LAT = SecurityLattice(("a", "b", "c", "d"))
subsets = st.sets(st.sampled_from(["a", "b", "c", "d"])).map(frozenset)
labels = st.builds(lambda c, i: Label(LAT, c, i), subsets, subsets)


class TestPaperAnchors:
    def test_untrusted_cannot_declassify(self):
        """(S,U) cannot be declassified to (P,U) by an untrusted principal
        because S ⋢C P ⊔C r(U) = P — §2.4 verbatim."""
        assert not may_declassify(S_U, P_U, P_U)

    def test_trusted_can_declassify(self):
        assert may_declassify(S_U, P_U, P_T)
        assert may_declassify(S_T, P_T, P_T)

    def test_master_key_scenario(self):
        """§3.2.2: user key ck={u} ⊑C r(iu)={u} → allowed;
        master key ck=⊤ ⋢C r(iu) → rejected; supervisor allowed."""
        user = Label(LAT, ("a",), ("a",))
        user_ct = Label(LAT, ("a",), ("a",))   # (ck ⊔ cu, iu), own key
        master_ct = Label(LAT, "secret", ("a",))
        public_out = Label(LAT, "public", ("a",))
        supervisor = Label(LAT, "public", "trusted")

        assert may_declassify(user_ct, public_out, user)
        assert not may_declassify(master_ct, public_out, user)
        assert may_declassify(master_ct, bottom(LAT), supervisor)


class TestDeclassifyProperties:
    @given(labels, labels)
    def test_supervisor_can_always_declassify(self, data, target):
        assert may_declassify(data, target, secret_trusted(LAT))

    @given(labels, labels, labels)
    def test_allowed_when_already_flows(self, data, target, p):
        # if no confidentiality is actually dropped, any authority works
        if data.conf_flows_to(target):
            assert may_declassify(data, target, p)

    @given(labels, labels, labels)
    def test_monotone_in_authority_integrity(self, data, target, p):
        """A more trusted principal can declassify whatever a less trusted
        one can."""
        stronger = p.with_integ(LAT.full)
        if may_declassify(data, target, p):
            assert may_declassify(data, target, stronger)

    @given(labels, labels)
    def test_result_label(self, data, target):
        out = declassified(data, target)
        assert out.conf == target.conf
        # declassification never launders integrity
        assert not out.integ_flows_to(data.with_integ(LAT.full)) or True
        assert out.integ == LAT.integ_join(data.integ, target.integ)


class TestEndorseProperties:
    def test_verbatim_rule_two_point(self):
        """Eq. (1) literal: I(ℓ) ⊑I I(ℓ′) ⊔I r(C(p))."""
        # a public-channel principal: r(P) = U, so the bound is U — permits
        assert may_endorse(P_U, P_T, P_T)
        # a secret-channel principal: r(S) = T — the bound is I(ℓ′) itself
        assert not may_endorse(P_U, P_T, S_T)

    @given(labels, labels, labels)
    def test_allowed_when_already_flows(self, data, target, p):
        if data.integ_flows_to(target):
            assert may_endorse(data, target, p)

    @given(labels, labels)
    def test_result_label(self, data, target):
        out = endorsed(data, target)
        assert out.integ == target.integ
        assert out.conf == LAT.conf_join(data.conf, target.conf)


class TestCheckDowngrade:
    def test_declassify_ok_returns_none(self):
        assert check_downgrade("declassify", S_T, P_T, P_T) is None

    def test_declassify_violation_message(self):
        msg = check_downgrade("declassify", S_U, P_U, P_U)
        assert msg is not None
        assert "nonmalleable declassification rejected" in msg

    def test_endorse_violation_message(self):
        msg = check_downgrade("endorse", P_U, P_T, S_T)
        assert msg is not None and "endorsement" in msg

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            check_downgrade("launder", S_T, P_T, P_T)
        with pytest.raises(ValueError):
            downgraded_label("launder", S_T, P_T)

    def test_downgraded_label_dispatch(self):
        assert downgraded_label("declassify", S_U, P_U).conf == P_U.conf
        assert downgraded_label("endorse", P_U, P_T).integ == P_T.integ
