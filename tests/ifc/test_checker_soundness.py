"""Soundness cross-check: on randomly generated small designs, a static
PASS must imply no dynamic violations on random stimulus.

(The converse need not hold — the checker may conservatively reject
designs that happen to behave on the sampled inputs.)
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hdl import Module, Simulator, elaborate, mux, when
from repro.ifc.checker import IfcChecker
from repro.ifc.label import Label
from repro.ifc.lattice import two_point
from repro.ifc.tracker import LabelTracker

TP = two_point()
LABELS = [
    Label(TP, "public", "trusted"),
    Label(TP, "public", "untrusted"),
    Label(TP, "secret", "trusted"),
    Label(TP, "secret", "untrusted"),
]


def build_random_design(seed: int):
    """A random DAG of operations over four labelled inputs, with a
    randomly labelled register, memory, and output."""
    rng = random.Random(seed)
    m = Module("rand")
    pool = []
    for i in range(4):
        sig = m.input(f"i{i}", 8, label=rng.choice(LABELS))
        pool.append(sig)

    for i in range(rng.randrange(2, 7)):
        a, b = rng.choice(pool), rng.choice(pool)
        kind = rng.randrange(5)
        if kind == 0:
            expr = a ^ b
        elif kind == 1:
            expr = a + b
        elif kind == 2:
            expr = mux(a[0], a, b)
        elif kind == 3:
            expr = (a & b) | 1
        else:
            expr = a - b
        w = m.wire(f"w{i}", 8)
        w <<= expr
        pool.append(w)

    r = m.reg("r", 8, label=rng.choice(LABELS))
    with when(rng.choice(pool)[0]):
        r <<= rng.choice(pool)
    pool.append(r)

    mem = m.mem("mem", 4, 8, label=rng.choice(LABELS))
    with when(rng.choice(pool)[1]):
        mem.write(rng.choice(pool)[1:0], rng.choice(pool))
    mo = m.wire("mo", 8)
    mo <<= mem.read(rng.choice(pool)[1:0])
    pool.append(mo)

    out = m.output("out", 8, label=rng.choice(LABELS))
    out <<= rng.choice(pool)
    return m


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_static_pass_implies_dynamic_clean(seed):
    design = build_random_design(seed)
    report = IfcChecker(elaborate(design), TP).check()
    if not report.ok():
        return  # rejected designs carry no guarantee

    design2 = build_random_design(seed)  # fresh instance for simulation
    sim = Simulator(design2)
    tracker = LabelTracker(sim, TP)
    rng = random.Random(seed ^ 0xABCDEF)
    for _ in range(20):
        for i in range(4):
            sim.poke(f"rand.i{i}", rng.getrandbits(8))
        sim.step()
    assert tracker.ok(), (
        f"seed {seed}: checker passed but tracker found "
        f"{tracker.violations[:3]}"
    )


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_checker_is_deterministic(seed):
    r1 = IfcChecker(elaborate(build_random_design(seed)), TP).check()
    r2 = IfcChecker(elaborate(build_random_design(seed)), TP).check()
    assert r1.ok() == r2.ok()
    assert len(r1.errors) == len(r2.errors)
