"""The secure cache case study: behaviour, partition, and type check."""

import pytest

from repro.hdl import Simulator, elaborate
from repro.ifc.checker import IfcChecker
from repro.ifc.lattice import two_point
from repro.soc.secure_cache import SecureCache


@pytest.fixture()
def sim():
    return Simulator(SecureCache())


def refill(sim, way, index, tag, data):
    sim.poke("scache.refill", 1)
    sim.poke("scache.req", 0)
    sim.poke("scache.way", way)
    sim.poke("scache.index", index)
    sim.poke("scache.tag_in", tag)
    sim.poke("scache.data_in", data)
    sim.step()
    sim.poke("scache.refill", 0)


def lookup(sim, way, index, tag):
    sim.poke("scache.req", 1)
    sim.poke("scache.refill", 0)
    sim.poke("scache.way", way)
    sim.poke("scache.index", index)
    sim.poke("scache.tag_in", tag)
    return sim.peek("scache.hit"), sim.peek("scache.data_out")


class TestBehaviour:
    def test_hit_after_refill(self, sim):
        refill(sim, 0, 5, 0x1A2B3, 0xCAFE)
        assert lookup(sim, 0, 5, 0x1A2B3) == (1, 0xCAFE)

    def test_miss_on_wrong_tag(self, sim):
        refill(sim, 0, 5, 0x1A2B3, 0xCAFE)
        hit, _ = lookup(sim, 0, 5, 0x79999)
        assert hit == 0

    def test_miss_on_invalid_line(self, sim):
        hit, _ = lookup(sim, 0, 9, 0x1)
        assert hit == 0

    def test_ways_are_independent(self, sim):
        refill(sim, 0, 2, 0x111, 0xAAAA)
        refill(sim, 1, 2, 0x222, 0xBBBB)
        assert lookup(sim, 0, 2, 0x111) == (1, 0xAAAA)
        assert lookup(sim, 1, 2, 0x222) == (1, 0xBBBB)
        # cross-way tags never hit
        assert lookup(sim, 0, 2, 0x222)[0] == 0
        assert lookup(sim, 1, 2, 0x111)[0] == 0

    def test_untrusted_refill_never_touches_trusted_way(self, sim):
        refill(sim, 0, 7, 0x333, 0x1234)
        refill(sim, 1, 7, 0x444, 0x5678)
        assert lookup(sim, 0, 7, 0x333) == (1, 0x1234)

    def test_broken_variant_crosses_ways(self):
        sim = Simulator(SecureCache(broken=True))
        refill(sim, 1, 7, 0x444, 0x5678)
        # the flaw: the untrusted refill landed in way 0 as well
        assert lookup(sim, 0, 7, 0x444)[1] == 0x5678


class TestTypeCheck:
    def test_partition_verifies(self):
        lattice = two_point()
        report = IfcChecker(elaborate(SecureCache(lattice)), lattice).check()
        assert report.ok(), report.summary()

    def test_broken_variant_rejected_at_way1(self):
        lattice = two_point()
        report = IfcChecker(
            elaborate(SecureCache(lattice, broken=True)), lattice
        ).check()
        assert not report.ok()
        assert any(h.get("scache.way") == 1
                   for h in (e.hypothesis for e in report.errors))
        sinks = " ".join(report.distinct_sinks())
        assert "tags0" in sinks or "data0" in sinks
