"""Fig. 3's CacheTags example: simulation + the type-check result."""

from repro.hdl import Simulator, elaborate
from repro.ifc.checker import IfcChecker
from repro.ifc.lattice import two_point
from repro.soc.cache_tags import CacheTags


def _write(sim, way, index, value):
    sim.poke("cache_tags.we", 1)
    sim.poke("cache_tags.way", way)
    sim.poke("cache_tags.index", index)
    sim.poke("cache_tags.tag_i", value)
    sim.step()
    sim.poke("cache_tags.we", 0)


def _read(sim, way, index):
    sim.poke("cache_tags.we", 0)
    sim.poke("cache_tags.way", way)
    sim.poke("cache_tags.index", index)
    return sim.peek("cache_tags.tag_o")


class TestBehaviour:
    def test_ways_are_partitioned(self):
        sim = Simulator(CacheTags())
        _write(sim, 0, 10, 0x111)
        _write(sim, 1, 10, 0x222)
        assert _read(sim, 0, 10) == 0x111
        assert _read(sim, 1, 10) == 0x222

    def test_write_does_not_cross_ways(self):
        sim = Simulator(CacheTags())
        _write(sim, 1, 5, 0x7FFFF)
        assert _read(sim, 0, 5) == 0

    def test_broken_variant_crosses(self):
        sim = Simulator(CacheTags(broken=True))
        _write(sim, 1, 5, 0x7FFFF)
        assert _read(sim, 0, 5) == 0x7FFFF  # the flaw in action


class TestTypeCheck:
    def test_faithful_module_passes(self):
        lattice = two_point()
        report = IfcChecker(elaborate(CacheTags(lattice)), lattice).check()
        assert report.ok(), report.summary()

    def test_broken_module_rejected_with_hypothesis(self):
        lattice = two_point()
        report = IfcChecker(
            elaborate(CacheTags(lattice, broken=True)), lattice
        ).check()
        assert not report.ok()
        err = report.errors[0]
        assert "tag_0" in err.sink
        # the error names the dependent-label case that breaks: way == 1
        assert err.hypothesis.get("cache_tags.way") == 1
