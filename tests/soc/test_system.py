"""Multi-user SoC harness: provisioning, sharing, routing, isolation."""

import pytest

from repro.aes import encrypt_block
from repro.soc.requests import (
    Request,
    blocks_to_message,
    decrypt_stream,
    encrypt_stream,
    message_blocks,
    mixed_workload,
    random_blocks,
)
from repro.soc.system import SoCSystem
from repro.soc.users import default_principals, users_of


@pytest.fixture(scope="module")
def soc():
    s = SoCSystem(protected=True)
    s.provision_keys()
    return s


class TestPrincipals:
    def test_default_roster(self):
        p = default_principals()
        assert set(p) == {"alice", "bob", "charlie", "dave", "supervisor"}
        assert p["supervisor"].is_supervisor
        assert not p["alice"].is_supervisor
        assert len(users_of(p)) == 4

    def test_distinct_labels(self):
        p = default_principals()
        tags = {u.tag for u in p.values()}
        assert len(tags) == 5

    def test_slots(self):
        p = default_principals()
        assert p["alice"].slot == 1
        assert p["dave"].slot is None  # only three non-master slots


class TestWorkloads:
    def test_mixed_workload_interleaves(self):
        wl = mixed_workload([("alice", 1), ("bob", 2)], 3, seed=1)
        assert [r.user for r in wl[:4]] == ["alice", "bob", "alice", "bob"]
        assert len(wl) == 6

    def test_random_blocks_deterministic(self):
        assert random_blocks(4, seed=9) == random_blocks(4, seed=9)

    def test_message_block_roundtrip(self):
        msg = b"hello, accelerator world"
        blocks = message_blocks(msg)
        assert blocks_to_message(blocks, len(msg)) == msg

    def test_streams(self):
        enc = encrypt_stream("alice", 1, [1, 2])
        dec = decrypt_stream("bob", 2, [3])
        assert len(enc) == 2 and len(dec) == 1
        assert enc[0].latency is None


class TestSharing:
    def test_fine_grained_two_users(self, soc):
        wl = mixed_workload([("alice", 1), ("bob", 2)], 5, seed=11)
        soc.submit_all(wl)
        soc.drain()
        for name in ("alice", "bob"):
            results = [r for r in soc.results_for(name)]
            assert len(results) >= 5
            for req in results:
                key = soc.principals[req.user].key
                assert req.user == name  # routed to the owner
                assert req.result == encrypt_block(req.data, key)

    def test_latency_bounded(self, soc):
        wl = mixed_workload([("alice", 1)], 3, seed=13)
        before = {id(r) for n in soc.delivered for r in soc.delivered[n]}
        soc.submit_all(wl)
        soc.drain()
        fresh = [r for r in soc.results_for("alice") if id(r) not in before]
        for req in fresh:
            assert req.latency is not None
            assert 30 <= req.latency <= 60

    def test_counters_accessible(self, soc):
        counters = soc.counters()
        assert "suppressed_count" in counters


class TestBaselineDisclosure:
    @staticmethod
    def _misaligned_run(protected):
        """Alice's blocks are in flight while Bob starts polling — his
        polls land on cycles where Alice's responses present."""
        soc = SoCSystem(protected=protected)
        soc.provision_keys()
        soc.submit_all(encrypt_stream("alice", 1, random_blocks(4, 3)))
        soc.tick(6)
        soc.submit_all(encrypt_stream("bob", 2, random_blocks(1, 4)))
        soc.drain()
        return [
            (reader, req.user)
            for reader in ("alice", "bob")
            for req in soc.results_for(reader)
            if req.user != reader
        ]

    def test_baseline_leaks_across_readers(self):
        assert self._misaligned_run(False), (
            "baseline should hand Alice's blocks to Bob's polls"
        )

    def test_protected_never_crosses_readers(self):
        assert self._misaligned_run(True) == []
