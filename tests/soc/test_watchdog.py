"""SoC robustness layer: watchdog, retry/backoff, quarantine, terminal status.

The regression this file pins (satellite of the fault-injection PR): a
request that never completes must end in a terminal status — never left
dangling as ``issued`` — whether it was dropped by the holding buffer,
timed out past its deadline, or rejected on the degraded path.
"""

import pytest

from repro.faults.plan import Fault, FaultKind, FaultPlan
from repro.soc.requests import TERMINAL_STATUSES, Request, encrypt_stream
from repro.soc.system import SoCSystem

HANG = "aes.advance"  # stuck-at-0 here freezes the protected pipeline


def _hang_plan(cycle, duration=10 ** 6):
    return FaultPlan([Fault(HANG, FaultKind.STUCK_AT_0, 1,
                            cycle=cycle, duration=duration)])


def _soc(**kw):
    soc = SoCSystem(protected=True, fault_targets=[HANG], **kw)
    soc.provision_keys()
    return soc


class TestHealthyPath:
    def test_no_watchdog_overhead_when_disabled(self):
        soc = _soc()
        reqs = encrypt_stream("alice", 1, [1 << 64, 2 << 64])
        soc.submit_all(reqs)
        soc.drain()
        assert all(r.status == "delivered" for r in reqs)
        assert all(r.attempts == 1 for r in reqs)
        assert soc.watchdog_trips == 0

    def test_deadline_generous_enough_never_trips(self):
        soc = _soc(request_deadline=2000)
        reqs = encrypt_stream("alice", 1, [3 << 64])
        soc.submit_all(reqs)
        soc.drain()
        assert reqs[0].status == "delivered"
        assert soc.watchdog_trips == 0


class TestWatchdogRetry:
    def test_transient_hang_recovers_by_retry(self):
        """A hang shorter than the retry backoff clears; the retried
        request completes on the same accelerator (no quarantine)."""
        soc = _soc(request_deadline=60, max_retries=3,
                   retry_base_delay=64, retry_jitter=8,
                   quarantine_threshold=50)
        soc.driver.sim.load_fault_plan(
            _hang_plan(soc.driver.sim.cycle + 4, duration=90))
        reqs = encrypt_stream("alice", 1, [5 << 64])
        soc.submit_all(reqs)
        soc.drain(max_cycles=6000)
        assert reqs[0].status == "delivered"
        assert reqs[0].attempts > 1
        assert soc.watchdog_trips >= 1
        assert soc.quarantines == 0

    def test_backoff_is_deterministic_per_seed(self):
        def trace(seed):
            soc = _soc(request_deadline=40, max_retries=2,
                       retry_base_delay=16, retry_jitter=8,
                       retry_seed=seed, quarantine_threshold=100)
            soc.driver.sim.load_fault_plan(_hang_plan(4))
            reqs = encrypt_stream("alice", 1, [6 << 64])
            soc.submit_all(reqs)
            soc.drain(max_cycles=4000)
            return reqs[0].status, soc.watchdog_trips

        assert trace(11) == trace(11)

    def test_retry_budget_exhaustion_is_terminal(self):
        soc = _soc(request_deadline=40, max_retries=1,
                   retry_base_delay=8, retry_jitter=0,
                   quarantine_threshold=100)
        soc.driver.sim.load_fault_plan(_hang_plan(4))
        reqs = encrypt_stream("alice", 1, [7 << 64])
        soc.submit_all(reqs)
        soc.drain(max_cycles=4000)
        assert reqs[0].status == "timed_out"
        assert reqs[0] in soc.timed_out_requests
        assert reqs[0].is_terminal


class TestQuarantine:
    def test_spare_failover_redelivers(self):
        soc = _soc(request_deadline=120, max_retries=2,
                   quarantine_threshold=2)
        soc.driver.sim.load_fault_plan(_hang_plan(5))
        reqs = encrypt_stream("alice", 1, [0x11 << 96, 0x22 << 96])
        soc.submit_all(reqs)
        soc.drain(max_cycles=8000)
        assert soc.quarantines == 1
        assert soc.spares_used == 1
        assert all(r.status == "delivered" for r in reqs)
        assert any(r.attempts > 1 for r in reqs)
        # spare is a fresh provisioned accelerator: results must be correct
        from repro.aes.cipher import encrypt_block
        alice = soc.principals["alice"]
        for r in reqs:
            assert r.result == encrypt_block(r.data, alice.key)

    def test_spare_exhaustion_then_queued_reject(self):
        """First quarantine burns the only spare; when the spare wedges
        too, the second quarantine must degrade to queued-reject instead
        of pretending a third accelerator exists."""
        soc = _soc(request_deadline=120, max_retries=2,
                   quarantine_threshold=2, max_spares=1)
        soc.driver.sim.load_fault_plan(_hang_plan(5))
        first = encrypt_stream("alice", 1, [0x66 << 96, 0x67 << 96])
        soc.submit_all(first)
        soc.drain(max_cycles=8000)
        assert soc.quarantines == 1
        assert soc.spares_used == 1
        assert all(r.status == "delivered" for r in first)
        # the spare wedges as well: no spare remains for the next ones
        soc.driver.sim.load_fault_plan(
            _hang_plan(soc.driver.sim.cycle + 5))
        second = encrypt_stream("alice", 1, [0x77 << 96, 0x78 << 96])
        soc.submit_all(second)
        soc.drain(max_cycles=8000)
        assert soc.quarantines == 2
        assert soc.quarantined
        assert all(r.status == "rejected" for r in second)
        assert second[0] in soc.rejected_requests
        late = Request("alice", second[0].cmd, 1, 0x88)
        soc.submit(late)
        assert late.status == "rejected"
        for req in soc.all_requests:
            assert req.is_terminal

    def test_quarantine_during_backoff_keeps_invariant(self):
        """A request sitting out a retry backoff when quarantine fires
        (no spare) must still land terminal — the quarantine drain walks
        the retry backlog, not just the in-flight list."""
        soc = _soc(request_deadline=50, max_retries=3,
                   retry_base_delay=400, retry_jitter=0,
                   quarantine_threshold=2, max_spares=0)
        soc.driver.sim.load_fault_plan(_hang_plan(5))
        reqs = encrypt_stream("alice", 1, [0xAA << 96, 0xBB << 96])
        soc.submit_all(reqs)
        soc.drain(max_cycles=8000)
        assert soc.quarantines == 1
        assert soc.quarantined
        # the 400-cycle backoff dwarfs the 50-cycle deadline, so the
        # tripped requests were necessarily in the backlog at quarantine
        assert any(r.retries > 0 for r in reqs)
        for req in soc.all_requests:
            assert req.is_terminal, (
                f"{req} left non-terminal: {req.status!r}")
        assert all(r.status == "rejected" for r in reqs)

    def test_no_spare_degrades_to_queued_reject(self):
        soc = _soc(request_deadline=80, max_retries=0,
                   quarantine_threshold=1, max_spares=0)
        soc.driver.sim.load_fault_plan(_hang_plan(5))
        reqs = encrypt_stream("bob", 2, [0x33 << 96, 0x44 << 96])
        soc.submit_all(reqs)
        soc.drain(max_cycles=8000)
        assert soc.quarantined
        assert all(r.is_terminal for r in reqs)
        late = Request("bob", reqs[0].cmd, 2, 0x55)
        soc.submit(late)
        assert late.status == "rejected"
        assert late in soc.rejected_requests


class TestTerminalStatusInvariant:
    """Satellite regression: nothing dangles as ``issued`` after drain."""

    @pytest.mark.parametrize("hang_duration", [90, 10 ** 6])
    def test_every_submitted_request_ends_terminal(self, hang_duration):
        soc = _soc(request_deadline=70, max_retries=1,
                   retry_base_delay=32, quarantine_threshold=2,
                   max_spares=1)
        soc.driver.sim.load_fault_plan(_hang_plan(5, duration=hang_duration))
        soc.submit_all(encrypt_stream("alice", 1, [1, 2]))
        soc.submit_all(encrypt_stream("bob", 2, [3, 4]))
        soc.drain(max_cycles=10000)
        assert soc.all_requests, "harness error: nothing submitted"
        for req in soc.all_requests:
            assert req.is_terminal, (
                f"{req} left non-terminal: {req.status!r}")
            assert req.status in TERMINAL_STATUSES

    def test_dropped_requests_record_status(self):
        """Baseline drop path (pre-existing) must also stamp a status."""
        soc = SoCSystem(protected=True)
        soc.provision_keys()
        req = encrypt_stream("alice", 1, [9 << 64])[0]
        soc.submit(req)
        # steal the response by never letting any reader poll it ready:
        # force out_ready low so the holding buffer ages the block out
        soc.tick(2)
        soc._drop([r for r in soc.in_flight])
        assert all(r.status == "dropped" for r in soc.dropped_requests)
        assert all(r.is_terminal for r in soc.dropped_requests)
