"""Traffic generation and chaos scheduling: seeded, replayable, bounded."""

import pytest

from repro.faults.plan import Fault, FaultPlan
from repro.soc.chaos import ChaosSchedule, HANG_TARGET, wedge_plan_dict
from repro.soc.traffic import (
    CLASS_WEIGHTS,
    TENANT_CLASSES,
    TenantSpec,
    default_tenants,
    generate_trace,
)


class TestTenants:
    def test_default_population_shape(self):
        specs = default_tenants(6, seed=0)
        assert [s.tenant_class for s in specs] == [
            "gold", "silver", "bronze", "gold", "silver", "bronze"]
        assert sum(1 for s in specs if s.adversarial) == 1
        assert all(s.key is not None for s in specs)
        assert len({s.key for s in specs}) == 6

    def test_keys_deterministic_per_seed(self):
        a = [s.key for s in default_tenants(4, seed=3)]
        b = [s.key for s in default_tenants(4, seed=3)]
        c = [s.key for s in default_tenants(4, seed=4)]
        assert a == b
        assert a != c

    def test_priority_and_weight_follow_class(self):
        for i, cls in enumerate(TENANT_CLASSES):
            spec = TenantSpec("x", cls)
            assert spec.priority == i
            assert spec.weight == CLASS_WEIGHTS[cls]

    def test_unknown_class_rejected(self):
        with pytest.raises(ValueError):
            TenantSpec("x", "platinum")


class TestTraceGeneration:
    def test_same_seed_identical_digest(self):
        specs = default_tenants(4, seed=1)
        a = generate_trace(specs, 1024, seed=99)
        b = generate_trace(specs, 1024, seed=99)
        assert a.digest() == b.digest()
        assert len(a) == len(b)

    def test_different_seed_differs(self):
        specs = default_tenants(4, seed=1)
        a = generate_trace(specs, 1024, seed=99)
        b = generate_trace(specs, 1024, seed=100)
        assert a.digest() != b.digest()

    def test_arrivals_sorted_and_in_horizon(self):
        trace = generate_trace(default_tenants(4, seed=1), 512, seed=5)
        cycles = [a.cycle for a in trace.arrivals]
        assert cycles == sorted(cycles)
        assert all(0 <= c < 512 for c in cycles)

    def test_per_tenant_streams_independent(self):
        """Adding a tenant must not perturb existing tenants' schedules
        (each tenant draws from its own (seed, name) RNG stream)."""
        specs = default_tenants(4, seed=1)
        small = generate_trace(specs[:2], 1024, seed=7)
        big = generate_trace(specs, 1024, seed=7)

        def mine(trace, name):
            return [(a.cycle, a.data) for a in trace.arrivals
                    if a.tenant == name]

        for spec in specs[:2]:
            assert mine(small, spec.name) == mine(big, spec.name)

    def test_rate_scales_arrival_count(self):
        fast = TenantSpec("fast", "gold", rate=20.0)
        slow = TenantSpec("slow", "gold", rate=2.0)
        trace = generate_trace([fast, slow], 4096, seed=11)
        counts = trace.per_tenant_counts()
        assert counts["fast"] > 2 * counts["slow"]


class TestChaosSchedule:
    def test_seeded_schedule_deterministic(self):
        a = ChaosSchedule.seeded(5, rounds=24, shards=4)
        b = ChaosSchedule.seeded(5, rounds=24, shards=4)
        assert a.to_dict() == b.to_dict()
        assert ChaosSchedule.seeded(6, rounds=24, shards=4).to_dict() \
            != a.to_dict()

    def test_kills_hit_distinct_shards_wedge_elsewhere(self):
        sched = ChaosSchedule.seeded(9, rounds=30, shards=4,
                                     kills=2, wedges=1)
        kill_shards = [e.shard for e in sched.kills()]
        wedge_shards = {e.shard for e in sched.wedges()}
        assert len(kill_shards) == len(set(kill_shards)) == 2
        assert wedge_shards and not wedge_shards & set(kill_shards)

    def test_events_in_middle_of_run(self):
        sched = ChaosSchedule.seeded(3, rounds=30, shards=4)
        for e in sched.events:
            assert 30 // 5 <= e.round < (4 * 30) // 5

    def test_counts_clamped_for_tiny_fleets(self):
        sched = ChaosSchedule.seeded(1, rounds=20, shards=2,
                                     kills=2, wedges=1)
        assert len(sched.kills()) == 1  # one shard must survive for wedge
        assert len(sched.wedges()) == 1

    def test_wedge_plan_roundtrips_into_fault_plan(self):
        plan_dict = wedge_plan_dict(duration=500)
        plan = FaultPlan([Fault(**f) for f in plan_dict["faults"]])
        assert len(plan) == 1
        fault = plan.faults[0]
        assert fault.target == HANG_TARGET
        assert fault.duration == 500
        shifted = plan.shifted(100)
        assert shifted.faults[0].cycle == 100
