"""Fleet supervisor: admission, DRR, chaos recovery, conservation.

Inline workers keep these tests in-process (deterministic and fast);
the process-worker path is exercised by the ``python -m repro fleet``
CI gate itself.
"""

from repro.accel.common import CMD_ENCRYPT
from repro.soc.chaos import ChaosSchedule
from repro.soc.fleet import (
    AcceleratorFleet,
    FleetConfig,
    SEATS,
    run_fleet_gate,
)
from repro.soc.requests import TERMINAL_STATUSES
from repro.soc.traffic import default_tenants, generate_trace


def _fleet(shards=2, tenants=4, seed=1, **kw):
    cfg = FleetConfig(shards=shards, workers="inline", **kw)
    specs = default_tenants(tenants, seed=seed)
    return AcceleratorFleet(cfg, specs, seed=seed)


class TestAdmissionControl:
    def test_sheds_lowest_priority_first(self):
        fleet = _fleet(queue_bound=2)
        # t2 is bronze (lowest class); t0 is gold
        for i in range(2):
            fleet._admit(0, "t2", CMD_ENCRYPT, i)
        for i in range(2):
            fleet._admit(0, "t0", CMD_ENCRYPT, 16 + i)
        fleet._admit(0, "t0", CMD_ENCRYPT, 99)  # gold over its bound
        assert fleet.shed == 1
        rejected = [r for r in fleet.requests if r.status == "rejected"]
        assert [r.tenant for r in rejected] == ["t2"]
        assert len(fleet.queues["t0"]) == 3
        assert len(fleet.queues["t2"]) == 1

    def test_lowest_priority_incomer_sheds_itself(self):
        fleet = _fleet(queue_bound=1)
        fleet._admit(0, "t2", CMD_ENCRYPT, 1)
        fleet._admit(0, "t2", CMD_ENCRYPT, 2)  # bronze over bound: itself
        assert fleet.shed == 1
        assert len(fleet.queues["t2"]) == 1
        assert fleet.requests[-1].status == "rejected"

    def test_nothing_is_silently_dropped(self):
        fleet = _fleet(queue_bound=1)
        for i in range(8):
            fleet._admit(0, "t2", CMD_ENCRYPT, i)
        statuses = {r.status for r in fleet.requests}
        assert statuses <= {"queued", "rejected"}
        assert len(fleet.requests) == 8


class TestFleetServing:
    def test_calm_run_delivers_everything(self):
        report = run_fleet_gate(seed=21, shards=2, horizon=384, tenants=4,
                                workers="inline", kills=0, wedges=0,
                                check_ifc=False)
        d = report.to_dict()
        assert d["conservation_ok"]
        assert d["totals"]["by_status"] == {
            "delivered": d["totals"]["requests"]}
        assert d["security"]["cross_user_deliveries"] == 0
        assert d["security"]["unverified_deliveries"] == 0
        assert report.ok()

    def test_more_tenants_than_seats_on_one_shard(self):
        """Six tenants multiplex over one shard's three key slots."""
        report = run_fleet_gate(seed=23, shards=1, horizon=384, tenants=6,
                                workers="inline", kills=0, wedges=0,
                                check_ifc=False)
        d = report.to_dict()
        assert len(d["per_tenant"]) == 6 > len(SEATS)
        assert d["conservation_ok"]
        # every tenant is served; a single shard under bursts may shed,
        # but only from the lowest service class, and nothing vanishes
        for t in d["per_tenant"].values():
            assert t["delivered"] + t["rejected"] + t["timed_out"] \
                == t["submitted"]
            assert t["delivered"] > 0
            if t["rejected"]:
                assert t["slo_class"] in ("bronze", "adversarial")

    def test_kill_recovery_conserves_requests(self):
        report = run_fleet_gate(seed=31, shards=2, horizon=512, tenants=4,
                                workers="inline", kills=1, wedges=0,
                                check_ifc=False)
        d = report.to_dict()
        sup = d["supervisor"]
        assert sup["kills_detected"] >= 1
        assert sup["respawns"] >= 1
        assert sup["rebalances"] >= 1
        assert d["conservation_ok"]
        assert sup["forced_terminal"] == 0

    def test_wedge_is_quarantined_and_drained(self):
        report = run_fleet_gate(seed=37, shards=2, horizon=512, tenants=4,
                                workers="inline", kills=0, wedges=1,
                                check_ifc=False)
        sup = report.to_dict()["supervisor"]
        assert sup["wedges_detected"] >= 1
        assert sup["quarantines"] >= 1
        assert report.to_dict()["conservation_ok"]

    def test_terminal_status_invariant_under_chaos(self):
        cfg = FleetConfig(shards=2, workers="inline")
        specs = default_tenants(4, seed=41)
        trace = generate_trace(specs, 512, seed=41)
        chaos = ChaosSchedule.seeded(41, rounds=8, shards=2,
                                     kills=1, wedges=1)
        fleet = AcceleratorFleet(cfg, specs, seed=41)
        fleet.run(trace, chaos)
        assert fleet.requests
        for req in fleet.requests:
            assert req.status in TERMINAL_STATUSES, (
                f"{req} left non-terminal")

    def test_gate_verdict_fails_on_missed_kill(self):
        """chaos_ok demands every injected kill be detected."""
        report = run_fleet_gate(seed=21, shards=2, horizon=384, tenants=4,
                                workers="inline", kills=0, wedges=0,
                                check_ifc=False)
        assert report.chaos_ok
        report.kills_injected = 5  # pretend more chaos was scheduled
        recomputed = (report.supervisor["kills_detected"] >= 5)
        assert not recomputed
