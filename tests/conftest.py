"""Shared fixtures: expensive design builds are session-scoped."""

import pytest

from repro.accel.baseline import AesAcceleratorBaseline
from repro.accel.common import LATTICE
from repro.accel.driver import AcceleratorDriver, make_users
from repro.accel.protected import AesAcceleratorProtected
from repro.ifc.lattice import two_point


@pytest.fixture(scope="session")
def lattice():
    return LATTICE


@pytest.fixture(scope="session")
def tp_lattice():
    return two_point()


@pytest.fixture(scope="session")
def users():
    return make_users()


@pytest.fixture()
def protected_driver():
    """A fresh protected accelerator driver (builds in ~0.2 s)."""
    return AcceleratorDriver(AesAcceleratorProtected())


@pytest.fixture()
def baseline_driver():
    return AcceleratorDriver(AesAcceleratorBaseline())
