"""Fig. 3 — ChiselFlow's dependent-label CacheTags, type-checked.

Benchmarks the static check of the module (the designer-facing cost of
the methodology)."""

from conftest import report

from repro.eval.figures import fig3_cache_tags


def test_fig3_typecheck(benchmark):
    good, bad = benchmark.pedantic(fig3_cache_tags, iterations=1, rounds=3)
    lines = [
        f"faithful transcription: {'PASS' if good.ok() else 'FAIL'} "
        f"({good.hypotheses_examined} cases examined)",
        f"cross-way-write variant: {len(bad.errors)} label error(s):",
    ]
    lines += [f"  {e!r}" for e in bad.errors[:3]]
    report("Fig. 3 — cache tags with dependent labels", "\n".join(lines))
    assert good.ok()
    assert not bad.ok()
