"""§5 — the alternative enforcement path: information-flow *tracking*
logic (GLIFT/RTLIFT) instead of a security-typed HDL.

Bit-precise taint is seeded on Alice's key cells; the trace-buffer
attack scenario then runs on both designs.  On the baseline, key-tainted
bits reach the debug port the attacker reads (the tracking logic would
raise the alarm at runtime); on the protected design the gated readout
keeps the port taint-free.
"""

from conftest import report

from repro.accel.baseline import AesAcceleratorBaseline
from repro.accel.common import user_label
from repro.accel.config_regs import CFG_FEATURES, FEATURE_DEBUG_EN, FEATURE_OUTBUF_EN
from repro.accel.driver import AcceleratorDriver
from repro.accel.protected import AesAcceleratorProtected
from repro.ifc.glift import GliftTracker

ALICE_KEY = 0x2B7E151628AED2A6ABF7158809CF4F3C
FULL = (1 << 64) - 1


def _run(protected: bool) -> int:
    accel = AesAcceleratorProtected() if protected else AesAcceleratorBaseline()
    drv = AcceleratorDriver(accel)
    alice = user_label("p0").encode()
    eve = user_label("p1").encode()
    tracker = GliftTracker(drv.sim, {})

    if protected:
        drv.allocate_slot(1, alice)
    drv.load_key(alice, 1, ALICE_KEY)
    # seed taint on the loaded key: scratchpad cells and round keys
    cells = drv.sim._resolve_mem(f"{drv.top}.scratchpad.cells")
    tracker.mem_taint[cells][2] = FULL
    tracker.mem_taint[cells][3] = FULL
    for i in range(11):
        rk = drv.sim._resolve_mem(f"{drv.top}.pipe.keyexp.rk_mem_1")
        tracker.mem_taint[rk][i] = (1 << 128) - 1

    # the attack: tracing on, Alice encrypts, Eve reads the trace
    sup_or_eve = eve  # baseline lets Eve flip the switch herself
    drv.write_config(sup_or_eve, CFG_FEATURES,
                     FEATURE_OUTBUF_EN | FEATURE_DEBUG_EN)
    if protected:
        from repro.accel.common import supervisor_label

        drv.write_config(supervisor_label().encode(), CFG_FEATURES,
                         FEATURE_OUTBUF_EN | FEATURE_DEBUG_EN)
    drv.set_reader(alice)
    drv.encrypt_blocking(alice, 1, 0x00112233445566778899AABBCCDDEEFF,
                         max_cycles=60)

    drv.sim.poke(f"{drv.top}.rd_user", eve)
    drv.sim.poke(f"{drv.top}.in_addr", 0)
    tracker.refresh()
    worst = 0
    for entry in range(4):
        drv.sim.poke(f"{drv.top}.in_addr", entry)
        tracker.refresh()
        worst = max(worst,
                    bin(tracker.taint_of(f"{drv.top}.dbg_data")).count("1"))
    return worst


def test_glift_debug_port(benchmark):
    tainted_bits = benchmark.pedantic(
        lambda: {"baseline": _run(False), "protected": _run(True)},
        iterations=1, rounds=1,
    )
    report(
        "§5 — GLIFT tracking logic on the trace-buffer attack",
        f"key-tainted bits visible on the debug port read by the attacker:\n"
        f"  baseline : {tainted_bits['baseline']} / 128\n"
        f"  protected: {tainted_bits['protected']} / 128\n"
        "(runtime tracking raises the same alarm the static checker "
        "raised at design time)",
    )
    assert tainted_bits["baseline"] > 100
    assert tainted_bits["protected"] == 0
