"""Fig. 7 — per-stage tags enable fine-grained sharing.

Benchmarks the interleaved two-user workload on the protected SoC and
prints the fine- vs coarse-grained cycle counts (the intro's motivation:
coarse-grained sharing drains and refills the pipeline per switch)."""

from conftest import report

from repro.eval.figures import fig7_sharing


def test_fig7_fine_grained_sharing(benchmark):
    result = benchmark.pedantic(
        fig7_sharing, kwargs={"blocks_per_user": 8}, iterations=1, rounds=1
    )
    report(
        "Fig. 7 — fine-grained sharing with per-stage security tags",
        f"fine-grained (tags in flight): {result.fine_cycles} cycles for "
        f"{result.blocks} blocks from {result.users} users\n"
        f"coarse-grained (drain per switch): {result.coarse_cycles} cycles\n"
        f"speedup: {result.speedup:.1f}x; all outputs correct and "
        f"correctly routed: {result.all_correct}",
    )
    assert result.all_correct
    assert result.speedup > 3.0
