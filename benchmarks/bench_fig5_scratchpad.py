"""Fig. 5 — the tagged key scratchpad vs the buffer overrun.

Benchmarks the full attack scenario (provision, overrun, victim
encryption, attacker decryption attempt) on the protected design."""

from conftest import report

from repro.attacks.buffer_overflow import run_overflow_attack


def test_fig5_overflow(benchmark):
    protected = benchmark.pedantic(
        run_overflow_attack, args=(True,), iterations=1, rounds=1
    )
    baseline = run_overflow_attack(False)
    report(
        "Fig. 5 — key scratchpad buffer overrun",
        f"baseline : {baseline!r}\n"
        f"protected: {protected!r}\n"
        "paper    : any buffer overwrite or overread error causes an\n"
        "           information flow violation and is prevented",
    )
    assert baseline.overwritten and baseline.eve_recovers_plaintext
    assert not protected.overwritten
    assert not protected.eve_recovers_plaintext
    assert protected.blocked_count >= 2
