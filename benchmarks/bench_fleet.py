"""Fleet scaling benchmark: goodput vs shard count on one fixed trace.

Replays the identical open-loop traffic trace against 1-, 2-, and
4-shard fleets (inline workers, no chaos) and exports each fleet's
**round throughput** — delivered requests per supervisor round — plus
the 1→4 shard scaling factor.  Admission is capped per shard per round,
so a fleet that shards well must drain the same load in proportionally
fewer rounds; the history ledger flags erosion of that scaling (e.g. a
scheduler change that serializes dispatch).

The PR's acceptance claim, held as a benchmark invariant: 4 shards
sustain at least 2.5x the single-shard goodput on this trace.
"""

import random
import time
from pathlib import Path

from conftest import report

from repro.obs import MetricsRegistry
from repro.soc.fleet import AcceleratorFleet, FleetConfig
from repro.soc.traffic import TenantSpec, generate_trace

BENCH_JSON = Path(__file__).resolve().parents[1] / "BENCH_fleet.json"
SEED = 2026
SHARD_COUNTS = (1, 2, 4)
HORIZON = 512


def _tenants():
    """A balanced population: 8 same-class tenants, no bursts, so the
    scaling measurement isolates shard parallelism from DRR skew."""
    rng = random.Random(SEED ^ 0x5EED)
    return [TenantSpec(f"g{i}", "gold", rate=40.0, burst=1,
                       key=rng.getrandbits(128))
            for i in range(8)]


def _run_all():
    specs = _tenants()
    trace = generate_trace(specs, HORIZON, seed=SEED)
    results = {}
    for shards in SHARD_COUNTS:
        cfg = FleetConfig(shards=shards, workers="inline",
                          batch_per_round=4, queue_bound=64,
                          request_deadline=6000, flush_rounds=200)
        fleet = AcceleratorFleet(cfg, specs, seed=SEED)
        rep = fleet.run(trace).to_dict()
        results[shards] = {
            "delivered": rep["totals"]["by_status"].get("delivered", 0),
            "requests": rep["totals"]["requests"],
            "rounds": rep["supervisor"]["rounds_run"],
            "conservation_ok": rep["conservation_ok"],
        }
    return trace, results


def test_fleet_shard_scaling(benchmark):
    t0 = time.perf_counter()
    trace, results = benchmark.pedantic(_run_all, iterations=1, rounds=1)
    wall = time.perf_counter() - t0

    throughput = {n: r["delivered"] / r["rounds"]
                  for n, r in results.items()}
    scaling = throughput[4] / throughput[1]
    report(
        "Fleet shard scaling — one trace, 1/2/4 shards",
        "\n".join(
            f"{n} shard(s): {r['delivered']}/{r['requests']} delivered "
            f"in {r['rounds']} rounds "
            f"({throughput[n]:.2f} req/round)"
            for n, r in sorted(results.items()))
        + f"\n1 -> 4 shard scaling: {scaling:.2f}x "
        f"(trace {trace.digest()}, {wall:.2f}s wall)",
    )

    reg = MetricsRegistry()
    g = reg.gauge("bench_fleet_round_throughput",
                  "requests delivered per supervisor round on the "
                  "fixed scaling trace", ("shards",))
    for n, tp in throughput.items():
        g.set(tp, shards=str(n))
    reg.gauge("bench_fleet_scaling_speedup",
              "1-shard to 4-shard round-throughput ratio "
              "(acceptance floor 2.5)").set(scaling)
    reg.gauge("bench_fleet_requests_total",
              "requests in the scaling trace").set(
        results[4]["requests"])
    reg.gauge("bench_fleet_campaign_seconds",
              "wall time for all three fleet runs").set(wall)
    reg.write_jsonl(str(BENCH_JSON))

    for n, r in results.items():
        assert r["conservation_ok"], f"{n}-shard run lost requests"
        assert r["delivered"] == r["requests"], (
            f"{n}-shard run failed to deliver everything")
    assert scaling >= 2.5, (
        f"4-shard goodput scaling {scaling:.2f}x below the 2.5x floor")
