"""Fig. 6 — a label error reveals a timing channel.

Benchmarks the static check of the (flawed) key-expansion unit — the
design-time detection the figure illustrates — and prints the measured
timing oracle for both units."""

from conftest import report

from repro.attacks.key_timing import distinguish_keys
from repro.eval.figures import fig6_label_error


def test_fig6_detection(benchmark):
    flawed, fixed = benchmark.pedantic(fig6_label_error, iterations=1, rounds=1)
    d_f, ca, cb = distinguish_keys(0, (1 << 128) - 1, protected=False)
    d_p, pa, pb = distinguish_keys(0, (1 << 128) - 1, protected=True)
    lines = [
        f"flawed unit : {len(flawed.errors)} label errors "
        f"(first: {flawed.errors[0]!r})" if flawed.errors else "none",
        f"fixed unit  : {'clean' if fixed.ok() else 'FAIL'}",
        f"timing oracle (flawed) : {ca} vs {cb} cycles "
        f"(distinguishable={d_f})",
        f"timing oracle (fixed)  : {pa} vs {pb} cycles "
        f"(distinguishable={d_p})",
    ]
    report("Fig. 6 — information leakage leads to a label error", "\n".join(lines))
    assert not flawed.ok() and fixed.ok()
    assert d_f and not d_p
