"""§4 performance — one block/cycle, 30-cycle latency, Gbps at the
modelled clock (paper: 51.2 Gbps @ 400 MHz).

Benchmarks the cycle-accurate streaming run itself, so the simulator's
blocks-per-second rate shows up in the pytest-benchmark table.
"""

from conftest import report

from repro.eval.table2 import measure_throughput


def test_pipeline_throughput(benchmark):
    result = benchmark.pedantic(
        measure_throughput, kwargs={"protected": True, "blocks": 64},
        iterations=1, rounds=2,
    )
    base = measure_throughput(protected=False, blocks=64)
    report(
        "§4 — pipeline performance",
        f"protected: {result!r}\n"
        f"baseline : {base!r}\n"
        f"paper    : 1 block/cycle, 30-cycle latency, 51.2 Gbps @ 400 MHz",
    )
    assert result.all_correct and base.all_correct
    assert result.blocks_per_cycle == 1.0
    assert 30 <= result.latency <= 33
    assert result.gbps > 35
