"""§4 performance — one block/cycle, 30-cycle latency, Gbps at the
modelled clock (paper: 51.2 Gbps @ 400 MHz).

Benchmarks the cycle-accurate streaming run itself, so the simulator's
blocks-per-second rate shows up in the pytest-benchmark table.
"""

from pathlib import Path

from conftest import report

from repro.eval.table2 import measure_throughput
from repro.obs import MetricsRegistry

BENCH_JSON = Path(__file__).resolve().parents[1] / "BENCH_throughput.json"


def test_pipeline_throughput(benchmark):
    result = benchmark.pedantic(
        measure_throughput, kwargs={"protected": True, "blocks": 64},
        iterations=1, rounds=2,
    )
    base = measure_throughput(protected=False, blocks=64)
    report(
        "§4 — pipeline performance",
        f"protected: {result!r}\n"
        f"baseline : {base!r}\n"
        f"paper    : 1 block/cycle, 30-cycle latency, 51.2 Gbps @ 400 MHz",
    )

    m = MetricsRegistry()
    labels = ("design",)
    bpc = m.gauge("bench_blocks_per_cycle", "streaming rate", labels)
    lat = m.gauge("bench_latency_cycles", "block latency", labels)
    gbps = m.gauge("bench_gbps", "Gbps at the modelled 400 MHz clock", labels)
    for design, r in (("protected", result), ("baseline", base)):
        bpc.set(r.blocks_per_cycle, design=design)
        lat.set(r.latency, design=design)
        gbps.set(r.gbps, design=design)
    m.write_jsonl(str(BENCH_JSON))

    assert result.all_correct and base.all_correct
    assert result.blocks_per_cycle == 1.0
    assert 30 <= result.latency <= 33
    assert result.gbps > 35
