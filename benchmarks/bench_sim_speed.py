"""Infrastructure benchmark: cycles/second of the two simulator backends
on the full protected accelerator (the compiled backend is what makes
the cycle-accurate experiments practical)."""

import pytest
from conftest import report

from repro.accel.common import CMD_ENCRYPT, user_label
from repro.accel.protected import AesAcceleratorProtected
from repro.hdl.sim import Simulator

CYCLES = 200


def _run(backend: str) -> None:
    sim = Simulator(AesAcceleratorProtected(), backend=backend)
    sim.poke("aes.in_valid", 1)
    sim.poke("aes.in_cmd", CMD_ENCRYPT)
    sim.poke("aes.in_user", user_label("p0").encode())
    sim.poke("aes.in_slot", 1)
    sim.poke("aes.in_data", 0x1234)
    sim.poke("aes.out_ready", 1)
    sim.step(CYCLES)


@pytest.mark.parametrize("backend", ["compiled"])
def test_simulation_speed(benchmark, backend):
    benchmark.pedantic(_run, args=(backend,), iterations=1, rounds=2)
    report("Simulator speed",
           f"{CYCLES} cycles of the full protected accelerator "
           f"({backend} backend); see the benchmark table for cycles/s.")
