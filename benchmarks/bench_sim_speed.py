"""Infrastructure benchmark: cycles/second of the simulator backends on
the full protected accelerator.

The compiled backend is what makes the cycle-accurate experiments
practical; the batched backend amortises Python dispatch over numpy
lanes, so its figure of merit is *lane-cycles/s* (cycles × lanes per
second) — at 64 lanes it must beat the compiled backend's per-instance
rate by at least 5×.
"""

import os
import time
from pathlib import Path

import pytest
from conftest import report

from repro.accel.common import CMD_ENCRYPT, user_label
from repro.accel.protected import AesAcceleratorProtected
from repro.hdl.elaborate import elaborate
from repro.hdl.sim import Simulator
from repro.obs import MetricsRegistry

CYCLES = 200
BATCH_LANES = (1, 8, 64)
MIN_BATCH_SPEEDUP = 5.0
BENCH_JSON = Path(__file__).resolve().parents[1] / "BENCH_sim.json"


def _make_sim(backend: str, lanes: int = 1) -> Simulator:
    sim = Simulator(AesAcceleratorProtected(), backend=backend, lanes=lanes)
    sim.poke("aes.in_valid", 1)
    sim.poke("aes.in_cmd", CMD_ENCRYPT)
    sim.poke("aes.in_user", user_label("p0").encode())
    sim.poke("aes.in_slot", 1)
    sim.poke("aes.in_data", 0x1234)
    sim.poke("aes.out_ready", 1)
    return sim


def _run(backend: str, lanes: int = 1) -> None:
    _make_sim(backend, lanes).step(CYCLES)


def _lane_cycles_per_s(backend: str, lanes: int, rounds: int = 3) -> float:
    """Best-of-N rate; constructed once so codegen stays out of the loop."""
    sim = _make_sim(backend, lanes)
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        sim.step(CYCLES)
        best = min(best, time.perf_counter() - t0)
    return CYCLES * lanes / best


@pytest.mark.parametrize("backend,lanes", [("compiled", 1)]
                         + [("batched", n) for n in BATCH_LANES])
def test_simulation_speed(benchmark, backend, lanes):
    benchmark.pedantic(_run, args=(backend, lanes), iterations=1, rounds=2)
    report("Simulator speed",
           f"{CYCLES} cycles of the full protected accelerator "
           f"({backend} backend, lanes={lanes}); the benchmark table is "
           f"per-call — divide {CYCLES} × lanes by it for lane-cycles/s.")


def test_batched_speedup_over_compiled():
    """Batched @ 64 lanes must deliver ≥5× the compiled backend's rate."""
    pytest.importorskip("numpy")
    # warm the compile caches so both measurements are pure stepping
    nl = elaborate(AesAcceleratorProtected())
    Simulator(nl, backend="compiled")
    Simulator(nl, backend="batched", lanes=max(BATCH_LANES))

    compiled_rate = _lane_cycles_per_s("compiled", 1)
    rates = {n: _lane_cycles_per_s("batched", n) for n in BATCH_LANES}
    top = max(BATCH_LANES)
    ratio = rates[top] / compiled_rate

    lines = [f"compiled           : {compiled_rate:10.0f} cycles/s"]
    for n in BATCH_LANES:
        lines.append(f"batched lanes={n:<4} : {rates[n]:10.0f} lane-cycles/s "
                     f"({rates[n] / compiled_rate:5.2f}x)")
    lines.append(f"speedup @ {top} lanes: {ratio:.2f}x "
                 f"(floor {MIN_BATCH_SPEEDUP:.1f}x)")
    report("Batched backend throughput", "\n".join(lines))

    # export the rates through the metrics layer so CI can archive them
    m = MetricsRegistry()
    g = m.gauge("bench_sim_lane_cycles_per_second",
                "best-of-N simulation rate", ("backend", "lanes"))
    g.set(compiled_rate, backend="compiled", lanes="1")
    for n in BATCH_LANES:
        g.set(rates[n], backend="batched", lanes=str(n))
    m.gauge("bench_sim_batched_speedup",
            f"batched @ {top} lanes over compiled").set(ratio)
    m.write_jsonl(str(BENCH_JSON))

    if ratio < MIN_BATCH_SPEEDUP and os.environ.get("CI"):
        pytest.xfail(f"{ratio:.2f}x < {MIN_BATCH_SPEEDUP}x on a shared CI "
                     "runner (timing floors are only enforced locally)")
    assert ratio >= MIN_BATCH_SPEEDUP, (
        f"batched lanes={top} achieved only {ratio:.2f}x the compiled "
        f"backend ({rates[top]:.0f} vs {compiled_rate:.0f} cycles/s)"
    )
