"""Flow-explainer overhead: provenance ledger cost vs plain tracking.

The provenance ledger behind ``python -m repro obs flows`` rides inside
:class:`~repro.ifc.tracker.LabelTracker`'s per-cycle evaluation as
branches guarded by one ``provenance`` flag.  This benchmark exports the
explainer's headline numbers as gauges for the bench history ledger
(``python -m repro obs history``) and holds its core promise to a
number: switching the explainer *off* must give its cost back — a
tracker with provenance disabled has to step within 3 % of a plain
:class:`LabelTracker` (the pre-explainer fast path).
"""

import os
import time

import pytest
from conftest import report
from pathlib import Path

from repro.accel.common import CMD_ENCRYPT, LATTICE, user_label
from repro.accel.protected import AesAcceleratorProtected
from repro.hdl.sim import Simulator
from repro.ifc.tracker import LabelTracker
from repro.obs import MetricsRegistry

BENCH_JSON = Path(__file__).resolve().parents[1] / "BENCH_flows.json"
CYCLES = 60
ROUNDS = 6
MAX_DISABLED_OVERHEAD = 0.03  # a dormant explainer may cost at most 3 %


def _tracked_sim(provenance: bool):
    sim = Simulator(AesAcceleratorProtected(), backend="compiled")
    tracker = LabelTracker(sim, LATTICE, provenance=provenance,
                           window=8 if provenance else None)
    sim.poke("aes.in_valid", 1)
    sim.poke("aes.in_cmd", CMD_ENCRYPT)
    sim.poke("aes.in_user", user_label("p0").encode())
    sim.poke("aes.in_slot", 1)
    sim.poke("aes.in_data", 0x1234)
    sim.poke("aes.out_ready", 1)
    return sim, tracker


def _best_of_interleaved(a, b, rounds: int = ROUNDS):
    """Best-of-N for two paths, alternating every round so slow clock
    drift (thermal, noisy CI neighbours) hits both paths equally."""
    best_a = best_b = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        a()
        best_a = min(best_a, time.perf_counter() - t0)
        t0 = time.perf_counter()
        b()
        best_b = min(best_b, time.perf_counter() - t0)
    return best_a, best_b


def test_flow_explainer_overhead(benchmark):
    plain_sim, _plain = _tracked_sim(provenance=False)
    prov_sim, prov = _tracked_sim(provenance=True)

    def step_plain():
        for _ in range(CYCLES):
            plain_sim.step(1)

    def step_prov():
        for _ in range(CYCLES):
            prov_sim.step(1)

    step_plain()  # warm both paths once
    step_prov()
    t_prov, t_plain = _best_of_interleaved(step_prov, step_plain)
    benchmark.pedantic(step_prov, iterations=1, rounds=1)
    enabled_overhead = t_prov / t_plain - 1.0
    ledger_entries = len(prov.ledger)

    # now switch the explainer off on the same live tracker: the guard
    # branches go dormant and the ledger stops growing — stepping must
    # land back on the plain tracker's cost
    prov.provenance = False
    step_prov()  # warm the disabled path
    t_disabled, t_plain2 = _best_of_interleaved(step_prov, step_plain)
    disabled_overhead = t_disabled / t_plain2 - 1.0

    report(
        "Flow-explainer overhead — provenance ledger vs plain tracking",
        f"plain LabelTracker      : {CYCLES / t_plain:10.0f} cycles/s\n"
        f"explainer enabled       : {CYCLES / t_prov:10.0f} cycles/s "
        f"({enabled_overhead * 100:+.1f}%, "
        f"{ledger_entries} ledger entries live)\n"
        f"explainer disabled      : {CYCLES / t_disabled:10.0f} cycles/s "
        f"({disabled_overhead * 100:+.2f}%, "
        f"ceiling {MAX_DISABLED_OVERHEAD * 100:.0f}%)",
    )

    m = MetricsRegistry()
    m.gauge("bench_flows_explainer_overhead",
            "fractional per-cycle cost of the provenance ledger over a "
            "plain LabelTracker (explainer enabled, window=8)"
            ).set(enabled_overhead)
    m.gauge("bench_flows_disabled_overhead",
            "fractional per-cycle cost of a provenance-capable tracker "
            "after the explainer is switched off (must stay within the "
            "3% gate)").set(disabled_overhead)
    m.gauge("bench_flows_tracked_cycles_per_s",
            "plain tracked stepping rate on the protected design"
            ).set(CYCLES / t_plain)
    m.gauge("bench_flows_ledger_entries",
            "provenance entries retained after the windowed run"
            ).set(ledger_entries)
    m.write_jsonl(str(BENCH_JSON))

    assert ledger_entries > 0, "explainer run never populated the ledger"
    if disabled_overhead > MAX_DISABLED_OVERHEAD and os.environ.get("CI"):
        pytest.xfail(f"{disabled_overhead * 100:.2f}% on a shared CI "
                     "runner (timing floors are only enforced locally)")
    assert disabled_overhead <= MAX_DISABLED_OVERHEAD, (
        f"disabled explainer costs {disabled_overhead * 100:.2f}% "
        f"(> {MAX_DISABLED_OVERHEAD * 100:.0f}%) over a plain LabelTracker"
    )
