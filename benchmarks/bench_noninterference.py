"""The strongest end-to-end artefact: executable noninterference.

Two complete runs differing only in Alice's secrets must be
observation-equivalent for Eve on the protected design — including all
timing — and must differ on the baseline (the covert channel stated as
a hyperproperty).  The benchmarked quantity is one four-run comparison.
"""

import sys
from pathlib import Path

from conftest import report

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
from tests.integration.test_noninterference import (  # noqa: E402
    SECRET_A,
    SECRET_B,
    eve_observation_trace,
)


def _experiment():
    out = {}
    for name, protected in (("protected", True), ("baseline", False)):
        t1 = eve_observation_trace(protected, SECRET_A["key"],
                                   SECRET_A["blocks"], True)
        t2 = eve_observation_trace(protected, SECRET_B["key"],
                                   SECRET_B["blocks"], True)
        divergences = sum(1 for a, b in zip(t1, t2) if a != b)
        out[name] = (len(t1), divergences)
    return out


def test_noninterference(benchmark):
    results = benchmark.pedantic(_experiment, iterations=1, rounds=1)
    lines = []
    for name, (samples, div) in results.items():
        lines.append(
            f"{name:10s}: {div}/{samples} observation samples differ "
            f"between the two secret-worlds"
        )
    report(
        "Noninterference — two runs differing only in Alice's secrets",
        "\n".join(lines)
        + "\n(protected: Eve's view is bit- and cycle-identical; "
        "baseline: it is not)",
    )
    assert results["protected"][1] == 0
    assert results["baseline"][1] > 0
