"""Throughput benchmark: synthesized shadow tags vs the interpreted
provenance tracker.

The point of :func:`repro.ifc.synth.synthesize_tags` is that label
tracking becomes ordinary netlist logic, so it rides every backend
optimisation for free — in particular the numpy batched backend, where
each of the 64 lanes carries its own independent tag vectors.  The
interpreted :class:`~repro.ifc.tracker.LabelTracker` with provenance on
(the configuration the flow-explorer tooling needs) steps in Python at
a few tens of cycles per second; the synthesized transform must beat it
by at least 100× in lane-cycles/s at 64 lanes.

Both audit modes are measured: ``full`` keeps per-site first-cycle and
occurrence counters, ``sticky`` keeps only the per-site sticky bit —
the high-throughput campaign configuration the floor is gated on.
"""

import os
import time
from pathlib import Path

import pytest
from conftest import report

from repro.accel.common import CMD_ENCRYPT, LATTICE, user_label
from repro.accel.protected import AesAcceleratorProtected
from repro.hdl.sim import Simulator
from repro.ifc.tracker import LabelTracker
from repro.obs import MetricsRegistry

TRACKED_CYCLES = 15
SYNTH_CYCLES = 100
LANES = 64
MIN_SPEEDUP = 100.0
BENCH_JSON = Path(__file__).resolve().parents[1] / "BENCH_synth_tags.json"


def _drive(sim) -> None:
    sim.poke("aes.in_valid", 1)
    sim.poke("aes.in_cmd", CMD_ENCRYPT)
    sim.poke("aes.in_user", user_label("p0").encode())
    sim.poke("aes.in_slot", 1)
    sim.poke("aes.in_data", 0x1234)
    sim.poke("aes.out_ready", 1)


def _tracked_rate(rounds: int = 3) -> float:
    """Interpreted backend + LabelTracker(provenance=True), cycles/s."""
    sim = Simulator(AesAcceleratorProtected(), backend="interp")
    LabelTracker(sim, LATTICE, provenance=True)
    _drive(sim)
    sim.step(3)
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        sim.step(TRACKED_CYCLES)
        best = min(best, time.perf_counter() - t0)
    return TRACKED_CYCLES / best


def _synth_rate(audit: str, rounds: int = 3) -> float:
    """Batched backend with synthesized tags, lane-cycles/s."""
    sim = Simulator(AesAcceleratorProtected(), backend="batched",
                    lanes=LANES, tag_tracking=True, lattice=LATTICE,
                    tag_audit=audit)
    _drive(sim)
    sim.step(5)
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        sim.step(SYNTH_CYCLES)
        best = min(best, time.perf_counter() - t0)
    return SYNTH_CYCLES * LANES / best


def test_synth_tags_speedup_over_tracker():
    """Synthesized tags @ 64 lanes must beat the provenance tracker 100×."""
    pytest.importorskip("numpy")

    tracked = _tracked_rate()
    rates = {audit: _synth_rate(audit) for audit in ("full", "sticky")}
    ratios = {audit: r / tracked for audit, r in rates.items()}
    gated = ratios["sticky"]

    lines = [f"tracked (interp, provenance): {tracked:10.1f} cycles/s"]
    for audit in ("full", "sticky"):
        lines.append(
            f"synth audit={audit:<6} @ {LANES} lanes: "
            f"{rates[audit]:10.0f} lane-cycles/s ({ratios[audit]:6.1f}x)")
    lines.append(f"gated speedup (sticky): {gated:.1f}x "
                 f"(floor {MIN_SPEEDUP:.0f}x)")
    report("Synthesized shadow-tag throughput", "\n".join(lines))

    m = MetricsRegistry()
    g = m.gauge("bench_synth_tags_lane_cycles_per_second",
                "best-of-N tag-tracking rate", ("mode", "lanes"))
    g.set(tracked, mode="tracked-interp", lanes="1")
    for audit in ("full", "sticky"):
        g.set(rates[audit], mode=f"synth-{audit}", lanes=str(LANES))
    m.gauge("bench_synth_tags_speedup",
            f"synthesized sticky tags @ {LANES} lanes over the "
            "provenance tracker").set(gated)
    m.write_jsonl(str(BENCH_JSON))

    if gated < MIN_SPEEDUP and os.environ.get("CI"):
        pytest.xfail(f"{gated:.1f}x < {MIN_SPEEDUP:.0f}x on a shared CI "
                     "runner (timing floors are only enforced locally)")
    assert gated >= MIN_SPEEDUP, (
        f"synthesized tags @ {LANES} lanes achieved only {gated:.1f}x the "
        f"provenance tracker ({rates['sticky']:.0f} lane-cycles/s vs "
        f"{tracked:.1f} cycles/s)"
    )
