"""§4 — the static audit: "All previously-mentioned vulnerabilities in
the baseline are flagged by ChiselFlow."

Benchmarks the full flat-netlist check of the annotated baseline — the
cost of one whole-design audit.
"""

from conftest import report

from repro.eval.audit import classify_errors, protection_effort, run_audit


def test_static_audit(benchmark):
    result = benchmark.pedantic(run_audit, iterations=1, rounds=1)
    classes = classify_errors(result)
    lines = [
        f"{len(result.errors)} label errors across "
        f"{len(result.distinct_sinks())} sinks:"
    ]
    for cls, errs in classes.items():
        lines.append(f"  {cls}: {len(errs)}")
    lines.append("")
    lines.append(f"protection effort (cf. the paper's ~70 changed lines): ")
    for k, v in protection_effort().items():
        lines.append(f"  {k}: {v}")
    report("§4 — design-time audit of the baseline", "\n".join(lines))
    for expected in ("debug disclosure", "output disclosure",
                     "config tampering", "scratchpad overrun",
                     "timing channel"):
        assert expected in classes
