"""Table 2 — area and frequency, baseline vs protected.

The benchmarked quantity is the elaborate + estimate pipeline for both
designs (what a user pays to regenerate the table)."""

from conftest import report

from repro.accel.baseline import AesAcceleratorBaseline
from repro.accel.protected import AesAcceleratorProtected
from repro.fpga.report import render_table2, table2_for_modules


def _regenerate():
    return table2_for_modules(AesAcceleratorBaseline(), AesAcceleratorProtected())


def test_table2_rows(benchmark):
    rows = benchmark.pedantic(_regenerate, iterations=1, rounds=2)
    report("Table 2 — area and performance of the FPGA prototypes",
           render_table2(rows))
    assert 0 < rows["LUTs"].overhead < 15
    assert rows["FFs"].overhead > 0
    assert 0 < rows["BRAMs"].overhead <= 15
    assert abs(rows["Frequency (MHz)"].overhead) < 0.01
