"""Parameter sweeps: sharing under contention; covert-channel capacity."""

from conftest import report

from repro.eval.sweeps import contention_sweep, covert_bandwidth


def test_contention_sweep(benchmark):
    points = benchmark.pedantic(contention_sweep, iterations=1, rounds=1)
    lines = [f"{'users':>7s}{'blocks':>8s}{'cycles':>8s}{'blk/cyc':>9s}"
             f"{'latency':>9s}{'correct':>9s}"]
    for p in points:
        lines.append(
            f"{p.users:>7d}{p.blocks:>8d}{p.cycles:>8d}"
            f"{p.blocks_per_cycle:>9.2f}{p.mean_latency:>9.1f}"
            f"{str(p.correct):>9s}"
        )
    report("Fine-grained sharing under contention (Fig. 7 extended)",
           "\n".join(lines))
    for p in points:
        assert p.correct
    # throughput must not collapse as users are added
    assert points[-1].blocks_per_cycle > 0.3


def test_covert_bandwidth(benchmark):
    results = benchmark.pedantic(covert_bandwidth, iterations=1, rounds=1)
    lines = [f"{'design':>10s}{'window':>8s}{'accuracy':>10s}{'MI':>7s}"
             f"{'capacity':>14s}"]
    for name, rows in results.items():
        for r in rows:
            lines.append(
                f"{name:>10s}{r['window']:>8d}{r['accuracy']:>10.2f}"
                f"{r['mi_bits']:>7.2f}{r['bandwidth_bps'] / 1e3:>11.1f} kb/s"
            )
    report("§3.1 covert-channel capacity at the modelled clock",
           "\n".join(lines))
    for r in results["baseline"]:
        if r["window"] >= 16:
            assert r["mi_bits"] > 0.9
    for r in results["protected"]:
        assert r["mi_bits"] == 0.0
