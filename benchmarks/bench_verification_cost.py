"""Methodology cost: the paper argues design-time checking is cheap
("low design effort and low implementation overhead").  This bench
measures our checker's wall-clock on every protected module — the
developer-facing inner loop of the workflow."""

from conftest import report

from repro.eval.verify_all import MODULES, check_all


def test_whole_design_verification(benchmark):
    results = benchmark.pedantic(check_all, iterations=1, rounds=1)
    lines = []
    for name, rep in results:
        lines.append(
            f"{name:26s} {'PASS' if rep.ok() else 'FAIL':5s} "
            f"{rep.checked_sinks:4d} sinks  "
            f"{rep.hypotheses_examined:6d} cases  "
            f"{rep.downgrades_verified:5d} downgrades"
        )
    report("Verification cost — every protected module, modularly checked",
           "\n".join(lines))
    assert len(results) == len(MODULES)
    assert all(rep.ok() for _, rep in results), [
        (n, r.errors[:2]) for n, r in results if not r.ok()
    ]
