"""Coverage-observatory benchmark: plane fractions + collection cost.

Runs the coverage gate's compiled-backend campaign (smoke form: both
collection phases, no paired fault matrix) under the benchmark harness
and exports the per-plane coverage fractions and the collector's
cycle throughput as gauges, so the bench history ledger tracks whether
workload or RTL changes silently erode what the campaigns exercise.
"""

import time
from pathlib import Path

from conftest import report

from repro.obs import MetricsRegistry
from repro.obs.coverage import run_coverage_campaign

BENCH_JSON = Path(__file__).resolve().parents[1] / "BENCH_coverage.json"
SEED = 2026


def test_coverage_observatory_gate(benchmark):
    t0 = time.perf_counter()
    rep = benchmark.pedantic(
        run_coverage_campaign,
        kwargs={"backends": ("compiled",), "seed": SEED, "smoke": True},
        iterations=1, rounds=1,
    )
    wall = time.perf_counter() - t0

    v = rep.verdicts()
    holes = rep.holes()
    cps = rep.map.cycles / wall if wall > 0 else 0.0
    report(
        "Coverage observatory — four-plane campaign ledger",
        f"enforcement toggle {v['enforcement_toggle']['value']:.3f}, "
        f"sites armed {v['sites_armed']['value']:.3f}, "
        f"taint {v['taint']['value']:.3f}, "
        f"structural {v['structural_toggle']['value']:.3f}\n"
        f"holes: {len(holes)} ranked "
        f"(top: {holes[0]['name'] if holes else 'none'})\n"
        f"collection: {rep.map.cycles} cycles in {wall:.2f}s wall",
    )

    reg = MetricsRegistry()
    reg.gauge("bench_coverage_enforcement_toggle",
              "toggle fraction over the protected design's guard nets "
              "(gate threshold 0.90)"
              ).set(v["enforcement_toggle"]["value"])
    reg.gauge("bench_coverage_structural_toggle",
              "per-bit toggle fraction over every net"
              ).set(v["structural_toggle"]["value"])
    reg.gauge("bench_coverage_taint_fraction",
              "fraction of shadow conf/integ nets that carried taint"
              ).set(v["taint"]["value"])
    reg.gauge("bench_coverage_sites_armed_fraction",
              "fraction of synthesized violation sites ever armed"
              ).set(v["sites_armed"]["value"])
    reg.gauge("bench_coverage_holes_total",
              "ranked coverage holes across all four planes"
              ).set(len(holes))
    reg.gauge("bench_coverage_cycles_per_second",
              "workload cycles observed per second with the collector "
              "attached (compiled backend)").set(cps)
    reg.gauge("bench_coverage_campaign_seconds",
              "wall time of the compiled-backend coverage campaign"
              ).set(wall)
    reg.write_jsonl(str(BENCH_JSON))

    # the PR's claim, held as a benchmark invariant: the gate passes
    # while still naming real holes
    assert rep.ok
    assert holes
