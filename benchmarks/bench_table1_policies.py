"""Table 1 — the six security requirements, regenerated.

Prints the enforcement table for both designs; the benchmarked quantity
is one full policy sweep on the protected accelerator.
"""

from conftest import report

from repro.eval.table1 import render_table1, run_table1, static_evidence


def test_table1_rows(benchmark):
    results = benchmark.pedantic(
        run_table1, args=(True,), iterations=1, rounds=1
    )
    baseline = run_table1(False)
    evidence = static_evidence()
    lines = ["static evidence (per-policy module checks):"]
    for pid, mods in evidence.items():
        status = " ".join(
            f"{name}:{'PASS' if rep.ok() else 'FAIL'}" for name, rep in mods
        )
        lines.append(f"  {pid}: {status}")
    report(
        "Table 1 — security requirements as information flow policies",
        "PROTECTED:\n" + render_table1(results)
        + "\n\nBASELINE:\n" + render_table1(baseline)
        + "\n\n" + "\n".join(lines),
    )
    assert all(r.enforced for r in results)
    assert all(not r.enforced for r in baseline)
    for pid, mods in evidence.items():
        assert all(rep.ok() for _n, rep in mods), pid
