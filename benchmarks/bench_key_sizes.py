"""Fig. 1 — key-length generality: the wide engine at 128/192/256 bits.

The paper's Fig. 1 caption: N = 10 / 12 / 14 rounds for 128/192/256-bit
keys.  The wide engine's measured latencies must be exactly 3·N, at one
block per cycle for every size."""

import random

from conftest import report

from repro.accel.common import OP_ENC
from repro.accel.wide import AesEngineWide
from repro.aes import encrypt_block
from repro.hdl.sim import Simulator


def _measure(bits: int):
    rng = random.Random(bits)
    key = rng.getrandbits(bits)
    sim = Simulator(AesEngineWide(bits))
    sim.poke("wide.advance", 1)
    sim.poke("wide.kx_start", 1)
    sim.poke("wide.kx_key", key)
    sim.poke("wide.kx_key_tag", 0x11)
    sim.step()
    sim.poke("wide.kx_start", 0)
    kx = sim.run_until("wide.kx_busy", 0, 100) + 1

    pts = [rng.getrandbits(128) for _ in range(8)]
    issued = sim.cycle
    for pt in pts:
        sim.poke("wide.in_valid", 1)
        sim.poke("wide.in_op", OP_ENC)
        sim.poke("wide.in_user", 0x11)
        sim.poke("wide.in_data", pt)
        sim.step()
    sim.poke("wide.in_valid", 0)
    outs, first = [], None
    for _ in range(80):
        if sim.peek("wide.out_valid"):
            if first is None:
                first = sim.cycle
            outs.append(sim.peek("wide.out_data"))
        sim.step()
    ok = outs == [encrypt_block(pt, key, bits) for pt in pts]
    return {"kx_cycles": kx, "latency": first - issued, "correct": ok,
            "blocks": len(outs)}


def test_all_key_sizes(benchmark):
    results = benchmark.pedantic(
        lambda: {bits: _measure(bits) for bits in (128, 192, 256)},
        iterations=1, rounds=1,
    )
    lines = [f"{'key':>6s}{'rounds':>8s}{'latency':>9s}{'keyexp':>8s}"
             f"{'blk/cyc':>9s}{'correct':>9s}"]
    for bits, r in results.items():
        rounds = {128: 10, 192: 12, 256: 14}[bits]
        lines.append(
            f"{bits:>6d}{rounds:>8d}{r['latency']:>9d}{r['kx_cycles']:>8d}"
            f"{r['blocks'] / r['blocks']:>9.2f}{str(r['correct']):>9s}"
        )
    report("Fig. 1 — N = 10/12/14 rounds by key length, in hardware",
           "\n".join(lines))
    for bits, r in results.items():
        assert r["correct"]
        assert r["latency"] == 3 * {128: 10, 192: 12, 256: 14}[bits]
