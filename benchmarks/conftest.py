"""Benchmark fixtures.

Each benchmark regenerates one table or figure of the paper's evaluation
and prints the rows/series it reports, alongside the timing that
pytest-benchmark collects for the regeneration itself.
"""

import pytest


def report(title: str, body: str) -> None:
    """Print a paper-artefact block (visible with `pytest -s` and in the
    captured output section)."""
    bar = "=" * 72
    print(f"\n{bar}\n{title}\n{bar}\n{body}\n")
