"""Fig. 8 — label-aware stall control.

Static half: the reduced composition verifies with the meet check and
fails without it.  Dynamic half: the pipeline-stall covert channel is
decoded on the baseline and carries zero mutual information on the
protected design.  The benchmarked quantity is the dynamic experiment.
"""

import random

from conftest import report

from repro.attacks.timing_channel import run_covert_channel
from repro.eval.figures import fig8_static

BITS = [random.Random(42).randint(0, 1) for _ in range(16)]
BITS = [1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1, 0, 0, 1, 0, 1]


def _dynamic():
    return {
        "baseline": run_covert_channel(False, BITS, stall_cycles=16),
        "protected": run_covert_channel(True, BITS, stall_cycles=16),
    }


def test_fig8_stall_control(benchmark):
    results = benchmark.pedantic(_dynamic, iterations=1, rounds=1)
    guarded, unguarded = fig8_static()
    lines = [
        f"static: guarded composition {'PASS' if guarded.ok() else 'FAIL'} "
        f"(no downgrade on the data path); unguarded: "
        f"{len(unguarded.errors)} label errors",
    ]
    for name, res in results.items():
        z = sum(res.latencies_zero) / len(res.latencies_zero)
        o = sum(res.latencies_one) / len(res.latencies_one)
        lines.append(
            f"covert channel on {name}: accuracy={res.accuracy:.2f}, "
            f"MI={res.mutual_information():.3f} bits "
            f"(latency 0-bit~{z:.0f}cy, 1-bit~{o:.0f}cy)"
        )
    report("Fig. 8 — stall meet check closes the §3.1 covert channel",
           "\n".join(lines))
    assert guarded.ok() and not unguarded.ok()
    assert results["baseline"].mutual_information() > 0.9
    assert results["protected"].mutual_information() == 0.0
