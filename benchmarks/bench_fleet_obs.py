"""Fleet observatory overhead benchmark: tracing on vs off.

Replays one fixed open-loop trace (inline workers, no chaos) twice —
once bare, once with a :class:`~repro.obs.fleet.FleetObservatory`
attached (worker-side spans + metrics, delta harvesting, burn-rate
evaluation) — and compares **round throughput**, delivered requests per
supervisor round.  The observatory must never perturb scheduling, so
the logical throughput is required to stay within 5% (in practice it
is identical: same rounds, same deliveries); wall-clock overhead is
exported as an informational gauge for the history ledger.
"""

import random
import time
from pathlib import Path

from conftest import report

from repro.obs import MetricsRegistry
from repro.obs.fleet import FleetObservatory
from repro.soc.fleet import AcceleratorFleet, FleetConfig
from repro.soc.traffic import TenantSpec, generate_trace

BENCH_JSON = Path(__file__).resolve().parents[1] / "BENCH_fleet_obs.json"
SEED = 2026
HORIZON = 512
SHARDS = 2


def _tenants():
    rng = random.Random(SEED ^ 0x0B5)
    return [TenantSpec(f"g{i}", "gold", rate=40.0, burst=1,
                       key=rng.getrandbits(128))
            for i in range(6)]


def _run(observe: bool):
    specs = _tenants()
    trace = generate_trace(specs, HORIZON, seed=SEED)
    cfg = FleetConfig(shards=SHARDS, workers="inline",
                      batch_per_round=4, queue_bound=64,
                      request_deadline=6000, flush_rounds=200)
    fobs = FleetObservatory(cfg.slos) if observe else None
    fleet = AcceleratorFleet(cfg, specs, seed=SEED, observatory=fobs)
    t0 = time.perf_counter()
    rep = fleet.run(trace).to_dict()
    wall = time.perf_counter() - t0
    return {
        "delivered": rep["totals"]["by_status"].get("delivered", 0),
        "requests": rep["totals"]["requests"],
        "rounds": rep["supervisor"]["rounds_run"],
        "conservation_ok": rep["conservation_ok"],
        "wall": wall,
        "events": len(fobs.all_events()) if fobs is not None else 0,
        "series": len(fobs.merged) if fobs is not None else 0,
    }


def _run_both():
    return {"off": _run(False), "on": _run(True)}


def test_fleet_obs_overhead(benchmark):
    results = benchmark.pedantic(_run_both, iterations=1, rounds=1)
    off, on = results["off"], results["on"]

    tp_off = off["delivered"] / off["rounds"]
    tp_on = on["delivered"] / on["rounds"]
    overhead = (on["wall"] / off["wall"] - 1.0) if off["wall"] else 0.0
    report(
        "Fleet observatory overhead — tracing on vs off, one trace",
        f"off: {off['delivered']}/{off['requests']} in {off['rounds']} "
        f"rounds ({tp_off:.2f} req/round, {off['wall']:.2f}s)\n"
        f"on:  {on['delivered']}/{on['requests']} in {on['rounds']} "
        f"rounds ({tp_on:.2f} req/round, {on['wall']:.2f}s, "
        f"{on['events']} trace events, {on['series']} series)\n"
        f"wall overhead: {overhead * 100:.1f}%",
    )

    reg = MetricsRegistry()
    g = reg.gauge("bench_fleet_obs_round_throughput",
                  "requests delivered per supervisor round with the "
                  "observatory on vs off", ("observatory",))
    g.set(tp_off, observatory="off")
    g.set(tp_on, observatory="on")
    reg.gauge("bench_fleet_obs_trace_events",
              "stitched Chrome trace events for the fixed trace").set(
        on["events"])
    reg.gauge("bench_fleet_obs_telemetry_series",
              "merged shard-labelled telemetry series").set(on["series"])
    reg.gauge("bench_fleet_obs_wall_overhead_fraction",
              "wall-clock cost of the observatory (informational; the "
              "acceptance bound is on logical throughput)").set(
        max(0.0, overhead))
    reg.gauge("bench_fleet_obs_campaign_seconds",
              "wall time for both fleet runs").set(
        off["wall"] + on["wall"])
    reg.write_jsonl(str(BENCH_JSON))

    assert off["conservation_ok"] and on["conservation_ok"]
    # the observatory observes; it must not steer.  Logical throughput
    # within 5% (identical in practice — same rounds, same deliveries).
    assert abs(tp_on - tp_off) <= 0.05 * tp_off, (
        f"observatory perturbed round throughput: "
        f"{tp_off:.3f} -> {tp_on:.3f} req/round")
    assert on["rounds"] == off["rounds"], (
        "observatory changed the round count")
    assert on["delivered"] == off["delivered"], (
        "observatory changed delivery outcomes")
