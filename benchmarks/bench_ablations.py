"""Ablations of the protected design's choices (DESIGN.md §5):
partitioned holding buffer, round-key guard, checker refinement."""

from conftest import report

from repro.accel.ablation import (
    buffer_hol_experiment,
    refinement_ablation,
    rk_guard_ablation,
)


def test_buffer_partitioning_ablation(benchmark):
    def run():
        rows = {}
        for kind in ("shared", "partitioned"):
            rows[kind] = [
                buffer_hol_experiment(kind, backlog)
                for backlog in (0, 2, 4, 8, 12)
            ]
        return rows

    rows = benchmark.pedantic(run, iterations=1, rounds=1)
    lines = ["Eve's wait for her own output vs Alice's unread backlog",
             f"{'backlog':>10s}" + "".join(f"{b:>8d}" for b in (0, 2, 4, 8, 12))]
    for kind, samples in rows.items():
        waits = "".join(f"{w:>8d}" for w, _d in samples)
        lines.append(f"{kind:>10s}" + waits + "   (64 = never)")
    report("Ablation — holding-buffer partitioning (HOL covert channel)",
           "\n".join(lines))
    # shared FIFO: Alice's backlog delays Eve indefinitely; partitioned: flat
    assert rows["shared"][2][0] >= 60
    assert all(w == rows["partitioned"][0][0] for w, _ in rows["partitioned"])


def test_rk_guard_ablation(benchmark):
    result = benchmark.pedantic(rk_guard_ablation, iterations=1, rounds=1)
    report(
        "Ablation — the round-key flow guard",
        f"with guard   : {result['with_guard_errors']} static label errors\n"
        f"without guard: {result['without_guard_errors']} static label errors\n"
        "(every unguarded round-key wire is a potential cross-user key use)",
    )
    assert result["with_guard_errors"] == 0
    assert result["without_guard_errors"] > 100


def test_checker_refinement_ablation(benchmark):
    rows = benchmark.pedantic(refinement_ablation, iterations=1, rounds=1)
    lines = [f"{'module':18s}{'refined':>10s}{'exhaustive':>14s}{'saving':>9s}"]
    for name, examined, potential in rows:
        saving = potential / max(1, examined)
        lines.append(f"{name:18s}{examined:>10d}{potential:>14d}{saving:>8.1f}x")
    report("Ablation — demand-driven hypothesis refinement", "\n".join(lines))
    for _name, examined, potential in rows:
        assert examined <= potential
