"""Power-observatory benchmark: attack strength + trace throughput.

Runs the paired masked-vs-unmasked power campaign (the CI power gate)
under the benchmark harness and exports its headline numbers as gauges —
the unmasked round's TVLA max-|t| and CPA key-byte recovery, the masked
round's recovery (the masking margin, expected 0), and the collector's
trace throughput — so the bench history ledger (``python -m repro obs
history``) tracks detector power and collection cost across runs.
"""

import time
from pathlib import Path

from conftest import report

from repro.obs import MetricsRegistry
from repro.obs.power import run_power_campaign

BENCH_JSON = Path(__file__).resolve().parents[1] / "BENCH_power.json"
SEED = 2026


def test_power_campaign_gate(benchmark):
    t0 = time.perf_counter()
    result = benchmark.pedantic(
        run_power_campaign,
        kwargs={"seed": SEED, "backend": "compiled",
                "check_protected": False, "with_attribution": False},
        iterations=1, rounds=1,
    )
    wall = time.perf_counter() - t0

    u, m = result.unmasked, result.masked
    report(
        "Power side channel — paired masked-vs-unmasked campaign",
        f"unmasked: TVLA max|t| {u.tvla.max_t:.1f}, "
        f"CPA {u.cpa.recovered}/16 key bytes rank-0 "
        f"over {u.cpa.traces} traces\n"
        f"masked  : TVLA max|t| {m.tvla.max_t:.1f}, "
        f"CPA {m.cpa.recovered}/16 key bytes rank-0\n"
        f"campaign: {u.traces_per_second:.0f} traces/s unmasked, "
        f"{wall:.2f}s wall",
    )

    reg = MetricsRegistry()
    reg.gauge("bench_power_tvla_max_t",
              "unmasked round TVLA max |t| (gate threshold 4.5)"
              ).set(u.tvla.max_t)
    reg.gauge("bench_power_cpa_recovered_bytes",
              "unmasked key bytes recovered at rank 0 (of 16)"
              ).set(u.cpa.recovered)
    reg.gauge("bench_power_masked_recovered_bytes",
              "masked key bytes recovered at rank 0 (0 = masking holds)"
              ).set(m.cpa.recovered)
    reg.gauge("bench_power_traces_per_second",
              "HD power-proxy traces collected per second (unmasked, "
              "compiled backend)").set(u.traces_per_second)
    reg.gauge("bench_power_campaign_seconds",
              "wall time of the paired power campaign").set(wall)
    reg.write_jsonl(str(BENCH_JSON))

    # the PR's claim, held as a benchmark invariant: the attack works
    # on the unmasked round and first-order masking defeats it
    assert result.baseline_broken
    assert result.masking_effective
