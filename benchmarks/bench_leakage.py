"""Leakage observatory benchmark: detector statistics + campaign cost.

Runs the seeded paired stall-channel campaign (the CI smoke) under the
benchmark harness and exports the headline detector numbers as gauges —
the baseline's t-statistic and mutual information, the protected
design's (expected ~0), and the campaign wall time — so the bench
history ledger (``python -m repro obs history``) tracks detection power
and detector cost across runs.
"""

import time
from pathlib import Path

from conftest import report

from repro.obs import MetricsRegistry
from repro.obs.leakage import run_paired_campaign

BENCH_JSON = Path(__file__).resolve().parents[1] / "BENCH_leakage.json"
TRIALS = 8


def test_stall_channel_detection(benchmark):
    t0 = time.perf_counter()
    result = benchmark.pedantic(
        run_paired_campaign,
        kwargs={"scenario": "stall", "trials": TRIALS, "seed": 2026},
        iterations=1, rounds=1,
    )
    wall = time.perf_counter() - t0

    base = result.baseline.observable("probe_latency")
    prot = result.protected.observable("probe_latency")
    report(
        "Leakage observatory — stall-channel detection",
        f"baseline : t={base.ttest.t:+.2f}  MI={base.mi:.3f} bits\n"
        f"protected: t={prot.ttest.t:+.2f}  MI={prot.mi:.3f} bits\n"
        f"campaign : {TRIALS} trials/design, {wall:.2f}s wall",
    )

    m = MetricsRegistry()
    labels = ("design",)
    t_stat = m.gauge("bench_leakage_t_stat",
                     "Welch t over the probe-latency observable", labels)
    mi = m.gauge("bench_leakage_mi_bits",
                 "mutual information of the probe-latency observable",
                 labels)
    for design, obs in (("baseline", base), ("protected", prot)):
        t_stat.set(obs.ttest.t, design=design)
        mi.set(obs.mi, design=design)
    m.gauge("bench_leakage_campaign_seconds",
            "wall time of the paired campaign").set(wall)
    m.write_jsonl(str(BENCH_JSON))

    # the paper's claim, held as a benchmark invariant
    assert result.ok
    assert abs(base.ttest.t) > 4.5 and base.mi > 0
