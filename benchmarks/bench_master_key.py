"""§3.2.2 — nonmalleable declassification gates the master key."""

from conftest import report

from repro.attacks.key_misuse import run_key_misuse


def test_master_key_misuse(benchmark):
    protected = benchmark.pedantic(
        run_key_misuse, args=(True,), iterations=1, rounds=1
    )
    baseline = run_key_misuse(False)
    report(
        "§3.2.2 — preventing inappropriate use of cryptographic keys",
        f"baseline : {baseline!r}\n"
        f"protected: {protected!r}\n"
        "paper    : only the supervisor has high enough integrity to\n"
        "           declassify encryption with the master key",
    )
    assert baseline.eve_succeeded
    assert not protected.eve_succeeded
    assert protected.supervisor_succeeded
    assert protected.suppressed_count >= 1
