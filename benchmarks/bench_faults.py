"""Fault-campaign benchmark: fail-safe margin + campaign cost.

Runs the seeded paired smoke campaign (the CI fail-safe gate) under the
benchmark harness and exports its headline numbers as gauges — the
protected design's fail-safe accuracy (fraction of fault scenarios that
did not leak), the baseline's detection accuracy (fraction of its fault
scenarios visibly corrupted, i.e. the campaign's power to notice faults
at all), and the campaign wall time — so the bench history ledger
(``python -m repro obs history``) tracks enforcement robustness and
injector cost across runs.
"""

import time
from pathlib import Path

from conftest import report

from repro.faults.campaign import (
    detection_accuracy,
    failsafe_accuracy,
    injected_outcomes,
    run_paired_fault_campaign,
)
from repro.obs import MetricsRegistry

BENCH_JSON = Path(__file__).resolve().parents[1] / "BENCH_faults.json"
SEED = 2026


def test_fault_campaign_failsafe(benchmark):
    t0 = time.perf_counter()
    result = benchmark.pedantic(
        run_paired_fault_campaign,
        kwargs={"seed": SEED, "backend": "compiled", "smoke": True},
        iterations=1, rounds=1,
    )
    wall = time.perf_counter() - t0

    prot = injected_outcomes(result.protected)
    base = injected_outcomes(result.baseline)
    failsafe = failsafe_accuracy(result.protected)
    detection = detection_accuracy(result.baseline)
    injections = sum(o.details.get("fault_events", 0)
                     for o in prot + base)
    report(
        "Fault campaign — fail-safe enforcement under injected faults",
        f"protected: {len(prot)} fault scenarios, "
        f"fail-safe accuracy {failsafe:.2f} "
        f"(leaked={result.protected.leaks})\n"
        f"baseline : {len(base)} fault scenarios, "
        f"detection accuracy {detection:.2f}\n"
        f"campaign : {injections} injections, {wall:.2f}s wall",
    )

    m = MetricsRegistry()
    m.gauge("bench_faults_failsafe_accuracy",
            "fraction of protected fault scenarios with zero cross-user "
            "leakage (1.0 = fail-safe everywhere)").set(failsafe)
    m.gauge("bench_faults_detection_accuracy",
            "fraction of baseline fault scenarios visibly corrupted "
            "(campaign power)").set(detection)
    m.gauge("bench_faults_campaign_seconds",
            "wall time of the paired smoke campaign").set(wall)
    m.write_jsonl(str(BENCH_JSON))

    # the PR's claim, held as a benchmark invariant: block, never leak —
    # and every baseline fault is host-visible now that the scenarios
    # avoid the architecturally-ignored conf nibble
    assert result.ok
    assert failsafe == 1.0
    assert detection == 1.0
