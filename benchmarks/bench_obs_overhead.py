"""Telemetry overhead guard.

The entire observability layer rides on one module-global read: when no
:class:`~repro.obs.Telemetry` is active, instrumented hot paths reduce
to a ``None`` check.  This benchmark holds that promise to a number —
with telemetry *disabled*, per-cycle stepping through the instrumented
:class:`~repro.hdl.sim.Simulator` wrapper must stay within 3 % of
driving the batched backend's inner step loop directly (the pre-telemetry
fast path).
"""

import os
import time

import pytest
from conftest import report

import repro.obs as obs
from repro.accel.common import CMD_ENCRYPT, user_label
from repro.accel.protected import AesAcceleratorProtected
from repro.hdl.elaborate import elaborate
from repro.hdl.sim import Simulator

CYCLES = 100
LANES = 64
ROUNDS = 8
MAX_OVERHEAD = 0.03  # disabled telemetry may cost at most 3 %


def _make_sim(netlist) -> Simulator:
    sim = Simulator(netlist, backend="batched", lanes=LANES)
    sim.poke("aes.in_valid", 1)
    sim.poke("aes.in_cmd", CMD_ENCRYPT)
    sim.poke("aes.in_user", user_label("p0").encode())
    sim.poke("aes.in_slot", 1)
    sim.poke("aes.in_data", 0x1234)
    sim.poke("aes.out_ready", 1)
    return sim


def _best_of_interleaved(a, b, rounds: int = ROUNDS):
    """Best-of-N for two paths, alternating every round so slow clock
    drift (thermal, noisy CI neighbours) hits both paths equally."""
    best_a = best_b = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        a()
        best_a = min(best_a, time.perf_counter() - t0)
        t0 = time.perf_counter()
        b()
        best_b = min(best_b, time.perf_counter() - t0)
    return best_a, best_b


def test_disabled_telemetry_overhead():
    """Instrumented wrapper vs raw inner loop, telemetry off."""
    pytest.importorskip("numpy")
    assert obs.telemetry() is None, "telemetry must be disabled for this guard"

    netlist = elaborate(AesAcceleratorProtected())
    sim = _make_sim(netlist)
    inner = sim.lanes_sim

    # per-cycle calls, the SoC harness's access pattern (tick -> step(1))
    def wrapped():
        for _ in range(CYCLES):
            sim.step(1)

    def raw():
        for _ in range(CYCLES):
            inner.step(1)

    wrapped()  # warm both paths once
    raw()
    t_wrapped, t_raw = _best_of_interleaved(wrapped, raw)
    overhead = t_wrapped / t_raw - 1.0

    report(
        "Telemetry-disabled overhead guard",
        f"instrumented Simulator.step : {CYCLES / t_wrapped:10.0f} cycles/s\n"
        f"raw batched inner loop      : {CYCLES / t_raw:10.0f} cycles/s\n"
        f"overhead                    : {overhead * 100:+.2f}% "
        f"(ceiling {MAX_OVERHEAD * 100:.0f}%)",
    )
    if overhead > MAX_OVERHEAD and os.environ.get("CI"):
        pytest.xfail(f"{overhead * 100:.2f}% on a shared CI runner "
                     "(timing floors are only enforced locally)")
    assert overhead <= MAX_OVERHEAD, (
        f"disabled-telemetry wrapper costs {overhead * 100:.2f}% "
        f"(> {MAX_OVERHEAD * 100:.0f}%) over the raw batched step loop"
    )
