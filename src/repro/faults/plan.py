"""Fault plans and netlist-level fault instrumentation.

A :class:`Fault` names a *target* (a signal path, or a memory path plus a
cell address), a *kind* (transient bit-flip, stuck-at-1, stuck-at-0), a
bit ``mask``, and a schedule (``cycle``, ``duration`` cycles, optional
batched ``lane``).  A :class:`FaultPlan` is an ordered bag of faults.

Injection is a **netlist transformation**, not a per-backend hack: for
every targeted signal ``s``, :func:`instrument` rewrites its driver (or
its register-next expression) as::

    ((s_orig ^ flip) | stuck1) & ~stuck0

where ``flip``/``stuck1``/``stuck0`` are three new free inputs of the
netlist.  All three simulation backends consume the same netlist, so the
fault semantics are identical across the interpreter, the compiled
backend, and the batched backend *by construction* — and the structural
fingerprint changes, so the module-level compile caches stay sound.  For
registers the rewrite lands exactly between evaluation and commit: the
faulted value is what the register latches.  Registers that normally
hold their value get an explicit recirculating next-value expression so
they too can be upset.

Memory cells (e.g. the scratchpad tag array) are faulted through the
simulator's backdoor ``poke_mem``: a *transient* memory fault is one
read-modify-write XOR at its scheduled cycle (an SRAM upset persists
until the design rewrites the cell, so ``duration`` is ignored); stuck-at
memory faults are re-asserted at the start of every cycle in the window.

With all masks at zero the instrumented design is cycle-for-cycle
equivalent to the original — the identity is ``((s ^ 0) | 0) & ~0``.

The per-cycle drive logic lives in :class:`FaultApplier`, which both
:class:`~repro.hdl.sim.engine.Simulator` and
:class:`~repro.hdl.sim.batched.BatchSimulator` call at the top of every
``step`` iteration.
"""

from __future__ import annotations

import enum
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..hdl.memory import Mem
from ..hdl.netlist import Netlist
from ..hdl.nodes import HdlError
from ..hdl.signal import Signal, SignalKind
from ..hdl.types import mask_for


class FaultPlanError(HdlError):
    """A fault plan does not fit the design it is aimed at."""


class FaultKind(str, enum.Enum):
    """How the mask combines with the target's value."""

    TRANSIENT = "transient"      # value ^ mask, each cycle in the window
    STUCK_AT_1 = "stuck_at_1"    # value | mask, for the window
    STUCK_AT_0 = "stuck_at_0"    # value & ~mask, for the window


def faulted_value(value: int, kind: FaultKind, mask: int, width: int) -> int:
    """Apply one fault kind to a plain integer value."""
    if kind is FaultKind.TRANSIENT:
        return (value ^ mask) & mask_for(width)
    if kind is FaultKind.STUCK_AT_1:
        return (value | mask) & mask_for(width)
    return value & ~mask & mask_for(width)


class Fault:
    """One scheduled upset.

    ``target`` is a hierarchical signal path (``aes.pipe.sc3.tag_r``) or,
    when ``addr`` is not None, a memory path (``aes.scratchpad.tags``).
    ``cycle`` is an absolute simulator cycle; ``duration`` extends the
    window (a multi-cycle burst).  ``lane`` restricts a batched-backend
    fault to one lane (None = every lane).
    """

    __slots__ = ("target", "kind", "mask", "cycle", "duration", "lane",
                 "addr")

    def __init__(self, target: str, kind: Union[FaultKind, str], mask: int,
                 cycle: int, duration: int = 1,
                 lane: Optional[int] = None, addr: Optional[int] = None):
        self.target = target
        self.kind = FaultKind(kind)
        self.mask = mask
        self.cycle = cycle
        self.duration = duration
        self.lane = lane
        self.addr = addr
        if mask <= 0:
            raise FaultPlanError(f"fault on {target!r} needs a nonzero mask")
        if duration < 1:
            raise FaultPlanError(
                f"fault on {target!r} needs duration >= 1, got {duration}")
        if cycle < 0:
            raise FaultPlanError(
                f"fault on {target!r} scheduled before cycle 0")

    @property
    def is_mem(self) -> bool:
        return self.addr is not None

    def active_at(self, cycle: int) -> bool:
        return self.cycle <= cycle < self.cycle + self.duration

    def to_dict(self) -> dict:
        return {"target": self.target, "kind": self.kind.value,
                "mask": self.mask, "cycle": self.cycle,
                "duration": self.duration, "lane": self.lane,
                "addr": self.addr}

    def __repr__(self) -> str:
        where = f"{self.target}[{self.addr}]" if self.is_mem else self.target
        lane = f", lane={self.lane}" if self.lane is not None else ""
        return (f"Fault({where}, {self.kind.value}, mask={self.mask:#x}, "
                f"cycle={self.cycle}, dur={self.duration}{lane})")


class FaultPlan:
    """An ordered collection of faults, applied together."""

    def __init__(self, faults: Iterable[Fault] = ()):
        self.faults: List[Fault] = list(faults)

    def add(self, fault: Fault) -> "FaultPlan":
        self.faults.append(fault)
        return self

    def signal_targets(self) -> List[str]:
        """Distinct signal paths this plan needs instrumented."""
        return sorted({f.target for f in self.faults if not f.is_mem})

    def window(self) -> Tuple[int, int]:
        """[first, last) cycle range in which any fault is active."""
        if not self.faults:
            return (0, 0)
        return (min(f.cycle for f in self.faults),
                max(f.cycle + f.duration for f in self.faults))

    def shifted(self, base: int) -> "FaultPlan":
        """A copy with every fault's cycle offset by ``base``."""
        return FaultPlan(
            Fault(f.target, f.kind, f.mask, f.cycle + base, f.duration,
                  f.lane, f.addr)
            for f in self.faults)

    def to_dict(self) -> dict:
        return {"faults": [f.to_dict() for f in self.faults]}

    def __len__(self) -> int:
        return len(self.faults)

    def __repr__(self) -> str:
        return f"FaultPlan({self.faults!r})"


class FaultControl:
    """The three fault-control inputs grafted onto one target signal."""

    __slots__ = ("target", "victim", "flip", "stuck1", "stuck0")

    def __init__(self, target: str, victim: Signal, flip: Signal,
                 stuck1: Signal, stuck0: Signal):
        self.target = target
        self.victim = victim
        self.flip = flip
        self.stuck1 = stuck1
        self.stuck0 = stuck0

    def __repr__(self) -> str:
        return f"FaultControl({self.target}, w={self.victim.width})"


def _fault_expr(orig, flip: Signal, stuck1: Signal, stuck0: Signal):
    return ((orig ^ flip) | stuck1) & ~stuck0


def instrument(netlist: Netlist,
               targets: Sequence[str]) -> Tuple[Netlist,
                                                Dict[str, FaultControl]]:
    """Return an instrumented copy of ``netlist`` plus its fault controls.

    The copy shares expression nodes with the original; only the driver /
    reg-next maps and the input/signal lists are rebuilt.  Unknown paths
    raise :class:`~repro.hdl.nodes.UnknownSignalError` naming the signal
    and the root module; free inputs and undriven signals are rejected
    with a :class:`FaultPlanError` (poke inputs directly instead).
    """
    out = Netlist(netlist.root)
    out.inputs = list(netlist.inputs)
    out.regs = list(netlist.regs)
    out.comb = list(netlist.comb)
    out.drivers = dict(netlist.drivers)
    out.reg_next = dict(netlist.reg_next)
    out.mems = list(netlist.mems)
    out.mem_writes = {m: list(ws) for m, ws in netlist.mem_writes.items()}
    out.signals = list(netlist.signals)

    input_set = frozenset(out.inputs)
    reg_set = frozenset(out.regs)
    controls: Dict[str, FaultControl] = {}
    for path in sorted(set(targets)):
        sig = out.signal_by_path(path)  # UnknownSignalError names the module
        if sig in input_set:
            raise FaultPlanError(
                f"{path} is a free input of module {out.root.path!r}; "
                "drive it with poke() instead of instrumenting a fault")
        flip = Signal(f"fault.{path}.flip", sig.width, SignalKind.INPUT,
                      owner=None)
        stuck1 = Signal(f"fault.{path}.stuck1", sig.width, SignalKind.INPUT,
                        owner=None)
        stuck0 = Signal(f"fault.{path}.stuck0", sig.width, SignalKind.INPUT,
                        owner=None)
        if sig in out.drivers:
            out.drivers[sig] = _fault_expr(out.drivers[sig], flip, stuck1,
                                           stuck0)
        elif sig in reg_set:
            # held registers recirculate so they too can be upset
            orig = out.reg_next.get(sig, sig)
            out.reg_next[sig] = _fault_expr(orig, flip, stuck1, stuck0)
        else:
            raise FaultPlanError(
                f"{path} has no driver to instrument in module "
                f"{out.root.path!r}")
        out.inputs.extend((flip, stuck1, stuck0))
        out.signals.extend((flip, stuck1, stuck0))
        controls[path] = FaultControl(path, sig, flip, stuck1, stuck0)
    return out, controls


class FaultApplier:
    """Computes the fault-control input values for each cycle.

    Owned by a simulator; ``at(cycle)`` returns ``(signal_updates,
    mem_ops)`` where ``signal_updates`` maps each control :class:`Signal`
    whose value *changed* to its new value (an int, or a per-lane list
    when any fault in the plan is lane-targeted), and ``mem_ops`` lists
    ``(Mem, addr, kind, mask, lane)`` backdoor operations due this cycle.
    Outside the plan's active window (and once the controls have been
    zeroed again) it returns empty updates, so idle cycles cost one range
    check.
    """

    def __init__(self, plan: FaultPlan, controls: Dict[str, FaultControl],
                 netlist: Netlist, lanes: int = 1):
        self.plan = plan
        self.lanes = lanes
        self.events = 0        # (fault, cycle) applications performed
        self._controls = controls
        self._sig_faults: Dict[str, List[Fault]] = {}
        self._mem_faults: List[Tuple[Mem, Fault]] = []
        for f in plan.faults:
            if f.lane is not None and not 0 <= f.lane < lanes:
                raise FaultPlanError(
                    f"fault on {f.target!r} targets lane {f.lane}, but the "
                    f"simulator has {lanes} lane(s)")
            if f.is_mem:
                mem = netlist.mem_by_path(f.target)  # UnknownMemoryError
                if not 0 <= f.addr < mem.depth:
                    raise FaultPlanError(
                        f"address {f.addr} out of range for memory "
                        f"{f.target} (depth {mem.depth})")
                if f.mask > mask_for(mem.width):
                    raise FaultPlanError(
                        f"mask {f.mask:#x} does not fit {mem.width}-bit "
                        f"memory {f.target}")
                self._mem_faults.append((mem, f))
            else:
                ctrl = controls.get(f.target)
                if ctrl is None:
                    known = ", ".join(sorted(controls)) or "<none>"
                    raise FaultPlanError(
                        f"signal {f.target!r} is not instrumented on this "
                        f"simulator (instrumented targets: {known})")
                if f.mask > mask_for(ctrl.victim.width):
                    raise FaultPlanError(
                        f"mask {f.mask:#x} does not fit "
                        f"{ctrl.victim.width}-bit signal {f.target}")
                self._sig_faults.setdefault(f.target, []).append(f)
        self._first, self._last = plan.window()
        self._per_lane = lanes > 1 and any(
            f.lane is not None for f in plan.faults)
        self._applied: Dict[Signal, object] = {}
        self._nonzero = False

    def active_window(self) -> Tuple[int, int]:
        return (self._first, self._last)

    def reset(self) -> None:
        """Forget applied-control state (after a simulator reset zeroed
        the inputs behind our back)."""
        self._applied.clear()
        self._nonzero = False

    def _accumulate(self, faults: List[Fault], cycle: int):
        """Per-kind masks for one target at one cycle."""
        if self._per_lane:
            acc = {FaultKind.TRANSIENT: [0] * self.lanes,
                   FaultKind.STUCK_AT_1: [0] * self.lanes,
                   FaultKind.STUCK_AT_0: [0] * self.lanes}
            for f in faults:
                if not f.active_at(cycle):
                    continue
                self.events += 1
                rows = (range(self.lanes) if f.lane is None else (f.lane,))
                for lane in rows:
                    acc[f.kind][lane] |= f.mask
            return acc
        acc = {FaultKind.TRANSIENT: 0, FaultKind.STUCK_AT_1: 0,
               FaultKind.STUCK_AT_0: 0}
        for f in faults:
            if not f.active_at(cycle):
                continue
            self.events += 1
            acc[f.kind] |= f.mask
        return acc

    def at(self, cycle: int):
        """Control updates and memory operations due at ``cycle``."""
        in_window = self._first <= cycle < self._last
        if not in_window and not self._nonzero:
            return {}, ()
        updates: Dict[Signal, object] = {}
        nonzero = False
        for target, faults in self._sig_faults.items():
            ctrl = self._controls[target]
            acc = self._accumulate(faults, cycle)
            for sig, value in ((ctrl.flip, acc[FaultKind.TRANSIENT]),
                               (ctrl.stuck1, acc[FaultKind.STUCK_AT_1]),
                               (ctrl.stuck0, acc[FaultKind.STUCK_AT_0])):
                if self._applied.get(sig, 0 if not self._per_lane
                                     else None) != value:
                    updates[sig] = value
                    self._applied[sig] = value
                if (value != 0) if not self._per_lane else any(value):
                    nonzero = True
        self._nonzero = nonzero
        mem_ops: List[Tuple[Mem, int, FaultKind, int, Optional[int]]] = []
        if in_window:
            for mem, f in self._mem_faults:
                if f.kind is FaultKind.TRANSIENT:
                    # one persistent upset at its scheduled cycle
                    if cycle == f.cycle:
                        self.events += 1
                        mem_ops.append((mem, f.addr, f.kind, f.mask, f.lane))
                elif f.active_at(cycle):
                    self.events += 1
                    mem_ops.append((mem, f.addr, f.kind, f.mask, f.lane))
        return updates, mem_ops
