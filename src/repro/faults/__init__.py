"""Seeded fault injection for the secure-AES reproduction.

Two layers:

* :mod:`repro.faults.plan` — the mechanism: :class:`Fault`,
  :class:`FaultPlan`, netlist :func:`instrument`\\ ation, and the
  per-cycle :class:`FaultApplier` shared by all three simulation
  backends.
* :mod:`repro.faults.campaign` — the policy: targeted single-fault
  campaigns against the protected design (fail-safe gate) paired with a
  baseline run (detection gate), plus the ``python -m repro faults``
  CLI entry point.

``campaign`` is re-exported lazily: it pulls in the accelerator and SoC
stacks, which must not load just because a simulator was constructed
with a fault plan.
"""

from .plan import (  # noqa: F401
    Fault,
    FaultApplier,
    FaultControl,
    FaultKind,
    FaultPlan,
    FaultPlanError,
    faulted_value,
    instrument,
)

_CAMPAIGN_EXPORTS = (
    "FaultScenario",
    "ScenarioOutcome",
    "CampaignReport",
    "PairedFaultResult",
    "protected_fault_scenarios",
    "baseline_fault_scenarios",
    "run_fault_campaign",
    "run_paired_fault_campaign",
    "fault_site_census",
    "injected_sites",
    "fault_coverage",
    "coverage_scenarios",
    "cmd_faults",
)

__all__ = [
    "Fault",
    "FaultApplier",
    "FaultControl",
    "FaultKind",
    "FaultPlan",
    "FaultPlanError",
    "faulted_value",
    "instrument",
    *_CAMPAIGN_EXPORTS,
]


def __getattr__(name):
    if name in _CAMPAIGN_EXPORTS:
        from . import campaign

        return getattr(campaign, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
