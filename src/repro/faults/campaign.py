"""Targeted fault campaigns: fail-safe gate for the protected design.

The paper's enforcement story (tag pipeline, Fig. 7 stall controller,
Fig. 8 meet check, nonmalleable declassifier) assumes the tag logic
itself never glitches.  This module stress-tests that assumption: seeded
single-fault scenarios — transient single-bit flips, stuck-at windows,
multi-cycle bursts — are injected into the *enforcement* logic of the
protected accelerator (pipeline-stage tag registers, scratchpad tag
cells, stall-controller nets, declassifier inputs) while two users share
the device, and every scenario is classified from the host's view:

* ``leaked``    — a byte of user A's plaintext or key was presented to
  user B's polling reader.  This is the one outcome the protected
  design must never produce: the campaign gate fails.
* ``degraded``  — outputs went missing, were suppressed, dropped, or
  turned to garbage, but nothing crossed users.  **Fail-safe**: the
  design blocked instead of leaking.
* ``corrupted`` — a delivered response carries wrong data or a wrong
  tag for its producer (the unprotected design's typical failure).
* ``clean``     — the fault landed in a bubble or was masked; all
  expected outputs arrived intact.

A paired baseline campaign injects comparable faults into the
unprotected design and must observe at least one ``corrupted`` (or
worse) outcome — evidence the injector actually bites and that the
fail-safe verdict on the protected design is enforcement, not a dead
fault injector.

Why single-*bit* faults hold: delivery needs both the confidentiality
subset check ``conf(head) ⊑ conf(reader)`` *and* the vouch-nibble FIFO
routing to agree (``repro.accel.output_buffer``).  One flipped tag bit
can defeat one of the two, never both — the redundancy this campaign
measures empirically.  (Faulting the output comparator itself is outside
the model: a single-check design can always be defeated by faulting the
check; see docs/robustness.md.)

Everything is deterministic per ``seed``: scenario targets, masks,
cycles, keys, and plaintexts all derive from one ``random.Random``.
Identical scenario lists run on the interpreter, compiled, and batched
backends must produce identical per-scenario outcomes
(:func:`run_cross_backend_campaign` — the ``python -m repro faults``
default and CI gate).
"""

from __future__ import annotations

import json
import random
from typing import Dict, List, Optional, Sequence, Tuple

from ..aes.cipher import encrypt_block
from ..obs import telemetry as _telemetry
from .plan import Fault, FaultKind, FaultPlan

#: stage register instances in pipeline order (sa1..sc10)
STAGE_NAMES = [f"s{u}{r}" for r in range(1, 11) for u in "abc"]

_MASK64 = (1 << 64) - 1


class FaultScenario:
    """One named single-fault experiment (or the fault-free control)."""

    __slots__ = ("name", "category", "plan")

    def __init__(self, name: str, category: str, plan: FaultPlan):
        self.name = name
        self.category = category
        self.plan = plan

    def to_dict(self) -> dict:
        return {"name": self.name, "category": self.category,
                "plan": self.plan.to_dict()}

    def __repr__(self) -> str:
        return f"FaultScenario({self.name!r}, {self.category!r})"


class ScenarioOutcome:
    """Classification of one scenario run."""

    __slots__ = ("scenario", "outcome", "details")

    def __init__(self, scenario: FaultScenario, outcome: str, details: dict):
        self.scenario = scenario
        self.outcome = outcome
        self.details = details

    def to_dict(self) -> dict:
        return {"scenario": self.scenario.to_dict(),
                "outcome": self.outcome, "details": self.details}


class CampaignReport:
    """All scenario outcomes for one design on one backend."""

    def __init__(self, design: str, backend: str, seed: int,
                 outcomes: List[ScenarioOutcome]):
        self.design = design
        self.backend = backend
        self.seed = seed
        self.outcomes = outcomes

    def count(self, outcome: str) -> int:
        return sum(1 for o in self.outcomes if o.outcome == outcome)

    @property
    def leaks(self) -> int:
        return self.count("leaked")

    @property
    def corrupted(self) -> int:
        return self.count("corrupted")

    @property
    def harness_ok(self) -> bool:
        """The fault-free control scenario must classify clean."""
        return all(o.outcome == "clean" for o in self.outcomes
                   if o.scenario.category == "control")

    def verdict_rows(self) -> List[Tuple[str, str]]:
        return [(o.scenario.name, o.outcome) for o in self.outcomes]

    def to_dict(self) -> dict:
        return {"design": self.design, "backend": self.backend,
                "seed": self.seed, "scenarios": len(self.outcomes),
                "leaked": self.leaks, "corrupted": self.corrupted,
                "degraded": self.count("degraded"),
                "clean": self.count("clean"),
                "detected": self.count("detected"),
                "harness_ok": self.harness_ok,
                "outcomes": [o.to_dict() for o in self.outcomes]}

    def render(self) -> str:
        lines = [f"{self.design} (backend={self.backend}, seed={self.seed}):"]
        for o in self.outcomes:
            s = o.scenario
            faults = ", ".join(repr(f) for f in s.plan.faults) or "none"
            lines.append(f"  {s.name:26s} [{s.category:10s}] "
                         f"-> {o.outcome:9s} ({faults})")
        lines.append(f"  totals: leaked={self.leaks} "
                     f"corrupted={self.corrupted} "
                     f"degraded={self.count('degraded')} "
                     f"clean={self.count('clean')} "
                     f"detected={self.count('detected')}")
        return "\n".join(lines)


#: Outcomes that count as the campaign visibly noticing a fault: a
#: corrupted or leaked delivery the host can see, or a shadow-tag
#: monitor verdict ("detected") when the tag plane flags the fault even
#: though delivery stayed clean.
DETECTED_OUTCOMES = ("corrupted", "leaked", "detected")


def injected_outcomes(report: CampaignReport) -> List[ScenarioOutcome]:
    """Outcomes of the scenarios that actually injected a fault."""
    return [o for o in report.outcomes if o.scenario.category != "control"]


def detection_accuracy(report: CampaignReport) -> float:
    """Fraction of injected-fault scenarios with a host-visible effect.

    The campaign's statistical power: every scenario is generated to be
    architecturally observable (e.g. baseline tag faults land in the
    vouch nibble the delivery path actually reads), so anything below
    1.0 means the injector or the classification missed.  Shadow-tag
    ``detected`` outcomes count — a fault the synthesized monitor flags
    is detected even when delivery is untouched."""
    outs = injected_outcomes(report)
    if not outs:
        return 0.0
    return sum(o.outcome in DETECTED_OUTCOMES for o in outs) / len(outs)


def failsafe_accuracy(report: CampaignReport) -> float:
    """Fraction of injected-fault scenarios that did not leak."""
    outs = injected_outcomes(report)
    if not outs:
        return 0.0
    return sum(o.outcome != "leaked" for o in outs) / len(outs)


class PairedFaultResult:
    """Protected fail-safe gate plus baseline detection gate."""

    def __init__(self, protected: CampaignReport, baseline: CampaignReport):
        self.protected = protected
        self.baseline = baseline

    @property
    def fail_safe(self) -> bool:
        return (self.protected.leaks == 0 and self.protected.harness_ok
                and len(self.protected.outcomes) > 1)

    @property
    def detection(self) -> bool:
        """The injector demonstrably bites: the unprotected design shows
        at least one corrupted (or leaked) delivery under the same
        injector."""
        return (self.baseline.corrupted + self.baseline.leaks) >= 1

    @property
    def ok(self) -> bool:
        return self.fail_safe and self.detection and self.baseline.harness_ok

    def to_dict(self) -> dict:
        return {"ok": self.ok, "fail_safe": self.fail_safe,
                "detection": self.detection,
                "protected": self.protected.to_dict(),
                "baseline": self.baseline.to_dict()}

    def render(self) -> str:
        lines = ["=" * 70, "fault-injection campaign", "=" * 70,
                 self.protected.render(), "", self.baseline.render(), ""]
        if self.ok:
            lines.append(
                "VERDICT: protected design fail-safe under every single "
                "fault; baseline demonstrably corrupted "
                f"({self.baseline.corrupted + self.baseline.leaks} scenarios)")
        else:
            lines.append(
                f"VERDICT: FAILED — fail_safe={self.fail_safe} "
                f"(leaks={self.protected.leaks}), "
                f"detection={self.detection} "
                f"(baseline corrupted={self.baseline.corrupted})")
        return "\n".join(lines)


# -- scenario generation ---------------------------------------------------------

def _tag_fault(rng: random.Random, target: str) -> Fault:
    """A seeded single-bit fault on an 8-bit tag signal."""
    kind = rng.choice([FaultKind.TRANSIENT, FaultKind.STUCK_AT_0,
                       FaultKind.STUCK_AT_1])
    duration = 1 if kind is FaultKind.TRANSIENT else rng.randint(6, 14)
    return Fault(target, kind, 1 << rng.randrange(8),
                 cycle=rng.randint(2, 40), duration=duration)


def protected_fault_scenarios(seed: int, smoke: bool = False,
                              shadow_tags: bool = False,
                              ) -> List[FaultScenario]:
    """Seeded scenario list over the protected design's enforcement logic.

    With ``shadow_tags=True`` the list also targets the *synthesized
    shadow tag nets* (``…__conf``) the ``tag_tracking=True`` transform
    adds — the campaign then needs a tag-tracking driver (see
    :func:`run_fault_campaign`).  Over-tainting faults must be caught by
    the synthesized flow sites ("detected"), and any shadow-plane fault
    must leave the design's own enforcement — and hence delivery
    correctness — untouched."""
    rng = random.Random(seed * 1000003 + 17)
    scenarios = [FaultScenario("no_fault", "control", FaultPlan())]

    stages = rng.sample(STAGE_NAMES, 2 if smoke else 6)
    for st in stages:
        scenarios.append(FaultScenario(
            f"pipe_tag_{st}", "pipe_tag",
            FaultPlan([_tag_fault(rng, f"aes.pipe.{st}.tag_r")])))

    # scratchpad tag cells: key-slot cells of both users (slot 1 = cells
    # 2,3 belong to user A; slot 2 = cells 4,5 to user B)
    for addr in ([rng.choice([2, 3, 4, 5])] if smoke
                 else rng.sample([2, 3, 4, 5], 3)):
        kind = rng.choice([FaultKind.TRANSIENT, FaultKind.STUCK_AT_0])
        duration = 1 if kind is FaultKind.TRANSIENT else rng.randint(6, 14)
        scenarios.append(FaultScenario(
            f"scratch_tag_cell{addr}", "scratch_tag",
            FaultPlan([Fault("aes.scratchpad.tags", kind,
                             1 << rng.randrange(8), cycle=rng.randint(2, 30),
                             duration=duration, addr=addr)])))

    stall_faults = [
        ("stall_never", "aes.stallctl.stall", FaultKind.STUCK_AT_0, 1),
        ("stall_allowed_forced", "aes.stallctl.allowed",
         FaultKind.STUCK_AT_1, 1),
        ("advance_stuck_on", "aes.advance", FaultKind.STUCK_AT_1, 1),
        ("advance_stuck_off", "aes.advance", FaultKind.STUCK_AT_0, 1),
        ("meet_flip", "aes.stallctl.meet_o", FaultKind.TRANSIENT,
         1 << rng.randrange(4)),
    ]
    for name, target, kind, mask in (stall_faults[:1] if smoke
                                     else stall_faults):
        duration = 1 if kind is FaultKind.TRANSIENT else rng.randint(4, 10)
        scenarios.append(FaultScenario(
            name, "stall",
            FaultPlan([Fault(target, kind, mask, cycle=rng.randint(4, 30),
                             duration=duration)])))

    declass_faults = [
        ("declass_valid_forced", "aes.declass.in_valid",
         FaultKind.STUCK_AT_1, 1, rng.randint(4, 10)),
        ("declass_op_flip", "aes.declass.in_op",
         FaultKind.TRANSIENT, 1, rng.randint(4, 8)),
        ("declass_tag_bit", "aes.declass.in_tag",
         FaultKind.TRANSIENT, 1 << rng.randrange(8), 1),
        ("declass_ok_forced", "aes.declass.declass_ok",
         FaultKind.STUCK_AT_1, 1, rng.randint(6, 14)),
    ]
    for name, target, kind, mask, duration in (declass_faults[:1] if smoke
                                               else declass_faults):
        scenarios.append(FaultScenario(
            name, "declass",
            FaultPlan([Fault(target, kind, mask, cycle=rng.randint(4, 30),
                             duration=duration)])))

    if not smoke:
        # containment check: a datapath burst must stay with its owner
        st = rng.choice(STAGE_NAMES[9:21])
        scenarios.append(FaultScenario(
            f"data_burst_{st}", "datapath",
            FaultPlan([Fault(f"aes.pipe.{st}.data_r", FaultKind.TRANSIENT,
                             rng.getrandbits(128) | 1, cycle=4,
                             duration=26)])))

    if shadow_tags:
        # stuck-at-1 over-taints: every downstream declared sink must
        # scream; stuck-at-0 under-taints: the monitor goes quiet but the
        # design's own tag plane still enforces (delivery stays correct)
        for st in rng.sample(STAGE_NAMES, 1 if smoke else 2):
            scenarios.append(FaultScenario(
                f"shadow_conf_high_{st}", "shadow_tag",
                FaultPlan([Fault(f"aes.pipe.{st}.data_r__conf",
                                 FaultKind.STUCK_AT_1, 0xF,
                                 cycle=rng.randint(4, 20),
                                 duration=rng.randint(24, 40))])))
        st = rng.choice(STAGE_NAMES)
        scenarios.append(FaultScenario(
            f"shadow_conf_low_{st}", "shadow_tag",
            FaultPlan([Fault(f"aes.pipe.{st}.data_r__conf",
                             FaultKind.STUCK_AT_0, 0xF,
                             cycle=rng.randint(4, 20),
                             duration=rng.randint(24, 40))])))
    return scenarios


def baseline_fault_scenarios(seed: int,
                             smoke: bool = False) -> List[FaultScenario]:
    """Comparable faults for the unprotected design (detection gate)."""
    rng = random.Random(seed * 998244353 + 29)
    scenarios = [FaultScenario("no_fault", "control", FaultPlan())]

    burst_stages = rng.sample(STAGE_NAMES[6:24], 1 if smoke else 2)
    for st in burst_stages:
        scenarios.append(FaultScenario(
            f"data_burst_{st}", "datapath",
            FaultPlan([Fault(f"aes.pipe.{st}.data_r", FaultKind.TRANSIENT,
                             rng.getrandbits(128) | 1, cycle=4,
                             duration=26)])))
    # the baseline's delivery path reads only the vouch nibble
    # (``tag & 0xF``); a flip in the ignored conf bits is architecturally
    # invisible to the host and would classify "clean" without saying
    # anything about campaign power — keep baseline tag faults where the
    # unprotected design can actually show them
    for st in rng.sample(STAGE_NAMES, 1 if smoke else 2):
        scenarios.append(FaultScenario(
            f"pipe_tag_{st}", "pipe_tag",
            FaultPlan([Fault(f"aes.pipe.{st}.tag_r", FaultKind.TRANSIENT,
                             1 << rng.randrange(4), cycle=4, duration=26)])))
    if not smoke:
        scenarios.append(FaultScenario(
            "advance_stuck_off", "stall",
            FaultPlan([Fault("aes.advance", FaultKind.STUCK_AT_0, 1,
                             cycle=rng.randint(6, 20),
                             duration=rng.randint(4, 10))])))
    return scenarios


# -- coverage-observatory census ---------------------------------------------------

#: fixed control-ring targets sampled by :func:`protected_fault_scenarios`
_STALL_SITES = ("aes.stallctl.stall", "aes.stallctl.allowed",
                "aes.advance", "aes.stallctl.meet_o")
_DECLASS_SITES = ("aes.declass.in_valid", "aes.declass.in_op",
                  "aes.declass.in_tag", "aes.declass.declass_ok")
#: key-slot tag cells of both users (slot 1 = cells 2,3; slot 2 = 4,5)
_SCRATCH_TAG_CELLS = (2, 3, 4, 5)


def fault_site_census(shadow_tags: bool = False) -> List[Dict[str, str]]:
    """The full injectable-site candidate space the seeded generators
    sample from.

    One entry per ``(family, site)``; ``site`` is a hierarchical signal
    path, with memory cells written ``path[addr]``.  The coverage
    observatory diffs this census against the sites a campaign actually
    injected to find never-injected holes — by construction the smoke
    campaigns sample a strict subset, so the diff names real holes.
    """
    census: List[Dict[str, str]] = []
    for st in STAGE_NAMES:
        census.append({"site": f"aes.pipe.{st}.tag_r", "family": "pipe_tag"})
    for addr in _SCRATCH_TAG_CELLS:
        census.append({"site": f"aes.scratchpad.tags[{addr}]",
                       "family": "scratch_tag"})
    for target in _STALL_SITES:
        census.append({"site": target, "family": "stall"})
    for target in _DECLASS_SITES:
        census.append({"site": target, "family": "declass"})
    for st in STAGE_NAMES[9:21]:
        census.append({"site": f"aes.pipe.{st}.data_r", "family": "datapath"})
    if shadow_tags:
        for st in STAGE_NAMES:
            census.append({"site": f"aes.pipe.{st}.data_r__conf",
                           "family": "shadow_tag"})
    return census


def injected_sites(scenarios: Sequence[FaultScenario]) -> List[str]:
    """The census-keyed sites a scenario list actually injects."""
    sites = set()
    for sc in scenarios:
        for f in sc.plan.faults:
            sites.add(f.target if f.addr is None
                      else f"{f.target}[{f.addr}]")
    return sorted(sites)


def fault_coverage(scenarios: Sequence[FaultScenario],
                   shadow_tags: bool = False) -> Dict[str, object]:
    """Injected fraction and per-family hole list for one scenario set."""
    census = fault_site_census(shadow_tags=shadow_tags)
    injected = set(injected_sites(scenarios))
    families: Dict[str, Dict[str, int]] = {}
    holes: List[Dict[str, str]] = []
    for entry in census:
        fam = families.setdefault(entry["family"],
                                  {"sites": 0, "injected": 0})
        fam["sites"] += 1
        if entry["site"] in injected:
            fam["injected"] += 1
        else:
            holes.append(dict(entry))
    total = len(census)
    hit = sum(f["injected"] for f in families.values())
    return {
        "sites": total,
        "injected": hit,
        "fraction": (hit / total) if total else 1.0,
        "families": families,
        "holes": holes,
    }


def coverage_scenarios() -> List[Dict[str, object]]:
    """Which attribution planes the fault gate's scenarios touch.

    The coverage observatory unions these rows with the other campaign
    modules' registrations into the campaign-plane scenario matrix.
    """
    rows: List[Dict[str, object]] = []
    planes = {
        "control": ["control"],
        "pipe_tag": ["datapath", "control"],
        "scratch_tag": ["scratchpad"],
        "stall": ["control"],
        "declass": ["control"],
        "datapath": ["datapath"],
        "shadow_tag": ["shadow_tags"],
    }
    for sc in protected_fault_scenarios(seed=2026, shadow_tags=True):
        rows.append({"gate": "faults", "scenario": sc.name,
                     "planes": planes.get(sc.category, ["datapath"])})
    return rows


# -- campaign execution ----------------------------------------------------------

class _Workload:
    """Deterministic two-user workload shared by every scenario."""

    def __init__(self, seed: int):
        rng = random.Random(seed * 69069 + 3)
        self.key_a = rng.getrandbits(128) | (1 << 127)
        self.key_b = rng.getrandbits(128) | (1 << 126)
        self.plain_a = [rng.getrandbits(128) for _ in range(2)]
        self.plain_b = [rng.getrandbits(128) for _ in range(2)]
        self.cipher_a = [encrypt_block(p, self.key_a) for p in self.plain_a]
        self.expect_b = [encrypt_block(p, self.key_b) for p in self.plain_b]
        # every value whose appearance at the *other* user's reader is a
        # cross-user leak: plaintexts, whole keys, and their 64-bit halves
        self.secret_a = set(self.plain_a) | {
            self.key_a, self.key_a >> 64, self.key_a & _MASK64}
        self.secret_b = set(self.plain_b) | {
            self.key_b, self.key_b >> 64, self.key_b & _MASK64}


def _provision(drv, users, wl: _Workload, protected: bool) -> None:
    drv.sim.poke(f"{drv.top}.out_ready", 1)
    drv.sim.poke(f"{drv.top}.rd_user", users["u0"])
    drv._idle_inputs()
    if protected:
        drv.allocate_slot(1, users["u0"])
        drv.allocate_slot(2, users["u1"])
    drv.load_key(users["u0"], 1, wl.key_a)
    drv.load_key(users["u1"], 2, wl.key_b)


def _run_scenario(drv, users, wl: _Workload, scenario: FaultScenario,
                  protected: bool) -> ScenarioOutcome:
    from ..accel.common import CMD_DECRYPT, CMD_ENCRYPT

    sim = drv.sim
    sim.reset()
    drv.responses.clear()
    _provision(drv, users, wl, protected)

    base = sim.cycle
    plan = scenario.plan.shifted(base)
    sim.load_fault_plan(plan)
    fault_end = plan.window()[1] if len(plan) else base

    tag_a, tag_b = users["u0"], users["u1"]
    blocked_issues = 0
    try:
        drv.issue(CMD_DECRYPT, tag_a, slot=1, data=wl.cipher_a[0])
        drv.issue(CMD_ENCRYPT, tag_b, slot=2, data=wl.plain_b[0])
        drv.issue(CMD_DECRYPT, tag_a, slot=1, data=wl.cipher_a[1])
        drv.issue(CMD_ENCRYPT, tag_b, slot=2, data=wl.plain_b[1])
    except TimeoutError:
        blocked_issues = 1  # accelerator wedged shut: fail-safe, not leak
    drv.take_responses()  # anything collected mid-issue went to reader A
    deliveries: List[Tuple[str, int, int]] = []  # (reader, tag, data)

    polls = 0
    expected_left = {"A": list(wl.plain_a), "B": list(wl.expect_b)}
    while polls < 200:
        reader = "A" if polls % 2 == 0 else "B"
        drv.set_reader(tag_a if reader == "A" else tag_b)
        drv.step()
        for r in drv.take_responses():
            deliveries.append((reader, r.tag, r.data))
            if r.data in expected_left[reader]:
                expected_left[reader].remove(r.data)
        polls += 1
        done = not expected_left["A"] and not expected_left["B"]
        if done and sim.cycle > fault_end + 10:
            break
    sim.clear_fault_plan()

    leaks = [d for reader, _tag, d in deliveries
             if (reader == "B" and d in wl.secret_a)
             or (reader == "A" and d in wl.secret_b)]
    expected_all = set(wl.plain_a) | set(wl.expect_b)
    vouch_of = {tag_a & 0xF: "A", tag_b & 0xF: "B"}
    garbage = [d for _r, _t, d in deliveries if d not in expected_all]
    mistagged = [
        (t, d) for _r, t, d in deliveries
        if d in expected_all and vouch_of.get(t & 0xF) != (
            "A" if d in wl.plain_a else "B")]
    missing = len(expected_left["A"]) + len(expected_left["B"])

    if leaks:
        outcome = "leaked"
    elif garbage or mistagged:
        # wrong data (or wrong ownership tag) was *delivered*; on the
        # protected design this stayed within one user => contained
        outcome = "corrupted"
    elif missing or blocked_issues:
        outcome = "degraded"
    else:
        outcome = "clean"

    tag_flow_sites = None
    if sim.tags is not None:
        tag_flow_sites = sum(1 for v in sim.tags.violations()
                             if v.site.kind == "flow")
        if (scenario.category == "shadow_tag" and outcome == "clean"
                and tag_flow_sites):
            # the corrupted monitor announced itself without disturbing
            # delivery — the shadow plane is observable, not load-bearing
            outcome = "detected"

    details = {
        "deliveries": len(deliveries), "missing_outputs": missing,
        "garbage_outputs": len(garbage), "mistagged_outputs": len(mistagged),
        "blocked_issue": bool(blocked_issues),
        "fault_events": sim.fault_events, "counters": drv.counters(),
        "polled_cycles": polls,
    }
    if tag_flow_sites is not None:
        details["tag_flow_sites"] = tag_flow_sites
    return ScenarioOutcome(scenario, outcome, details)


def _campaign_targets(scenarios: Sequence[FaultScenario]) -> List[str]:
    targets = set()
    for s in scenarios:
        targets.update(s.plan.signal_targets())
    return sorted(targets)


def run_fault_campaign(protected: bool, seed: int = 2026,
                       backend: str = "compiled",
                       smoke: bool = False,
                       scenarios: Optional[List[FaultScenario]] = None,
                       shadow_tags: bool = False,
                       ) -> CampaignReport:
    """Run the full scenario list against one design on one backend.

    One simulator is instrumented with the union of every scenario's
    targets (zero fault masks are the identity), so the compile caches
    see a single netlist per design — scenarios differ only in which
    control inputs get poked, and each starts from ``sim.reset()``.

    ``shadow_tags=True`` (protected only) runs the campaign on a
    tag-tracking driver and extends the target list with the synthesized
    shadow tag nets — the transform runs before fault instrumentation,
    so the injector reaches the tag plane like any other net.
    """
    from ..accel.baseline import AesAcceleratorBaseline
    from ..accel.driver import AcceleratorDriver, make_users
    from ..accel.protected import AesAcceleratorProtected

    shadow_tags = shadow_tags and protected
    if scenarios is None:
        scenarios = (protected_fault_scenarios(seed, smoke, shadow_tags)
                     if protected else baseline_fault_scenarios(seed, smoke))
    design = (AesAcceleratorProtected() if protected
              else AesAcceleratorBaseline())
    kwargs = {}
    if shadow_tags:
        from ..accel.common import LATTICE

        kwargs = dict(tag_tracking=True, lattice=LATTICE)
    drv = AcceleratorDriver(design, backend=backend,
                            fault_targets=_campaign_targets(scenarios),
                            **kwargs)
    users = make_users()
    wl = _Workload(seed)

    obs = _telemetry()
    name = "protected" if protected else "baseline"
    outcomes = []
    for sc in scenarios:
        out = _run_scenario(drv, users, wl, sc, protected)
        outcomes.append(out)
        if obs is not None:
            m = obs.metrics
            m.counter("fault_scenarios_total",
                      "fault scenarios run", ("design", "outcome")).inc(
                design=name, outcome=out.outcome)
            m.counter("fault_injections_total",
                      "individual fault applications", ("design",)).inc(
                out.details["fault_events"], design=name)
    report = CampaignReport(name, backend, seed, outcomes)
    if obs is not None:
        obs.metrics.gauge(
            "fault_campaign_leaks", "cross-user leaks observed",
            ("design", "backend")).set(
            report.leaks, design=name, backend=backend)
        if protected:
            obs.security.emit(
                "fault_campaign_verdict",
                design=name, backend=backend, seed=seed,
                leaked=report.leaks, corrupted=report.corrupted,
                degraded=report.count("degraded"),
                clean=report.count("clean"))
    return report


def run_paired_fault_campaign(seed: int = 2026, backend: str = "compiled",
                              smoke: bool = False,
                              shadow_tags: bool = False) -> PairedFaultResult:
    """Protected fail-safe campaign plus the baseline detection pair."""
    return PairedFaultResult(
        run_fault_campaign(True, seed=seed, backend=backend, smoke=smoke,
                           shadow_tags=shadow_tags),
        run_fault_campaign(False, seed=seed, backend=backend, smoke=smoke))


ALL_BACKENDS = ("compiled", "interp", "batched")


def run_cross_backend_campaign(seed: int = 2026, smoke: bool = False,
                               backends: Sequence[str] = ALL_BACKENDS,
                               shadow_tags: bool = False,
                               ) -> Dict[str, object]:
    """Run the paired campaign on every backend and diff the verdicts.

    Returns a dict with per-backend results plus ``consistent`` — True
    iff every backend produced the identical per-scenario outcome list
    (the acceptance property: fault semantics are backend-independent).
    """
    results: Dict[str, PairedFaultResult] = {}
    for be in backends:
        results[be] = run_paired_fault_campaign(seed=seed, backend=be,
                                                smoke=smoke,
                                                shadow_tags=shadow_tags)
    rows = {be: (r.protected.verdict_rows(), r.baseline.verdict_rows())
            for be, r in results.items()}
    first = next(iter(rows.values()))
    consistent = all(v == first for v in rows.values())
    ok = consistent and all(r.ok for r in results.values())
    return {"ok": ok, "consistent": consistent, "results": results,
            "backends": list(backends)}


# -- CLI -------------------------------------------------------------------------

def cmd_faults(args) -> int:
    """Implementation of ``python -m repro faults``."""
    from ..gate import gate_epilogue

    seed, smoke = args.seed, args.smoke
    shadow = getattr(args, "shadow_tags", False)
    if args.backend == "all":
        cross = run_cross_backend_campaign(seed=seed, smoke=smoke,
                                           shadow_tags=shadow)
        results: Dict[str, PairedFaultResult] = cross["results"]
        payload = {
            "ok": cross["ok"], "consistent": cross["consistent"],
            "seed": seed, "smoke": smoke,
            "backends": {be: r.to_dict() for be, r in results.items()},
        }
        ok = cross["ok"]

        def render() -> str:
            shown = results[cross["backends"][0]]
            lines = [shown.render(), ""]
            for be, r in results.items():
                lines.append(f"backend {be:8s}: ok={r.ok} "
                             f"leaks={r.protected.leaks} "
                             f"baseline_corrupted={r.baseline.corrupted}")
            lines.append(f"cross-backend consistent: {cross['consistent']}")
            lines.append(f"OVERALL: {'PASS' if ok else 'FAIL'}")
            return "\n".join(lines)
    else:
        result = run_paired_fault_campaign(seed=seed, backend=args.backend,
                                           smoke=smoke, shadow_tags=shadow)
        payload = {"ok": result.ok, "seed": seed, "smoke": smoke,
                   "backends": {args.backend: result.to_dict()}}
        ok = result.ok
        render = result.render
    return gate_epilogue(
        args, ok=ok, payload=payload, render=render,
        artifacts={"fault_report.json": payload})
