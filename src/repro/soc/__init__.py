"""repro.soc — the multi-user SoC model around the accelerator (Fig. 2)."""

from .cache_tags import CacheTags
from .hw_system import ArbitratedAccelerator
from .secure_cache import SecureCache
from .requests import (
    Request,
    blocks_to_message,
    decrypt_stream,
    encrypt_stream,
    message_blocks,
    mixed_workload,
    random_blocks,
)
from .shard import ShardCore
from .system import SoCSystem
from .users import Principal, default_principals, users_of

__all__ = [
    "ArbitratedAccelerator",
    "CacheTags",
    "Principal",
    "Request",
    "SecureCache",
    "ShardCore",
    "SoCSystem",
    "blocks_to_message",
    "decrypt_stream",
    "default_principals",
    "encrypt_stream",
    "message_blocks",
    "mixed_workload",
    "random_blocks",
    "users_of",
]
