"""The CacheTags worked example of Fig. 3, faithfully transcribed.

The paper's ChiselFlow listing: a statically partitioned cache-tag store
where ``tag_0`` holds trusted data, ``tag_1`` untrusted data, and the
shared ``tag_i``/``tag_o`` ports carry the dependent label
``(public, DL(way))`` — trusted when ``way == 0``, untrusted when
``way == 1``.  The broken variant adds a cross-way write, which the
checker rejects with a Fig. 3-style label error.
"""

from __future__ import annotations

from ..hdl.module import Module, otherwise, when
from ..ifc.dependent import DependentLabel
from ..ifc.label import Label
from ..ifc.lattice import SecurityLattice, two_point


def _labels(lattice: SecurityLattice):
    p_t = Label(lattice, "public", "trusted")
    p_u = Label(lattice, "public", "untrusted")
    return p_t, p_u


class CacheTags(Module):
    """Fig. 3: dependent-label cache tags over the two-point lattice."""

    def __init__(self, lattice: SecurityLattice = None,
                 broken: bool = False, name: str = "cache_tags"):
        super().__init__(name)
        self.lattice = lattice or two_point()
        p_t, p_u = _labels(self.lattice)

        self.we = self.input("we", 1, label=p_t)
        self.way = self.input("way", 1, label=p_t)
        way_dl = DependentLabel(self.way, {0: p_t, 1: p_u}, self.lattice)
        self.tag_i = self.input("tag_i", 19, label=way_dl)
        self.index = self.input("index", 8, label=p_t)
        self.tag_o = self.output(
            "tag_o", 19,
            label=DependentLabel(self.way, {0: p_t, 1: p_u}, self.lattice),
            default=0,
        )

        self.tag_0 = self.mem("tag_0", 256, 19, label=p_t)
        self.tag_1 = self.mem("tag_1", 256, 19, label=p_u)

        with when(self.we):
            with when(self.way.eq(0)):
                self.tag_0.write(self.index, self.tag_i)
            with otherwise():
                self.tag_1.write(self.index, self.tag_i)

        if broken:
            # implementation flaw: untrusted port data lands in the
            # trusted way — the checker reports the integrity violation
            with when(self.we & self.way.eq(1)):
                self.tag_0.write(self.index, self.tag_i)

        with when(~self.we):
            with when(self.way.eq(0)):
                self.tag_o <<= self.tag_0.read(self.index)
            with otherwise():
                self.tag_o <<= self.tag_1.read(self.index)
