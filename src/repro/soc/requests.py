"""Request records and workload generation for the SoC experiments."""

from __future__ import annotations

import random
from typing import List, Optional

from ..accel.common import CMD_DECRYPT, CMD_ENCRYPT


#: statuses a request can never leave (satellite invariant: every request
#: ends in exactly one of these — nothing dangles as ``issued`` forever)
TERMINAL_STATUSES = frozenset({"delivered", "dropped", "timed_out",
                               "rejected"})


class Request:
    """One encrypt/decrypt request from a user application.

    ``status`` tracks the lifecycle::

        queued -> issued -> delivered
               \\-> backoff -> queued  (watchdog retry, budget permitting)
               \\-> timed_out | dropped | rejected   (terminal failures)

    ``deadline`` (cycles from submission), ``attempts`` (issue count)
    and ``retries`` (watchdog re-queues — counted separately because a
    request can trip while still queued, before its first issue) feed
    the SoC watchdog/retry layer; all are optional for bare driver use.
    """

    __slots__ = ("user", "cmd", "slot", "data", "submitted_cycle",
                 "issued_cycle", "delivered_cycle", "result", "status",
                 "deadline", "attempts", "retries")

    def __init__(self, user: str, cmd: int, slot: int, data: int,
                 deadline: Optional[int] = None):
        self.user = user
        self.cmd = cmd
        self.slot = slot
        self.data = data
        self.submitted_cycle: Optional[int] = None
        self.issued_cycle: Optional[int] = None
        self.delivered_cycle: Optional[int] = None
        self.result: Optional[int] = None
        self.status: str = "created"
        self.deadline = deadline
        self.attempts: int = 0
        self.retries: int = 0

    @property
    def is_terminal(self) -> bool:
        return self.status in TERMINAL_STATUSES

    @property
    def completed_cycle(self) -> Optional[int]:
        """Backwards-compatible alias for :attr:`delivered_cycle`."""
        return self.delivered_cycle

    @property
    def latency(self) -> Optional[int]:
        """Issue-to-delivery, in cycles (None until delivered)."""
        if self.issued_cycle is None or self.delivered_cycle is None:
            return None
        return self.delivered_cycle - self.issued_cycle

    @property
    def queue_cycles(self) -> Optional[int]:
        """Submit-to-issue wait, in cycles (None until issued)."""
        if self.submitted_cycle is None or self.issued_cycle is None:
            return None
        return self.issued_cycle - self.submitted_cycle

    @property
    def total_cycles(self) -> Optional[int]:
        """Submit-to-delivery, in cycles (None until delivered)."""
        if self.submitted_cycle is None or self.delivered_cycle is None:
            return None
        return self.delivered_cycle - self.submitted_cycle

    def __repr__(self) -> str:
        op = "ENC" if self.cmd == CMD_ENCRYPT else "DEC"
        return f"Request({self.user}, {op}, slot={self.slot})"


def encrypt_stream(user: str, slot: int, blocks: List[int]) -> List[Request]:
    return [Request(user, CMD_ENCRYPT, slot, b) for b in blocks]


def decrypt_stream(user: str, slot: int, blocks: List[int]) -> List[Request]:
    return [Request(user, CMD_DECRYPT, slot, b) for b in blocks]


def random_blocks(n: int, seed: int = 0) -> List[int]:
    rng = random.Random(seed)
    return [rng.getrandbits(128) for _ in range(n)]


def message_blocks(message: bytes) -> List[int]:
    """Split a byte string into zero-padded 128-bit blocks."""
    padded = message + b"\x00" * ((16 - len(message) % 16) % 16)
    return [
        int.from_bytes(padded[i:i + 16], "big")
        for i in range(0, len(padded), 16)
    ]


def blocks_to_message(blocks: List[int], length: Optional[int] = None) -> bytes:
    data = b"".join(b.to_bytes(16, "big") for b in blocks)
    return data if length is None else data[:length]


def mixed_workload(users_slots, blocks_per_user: int,
                   seed: int = 0) -> List[Request]:
    """Interleaved multi-user encrypt workload (round-robin order).

    ``users_slots`` is a list of ``(user_name, slot)`` pairs.
    """
    rng = random.Random(seed)
    per_user = {
        user: encrypt_stream(user, slot,
                             [rng.getrandbits(128) for _ in range(blocks_per_user)])
        for user, slot in users_slots
    }
    out: List[Request] = []
    for i in range(blocks_per_user):
        for user, _slot in users_slots:
            out.append(per_user[user][i])
    return out
