"""Per-shard serving core: labelled users sharing one accelerator (Fig. 2).

:class:`ShardCore` binds a set of :class:`~repro.soc.users.Principal`
objects to one accelerator instance through the transaction driver.
Requests queue per user and issue round-robin (the software model of
the arbiter; the HDL :class:`~repro.accel.arbiter.RequestArbiter` is
verified separately); responses route back by tag — in the protected
design the hardware enforces the routing, in the baseline the harness
exposes whatever the hardware hands out, which is how the
plaintext-disclosure attack shows.

Historically this class *was* ``SoCSystem`` (one SoC, one accelerator,
plus spares).  The fleet layer (:mod:`repro.soc.fleet`) embeds one
``ShardCore`` per worker process as the serving engine of each shard,
so the logic lives here under a shard-neutral name and
:class:`~repro.soc.system.SoCSystem` remains as the single-shard
facade.  ``shard_id`` labels this core's metrics so fleet dashboards
can tell shards apart across failover boundaries.

When telemetry is enabled (:mod:`repro.obs`), the core traces every
request's lifecycle (submit → issue → deliver) on a per-user track,
feeds per-user latency/throughput histograms, counts drops, and — on
the protected design — the driver's security probe streams enforcement
events.  With telemetry disabled all of that collapses to a single
``None`` check per operation.
"""

from __future__ import annotations

import bisect
import random
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..accel.baseline import AesAcceleratorBaseline
from ..accel.driver import AcceleratorDriver
from ..accel.protected import AesAcceleratorProtected
from ..obs import Telemetry, telemetry as _telemetry
from .requests import Request
from .users import Principal, default_principals, users_of


class ShardCore:
    """One serving shard: several users, one shared AES accelerator."""

    #: how many exact latency samples each per-user histogram retains for
    #: quantile gauges (see ``publish_latency_quantiles``)
    LATENCY_RESERVOIR = 512

    def __init__(self, protected: bool = True,
                 principals: Optional[Dict[str, Principal]] = None,
                 backend: str = "compiled",
                 telemetry: Optional[Telemetry] = None,
                 reader_stutter: int = 0,
                 stutter_users: Optional[Iterable[str]] = None,
                 fault_targets: Optional[Iterable[str]] = None,
                 request_deadline: Optional[int] = None,
                 max_retries: int = 2,
                 retry_base_delay: int = 32,
                 retry_jitter: int = 16,
                 retry_seed: int = 1,
                 quarantine_threshold: int = 3,
                 max_spares: int = 1,
                 shard_id: str = "0"):
        self.protected = protected
        #: stable identity of this serving core inside a fleet; surfaces
        #: as the ``shard`` label on per-shard metrics
        self.shard_id = str(shard_id)
        self.principals = principals or default_principals()
        self._backend = backend
        self._fault_targets = (tuple(fault_targets)
                               if fault_targets is not None else None)
        self.driver = self._build_driver()
        #: default end-to-end budget (cycles from submission) before the
        #: watchdog trips a request; None disables the watchdog unless a
        #: request carries its own ``deadline``
        self.request_deadline = request_deadline
        #: how many times the watchdog re-queues a tripped request before
        #: declaring it ``timed_out`` for good
        self.max_retries = max_retries
        self.retry_base_delay = retry_base_delay
        self.retry_jitter = retry_jitter
        self._retry_rng = random.Random(retry_seed)
        #: consecutive watchdog trips (no intervening delivery) that
        #: trigger quarantine of the accelerator
        self.quarantine_threshold = quarantine_threshold
        #: spare accelerators available for failover; once exhausted,
        #: quarantine degrades to the queued-reject path
        self.max_spares = max_spares
        self.spares_used = 0
        self.quarantines = 0
        self.watchdog_trips = 0
        self.quarantined = False
        self._trips_since_progress = 0
        #: (release_cycle, request) pairs waiting out a retry backoff
        self._retry_backlog: List[Tuple[int, Request]] = []
        self.queues: Dict[str, List[Request]] = {
            name: [] for name in self.principals
        }
        self.in_flight: List[Request] = []
        self.delivered: Dict[str, List[Request]] = {
            name: [] for name in self.principals
        }
        self._rr_users = [p.name for p in users_of(self.principals)]
        self._rr_issue = 0
        self._rr_read = 0
        #: every `reader_stutter` cycles the reader drops out_ready for one
        #: cycle — a model of a slow polling host that exercises the
        #: holding buffer / stall machinery (0 = always ready)
        self.reader_stutter = reader_stutter
        #: restrict the stutter to these users' readers (None = all
        #: readers).  A single slow tenant is the leakage-campaign
        #: scenario: on the baseline their backpressure stalls everyone,
        #: on the protected design it must not.
        self.stutter_users: Optional[Set[str]] = (
            set(stutter_users) if stutter_users is not None else None)
        self.dropped_requests: List[Request] = []
        self.timed_out_requests: List[Request] = []
        self.rejected_requests: List[Request] = []
        #: every request ever submitted — the terminal-status invariant
        #: (``no request left non-terminal after drain``) is checked here
        self.all_requests: List[Request] = []
        self._vouch_to_user: Dict[int, str] = {}
        for p in users_of(self.principals):
            self._vouch_to_user[p.tag & 0xF] = p.name

        self.obs = telemetry if telemetry is not None else _telemetry()
        #: incremental cursor + sorted cycle list over the security log's
        #: ``declassification`` events (feeds the ``declass_wait`` span)
        self._sec_scan = 0
        self._declass_cycles: List[int] = []
        self._tids: Dict[str, int] = {}
        if self.obs is not None:
            m = self.obs.metrics
            users = ("user",)
            self._m_submitted = m.counter(
                "soc_requests_submitted_total",
                "requests entering the per-user queues", users)
            self._m_delivered = m.counter(
                "soc_requests_delivered_total",
                "responses routed back to a reader", users)
            self._m_dropped = m.counter(
                "soc_requests_dropped_total",
                "requests abandoned by the holding buffer (availability)",
                users)
            self._m_cross = m.counter(
                "soc_cross_user_deliveries_total",
                "responses delivered to a reader other than the owner "
                "(baseline disclosure)", ("owner", "reader"))
            self._h_latency = m.histogram(
                "soc_request_latency_cycles",
                "issue-to-delivery latency per user", users,
                reservoir=self.LATENCY_RESERVOIR)
            self._h_queue = m.histogram(
                "soc_request_queue_cycles",
                "submit-to-issue queueing delay per user", users,
                reservoir=self.LATENCY_RESERVOIR)
            self._g_inflight = m.gauge(
                "soc_inflight_requests", "requests inside the accelerator")
            self._m_timeouts = m.counter(
                "soc_request_timeouts_total",
                "requests declared timed_out after exhausting retries",
                users)
            self._m_retries = m.counter(
                "soc_request_retries_total",
                "watchdog-initiated re-queues of tripped requests", users)
            self._m_watchdog = m.counter(
                "soc_watchdog_trips_total",
                "deadline expirations observed by the watchdog", users)
            self._m_rejected = m.counter(
                "soc_requests_rejected_total",
                "requests refused on the queued-reject degradation path",
                users)
            self._m_quarantines = m.counter(
                "soc_quarantines_total",
                "accelerator quarantine-and-drain events", ("outcome",))
            self._h_backoff = m.histogram(
                "soc_retry_backoff_cycles",
                "exponential backoff delays chosen for retried requests")
            for i, name in enumerate(sorted(self.principals)):
                self._tids[name] = i + 1
                self.obs.tracer.name_track(i + 1, f"user:{name}")

    def track_of(self, user: str) -> int:
        """Tracer track (tid) assigned to ``user`` (0 = system track)."""
        return self._tids.get(user, 0)

    # -- setup ------------------------------------------------------------------
    def _build_driver(self) -> AcceleratorDriver:
        accel = (AesAcceleratorProtected() if self.protected
                 else AesAcceleratorBaseline())
        return AcceleratorDriver(accel, backend=self._backend,
                                 fault_targets=self._fault_targets)

    def provision_keys(self) -> None:
        """Supervisor allocates slots and users load their keys."""
        sup = self.principals["supervisor"]
        for p in users_of(self.principals):
            if p.slot is None or p.key is None:
                continue
            if self.protected:
                self.driver.allocate_slot(p.slot, p.tag, sup.tag)
            self.driver.load_key(p.tag, p.slot, p.key)

    # -- request plumbing ----------------------------------------------------------
    def submit(self, request: Request) -> None:
        self.all_requests.append(request)
        if self.quarantined:
            # accelerator condemned with no spare left: degrade gracefully
            # by refusing new work instead of queueing it forever
            self._reject(request)
            return
        request.submitted_cycle = self.driver.sim.cycle
        request.status = "queued"
        if request.deadline is None:
            request.deadline = self.request_deadline
        self.queues[request.user].append(request)
        if self.obs is not None:
            self._m_submitted.inc(user=request.user)

    def submit_all(self, requests: List[Request]) -> None:
        for r in requests:
            self.submit(r)

    def _next_request(self) -> Optional[Request]:
        for i in range(len(self._rr_users)):
            name = self._rr_users[(self._rr_issue + i) % len(self._rr_users)]
            if self.queues[name]:
                self._rr_issue = (self._rr_issue + i + 1) % len(self._rr_users)
                return self.queues[name].pop(0)
        return None

    def tick(self, cycles: int = 1) -> None:
        """Advance the system: issue queued requests, deliver responses.

        Each cycle also runs the watchdog: retry backlog release, deadline
        scan, and (past ``quarantine_threshold`` consecutive trips)
        quarantine-and-drain failover.  ``top``/``sim`` are re-read every
        iteration because quarantine can swap the driver mid-call.
        """
        obs = self.obs
        for _ in range(cycles):
            self._watchdog()
            top = self.driver.top
            sim = self.driver.sim
            # reader side: rotate polling among users with work outstanding
            candidates = [
                n for n in self._rr_users
                if self.queues[n] or any(r.user == n for r in self.in_flight)
            ] or self._rr_users
            reader = self.principals[
                candidates[self._rr_read % len(candidates)]
            ]
            self._rr_read += 1
            ready = 1
            if (self.reader_stutter
                    and sim.cycle % self.reader_stutter == 0
                    and (self.stutter_users is None
                         or reader.name in self.stutter_users)):
                ready = 0
            sim.poke(f"{top}.rd_user", reader.tag)
            sim.poke(f"{top}.out_ready", ready)

            # collect a response if presented
            if ready and sim.peek(f"{top}.out_valid"):
                tag = sim.peek(f"{top}.out_tag")
                data = sim.peek(f"{top}.out_data")
                self._deliver(reader, tag, data)

            # request side
            req = None
            if sim.peek(f"{top}.in_ready"):
                req = self._next_request()
            if req is not None:
                user = self.principals[req.user]
                self.driver._poke_cmd(req.cmd, user.tag, slot=req.slot,
                                      data=req.data)
                req.issued_cycle = sim.cycle
                req.status = "issued"
                req.attempts += 1
                self.in_flight.append(req)
            else:
                self.driver._idle_inputs()
            if obs is not None:
                self._g_inflight.set(len(self.in_flight))
            sim.step()

    # -- watchdog / retry / quarantine ------------------------------------------
    def _effective_deadline(self, req: Request) -> Optional[int]:
        return req.deadline if req.deadline is not None else self.request_deadline

    def _watchdog(self) -> None:
        """Release matured retries and trip requests past their deadline."""
        now = self.driver.sim.cycle
        if self._retry_backlog:
            still: List[Tuple[int, Request]] = []
            for release, req in self._retry_backlog:
                if release <= now:
                    req.status = "queued"
                    # the retry restarts the end-to-end clock
                    req.submitted_cycle = now
                    req.issued_cycle = None
                    self.queues[req.user].insert(0, req)
                else:
                    still.append((release, req))
            self._retry_backlog = still
        if self.request_deadline is None and not any(
                r.deadline is not None for r in self.in_flight) and not any(
                r.deadline is not None
                for q in self.queues.values() for r in q):
            return
        expired = [r for r in self.in_flight
                   if self._effective_deadline(r) is not None
                   and now - r.submitted_cycle > self._effective_deadline(r)]
        for queue in self.queues.values():
            expired.extend(
                r for r in list(queue)
                if self._effective_deadline(r) is not None
                and now - r.submitted_cycle > self._effective_deadline(r))
        for req in expired:
            self._trip(req)
        if (self._trips_since_progress >= self.quarantine_threshold
                and not self.quarantined):
            self.quarantine()

    def _trip(self, req: Request) -> None:
        """One watchdog expiration: retry with backoff or give up."""
        self.watchdog_trips += 1
        self._trips_since_progress += 1
        if req in self.in_flight:
            self.in_flight.remove(req)
        elif req in self.queues[req.user]:
            self.queues[req.user].remove(req)
        obs = self.obs
        if obs is not None:
            self._m_watchdog.inc(user=req.user)
            obs.security.emit(
                "watchdog_trip", cycle=self.driver.sim.cycle, source="soc",
                user=req.user, attempts=req.attempts,
                submitted_cycle=req.submitted_cycle,
                issued_cycle=req.issued_cycle)
        if req.retries < self.max_retries:
            # exponential backoff with seeded jitter, in cycles
            req.retries += 1
            delay = (self.retry_base_delay
                     * (2 ** (req.retries - 1))
                     + self._retry_rng.randrange(self.retry_jitter + 1))
            req.status = "backoff"
            self._retry_backlog.append((self.driver.sim.cycle + delay, req))
            if obs is not None:
                self._m_retries.inc(user=req.user)
                self._h_backoff.observe(delay)
        else:
            req.status = "timed_out"
            self.timed_out_requests.append(req)
            if obs is not None:
                self._m_timeouts.inc(user=req.user)
                obs.tracer.instant(
                    "request_timed_out", cat="soc",
                    tid=self._tids.get(req.user, 0),
                    ts=self.driver.sim.cycle, user=req.user)

    def quarantine(self) -> None:
        """Condemn the current accelerator and drain its work.

        With a spare left, in-flight and backed-off requests re-queue onto
        a freshly built (and re-provisioned) accelerator; their submission
        clocks restart because the new simulator begins at cycle 0.  With
        no spare, every outstanding request is rejected and the system
        refuses further submissions — degraded but honest.
        """
        self.quarantines += 1
        self._trips_since_progress = 0
        outstanding = list(self.in_flight)
        outstanding.extend(req for _release, req in self._retry_backlog)
        self.in_flight.clear()
        self._retry_backlog.clear()
        spare = self.spares_used < self.max_spares
        obs = self.obs
        if obs is not None:
            self._m_quarantines.inc(outcome="spare" if spare else "reject")
            obs.security.emit(
                "accelerator_quarantined", cycle=self.driver.sim.cycle,
                source="soc", outcome="spare" if spare else "reject",
                outstanding=len(outstanding), trips=self.watchdog_trips)
        if not spare:
            self.quarantined = True
            for queue in self.queues.values():
                outstanding.extend(queue)
                queue.clear()
            for req in outstanding:
                self._reject(req)
            return
        self.spares_used += 1
        self.driver = self._build_driver()
        # the spare's simulator restarts at cycle 0: drop the old sim's
        # declassification cycle index so the bisect stays sorted
        self._declass_cycles.clear()
        if self.obs is not None:
            self._sec_scan = len(self.obs.security.events)
        self.provision_keys()
        now = self.driver.sim.cycle
        for req in outstanding:
            req.status = "queued"
            req.submitted_cycle = now
            req.issued_cycle = None
            self.queues[req.user].insert(0, req)
        for queue in self.queues.values():
            for req in queue:
                req.submitted_cycle = now

    def _reject(self, req: Request) -> None:
        req.status = "rejected"
        self.rejected_requests.append(req)
        if self.obs is not None:
            self._m_rejected.inc(user=req.user)
            self.obs.security.emit(
                "request_rejected", cycle=self.driver.sim.cycle,
                source="soc", user=req.user, attempts=req.attempts)

    def _deliver(self, reader: Principal, tag: int, data: int) -> None:
        """Hand the presented block to the polling reader.

        Both datapaths preserve issue order (fixed-latency pipeline, FIFO
        holding buffer), so the presented block answers the oldest
        in-flight request.  The protected hardware only presents a block
        when the poller's label admits it; the baseline presents to
        whoever polls — which is exactly the cross-user disclosure the
        experiments measure (``delivered`` then shows another user's
        request under the reader's name).
        """
        owner = self._vouch_to_user.get(tag & 0xF)
        req = None
        if owner is not None:
            for candidate in self.in_flight:
                if candidate.user == owner:
                    req = candidate
                    break
        if req is None and self.in_flight:
            # untagged/baseline response: issue order answers the oldest
            req = self.in_flight[0]
        if req is None:
            return
        self.in_flight.remove(req)
        req.delivered_cycle = self.driver.sim.cycle
        req.result = data
        req.status = "delivered"
        self._trips_since_progress = 0
        self.delivered[reader.name].append(req)
        if self.obs is not None:
            self._record_delivery(req, reader)

    def _latest_declass_cycle(self, before: int) -> Optional[int]:
        """Most recent ``declassification`` event at or before ``before``.

        The security probe emits one event per nonmalleable release at
        the pipeline exit; deliveries are FIFO per design, so the latest
        release not after the delivery cycle is the declassifier's
        hand-off of the delivered block.  An incremental cursor keeps
        the scan amortized O(1) per delivery.
        """
        events = self.obs.security.events
        while self._sec_scan < len(events):
            ev = events[self._sec_scan]
            if ev.kind == "declassification" and ev.cycle is not None:
                self._declass_cycles.append(ev.cycle)
            self._sec_scan += 1
        idx = bisect.bisect_right(self._declass_cycles, before)
        if idx == 0:
            return None
        return self._declass_cycles[idx - 1]

    def _record_delivery(self, req: Request, reader: Principal) -> None:
        obs = self.obs
        self._m_delivered.inc(user=req.user)
        self._h_latency.observe(req.latency, user=req.user)
        self._h_queue.observe(req.queue_cycles, user=req.user)
        tid = self._tids.get(req.user, 0)
        tracer = obs.tracer
        tracer.complete("request", req.submitted_cycle, req.total_cycles,
                        cat="soc", tid=tid, slot=req.slot,
                        reader=reader.name)
        tracer.complete("queued", req.submitted_cycle, req.queue_cycles,
                        cat="soc", tid=tid)
        tracer.complete("service", req.issued_cycle, req.latency,
                        cat="soc", tid=tid)
        # declassifier wait: the gap between the nonmalleable release at
        # the pipeline exit and the reader actually collecting the block
        dc = self._latest_declass_cycle(req.delivered_cycle)
        if (dc is not None and req.issued_cycle is not None
                and dc >= req.issued_cycle):
            tracer.complete("declass_wait", dc, req.delivered_cycle - dc,
                            cat="declass", tid=tid, user=req.user)
        if reader.name != req.user:
            self._m_cross.inc(owner=req.user, reader=reader.name)
            obs.security.emit(
                "cross_user_delivery", cycle=req.delivered_cycle,
                source="soc", owner=req.user, reader=reader.name)

    def drain(self, max_cycles: int = 4000, idle_limit: int = 200) -> None:
        """Run until all requests complete (or are detected as dropped).

        A block whose reader never kept up may have been dropped by the
        holding buffer (availability, by design); after ``idle_limit``
        cycles with no progress such requests move to
        ``dropped_requests`` instead of hanging the harness.
        """
        idle = 0
        last_outstanding = None
        for _ in range(max_cycles):
            outstanding = (len(self.in_flight) + len(self._retry_backlog)
                           + sum(len(q) for q in self.queues.values()))
            if outstanding == 0:
                return
            if outstanding == last_outstanding:
                idle += 1
                if (idle >= idle_limit and not any(self.queues.values())
                        and not self._retry_backlog):
                    self._drop(self.in_flight)
                    self.in_flight.clear()
                    return
            else:
                idle = 0
            last_outstanding = outstanding
            self.tick()
        raise TimeoutError("SoC did not drain")

    def _drop(self, requests: List[Request]) -> None:
        for req in requests:
            req.status = "dropped"
        self.dropped_requests.extend(requests)
        if self.obs is not None:
            for req in requests:
                self._m_dropped.inc(user=req.user)
                self.obs.security.emit(
                    "request_dropped", cycle=self.driver.sim.cycle,
                    source="soc", user=req.user,
                    submitted_cycle=req.submitted_cycle,
                    issued_cycle=req.issued_cycle)
                self.obs.tracer.instant(
                    "request_dropped", cat="soc",
                    tid=self._tids.get(req.user, 0),
                    ts=self.driver.sim.cycle, user=req.user)

    # -- queries ------------------------------------------------------------------
    def results_for(self, user: str) -> List[Request]:
        return self.delivered[user]

    def completed_requests(self) -> List[Request]:
        """Every delivered request, regardless of which reader received it.

        On the baseline a block can be handed to another user's reader
        (the disclosure), so grouping by delivery list under-counts the
        *owner's* observable timing; this walks all delivery lists.
        """
        out: List[Request] = []
        for reqs in self.delivered.values():
            out.extend(reqs)
        return out

    def latency_samples(self) -> Dict[str, List[int]]:
        """Per-owner issue-to-delivery latencies (leakage-detector feed)."""
        out: Dict[str, List[int]] = {}
        for req in self.completed_requests():
            if req.latency is not None:
                out.setdefault(req.user, []).append(req.latency)
        return out

    def queue_delay_samples(self) -> Dict[str, List[int]]:
        """Per-owner submit-to-issue delays (leakage-detector feed)."""
        out: Dict[str, List[int]] = {}
        for req in self.completed_requests():
            if req.queue_cycles is not None:
                out.setdefault(req.user, []).append(req.queue_cycles)
        return out

    def publish_latency_quantiles(self) -> None:
        """Export p50/p95/p99 per-user latency gauges from the reservoir.

        The bucketed histogram alone can only report upper bucket bounds;
        the exact-sample reservoir on ``soc_request_latency_cycles``
        makes these gauges true order statistics.

        Two gauge families are published: the original per-user
        ``soc_request_latency_quantile_cycles`` (name and labels
        unchanged for existing dashboards), and the shard-labelled
        ``soc_shard_request_latency_quantile_cycles`` so fleet
        dashboards never aggregate latencies across a failover
        boundary — the quantiles of a respawned shard are a different
        population than its predecessor's.
        """
        if self.obs is None:
            return
        g = self.obs.metrics.gauge(
            "soc_request_latency_quantile_cycles",
            "exact per-user latency quantiles from the histogram reservoir",
            ("user", "quantile"))
        g_shard = self.obs.metrics.gauge(
            "soc_shard_request_latency_quantile_cycles",
            "per-shard per-user latency quantiles (shard-labelled so "
            "fleet views never mix populations across failover)",
            ("shard", "user", "quantile"))
        for name in sorted(self.principals):
            if not self._h_latency.count(user=name):
                continue
            for q, label in ((0.5, "p50"), (0.95, "p95"), (0.99, "p99")):
                value = self._h_latency.quantile(q, user=name)
                g.set(value, user=name, quantile=label)
                g_shard.set(value, shard=self.shard_id, user=name,
                            quantile=label)

    def counters(self) -> Dict[str, int]:
        return self.driver.counters()

    def stats(self) -> Dict[str, int]:
        """Serving-state snapshot (the fleet supervisor's probe payload)."""
        delivered = sum(len(reqs) for reqs in self.delivered.values())
        cross = sum(1 for reader, reqs in self.delivered.items()
                    for r in reqs if r.user != reader)
        return {
            "cycle": self.driver.sim.cycle,
            "queued": sum(len(q) for q in self.queues.values()),
            "in_flight": len(self.in_flight),
            "delivered": delivered,
            "cross_user_deliveries": cross,
            "dropped": len(self.dropped_requests),
            "timed_out": len(self.timed_out_requests),
            "rejected": len(self.rejected_requests),
            "watchdog_trips": self.watchdog_trips,
            "quarantines": self.quarantines,
        }
