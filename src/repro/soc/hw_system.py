"""Full-HDL SoC front end: four request ports → arbiter → accelerator.

`repro.soc.system.SoCSystem` arbitrates in the harness (convenient for
experiments); this module is the all-hardware composition of Fig. 4's
front end — the :class:`~repro.accel.arbiter.RequestArbiter` and the
protected accelerator inside one netlist, with per-port pins.  It is
what you would actually tape out, and it passes the same modular static
check as its parts.
"""

from __future__ import annotations

from typing import List

from ..accel.arbiter import N_PORTS, RequestArbiter
from ..accel.protected import AesAcceleratorProtected
from ..hdl.module import Module


class ArbitratedAccelerator(Module):
    """Four tagged request ports sharing one protected AES accelerator."""

    def __init__(self, name: str = "sys"):
        super().__init__(name)
        self.arb = self.submodule(RequestArbiter(protected=True))
        self.accel = self.submodule(AesAcceleratorProtected())

        self.accel.in_valid <<= self.arb.out_valid
        self.accel.in_cmd <<= self.arb.out_cmd
        self.accel.in_user <<= self.arb.out_tag
        self.accel.in_slot <<= self.arb.out_slot
        self.accel.in_word <<= self.arb.out_word
        self.accel.in_addr <<= self.arb.out_addr
        self.accel.in_data <<= self.arb.out_data
        self.arb.ready <<= self.accel.in_ready

        self.port_valid: List = []
        self.port_grant: List = []
        for i in range(N_PORTS):
            v = self.input(f"pv{i}", 1)
            self.port_valid.append(v)
            self.arb.req_valid[i] <<= v
            self.arb.req_cmd[i] <<= self.input(f"pcmd{i}", 2)
            self.arb.req_slot[i] <<= self.input(f"pslot{i}", 2)
            self.arb.req_word[i] <<= self.input(f"pword{i}", 3)
            self.arb.req_addr[i] <<= self.input(f"paddr{i}", 4)
            self.arb.port_tag[i] <<= self.input(f"ptag{i}", 8)
            self.arb.req_data[i] <<= self.input(f"pdata{i}", 128)
            g = self.output(f"pgrant{i}", 1)
            g <<= self.arb.grants[i]
            self.port_grant.append(g)

        self.rd_user_i = self.input("rd_user_i", 8)
        self.out_ready_i = self.input("out_ready_i", 1)
        self.accel.rd_user <<= self.rd_user_i
        self.accel.out_ready <<= self.out_ready_i

        self.out_valid_o = self.output("out_valid_o", 1)
        self.out_valid_o <<= self.accel.out_valid
        self.out_data_o = self.output("out_data_o", 128)
        self.out_data_o <<= self.accel.out_data
        self.out_tag_o = self.output("out_tag_o", 8)
        self.out_tag_o <<= self.accel.out_tag
        self.dbg_data_o = self.output("dbg_data_o", 128)
        self.dbg_data_o <<= self.accel.dbg_data
        self.cfg_rdata_o = self.output("cfg_rdata_o", 32)
        self.cfg_rdata_o <<= self.accel.cfg_rdata
