"""A statically-partitioned secure cache — Fig. 3 grown into a full
component.

The paper's Fig. 3 shows only the *tag* array of a two-way cache whose
ways are statically partitioned between trust domains.  This module
completes the design the listing implies — valid bits, tag match, data
array, hit/miss, refill — as a second case study showing the library
generalises beyond the AES accelerator:

* way 0 caches the **trusted** domain, way 1 the **untrusted** one;
* the request's ``way`` input doubles as the security selector, so every
  port carries the Fig. 3 dependent label ``(public, DL(way))``;
* the checker proves the partition: no state of one way can influence
  the other way's responses — including through the shared hit/data
  ports — and the deliberately broken variant (a refill that writes the
  wrong way) is rejected with the same error Fig. 3 describes.

Geometry: direct-mapped per way, 2 ways x 16 lines x 32-bit data with
19-bit tags (the figure's tag width).
"""

from __future__ import annotations

from ..hdl.module import Module, otherwise, when
from ..ifc.dependent import DependentLabel
from ..ifc.label import Label
from ..ifc.lattice import SecurityLattice, two_point

LINES = 16
TAG_BITS = 19
DATA_BITS = 32


class SecureCache(Module):
    """Two-way statically partitioned cache with dependent-label ports."""

    def __init__(self, lattice: SecurityLattice = None, broken: bool = False,
                 name: str = "scache"):
        super().__init__(name)
        self.lattice = lattice or two_point()
        p_t = Label(self.lattice, "public", "trusted")
        p_u = Label(self.lattice, "public", "untrusted")

        def way_dl():
            return DependentLabel(self.way, {0: p_t, 1: p_u}, self.lattice)

        # request port: lookup or refill, for one way (= one trust domain)
        self.req = self.input("req", 1, label=p_t)
        self.refill = self.input("refill", 1, label=p_t)
        self.way = self.input("way", 1, label=p_t)
        self.index = self.input("index", 4, label=p_t)
        self.tag_in = self.input("tag_in", TAG_BITS, label=way_dl())
        self.data_in = self.input("data_in", DATA_BITS, label=way_dl())

        # per-way state, statically labelled like Fig. 3's tag_0/tag_1
        self.tags0 = self.mem("tags0", LINES, TAG_BITS, label=p_t)
        self.tags1 = self.mem("tags1", LINES, TAG_BITS, label=p_u)
        self.data0 = self.mem("data0", LINES, DATA_BITS, label=p_t)
        self.data1 = self.mem("data1", LINES, DATA_BITS, label=p_u)
        self.valid0 = self.reg("valid0", LINES, label=p_t)
        self.valid1 = self.reg("valid1", LINES, label=p_u)

        # response port: shared wires, dependent level (the Fig. 3 point)
        self.hit = self.output("hit", 1, label=way_dl(), default=0)
        self.data_out = self.output("data_out", DATA_BITS, label=way_dl(),
                                    default=0)

        # refill: install tag+data+valid into the selected way
        with when(self.refill):
            with when(self.way.eq(0)):
                self.tags0.write(self.index, self.tag_in)
                self.data0.write(self.index, self.data_in)
            with otherwise():
                self.tags1.write(self.index, self.tag_in)
                self.data1.write(self.index, self.data_in)

        # valid-bit update (one-hot OR by index)
        for i in range(LINES):
            with when(self.refill & self.index.eq(i)):
                with when(self.way.eq(0)):
                    self.valid0 <<= self.valid0 | (1 << i)
                with otherwise():
                    self.valid1 <<= self.valid1 | (1 << i)

        if broken:
            # the Fig. 3 flaw: an untrusted refill also lands in way 0
            with when(self.refill & self.way.eq(1)):
                self.tags0.write(self.index, self.tag_in)
                self.data0.write(self.index, self.data_in)

        # lookup
        with when(self.req & ~self.refill):
            with when(self.way.eq(0)):
                match0 = self.tags0.read(self.index).eq(self.tag_in)
                vbit0 = (self.valid0 >> self.index.zext(5))[0]
                self.hit <<= match0 & vbit0
                self.data_out <<= self.data0.read(self.index)
            with otherwise():
                match1 = self.tags1.read(self.index).eq(self.tag_in)
                vbit1 = (self.valid1 >> self.index.zext(5))[0]
                self.hit <<= match1 & vbit1
                self.data_out <<= self.data1.read(self.index)
