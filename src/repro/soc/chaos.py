"""Seeded chaos harness for the accelerator fleet.

Resilience that is not continuously exercised rots.  The chaos harness
perturbs a live fleet run with two failure modes, scheduled
deterministically from a seed so the CI gate replays the exact same
catastrophe every time:

* ``kill`` — the shard's worker is killed outright (``SIGKILL`` for
  process workers, state destruction for inline workers) while requests
  are in flight on it.  The supervisor must detect the death, reclaim
  and retry the in-flight work, respawn the worker with exponential
  backoff, and rebalance tenants in the interim.
* ``wedge`` — a :mod:`repro.faults` plan is injected into the live
  shard's simulator (the PR 4 single-event-upset model: ``aes.advance``
  stuck at 0), freezing the pipeline *without* killing the process.
  The worker still answers probes — only progress stops — so detection
  must come from the supervisor's no-delivery watchdog, which then
  quarantines and drains the shard.

Events fire at round boundaries (the supervisor's only deterministic
decision points); "mid-flight" refers to the requests, which are
genuinely inside the victim shard when it dies.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

#: the PR 4 hang target: stuck-at-0 here freezes the protected pipeline
HANG_TARGET = "aes.advance"


def wedge_plan_dict(duration: int = 10 ** 6) -> dict:
    """A serialized fault plan freezing the pipeline-advance net.

    Cycle 0 here is relative; the worker re-bases it onto its own
    simulator clock at injection time (see ``ShardServer.inject``).
    """
    return {"faults": [{"target": HANG_TARGET, "kind": "stuck_at_0",
                        "mask": 1, "cycle": 0, "duration": int(duration),
                        "lane": None, "addr": None}]}


class ChaosEvent:
    """One scheduled perturbation of the fleet."""

    __slots__ = ("round", "kind", "shard", "plan")

    def __init__(self, round: int, kind: str, shard: int,
                 plan: Optional[dict] = None):
        if kind not in ("kill", "wedge"):
            raise ValueError(f"unknown chaos kind {kind!r}")
        self.round = int(round)
        self.kind = kind
        self.shard = int(shard)
        self.plan = plan

    def to_dict(self) -> dict:
        return {"round": self.round, "kind": self.kind,
                "shard": self.shard}

    def __repr__(self) -> str:
        return f"ChaosEvent(round={self.round}, {self.kind}, shard={self.shard})"


class ChaosSchedule:
    """An ordered, seeded set of chaos events for one fleet run."""

    def __init__(self, events: List[ChaosEvent] = ()):
        self.events = sorted(events, key=lambda e: (e.round, e.shard))

    def at(self, round: int) -> List[ChaosEvent]:
        return [e for e in self.events if e.round == round]

    def kills(self) -> List[ChaosEvent]:
        return [e for e in self.events if e.kind == "kill"]

    def wedges(self) -> List[ChaosEvent]:
        return [e for e in self.events if e.kind == "wedge"]

    def __len__(self) -> int:
        return len(self.events)

    def to_dict(self) -> dict:
        return {"events": [e.to_dict() for e in self.events]}

    @classmethod
    def seeded(cls, seed: int, rounds: int, shards: int,
               kills: int = 2, wedges: int = 1) -> "ChaosSchedule":
        """Draw a deterministic schedule that cannot self-collide.

        Kills land on distinct (round, shard) pairs inside the middle
        60% of the run (so there is traffic before *and* after); the
        wedge targets a shard that is never killed (otherwise the kill
        would mask the wedge-detection path the gate wants exercised).
        With fewer shards than requested victims the counts are clamped
        rather than doubled up.
        """
        if shards < 1:
            raise ValueError("chaos needs at least one shard")
        rng = random.Random(f"chaos:{seed}")
        lo = max(1, rounds // 5)
        hi = max(lo + 1, (4 * rounds) // 5)
        kills = min(kills, max(0, shards - (1 if wedges else 0)))
        victims = rng.sample(range(shards), k=min(shards, kills + (1 if wedges else 0)))
        events: List[ChaosEvent] = []
        used_rounds: set = set()

        def pick_round() -> int:
            for _ in range(64):
                r = rng.randrange(lo, hi)
                # keep events >=2 rounds apart so each failure is
                # detected and handled before the next lands
                if all(abs(r - u) >= 2 for u in used_rounds):
                    used_rounds.add(r)
                    return r
            r = rng.randrange(lo, hi)
            used_rounds.add(r)
            return r

        for i in range(kills):
            events.append(ChaosEvent(pick_round(), "kill", victims[i]))
        if wedges and len(victims) > kills:
            wedge_shard = victims[kills]
            for _ in range(wedges):
                events.append(ChaosEvent(pick_round(), "wedge", wedge_shard,
                                         plan=wedge_plan_dict()))
        return cls(events)
