"""Fleet-scale serving: a multi-shard accelerator farm under chaos.

The paper's SoC (Sec. 5) serves one protected AES accelerator; the
production question is what happens when *millions of users* contend
for a **pool** of them.  This module is that story:

* **shards** — each shard embeds one :class:`~repro.soc.shard.ShardCore`
  (the refactored single-SoC serving engine) on a worker, either inline
  (same process; deterministic unit tests, benchmarks) or on a forked
  **worker process** (the default: real parallelism across simulators,
  sidestepping the GIL, and a real victim for the chaos harness);
* **seats** — an accelerator has three user key slots, so each shard
  multiplexes its assigned tenants over three labelled *seats*
  (allocate-slot + load-key on demand, eviction only when the departing
  tenant has nothing in flight) — fleet tenants are a software concept,
  hardware isolation stays per-label;
* **admission** — per-tenant bounded queues with backpressure: when a
  queue bound is hit the fleet sheds from the *lowest-priority*
  nonempty queue, and every shed request terminates as ``rejected`` —
  nothing is ever silently dropped (the PR 4 terminal-status invariant,
  fleet-wide);
* **arbitration** — deficit-round-robin across tenants: gold/silver/
  bronze weights 4/2/1, one deficit counter per tenant, so heavy
  bronze bursts cannot starve gold traffic;
* **supervision** — the fleet-level generalization of the PR 4
  watchdog: per-round health probes with timeout, death detection on
  the worker pipe, exponential-backoff respawn, no-progress (wedge)
  detection with quarantine-and-drain, tenant rebalancing onto
  surviving shards, and degraded-mode accounting when no capacity is
  live.

Time is **logical**: the supervisor advances in rounds of
``cycles_per_round`` simulator cycles, commands every live shard once
per round, and collects replies at a barrier.  All latencies are in
fleet cycles, chaos fires at seeded round boundaries, and retry jitter
draws from a seeded RNG — so a fleet run (and its
``fleet_report.json``) is a *byte-identical* function of
``(trace, chaos, config)``, even though the worker processes genuinely
run in parallel.  ``python -m repro fleet`` replays a fixed traffic
trace under chaos and gates CI on the result.
"""

from __future__ import annotations

import multiprocessing
import random
from collections import deque
from typing import Dict, Iterable, List, Optional, Tuple

from ..accel.common import CMD_ENCRYPT
from ..aes.cipher import encrypt_block
from ..obs import Telemetry, capture as _obs_capture, telemetry as _telemetry
from ..obs.metrics import sample_quantile
from .chaos import ChaosSchedule
from .requests import TERMINAL_STATUSES, Request
from .shard import ShardCore
from .traffic import (
    TenantSpec,
    TrafficTrace,
    default_tenants,
    generate_trace,
)

#: the three user key slots of one accelerator: (principal, slot)
SEATS = (("alice", 1), ("bob", 2), ("charlie", 3))

#: reader-stutter period applied to an adversarial tenant's seat
ADVERSARY_STUTTER = 3


class FleetConfig:
    """Sizing and policy knobs for one fleet."""

    def __init__(self, shards: int = 4, backend: str = "compiled",
                 workers: str = "process",
                 cycles_per_round: int = 64,
                 batch_per_round: int = 8,
                 queue_bound: int = 16,
                 request_deadline: int = 1400,
                 max_retries: int = 3,
                 retry_base_rounds: int = 1,
                 retry_jitter_rounds: int = 2,
                 wedge_rounds: int = 3,
                 respawn_base_rounds: int = 2,
                 flush_rounds: int = 60,
                 reply_timeout: float = 120.0,
                 slos: Optional[Dict[str, Dict[str, float]]] = None):
        if workers not in ("process", "inline"):
            raise ValueError(f"workers must be 'process' or 'inline', "
                             f"got {workers!r}")
        self.shards = int(shards)
        self.backend = backend
        self.workers = workers
        #: logical cycles each shard advances per supervisor round
        self.cycles_per_round = int(cycles_per_round)
        #: max requests dispatched to one shard per round (admission rate)
        self.batch_per_round = int(batch_per_round)
        #: per-tenant fleet queue bound; beyond it the fleet sheds from
        #: the lowest-priority nonempty queue
        self.queue_bound = int(queue_bound)
        #: end-to-end budget per request, in fleet cycles
        self.request_deadline = int(request_deadline)
        self.max_retries = int(max_retries)
        self.retry_base_rounds = int(retry_base_rounds)
        self.retry_jitter_rounds = int(retry_jitter_rounds)
        #: rounds a shard may hold in-flight work without delivering
        #: anything before it is declared wedged and quarantined
        self.wedge_rounds = int(wedge_rounds)
        #: respawn backoff base (rounds); doubles per consecutive death
        self.respawn_base_rounds = int(respawn_base_rounds)
        #: extra rounds granted past the traffic horizon to drain
        self.flush_rounds = int(flush_rounds)
        #: wall-clock safety net on worker replies — only a dead or
        #: truly hung worker ever hits this, so determinism holds
        self.reply_timeout = float(reply_timeout)
        self.slos = slos if slos is not None else default_slos()

    def to_dict(self) -> dict:
        return {
            "shards": self.shards, "backend": self.backend,
            "workers": self.workers,
            "cycles_per_round": self.cycles_per_round,
            "batch_per_round": self.batch_per_round,
            "queue_bound": self.queue_bound,
            "request_deadline": self.request_deadline,
            "max_retries": self.max_retries,
            "retry_base_rounds": self.retry_base_rounds,
            "retry_jitter_rounds": self.retry_jitter_rounds,
            "wedge_rounds": self.wedge_rounds,
            "respawn_base_rounds": self.respawn_base_rounds,
            "flush_rounds": self.flush_rounds,
            "slos": self.slos,
        }


def default_slos() -> Dict[str, Dict[str, float]]:
    """Per-class SLOs: p99 latency (fleet cycles) and goodput fraction.

    ``adversarial`` applies to tenants flagged adversarial regardless of
    class — a slow poller self-inflicts latency, so holding it to the
    bronze SLO would punish the fleet for the adversary's own behaviour.
    """
    return {
        "gold": {"p99": 2200.0, "goodput": 0.95},
        "silver": {"p99": 3200.0, "goodput": 0.90},
        "bronze": {"p99": 4500.0, "goodput": 0.80},
        "adversarial": {"p99": 8000.0, "goodput": 0.50},
    }


class FleetRequest:
    """One tenant request tracked by the supervisor end to end."""

    __slots__ = ("id", "tenant", "tenant_class", "slo_class", "priority",
                 "cmd", "data", "status", "submitted_cycle",
                 "delivered_cycle", "result", "verified", "attempts",
                 "retries", "release_round", "shard", "trace_id")

    def __init__(self, id: int, tenant: str, tenant_class: str,
                 slo_class: str, priority: int, cmd: int, data: int,
                 submitted_cycle: int):
        self.id = id
        #: cross-process trace context: stamped at admission, carried in
        #: every shard submission, echoed in worker span args so the
        #: fleet observatory can stitch the full span chain back together
        self.trace_id: Optional[str] = None
        self.tenant = tenant
        self.tenant_class = tenant_class
        self.slo_class = slo_class
        self.priority = priority
        self.cmd = cmd
        self.data = data
        self.status = "queued"
        self.submitted_cycle = submitted_cycle
        self.delivered_cycle: Optional[int] = None
        self.result: Optional[int] = None
        self.verified: Optional[bool] = None
        self.attempts = 0      # dispatches to a shard
        self.retries = 0       # fleet watchdog re-queues
        self.release_round: Optional[int] = None
        self.shard: Optional[int] = None

    @property
    def is_terminal(self) -> bool:
        return self.status in TERMINAL_STATUSES

    @property
    def latency(self) -> Optional[int]:
        if self.delivered_cycle is None:
            return None
        return max(0, self.delivered_cycle - self.submitted_cycle)

    def __repr__(self) -> str:
        return (f"FleetRequest(#{self.id}, {self.tenant}, "
                f"{self.status})")


class ShardDead(Exception):
    """A worker stopped answering (killed, crashed, or hung)."""


# ---------------------------------------------------------------------------
# worker side
# ---------------------------------------------------------------------------

class ShardServer:
    """The in-worker serving loop around one :class:`ShardCore`.

    Handles the supervisor's command protocol: ``run`` (submit a batch,
    advance one round, report terminal transitions), ``probe`` (health
    snapshot), ``inject`` (load a chaos fault plan into the live
    simulator), ``stop``.  Tenants are seated on the accelerator's
    three key slots on demand; a seat is evictable only when its
    current tenant has nothing in flight, so reseating never breaks
    per-label response routing.
    """

    def __init__(self, index: int, backend: str = "compiled",
                 fault_targets: Iterable[str] = ("aes.advance",),
                 observe: bool = False):
        self.index = index
        #: worker-local telemetry (fleet-observatory mode): the core, its
        #: driver, and the security probe all instrument into this bundle;
        #: ``_drain_obs`` ships span/metric deltas with every round reply
        self.wtel: Optional[Telemetry] = None
        if observe:
            self.wtel = Telemetry()
            with _obs_capture(self.wtel):
                self.core = ShardCore(
                    protected=True, backend=backend,
                    fault_targets=list(fault_targets),
                    request_deadline=None, shard_id=str(index),
                    telemetry=self.wtel)
            self.wtel.tracer.name_track(0, "shard control")
        else:
            self.core = ShardCore(
                protected=True, backend=backend,
                fault_targets=list(fault_targets),
                request_deadline=None, shard_id=str(index))
        self._sup_tag = self.core.principals["supervisor"].tag
        #: seat principal -> tenant name (None = free)
        self.seats: Dict[str, Optional[str]] = {s: None for s, _ in SEATS}
        self._slot_of = dict(SEATS)
        #: request id -> (core Request, tenant, key)
        self.tracked: Dict[int, Tuple[Request, str, int]] = {}
        self._adversarial_seats: set = set()
        #: request id -> fleet trace id (observe mode)
        self._traces: Dict[int, Optional[str]] = {}
        self._ev_cursor = 0
        self._m_sent: Dict[Tuple[str, tuple], float] = {}

    # -- seating --------------------------------------------------------------
    def _seat_of(self, tenant: str) -> Optional[str]:
        for seat, owner in self.seats.items():
            if owner == tenant:
                return seat
        return None

    def _tenant_busy(self, tenant: str) -> bool:
        return any(t == tenant for _req, t, _k in self.tracked.values())

    def _try_seat(self, tenant: str, key: int,
                  adversarial: bool) -> Optional[str]:
        seat = self._seat_of(tenant)
        if seat is not None:
            return seat
        target = None
        for s, owner in self.seats.items():
            if owner is None:
                target = s
                break
        if target is None:
            for s, owner in self.seats.items():
                if not self._tenant_busy(owner):
                    target = s
                    break
        if target is None:
            return None
        # (re)provision the seat: slot ownership + the tenant's key.
        # out_ready is held low for the duration so no in-flight block
        # of another seat is consumed by the driver's own step loop.
        sim, top = self.core.driver.sim, self.core.driver.top
        prov_start = sim.cycle
        sim.poke(f"{top}.out_ready", 0)
        try:
            principal = self.core.principals[target]
            self.core.driver.allocate_slot(self._slot_of[target],
                                           principal.tag, self._sup_tag)
            self.core.driver.load_key(principal.tag,
                                      self._slot_of[target], key)
        finally:
            sim.poke(f"{top}.out_ready", 1)
        if self.wtel is not None:
            self.wtel.tracer.complete(
                "seat_provision", prov_start, sim.cycle - prov_start,
                cat="fleet", tid=self.core.track_of(target),
                tenant=tenant, seat=target)
        principal.key = key
        self.seats[target] = tenant
        if adversarial:
            self._adversarial_seats.add(target)
        else:
            self._adversarial_seats.discard(target)
        self.core.stutter_users = set(self._adversarial_seats)
        self.core.reader_stutter = (
            ADVERSARY_STUTTER if self._adversarial_seats else 0)
        return target

    # -- protocol -------------------------------------------------------------
    def handle(self, msg: tuple):
        op = msg[0]
        if op == "run":
            return self.run_round(msg[1], msg[2])
        if op == "probe":
            return self.core.stats()
        if op == "inject":
            return self.inject(msg[1])
        if op == "stop":
            return "bye"
        raise ValueError(f"unknown shard op {op!r}")

    def run_round(self, submissions: List[dict], cycles: int) -> dict:
        core = self.core
        wtel = self.wtel
        start = core.driver.sim.cycle
        deferred: List[int] = []
        # group by tenant so one seat operation covers a whole burst
        for spec in sorted(submissions, key=lambda s: (s["tenant"], s["id"])):
            try:
                seat = self._try_seat(spec["tenant"], spec["key"],
                                      spec.get("adversarial", False))
            except TimeoutError:
                # a wedged pipeline can stall seat provisioning; hand
                # the work back — the supervisor's no-progress watchdog
                # will quarantine us shortly
                seat = None
            if seat is None:
                deferred.append(spec["id"])
                continue
            req = Request(seat, spec["cmd"], self._slot_of[seat],
                          spec["data"])
            core.submit(req)
            self.tracked[spec["id"]] = (req, spec["tenant"], spec["key"])
            if wtel is not None:
                self._traces[spec["id"]] = spec.get("trace")
        used = core.driver.sim.cycle - start
        if used < cycles:
            core.tick(cycles - used)
        events: List[dict] = []
        delivered_now = 0
        for rid in sorted(self.tracked):
            req, tenant, key = self.tracked[rid]
            if not req.is_terminal:
                continue
            ev = {"id": rid, "status": req.status,
                  "issued_cycle": req.issued_cycle,
                  "delivered_cycle": req.delivered_cycle,
                  "attempts": req.attempts, "result": req.result}
            if req.status == "delivered" and req.cmd == CMD_ENCRYPT:
                ev["verified"] = (req.result == encrypt_block(req.data, key))
            events.append(ev)
            if req.status == "delivered":
                delivered_now += 1
            if wtel is not None:
                self._span_terminal(rid, req, tenant)
            del self.tracked[rid]
        core.driver.responses.clear()  # phantom copies; core owns routing
        reply = {"events": events, "deferred": deferred,
                 "stats": core.stats()}
        if wtel is not None:
            now = core.driver.sim.cycle
            tr = wtel.tracer
            tr.complete("sim_round", start, now - start, cat="fleet", tid=0,
                        submitted=len(submissions), delivered=delivered_now)
            if self.tracked and delivered_now == 0:
                # in-flight work, nothing came out: the worker-side view
                # of a wedge (or just pipeline fill on a fresh batch)
                tr.complete("wedge_stall", start, now - start, cat="stall",
                            tid=0, in_flight=len(self.tracked))
            reply["obs"] = self._drain_obs()
        return reply

    def _span_terminal(self, rid: int, req: Request, tenant: str) -> None:
        """Record the worker half of a request's span chain."""
        tr = self.wtel.tracer
        tid = self.core.track_of(req.user)
        trace = self._traces.pop(rid, None)
        if req.status == "delivered" and req.delivered_cycle is not None:
            begin = (req.issued_cycle if req.issued_cycle is not None
                     else req.submitted_cycle)
            tr.complete("shard_request", begin,
                        max(0, req.delivered_cycle - begin), cat="fleet",
                        tid=tid, trace=trace, rid=rid, tenant=tenant,
                        status=req.status)
        else:
            tr.instant("shard_terminal", cat="fleet", tid=tid,
                       ts=self.core.driver.sim.cycle, trace=trace,
                       rid=rid, tenant=tenant, status=req.status)

    def _drain_obs(self) -> dict:
        """Ship the span/metric deltas accumulated since the last reply.

        Spans travel as raw Chrome events in the worker's own cycle
        domain — the coordinator shifts them into fleet cycles with the
        slot's ``cycle_offset``.  Metric rows are ``(op, name, labels,
        value)``: counters and histogram samples are additive (``add``)
        so respawn epochs accumulate instead of double-counting, gauges
        overwrite (``set``).  Cursor state makes successive payloads
        disjoint, so the coordinator's merge is reply-order independent
        and bit-identical between inline and process hosts.
        """
        wtel = self.wtel
        events = wtel.tracer.events
        spans = events[self._ev_cursor:]
        self._ev_cursor = len(events)
        rows: List[tuple] = []
        for inst in wtel.metrics.instruments():
            op = "set" if inst.kind == "gauge" else "add"
            for name, key, value in inst.samples():
                sent = self._m_sent.get((name, key))
                if op == "set":
                    if sent is None or value != sent:
                        rows.append(("set", name, key, value))
                        self._m_sent[(name, key)] = value
                else:
                    delta = value - (sent if sent is not None else 0.0)
                    if delta:
                        rows.append(("add", name, key, delta))
                        self._m_sent[(name, key)] = value
        return {"spans": spans, "metrics": rows}

    def inject(self, plan_dict: dict) -> dict:
        from ..faults.plan import Fault, FaultPlan

        base = self.core.driver.sim.cycle + 2
        plan = FaultPlan([Fault(**f) for f in plan_dict["faults"]])
        self.core.driver.sim.load_fault_plan(plan.shifted(base))
        return {"injected_at": base, "faults": len(plan)}


def _shard_worker_main(conn, index: int, backend: str,
                       observe: bool = False) -> None:
    """Entry point of one forked shard worker process."""
    try:
        server = ShardServer(index, backend=backend, observe=observe)
    except Exception as exc:  # build failure: report and die visibly
        try:
            conn.send(("err", f"shard {index} failed to build: {exc!r}"))
        finally:
            conn.close()
        return
    conn.send(("ok", "ready"))
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break
        try:
            result = server.handle(msg)
        except Exception as exc:
            try:
                conn.send(("err", repr(exc)))
            except (BrokenPipeError, OSError):
                pass
            continue
        try:
            conn.send(("ok", result))
        except (BrokenPipeError, OSError):
            break
        if msg[0] == "stop":
            break
    conn.close()


# ---------------------------------------------------------------------------
# hosts: how the supervisor talks to a shard
# ---------------------------------------------------------------------------

class _InlineHost:
    """A shard living in the supervisor's own process (tests, benches)."""

    kind = "inline"

    def __init__(self, index: int, backend: str, reply_timeout: float,
                 observe: bool = False):
        self.server = ShardServer(index, backend=backend, observe=observe)
        self.dead = False

    def request(self, msg: tuple):
        if self.dead:
            raise ShardDead("inline shard was killed")
        try:
            return self.server.handle(msg)
        except ShardDead:
            raise
        except Exception as exc:
            raise ShardDead(f"inline shard crashed: {exc!r}") from exc

    def kill(self) -> None:
        self.dead = True
        self.server = None

    def terminate(self) -> None:
        self.kill()


class _ProcessHost:
    """A shard on its own OS process (fork by default), over a pipe."""

    kind = "process"

    def __init__(self, index: int, backend: str, reply_timeout: float,
                 observe: bool = False):
        ctx = multiprocessing.get_context(
            "fork" if "fork" in multiprocessing.get_all_start_methods()
            else "spawn")
        self._conn, child = ctx.Pipe(duplex=True)
        self._timeout = reply_timeout
        self.proc = ctx.Process(target=_shard_worker_main,
                                args=(child, index, backend, observe),
                                daemon=True)
        self.proc.start()
        child.close()
        self._recv()  # ready handshake

    def _recv(self):
        if not self._conn.poll(self._timeout):
            raise ShardDead("worker reply timed out")
        try:
            status, payload = self._conn.recv()
        except (EOFError, OSError) as exc:
            raise ShardDead(f"worker pipe closed: {exc!r}") from exc
        if status != "ok":
            raise ShardDead(f"worker error: {payload}")
        return payload

    def send(self, msg: tuple) -> None:
        try:
            self._conn.send(msg)
        except (BrokenPipeError, OSError) as exc:
            raise ShardDead(f"worker pipe broken: {exc!r}") from exc

    def recv(self):
        return self._recv()

    def request(self, msg: tuple):
        self.send(msg)
        return self._recv()

    def kill(self) -> None:
        if self.proc.is_alive():
            self.proc.kill()

    def terminate(self) -> None:
        try:
            if self.proc.is_alive():
                self.proc.terminate()
                self.proc.join(timeout=5)
                if self.proc.is_alive():
                    self.proc.kill()
                    self.proc.join(timeout=5)
        finally:
            self._conn.close()


_HOSTS = {"inline": _InlineHost, "process": _ProcessHost}


class ShardSlot:
    """Supervisor-side state for one position in the shard pool."""

    __slots__ = ("index", "host", "state", "cycle_offset", "inflight",
                 "rounds_idle", "deaths", "respawn_round", "epoch",
                 "delivered_total", "cross_user")

    def __init__(self, index: int):
        self.index = index
        self.host = None
        self.state = "down"            # live | down
        self.cycle_offset = 0
        #: request id -> FleetRequest currently on this shard
        self.inflight: Dict[int, FleetRequest] = {}
        self.rounds_idle = 0
        self.deaths = 0
        self.respawn_round = 0
        self.epoch = 0
        self.delivered_total = 0
        self.cross_user = 0

    @property
    def live(self) -> bool:
        return self.state == "live"


# ---------------------------------------------------------------------------
# supervisor
# ---------------------------------------------------------------------------

class AcceleratorFleet:
    """The fleet supervisor: shard pool, admission, DRR, chaos recovery."""

    def __init__(self, config: FleetConfig,
                 tenants: Iterable[TenantSpec],
                 seed: int = 2026,
                 telemetry: Optional[Telemetry] = None,
                 observatory=None):
        self.cfg = config
        self.tenants: Dict[str, TenantSpec] = {t.name: t for t in tenants}
        self.seed = int(seed)
        #: the single jitter stream: retry backoff draws come from here,
        #: in a deterministic order, so reports are seed-reproducible
        self._rng = random.Random(f"fleet:{seed}")
        self.slots = [ShardSlot(i) for i in range(config.shards)]
        #: tenant name -> shard index
        self.assignment: Dict[str, int] = {}
        self.queues: Dict[str, deque] = {
            name: deque() for name in self.tenants}
        self._deficit: Dict[str, float] = {
            name: 0.0 for name in self.tenants}
        #: every FleetRequest ever admitted (terminal-status invariant)
        self.requests: List[FleetRequest] = []
        self._backoff: List[FleetRequest] = []
        # supervisor counters
        self.kills_detected = 0
        self.wedges_detected = 0
        self.quarantines = 0
        self.respawns = 0
        self.rebalances = 0
        self.shed = 0
        self.deferrals = 0
        self.retries = 0
        self.degraded_rounds = 0
        self.forced = 0
        self.rounds_run = 0
        self.cross_user_total = 0
        self.obs = telemetry if telemetry is not None else _telemetry()
        #: fleet observatory (:mod:`repro.obs.fleet`): cross-process
        #: trace stitching, worker telemetry harvesting, burn-rate
        #: alerting.  When set, workers run with ``observe=True`` and
        #: piggyback span/metric deltas on every round reply.
        self.fobs = observatory

    # -- shard lifecycle ------------------------------------------------------
    def _spawn(self, slot: ShardSlot, rnd: int) -> None:
        host_cls = _HOSTS[self.cfg.workers]
        slot.host = host_cls(slot.index, self.cfg.backend,
                             self.cfg.reply_timeout,
                             observe=self.fobs is not None)
        stats = slot.host.request(("probe",))
        slot.cycle_offset = rnd * self.cfg.cycles_per_round - stats["cycle"]
        slot.state = "live"
        slot.inflight.clear()
        slot.rounds_idle = 0
        slot.delivered_total = 0
        slot.cross_user = 0
        slot.epoch += 1
        if self.obs is not None:
            self.obs.security.emit(
                "fleet_shard_spawned", source="fleet",
                cycle=rnd * self.cfg.cycles_per_round,
                shard=slot.index, epoch=slot.epoch)
        if self.fobs is not None:
            self.fobs.on_spawn(slot.index, slot.epoch, rnd)

    def _live_slots(self) -> List[ShardSlot]:
        return [s for s in self.slots if s.live]

    def _requeue_front(self, reqs: List[FleetRequest]) -> None:
        """Return requests to the front of their queues, id order kept."""
        for req in sorted(reqs, key=lambda r: -r.id):
            req.status = "queued"
            req.shard = None
            self.queues[req.tenant].appendleft(req)

    def _on_death(self, slot: ShardSlot, rnd: int, cause: str) -> None:
        """A shard stopped serving: reclaim, schedule respawn, rebalance.

        ``cause`` is ``"death"`` (the worker pipe broke — the chaos
        kill detection path) or ``"wedge"`` (the no-progress watchdog
        quarantined a live-but-frozen shard).  Either way every
        in-flight request is reclaimed for retry — the fleet never
        forgets work a dead shard was holding.
        """
        if cause == "death":
            self.kills_detected += 1
        else:
            self.wedges_detected += 1
            self.quarantines += 1
        try:
            slot.host.terminate()
        except (ShardDead, OSError):
            pass
        slot.host = None
        slot.state = "down"
        slot.deaths += 1
        slot.respawn_round = rnd + self.cfg.respawn_base_rounds * (
            2 ** (slot.deaths - 1))
        reclaimed = [slot.inflight[k] for k in sorted(slot.inflight)]
        slot.inflight.clear()
        slot.rounds_idle = 0
        self.cross_user_total += slot.cross_user
        survivors: List[FleetRequest] = []
        for req in reclaimed:
            req.retries += 1
            self.retries += 1
            if req.retries > self.cfg.max_retries:
                req.status = "timed_out"
                if self.fobs is not None:
                    self.fobs.on_timeout(req, rnd)
            else:
                survivors.append(req)
                if self.fobs is not None:
                    self.fobs.on_requeue(req, rnd, cause)
        self._requeue_front(survivors)
        moved = self._rebalance_from(slot)
        if self.fobs is not None:
            self.fobs.on_down(slot.index, rnd, cause,
                              reclaimed=len(reclaimed), rebalanced=moved,
                              respawn_round=slot.respawn_round)
        if self.obs is not None:
            self.obs.security.emit(
                "fleet_shard_down", source="fleet",
                cycle=rnd * self.cfg.cycles_per_round, shard=slot.index,
                cause=cause, reclaimed=len(reclaimed), rebalanced=moved,
                respawn_round=slot.respawn_round)

    def _rebalance_from(self, dead: ShardSlot) -> int:
        """Move the dead shard's tenants onto the emptiest live shards."""
        live = self._live_slots()
        if not live:
            return 0
        moved = 0
        loads = {s.index: sum(1 for t in self.assignment.values()
                              if t == s.index) for s in live}
        for name in sorted(t for t, s in self.assignment.items()
                           if s == dead.index):
            target = min(loads, key=lambda i: (loads[i], i))
            self.assignment[name] = target
            loads[target] += 1
            moved += 1
        self.rebalances += moved
        return moved

    def _rebalance_onto(self, fresh: ShardSlot) -> int:
        """Shift tenants from the most loaded shards onto a respawn."""
        moved = 0
        while True:
            loads: Dict[int, int] = {s.index: 0 for s in self._live_slots()}
            for t, s in self.assignment.items():
                if s in loads:
                    loads[s] += 1
            heaviest = max(loads, key=lambda i: (loads[i], -i))
            if heaviest == fresh.index:
                break
            if loads[heaviest] - loads[fresh.index] <= 1:
                break
            # deterministic pick: last-sorted tenant on the heavy shard
            name = sorted(t for t, s in self.assignment.items()
                          if s == heaviest)[-1]
            self.assignment[name] = fresh.index
            moved += 1
        self.rebalances += moved
        return moved

    # -- admission ------------------------------------------------------------
    def _admit(self, cycle: int, tenant: str, cmd: int, data: int) -> None:
        spec = self.tenants[tenant]
        slo_class = "adversarial" if spec.adversarial else spec.tenant_class
        req = FleetRequest(len(self.requests), tenant, spec.tenant_class,
                           slo_class, spec.priority, cmd, data, cycle)
        req.trace_id = f"{self.seed & 0xFFFFFFFF:08x}-{req.id:06d}"
        self.requests.append(req)
        if self.fobs is not None:
            self.fobs.on_admit(req, cycle)
        if len(self.queues[tenant]) >= self.cfg.queue_bound:
            # backpressure: shed the lowest-priority queued request in
            # the fleet — possibly the incoming one itself — and record
            # it as rejected (terminal), never silently dropped
            victim_name = max(
                (t for t in self.queues if self.queues[t]),
                key=lambda t: (self.tenants[t].priority, t))
            victim_spec = self.tenants[victim_name]
            if (req.priority, tenant) >= (victim_spec.priority, victim_name):
                req.status = "rejected"
                self.shed += 1
                if self.fobs is not None:
                    self.fobs.on_shed(req, cycle, for_tenant=tenant)
                return
            victim = self.queues[victim_name].pop()
            victim.status = "rejected"
            self.shed += 1
            if self.fobs is not None:
                self.fobs.on_shed(victim, cycle, for_tenant=tenant)
            if self.obs is not None:
                self.obs.security.emit(
                    "fleet_request_shed", source="fleet", cycle=cycle,
                    tenant=victim.tenant, for_tenant=tenant)
        req.status = "queued"
        self.queues[tenant].append(req)

    # -- watchdog -------------------------------------------------------------
    def _watchdog(self, rnd: int, fleet_cycle: int) -> None:
        if self._backoff:
            due = [r for r in self._backoff if r.release_round <= rnd]
            if due:
                self._backoff = [r for r in self._backoff
                                 if r.release_round > rnd]
                self._requeue_front(due)
        deadline = self.cfg.request_deadline
        for queue in self.queues.values():
            for req in list(queue):
                # each retry extends the budget: the clock never
                # restarts, so reported latency stays end-to-end honest
                if fleet_cycle - req.submitted_cycle > deadline * (
                        req.retries + 1):
                    queue.remove(req)
                    self._trip(req, rnd)

    def _trip(self, req: FleetRequest, rnd: int) -> None:
        if req.retries < self.cfg.max_retries:
            req.retries += 1
            self.retries += 1
            delay = (self.cfg.retry_base_rounds * (2 ** (req.retries - 1))
                     + self._rng.randrange(self.cfg.retry_jitter_rounds + 1))
            req.status = "backoff"
            req.release_round = rnd + delay
            self._backoff.append(req)
            if self.fobs is not None:
                self.fobs.on_backoff(req, rnd, delay)
        else:
            req.status = "timed_out"
            if self.fobs is not None:
                self.fobs.on_timeout(req, rnd)

    # -- dispatch -------------------------------------------------------------
    def _build_batch(self, slot: ShardSlot, fleet_cycle: int) -> List[dict]:
        assigned = sorted(
            (t for t, s in self.assignment.items() if s == slot.index),
            key=lambda t: (self.tenants[t].priority, t))
        if not assigned:
            return []
        batch: List[dict] = []
        # the shard has len(SEATS) key slots; tenants already holding a
        # seat (in-flight work) count against the budget first
        seated = {r.tenant for r in slot.inflight.values()}
        for name in assigned:
            spec = self.tenants[name]
            q = self.queues[name]
            if not q:
                self._deficit[name] = 0.0
                continue
            self._deficit[name] += spec.weight
            while (q and self._deficit[name] >= 1.0
                   and len(batch) < self.cfg.batch_per_round):
                if name not in seated and len(seated) >= len(SEATS):
                    break
                req = q.popleft()
                self._deficit[name] -= 1.0
                seated.add(name)
                req.status = "dispatched"
                req.attempts += 1
                req.shard = slot.index
                slot.inflight[req.id] = req
                batch.append({"id": req.id, "tenant": name,
                              "cmd": req.cmd, "data": req.data,
                              "key": spec.key,
                              "adversarial": spec.adversarial,
                              "trace": req.trace_id})
                if self.fobs is not None:
                    self.fobs.on_dispatch(req, slot.index, fleet_cycle)
        return batch

    def _apply_reply(self, slot: ShardSlot, reply: dict, rnd: int) -> None:
        if self.fobs is not None and "obs" in reply:
            self.fobs.harvest(slot.index, slot.epoch, slot.cycle_offset,
                              reply["obs"])
        delivered_now = 0
        for ev in reply["events"]:
            req = slot.inflight.pop(ev["id"], None)
            if req is None:
                continue
            if ev["status"] == "delivered":
                req.status = "delivered"
                req.delivered_cycle = slot.cycle_offset + ev["delivered_cycle"]
                req.result = ev["result"]
                req.verified = ev.get("verified")
                delivered_now += 1
            else:
                # the core reached a terminal verdict itself; mirror it
                req.status = ev["status"]
            if self.fobs is not None:
                self.fobs.on_terminal(req, rnd, from_worker=True)
        deferred = [slot.inflight.pop(rid) for rid in reply["deferred"]
                    if rid in slot.inflight]
        if deferred:
            self.deferrals += len(deferred)
            if self.fobs is not None:
                for req in deferred:
                    self.fobs.on_defer(req, slot.index, rnd)
            self._requeue_front(deferred)
        stats = reply["stats"]
        slot.delivered_total = stats["delivered"]
        slot.cross_user = stats["cross_user_deliveries"]
        if slot.inflight and delivered_now == 0:
            slot.rounds_idle += 1
        else:
            slot.rounds_idle = 0

    # -- the round loop -------------------------------------------------------
    def run(self, trace: TrafficTrace,
            chaos: Optional[ChaosSchedule] = None) -> "FleetReport":
        cfg = self.cfg
        chaos = chaos or ChaosSchedule([])
        cpr = cfg.cycles_per_round
        horizon_rounds = -(-trace.horizon // cpr)
        limit = horizon_rounds + cfg.flush_rounds
        if self.fobs is not None:
            self.fobs.bind(self)
        # initial placement: tenants striped over the pool
        names = sorted(self.tenants,
                       key=lambda t: (self.tenants[t].priority, t))
        for i, name in enumerate(names):
            self.assignment[name] = i % cfg.shards
        for slot in self.slots:
            self._spawn(slot, 0)
        self.respawns = 0  # initial spawns are not recoveries

        arrivals = trace.arrivals
        cursor = 0
        rnd = 0
        while rnd < limit:
            fleet_cycle = rnd * cpr
            # 1. chaos fires at the round boundary
            for ev in chaos.at(rnd):
                slot = self.slots[ev.shard]
                if not slot.live:
                    continue
                if ev.kind == "kill":
                    slot.host.kill()   # detection comes from the pipe
                    if self.fobs is not None:
                        self.fobs.on_chaos(ev, rnd)
                elif ev.kind == "wedge":
                    try:
                        slot.host.request(("inject", ev.plan))
                    except ShardDead:
                        self._on_death(slot, rnd, "death")
                    else:
                        if self.fobs is not None:
                            self.fobs.on_chaos(ev, rnd)
            # 2. admit this round's arrivals
            while (cursor < len(arrivals)
                   and arrivals[cursor].cycle < fleet_cycle + cpr):
                a = arrivals[cursor]
                self._admit(a.cycle, a.tenant, a.cmd, a.data)
                cursor += 1
            # 3. watchdog: backoff release + deadline scan
            self._watchdog(rnd, fleet_cycle)
            # 4. respawns that have served their backoff
            for slot in self.slots:
                if slot.state == "down" and rnd >= slot.respawn_round:
                    self._spawn(slot, rnd)
                    self.respawns += 1
                    moved = self._rebalance_onto(slot)
                    if self.fobs is not None:
                        self.fobs.on_rebalance(slot.index, rnd, moved)
            # 5. dispatch: build + send every live shard's round first,
            # then collect replies in index order — process workers all
            # simulate concurrently between the two passes
            live = self._live_slots()
            if not live:
                self.degraded_rounds += 1
            pending: List[Tuple[ShardSlot, tuple]] = []
            for slot in live:
                msg = ("run", self._build_batch(slot, fleet_cycle), cpr)
                if slot.host.kind == "process":
                    try:
                        slot.host.send(msg)
                    except ShardDead:
                        self._on_death(slot, rnd, "death")
                        continue
                pending.append((slot, msg))
            for slot, msg in pending:
                try:
                    reply = (slot.host.recv()
                             if slot.host.kind == "process"
                             else slot.host.request(msg))
                except ShardDead:
                    self._on_death(slot, rnd, "death")
                    continue
                self._apply_reply(slot, reply, rnd)
                # 6. no-progress watchdog: a live shard holding work
                # that delivers nothing for wedge_rounds rounds is
                # wedged — quarantine and drain it
                if slot.rounds_idle >= cfg.wedge_rounds:
                    self._on_death(slot, rnd, "wedge")
            if self.fobs is not None:
                self.fobs.on_round_end(rnd)
            rnd += 1
            self.rounds_run = rnd
            if (cursor >= len(arrivals) and not self._backoff
                    and all(r.is_terminal for r in self.requests)):
                break

        # drain protocol: anything still open is forced terminal so the
        # invariant is checkable — the gate then requires forced == 0
        for req in self.requests:
            if not req.is_terminal:
                req.status = "timed_out"
                self.forced += 1
                if self.fobs is not None:
                    self.fobs.on_timeout(req, self.rounds_run)
        for slot in self.slots:
            if slot.live:
                self.cross_user_total += slot.cross_user
                try:
                    slot.host.request(("stop",))
                except ShardDead:
                    pass
                try:
                    slot.host.terminate()
                except (ShardDead, OSError):
                    pass
                slot.host = None
                slot.state = "down"
        if self.obs is not None:
            self._publish_metrics()
        if self.fobs is not None:
            self.fobs.finalize(self)
        return FleetReport(self, trace, chaos)

    def _publish_metrics(self) -> None:
        m = self.obs.metrics
        totals: Dict[str, int] = {}
        for req in self.requests:
            totals[req.status] = totals.get(req.status, 0) + 1
        g = m.gauge("fleet_requests_by_status",
                    "terminal request counts for the last fleet run",
                    ("status",))
        for status, count in sorted(totals.items()):
            g.set(count, status=status)
        m.gauge("fleet_kills_detected",
                "worker deaths detected via the shard pipe").set(
            self.kills_detected)
        m.gauge("fleet_wedges_detected",
                "no-progress quarantines of live shards").set(
            self.wedges_detected)
        m.gauge("fleet_respawns",
                "shard respawns after backoff").set(self.respawns)
        m.gauge("fleet_rebalances",
                "tenant moves across shards").set(self.rebalances)
        m.gauge("fleet_shed_requests",
                "admission-control rejections under backpressure").set(
            self.shed)
        m.gauge("fleet_degraded_rounds",
                "rounds served with zero live shards").set(
            self.degraded_rounds)
        lat = m.histogram("fleet_request_latency_cycles",
                          "admission-to-delivery latency in fleet cycles",
                          ("tenant_class",), reservoir=512)
        for req in self.requests:
            if req.status == "delivered" and req.latency is not None:
                lat.observe(req.latency, tenant_class=req.slo_class)


# ---------------------------------------------------------------------------
# report + gate
# ---------------------------------------------------------------------------

class FleetReport:
    """The fleet gate's verdict: conservation, SLOs, chaos recovery."""

    def __init__(self, fleet: AcceleratorFleet, trace: TrafficTrace,
                 chaos: ChaosSchedule,
                 ifc_ok: Optional[bool] = None):
        self.config = fleet.cfg.to_dict()
        self.seed = fleet.seed
        self.trace = trace.to_dict()
        self.chaos = chaos.to_dict()
        self.kills_injected = len(chaos.kills())
        self.wedges_injected = len(chaos.wedges())
        self.ifc_ok = ifc_ok

        reqs = fleet.requests
        self.total = len(reqs)
        self.by_status: Dict[str, int] = {}
        for req in reqs:
            self.by_status[req.status] = self.by_status.get(req.status, 0) + 1
        self.conservation_ok = (
            all(r.is_terminal for r in reqs)
            and sum(self.by_status.get(s, 0) for s in TERMINAL_STATUSES)
            == self.total)
        self.forced = fleet.forced

        delivered = [r for r in reqs if r.status == "delivered"]
        self.unverified = sum(
            1 for r in delivered
            if r.cmd == CMD_ENCRYPT and r.verified is not True)
        self.cross_user = fleet.cross_user_total

        self.supervisor = {
            "rounds_run": fleet.rounds_run,
            "kills_detected": fleet.kills_detected,
            "wedges_detected": fleet.wedges_detected,
            "quarantines": fleet.quarantines,
            "respawns": fleet.respawns,
            "rebalances": fleet.rebalances,
            "shed": fleet.shed,
            "deferrals": fleet.deferrals,
            "retries": fleet.retries,
            "degraded_rounds": fleet.degraded_rounds,
            "forced_terminal": fleet.forced,
        }

        self.per_tenant: Dict[str, dict] = {}
        slos = fleet.cfg.slos
        for name in sorted(fleet.tenants):
            spec = fleet.tenants[name]
            mine = [r for r in reqs if r.tenant == name]
            done = [r for r in mine if r.status == "delivered"]
            lats = [r.latency for r in done if r.latency is not None]
            slo_class = "adversarial" if spec.adversarial else spec.tenant_class
            slo = slos[slo_class]
            goodput = (len(done) / len(mine)) if mine else 1.0
            p99 = sample_quantile(lats, 0.99)
            slo_ok = (goodput >= slo["goodput"]
                      and (p99 is not None and p99 <= slo["p99"]
                           if mine else True))
            self.per_tenant[name] = {
                "class": spec.tenant_class,
                "slo_class": slo_class,
                "adversarial": spec.adversarial,
                "submitted": len(mine),
                "delivered": len(done),
                "rejected": sum(1 for r in mine if r.status == "rejected"),
                "timed_out": sum(1 for r in mine
                                 if r.status == "timed_out"),
                "retries": sum(r.retries for r in mine),
                "p50": sample_quantile(lats, 0.50),
                "p95": sample_quantile(lats, 0.95),
                "p99": p99,
                "goodput": round(goodput, 4),
                "slo_p99": slo["p99"],
                "slo_goodput": slo["goodput"],
                "slo_ok": slo_ok,
            }

        self.slo_ok = all(t["slo_ok"] for t in self.per_tenant.values())
        self.chaos_ok = (
            fleet.kills_detected >= self.kills_injected
            and (fleet.wedges_detected >= 1 or self.wedges_injected == 0)
            and (fleet.quarantines >= 1 or self.wedges_injected == 0)
            and (fleet.respawns >= 1
                 or (self.kills_injected + self.wedges_injected) == 0)
            and (fleet.rebalances >= 1
                 or (self.kills_injected + self.wedges_injected) == 0))
        self.security_ok = (self.cross_user == 0 and self.unverified == 0
                            and self.ifc_ok is not False)

    def ok(self) -> bool:
        return (self.conservation_ok and self.forced == 0
                and self.slo_ok and self.chaos_ok and self.security_ok)

    def to_dict(self) -> dict:
        return {
            "ok": self.ok(),
            "seed": self.seed,
            "config": self.config,
            "trace": self.trace,
            "chaos": self.chaos,
            "totals": {"requests": self.total,
                       "by_status": self.by_status},
            "conservation_ok": self.conservation_ok,
            "per_tenant": self.per_tenant,
            "slo_ok": self.slo_ok,
            "supervisor": self.supervisor,
            "chaos_ok": self.chaos_ok,
            "security": {"cross_user_deliveries": self.cross_user,
                         "unverified_deliveries": self.unverified,
                         "ifc_ok": self.ifc_ok,
                         "ok": self.security_ok},
        }

    def render(self) -> str:
        sup = self.supervisor
        lines = [
            "Fleet gate "
            + ("PASS" if self.ok() else "FAIL"),
            f"  shards={self.config['shards']} "
            f"workers={self.config['workers']} "
            f"rounds={sup['rounds_run']} seed={self.seed}",
            f"  trace: {self.trace['arrivals']} arrivals "
            f"(digest {self.trace['digest']})",
            f"  requests: {self.total} total, "
            + ", ".join(f"{k}={v}"
                        for k, v in sorted(self.by_status.items()))
            + f" | conservation {'OK' if self.conservation_ok else 'VIOLATED'}"
            + (f" (forced={self.forced})" if self.forced else ""),
            f"  chaos: kills {sup['kills_detected']}/{self.kills_injected} "
            f"detected, wedges {sup['wedges_detected']}/"
            f"{self.wedges_injected}, quarantines {sup['quarantines']}, "
            f"respawns {sup['respawns']}, rebalances {sup['rebalances']} "
            f"-> {'OK' if self.chaos_ok else 'FAIL'}",
            f"  admission: shed={sup['shed']} deferrals={sup['deferrals']} "
            f"retries={sup['retries']} degraded_rounds="
            f"{sup['degraded_rounds']}",
            f"  security: cross_user={self.cross_user} "
            f"unverified={self.unverified} ifc_ok={self.ifc_ok} "
            f"-> {'OK' if self.security_ok else 'FAIL'}",
            "  per-tenant SLOs "
            + ("(all met):" if self.slo_ok else "(VIOLATIONS):"),
        ]
        for name, t in self.per_tenant.items():
            lines.append(
                f"    {name:<4} {t['slo_class']:<11} "
                f"{t['delivered']}/{t['submitted']} delivered "
                f"p99={t['p99']} (slo {t['slo_p99']:g}) "
                f"goodput={t['goodput']:.2f} (slo {t['slo_goodput']:g}) "
                + ("ok" if t["slo_ok"] else "VIOLATED"))
        return "\n".join(lines)

    def render_md(self) -> str:
        sup = self.supervisor
        lines = [
            "# Fleet serving gate",
            "",
            f"Verdict: **{'PASS' if self.ok() else 'FAIL'}** "
            f"(seed {self.seed}, {self.config['shards']} shards, "
            f"{self.config['workers']} workers, "
            f"{sup['rounds_run']} rounds)",
            "",
            "## Request conservation",
            "",
            f"- requests: {self.total}",
        ]
        for k, v in sorted(self.by_status.items()):
            lines.append(f"- {k}: {v}")
        lines += [
            f"- conservation: "
            f"{'OK' if self.conservation_ok else 'VIOLATED'}"
            + (f" — {self.forced} forced terminal" if self.forced else ""),
            "",
            "## Chaos recovery",
            "",
            f"- kills detected: {sup['kills_detected']} / "
            f"{self.kills_injected} injected",
            f"- wedges quarantined: {sup['wedges_detected']} / "
            f"{self.wedges_injected} injected",
            f"- respawns: {sup['respawns']}, rebalances: "
            f"{sup['rebalances']}, degraded rounds: "
            f"{sup['degraded_rounds']}",
            f"- verdict: {'OK' if self.chaos_ok else 'FAIL'}",
            "",
            "## Security under chaos",
            "",
            f"- cross-user deliveries: {self.cross_user}",
            f"- unverified ciphertexts: {self.unverified}",
            f"- static IFC check: {self.ifc_ok}",
            "",
            "## Per-tenant SLOs",
            "",
            "| tenant | class | delivered | p99 | p99 SLO | goodput "
            "| goodput SLO | verdict |",
            "|---|---|---|---|---|---|---|---|",
        ]
        for name, t in self.per_tenant.items():
            lines.append(
                f"| {name} | {t['slo_class']} "
                f"| {t['delivered']}/{t['submitted']} "
                f"| {t['p99']} | {t['slo_p99']:g} "
                f"| {t['goodput']:.2f} | {t['slo_goodput']:g} "
                f"| {'ok' if t['slo_ok'] else 'VIOLATED'} |")
        lines.append("")
        return "\n".join(lines)


def run_fleet_gate(seed: int = 2026, shards: int = 4,
                   horizon: int = 1536, tenants: int = 6,
                   workers: str = "process", backend: str = "compiled",
                   kills: int = 2, wedges: int = 1,
                   config: Optional[FleetConfig] = None,
                   check_ifc: bool = True) -> FleetReport:
    """One full fleet-under-chaos run: trace, chaos, serve, verdict."""
    cfg = config or FleetConfig(shards=shards, backend=backend,
                                workers=workers)
    specs = default_tenants(tenants, seed=seed)
    trace = generate_trace(specs, horizon, seed=seed)
    rounds = -(-horizon // cfg.cycles_per_round)
    chaos = ChaosSchedule.seeded(seed, rounds, cfg.shards,
                                 kills=kills, wedges=wedges)
    fleet = AcceleratorFleet(cfg, specs, seed=seed)
    report = fleet.run(trace, chaos)

    ifc_ok: Optional[bool] = None
    if check_ifc:
        from ..accel.common import LATTICE
        from ..accel.protected import AesAcceleratorProtected
        from ..hdl.elaborate import elaborate_shallow
        from ..ifc.checker import IfcChecker

        netlist = elaborate_shallow(AesAcceleratorProtected())
        ifc_ok = IfcChecker(netlist, LATTICE,
                            max_hypotheses=1 << 20).check().ok()
    # rebuild the verdict with the IFC leg included
    return FleetReport(fleet, trace, chaos, ifc_ok=ifc_ok)


def cmd_fleet(args) -> int:
    """``python -m repro fleet`` — the fleet-under-chaos CI gate."""
    from ..gate import gate_epilogue

    if args.smoke:
        shards, horizon, tenants, workers = 2, 512, 4, "inline"
    else:
        shards, horizon, tenants = args.shards, args.horizon, args.tenants
        workers = args.workers
    report = run_fleet_gate(
        seed=args.seed, shards=shards, horizon=horizon,
        tenants=tenants, workers=workers, backend=args.backend,
        kills=args.kills, wedges=args.wedges)
    return gate_epilogue(
        args, ok=report.ok(), payload=report.to_dict(),
        render=report.render,
        artifacts={"fleet_report.json": report.to_dict(),
                   "fleet_report.md": report.render_md})
