"""Seeded open-loop traffic generation for the accelerator fleet.

Fleet-scale serving is only credible under fleet-scale *load*: not the
closed-loop "submit N blocks, drain, repeat" of the single-SoC
experiments, but an **open-loop** arrival process that keeps pushing
work whether or not the system keeps up — the regime in which admission
control, fair arbitration, and backpressure actually matter.

Three load shapes, all deterministic per seed:

* **heavy-tailed arrivals** — per-tenant inter-arrival gaps drawn from
  a Pareto distribution (shape ``alpha`` ≈ 1.6), so most gaps are short
  but the occasional gap is very long: bursty on every timescale, the
  classic network/datacenter arrival shape;
* **bursty tenants** — a tenant with ``burst > 1`` emits geometrically
  sized back-to-back batches at each arrival instant (think TLS record
  flurries);
* **adversarial co-tenants** — a tenant flagged ``adversarial`` is
  driven by the fleet as a *slow poller* on its shard (its reader
  drops ``out_ready`` periodically), which is exactly the §3.1 stall
  covert-channel probe; the protected design must not let that
  backpressure bleed into other tenants' latency.

A generated :class:`TrafficTrace` is a value object: replaying the same
trace against 1 shard and 4 shards (``benchmarks/bench_fleet.py``), or
through two chaos-perturbed fleet runs (the determinism gate), is what
makes the fleet numbers comparable.  ``digest()`` fingerprints the
trace so reports can prove they replayed the same load.
"""

from __future__ import annotations

import hashlib
import json
import random
from typing import Dict, Iterable, List, Optional

from ..accel.common import CMD_ENCRYPT

#: tenant classes, highest priority first; admission control sheds from
#: the back of this list first (lowest priority), DRR weights come from
#: CLASS_WEIGHTS
TENANT_CLASSES = ("gold", "silver", "bronze")

#: deficit-round-robin quantum per class (requests per DRR turn)
CLASS_WEIGHTS = {"gold": 4, "silver": 2, "bronze": 1}


class TenantSpec:
    """One fleet tenant: identity, service class, and load shape."""

    __slots__ = ("name", "tenant_class", "rate", "burst", "adversarial",
                 "key")

    def __init__(self, name: str, tenant_class: str = "silver",
                 rate: float = 8.0, burst: int = 1,
                 adversarial: bool = False, key: Optional[int] = None):
        if tenant_class not in TENANT_CLASSES:
            raise ValueError(f"unknown tenant class {tenant_class!r}; "
                             f"expected one of {TENANT_CLASSES}")
        self.name = name
        self.tenant_class = tenant_class
        #: mean arrivals per 1000 fleet cycles (before burst expansion)
        self.rate = float(rate)
        #: mean burst size at each arrival instant (1 = no bursts)
        self.burst = int(burst)
        self.adversarial = bool(adversarial)
        self.key = key

    @property
    def priority(self) -> int:
        """0 is highest; admission sheds the numerically largest first."""
        return TENANT_CLASSES.index(self.tenant_class)

    @property
    def weight(self) -> int:
        return CLASS_WEIGHTS[self.tenant_class]

    def to_dict(self) -> dict:
        return {"name": self.name, "class": self.tenant_class,
                "rate": self.rate, "burst": self.burst,
                "adversarial": self.adversarial}

    def __repr__(self) -> str:
        adv = ", adversarial" if self.adversarial else ""
        return (f"TenantSpec({self.name}, {self.tenant_class}, "
                f"rate={self.rate}{adv})")


def default_tenants(n: int = 6, seed: int = 0) -> List[TenantSpec]:
    """A mixed fleet population: gold/silver/bronze, one adversary.

    Tenant ``t<i>`` cycles through the service classes; the last bronze
    tenant is the adversarial co-tenant (slow poller hammering the
    stall channel).  Keys are derived deterministically from ``seed``.
    """
    rng = random.Random(seed ^ 0x7E4A47)
    out: List[TenantSpec] = []
    for i in range(n):
        cls = TENANT_CLASSES[i % len(TENANT_CLASSES)]
        burst = 3 if i % 2 else 1
        rate = {"gold": 10.0, "silver": 7.0, "bronze": 5.0}[cls]
        out.append(TenantSpec(
            f"t{i}", cls, rate=rate, burst=burst,
            adversarial=False, key=rng.getrandbits(128)))
    # the adversary: lowest class, bursty, slow poller
    for spec in reversed(out):
        if spec.tenant_class == "bronze":
            spec.adversarial = True
            spec.burst = max(spec.burst, 3)
            break
    return out


class Arrival:
    """One open-loop arrival: a block some tenant wants encrypted."""

    __slots__ = ("cycle", "tenant", "cmd", "data")

    def __init__(self, cycle: int, tenant: str, data: int,
                 cmd: int = CMD_ENCRYPT):
        self.cycle = int(cycle)
        self.tenant = tenant
        self.cmd = cmd
        self.data = data

    def to_dict(self) -> dict:
        return {"cycle": self.cycle, "tenant": self.tenant,
                "cmd": self.cmd, "data": self.data}

    def __repr__(self) -> str:
        return f"Arrival(cycle={self.cycle}, tenant={self.tenant})"


class TrafficTrace:
    """A replayable arrival schedule (sorted by cycle, then tenant)."""

    def __init__(self, tenants: List[TenantSpec], arrivals: List[Arrival],
                 horizon: int, seed: int):
        self.tenants = list(tenants)
        self.arrivals = sorted(arrivals,
                               key=lambda a: (a.cycle, a.tenant, a.data))
        self.horizon = int(horizon)
        self.seed = int(seed)

    def __len__(self) -> int:
        return len(self.arrivals)

    def per_tenant_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {t.name: 0 for t in self.tenants}
        for a in self.arrivals:
            counts[a.tenant] = counts.get(a.tenant, 0) + 1
        return counts

    def digest(self) -> str:
        """Stable fingerprint of the full schedule (replay evidence)."""
        payload = json.dumps(
            {"horizon": self.horizon, "seed": self.seed,
             "tenants": [t.to_dict() for t in self.tenants],
             "arrivals": [a.to_dict() for a in self.arrivals]},
            sort_keys=True)
        return hashlib.sha256(payload.encode()).hexdigest()[:16]

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "horizon": self.horizon,
            "arrivals": len(self.arrivals),
            "digest": self.digest(),
            "per_tenant": self.per_tenant_counts(),
            "tenants": [t.to_dict() for t in self.tenants],
        }


def generate_trace(tenants: Iterable[TenantSpec], horizon: int,
                   seed: int = 2026) -> TrafficTrace:
    """Open-loop Pareto arrivals over ``horizon`` fleet cycles.

    Each tenant gets an independent ``random.Random`` stream derived
    from ``(seed, name)`` so adding a tenant never perturbs another
    tenant's schedule.  Inter-arrival gaps are Pareto with shape 1.6,
    scaled so the *mean* gap matches ``1000 / rate`` cycles; burst
    sizes are geometric with mean ``burst``.
    """
    tenants = list(tenants)
    arrivals: List[Arrival] = []
    alpha = 1.6
    # E[pareto(alpha)] = alpha / (alpha - 1); divide it out so `rate`
    # stays the real mean arrival rate despite the heavy tail
    mean_pareto = alpha / (alpha - 1.0)
    for spec in tenants:
        rng = random.Random(f"{seed}:{spec.name}")
        mean_gap = 1000.0 / spec.rate
        scale = mean_gap / mean_pareto
        t = rng.uniform(0, mean_gap)  # desynchronised starts
        while t < horizon:
            burst = 1
            if spec.burst > 1:
                # geometric with mean `burst`, capped to keep bounded
                p = 1.0 / spec.burst
                while burst < 4 * spec.burst and rng.random() > p:
                    burst += 1
            for _ in range(burst):
                arrivals.append(Arrival(int(t), spec.name,
                                        rng.getrandbits(128)))
            t += scale * rng.paretovariate(alpha)
    return TrafficTrace(tenants, arrivals, horizon, seed)
