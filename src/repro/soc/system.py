"""SoC harness: the single-shard facade over :class:`ShardCore`.

``SoCSystem`` is the name the experiments, examples, and tests have
always used for "several labelled users sharing one accelerator"
(Fig. 2).  The serving logic now lives in
:class:`repro.soc.shard.ShardCore` so the fleet layer
(:mod:`repro.soc.fleet`) can embed the identical engine in every worker
process; this subclass exists to keep the one-SoC-one-accelerator API
(and its import path) stable.
"""

from __future__ import annotations

from .shard import ShardCore


class SoCSystem(ShardCore):
    """A small SoC: several users, one shared AES accelerator.

    Identical to :class:`~repro.soc.shard.ShardCore`; see that class
    for the full constructor and serving semantics (watchdog, retry,
    quarantine, telemetry).
    """
