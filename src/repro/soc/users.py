"""Principals of the multi-user SoC (Fig. 2).

Each user application holds a security label (and hence an 8-bit tag) and
a secret AES key; the supervisor manages slot allocation and owns the
master key.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..accel.common import LATTICE, supervisor_label, user_label
from ..ifc.label import Label


class Principal:
    """One user application (or the supervisor) on the SoC."""

    def __init__(self, name: str, label: Label, key: Optional[int] = None,
                 slot: Optional[int] = None):
        self.name = name
        self.label = label
        self.tag = label.encode()
        self.key = key
        self.slot = slot

    @property
    def is_supervisor(self) -> bool:
        return self.label.integ == LATTICE.integ_bottom

    def __repr__(self) -> str:
        return f"Principal({self.name}, {self.label!r}, slot={self.slot})"


def default_principals() -> Dict[str, Principal]:
    """Alice/Bob/Charlie/Dave on principal slots p0..p3, plus supervisor.

    Keys are fixed test values; slots 1..3 are assigned to the first three
    users (slot 0 is the master key's).
    """
    names = ["alice", "bob", "charlie", "dave"]
    keys = [
        0x000102030405060708090A0B0C0D0E0F,
        0x101112131415161718191A1B1C1D1E1F,
        0x202122232425262728292A2B2C2D2E2F,
        0x303132333435363738393A3B3C3D3E3F,
    ]
    out: Dict[str, Principal] = {}
    for i, (name, key) in enumerate(zip(names, keys)):
        slot = i + 1 if i < 3 else None  # only 3 non-master slots
        out[name] = Principal(name, user_label(f"p{i}"), key=key, slot=slot)
    out["supervisor"] = Principal("supervisor", supervisor_label())
    return out


def users_of(principals: Dict[str, Principal]) -> List[Principal]:
    return [p for p in principals.values() if not p.is_supervisor]
