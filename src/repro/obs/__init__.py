"""repro.obs — unified telemetry: metrics, tracing, security audit stream.

One :class:`Telemetry` object bundles the three pillars:

* ``metrics`` — a :class:`~repro.obs.metrics.MetricsRegistry`
  (counters/gauges/histograms; Prometheus text + JSON-lines export);
* ``tracer`` — a :class:`~repro.obs.tracing.Tracer`
  (request-lifecycle spans; Chrome trace-event export);
* ``security`` — a :class:`~repro.obs.security.SecurityEventLog`
  (enforcement events; JSON-lines export).

Telemetry is **off by default** and the off state is a true no-op:
instrumented code does ``obs = telemetry()`` (one module-global read)
and skips everything when it returns ``None``.  Enable it globally::

    import repro.obs as obs
    t = obs.enable()
    ... run a workload ...
    t.write_all("telemetry_out/")   # metrics.prom, metrics.jsonl,
                                    # trace.json, security.jsonl

or scoped::

    with obs.capture() as t:
        soc = SoCSystem(protected=True)   # instruments itself from t
        ...
    print(t.security.counts())

Built on the pillars (imported lazily — they pull in the accelerator
stack, which itself instruments through this package):

* :mod:`repro.obs.leakage` — statistical timing-channel detector
  (Welch's t-test + mutual information over paired campaigns);
* :mod:`repro.obs.profile` — per-module simulation profiler
  (flamegraph / Chrome trace / toggle heatmap);
* :mod:`repro.obs.power` — Hamming-distance power proxy with TVLA/CPA
  detectors over the masked-vs-unmasked round pair;
* :mod:`repro.obs.coverage` — toggle/taint/site/fault coverage
  observatory with the cross-backend bit-identity gate;
* :mod:`repro.obs.history` — append-only bench-gauge ledger with a
  regression comparator.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Dict, Optional

from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    NULL_INSTRUMENT,
    escape_label_value,
    sample_quantile,
    unescape_label_value,
)
from .security import (
    NullSecurityEventLog,
    SecurityEvent,
    SecurityEventLog,
    SecurityProbe,
)
from .tracing import NullTracer, Span, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NullTracer",
    "NullSecurityEventLog",
    "NULL_INSTRUMENT",
    "SecurityEvent",
    "SecurityEventLog",
    "SecurityProbe",
    "Span",
    "Telemetry",
    "Tracer",
    "capture",
    "disable",
    "enable",
    "enabled",
    "escape_label_value",
    "sample_quantile",
    "telemetry",
    "unescape_label_value",
]


class Telemetry:
    """Bundle of the three telemetry pillars plus export helpers."""

    def __init__(self, metrics: Optional[MetricsRegistry] = None,
                 tracer: Optional[Tracer] = None,
                 security: Optional[SecurityEventLog] = None):
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer()
        self.security = security if security is not None else SecurityEventLog()

    def write_all(self, out_dir: str) -> Dict[str, str]:
        """Write every export format into ``out_dir``; returns the paths."""
        os.makedirs(out_dir, exist_ok=True)
        paths = {
            "prometheus": os.path.join(out_dir, "metrics.prom"),
            "metrics_jsonl": os.path.join(out_dir, "metrics.jsonl"),
            "chrome_trace": os.path.join(out_dir, "trace.json"),
            "security_jsonl": os.path.join(out_dir, "security.jsonl"),
        }
        self.metrics.write_prometheus(paths["prometheus"])
        self.metrics.write_jsonl(paths["metrics_jsonl"])
        self.tracer.write_chrome_trace(paths["chrome_trace"])
        self.security.write_jsonl(paths["security_jsonl"])
        return paths


_active: Optional[Telemetry] = None


def telemetry() -> Optional[Telemetry]:
    """The active telemetry bundle, or None when disabled.

    This is *the* fast path: instrumentation sites call it once per
    operation and bail out on None, so disabled telemetry costs one
    global read and one comparison.
    """
    return _active


def enabled() -> bool:
    return _active is not None


def enable(t: Optional[Telemetry] = None) -> Telemetry:
    """Install ``t`` (or a fresh :class:`Telemetry`) as the active bundle."""
    global _active
    _active = t if t is not None else Telemetry()
    return _active


def disable() -> None:
    global _active
    _active = None


@contextmanager
def capture(t: Optional[Telemetry] = None):
    """Enable telemetry for a ``with`` block, restoring the prior state."""
    global _active
    prev = _active
    _active = t if t is not None else Telemetry()
    try:
        yield _active
    finally:
        _active = prev
