"""Fleet observatory: distributed tracing, telemetry harvest, SLO alerts.

The fleet layer (:mod:`repro.soc.fleet`) runs shard workers in separate
OS processes, so the single-process telemetry story of :mod:`repro.obs`
stops at the pipe.  This module closes that gap with three pieces, all
deterministic functions of ``(trace, chaos, config, seed)``:

* **cross-process distributed tracing** — every
  :class:`~repro.soc.fleet.FleetRequest` carries a ``trace_id`` over the
  shard pipe protocol; workers record spans (seat provisioning, sim
  rounds, wedge stalls, declassifier waits, per-request service) in
  their own cycle domain and piggyback the deltas on round replies; the
  coordinator shifts them into **fleet logical cycles** with the slot's
  ``cycle_offset`` and stitches one Chrome trace: pid 1 is the
  coordinator (per-tenant tracks + a lifecycle track), pid
  ``SHARD_PID_BASE + i`` is shard ``i`` (per-seat tracks), flow events
  link admission → shard service → delivery, and every chaos kill,
  wedge, quarantine, respawn, and rebalance lands as an instant
  annotation;
* **worker telemetry harvesting** — each observed worker runs its own
  :class:`~repro.obs.MetricsRegistry`; a cursor-based delta protocol
  ships ``(op, name, labels, value)`` rows with each reply (counters
  and histogram samples additive so respawn epochs accumulate, gauges
  overwrite) and the coordinator merges them into shard-labelled
  families — bit-identical between inline and process hosts;
* **SLO burn-rate alerting** — a streaming multi-window evaluator
  (:class:`BurnRateEngine`) consumes request outcomes per round,
  compares fast/slow-window burn rates against each class's error
  budget from the fleet SLO table, and opens alert episodes that the
  gate correlates against the *seeded* chaos schedule: precision and
  recall must both be 1.0, which is only possible because the ground
  truth is replayable.

``python -m repro obs fleet`` runs the whole thing as a CI gate: 100%
span-chain completeness over every terminal request (shed and dropped
included), perfect alert precision/recall, and the cross-host identity
check.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, List, Optional, Tuple

from .tracing import Tracer

#: Chrome trace pid of the fleet coordinator
FLEET_PID = 1
#: shard ``i``'s events render under pid ``SHARD_PID_BASE + i``
SHARD_PID_BASE = 10

#: default burn-rate engine tuning (rounds); see :class:`BurnRateEngine`
FAST_WINDOW = 4
SLOW_WINDOW = 16
BURN_THRESHOLD = 2.0
MIN_EVENTS = 4
#: an alert episode starting within this many rounds after a chaos
#: event is attributed to it (covers reclaim, respawn backoff, and the
#: retry round-trips a kill or wedge inflicts on its victims)
MATCH_ROUNDS = 40


def _digest(obj) -> str:
    return hashlib.sha256(
        json.dumps(obj, sort_keys=True).encode()).hexdigest()[:16]


class BurnRateEngine:
    """Streaming multi-window SLO burn-rate alerting.

    The classic SRE construction: with an error budget of
    ``1 - goodput_target``, the *burn rate* of a window is the bad
    fraction observed in it divided by the budget (1.0 = exactly
    spending the budget).  An episode opens for a class when **both**
    the fast and the slow window burn at or above ``threshold`` (fast
    window for reaction time, slow window so a single bad round on thin
    traffic cannot page) and the slow window holds at least
    ``min_events`` bad events; it closes when either condition lapses.

    "Bad" is an input decision, not the engine's: the fleet observatory
    feeds it terminal outcomes (not delivered, or delivered above the
    class p99) *and* chaos disruptions (in-flight work reclaimed from a
    dead shard), so a kill whose retries all eventually deliver still
    burns — the disruption was real even if the deadline saved the
    request.
    """

    def __init__(self, slos: Dict[str, Dict[str, float]],
                 fast_window: int = FAST_WINDOW,
                 slow_window: int = SLOW_WINDOW,
                 threshold: float = BURN_THRESHOLD,
                 min_events: int = MIN_EVENTS):
        self.slos = slos
        self.fast_window = int(fast_window)
        self.slow_window = int(slow_window)
        self.threshold = float(threshold)
        self.min_events = int(min_events)
        #: round -> class -> [bad, total]
        self._by_round: Dict[int, Dict[str, List[int]]] = {}
        self._active: Dict[str, dict] = {}
        self.episodes: List[dict] = []
        self.samples_total = 0
        self._last_eval = -1

    def budget(self, slo_class: str) -> float:
        return max(1e-9, 1.0 - self.slos[slo_class]["goodput"])

    def observe(self, rnd: int, slo_class: str, bad: bool) -> None:
        rec = self._by_round.setdefault(rnd, {}).setdefault(
            slo_class, [0, 0])
        rec[1] += 1
        if bad:
            rec[0] += 1
        self.samples_total += 1

    def _window(self, slo_class: str, rnd: int, width: int) -> Tuple[int, int]:
        bad = total = 0
        for r in range(max(0, rnd - width + 1), rnd + 1):
            rec = self._by_round.get(r, {}).get(slo_class)
            if rec is not None:
                bad += rec[0]
                total += rec[1]
        return bad, total

    def burn(self, bad: int, total: int, slo_class: str) -> float:
        if total == 0:
            return 0.0
        return (bad / total) / self.budget(slo_class)

    def evaluate(self, rnd: int) -> None:
        """Close one round: update burn windows and episode state."""
        self._last_eval = rnd
        for slo_class in sorted(self.slos):
            fb, ft = self._window(slo_class, rnd, self.fast_window)
            sb, st = self._window(slo_class, rnd, self.slow_window)
            fast = self.burn(fb, ft, slo_class)
            slow = self.burn(sb, st, slo_class)
            burning = (fast >= self.threshold and slow >= self.threshold
                       and sb >= self.min_events)
            active = self._active.get(slo_class)
            if burning and active is None:
                self._active[slo_class] = {
                    "slo_class": slo_class, "start": rnd, "end": rnd,
                    "peak_fast": round(fast, 4),
                    "peak_slow": round(slow, 4), "bad_events": sb}
            elif burning:
                active["end"] = rnd
                active["peak_fast"] = max(active["peak_fast"],
                                          round(fast, 4))
                active["peak_slow"] = max(active["peak_slow"],
                                          round(slow, 4))
                active["bad_events"] = max(active["bad_events"], sb)
            elif active is not None:
                self.episodes.append(active)
                del self._active[slo_class]

    def finalize(self) -> List[dict]:
        """Flush still-open episodes; returns all episodes, start order."""
        for slo_class in sorted(self._active):
            self.episodes.append(self._active[slo_class])
        self._active.clear()
        self.episodes.sort(key=lambda e: (e["start"], e["slo_class"]))
        return self.episodes

    def params(self) -> dict:
        return {"fast_window": self.fast_window,
                "slow_window": self.slow_window,
                "threshold": self.threshold,
                "min_events": self.min_events}


def correlate_alerts(episodes: List[dict], chaos_fired: List[dict],
                     match_rounds: int = MATCH_ROUNDS) -> dict:
    """Attribute alert episodes to fired chaos events.

    An episode matches a chaos event when it starts inside
    ``[event.round, event.round + match_rounds]``.  Precision is the
    fraction of episodes attributable to at least one event (a false
    alert is an episode nothing explains); recall is the fraction of
    fired events covered by at least one episode (a missed page).  Both
    must be 1.0 for the gate.
    """
    matched = []
    covered = {i: False for i in range(len(chaos_fired))}
    for ep in episodes:
        hits = [i for i, ev in enumerate(chaos_fired)
                if ev["round"] <= ep["start"] <= ev["round"] + match_rounds]
        for i in hits:
            covered[i] = True
        matched.append(bool(hits))
    precision = (sum(matched) / len(matched)) if matched else 1.0
    recall = ((sum(covered.values()) / len(covered))
              if covered else 1.0)
    return {
        "episodes": [dict(ep, matched=m)
                     for ep, m in zip(episodes, matched)],
        "chaos_fired": [dict(ev, covered=covered[i])
                        for i, ev in enumerate(chaos_fired)],
        "match_rounds": match_rounds,
        "precision": round(precision, 4),
        "recall": round(recall, 4),
    }


class FleetObservatory:
    """Coordinator-side observer wired into :class:`AcceleratorFleet`.

    Construct one, pass it as ``observatory=`` to the fleet, run — the
    fleet calls the ``on_*`` hooks at every lifecycle point and
    :meth:`harvest` with each worker reply's piggybacked span/metric
    deltas.  After the run, :meth:`to_chrome_trace` renders the
    stitched cross-process trace, :attr:`merged` holds the
    shard-labelled telemetry, and :attr:`correlation` the alert
    verdict.
    """

    def __init__(self, slos: Dict[str, Dict[str, float]],
                 fast_window: int = FAST_WINDOW,
                 slow_window: int = SLOW_WINDOW,
                 threshold: float = BURN_THRESHOLD,
                 min_events: int = MIN_EVENTS,
                 match_rounds: int = MATCH_ROUNDS):
        self.engine = BurnRateEngine(slos, fast_window, slow_window,
                                     threshold, min_events)
        self.match_rounds = int(match_rounds)
        self.tracer = Tracer(pid=FLEET_PID)
        self.tracer.events.append({
            "name": "process_name", "ph": "M", "pid": FLEET_PID, "tid": 0,
            "args": {"name": "fleet coordinator"}})
        self.tracer.name_track(0, "fleet lifecycle")
        #: request id -> span-chain bookkeeping
        self.chains: Dict[int, dict] = {}
        #: Chrome events harvested from workers (fleet cycle domain)
        self.shard_events: List[dict] = []
        #: merged worker telemetry: (name, labels) -> value
        self.merged: Dict[Tuple[str, tuple], float] = {}
        self.merged_kind: Dict[str, str] = {}
        self.chaos_fired: List[dict] = []
        self.trace_mismatches = 0
        self.harvests = 0
        self._tids: Dict[str, int] = {}
        self._meta_seen: set = set()
        self._named_shards: set = set()
        self.cpr = 64
        self._slos = slos
        self.completeness: Optional[dict] = None
        self.correlation: Optional[dict] = None

    # -- wiring ---------------------------------------------------------------
    def bind(self, fleet) -> None:
        """Called by the fleet at the top of :meth:`run`."""
        self.cpr = fleet.cfg.cycles_per_round
        for i, name in enumerate(sorted(fleet.tenants)):
            self._tids[name] = i + 1
            self.tracer.name_track(i + 1, f"tenant:{name}")

    def _tid(self, tenant: str) -> int:
        return self._tids.get(tenant, 0)

    def _slo_bad(self, req) -> bool:
        if req.status != "delivered":
            return True
        lat = req.latency
        return lat is not None and lat > self._slos[req.slo_class]["p99"]

    # -- lifecycle hooks (called by AcceleratorFleet) -------------------------
    def on_admit(self, req, cycle: int) -> None:
        self.chains[req.id] = {
            "trace": req.trace_id, "tenant": req.tenant,
            "slo_class": req.slo_class, "admitted": True,
            "dispatches": 0, "worker": False, "reply": False,
            "terminal": False, "status": None}
        self.tracer.instant("admitted", cat="fleet", tid=self._tid(req.tenant),
                            ts=cycle, trace=req.trace_id, rid=req.id)

    def on_shed(self, req, cycle: int, for_tenant: str) -> None:
        ch = self.chains.get(req.id)
        if ch is not None:
            ch["terminal"] = True
            ch["status"] = "rejected"
        self.tracer.instant("shed", cat="fleet", tid=self._tid(req.tenant),
                            ts=cycle, trace=req.trace_id, rid=req.id,
                            for_tenant=for_tenant)
        rnd = cycle // self.cpr
        self.engine.observe(rnd, req.slo_class, True)

    def on_dispatch(self, req, shard: int, fleet_cycle: int) -> None:
        ch = self.chains.get(req.id)
        if ch is not None:
            ch["dispatches"] += 1
        tid = self._tid(req.tenant)
        self.tracer.instant("dispatched", cat="fleet", tid=tid,
                            ts=fleet_cycle, trace=req.trace_id, rid=req.id,
                            shard=shard, attempt=req.attempts)
        self.tracer.events.append({
            "name": "req", "cat": "flow", "ph": "s", "id": req.id,
            "ts": float(fleet_cycle), "pid": FLEET_PID, "tid": tid})

    def on_defer(self, req, shard: int, rnd: int) -> None:
        self.tracer.instant("deferred", cat="fleet",
                            tid=self._tid(req.tenant),
                            ts=(rnd + 1) * self.cpr, trace=req.trace_id,
                            rid=req.id, shard=shard)

    def on_requeue(self, req, rnd: int, cause: str) -> None:
        self.tracer.instant("reclaimed", cat="chaos",
                            tid=self._tid(req.tenant),
                            ts=rnd * self.cpr, trace=req.trace_id,
                            rid=req.id, cause=cause, retry=req.retries)
        # the disruption itself burns budget: the tenant's request was
        # on a shard that died or wedged, whatever happens to it later
        self.engine.observe(rnd, req.slo_class, True)

    def on_backoff(self, req, rnd: int, delay: int) -> None:
        self.tracer.instant("retry_backoff", cat="fleet",
                            tid=self._tid(req.tenant),
                            ts=rnd * self.cpr, trace=req.trace_id,
                            rid=req.id, delay_rounds=delay)

    def on_timeout(self, req, rnd: int) -> None:
        self._terminal(req, rnd, from_worker=False)

    def on_terminal(self, req, rnd: int, from_worker: bool) -> None:
        self._terminal(req, rnd, from_worker=from_worker)

    def _terminal(self, req, rnd: int, from_worker: bool) -> None:
        ch = self.chains.get(req.id)
        tid = self._tid(req.tenant)
        end = (req.delivered_cycle if req.delivered_cycle is not None
               else (rnd + 1) * self.cpr)
        if ch is not None:
            ch["terminal"] = True
            ch["status"] = req.status
            if from_worker:
                ch["reply"] = True
        self.tracer.complete(
            "fleet_request", req.submitted_cycle,
            max(0, end - req.submitted_cycle), cat="fleet", tid=tid,
            trace=req.trace_id, rid=req.id, status=req.status,
            attempts=req.attempts, retries=req.retries)
        self.tracer.instant(f"terminal_{req.status}", cat="fleet", tid=tid,
                            ts=end, trace=req.trace_id, rid=req.id)
        if req.status == "delivered":
            self.tracer.events.append({
                "name": "req", "cat": "flow", "ph": "f", "bp": "e",
                "id": req.id, "ts": float(end), "pid": FLEET_PID,
                "tid": tid})
        self.engine.observe(rnd, req.slo_class, self._slo_bad(req))

    def on_chaos(self, ev, rnd: int) -> None:
        self.chaos_fired.append({"round": rnd, "kind": ev.kind,
                                 "shard": ev.shard})
        self.tracer.instant(f"chaos_{ev.kind}", cat="chaos", tid=0,
                            ts=rnd * self.cpr, shard=ev.shard)

    def on_spawn(self, shard: int, epoch: int, rnd: int) -> None:
        pid = SHARD_PID_BASE + shard
        if shard not in self._named_shards:
            self._named_shards.add(shard)
            self.shard_events.append({
                "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
                "args": {"name": f"shard {shard}"}})
        name = "shard_respawn" if epoch > 1 else "shard_spawn"
        self.tracer.instant(name, cat="chaos" if epoch > 1 else "fleet",
                            tid=0, ts=rnd * self.cpr, shard=shard,
                            epoch=epoch)

    def on_down(self, shard: int, rnd: int, cause: str, reclaimed: int,
                rebalanced: int, respawn_round: int) -> None:
        self.tracer.instant("shard_down", cat="chaos", tid=0,
                            ts=rnd * self.cpr, shard=shard, cause=cause,
                            reclaimed=reclaimed, rebalanced=rebalanced,
                            respawn_round=respawn_round)

    def on_rebalance(self, shard: int, rnd: int, moved: int) -> None:
        if moved:
            self.tracer.instant("rebalance", cat="chaos", tid=0,
                                ts=rnd * self.cpr, onto=shard, moved=moved)

    def on_round_end(self, rnd: int) -> None:
        self.engine.evaluate(rnd)

    # -- worker payloads -------------------------------------------------------
    def harvest(self, shard: int, epoch: int, cycle_offset: int,
                payload: dict) -> None:
        """Fold one reply's span/metric deltas into the fleet view.

        Spans arrive in the worker's own cycle domain and are shifted by
        the slot's ``cycle_offset`` into fleet logical cycles; events are
        *copied* before mutation because the inline host shares objects
        with the worker tracer.  Worker-side ``shard_request`` spans and
        ``shard_terminal`` instants carry the request id and trace id,
        which is what closes the cross-process half of each span chain.
        """
        self.harvests += 1
        pid = SHARD_PID_BASE + shard
        for raw in payload.get("spans", ()):
            ev = dict(raw)
            ev["pid"] = pid
            args = ev.get("args")
            if args:
                args = dict(args)
                ev["args"] = args
            if ev.get("ph") == "M":
                key = (pid, ev.get("tid"), ev.get("name"),
                       tuple(sorted((args or {}).items())))
                if key in self._meta_seen:
                    continue
                self._meta_seen.add(key)
                self.shard_events.append(ev)
                continue
            if "ts" in ev:
                ev["ts"] = float(ev["ts"]) + cycle_offset
            self.shard_events.append(ev)
            name = ev.get("name")
            if name in ("shard_request", "shard_terminal") and args:
                rid = args.get("rid")
                ch = self.chains.get(rid)
                if ch is not None:
                    ch["worker"] = True
                    if args.get("trace") != ch["trace"]:
                        self.trace_mismatches += 1
                if name == "shard_request":
                    self.shard_events.append({
                        "name": "req", "cat": "flow", "ph": "t",
                        "id": rid, "ts": ev["ts"], "pid": pid,
                        "tid": ev.get("tid", 0)})
        for op, name, key, value in payload.get("metrics", ()):
            labels = tuple(sorted(tuple(key)
                                  + (("shard", str(shard)),)))
            if op == "set":
                self.merged[(name, labels)] = float(value)
            else:
                self.merged[(name, labels)] = (
                    self.merged.get((name, labels), 0.0) + float(value))
            self.merged_kind[name] = "gauge" if op == "set" else "sum"

    # -- wrap-up ---------------------------------------------------------------
    def finalize(self, fleet) -> None:
        """Called by the fleet after drain: close the books."""
        self.engine.evaluate(fleet.rounds_run)
        episodes = self.engine.finalize()
        self.correlation = correlate_alerts(episodes, self.chaos_fired,
                                            self.match_rounds)
        incomplete: List[dict] = []
        total = 0
        for req in fleet.requests:
            total += 1
            ch = self.chains.get(req.id)
            missing: List[str] = []
            if ch is None:
                missing.append("chain")
            else:
                if not ch["admitted"]:
                    missing.append("admitted")
                if not ch["terminal"]:
                    missing.append("terminal")
                if ch["status"] != req.status:
                    missing.append("status_match")
                if req.status == "delivered":
                    if ch["dispatches"] < 1:
                        missing.append("dispatch")
                    if not ch["worker"]:
                        missing.append("worker_span")
                    if not ch["reply"]:
                        missing.append("reply")
            if missing:
                incomplete.append({"rid": req.id, "status": req.status,
                                   "missing": missing})
        self.completeness = {
            "total": total,
            "complete": total - len(incomplete),
            "fraction": round((total - len(incomplete)) / total, 6)
            if total else 1.0,
            "trace_mismatches": self.trace_mismatches,
            "incomplete": incomplete[:20],
        }

    def all_events(self) -> List[dict]:
        return list(self.tracer.events) + list(self.shard_events)

    def to_chrome_trace(self) -> dict:
        return {
            "traceEvents": self.all_events(),
            "displayTimeUnit": "ms",
            "otherData": {"clock": "fleet logical cycles as microseconds"},
        }

    def telemetry_rows(self) -> List[list]:
        return [[name, [list(p) for p in labels], value]
                for (name, labels), value in sorted(self.merged.items())]

    def telemetry_digest(self) -> str:
        return _digest(self.telemetry_rows())

    def trace_digest(self) -> str:
        """Digest over the *sorted* event set.

        Inline and process hosts detect a killed shard at different
        points in the round (send vs. collect), so raw event order can
        differ even though the event *set* is identical; sorting makes
        the digest a function of content, not detection interleaving.
        """
        canon = sorted(json.dumps(ev, sort_keys=True)
                       for ev in self.all_events())
        return _digest(canon)


# ---------------------------------------------------------------------------
# report + gate
# ---------------------------------------------------------------------------

class FleetObsReport:
    """The fleet observatory gate's verdict."""

    def __init__(self, fobs: FleetObservatory, fleet_report, chaos,
                 identity: Optional[dict] = None):
        self.fleet = fleet_report
        self.seed = fleet_report.seed
        self.config = fleet_report.config
        self.completeness = fobs.completeness
        self.correlation = fobs.correlation
        self.engine_params = fobs.engine.params()
        self.samples = fobs.engine.samples_total
        self.chaos_injected = len(chaos.events)
        self.chaos_fired = len(fobs.chaos_fired)
        self.identity = identity
        self.harvests = fobs.harvests
        events = fobs.all_events()
        by_name: Dict[str, int] = {}
        for ev in events:
            if ev.get("ph") in ("X", "i"):
                by_name[ev["name"]] = by_name.get(ev["name"], 0) + 1
        self.trace_stats = {
            "events": len(events),
            "spans": sum(1 for ev in events if ev.get("ph") == "X"),
            "instants": sum(1 for ev in events if ev.get("ph") == "i"),
            "flows": sum(1 for ev in events
                         if ev.get("ph") in ("s", "t", "f")),
            "by_name": dict(sorted(by_name.items())),
            "digest": fobs.trace_digest(),
        }
        self.telemetry = {
            "series": len(fobs.merged),
            "families": len({name for name, _ in fobs.merged}),
            "digest": fobs.telemetry_digest(),
        }

    def ok(self) -> bool:
        comp = self.completeness
        corr = self.correlation
        identity_ok = (self.identity is None
                       or (self.identity["telemetry_ok"]
                           and self.identity["trace_ok"]))
        return (self.fleet.ok()
                and comp is not None and comp["fraction"] == 1.0
                and comp["trace_mismatches"] == 0
                and corr is not None
                and corr["precision"] == 1.0 and corr["recall"] == 1.0
                and self.chaos_fired == self.chaos_injected
                and identity_ok)

    def to_dict(self) -> dict:
        return {
            "ok": self.ok(),
            "seed": self.seed,
            "config": self.config,
            "fleet_ok": self.fleet.ok(),
            "completeness": self.completeness,
            "alerts": dict(self.correlation or {},
                           engine=self.engine_params,
                           samples=self.samples),
            "chaos": {"injected": self.chaos_injected,
                      "fired": self.chaos_fired},
            "trace": self.trace_stats,
            "telemetry": self.telemetry,
            "harvests": self.harvests,
            "identity": self.identity,
        }

    def render(self) -> str:
        comp = self.completeness or {}
        corr = self.correlation or {}
        lines = [
            "Fleet observatory gate " + ("PASS" if self.ok() else "FAIL"),
            f"  shards={self.config['shards']} "
            f"workers={self.config['workers']} seed={self.seed} "
            f"fleet_ok={self.fleet.ok()}",
            f"  span chains: {comp.get('complete')}/{comp.get('total')} "
            f"complete ({comp.get('fraction'):.4f}), "
            f"trace mismatches={comp.get('trace_mismatches')}",
            f"  trace: {self.trace_stats['events']} events "
            f"({self.trace_stats['spans']} spans, "
            f"{self.trace_stats['instants']} instants, "
            f"{self.trace_stats['flows']} flows) "
            f"digest {self.trace_stats['digest']}",
            f"  telemetry: {self.telemetry['series']} series in "
            f"{self.telemetry['families']} shard-labelled families, "
            f"digest {self.telemetry['digest']} "
            f"({self.harvests} harvests)",
            f"  alerts: {len(corr.get('episodes', []))} episodes vs "
            f"{self.chaos_fired}/{self.chaos_injected} chaos events "
            f"fired -> precision={corr.get('precision')} "
            f"recall={corr.get('recall')}",
        ]
        for ep in corr.get("episodes", []):
            lines.append(
                f"    [{ep['slo_class']}] rounds {ep['start']}-{ep['end']} "
                f"peak burn fast={ep['peak_fast']:g} "
                f"slow={ep['peak_slow']:g} "
                + ("matched" if ep["matched"] else "UNMATCHED"))
        if self.identity is not None:
            lines.append(
                f"  identity ({'/'.join(self.identity['workers_compared'])})"
                f": telemetry "
                f"{'OK' if self.identity['telemetry_ok'] else 'DIVERGED'}, "
                f"trace "
                f"{'OK' if self.identity['trace_ok'] else 'DIVERGED'}")
        return "\n".join(lines)

    def render_md(self) -> str:
        comp = self.completeness or {}
        corr = self.correlation or {}
        lines = [
            "# Fleet observatory gate",
            "",
            f"Verdict: **{'PASS' if self.ok() else 'FAIL'}** "
            f"(seed {self.seed}, {self.config['shards']} shards, "
            f"{self.config['workers']} workers)",
            "",
            "## Span-chain completeness",
            "",
            f"- terminal requests: {comp.get('total')}",
            f"- complete chains: {comp.get('complete')} "
            f"({comp.get('fraction'):.4f})",
            f"- trace-id mismatches: {comp.get('trace_mismatches')}",
            "",
            "## Stitched trace",
            "",
            f"- events: {self.trace_stats['events']} "
            f"({self.trace_stats['spans']} spans, "
            f"{self.trace_stats['instants']} instants, "
            f"{self.trace_stats['flows']} flow events)",
            f"- digest: `{self.trace_stats['digest']}`",
            "",
            "## Harvested telemetry",
            "",
            f"- shard-labelled series: {self.telemetry['series']} in "
            f"{self.telemetry['families']} families",
            f"- digest: `{self.telemetry['digest']}` "
            f"over {self.harvests} delta harvests",
            "",
            "## Burn-rate alerts vs seeded chaos",
            "",
            f"- chaos events fired: {self.chaos_fired} / "
            f"{self.chaos_injected} injected",
            f"- precision: {corr.get('precision')}, "
            f"recall: {corr.get('recall')}",
            "",
            "| class | rounds | peak fast | peak slow | matched |",
            "|---|---|---|---|---|",
        ]
        for ep in corr.get("episodes", []):
            lines.append(
                f"| {ep['slo_class']} | {ep['start']}–{ep['end']} "
                f"| {ep['peak_fast']:g} | {ep['peak_slow']:g} "
                f"| {'yes' if ep['matched'] else 'NO'} |")
        if self.identity is not None:
            lines += [
                "",
                "## Cross-host identity",
                "",
                f"- compared: {' vs '.join(self.identity['workers_compared'])}",
                f"- merged telemetry: "
                f"{'identical' if self.identity['telemetry_ok'] else 'DIVERGED'}",
                f"- stitched trace: "
                f"{'identical' if self.identity['trace_ok'] else 'DIVERGED'}",
            ]
        lines.append("")
        return "\n".join(lines)


def run_fleet_obs_gate(seed: int = 2026, shards: int = 4,
                       horizon: int = 1536, tenants: int = 6,
                       workers: str = "process",
                       backend: str = "compiled",
                       kills: int = 2, wedges: int = 1,
                       identity: bool = True):
    """One observed fleet-under-chaos run plus the cross-host twin.

    Returns ``(report, observatory)``.  The primary run uses
    ``workers``; when ``identity`` is set a secondary run repeats the
    same seeded scenario on inline workers and the gate requires the
    merged telemetry and the stitched trace to be bit-identical — the
    observatory may not depend on which side of a pipe a shard lives.
    """
    from ..soc.chaos import ChaosSchedule
    from ..soc.fleet import AcceleratorFleet, FleetConfig
    from ..soc.traffic import default_tenants, generate_trace

    specs = default_tenants(tenants, seed=seed)

    def one(worker_kind: str):
        cfg = FleetConfig(shards=shards, backend=backend,
                          workers=worker_kind)
        trace = generate_trace(specs, horizon, seed=seed)
        rounds = -(-horizon // cfg.cycles_per_round)
        chaos = ChaosSchedule.seeded(seed, rounds, cfg.shards,
                                     kills=kills, wedges=wedges)
        fobs = FleetObservatory(cfg.slos)
        fleet = AcceleratorFleet(cfg, specs, seed=seed, observatory=fobs)
        report = fleet.run(trace, chaos)
        return fobs, report, chaos

    fobs, report, chaos = one(workers)
    identity_info = None
    if identity:
        twin_kind = "inline"
        twin, _twin_report, _ = one(twin_kind)
        identity_info = {
            "workers_compared": [workers, twin_kind],
            "telemetry_ok":
                fobs.telemetry_digest() == twin.telemetry_digest(),
            "trace_ok": fobs.trace_digest() == twin.trace_digest(),
        }
    return FleetObsReport(fobs, report, chaos, identity_info), fobs


def cmd_obs_fleet(args) -> int:
    """``python -m repro obs fleet`` — the fleet observatory CI gate."""
    from ..gate import gate_epilogue

    if args.smoke:
        shards, horizon, tenants, workers = 2, 512, 4, "inline"
    else:
        shards, horizon, tenants = args.shards, args.horizon, args.tenants
        workers = args.workers
    report, fobs = run_fleet_obs_gate(
        seed=args.seed, shards=shards, horizon=horizon, tenants=tenants,
        workers=workers, backend=args.backend,
        kills=args.kills, wedges=args.wedges,
        identity=not args.no_identity)
    return gate_epilogue(
        args, ok=report.ok(), payload=report.to_dict(),
        render=report.render,
        artifacts={"fleet_obs_report.json": report.to_dict(),
                   "fleet_obs_report.md": report.render_md,
                   "fleet_trace.json": fobs.to_chrome_trace})
