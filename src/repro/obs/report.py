"""The ``python -m repro obs`` report: run a telemetry-enabled workload
and summarise what the telemetry layer saw.

Drives the Fig. 2 multi-tenant workload through :class:`SoCSystem` with
telemetry enabled, then renders a human-readable digest of the three
streams (metrics, spans, security events) and optionally writes every
machine-readable artifact (Prometheus text, metrics JSONL, Chrome
trace-event JSON, security-event JSONL) to a directory.
"""

from __future__ import annotations

import json
from typing import Callable, Optional, Tuple

from . import Telemetry, capture
from .simhooks import publish_sim_metrics, sim_stats


def run_instrumented_workload(
    blocks_per_tenant: int = 8,
    backend: str = "compiled",
    protected: bool = True,
    reader_stutter: int = 3,
    seed: int = 2026,
    telemetry: Optional[Telemetry] = None,
    on_soc: Optional[Callable[[object], None]] = None,
) -> Tuple[Telemetry, object]:
    """Run the multi-tenant workload with telemetry on; returns (t, soc).

    ``reader_stutter`` models a polling host that misses read slots,
    which exercises the holding buffer and the label-aware stall path so
    the security stream shows enforcement actually firing.  ``on_soc``
    is called with the freshly built :class:`SoCSystem` before any
    traffic runs — the profiler uses it to attach to the simulator.
    """
    from ..soc import SoCSystem, mixed_workload

    with capture(telemetry) as t:
        soc = SoCSystem(protected=protected, backend=backend,
                        reader_stutter=reader_stutter)
        if on_soc is not None:
            on_soc(soc)
        soc.provision_keys()
        tenants = [("alice", 1), ("bob", 2), ("charlie", 3)]
        workload = mixed_workload(tenants, blocks_per_tenant, seed=seed)
        soc.submit_all(workload)
        # tail burst from one tenant: with only alice's blocks in flight
        # the Fig. 8 meet check can *grant* stalls, so the stream shows
        # both outcomes (granted for a lone user, denied under sharing)
        soc.drain()
        from ..soc.requests import encrypt_stream, random_blocks

        soc.submit_all(encrypt_stream(
            "alice", 1, random_blocks(blocks_per_tenant, seed=seed + 1)))
        soc.drain()
        publish_sim_metrics(soc.driver.sim, t.metrics)
        soc.publish_latency_quantiles()
    return t, soc


def render_report(t: Telemetry, soc=None) -> str:
    """Human-readable digest of one telemetry capture."""
    lines = []
    bar = "=" * 70
    lines.append(bar)
    lines.append("telemetry report")
    lines.append(bar)

    if soc is not None:
        info = sim_stats(soc.driver.sim)
        lines.append(f"simulator: backend={info['backend']} "
                     f"lanes={info['lanes']} cycles={info['cycles']} "
                     f"({info['cycles_per_second']:,.0f} cycles/s while "
                     "telemetry was on)")

    lines.append("")
    lines.append("metrics:")
    snapshot = t.metrics.snapshot()
    shown = 0
    for name in sorted(snapshot):
        if name.endswith("_bucket"):
            continue  # histogram internals; the summary rows suffice
        for labels, value in sorted(snapshot[name].items()):
            lines.append(f"  {name}{labels} = {value:g}")
            shown += 1
    if not shown:
        lines.append("  (none recorded)")

    lines.append("")
    lines.append(f"trace spans: {t.tracer.span_count()} "
                 f"({len(t.tracer.events)} events total)")

    lines.append("")
    lines.append("security events:")
    counts = t.security.counts()
    if counts:
        for kind, n in counts.items():
            lines.append(f"  {kind:22s} {n}")
    else:
        lines.append("  (none)")
    return "\n".join(lines)


def write_flow_report(report, out_dir: str,
                      telemetry: Optional[Telemetry] = None):
    """Write a :class:`~repro.obs.flows.FlowReport` as artifacts.

    Produces ``flow_report.json`` (the CI gate input) and
    ``flow_report.md``; when a telemetry capture is given, the enriched
    security stream (witness-carrying ``label_violation`` events) is
    written alongside as ``security.jsonl``.  Returns the paths.
    """
    import os

    os.makedirs(out_dir, exist_ok=True)
    paths = {
        "flow_report": os.path.join(out_dir, "flow_report.json"),
        "flow_markdown": os.path.join(out_dir, "flow_report.md"),
    }
    with open(paths["flow_report"], "w") as f:
        json.dump(report.to_dict(), f, sort_keys=True, indent=2)
    with open(paths["flow_markdown"], "w") as f:
        f.write(report.render_markdown())
    if telemetry is not None:
        paths["security_jsonl"] = os.path.join(out_dir, "security.jsonl")
        telemetry.security.write_jsonl(paths["security_jsonl"])
    return paths


def cmd_obs(args) -> int:
    """Implementation of ``python -m repro obs``."""
    blocks = 2 if args.demo else args.blocks
    t, soc = run_instrumented_workload(
        blocks_per_tenant=blocks,
        backend=args.backend,
        reader_stutter=args.stutter,
    )
    if args.json:
        print(json.dumps({
            "metrics": t.metrics.snapshot(),
            "security_events": t.security.counts(),
            "trace_spans": t.tracer.span_count(),
            "sim": sim_stats(soc.driver.sim),
        }, sort_keys=True, default=str))
    else:
        print(render_report(t, soc))
    if args.out:
        paths = t.write_all(args.out)
        for kind, path in sorted(paths.items()):
            print(f"wrote {kind}: {path}")
    return 0
