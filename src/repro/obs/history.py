"""Bench-history regression tracking over the ``BENCH_*.json`` gauges.

The benchmark suite exports its headline numbers as JSONL gauge records
(``{"kind": "gauge", "metric": ..., "labels": {...}, "value": ...}``).
Those files are overwritten on every run, so trends are invisible.  This
module keeps an **append-only** ledger — ``BENCH_history.jsonl``, one
JSON object per run — and a comparator that diffs the current gauges
against the previous entry, flagging regressions.

Whether a change is a regression depends on the metric's *direction*:
``cycles_per_second`` going down is bad, ``latency_cycles`` going down
is good.  Direction is inferred from the metric name (see
:func:`metric_direction`) and a relative ``tolerance`` absorbs run-to-run
noise in wall-clock-derived numbers.

``python -m repro obs history`` runs the full cycle: load gauges,
compare against the last ledger entry, print the verdict, append the
new entry.  ``--no-append`` makes it a dry-run comparator (what CI uses
for pull requests); ``--fail-on-regression`` turns warnings into a
non-zero exit.
"""

from __future__ import annotations

import glob
import json
import os
import time
from typing import Dict, Iterable, List, Optional, Tuple

#: Relative change below this is considered noise, not a regression.
DEFAULT_TOLERANCE = 0.10

#: Gauge families every full bench run is expected to export, as
#: ``family -> metric-name prefixes``.  The per-entry ``missing`` diff
#: only sees gauges that existed in the *previous* ledger entry; this
#: registry catches the other failure mode — a whole benchmark silently
#: not running (file deleted, import error, CI step dropped) so its
#: family never reaches the ledger at all.
EXPECTED_GAUGE_FAMILIES: Dict[str, Tuple[str, ...]] = {
    "throughput": ("repro_bench_blocks_per_cycle", "repro_bench_gbps",
                   "repro_bench_latency_cycles"),
    "sim": ("repro_bench_sim_",),
    "faults": ("repro_bench_faults_",),
    "leakage": ("repro_bench_leakage_",),
    "flows": ("repro_bench_flows_",),
    "power": ("repro_bench_power_",),
    "coverage": ("repro_bench_coverage_",),
    "synth_tags": ("repro_bench_synth_tags_",),
    "fleet": ("repro_bench_fleet_",),
    "fleet_obs": ("repro_bench_fleet_obs_",),
}


def missing_families(gauges: Dict["GaugeKey", float]) -> List[str]:
    """Expected families with zero gauges in the loaded set.

    Prefixes can nest (``repro_bench_fleet_`` vs
    ``repro_bench_fleet_obs_``); a gauge counts only toward the family
    with the *longest* matching prefix, so the fleet-observatory gauges
    cannot mask a silently-missing fleet benchmark.
    """
    all_prefixes = [p for prefixes in EXPECTED_GAUGE_FAMILIES.values()
                    for p in prefixes]
    owned = set()
    for metric, _labels in gauges:
        hits = [p for p in all_prefixes if metric.startswith(p)]
        if hits:
            owned.add(max(hits, key=len))
    missing = []
    for family, prefixes in sorted(EXPECTED_GAUGE_FAMILIES.items()):
        if not any(p in owned for p in prefixes):
            missing.append(family)
    return missing

#: (metric, sorted label items) → hashable gauge identity.
GaugeKey = Tuple[str, Tuple[Tuple[str, str], ...]]

_HIGHER_IS_BETTER = ("per_second", "per_cycle", "speedup", "gbps",
                     "throughput", "accuracy")
_LOWER_IS_BETTER = ("latency", "cycles", "seconds", "overhead", "bytes",
                    "stalls", "drops")


def metric_direction(metric: str) -> str:
    """``"higher"`` / ``"lower"`` is better, or ``"neutral"``.

    Compound names resolve in favour of the rate: ``..._cycles_per_second``
    is a throughput, not a latency.
    """
    name = metric.lower()
    for marker in _HIGHER_IS_BETTER:
        if marker in name:
            return "higher"
    for marker in _LOWER_IS_BETTER:
        if marker in name:
            return "lower"
    return "neutral"


def gauge_key(metric: str, labels: Dict[str, str]) -> GaugeKey:
    return (metric, tuple(sorted((str(k), str(v))
                                 for k, v in labels.items())))


def load_gauges(paths: Iterable[str]) -> Dict[GaugeKey, float]:
    """Read gauge records from JSONL bench artifacts into one flat map."""
    gauges: Dict[GaugeKey, float] = {}
    for path in paths:
        with open(path) as f:
            for line in f:
                line = line.strip()
                if not line:
                    continue
                rec = json.loads(line)
                if rec.get("kind") != "gauge":
                    continue
                gauges[gauge_key(rec["metric"], rec.get("labels", {}))] = \
                    float(rec["value"])
    return gauges


def find_bench_files(root: str = ".") -> List[str]:
    """The current bench artifacts (``BENCH_*.json``, ledger excluded)."""
    return sorted(p for p in glob.glob(os.path.join(root, "BENCH_*.json"))
                  if not p.endswith("BENCH_history.jsonl"))


class GaugeDelta:
    """One gauge compared across two runs."""

    __slots__ = ("metric", "labels", "before", "after", "direction")

    def __init__(self, metric: str, labels: Tuple[Tuple[str, str], ...],
                 before: Optional[float], after: Optional[float]):
        self.metric = metric
        self.labels = labels
        self.before = before
        self.after = after
        self.direction = metric_direction(metric)

    @property
    def change(self) -> Optional[float]:
        """Relative change, or None when not comparable (new/gone/zero)."""
        if self.before is None or self.after is None or self.before == 0:
            return None
        return (self.after - self.before) / abs(self.before)

    def is_regression(self, tolerance: float = DEFAULT_TOLERANCE) -> bool:
        change = self.change
        if change is None:
            return False
        if self.direction == "higher":
            return change < -tolerance
        if self.direction == "lower":
            return change > tolerance
        return False

    def is_improvement(self, tolerance: float = DEFAULT_TOLERANCE) -> bool:
        change = self.change
        if change is None:
            return False
        if self.direction == "higher":
            return change > tolerance
        if self.direction == "lower":
            return change < -tolerance
        return False

    def label_str(self) -> str:
        if not self.labels:
            return ""
        return "{" + ",".join(f"{k}={v}" for k, v in self.labels) + "}"

    def to_dict(self) -> dict:
        return {
            "metric": self.metric,
            "labels": dict(self.labels),
            "before": self.before,
            "after": self.after,
            "change": self.change,
            "direction": self.direction,
        }


def diff_gauges(before: Dict[GaugeKey, float],
                after: Dict[GaugeKey, float]) -> List[GaugeDelta]:
    """Every gauge present in either run, as a delta, sorted by name."""
    deltas = []
    for key in sorted(set(before) | set(after)):
        metric, labels = key
        deltas.append(GaugeDelta(metric, labels,
                                 before.get(key), after.get(key)))
    return deltas


class HistoryComparison:
    """Result of comparing current gauges against the previous run."""

    def __init__(self, deltas: List[GaugeDelta],
                 tolerance: float = DEFAULT_TOLERANCE,
                 previous_entry: Optional[dict] = None,
                 missing_families: Optional[List[str]] = None):
        self.deltas = deltas
        self.tolerance = tolerance
        self.previous_entry = previous_entry
        #: expected gauge families absent from this run's artifacts
        self.missing_families = missing_families or []

    @property
    def regressions(self) -> List[GaugeDelta]:
        return [d for d in self.deltas if d.is_regression(self.tolerance)]

    @property
    def improvements(self) -> List[GaugeDelta]:
        return [d for d in self.deltas if d.is_improvement(self.tolerance)]

    @property
    def missing(self) -> List[GaugeDelta]:
        """Gauges present in the previous ledger entry but absent now.

        A silently vanished gauge usually means a benchmark was dropped
        (or renamed) without anyone noticing — the comparator calls each
        one out explicitly rather than burying it in a count.
        """
        return [d for d in self.deltas if d.after is None]

    def render(self) -> str:
        lines = []
        if self.previous_entry is None:
            lines.append("bench history: no previous entry — baseline run")
        else:
            when = self.previous_entry.get("timestamp")
            note = self.previous_entry.get("note") or ""
            lines.append(f"bench history: comparing against run at "
                         f"{when}{' (' + note + ')' if note else ''}")
        regs = self.regressions
        imps = self.improvements
        for d in regs:
            lines.append(
                f"  REGRESSION {d.metric}{d.label_str()}: "
                f"{d.before:g} -> {d.after:g} "
                f"({d.change:+.1%}, {d.direction} is better)")
        for d in imps:
            lines.append(
                f"  improved   {d.metric}{d.label_str()}: "
                f"{d.before:g} -> {d.after:g} ({d.change:+.1%})")
        miss = self.missing
        for d in miss:
            lines.append(
                f"  MISSING    {d.metric}{d.label_str()}: was {d.before:g} "
                f"in the previous run, absent from this one")
        for family in self.missing_families:
            prefixes = ", ".join(
                p + "*" for p in EXPECTED_GAUGE_FAMILIES[family])
            lines.append(
                f"  MISSING    gauge family {family!r}: no {prefixes} "
                f"gauges loaded — did its benchmark run?")
        steady = sum(1 for d in self.deltas
                     if d.change is not None
                     and not d.is_regression(self.tolerance)
                     and not d.is_improvement(self.tolerance))
        fresh = sum(1 for d in self.deltas if d.before is None)
        lines.append(f"  {steady} steady, {len(imps)} improved, "
                     f"{len(regs)} regressed, {fresh} new, {len(miss)} missing "
                     f"(tolerance ±{self.tolerance:.0%})")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "tolerance": self.tolerance,
            "regressions": [d.to_dict() for d in self.regressions],
            "improvements": [d.to_dict() for d in self.improvements],
            "missing": [d.to_dict() for d in self.missing],
            "missing_families": list(self.missing_families),
            "deltas": [d.to_dict() for d in self.deltas],
        }


def read_history(path: str) -> List[dict]:
    """All ledger entries, oldest first; missing file → empty history."""
    if not os.path.exists(path):
        return []
    entries = []
    with open(path) as f:
        for line in f:
            line = line.strip()
            if line:
                entries.append(json.loads(line))
    return entries


def append_history(path: str, gauges: Dict[GaugeKey, float],
                   note: str = "", timestamp: Optional[float] = None) -> dict:
    """Append one run's gauges to the ledger; returns the entry written."""
    entry = {
        "timestamp": time.time() if timestamp is None else timestamp,
        "note": note,
        "gauges": [{"metric": metric, "labels": dict(labels), "value": value}
                   for (metric, labels), value in sorted(gauges.items())],
    }
    with open(path, "a") as f:
        f.write(json.dumps(entry, sort_keys=True) + "\n")
    return entry


def _entry_gauges(entry: dict) -> Dict[GaugeKey, float]:
    return {gauge_key(g["metric"], g.get("labels", {})): float(g["value"])
            for g in entry.get("gauges", [])}


def compare_with_history(history_path: str,
                         gauges: Dict[GaugeKey, float],
                         tolerance: float = DEFAULT_TOLERANCE
                         ) -> HistoryComparison:
    """Diff ``gauges`` against the most recent ledger entry."""
    entries = read_history(history_path)
    previous = entries[-1] if entries else None
    before = _entry_gauges(previous) if previous else {}
    return HistoryComparison(diff_gauges(before, gauges),
                             tolerance=tolerance, previous_entry=previous,
                             missing_families=missing_families(gauges))


def cmd_obs_history(args) -> int:
    """Implementation of ``python -m repro obs history``."""
    bench_files = (list(args.bench) if args.bench
                   else find_bench_files(args.root))
    if not bench_files:
        print(f"no BENCH_*.json artifacts found under {args.root!r}; "
              "run the benchmark suite first")
        return 1
    gauges = load_gauges(bench_files)
    comparison = compare_with_history(args.history, gauges,
                                      tolerance=args.tolerance)
    if args.json:
        print(json.dumps(comparison.to_dict(), sort_keys=True))
    else:
        print(f"loaded {len(gauges)} gauges from "
              f"{', '.join(os.path.basename(p) for p in bench_files)}")
        print(comparison.render())
    if not args.no_append:
        entry = append_history(args.history, gauges, note=args.note)
        if not args.json:
            print(f"appended entry ({len(entry['gauges'])} gauges) "
                  f"to {args.history}")
    if args.fail_on_regression and comparison.regressions:
        return 1
    return 0
