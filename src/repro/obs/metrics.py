"""Metrics registry: counters, gauges, histograms, two export formats.

The registry is deliberately tiny and dependency-free — a subset of the
Prometheus client data model sized for the experiments:

* :class:`Counter` — monotonically increasing totals (requests served,
  security events observed, cache hits);
* :class:`Gauge` — point-in-time values (in-flight requests, cycles/s);
* :class:`Histogram` — bucketed distributions with ``_sum``/``_count``
  (request latency in cycles, per user).

Instruments support Prometheus-style labels as keyword arguments::

    reg = MetricsRegistry()
    delivered = reg.counter("soc_requests_delivered_total",
                            "blocks routed back to their owner",
                            labelnames=("user",))
    delivered.inc(user="alice")

Export is either Prometheus text format (:meth:`MetricsRegistry.to_prometheus`)
or JSON-lines, one sample per line (:meth:`MetricsRegistry.to_jsonl`).

Disabled telemetry never reaches this module: :class:`NullRegistry`
hands out a shared :class:`NullInstrument` whose mutators are ``pass``,
so instrumented code can keep instrument handles unconditionally.
"""

from __future__ import annotations

import json
import random
from typing import Dict, Iterable, List, Optional, Tuple

LabelKey = Tuple[Tuple[str, str], ...]

#: Default latency buckets, in cycles (requests on a 30-stage pipeline).
DEFAULT_BUCKETS = (8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0,
                   4096.0, float("inf"))


def _label_key(labels: Dict[str, object]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def sample_quantile(samples: Iterable[float], q: float) -> Optional[float]:
    """Quantile ``q`` (0..1) of an exact sample set, interpolated.

    The one order-statistic implementation shared by the histogram
    reservoir path and the fleet report summaries: sort the samples and
    linearly interpolate between the two neighbouring order statistics
    (the numpy ``linear`` convention).  Returns ``None`` on an empty
    sample set so callers can distinguish "no data" from a zero
    quantile.
    """
    ordered = sorted(samples)
    if not ordered:
        return None
    pos = q * (len(ordered) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(ordered) - 1)
    return float(ordered[lo] + (ordered[hi] - ordered[lo]) * (pos - lo))


def escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus exposition format.

    Inside a quoted label value, backslash, double-quote, and line feed
    must appear as ``\\\\``, ``\\"``, and ``\\n`` respectively.
    """
    return (value.replace("\\", "\\\\")
                 .replace('"', '\\"')
                 .replace("\n", "\\n"))


def unescape_label_value(value: str) -> str:
    """Inverse of :func:`escape_label_value` (for round-trip checks)."""
    out: List[str] = []
    it = iter(value)
    for ch in it:
        if ch != "\\":
            out.append(ch)
            continue
        nxt = next(it, "")
        out.append({"n": "\n", '"': '"', "\\": "\\"}.get(nxt, "\\" + nxt))
    return "".join(out)


def _render_labels(key: LabelKey) -> str:
    if not key:
        return ""
    inner = ",".join(f'{k}="{escape_label_value(v)}"' for k, v in key)
    return "{" + inner + "}"


class _Instrument:
    """Common bookkeeping for all metric kinds."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "",
                 labelnames: Iterable[str] = ()):
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)

    def _key(self, labels: Dict[str, object]) -> LabelKey:
        if self.labelnames and set(labels) - set(self.labelnames):
            extra = sorted(set(labels) - set(self.labelnames))
            raise ValueError(
                f"metric {self.name!r} has no label(s) {extra}; "
                f"declared: {self.labelnames}"
            )
        return _label_key(labels)


class Counter(_Instrument):
    """Monotonic counter, optionally labelled."""

    kind = "counter"

    def __init__(self, name: str, help: str = "",
                 labelnames: Iterable[str] = ()):
        super().__init__(name, help, labelnames)
        self._values: Dict[LabelKey, float] = {}

    def inc(self, amount: float = 1, **labels) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        key = self._key(labels)
        self._values[key] = self._values.get(key, 0) + amount

    def value(self, **labels) -> float:
        return self._values.get(self._key(labels), 0)

    def samples(self) -> List[Tuple[str, LabelKey, float]]:
        return [(self.name, k, v) for k, v in sorted(self._values.items())]


class Gauge(_Instrument):
    """Point-in-time value, optionally labelled."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "",
                 labelnames: Iterable[str] = ()):
        super().__init__(name, help, labelnames)
        self._values: Dict[LabelKey, float] = {}

    def set(self, value: float, **labels) -> None:
        self._values[self._key(labels)] = value

    def inc(self, amount: float = 1, **labels) -> None:
        key = self._key(labels)
        self._values[key] = self._values.get(key, 0) + amount

    def dec(self, amount: float = 1, **labels) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels) -> float:
        return self._values.get(self._key(labels), 0)

    def samples(self) -> List[Tuple[str, LabelKey, float]]:
        return [(self.name, k, v) for k, v in sorted(self._values.items())]


class Histogram(_Instrument):
    """Cumulative-bucket histogram with ``_sum`` and ``_count``.

    With ``reservoir=N`` the histogram additionally keeps up to ``N``
    exact samples per label set (uniform reservoir sampling with a fixed
    seed, so CI runs are reproducible); :meth:`quantile` then
    interpolates real sample values instead of returning the upper
    bucket bound.
    """

    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 labelnames: Iterable[str] = (),
                 buckets: Optional[Iterable[float]] = None,
                 reservoir: int = 0):
        super().__init__(name, help, labelnames)
        bounds = tuple(buckets) if buckets is not None else DEFAULT_BUCKETS
        if not bounds or bounds[-1] != float("inf"):
            bounds = bounds + (float("inf"),)
        if list(bounds) != sorted(bounds):
            raise ValueError("histogram buckets must be sorted ascending")
        self.buckets = bounds
        self.reservoir = int(reservoir)
        # per label set: ([per-bucket counts], sum, count)
        self._series: Dict[LabelKey, List] = {}
        self._samples: Dict[LabelKey, List[float]] = {}
        self._rng = random.Random(0x5EED)

    def observe(self, value: float, **labels) -> None:
        key = self._key(labels)
        series = self._series.get(key)
        if series is None:
            series = [[0] * len(self.buckets), 0.0, 0]
            self._series[key] = series
        counts, _, _ = series
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                counts[i] += 1
                break
        series[1] += value
        series[2] += 1
        if self.reservoir:
            kept = self._samples.setdefault(key, [])
            if len(kept) < self.reservoir:
                kept.append(value)
            else:
                slot = self._rng.randrange(series[2])
                if slot < self.reservoir:
                    kept[slot] = value

    def samples_seen(self, **labels) -> List[float]:
        """The retained exact samples for one label set (reservoir mode)."""
        return list(self._samples.get(self._key(labels), ()))

    def count(self, **labels) -> int:
        series = self._series.get(self._key(labels))
        return series[2] if series else 0

    def sum(self, **labels) -> float:
        series = self._series.get(self._key(labels))
        return series[1] if series else 0.0

    def mean(self, **labels) -> float:
        series = self._series.get(self._key(labels))
        if not series or not series[2]:
            return 0.0
        return series[1] / series[2]

    def quantile(self, q: float, **labels) -> float:
        """Quantile ``q`` (0..1) of the observed distribution.

        With a reservoir, interpolates between retained exact samples;
        otherwise returns the upper bound of the bucket containing the
        quantile (the classic Prometheus-style estimate).
        """
        key = self._key(labels)
        kept = self._samples.get(key)
        if kept:
            return sample_quantile(kept, q)
        series = self._series.get(key)
        if not series or not series[2]:
            return 0.0
        target = q * series[2]
        cumulative = 0
        for i, bound in enumerate(self.buckets):
            cumulative += series[0][i]
            if cumulative >= target:
                return bound
        return self.buckets[-1]

    def samples(self) -> List[Tuple[str, LabelKey, float]]:
        out: List[Tuple[str, LabelKey, float]] = []
        for key, (counts, total, n) in sorted(self._series.items()):
            cumulative = 0
            for i, bound in enumerate(self.buckets):
                cumulative += counts[i]
                le = "+Inf" if bound == float("inf") else repr(bound)
                out.append((f"{self.name}_bucket",
                            key + (("le", le),), cumulative))
            out.append((f"{self.name}_sum", key, total))
            out.append((f"{self.name}_count", key, n))
        return out


class MetricsRegistry:
    """Holds every instrument and renders the export formats."""

    def __init__(self, namespace: str = "repro"):
        self.namespace = namespace
        self._instruments: "Dict[str, _Instrument]" = {}

    # -- registration (idempotent per name) ------------------------------------
    def _register(self, cls, name: str, help: str, labelnames,
                  **kwargs) -> _Instrument:
        full = f"{self.namespace}_{name}" if self.namespace else name
        existing = self._instruments.get(full)
        if existing is not None:
            if not isinstance(existing, cls):
                raise ValueError(
                    f"metric {full!r} already registered as {existing.kind}"
                )
            return existing
        inst = cls(full, help, labelnames, **kwargs)
        self._instruments[full] = inst
        return inst

    def counter(self, name: str, help: str = "",
                labelnames: Iterable[str] = ()) -> Counter:
        return self._register(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str = "",
              labelnames: Iterable[str] = ()) -> Gauge:
        return self._register(Gauge, name, help, labelnames)

    def histogram(self, name: str, help: str = "",
                  labelnames: Iterable[str] = (),
                  buckets: Optional[Iterable[float]] = None,
                  reservoir: int = 0) -> Histogram:
        return self._register(Histogram, name, help, labelnames,
                              buckets=buckets, reservoir=reservoir)

    def get(self, name: str) -> Optional[_Instrument]:
        full = f"{self.namespace}_{name}" if self.namespace else name
        return self._instruments.get(full, self._instruments.get(name))

    def instruments(self) -> List[_Instrument]:
        return [self._instruments[k] for k in sorted(self._instruments)]

    # -- export ----------------------------------------------------------------
    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """``{metric_name: {rendered_labels: value}}`` for assertions."""
        out: Dict[str, Dict[str, float]] = {}
        for inst in self.instruments():
            for name, key, value in inst.samples():
                out.setdefault(name, {})[_render_labels(key)] = value
        return out

    def to_prometheus(self) -> str:
        lines: List[str] = []
        for inst in self.instruments():
            if inst.help:
                lines.append(f"# HELP {inst.name} {inst.help}")
            lines.append(f"# TYPE {inst.name} {inst.kind}")
            for name, key, value in inst.samples():
                if value == float("inf"):
                    rendered = "+Inf"
                elif isinstance(value, float) and value.is_integer():
                    rendered = str(int(value))
                else:
                    rendered = repr(value)
                lines.append(f"{name}{_render_labels(key)} {rendered}")
        return "\n".join(lines) + "\n"

    def to_jsonl(self) -> str:
        lines: List[str] = []
        for inst in self.instruments():
            for name, key, value in inst.samples():
                lines.append(json.dumps({
                    "metric": name,
                    "kind": inst.kind,
                    "labels": dict(key),
                    "value": value if value != float("inf") else "+Inf",
                }, sort_keys=True))
        return "\n".join(lines) + ("\n" if lines else "")

    def write_prometheus(self, path: str) -> None:
        with open(path, "w") as f:
            f.write(self.to_prometheus())

    def write_jsonl(self, path: str) -> None:
        with open(path, "w") as f:
            f.write(self.to_jsonl())


class NullInstrument:
    """Shared do-nothing instrument: every mutator is a no-op."""

    __slots__ = ()

    kind = "null"
    name = "null"
    buckets = ()

    def inc(self, amount: float = 1, **labels) -> None:
        pass

    def dec(self, amount: float = 1, **labels) -> None:
        pass

    def set(self, value: float, **labels) -> None:
        pass

    def observe(self, value: float, **labels) -> None:
        pass

    def value(self, **labels) -> float:
        return 0

    def count(self, **labels) -> int:
        return 0

    def sum(self, **labels) -> float:
        return 0.0

    def mean(self, **labels) -> float:
        return 0.0

    def quantile(self, q: float, **labels) -> float:
        return 0.0

    def samples_seen(self, **labels) -> List[float]:
        return []

    def samples(self) -> List:
        return []


NULL_INSTRUMENT = NullInstrument()


class NullRegistry(MetricsRegistry):
    """Registry whose instruments do nothing — the disabled fast path."""

    def counter(self, name: str, help: str = "", labelnames=()) -> Counter:
        return NULL_INSTRUMENT  # type: ignore[return-value]

    def gauge(self, name: str, help: str = "", labelnames=()) -> Gauge:
        return NULL_INSTRUMENT  # type: ignore[return-value]

    def histogram(self, name: str, help: str = "", labelnames=(),
                  buckets=None, reservoir=0) -> Histogram:
        return NULL_INSTRUMENT  # type: ignore[return-value]
