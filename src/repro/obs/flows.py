"""Flow provenance explorer: ``python -m repro obs flows``.

Runs a fixed set of seeded flow scenarios against *both* accelerators
and explains every IFC verdict with a witness chain:

* on the **baseline**, each scenario reproduces one §3.1 vulnerability;
  the static checker's counterexample witness and the dynamic tracker's
  ledger witness must blame the same offending sources
  (:func:`repro.ifc.witness.sources_agree` — the static set
  over-approximates, the concrete run witnesses a subset);
* on the **protected** design, the same traffic is enforced; the run
  must stay violation-free and every block/release must still carry a
  non-empty provenance witness naming the true secret source.

The result is a provenance report (text, JSON, markdown) written
through :mod:`repro.obs.report`, plus ``label_violation`` security
events enriched with witness chains on the telemetry stream.
"""

from __future__ import annotations

import json
from typing import Callable, Dict, List, Optional

from ..ifc.witness import Witness, merge_source_sets, sources_agree

#: master key in slot 0 of both deployments (never used by scenarios)
KEY_A = 0x000102030405060708090A0B0C0D0E0F
KEY_B = 0x2B7E151628AED2A6ABF7158809CF4F3C
PLAINTEXT = 0x00112233445566778899AABBCCDDEEFF


class ScenarioResult:
    """One scenario's verdicts from both oracles on both designs."""

    def __init__(self, name: str, title: str, description: str):
        self.name = name
        self.title = title
        self.description = description
        #: offending source sets (normalised base names)
        self.static_sources: frozenset = frozenset()
        self.dynamic_sources: frozenset = frozenset()
        self.static_errors = 0
        self.dynamic_violations = 0
        self.static_witness: Optional[Witness] = None
        self.dynamic_witness: Optional[Witness] = None
        #: protected-design outcome
        self.protected_static_errors = 0
        self.protected_violations = 0
        self.protected_witness: Optional[Witness] = None
        self.protected_counters: Dict[str, int] = {}
        self.notes: List[str] = []

    # -- verdicts ----------------------------------------------------------
    @property
    def agree(self) -> bool:
        """Static and dynamic witnesses name the same offending sources."""
        return sources_agree(self.static_sources, self.dynamic_sources)

    @property
    def baseline_flagged(self) -> bool:
        return self.static_errors > 0 and self.dynamic_violations > 0

    @property
    def protected_clean(self) -> bool:
        return (self.protected_static_errors == 0
                and self.protected_violations == 0)

    @property
    def protected_witnessed(self) -> bool:
        """The enforced design still explains the flow it governed."""
        w = self.protected_witness
        return w is not None and bool(w.source_set(offending_only=False))

    @property
    def ok(self) -> bool:
        return (self.baseline_flagged and self.agree
                and self.protected_clean and self.protected_witnessed)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "title": self.title,
            "description": self.description,
            "ok": self.ok,
            "agree": self.agree,
            "baseline": {
                "static_errors": self.static_errors,
                "dynamic_violations": self.dynamic_violations,
                "static_sources": sorted(self.static_sources),
                "dynamic_sources": sorted(self.dynamic_sources),
                "static_witness": (self.static_witness.as_dict()
                                   if self.static_witness else None),
                "dynamic_witness": (self.dynamic_witness.as_dict()
                                    if self.dynamic_witness else None),
            },
            "protected": {
                "static_errors": self.protected_static_errors,
                "violations": self.protected_violations,
                "counters": dict(self.protected_counters),
                "witness": (self.protected_witness.as_dict()
                            if self.protected_witness else None),
            },
            "notes": list(self.notes),
        }


class FlowReport:
    """All scenario results plus the overall CI verdict."""

    def __init__(self, backend: str, seed: int,
                 scenarios: List[ScenarioResult]):
        self.backend = backend
        self.seed = seed
        self.scenarios = scenarios

    @property
    def ok(self) -> bool:
        return bool(self.scenarios) and all(s.ok for s in self.scenarios)

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "backend": self.backend,
            "seed": self.seed,
            "scenarios": [s.to_dict() for s in self.scenarios],
        }

    def render(self) -> str:
        bar = "=" * 70
        lines = [bar, "flow provenance report", bar]
        for s in self.scenarios:
            lines.append("")
            lines.append(f"[{'PASS' if s.ok else 'FAIL'}] {s.title}")
            lines.append(f"  {s.description}")
            lines.append(
                f"  baseline: {s.static_errors} static error(s), "
                f"{s.dynamic_violations} runtime violation(s)")
            lines.append(
                "  offending sources agree: "
                f"{'yes' if s.agree else 'NO'} "
                f"(static {sorted(s.static_sources)} ⊇ "
                f"dynamic {sorted(s.dynamic_sources)})")
            lines.append(
                f"  protected: {s.protected_static_errors} static error(s), "
                f"{s.protected_violations} violation(s)"
                + (f", counters {s.protected_counters}"
                   if s.protected_counters else ""))
            for note in s.notes:
                lines.append(f"  note: {note}")
            if s.dynamic_witness is not None:
                lines.append("")
                lines.extend("  " + ln
                             for ln in s.dynamic_witness.render().split("\n"))
            if s.protected_witness is not None:
                lines.append("")
                lines.extend("  " + ln
                             for ln in s.protected_witness.render().split("\n"))
        lines.append("")
        lines.append(f"VERDICT: {'ok' if self.ok else 'WITNESS GATE FAILED'} "
                     f"({sum(s.ok for s in self.scenarios)}/"
                     f"{len(self.scenarios)} scenarios)")
        return "\n".join(lines)

    def render_markdown(self) -> str:
        lines = ["# Flow provenance report", "",
                 f"Backend `{self.backend}`, seed {self.seed}.", "",
                 "| scenario | baseline flagged | sources agree | "
                 "protected clean | witnessed | verdict |",
                 "|---|---|---|---|---|---|"]
        for s in self.scenarios:
            lines.append(
                f"| {s.name} | {s.static_errors} static / "
                f"{s.dynamic_violations} dynamic | "
                f"{'yes' if s.agree else 'no'} | "
                f"{'yes' if s.protected_clean else 'no'} | "
                f"{'yes' if s.protected_witnessed else 'no'} | "
                f"{'pass' if s.ok else 'fail'} |")
        for s in self.scenarios:
            lines.append("")
            lines.append(f"## {s.title}")
            lines.append("")
            lines.append(s.description)
            if s.static_witness is not None:
                lines.append("")
                lines.append("```")
                lines.append(s.static_witness.render())
                lines.append("```")
            if s.dynamic_witness is not None:
                lines.append("")
                lines.append("```")
                lines.append(s.dynamic_witness.render())
                lines.append("```")
            if s.protected_witness is not None:
                lines.append("")
                lines.append("```")
                lines.append(s.protected_witness.render())
                lines.append("```")
        lines.append("")
        return "\n".join(lines)


# -- harness ---------------------------------------------------------------

class _Run:
    """One tracked simulation of an accelerator (either design)."""

    def __init__(self, protected: bool, backend: str,
                 timing_flaw: bool = False):
        from ..accel.common import LATTICE
        from ..accel.driver import AcceleratorDriver, make_users
        from ..eval.audit import annotate_baseline
        from ..ifc.tracker import LabelTracker

        self.protected = protected
        if protected:
            from ..accel.protected import AesAcceleratorProtected

            self.accel = AesAcceleratorProtected()
        else:
            from ..accel.baseline import AesAcceleratorBaseline

            self.accel = AesAcceleratorBaseline(
                keyexp_timing_flaw=timing_flaw)
            annotate_baseline(self.accel)
        self.driver = AcceleratorDriver(self.accel, backend=backend)
        self.users = make_users()
        self.tracker = LabelTracker(self.driver.sim, LATTICE,
                                    provenance=True)

    def violations_at(self, match: Callable[[str], bool]) -> list:
        return [v for v in self.tracker.violations if match(v.sink)]


def _static_reports(backend_hint: str, timing_flaw: bool = True):
    """(baseline CheckReport, protected CheckReport), witnesses attached."""
    from ..accel.common import LATTICE
    from ..accel.protected import AesAcceleratorProtected
    from ..eval.audit import run_audit
    from ..hdl.elaborate import elaborate_shallow
    from ..ifc.checker import IfcChecker

    base_report = run_audit(timing_flaw=timing_flaw)
    prot_netlist = elaborate_shallow(AesAcceleratorProtected())
    prot_report = IfcChecker(prot_netlist, LATTICE,
                             max_hypotheses=1 << 20).check()
    return base_report, prot_report


def _static_view(report, match: Callable[[str], bool]):
    """(n_errors, offending source union, best witness) at matching sinks."""
    errors = [e for e in report.errors if match(e.sink)]
    witnesses = [e.witness for e in errors if e.witness is not None]
    best = max(witnesses, key=lambda w: len(w.steps), default=None)
    return len(errors), merge_source_sets(witnesses), best


def run_flow_scenarios(backend: str = "compiled",
                       seed: int = 2026) -> FlowReport:
    """Run the four seeded provenance scenarios; returns the report.

    ``seed`` is recorded in the report for provenance of the artifact
    itself; the scenarios are fully deterministic.
    """
    base_report, prot_report = _static_reports(backend)
    results: List[ScenarioResult] = []

    def finish(res: ScenarioResult, match: Callable[[str], bool],
               run: _Run, prot: _Run) -> ScenarioResult:
        res.static_errors, res.static_sources, res.static_witness = \
            _static_view(base_report, match)
        dyn = run.violations_at(match)
        res.dynamic_violations = len(dyn)
        witnesses = [v.witness for v in dyn if v.witness is not None]
        res.dynamic_sources = merge_source_sets(witnesses)
        res.dynamic_witness = max(
            witnesses, key=lambda w: len(w.steps), default=None)
        res.protected_static_errors, _, _ = _static_view(prot_report, match)
        res.protected_violations = len(prot.tracker.violations)
        res.protected_counters = {
            k: v for k, v in prot.driver.counters().items() if v}
        results.append(res)
        return res

    # -- 1: legal declassification of the ciphertext -----------------------
    res = ScenarioResult(
        "legal_declass", "key -> ciphertext (legal declassification)",
        "An owner's encryption: secret key and user data reach the public "
        "output port. The baseline leaks them unreviewed; the protected "
        "design releases the ciphertext through its declassifier.")

    def out_sink(sink: str) -> bool:
        return "out_data" in sink or "outbuf" in sink

    run = _Run(protected=False, backend=backend)
    u0 = run.users["u0"]
    run.driver.load_key(u0, 1, KEY_A)
    run.driver.encrypt_blocking(u0, 1, PLAINTEXT)

    prot = _Run(protected=True, backend=backend)
    pu0, sup = prot.users["u0"], prot.users["supervisor"]
    prot.driver.allocate_slot(1, pu0, sup)
    prot.driver.load_key(pu0, 1, KEY_A)
    prot.driver.set_reader(pu0)
    ct, _lat = prot.driver.encrypt_blocking(pu0, 1, PLAINTEXT)
    finish(res, out_sink, run, prot)
    # release witness: where the public ciphertext's label came from
    res.protected_witness = prot.tracker.explain("aes.out_data")
    if ct is None:
        res.notes.append("protected design failed to release ciphertext")
        res.protected_static_errors += 1  # force scenario failure
    crossed = res.protected_witness.crossed() if res.protected_witness else []
    if crossed:
        res.notes.append(
            f"release crossed reviewed downgrades: {', '.join(crossed)}")

    # -- 2: debug-port leak attempt ----------------------------------------
    res = ScenarioResult(
        "debug_leak", "debug trace read by a co-tenant",
        "Victim traffic lands in the debug trace buffer; another user "
        "reads it back. The baseline serves the secret words to any "
        "reader; the protected design gates each entry on its stored tag.")

    def dbg_sink(sink: str) -> bool:
        return "dbg" in sink or ".debug." in sink

    from ..accel.config_regs import (
        CFG_FEATURES,
        FEATURE_DEBUG_EN,
        FEATURE_OUTBUF_EN,
    )

    debug_on = FEATURE_OUTBUF_EN | FEATURE_DEBUG_EN

    run = _Run(protected=False, backend=backend)
    u0, u1 = run.users["u0"], run.users["u1"]
    run.driver.write_config(u1, CFG_FEATURES, debug_on)  # nothing stops eve
    run.driver.load_key(u0, 1, KEY_A)
    run.driver.encrypt_blocking(u0, 1, PLAINTEXT)
    leaked = run.driver.read_debug(u1, 0)
    run.driver.step(2)  # let the tracker evaluate eve's readout

    prot = _Run(protected=True, backend=backend)
    pu0, pu1 = prot.users["u0"], prot.users["u1"]
    sup = prot.users["supervisor"]
    prot.driver.write_config(sup, CFG_FEATURES, debug_on)
    prot.driver.allocate_slot(1, pu0, sup)
    prot.driver.load_key(pu0, 1, KEY_A)
    prot.driver.set_reader(pu0)
    prot.driver.encrypt_blocking(pu0, 1, PLAINTEXT)
    blocked = prot.driver.read_debug(pu1, 0)
    prot.driver.step(2)
    finish(res, dbg_sink, run, prot)
    # the guarded secret itself: provenance of the trace entry the
    # attacker asked for, naming the victim's data as its origin
    res.protected_witness = prot.tracker.explain_mem("aes.debug.trace", 0)
    res.notes.append(
        f"baseline read returned {leaked:#x}; protected returned "
        f"{blocked:#x}")

    # -- 3: cross-tenant scratchpad overrun --------------------------------
    res = ScenarioResult(
        "scratchpad_overrun", "key-load overrun into a neighbour slot",
        "A key-load with word index 2 walks past the attacker's two "
        "scratchpad cells into the victim's first cell. The baseline "
        "commits the write; the protected scratchpad blocks it on the "
        "cell-tag mismatch.")

    def pad_sink(sink: str) -> bool:
        return "scratchpad" in sink

    run = _Run(protected=False, backend=backend)
    u0, u1 = run.users["u0"], run.users["u1"]  # slots 1 and 2 (annotation)
    run.driver.load_key(u1, 2, KEY_B, wait=False)
    run.driver.load_key_cell(u0, 1, 2, KEY_A >> 64)  # cell 4: u1's
    run.driver.step(2)

    prot = _Run(protected=True, backend=backend)
    pu0, pu1 = prot.users["u0"], prot.users["u1"]
    sup = prot.users["supervisor"]
    prot.driver.allocate_slot(1, pu0, sup)
    prot.driver.allocate_slot(2, pu1, sup)
    prot.driver.load_key(pu1, 2, KEY_B)
    prot.driver.load_key_cell(pu0, 1, 2, KEY_A >> 64)
    prot.driver.step(2)
    finish(res, pad_sink, run, prot)
    res.protected_witness = prot.tracker.explain_mem(
        "aes.scratchpad.cells", 4)
    victim_cell = prot.driver.sim.peek_mem("aes.scratchpad.cells", 4)
    if victim_cell != KEY_B >> 64:
        res.notes.append("victim cell was CORRUPTED on the protected design")
        res.protected_violations += 1  # force scenario failure
    else:
        res.notes.append("victim cell intact on the protected design")

    # -- 4: key-dependent stall timing -------------------------------------
    res = ScenarioResult(
        "stall_guard", "key-dependent key-expansion timing",
        "With the §3.1 timing flaw, key expansion finishes earlier for "
        "low-weight keys, so the public busy line encodes key bits. The "
        "protected unit is constant-time and its stall grant is a single "
        "reviewed downgrade.")

    def busy_sink(sink: str) -> bool:
        return "busy" in sink or "ready" in sink

    run = _Run(protected=False, backend=backend, timing_flaw=True)
    u0 = run.users["u0"]
    run.driver.load_key(u0, 1, KEY_A)

    prot = _Run(protected=True, backend=backend)
    pu0, sup = prot.users["u0"], prot.users["supervisor"]
    advance = prot.tracker.watch("aes.advance")
    prot.driver.allocate_slot(1, pu0, sup)
    prot.driver.load_key(pu0, 1, KEY_A)
    prot.driver.set_reader(pu0)
    prot.driver.encrypt_blocking(pu0, 1, PLAINTEXT)
    finish(res, busy_sink, run, prot)
    res.protected_witness = prot.tracker.explain(advance)
    crossed = res.protected_witness.crossed() if res.protected_witness else []
    if crossed:
        res.notes.append(
            f"stall grant crossed reviewed downgrades: {', '.join(crossed)}")
    else:
        res.notes.append("stall grant witness crossed NO reviewed downgrade")
        res.protected_violations += 1  # the §4 story requires the endorse

    return FlowReport(backend, seed, results)


def coverage_scenarios():
    """Coverage-observatory registration: which attribution planes the
    flow-witness gate's scenarios exercise (see ``repro.obs.coverage``)."""
    return [
        {"gate": "flows", "scenario": "legal_declass",
         "planes": ["control", "datapath", "key_schedule"]},
        {"gate": "flows", "scenario": "debug_leak",
         "planes": ["control", "datapath"]},
        {"gate": "flows", "scenario": "scratchpad_overrun",
         "planes": ["scratchpad", "control"]},
        {"gate": "flows", "scenario": "stall_guard",
         "planes": ["control", "key_schedule"]},
    ]


def cmd_obs_flows(args) -> int:
    """Implementation of ``python -m repro obs flows``."""
    from ..obs import capture
    from .report import write_flow_report

    from ..gate import gate_epilogue

    with capture() as t:
        report = run_flow_scenarios(backend=args.backend, seed=args.seed)
    return gate_epilogue(
        args, ok=report.ok, payload=report.to_dict(), render=report.render,
        writer=lambda out: write_flow_report(report, out, telemetry=t))
