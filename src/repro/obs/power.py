"""Power side-channel observatory: proxy traces, TVLA/CPA, paired gate.

The leakage observatory (:mod:`repro.obs.leakage`) measures *timing*;
this module measures the other classic physical channel: **power**.  No
analog model is pretended — the power proxy is the standard
architectural estimate that switching activity dominates dynamic power:

* **Hamming distance (HD)** — per cycle, the number of bits that
  changed across every signal in the design (``popcount(prev ^ cur)``
  summed over the bulk :meth:`~repro.hdl.sim.engine.Simulator.values`
  snapshot);
* **weighted toggles** — the same transitions weighted by each signal's
  expression-node cost (:func:`~repro.obs.profile.signal_costs`), a
  fan-in proxy for the capacitance each flip drives.

:class:`PowerCollector` captures both uniformly on all three backends
(interp / compiled / batched) by riding the same watcher + bulk-snapshot
path the profiler uses; on the batched backend it reads the limb arrays
directly (vectorised XOR + popcount) and yields **one trace per lane**,
so thousands of traces come from a handful of batched runs.  Every
sample is attributed to a group (:func:`power_group`): datapath, key
schedule, scratchpad, control, or the synthesized shadow-tag plane
(``…__conf`` / ``…__integ`` nets from ``tag_tracking=True``).

Detectors (reusing the leakage statistics):

* **TVLA** — fixed-vs-random Welch's t per trace point; |t| above the
  4.5 convention flags the design, with binned MI as the cross-check;
* **CPA** — Pearson correlation of the measured trace against the
  ``HW(sbox(plaintext_byte ^ guess))`` model, per byte, all 256
  guesses; the *rank* of the true key byte (0 = recovered) is the
  quantitative "the attack works" half of the verdict.

The paired campaign (:func:`run_power_campaign`, CLI ``python -m repro
obs power``) runs the attack against
:class:`~repro.accel.masked.RoundPowerUnit` in both variants and holds
four claims at once — the CI gate fails unless all do:

1. the unmasked round is *flagged* (TVLA max-|t| > 4.5) and *broken*
   (CPA recovers ≥ :data:`CPA_RECOVERY_TARGET` of 16 key bytes at
   rank 0) within the trace budget;
2. the first-order masked variant, same budget, yields **no** rank-0
   recovery — masking measurably degrades the attack;
3. the protected accelerator's non-power guarantees are unchanged
   (its static IFC check still passes);
4. a short tag-tracking run of the protected accelerator attributes
   activity to every plane, shadow tags included.

Offline, :func:`power_trace_from_vcd` recomputes the identical HD trace
from a recorded VCD (:func:`~repro.hdl.sim.trace.read_vcd`), so traces
can be archived and re-analysed without re-simulating.
"""

from __future__ import annotations

import json
import math
import random
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Tuple

from .leakage import (
    MI_THRESHOLD,
    T_THRESHOLD,
    binned_mutual_information,
    welch_t_test,
)
from .profile import signal_costs

try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is a test extra
    _np = None

#: Random traces for the CPA budget (the gate's "within budget").
DEFAULT_TRACES = 512
#: Fixed + random traces per group for the TVLA pass.
DEFAULT_TVLA_TRACES = 64
#: Key bytes that must come out rank 0 for the unmasked gate.
CPA_RECOVERY_TARGET = 12
#: Lanes per batched run (one power trace per lane).
DEFAULT_LANES = 64
#: Cycles stepped per trace; yields this many minus one HD points.
TRACE_CYCLES = 4


def hamming_weight(x: int) -> int:
    return bin(x).count("1")


# -- attribution -----------------------------------------------------------------

def power_group(path: str) -> str:
    """Attribution group of one signal path.

    The shadow-tag plane is recognised by the ``__conf`` / ``__integ``
    suffixes the tag-synthesis transform appends; the other groups key
    off the accelerator's module names (``aes.keyexp``,
    ``aes.scratchpad``, the stall/declass/output-buffer control ring),
    with everything unmatched — pipeline stages included — counted as
    datapath.
    """
    name = path.rsplit(".", 1)[-1]
    if name.endswith("__conf") or name.endswith("__integ"):
        return "shadow_tags"
    parts = set(path.split("."))
    if parts & {"keyexp", "kexp"} or name.startswith(("ksbox", "krcon")):
        return "key_schedule"
    if parts & {"scratchpad", "scratch"}:
        return "scratchpad"
    if parts & {"stallctl", "declass", "outbuf", "axi"}:
        return "control"
    return "datapath"


# -- the collector ---------------------------------------------------------------

class PowerCollector:
    """Watcher turning per-cycle value changes into power-proxy traces.

    Attach to a :class:`~repro.hdl.sim.engine.Simulator` (any backend);
    call :meth:`start_trace` before driving each measurement, then step.
    Each watcher invocation snapshots every signal and appends one
    (HD, weighted) point per lane to the open trace.  Nothing is
    recorded until the first :meth:`start_trace`.

    ``traces_hd[t][lane]`` is the HD point series of lane ``lane`` in
    trace ``t``; ``group_hd`` accumulates HD per attribution group over
    the whole capture (all traces, all lanes).
    """

    def __init__(self, sim):
        self.sim = sim
        self.signals = list(sim.value_signals())
        self._paths = [s.path for s in self.signals]
        self.groups = [power_group(p) for p in self._paths]
        self.group_names = sorted(set(self.groups))
        costs = signal_costs(sim.netlist)
        # inputs cost 0 in the node accounting but their flips still
        # drive fan-out; floor every weight at 1 so the weighted series
        # never silently ignores a toggling signal
        self.weights = [max(1, int(costs.get(s, 0))) for s in self.signals]
        self.lanes = getattr(sim, "lanes", 1) or 1
        self.traces_hd: List[List[List[int]]] = []
        self.traces_weighted: List[List[List[int]]] = []
        self.group_hd: Dict[str, int] = {g: 0 for g in self.group_names}
        self.cycles_observed = 0
        self._prev = None
        self._use_np = (_np is not None
                        and getattr(sim, "backend_name", "") == "batched"
                        and hasattr(_np, "bitwise_count"))
        if self._use_np:
            self._init_np_rows()
        self._attached = True
        sim.add_watcher(self._on_cycle)

    def __enter__(self) -> "PowerCollector":
        return self

    def __exit__(self, *exc) -> bool:
        self.detach()
        return False

    def detach(self) -> None:
        if self._attached:
            self.sim.remove_watcher(self._on_cycle)
            self._attached = False

    # -- batched fast path: limb-array rows -> signal metadata ------------------
    def _init_np_rows(self) -> None:
        be = self.sim.lanes_sim._be
        n_rows = be.n_state_rows + be.n_env_rows
        weights = _np.zeros(n_rows, dtype=_np.int64)
        group_rows: Dict[str, List[int]] = {g: [] for g in self.group_names}
        for i, sig in enumerate(self.signals):
            slot = be.state_slot.get(sig)
            base = 0
            if slot is None:
                slot = be.comb_slot[sig]
                base = be.n_state_rows
            row0, nlimbs = slot
            for j in range(nlimbs):
                row = base + row0 + j
                weights[row] = self.weights[i]
                group_rows[self.groups[i]].append(row)
        self._row_weights = weights
        self._group_rows = {g: _np.array(rows, dtype=_np.intp)
                            for g, rows in group_rows.items() if rows}

    # -- capture ----------------------------------------------------------------
    def start_trace(self) -> None:
        """Open a new trace: the next snapshot becomes its reference."""
        self._prev = None
        self.traces_hd.append([[] for _ in range(self.lanes)])
        self.traces_weighted.append([[] for _ in range(self.lanes)])

    def _on_cycle(self, sim) -> None:
        if not self.traces_hd:
            return  # idle until the first start_trace()
        if self._use_np:
            ls = self.sim.lanes_sim
            ls._settle()
            snap = _np.concatenate([ls._state, ls._env], axis=0).copy()
            if self._prev is not None:
                self._accumulate_np(self._prev, snap)
        else:
            snap = [self.sim.values(lane) for lane in range(self.lanes)]
            if self._prev is not None:
                self._accumulate(self._prev, snap)
        self._prev = snap
        self.cycles_observed += 1

    def _accumulate(self, prev, cur) -> None:
        hd_tr = self.traces_hd[-1]
        wt_tr = self.traces_weighted[-1]
        groups, weights, ghd = self.groups, self.weights, self.group_hd
        for lane in range(self.lanes):
            pl, cl = prev[lane], cur[lane]
            hd = wt = 0
            for i, c in enumerate(cl):
                d = pl[i] ^ c
                if d:
                    bits = bin(d).count("1")
                    hd += bits
                    wt += bits * weights[i]
                    ghd[groups[i]] += bits
            hd_tr[lane].append(hd)
            wt_tr[lane].append(wt)

    def _accumulate_np(self, prev, cur) -> None:
        pc = _np.bitwise_count(prev ^ cur).astype(_np.int64)
        hd_per_lane = pc.sum(axis=0)
        wt_per_lane = (pc * self._row_weights[:, None]).sum(axis=0)
        for g, rows in self._group_rows.items():
            self.group_hd[g] += int(pc[rows].sum())
        hd_tr = self.traces_hd[-1]
        wt_tr = self.traces_weighted[-1]
        for lane in range(self.lanes):
            hd_tr[lane].append(int(hd_per_lane[lane]))
            wt_tr[lane].append(int(wt_per_lane[lane]))

    # -- access -----------------------------------------------------------------
    def flat_hd_traces(self) -> List[List[int]]:
        """All HD traces, trace-major then lane-major (batched runs
        contribute ``lanes`` traces each)."""
        return [lane_tr for tr in self.traces_hd for lane_tr in tr]

    def flat_weighted_traces(self) -> List[List[int]]:
        return [lane_tr for tr in self.traces_weighted for lane_tr in tr]


# -- offline replay --------------------------------------------------------------

def power_trace_from_vcd(path: str,
                         signals: Optional[Sequence[str]] = None
                         ) -> List[int]:
    """Recompute the HD power trace from a recorded VCD.

    Replays the value changes of :func:`~repro.hdl.sim.trace.read_vcd`
    (carrying values forward from ``$dumpvars``) and returns one HD
    point per timestep after the first — exactly what a live
    :class:`PowerCollector` over the same signal set produces.
    Timesteps are the integer range between the first and last recorded
    time, so quiet interior cycles contribute their zero points
    (trailing all-quiet cycles leave no mark in a VCD and cannot be
    recovered).  ``signals`` restricts the replay to those dotted paths.
    """
    from ..hdl.sim.trace import read_vcd

    data = read_vcd(path)
    changes: Dict[str, List[Tuple[int, Optional[int]]]] = data["changes"]
    if signals is not None:
        keep = set(signals)
        changes = {p: evs for p, evs in changes.items() if p in keep}
    by_time: Dict[int, List[Tuple[str, Optional[int]]]] = {}
    for p, evs in changes.items():
        for t, v in evs:
            by_time.setdefault(t, []).append((p, v))
    if not by_time:
        return []
    t0, t1 = min(by_time), max(by_time)
    cur: Dict[str, int] = {}
    trace: List[int] = []
    for t in range(t0, t1 + 1):
        hd = 0
        for p, v in by_time.get(t, ()):
            if v is None:
                continue  # x/z: unknown carries no transition
            old = cur.get(p)
            if old is not None:
                hd += hamming_weight(old ^ v)
            cur[p] = v
        if t > t0:
            trace.append(hd)
    return trace


# -- CPA -------------------------------------------------------------------------

class CpaResult:
    """Per-byte CPA outcome against a known key."""

    def __init__(self, ranks: List[int], best_guesses: List[int],
                 best_corr: List[float], correct_corr: List[float],
                 traces: int):
        self.ranks = ranks
        self.best_guesses = best_guesses
        self.best_corr = best_corr
        self.correct_corr = correct_corr
        self.traces = traces

    @property
    def recovered(self) -> int:
        """Key bytes ranked 0 (no guess strictly better than the truth)."""
        return sum(1 for r in self.ranks if r == 0)

    def to_dict(self) -> dict:
        return {"traces": self.traces, "ranks": self.ranks,
                "recovered_bytes": self.recovered,
                "best_guesses": self.best_guesses,
                "best_corr": [round(c, 4) for c in self.best_corr],
                "correct_corr": [round(c, 4) for c in self.correct_corr]}


def _key_bytes(key: int) -> List[int]:
    return [(key >> (8 * (15 - b))) & 0xFF for b in range(16)]


def cpa_attack(traces: Sequence[Sequence[int]], plaintexts: Sequence[int],
               key: int) -> CpaResult:
    """First-round CPA: correlate ``HW(sbox(p ^ guess))`` per byte.

    For every byte position and all 256 guesses, Pearson-correlate the
    hypothesis vector against each trace point and score the guess by
    its best |r|; the true byte's rank is the number of guesses scoring
    strictly higher.  Vectorised with numpy when available; the pure
    fallback computes the same statistics.
    """
    from ..aes.constants import SBOX

    n = len(traces)
    if n < 8:
        raise ValueError(f"CPA needs a sensible trace count (got {n})")
    kb = _key_bytes(key)
    if _np is not None:
        return _cpa_np(traces, plaintexts, kb, SBOX)
    return _cpa_py(traces, plaintexts, kb, SBOX)


def _cpa_np(traces, plaintexts, kb, SBOX) -> CpaResult:
    n = len(traces)
    X = _np.asarray(traces, dtype=_np.float64)
    Xc = X - X.mean(axis=0)
    xnorm = _np.sqrt((Xc ** 2).sum(axis=0))
    xnorm[xnorm == 0.0] = _np.inf  # constant point correlates with nothing
    sbox_hw = _np.array([hamming_weight(v) for v in SBOX], dtype=_np.float64)
    guesses = _np.arange(256, dtype=_np.int64)
    ranks, bests, best_corr, correct_corr = [], [], [], []
    for b in range(16):
        pb = _np.array([(p >> (8 * (15 - b))) & 0xFF for p in plaintexts],
                       dtype=_np.int64)
        H = sbox_hw[pb[None, :] ^ guesses[:, None]]  # (256, n)
        Hc = H - H.mean(axis=1, keepdims=True)
        hnorm = _np.sqrt((Hc ** 2).sum(axis=1))
        hnorm[hnorm == 0.0] = _np.inf
        corr = _np.abs(Hc @ Xc) / (hnorm[:, None] * xnorm[None, :])
        score = corr.max(axis=1)
        truth = kb[b]
        ranks.append(int((score > score[truth]).sum()))
        bests.append(int(score.argmax()))
        best_corr.append(float(score.max()))
        correct_corr.append(float(score[truth]))
    return CpaResult(ranks, bests, best_corr, correct_corr, n)


def _cpa_py(traces, plaintexts, kb, SBOX) -> CpaResult:
    n = len(traces)
    npts = len(traces[0])
    # centre each trace point once, not once per guess
    cols = []
    for t in range(npts):
        col = [tr[t] for tr in traces]
        mc = sum(col) / n
        cc = [c - mc for c in col]
        var = sum(c * c for c in cc)
        cols.append((cc, math.sqrt(var) if var > 0 else math.inf))
    sbox_hw = [hamming_weight(v) for v in SBOX]
    ranks, bests, best_corr, correct_corr = [], [], [], []
    for b in range(16):
        pb = [(p >> (8 * (15 - b))) & 0xFF for p in plaintexts]
        scores = []
        for guess in range(256):
            hyp = [sbox_hw[x ^ guess] for x in pb]
            mh = sum(hyp) / n
            hc = [h - mh for h in hyp]
            hvar = sum(h * h for h in hc)
            hn = math.sqrt(hvar) if hvar > 0 else math.inf
            best = 0.0
            for cc, cn in cols:
                cov = sum(h * c for h, c in zip(hc, cc))
                r = abs(cov) / (hn * cn)
                if r > best:
                    best = r
            scores.append(best)
        truth = kb[b]
        ranks.append(sum(1 for s in scores if s > scores[truth]))
        bests.append(max(range(256), key=lambda g: scores[g]))
        best_corr.append(max(scores))
        correct_corr.append(scores[truth])
    return CpaResult(ranks, bests, best_corr, correct_corr, n)


# -- TVLA ------------------------------------------------------------------------

class TvlaResult:
    """Fixed-vs-random verdict over every trace point."""

    def __init__(self, t_per_point: List[float], mi_bits: float,
                 n_fixed: int, n_random: int,
                 t_threshold: float = T_THRESHOLD,
                 mi_threshold: float = MI_THRESHOLD):
        self.t_per_point = t_per_point
        self.mi_bits = mi_bits
        self.n_fixed = n_fixed
        self.n_random = n_random
        self.t_threshold = t_threshold
        self.mi_threshold = mi_threshold

    @property
    def max_t(self) -> float:
        return max((abs(t) for t in self.t_per_point), default=0.0)

    @property
    def worst_point(self) -> int:
        ts = [abs(t) for t in self.t_per_point]
        return ts.index(max(ts)) if ts else -1

    @property
    def flagged(self) -> bool:
        return self.max_t > self.t_threshold

    def to_dict(self) -> dict:
        return {"t_per_point": [round(t, 3) for t in self.t_per_point],
                "max_abs_t": round(self.max_t, 3),
                "worst_point": self.worst_point,
                "mi_bits": round(self.mi_bits, 4),
                "n_fixed": self.n_fixed, "n_random": self.n_random,
                "t_threshold": self.t_threshold,
                "mi_threshold": self.mi_threshold,
                "flagged": self.flagged}


def tvla_test(fixed_traces: Sequence[Sequence[int]],
              random_traces: Sequence[Sequence[int]]) -> TvlaResult:
    """Welch's t per trace point, fixed group vs random group, plus
    binned MI at the worst point as the detector's cross-check."""
    npts = len(fixed_traces[0])
    ts = [welch_t_test([tr[i] for tr in fixed_traces],
                       [tr[i] for tr in random_traces]).t
          for i in range(npts)]
    worst = max(range(npts), key=lambda i: abs(ts[i])) if npts else 0
    values = ([tr[worst] for tr in fixed_traces]
              + [tr[worst] for tr in random_traces])
    conds = [0] * len(fixed_traces) + [1] * len(random_traces)
    mi = binned_mutual_information(values, conds)
    return TvlaResult(ts, mi, len(fixed_traces), len(random_traces))


# -- trace collection over the round unit ----------------------------------------

def _campaign_key(seed: int) -> int:
    return random.Random(seed * 2654435761 + 7).getrandbits(128)


def _poke_lane(sim, sig: str, lane: int, value: int) -> None:
    if getattr(sim, "backend_name", "") == "batched":
        sim.lanes_sim.poke(sig, lane, value)
    else:
        sim.poke(sig, value)


def _build_round_sim(masked: bool, backend: str, lanes: int):
    from ..accel.masked import RoundPowerUnit
    from ..hdl.sim.engine import Simulator

    unit = RoundPowerUnit(masked=masked)
    kwargs = {"lanes": lanes} if backend == "batched" else {}
    return Simulator(unit, backend=backend, **kwargs)


def _drive_traces(sim, collector: PowerCollector, plaintexts: Sequence[int],
                  key: int, masked: bool, rng: random.Random) -> None:
    """One collector trace per plaintext; batched fills lanes in bulk."""
    from ..accel.masked import mask128, masked_sbox_table

    lanes = collector.lanes
    top = sim.netlist.root.path
    for base in range(0, len(plaintexts), lanes):
        chunk = plaintexts[base:base + lanes]
        if len(chunk) < lanes:  # pad the last batched run
            chunk = list(chunk) + [chunk[-1]] * (lanes - len(chunk))
        sim.reset()
        for lane, plain in enumerate(chunk):
            if masked:
                m_in = rng.randrange(256)
                m_out = rng.randrange(256)
                table = masked_sbox_table(m_in, m_out)
                if lanes > 1:
                    for addr, v in enumerate(table):
                        sim.lanes_sim.poke_mem(f"{top}.msbox", addr, v, lane)
                else:
                    for addr, v in enumerate(table):
                        sim.poke_mem(f"{top}.msbox", addr, v)
                _poke_lane(sim, f"{top}.in_state", lane,
                           plain ^ mask128(m_in))
                _poke_lane(sim, f"{top}.in_mask_out", lane, m_out)
            else:
                _poke_lane(sim, f"{top}.in_state", lane, plain)
        sim.poke(f"{top}.in_key", key)
        sim.poke(f"{top}.in_valid", 1)
        collector.start_trace()
        sim.step(1)
        sim.poke(f"{top}.in_valid", 0)
        sim.step(TRACE_CYCLES - 1)


def collect_power_traces(masked: bool = False,
                         ntraces: int = DEFAULT_TRACES,
                         seed: int = 2026,
                         backend: str = "compiled",
                         lanes: int = 1,
                         fixed_plain: Optional[int] = None,
                         key: Optional[int] = None,
                         ) -> Tuple[List[int], List[List[int]], float]:
    """Collect ``ntraces`` HD traces from the round unit.

    Returns ``(plaintexts, hd_traces, wall_seconds)``.  ``fixed_plain``
    pins every trace to one plaintext (the TVLA fixed group); otherwise
    plaintexts are seeded-random.  On the batched backend each run
    yields ``lanes`` traces.
    """
    if backend != "batched":
        lanes = 1
    rng = random.Random(seed)
    key = _campaign_key(seed) if key is None else key
    plaintexts = [fixed_plain if fixed_plain is not None
                  else rng.getrandbits(128) for _ in range(ntraces)]
    sim = _build_round_sim(masked, backend, lanes)
    t0 = perf_counter()
    with PowerCollector(sim) as col:
        _drive_traces(sim, col, plaintexts, key, masked, rng)
    wall = perf_counter() - t0
    return plaintexts, col.flat_hd_traces()[:ntraces], wall


# -- the paired campaign ---------------------------------------------------------

class PowerScenarioReport:
    """One variant's measurements and verdict inputs."""

    def __init__(self, design: str, backend: str, lanes: int,
                 tvla: TvlaResult, cpa: CpaResult,
                 traces_per_second: float, points: int):
        self.design = design
        self.backend = backend
        self.lanes = lanes
        self.tvla = tvla
        self.cpa = cpa
        self.traces_per_second = traces_per_second
        self.points = points

    def to_dict(self) -> dict:
        return {"design": self.design, "backend": self.backend,
                "lanes": self.lanes, "points": self.points,
                "traces_per_second": round(self.traces_per_second, 1),
                "tvla": self.tvla.to_dict(), "cpa": self.cpa.to_dict()}

    def render(self) -> str:
        c = self.cpa
        return (f"{self.design:8s} (backend={self.backend}, "
                f"lanes={self.lanes}): "
                f"TVLA max|t|={self.tvla.max_t:8.1f} "
                f"(>{self.tvla.t_threshold}) "
                f"MI={self.tvla.mi_bits:.3f}b | "
                f"CPA {c.recovered:2d}/16 bytes rank-0 over {c.traces} "
                f"traces ({self.traces_per_second:.0f} traces/s)")


class PowerCampaignResult:
    """The paired unmasked/masked verdict plus the non-power cross-check."""

    def __init__(self, unmasked: PowerScenarioReport,
                 masked: PowerScenarioReport,
                 attribution: Dict[str, int],
                 protected_ifc_ok: Optional[bool],
                 seed: int,
                 recovery_target: int = CPA_RECOVERY_TARGET):
        self.unmasked = unmasked
        self.masked = masked
        self.attribution = attribution
        self.protected_ifc_ok = protected_ifc_ok
        self.seed = seed
        self.recovery_target = recovery_target

    @property
    def baseline_broken(self) -> bool:
        return (self.unmasked.tvla.flagged
                and self.unmasked.cpa.recovered >= self.recovery_target)

    @property
    def masking_effective(self) -> bool:
        return self.masked.cpa.recovered == 0

    @property
    def ok(self) -> bool:
        return (self.baseline_broken and self.masking_effective
                and self.protected_ifc_ok is not False)

    def to_dict(self) -> dict:
        return {"ok": self.ok, "seed": self.seed,
                "recovery_target": self.recovery_target,
                "baseline_broken": self.baseline_broken,
                "masking_effective": self.masking_effective,
                "protected_ifc_ok": self.protected_ifc_ok,
                "attribution_hd": dict(sorted(self.attribution.items())),
                "unmasked": self.unmasked.to_dict(),
                "masked": self.masked.to_dict()}

    def render(self) -> str:
        lines = ["=" * 70, "power side-channel campaign", "=" * 70,
                 self.unmasked.render(), self.masked.render(), ""]
        if self.attribution:
            total = sum(self.attribution.values()) or 1
            planes = "  ".join(
                f"{g}={hd} ({100 * hd / total:.0f}%)"
                for g, hd in sorted(self.attribution.items()))
            lines.append(f"attribution (protected accel, HD): {planes}")
        if self.protected_ifc_ok is not None:
            lines.append("protected IFC check: "
                         + ("PASS" if self.protected_ifc_ok else "FAIL"))
        if self.ok:
            lines.append(
                f"VERDICT: unmasked round flagged and broken "
                f"({self.unmasked.cpa.recovered}/16 key bytes); first-order "
                f"masking defeats rank-0 recovery at the same budget")
        else:
            lines.append(
                f"VERDICT: UNEXPECTED — baseline_broken="
                f"{self.baseline_broken} "
                f"(recovered={self.unmasked.cpa.recovered}, "
                f"max|t|={self.unmasked.tvla.max_t:.1f}), "
                f"masking_effective={self.masking_effective} "
                f"(recovered={self.masked.cpa.recovered}), "
                f"protected_ifc_ok={self.protected_ifc_ok}")
        return "\n".join(lines)

    def render_md(self) -> str:
        u, m = self.unmasked, self.masked
        rows = [
            "# Power side-channel report",
            "",
            f"Seed {self.seed}; CPA budget {u.cpa.traces} traces; "
            f"gate requires ≥ {self.recovery_target}/16 rank-0 bytes "
            f"unmasked and 0 masked.",
            "",
            "| design | backend | TVLA max·t· | MI (bits) | rank-0 bytes "
            "| traces/s |",
            "|---|---|---|---|---|---|",
        ]
        for r in (u, m):
            rows.append(
                f"| {r.design} | {r.backend} | {r.tvla.max_t:.1f} "
                f"| {r.tvla.mi_bits:.3f} | {r.cpa.recovered}/16 "
                f"| {r.traces_per_second:.0f} |")
        rows += ["", f"Unmasked CPA ranks: {u.cpa.ranks}",
                 f"Masked CPA ranks: {m.cpa.ranks}", ""]
        if self.attribution:
            rows += ["## Attribution (protected accelerator, HD per plane)",
                     ""]
            total = sum(self.attribution.values()) or 1
            rows += ["| plane | HD | share |", "|---|---|---|"]
            for g, hd in sorted(self.attribution.items()):
                rows.append(f"| {g} | {hd} | {100 * hd / total:.1f}% |")
            rows.append("")
        rows.append(f"Protected IFC check: {self.protected_ifc_ok}; "
                    f"overall verdict: {'PASS' if self.ok else 'FAIL'}")
        return "\n".join(rows) + "\n"


def collect_attribution(backend: str = "compiled",
                        cycles: int = 60) -> Dict[str, int]:
    """Per-plane HD attribution over a short tag-tracking run of the
    protected accelerator (datapath / key schedule / scratchpad /
    control / shadow-tag plane)."""
    from ..accel.common import CMD_ENCRYPT, LATTICE
    from ..accel.driver import AcceleratorDriver, make_users
    from ..accel.protected import AesAcceleratorProtected

    drv = AcceleratorDriver(AesAcceleratorProtected(), backend=backend,
                            tag_tracking=True, lattice=LATTICE)
    users = make_users()
    u0, u1 = users["u0"], users["u1"]
    with PowerCollector(drv.sim) as col:
        col.start_trace()
        drv.sim.poke(f"{drv.top}.out_ready", 1)
        drv.sim.poke(f"{drv.top}.rd_user", u0)
        drv._idle_inputs()
        drv.allocate_slot(1, u0)
        drv.allocate_slot(2, u1)
        drv.load_key(u0, 1, 0x000102030405060708090A0B0C0D0E0F)
        drv.load_key(u1, 2, 0x0F0E0D0C0B0A09080706050403020100)
        drv.issue(CMD_ENCRYPT, u0, slot=1, data=0x00112233445566778899AABBCCDDEEFF)
        drv.issue(CMD_ENCRYPT, u1, slot=2, data=0xFFEEDDCCBBAA99887766554433221100)
        drv.step(cycles)
    return dict(col.group_hd)


def run_power_campaign(seed: int = 2026,
                       backend: str = "compiled",
                       traces: int = DEFAULT_TRACES,
                       tvla_traces: int = DEFAULT_TVLA_TRACES,
                       lanes: int = 1,
                       check_protected: bool = True,
                       with_attribution: bool = True,
                       ) -> PowerCampaignResult:
    """The paired gate: attack both round-unit variants, same budget."""
    key = _campaign_key(seed)
    # the canonical TVLA fixed class: the all-zero plaintext, whose HD
    # signature sits far from the random-class mean at every point
    fixed = 0

    reports = {}
    for masked in (False, True):
        name = "masked" if masked else "unmasked"
        plains, cpa_traces, wall = collect_power_traces(
            masked=masked, ntraces=traces, seed=seed, backend=backend,
            lanes=lanes, key=key)
        _, fixed_tr, w2 = collect_power_traces(
            masked=masked, ntraces=tvla_traces, seed=seed + 1,
            backend=backend, lanes=lanes, fixed_plain=fixed, key=key)
        _, rand_tr, w3 = collect_power_traces(
            masked=masked, ntraces=tvla_traces, seed=seed + 2,
            backend=backend, lanes=lanes, key=key)
        total = traces + 2 * tvla_traces
        tps = total / (wall + w2 + w3) if wall + w2 + w3 > 0 else 0.0
        reports[name] = PowerScenarioReport(
            name, backend, lanes if backend == "batched" else 1,
            tvla_test(fixed_tr, rand_tr),
            cpa_attack(cpa_traces, plains, key),
            tps, len(cpa_traces[0]))

    attribution: Dict[str, int] = {}
    if with_attribution:
        attribution = collect_attribution(
            backend="compiled" if backend == "batched" else backend)

    ifc_ok: Optional[bool] = None
    if check_protected:
        from ..accel.common import LATTICE
        from ..accel.protected import AesAcceleratorProtected
        from ..hdl.elaborate import elaborate_shallow
        from ..ifc.checker import IfcChecker

        netlist = elaborate_shallow(AesAcceleratorProtected())
        ifc_ok = IfcChecker(netlist, LATTICE,
                            max_hypotheses=1 << 20).check().ok()

    return PowerCampaignResult(reports["unmasked"], reports["masked"],
                               attribution, ifc_ok, seed)


# -- CLI -------------------------------------------------------------------------

def coverage_scenarios():
    """Coverage-observatory registration: which attribution planes the
    power gate's paired campaign exercises (see ``repro.obs.coverage``)."""
    return [
        {"gate": "power", "scenario": "unmasked_round",
         "planes": ["datapath", "key_schedule"]},
        {"gate": "power", "scenario": "masked_round",
         "planes": ["datapath", "key_schedule"]},
        {"gate": "power", "scenario": "attribution",
         "planes": ["datapath", "control", "scratchpad", "key_schedule",
                    "shadow_tags"]},
    ]


def cmd_obs_power(args) -> int:
    """Implementation of ``python -m repro obs power``."""
    from ..gate import gate_epilogue

    backend = args.backend
    lanes = args.lanes
    if backend == "batched" and _np is None:
        print("numpy unavailable; falling back to the compiled backend")
        backend, lanes = "compiled", 1
    traces = DEFAULT_TRACES if args.demo else args.traces
    result = run_power_campaign(
        seed=args.seed, backend=backend, traces=traces,
        tvla_traces=args.tvla_traces, lanes=lanes,
        check_protected=not args.no_ifc_check)
    return gate_epilogue(
        args, ok=result.ok, payload=result.to_dict(), render=result.render,
        artifacts={"power_report.json": result.to_dict(),
                   "power_report.md": result.render_md})
