"""Verification coverage observatory: what did the campaigns exercise?

Every security verdict in this repo — IFC checks, leakage/power TVLA,
fault fail-safe, flow witnesses — is only as strong as what its
campaign actually touched.  This module measures that, on four planes:

* **structural** — per-bit 0→1 / 1→0 toggle coverage on every signal
  and register, plus written/read address coverage on memories;
* **taint** — which synthesized ``__conf`` / ``__integ`` shadow nets
  (:func:`repro.ifc.synth.synthesize_tags`) ever went nonzero, per
  principal;
* **enforcement** — which synthesized violation sites ever armed, and
  toggle coverage over the protected design's guard nets (stall meet,
  advance, declassifier, output buffer, per-stage tag registers);
* **campaign** — which of the fault injector's candidate sites the
  seeded scenario generators actually sampled
  (:func:`repro.faults.campaign.fault_site_census`), the outcome
  matrix of a real smoke campaign, and which attribution planes each
  leakage/power/flows/faults scenario registers against.

The :class:`CoverageCollector` rides the same watcher / bulk
``values()`` hooks as the profiler and
:class:`~repro.obs.power.PowerCollector` — nothing in the simulator
hot path changes when no collector is attached — and is uniform across
the interp/compiled/batched backends.  On batched it takes the
vectorized path over the limb arrays and OR-reduces across lanes; the
gate workload drives every lane identically, so the lane-merged map is
*bit-identical* to the single-lane backends' maps (the cross-backend
fingerprint check in the CI gate).

Coverage maps OR-merge across runs into an append-only JSONL ledger
(``COVERAGE_ledger.jsonl``), and ``python -m repro obs coverage``
computes holes — never-toggled nets, never-tainted shadow nets,
never-armed sites, never-injected fault sites — enforces per-plane
thresholds, and writes ``coverage_report.json`` / ``.md`` with the
ranked hole list.

Known approximation: memory *write* coverage is detected by content
diffing between consecutive cycles, so a write that stores the value
already present leaves no mark; memory *read* coverage only observes
ports whose address expression is a signal/constant/slice chain
(anything more complex is reported as an unobserved port, identically
on every backend).
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Dict, List, Optional, Sequence, Tuple

try:
    import numpy as _np
except ImportError:  # pragma: no cover - the interp/compiled paths cover this
    _np = None

__all__ = [
    "CoverageMap",
    "CoverageCollector",
    "CoverageReport",
    "enforcement_net",
    "run_coverage_collection",
    "run_coverage_campaign",
    "append_ledger",
    "load_ledger",
    "THRESHOLDS",
    "cmd_obs_coverage",
]

#: per-plane gate thresholds (fractions; see :meth:`CoverageReport.verdicts`)
THRESHOLDS = {
    # toggle coverage over all nets is naturally modest on a short gate
    # workload (wide datapath constants, debug-only plumbing); measured
    # floor on the reference workload is ~0.24
    "structural_toggle": 0.20,
    # the acceptance bar: the protected design's guard nets must be
    # genuinely exercised, not merely present
    "enforcement_toggle": 0.90,
    # clean traffic only taints the nets on the active datapath; most
    # shadow nets belong to violation plumbing that stays silent unless
    # a fault arms it (measured ~0.16 with one armed stage)
    "taint": 0.12,
    # at least this fraction of synthesized sites must ever arm
    "sites_armed": 0.10,
    # the smoke fault campaign samples a strict subset by design
    "fault_injected": 0.05,
}

_MASK64 = (1 << 64) - 1


# -- the coverage map --------------------------------------------------------------

class CoverageMap:
    """Accumulated coverage masks, mergeable and serializable.

    ``signals[path]`` is ``{"width", "rise", "fall", "ever"}`` — integer
    bit masks of positions ever seen rising, falling, or set.
    ``mems[path]`` is ``{"depth", "written", "read", "read_observed"}``
    — address *bit sets* (bit ``a`` = address ``a`` touched);
    ``read_observed`` is False when every read port of that memory has
    an address expression the collector cannot evaluate.
    """

    def __init__(self):
        self.signals: Dict[str, Dict[str, int]] = {}
        self.mems: Dict[str, Dict[str, object]] = {}
        self.cycles = 0
        self.backends: List[str] = []

    # -- merge / serialize -------------------------------------------------------
    def merge(self, other: "CoverageMap") -> "CoverageMap":
        """OR ``other`` into this map (union of everything observed)."""
        for path, o in other.signals.items():
            s = self.signals.setdefault(
                path, {"width": o["width"], "rise": 0, "fall": 0, "ever": 0})
            s["rise"] |= o["rise"]
            s["fall"] |= o["fall"]
            s["ever"] |= o["ever"]
        for path, o in other.mems.items():
            m = self.mems.setdefault(
                path, {"depth": o["depth"], "written": 0, "read": 0,
                       "read_observed": o["read_observed"]})
            m["written"] |= o["written"]
            m["read"] |= o["read"]
            m["read_observed"] = bool(m["read_observed"]
                                      or o["read_observed"])
        self.cycles += other.cycles
        for be in other.backends:
            if be not in self.backends:
                self.backends.append(be)
        return self

    def to_dict(self) -> dict:
        return {
            "cycles": self.cycles,
            "backends": list(self.backends),
            "signals": {p: {"width": s["width"], "rise": hex(s["rise"]),
                            "fall": hex(s["fall"]), "ever": hex(s["ever"])}
                        for p, s in sorted(self.signals.items())},
            "mems": {p: {"depth": m["depth"], "written": hex(m["written"]),
                         "read": hex(m["read"]),
                         "read_observed": m["read_observed"]}
                     for p, m in sorted(self.mems.items())},
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CoverageMap":
        cm = cls()
        cm.cycles = int(data.get("cycles", 0))
        cm.backends = list(data.get("backends", []))
        for p, s in data.get("signals", {}).items():
            cm.signals[p] = {"width": int(s["width"]),
                             "rise": int(s["rise"], 16),
                             "fall": int(s["fall"], 16),
                             "ever": int(s["ever"], 16)}
        for p, m in data.get("mems", {}).items():
            cm.mems[p] = {"depth": int(m["depth"]),
                          "written": int(m["written"], 16),
                          "read": int(m["read"], 16),
                          "read_observed": bool(m["read_observed"])}
        return cm

    def fingerprint(self) -> str:
        """Content hash of the masks alone (not cycles/backends) — equal
        fingerprints mean bit-identical coverage."""
        d = self.to_dict()
        body = json.dumps({"signals": d["signals"], "mems": d["mems"]},
                          sort_keys=True)
        return hashlib.sha256(body.encode()).hexdigest()[:16]

    # -- summary helpers ---------------------------------------------------------
    def toggle_stats(self, paths: Optional[Sequence[str]] = None
                     ) -> Dict[str, int]:
        """Bit counts over ``paths`` (default: every net): total bits,
        bits that both rose and fell, nets that never moved at all."""
        sel = self.signals if paths is None else {
            p: self.signals[p] for p in paths if p in self.signals}
        total = covered = dead = 0
        for s in sel.values():
            total += s["width"]
            covered += bin(s["rise"] & s["fall"]).count("1")
            if not (s["rise"] | s["fall"]):
                dead += 1
        return {"nets": len(sel), "bits": total, "toggled_bits": covered,
                "dead_nets": dead}


def enforcement_net(path: str) -> bool:
    """Is ``path`` one of the protected design's enforcement/guard nets?

    The stall controller, declassifier, output buffer, the pipeline
    advance grant, and the per-stage tag registers — the nets whose
    toggling proves the enforcement ring was actually driven, as opposed
    to the synthesized monitor plane (``__conf``/``__integ``/``__tag``,
    classified separately as taint and site coverage).
    """
    name = path.rsplit(".", 1)[-1]
    if name.endswith("__conf") or name.endswith("__integ"):
        return False
    if "__tag" in path:
        return False
    parts = set(path.split("."))
    if parts & {"stallctl", "declass", "outbuf"}:
        return True
    return name in ("advance", "tag_r")


# -- address-expression probes -----------------------------------------------------

def _addr_probe(node):
    """Resolve a read-port address expression to an observable form.

    Returns ``("const", addr)``, ``("sig", signal, shift, width)`` for a
    signal / slice-of-signal chain, or ``None`` when the expression is
    not observable this way (reported as an unobserved port — the same
    verdict on every backend, which keeps the maps bit-identical).
    """
    width = node.width
    shift = 0
    while True:
        kind = node.kind
        if kind == "const":
            return ("const", (node.value >> shift) & ((1 << width) - 1))
        if kind == "signal":
            return ("sig", node, shift, width)
        if kind == "ref":
            return ("sig", node.signal, shift, width)
        if kind == "slice":
            shift += node.lo
            node = node.a
            continue
        return None


def _mem_read_ports(netlist):
    """Every distinct (mem, probe) read port in the design."""
    ports = []
    seen = set()
    unobserved = set()
    for node in netlist.all_nodes():
        if node.kind != "memread":
            continue
        probe = _addr_probe(node.addr)
        if probe is not None and probe[0] == "sig" \
                and probe[2] % 64 + probe[3] > 64:
            # a slice straddling a 64-bit limb boundary: the batched
            # fast path cannot read it from one row, so no backend
            # observes it — the maps stay bit-identical
            probe = None
        if probe is None:
            unobserved.add(node.mem.path)
            continue
        key = (node.mem.path, probe[0],
               probe[1] if probe[0] == "const" else
               (probe[1].path, probe[2], probe[3]))
        if key in seen:
            continue
        seen.add(key)
        ports.append((node.mem, probe))
    return ports, unobserved


# -- the collector -----------------------------------------------------------------

class CoverageCollector:
    """Watcher accumulating the structural coverage map of one sim.

    Attach to a :class:`~repro.hdl.sim.engine.Simulator` (any backend),
    drive the workload, then call :meth:`finish` (or leave the ``with``
    block) and read :attr:`map`.  Each watcher invocation snapshots
    every signal (and the writable memories) and ORs the observed
    rises/falls/values into the map; on the batched backend one
    vectorized pass over the limb arrays covers all lanes at once.
    """

    def __init__(self, sim):
        self.sim = sim
        self.signals = list(sim.value_signals())
        self._paths = [s.path for s in self.signals]
        self.lanes = getattr(sim, "lanes", 1) or 1
        self.map = CoverageMap()
        be_name = getattr(sim, "backend_name", "")
        self.map.backends.append(be_name)
        for s in self.signals:
            self.map.signals[s.path] = {"width": s.width, "rise": 0,
                                        "fall": 0, "ever": 0}
        # memories: written-addr coverage for every mem with write ports,
        # read-addr coverage for observable read ports
        self._wmems = sorted(sim.netlist.mem_writes,
                             key=lambda m: m.path)
        self._ports, unobserved = _mem_read_ports(sim.netlist)
        read_mems = {m.path for m, _probe in self._ports}
        for mem in sim.netlist.mems:
            if mem not in sim.netlist.mem_writes \
                    and mem.path not in read_mems \
                    and mem.path not in unobserved:
                continue  # ROM nobody reads: nothing to cover
            self.map.mems[mem.path] = {
                "depth": mem.depth, "written": 0, "read": 0,
                "read_observed": mem.path in read_mems}
        self._sig_index = {p: i for i, p in enumerate(self._paths)}
        self._prev = None
        self._prev_mems = None
        self._use_np = (_np is not None and be_name == "batched")
        if self._use_np:
            self._init_np_rows()
        self._attached = True
        sim.add_watcher(self._on_cycle)

    def __enter__(self) -> "CoverageCollector":
        return self

    def __exit__(self, *exc) -> bool:
        self.finish()
        return False

    def detach(self) -> None:
        if self._attached:
            self.sim.remove_watcher(self._on_cycle)
            self._attached = False

    def finish(self) -> CoverageMap:
        """Take one final snapshot (the watcher observes the state
        *before* each step, so the last step's effects land here), fold
        the row accumulators into the map, and detach."""
        if self._attached:
            self._observe()
            self.detach()
            if self._use_np:
                self._fold_np_rows()
        return self.map

    # -- batched fast path: limb rows <-> signal metadata ------------------------
    def _init_np_rows(self) -> None:
        be = self.sim.lanes_sim._be
        n_rows = be.n_state_rows + be.n_env_rows
        # (signal index, base row, limb count) per signal, plus three
        # uint64 accumulators per row — folded back per-signal at finish
        self._row_of: List[Tuple[int, int, int]] = []
        for i, sig in enumerate(self.signals):
            slot = be.state_slot.get(sig)
            base = 0
            if slot is None:
                slot = be.comb_slot[sig]
                base = be.n_state_rows
            row0, nlimbs = slot
            self._row_of.append((i, base + row0, nlimbs))
        self._rise_rows = _np.zeros(n_rows, dtype=_np.uint64)
        self._fall_rows = _np.zeros(n_rows, dtype=_np.uint64)
        self._ever_rows = _np.zeros(n_rows, dtype=_np.uint64)
        self._mem_slot = be.mem_slot

    def _fold_np_rows(self) -> None:
        for i, row0, nlimbs in self._row_of:
            rise = fall = ever = 0
            for j in range(nlimbs):
                rise |= int(self._rise_rows[row0 + j]) << (64 * j)
                fall |= int(self._fall_rows[row0 + j]) << (64 * j)
                ever |= int(self._ever_rows[row0 + j]) << (64 * j)
            s = self.map.signals[self._paths[i]]
            mask = (1 << s["width"]) - 1
            s["rise"] |= rise & mask
            s["fall"] |= fall & mask
            s["ever"] |= ever & mask

    # -- capture -----------------------------------------------------------------
    def _on_cycle(self, sim) -> None:
        self._observe()

    def _observe(self) -> None:
        if self._use_np:
            self._observe_np()
        else:
            self._observe_py()
        self.map.cycles += 1

    def _observe_py(self) -> None:
        snap = self.sim.values(0)
        sigs = self.map.signals
        prev = self._prev
        if prev is None:
            for i, p in enumerate(self._paths):
                sigs[p]["ever"] |= snap[i]
        else:
            for i, p in enumerate(self._paths):
                c = snap[i]
                s = sigs[p]
                d = prev[i] ^ c
                if d:
                    s["rise"] |= d & c
                    s["fall"] |= d & prev[i]
                s["ever"] |= c
        self._prev = snap
        self._observe_mems_py(snap)

    def _mem_snapshot_py(self) -> List[List[int]]:
        sim = self.sim
        if sim.backend_name == "compiled":
            idx = sim._be.mem_index
            return [list(sim._mems[idx[m]]) for m in self._wmems]
        return [list(sim._imems[m]) for m in self._wmems]

    def _observe_mems_py(self, snap) -> None:
        cur = self._mem_snapshot_py()
        prev = self._prev_mems
        if prev is not None:
            for k, mem in enumerate(self._wmems):
                pm, cm = prev[k], cur[k]
                if pm != cm:
                    entry = self.map.mems[mem.path]
                    for a in range(mem.depth):
                        if pm[a] != cm[a]:
                            entry["written"] |= 1 << a
        self._prev_mems = cur
        for mem, probe in self._ports:
            if probe[0] == "const":
                addr = probe[1]
            else:
                _tag, sig, shift, width = probe
                addr = (snap[self._sig_index[sig.path]] >> shift) \
                    & ((1 << width) - 1)
            if addr < mem.depth:
                self.map.mems[mem.path]["read"] |= 1 << addr

    def _observe_np(self) -> None:
        ls = self.sim.lanes_sim
        ls._settle()
        snap = _np.concatenate([ls._state, ls._env], axis=0).copy()
        prev = self._prev
        if prev is not None:
            d = prev ^ snap
            # OR-reduce the per-lane masks across the lane axis: the
            # merged map covers everything any lane did
            self._rise_rows |= _np.bitwise_or.reduce(d & snap, axis=1)
            self._fall_rows |= _np.bitwise_or.reduce(d & prev, axis=1)
        self._ever_rows |= _np.bitwise_or.reduce(snap, axis=1)
        self._prev = snap
        self._observe_mems_np(snap, ls)

    def _observe_mems_np(self, snap, ls) -> None:
        cur = []
        for mem in self._wmems:
            row0, nlimbs = self._mem_slot[mem]
            cur.append([ls._mems[row0 + j].copy() for j in range(nlimbs)])
        prev = self._prev_mems
        if prev is not None:
            for k, mem in enumerate(self._wmems):
                entry = self.map.mems[mem.path]
                for pm, cm in zip(prev[k], cur[k]):
                    changed = _np.nonzero((pm != cm).any(axis=1))[0]
                    for a in changed:
                        entry["written"] |= 1 << int(a)
        self._prev_mems = cur
        for mem, probe in self._ports:
            entry = self.map.mems[mem.path]
            if probe[0] == "const":
                if probe[1] < mem.depth:
                    entry["read"] |= 1 << probe[1]
                continue
            _tag, sig, shift, width = probe
            i = self._sig_index[sig.path]
            _idx, row0, _nlimbs = self._row_of[i]
            j, sh = divmod(shift, 64)
            vals = snap[row0 + j] >> _np.uint64(sh)
            mask = (1 << width) - 1
            for lane in range(self.lanes):
                addr = int(vals[lane]) & mask
                if addr < mem.depth:
                    entry["read"] |= 1 << addr


# -- the gate workload -------------------------------------------------------------

def _drive_workload(drv, users) -> None:
    """The deterministic coverage workload.

    All four users encrypt (u0/u1 also decrypt); the consumer is held
    closed while a burst of responses lands, filling the output buffer
    until it drops and the stall meet revokes ``advance`` (both
    directions of every guard); then alternating readers drain it,
    exercising the per-reader queues, the tag-gated head matching, and
    the declassifier release path for every principal."""
    from ..accel.common import CMD_DECRYPT, CMD_ENCRYPT

    u0, u1 = users["u0"], users["u1"]
    top = drv.top
    drv.set_reader(u0, ready=True)
    drv._idle_inputs()
    drv.allocate_slot(1, u0)
    drv.allocate_slot(2, u1)
    key_a = 0x000102030405060708090A0B0C0D0E0F
    key_b = 0x0F0E0D0C0B0A09080706050403020100
    drv.load_key(u0, 1, key_a)
    drv.load_key(u1, 2, key_b)

    # burst A — homogeneous: five u0 blocks into a closed consumer
    # overrun the four-deep per-reader queue; with only one principal in
    # flight the stall meet *grants* the stall, pulling advance low
    drv.set_reader(u0, ready=False)
    plains = [0x00112233445566778899AABBCCDDEEFF + i for i in range(5)]
    for p in plains:
        drv.issue(CMD_ENCRYPT, u0, slot=1, data=p)
    drv.step(45)
    for _ in range(25):
        drv.set_reader(u0, ready=True)
        drv.step(1)
        drv.take_responses()

    # burst B — mixed principals: the u0 overrun block reaches the
    # declassifier while u1 traffic is still in flight behind it, so
    # the meet *denies* the stall (a grant would modulate the public
    # stall line with another user's traffic) and the block is dropped
    # instead — the fail-closed branch of Fig. 8
    drv.set_reader(u0, ready=False)
    for p in plains:
        drv.issue(CMD_ENCRYPT, u0, slot=1, data=p ^ 0xFF)
    drv.issue(CMD_ENCRYPT, u1, slot=2,
              data=0xFFEEDDCCBBAA99887766554433221100)
    drv.issue(CMD_ENCRYPT, u1, slot=2,
              data=0x0123456789ABCDEF0123456789ABCDEF)
    drv.step(55)

    # alternating drain: both readers take their queues; the
    # wrong-reader head cycles exercise the holding path
    for i in range(40):
        drv.set_reader(u0 if i % 4 < 2 else u1, ready=True)
        drv.step(1)
        drv.take_responses()

    # u2 / u3 traffic: their vouch bits hash to output-buffer queue
    # slots 2 and 3, walking the count/wptr/rptr sets no other
    # principal can reach; key slot 3 is supervisor-reassigned between
    # them (slots 1 and 2 stay owned by u0/u1)
    u2, u3 = users["u2"], users["u3"]
    drv.allocate_slot(3, u2)
    drv.load_key(u2, 3, 0xFEDCBA98765432100123456789ABCDEF)
    drv.issue(CMD_ENCRYPT, u2, slot=3,
              data=0x5555AAAA5555AAAA5555AAAA5555AAAA)
    drv.set_reader(u2, ready=True)
    drv.step(40)
    drv.take_responses()
    drv.allocate_slot(3, u3)
    drv.load_key(u3, 3, 0xA5A5A5A5A5A5A5A55A5A5A5A5A5A5A5A)
    drv.issue(CMD_ENCRYPT, u3, slot=3,
              data=0x3333CCCC3333CCCC3333CCCC3333CCCC)
    drv.set_reader(u3, ready=True)
    drv.step(40)
    drv.take_responses()

    # decryption pass with alternating readers
    drv.issue(CMD_DECRYPT, u0, slot=1,
              data=0x69C4E0D86A7B0430D8CDB78070B4C55A)
    drv.issue(CMD_DECRYPT, u1, slot=2,
              data=0x0A940BB5416EF045F1C39458C653EA5A)
    for i in range(50):
        drv.set_reader(u1 if i % 4 < 2 else u0, ready=True)
        drv.step(1)
        drv.take_responses()


def run_coverage_collection(backend: str = "compiled",
                            lanes: int = 1,
                            with_fault_arm: bool = True,
                            ) -> Tuple[CoverageMap, dict]:
    """Collect one backend's coverage map over the gate workload.

    Two collection phases, OR-merged: a clean tag-tracking run of the
    protected accelerator (structural + taint + guard toggles), then —
    when ``with_fault_arm`` — the same workload under a stuck-at-1
    over-taint fault on one pipeline stage's shadow conf net, which
    forces the synthesized flow sites downstream to arm (the
    enforcement plane's positive control).  Returns the map and the tag
    plan's static census (shadow nets + sites) for the analysis layer.
    """
    from ..accel.common import LATTICE
    from ..accel.driver import AcceleratorDriver, make_users
    from ..accel.protected import AesAcceleratorProtected
    from ..faults import Fault, FaultKind, FaultPlan

    users = make_users()
    drv = AcceleratorDriver(AesAcceleratorProtected(), backend=backend,
                            tag_tracking=True, lattice=LATTICE)
    if backend == "batched" and lanes > 1:
        # the driver pokes every lane identically, so the OR-merged map
        # must stay bit-identical to the single-lane backends' maps
        from ..hdl.sim.engine import Simulator

        drv.sim = Simulator(AesAcceleratorProtected(), backend=backend,
                            lanes=lanes, tag_tracking=True, lattice=LATTICE)
    plan = drv.sim.tag_plan
    with CoverageCollector(drv.sim) as col:
        _drive_workload(drv, users)
    cmap = col.map

    if with_fault_arm:
        # over-taint the very first pipeline stage: every declared sink
        # downstream must scream, arming the flow sites end to end
        target = "aes.pipe.sa1.data_r__conf"
        fdrv = AcceleratorDriver(AesAcceleratorProtected(), backend=backend,
                                 tag_tracking=True, lattice=LATTICE,
                                 fault_targets=[target])
        fdrv.sim.load_fault_plan(FaultPlan([
            Fault(target, FaultKind.STUCK_AT_1, 0xF, cycle=8, duration=40)]))
        with CoverageCollector(fdrv.sim) as fcol:
            _drive_workload(fdrv, users)
        cmap.merge(fcol.map)

    census = {
        "shadow_nets": [(plane, orig, sh.path)
                        for plane, orig, sh in plan.shadow_nets()],
        "sites": plan.site_census(),
        "principals": list(plan.lattice.principals),
    }
    return cmap, census


# -- analysis ----------------------------------------------------------------------

def _plane_structural(cmap: CoverageMap) -> dict:
    stats = cmap.toggle_stats()
    frac = (stats["toggled_bits"] / stats["bits"]) if stats["bits"] else 1.0
    dead = sorted(p for p, s in cmap.signals.items()
                  if not (s["rise"] | s["fall"]))
    mems = {}
    for p, m in sorted(cmap.mems.items()):
        mems[p] = {
            "depth": m["depth"],
            "written_addrs": bin(m["written"]).count("1"),
            "read_addrs": bin(m["read"]).count("1"),
            "read_observed": m["read_observed"],
        }
    return {"fraction": frac, **stats, "mems": mems,
            "never_toggled": dead}


def _plane_taint(cmap: CoverageMap, census: dict) -> dict:
    principals = census["principals"]
    per_principal = {p: 0 for p in principals}
    tainted = 0
    never = []
    planes = {"conf": 0, "integ": 0}
    for plane, _orig, shadow_path in census["shadow_nets"]:
        ever = cmap.signals.get(shadow_path, {}).get("ever", 0)
        if ever:
            tainted += 1
            planes[plane] += 1
            for i, p in enumerate(principals):
                if ever & (1 << i):
                    per_principal[p] += 1
        else:
            never.append(shadow_path)
    total = len(census["shadow_nets"])
    return {
        "shadow_nets": total,
        "tainted": tainted,
        "fraction": (tainted / total) if total else 1.0,
        "by_plane": planes,
        "per_principal": per_principal,
        "never_tainted": sorted(never),
    }


def _plane_enforcement(cmap: CoverageMap, census: dict) -> dict:
    guard_paths = sorted(p for p in cmap.signals if enforcement_net(p))
    stats = cmap.toggle_stats(guard_paths)
    frac = (stats["toggled_bits"] / stats["bits"]) if stats["bits"] else 1.0
    dead_guards = sorted(p for p in guard_paths
                         if not (cmap.signals[p]["rise"]
                                 | cmap.signals[p]["fall"]))
    armed = 0
    never_armed = []
    for site in census["sites"]:
        ever = (cmap.signals.get(site["now"], {}).get("ever", 0)
                | cmap.signals.get(site["sticky"], {}).get("ever", 0))
        if ever:
            armed += 1
        else:
            never_armed.append(site)
    nsites = len(census["sites"])
    return {
        "guard_nets": len(guard_paths),
        "guard_toggle_fraction": frac,
        "guard_bits": stats["bits"],
        "guard_toggled_bits": stats["toggled_bits"],
        "never_toggled_guards": dead_guards,
        "sites": nsites,
        "sites_armed": armed,
        "sites_armed_fraction": (armed / nsites) if nsites else 1.0,
        "never_armed_sites": never_armed,
    }


def _plane_campaign(seed: int, smoke: bool, with_faults: bool) -> dict:
    from ..faults.campaign import (
        coverage_scenarios as fault_rows,
        fault_coverage,
        protected_fault_scenarios,
        run_paired_fault_campaign,
    )
    from .flows import coverage_scenarios as flow_rows
    from .leakage import coverage_scenarios as leak_rows
    from .power import coverage_scenarios as power_rows

    scenarios = protected_fault_scenarios(seed, smoke=smoke,
                                          shadow_tags=True)
    fc = fault_coverage(scenarios, shadow_tags=True)
    outcome_matrix: Dict[str, Dict[str, int]] = {}
    if with_faults:
        paired = run_paired_fault_campaign(seed=seed, smoke=True,
                                           shadow_tags=False)
        for name, rep in (("protected", paired.protected),
                          ("baseline", paired.baseline)):
            row: Dict[str, int] = {}
            for oc in rep.outcomes:
                row[oc.outcome] = row.get(oc.outcome, 0) + 1
            outcome_matrix[name] = row
    matrix = leak_rows() + power_rows() + flow_rows() + fault_rows()
    planes_hit: Dict[str, List[str]] = {}
    for row in matrix:
        for plane in row["planes"]:
            planes_hit.setdefault(plane, []).append(
                f"{row['gate']}:{row['scenario']}")
    return {
        "fault_sites": fc["sites"],
        "fault_injected": fc["injected"],
        "fraction": fc["fraction"],
        "fault_families": fc["families"],
        "never_injected": fc["holes"],
        "outcome_matrix": outcome_matrix,
        "scenario_matrix": matrix,
        "planes_exercised": {p: sorted(set(v))
                             for p, v in sorted(planes_hit.items())},
    }


# -- the report --------------------------------------------------------------------

class CoverageReport:
    """The gate verdict: per-plane summaries, thresholds, ranked holes."""

    def __init__(self, seed: int, backends: List[str],
                 fingerprints: Dict[str, str], consistent: bool,
                 merged: CoverageMap, planes: dict,
                 cumulative: Optional[dict] = None):
        self.seed = seed
        self.backends = backends
        self.fingerprints = fingerprints
        self.consistent = consistent
        self.map = merged
        self.planes = planes
        self.cumulative = cumulative

    def verdicts(self) -> Dict[str, dict]:
        p = self.planes
        checks = {
            "structural_toggle": p["structural"]["fraction"],
            "enforcement_toggle":
                p["enforcement"]["guard_toggle_fraction"],
            "taint": p["taint"]["fraction"],
            "sites_armed": p["enforcement"]["sites_armed_fraction"],
            "fault_injected": p["campaign"]["fraction"],
        }
        return {name: {"value": round(val, 4),
                       "threshold": THRESHOLDS[name],
                       "ok": val >= THRESHOLDS[name]}
                for name, val in checks.items()}

    def holes(self) -> List[dict]:
        """Every hole, ranked most-security-relevant first."""
        out: List[dict] = []
        for site in self.planes["enforcement"]["never_armed_sites"]:
            out.append({"plane": "enforcement", "kind": "never_armed_site",
                        "name": site["path"], "detail": site["kind"]})
        for p in self.planes["enforcement"]["never_toggled_guards"]:
            out.append({"plane": "enforcement", "kind": "never_toggled_guard",
                        "name": p, "detail": ""})
        for p in self.planes["taint"]["never_tainted"]:
            out.append({"plane": "taint", "kind": "never_tainted_net",
                        "name": p, "detail": ""})
        for h in self.planes["campaign"]["never_injected"]:
            out.append({"plane": "campaign", "kind": "never_injected_site",
                        "name": h["site"], "detail": h["family"]})
        for p in self.planes["structural"]["never_toggled"]:
            out.append({"plane": "structural", "kind": "never_toggled_net",
                        "name": p, "detail": ""})
        return out

    @property
    def ok(self) -> bool:
        return self.consistent and all(v["ok"]
                                       for v in self.verdicts().values())

    def to_dict(self, holes_limit: int = 50) -> dict:
        holes = self.holes()
        d = {
            "ok": self.ok,
            "seed": self.seed,
            "backends": self.backends,
            "fingerprints": self.fingerprints,
            "consistent": self.consistent,
            "cycles": self.map.cycles,
            "verdicts": self.verdicts(),
            "planes": {
                "structural": {k: v for k, v in
                               self.planes["structural"].items()
                               if k != "never_toggled"},
                "taint": self.planes["taint"],
                "enforcement": self.planes["enforcement"],
                "campaign": {k: v for k, v in
                             self.planes["campaign"].items()
                             if k != "scenario_matrix"},
            },
            "holes": holes[:holes_limit],
            "holes_total": len(holes),
        }
        if self.cumulative is not None:
            d["cumulative"] = self.cumulative
        return d

    def render(self) -> str:
        v = self.verdicts()
        holes = self.holes()
        lines = [
            f"coverage observatory (seed={self.seed}, "
            f"backends={','.join(self.backends)}, cycles={self.map.cycles})",
            f"cross-backend maps bit-identical: {self.consistent} "
            f"({' '.join(sorted(set(self.fingerprints.values())))})",
        ]
        for name, ver in v.items():
            mark = "ok " if ver["ok"] else "LOW"
            lines.append(f"  [{mark}] {name:20s} {ver['value']:.3f} "
                         f"(>= {ver['threshold']:.2f})")
        st = self.planes["structural"]
        lines.append(f"  structural: {st['toggled_bits']}/{st['bits']} bits "
                     f"toggled over {st['nets']} nets "
                     f"({st['dead_nets']} silent)")
        tp = self.planes["taint"]
        lines.append(f"  taint: {tp['tainted']}/{tp['shadow_nets']} shadow "
                     f"nets carried taint "
                     f"(per principal: {tp['per_principal']})")
        en = self.planes["enforcement"]
        lines.append(f"  enforcement: {en['sites_armed']}/{en['sites']} "
                     f"sites armed; guard toggle "
                     f"{en['guard_toggle_fraction']:.3f} over "
                     f"{en['guard_nets']} nets")
        ca = self.planes["campaign"]
        lines.append(f"  campaign: {ca['fault_injected']}/"
                     f"{ca['fault_sites']} fault sites injected")
        lines.append(f"  holes: {len(holes)} total; top:")
        for h in holes[:8]:
            lines.append(f"    - [{h['plane']}] {h['kind']}: {h['name']}"
                         + (f" ({h['detail']})" if h["detail"] else ""))
        if self.cumulative is not None:
            lines.append(f"  ledger: {self.cumulative['entries']} entries, "
                         f"cumulative toggle "
                         f"{self.cumulative['structural_toggle']:.3f}")
        lines.append(f"VERDICT: {'PASS' if self.ok else 'FAIL'}")
        return "\n".join(lines)

    def render_md(self) -> str:
        v = self.verdicts()
        lines = [
            "# Coverage observatory",
            "",
            f"- seed: `{self.seed}`  backends: "
            f"`{', '.join(self.backends)}`  cycles: {self.map.cycles}",
            f"- cross-backend maps bit-identical: **{self.consistent}**",
            "",
            "| plane check | value | threshold | verdict |",
            "|---|---|---|---|",
        ]
        for name, ver in v.items():
            lines.append(f"| {name} | {ver['value']:.3f} | "
                         f">= {ver['threshold']:.2f} | "
                         f"{'pass' if ver['ok'] else '**FAIL**'} |")
        lines += ["", "## Ranked holes", "",
                  "| plane | kind | net / site |", "|---|---|---|"]
        for h in self.holes()[:25]:
            lines.append(f"| {h['plane']} | {h['kind']} | `{h['name']}` |")
        lines += ["", f"**VERDICT: {'PASS' if self.ok else 'FAIL'}**", ""]
        return "\n".join(lines)


# -- the ledger --------------------------------------------------------------------

def append_ledger(path: str, cmap: CoverageMap, summary: dict) -> None:
    """Append one run's map + summary to the append-only JSONL ledger."""
    entry = {"summary": summary, "map": cmap.to_dict()}
    with open(path, "a") as f:
        f.write(json.dumps(entry, sort_keys=True) + "\n")


def load_ledger(path: str) -> Tuple[int, CoverageMap]:
    """(entry count, union of every ledger entry's map)."""
    merged = CoverageMap()
    count = 0
    if not os.path.exists(path):
        return 0, merged
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            entry = json.loads(line)
            merged.merge(CoverageMap.from_dict(entry["map"]))
            count += 1
    return count, merged


# -- the campaign ------------------------------------------------------------------

def run_coverage_campaign(backends: Sequence[str] = ("compiled",),
                          seed: int = 2026,
                          lanes: int = 2,
                          smoke: bool = False,
                          with_faults: bool = True,
                          ledger: Optional[str] = None,
                          ) -> CoverageReport:
    """Collect on every backend, check bit-identity, analyse, gate.

    The campaign-plane fault census always uses the *smoke* scenario
    sample: its never-injected diff is the honest account of what a
    smoke CI run leaves untested (the full list still leaves the
    datapath/shadow tails unsampled, so holes exist either way).
    ``smoke`` skips the paired fault outcome matrix but keeps both
    collection phases, so a smoke run still judges every threshold
    honestly.
    """
    maps: Dict[str, CoverageMap] = {}
    fingerprints: Dict[str, str] = {}
    census = None
    for be in backends:
        cmap, census = run_coverage_collection(
            backend=be, lanes=lanes if be == "batched" else 1)
        maps[be] = cmap
        fingerprints[be] = cmap.fingerprint()
    consistent = len(set(fingerprints.values())) == 1
    merged = CoverageMap()
    for cmap in maps.values():
        merged.merge(cmap)

    assert census is not None
    planes = {
        "structural": _plane_structural(merged),
        "taint": _plane_taint(merged, census),
        "enforcement": _plane_enforcement(merged, census),
        "campaign": _plane_campaign(seed, smoke=True,
                                    with_faults=with_faults and not smoke),
    }

    cumulative = None
    if ledger:
        entries, union = load_ledger(ledger)
        union.merge(merged)
        stats = union.toggle_stats()
        cumulative = {
            "entries": entries + 1,
            "structural_toggle": (stats["toggled_bits"] / stats["bits"])
            if stats["bits"] else 1.0,
        }

    report = CoverageReport(seed, list(backends), fingerprints, consistent,
                            merged, planes, cumulative)
    if ledger:
        append_ledger(ledger, merged, {
            "seed": seed, "backends": list(backends),
            "ok": report.ok, "verdicts": report.verdicts()})
    return report


# -- CLI ---------------------------------------------------------------------------

def cmd_obs_coverage(args) -> int:
    """Implementation of ``python -m repro obs coverage``."""
    import sys

    from ..gate import gate_epilogue

    if args.backend == "all":
        backends = ["interp", "compiled"]
        if _np is not None:
            backends.append("batched")
    else:
        if args.backend == "batched" and _np is None:
            print("batched backend needs numpy", file=sys.stderr)
            return 2
        backends = [args.backend]
    report = run_coverage_campaign(
        backends=backends, seed=args.seed, lanes=args.lanes,
        smoke=args.smoke, with_faults=not args.no_faults,
        ledger=args.ledger)
    payload = report.to_dict()
    return gate_epilogue(
        args, ok=report.ok, payload=payload, render=report.render,
        artifacts={"coverage_report.json": payload,
                   "coverage_report.md": report.render_md,
                   "coverage_map.json": report.map.to_dict})
