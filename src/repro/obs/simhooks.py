"""Simulator-level telemetry: cycles/s, compile-cache stats, lane utilization.

The three backends (interp, compiled, batched) expose heterogeneous
internals; this module flattens them into one uniform metric surface so
dashboards and the ``python -m repro obs`` report never special-case a
backend:

* ``sim_cycles_total{backend=...}`` / ``sim_wall_seconds`` /
  ``sim_cycles_per_second`` / ``sim_lane_cycles_per_second`` — from the
  per-simulator :class:`~repro.hdl.sim.engine.SimStats` accumulated
  while telemetry is enabled;
* ``sim_compile_cache_{entries,hits,misses}{backend=...}`` — the
  fingerprint-keyed codegen caches of the compiled and batched backends
  (the interp backend has no codegen; it reports zeros so the key set
  stays identical);
* ``sim_lanes`` / ``sim_lane_utilization`` — batched backend only: the
  fraction of lanes holding a nonzero value on a chosen "active" signal.
"""

from __future__ import annotations

from typing import Dict, Optional

#: Uniform zero block for backends without a codegen cache.
_NO_CACHE = {"entries": 0, "hits": 0, "misses": 0}


def compile_cache_stats() -> Dict[str, Dict[str, int]]:
    """Hit/miss/entry counts of every backend's compile cache, uniformly.

    Keys are backend names; every value has the same three fields, so
    the metrics layer reports the compiled and batched caches
    identically (the interp backend reports zeros).
    """
    from ..hdl.sim import compiler

    out = {"interp": dict(_NO_CACHE),
           "compiled": compiler.compile_cache_stats()}
    try:
        from ..hdl.sim import batched

        out["batched"] = batched.batch_cache_stats()
    except ImportError:  # pragma: no cover - numpy is a test extra
        out["batched"] = dict(_NO_CACHE)
    return out


def clear_compile_caches() -> None:
    """Drop both codegen caches and reset their counters."""
    from ..hdl.sim import compiler

    compiler.clear_compile_cache()
    try:
        from ..hdl.sim import batched

        batched.clear_batch_cache()
    except ImportError:  # pragma: no cover
        pass


def sim_stats(sim) -> Dict[str, object]:
    """Flat stats dict for one simulator (any backend)."""
    stats = getattr(sim, "stats", None)
    wall = getattr(stats, "wall_seconds", 0.0)
    timed = getattr(stats, "timed_cycles", 0)
    lanes = getattr(sim, "lanes", 1)
    cps = (timed / wall) if wall > 0 else 0.0
    return {
        "backend": getattr(sim, "backend_name", "unknown"),
        "lanes": lanes,
        "cycles": sim.cycle,
        "timed_cycles": timed,
        "wall_seconds": wall,
        "cycles_per_second": cps,
        "lane_cycles_per_second": cps * lanes,
    }


def lane_utilization(sim, active_signal) -> Optional[float]:
    """Fraction of batched lanes with ``active_signal`` nonzero.

    Returns None for non-batched simulators (there is no lane axis).
    ``sim`` may be a :class:`~repro.hdl.sim.Simulator` with
    ``backend="batched"`` or a raw ``BatchSimulator``.
    """
    bs = getattr(sim, "lanes_sim", None)
    if bs is None and hasattr(sim, "peek_all"):
        bs = sim
    if bs is None:
        return None
    values = bs.peek_all(active_signal)
    if not values:
        return 0.0
    return sum(1 for v in values if v) / len(values)


def publish_sim_metrics(sim, registry, active_signal=None) -> None:
    """Publish one simulator's stats into ``registry`` as gauges."""
    info = sim_stats(sim)
    backend = str(info["backend"])
    lanes = int(info["lanes"])  # type: ignore[arg-type]

    g = registry.gauge
    labels = {"backend": backend, "lanes": str(lanes)}
    g("sim_cycles_total", "cycles simulated", ("backend", "lanes")).set(
        float(info["cycles"]), **labels)
    g("sim_wall_seconds", "wall time spent inside step() while telemetry "
      "was enabled", ("backend", "lanes")).set(
        float(info["wall_seconds"]), **labels)
    g("sim_cycles_per_second", "simulated cycles per wall second",
      ("backend", "lanes")).set(float(info["cycles_per_second"]), **labels)
    g("sim_lane_cycles_per_second", "cycles x lanes per wall second",
      ("backend", "lanes")).set(
        float(info["lane_cycles_per_second"]), **labels)

    for be, stats in compile_cache_stats().items():
        for field in ("entries", "hits", "misses"):
            g(f"sim_compile_cache_{field}",
              "fingerprint-keyed codegen cache", ("backend",)).set(
                float(stats[field]), backend=be)

    if active_signal is not None:
        util = lane_utilization(sim, active_signal)
        if util is not None:
            g("sim_lane_utilization",
              "fraction of batched lanes active", ("backend", "lanes")).set(
                util, **labels)
