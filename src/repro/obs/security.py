"""Security-event audit stream.

Runtime IFC work (PAGURUS, dynamic IFT accelerators) treats enforcement
actions as first-class observables: every tag-check denial, label-aware
stall, suppressed release, and declassification is *evidence* that the
mechanism fired, and the evidence should be machine-readable.  This
module provides:

* :class:`SecurityEventLog` — an append-only stream of typed events with
  per-kind counts and a JSON-lines exporter;
* :class:`SecurityProbe` — a simulator watcher that samples the
  protected accelerator's enforcement signals every cycle and emits one
  event per enforcement action.

Event kinds emitted by the probe (all carry ``cycle``):

=====================  ========================================================
``stall_granted``       label-aware stall granted (Fig. 8 meet check passed)
``stall_denied``        stall requested but denied by the meet check
``declassification``    nonmalleable release of ciphertext at the pipeline exit
``suppressed_release``  release suppressed (e.g. master-key misuse, §3.2.2)
``tag_check_denial``    scratchpad/config write blocked by a tag check (Fig. 5)
``debug_read_denied``   debug trace readout denied by the reader's label
``output_drop``         holding-buffer slot full — requester's own block dropped
``output_hold``         a principal's holding-buffer region reached capacity
=====================  ========================================================

Software layers add their own kinds: ``ifc_check`` (static checker
verdicts), ``glift_violation`` / ``label_violation`` (dynamic trackers),
``cross_user_delivery`` (the SoC harness observing the baseline's
plaintext disclosure), ``request_dropped`` (availability).
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional


class SecurityEvent:
    """One enforcement observation."""

    __slots__ = ("kind", "cycle", "source", "detail")

    def __init__(self, kind: str, cycle: Optional[int], source: str,
                 detail: dict):
        self.kind = kind
        self.cycle = cycle
        self.source = source
        self.detail = detail

    def to_dict(self) -> dict:
        out = {"kind": self.kind, "cycle": self.cycle, "source": self.source}
        out.update(self.detail)
        return out

    def __repr__(self) -> str:
        return f"SecurityEvent({self.kind!r}, cycle={self.cycle}, source={self.source!r})"


class SecurityEventLog:
    """Append-only stream of :class:`SecurityEvent` with per-kind counts."""

    def __init__(self):
        self.events: List[SecurityEvent] = []
        self._counts: Dict[str, int] = {}

    def emit(self, kind: str, cycle: Optional[int] = None, source: str = "",
             **detail) -> SecurityEvent:
        ev = SecurityEvent(kind, cycle, source, detail)
        self.events.append(ev)
        self._counts[kind] = self._counts.get(kind, 0) + 1
        return ev

    def count(self, kind: Optional[str] = None) -> int:
        if kind is None:
            return len(self.events)
        return self._counts.get(kind, 0)

    def counts(self) -> Dict[str, int]:
        return dict(sorted(self._counts.items()))

    def filter(self, kind: str) -> List[SecurityEvent]:
        return [e for e in self.events if e.kind == kind]

    def clear(self) -> None:
        self.events.clear()
        self._counts.clear()

    def to_jsonl(self) -> str:
        lines = [json.dumps(e.to_dict(), sort_keys=True) for e in self.events]
        return "\n".join(lines) + ("\n" if lines else "")

    def write_jsonl(self, path: str) -> None:
        with open(path, "w") as f:
            f.write(self.to_jsonl())


class NullSecurityEventLog(SecurityEventLog):
    """Event log that drops everything (disabled fast path)."""

    _NULL_EVENT = SecurityEvent("null", None, "", {})

    def emit(self, kind, cycle=None, source="", **detail) -> SecurityEvent:
        return self._NULL_EVENT


#: (attribute-suffix under the accelerator top, event kind, trigger mode)
#: trigger modes: "edge" — emit on 0→1 transition; "advance" — emit on the
#: cycle the pipeline actually advances (each high cycle is a distinct
#: enforcement action, but a frozen pipeline must not double-count).
_PROBE_POINTS = (
    ("stallctl.stall", "stall_granted", "edge"),
    ("declass.suppressed", "suppressed_release", "advance"),
    ("scratchpad.wr_blocked", "tag_check_denial", "advance"),
    ("cfg.wr_blocked", "tag_check_denial", "advance"),
    ("debug.rdenied", "debug_read_denied", "edge"),
    ("outbuf.push_blocked", "output_drop", "advance"),
    ("outbuf.full", "output_hold", "edge"),
)


class SecurityProbe:
    """Per-cycle watcher over the protected accelerator's enforcement points.

    Attaches to a :class:`~repro.hdl.sim.Simulator` (any backend; on the
    batched backend lane 0 is observed) and emits into a
    :class:`SecurityEventLog`.  Signals that the design does not have
    (e.g. on the unprotected baseline) are skipped, so the probe can be
    pointed at either accelerator.
    """

    def __init__(self, sim, log: SecurityEventLog, top: str = "aes",
                 metrics=None):
        self.sim = sim
        self.log = log
        self.top = top
        self._counter = (metrics.counter(
            "security_events_total",
            "enforcement events observed by the security probe",
            labelnames=("kind",),
        ) if metrics is not None else None)

        def resolve(suffix: str):
            try:
                return sim._resolve(f"{top}.{suffix}")
            except KeyError:
                return None

        self._points = []
        for suffix, kind, mode in _PROBE_POINTS:
            sig = resolve(suffix)
            if sig is not None:
                self._points.append((sig, suffix.split(".")[0], kind, mode))
        self._advance = resolve("advance")
        # declassification: an encrypt release leaving the declassifier
        self._dc_valid = resolve("declass.out_valid")
        self._dc_op = resolve("declass.in_op")
        self._dc_ok = resolve("declass.declass_ok")
        self._dc_tag = resolve("declass.in_tag")
        # denied stall: requested but the meet check said no
        self._st_req = resolve("stallctl.stall_req")
        self._st_allowed = resolve("stallctl.allowed")
        self._user = resolve("in_user")
        self._reader = resolve("rd_user")
        self._prev: Dict[object, int] = {}
        sim.add_watcher(self._on_cycle)

    def detach(self) -> None:
        self.sim.remove_watcher(self._on_cycle)

    def _emit(self, kind: str, cycle: int, source: str, **detail) -> None:
        self.log.emit(kind, cycle=cycle, source=source, **detail)
        if self._counter is not None:
            self._counter.inc(kind=kind)

    def _on_cycle(self, sim) -> None:
        peek = sim.peek
        cycle = sim.cycle
        advance = peek(self._advance) if self._advance is not None else 1

        for sig, source, kind, mode in self._points:
            value = peek(sig)
            if mode == "edge":
                fired = value and not self._prev.get(sig, 0)
                self._prev[sig] = value
            else:
                fired = value and advance
            if fired:
                detail = {}
                if self._user is not None and kind in (
                        "tag_check_denial", "output_drop"):
                    detail["user_tag"] = peek(self._user)
                if self._reader is not None and kind == "debug_read_denied":
                    detail["reader_tag"] = peek(self._reader)
                self._emit(kind, cycle, source, **detail)

        # declassification / denied stall need multi-signal predicates
        if self._dc_valid is not None and advance and peek(self._dc_valid):
            if self._dc_op is not None and peek(self._dc_op) == 0:
                detail = {"ok": bool(peek(self._dc_ok))
                          if self._dc_ok is not None else True}
                if self._dc_tag is not None:
                    detail["tag"] = peek(self._dc_tag)
                self._emit("declassification", cycle, "declass", **detail)

        if self._st_req is not None and self._st_allowed is not None:
            denied = peek(self._st_req) and not peek(self._st_allowed)
            if denied and not self._prev.get("stall_denied", 0):
                self._emit("stall_denied", cycle, "stallctl")
            self._prev["stall_denied"] = denied
