"""Statistical timing-channel detection over telemetry observables.

The telemetry layer *counts* enforcement events; this module measures
whether observable timing actually carries secret-dependent information,
following the fixed-vs-random statistical flow of timing-SCA
verification tools (PASCAL, TVLA): collect an observable (request
latency, queue delay, probe latency) under two secret-dependent
conditions, then test the two sample populations with

* **Welch's t-test** — flags a mean shift without assuming equal
  variances; |t| above :data:`T_THRESHOLD` (the TVLA 4.5 convention)
  marks a leak;
* **binned mutual information** — a direct estimate, in bits, of how
  much the observable reveals about the condition; above
  :data:`MI_THRESHOLD` marks a leak.

Both must fire for a ``leaky`` verdict, so a pure mean shift with heavy
overlap (or a tiny-MI artefact of binning) does not false-positive.

Campaigns
---------
:func:`run_stall_channel_campaign` replays the §3.1 covert-channel
scenario (``examples/covert_channel_demo.py``): per trial a seeded
secret bit decides whether Alice's reader withholds readiness while
Eve times a probe encryption.  On the baseline the shared pipeline
stalls and Eve's latency shifts; on the protected design the Fig. 8
meet check diverts Alice's blocks to her holding-buffer slots and the
distributions coincide.  Seeded RNG drives both the secret bits and the
nuisance jitter (Alice's flood depth), so verdicts are deterministic
per (seed, backend) — CI-safe.

:func:`run_soc_campaign` runs the same condition through the full
:class:`~repro.soc.system.SoCSystem` harness: paired runs with and
without a slow co-tenant reader (``stutter_users={"alice"}``), with the
victim's request-latency and queue-delay samples taken from the
delivered request records (the arrival/service spans the tracer sees).

:func:`run_paired_campaign` runs baseline and protected back-to-back
and renders the comparison the CI smoke checks: baseline flagged,
protected clean.
"""

from __future__ import annotations

import json
import math
import random
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

#: TVLA-style significance threshold on |t|.
T_THRESHOLD = 4.5
#: Minimum mutual information (bits) to call an observable leaky.
MI_THRESHOLD = 0.1
#: Cap reported |t| when both groups have zero variance but differ in
#: mean (the sampling distribution is degenerate; the channel is as
#: significant as it gets).
T_CAP = 1e6


# -- statistics ----------------------------------------------------------------

class TTestResult:
    """Welch's two-sample t-test outcome."""

    __slots__ = ("t", "df", "n0", "n1", "mean0", "mean1", "var0", "var1")

    def __init__(self, t: float, df: float, n0: int, n1: int,
                 mean0: float, mean1: float, var0: float, var1: float):
        self.t = t
        self.df = df
        self.n0 = n0
        self.n1 = n1
        self.mean0 = mean0
        self.mean1 = mean1
        self.var0 = var0
        self.var1 = var1

    def significant(self, threshold: float = T_THRESHOLD) -> bool:
        return abs(self.t) > threshold

    def to_dict(self) -> dict:
        return {"t": self.t, "df": self.df, "n0": self.n0, "n1": self.n1,
                "mean0": self.mean0, "mean1": self.mean1,
                "var0": self.var0, "var1": self.var1}

    def __repr__(self) -> str:
        return (f"TTestResult(t={self.t:.2f}, df={self.df:.1f}, "
                f"n={self.n0}+{self.n1})")


def _mean_var(xs: Sequence[float]) -> Tuple[float, float]:
    n = len(xs)
    mean = sum(xs) / n
    if n < 2:
        return mean, 0.0
    return mean, sum((x - mean) ** 2 for x in xs) / (n - 1)


def welch_t_test(group0: Sequence[float],
                 group1: Sequence[float]) -> TTestResult:
    """Welch's unequal-variances t-test between two sample groups.

    Degenerate cases (tiny groups, zero variance) are resolved
    conservatively: equal means report ``t = 0``; differing means with
    zero pooled variance report ``t = ±T_CAP`` (a deterministic
    simulator can produce perfectly separated constant groups).
    """
    if not group0 or not group1:
        raise ValueError("both groups need at least one sample")
    m0, v0 = _mean_var(group0)
    m1, v1 = _mean_var(group1)
    n0, n1 = len(group0), len(group1)
    se2 = v0 / n0 + v1 / n1
    diff = m1 - m0
    if se2 <= 0.0:
        t = 0.0 if diff == 0.0 else math.copysign(T_CAP, diff)
        return TTestResult(t, float(max(n0 + n1 - 2, 1)), n0, n1,
                           m0, m1, v0, v1)
    t = diff / math.sqrt(se2)
    # Welch–Satterthwaite degrees of freedom
    num = se2 ** 2
    den = 0.0
    if n0 > 1:
        den += (v0 / n0) ** 2 / (n0 - 1)
    if n1 > 1:
        den += (v1 / n1) ** 2 / (n1 - 1)
    df = num / den if den > 0 else float(max(n0 + n1 - 2, 1))
    return TTestResult(t, df, n0, n1, m0, m1, v0, v1)


def binned_mutual_information(values: Sequence[float],
                              conditions: Sequence[int],
                              bins: int = 8) -> float:
    """Mutual information (bits) between a binary condition and a
    continuous observable, via equal-width binning of the observable.

    A plug-in estimate sized for campaign sample counts (tens to
    hundreds): coarse bins keep the estimator's positive bias small, and
    the detector pairs it with the t-test rather than trusting small MI
    values alone.
    """
    if len(values) != len(conditions):
        raise ValueError("values and conditions must have equal length")
    n = len(values)
    if n == 0:
        return 0.0
    lo, hi = min(values), max(values)
    if hi == lo:
        return 0.0  # constant observable reveals nothing
    width = (hi - lo) / bins

    def bin_of(v: float) -> int:
        return min(int((v - lo) / width), bins - 1)

    joint: Dict[Tuple[int, int], int] = {}
    pc: Dict[int, int] = {}
    pb: Dict[int, int] = {}
    for v, c in zip(values, conditions):
        b = bin_of(v)
        joint[(c, b)] = joint.get((c, b), 0) + 1
        pc[c] = pc.get(c, 0) + 1
        pb[b] = pb.get(b, 0) + 1
    mi = 0.0
    for (c, b), k in joint.items():
        p = k / n
        mi += p * math.log2(p * n * n / (pc[c] * pb[b]))
    return max(0.0, mi)


# -- observables and reports ----------------------------------------------------

class Observable:
    """Named stream of (condition, value) samples for one observable."""

    def __init__(self, name: str, unit: str = "cycles"):
        self.name = name
        self.unit = unit
        self.samples: List[Tuple[int, float]] = []

    def add(self, condition: int, value: float) -> None:
        self.samples.append((int(bool(condition)), float(value)))

    def extend(self, condition: int, values: Iterable[float]) -> None:
        for v in values:
            self.add(condition, v)

    def split(self) -> Tuple[List[float], List[float]]:
        g0 = [v for c, v in self.samples if c == 0]
        g1 = [v for c, v in self.samples if c == 1]
        return g0, g1

    def __len__(self) -> int:
        return len(self.samples)


class ObservableReport:
    """Leakage verdict for one observable."""

    def __init__(self, name: str, unit: str, ttest: TTestResult, mi: float,
                 t_threshold: float = T_THRESHOLD,
                 mi_threshold: float = MI_THRESHOLD):
        self.name = name
        self.unit = unit
        self.ttest = ttest
        self.mi = mi
        self.t_threshold = t_threshold
        self.mi_threshold = mi_threshold

    @property
    def leaky(self) -> bool:
        return (self.ttest.significant(self.t_threshold)
                and self.mi > self.mi_threshold)

    def to_dict(self) -> dict:
        return {"observable": self.name, "unit": self.unit,
                "t_test": self.ttest.to_dict(), "mi_bits": self.mi,
                "t_threshold": self.t_threshold,
                "mi_threshold": self.mi_threshold, "leaky": self.leaky}

    def __repr__(self) -> str:
        return (f"ObservableReport({self.name!r}, |t|={abs(self.ttest.t):.2f},"
                f" MI={self.mi:.3f}, leaky={self.leaky})")


def analyze(observable: Observable,
            t_threshold: float = T_THRESHOLD,
            mi_threshold: float = MI_THRESHOLD,
            bins: int = 8) -> ObservableReport:
    """Compute the per-observable statistics and verdict."""
    g0, g1 = observable.split()
    if not g0 or not g1:
        raise ValueError(
            f"observable {observable.name!r} needs samples under both "
            f"conditions (got {len(g0)} / {len(g1)})")
    values = [v for _, v in observable.samples]
    conditions = [c for c, _ in observable.samples]
    return ObservableReport(
        observable.name, observable.unit,
        welch_t_test(g0, g1),
        binned_mutual_information(values, conditions, bins=bins),
        t_threshold, mi_threshold)


class LeakageReport:
    """Campaign outcome for one design: a set of observable verdicts."""

    def __init__(self, design: str, scenario: str, seed: int, backend: str,
                 observables: List[ObservableReport]):
        self.design = design
        self.scenario = scenario
        self.seed = seed
        self.backend = backend
        self.observables = observables

    @property
    def leaky(self) -> bool:
        return any(o.leaky for o in self.observables)

    def observable(self, name: str) -> ObservableReport:
        for o in self.observables:
            if o.name == name:
                return o
        raise KeyError(name)

    def to_dict(self) -> dict:
        return {"design": self.design, "scenario": self.scenario,
                "seed": self.seed, "backend": self.backend,
                "leaky": self.leaky,
                "observables": [o.to_dict() for o in self.observables]}

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    def render(self) -> str:
        lines = [f"{self.design} ({self.scenario}, backend={self.backend}, "
                 f"seed={self.seed}):"]
        for o in self.observables:
            tt = o.ttest
            verdict = "LEAK" if o.leaky else "clean"
            lines.append(
                f"  {o.name:18s} t={tt.t:+9.2f} (|t|>{o.t_threshold:.1f}) "
                f"MI={o.mi:.3f} bits (> {o.mi_threshold:.2f})  "
                f"n={tt.n0}+{tt.n1}  -> {verdict}")
        return "\n".join(lines)


# -- the stall-channel campaign (covert_channel_demo scenario) -------------------

def run_stall_channel_campaign(protected: bool,
                               trials: int = 12,
                               seed: int = 2026,
                               backend: str = "compiled",
                               stall_cycles: int = 16) -> LeakageReport:
    """Fixed-vs-random campaign over the §3.1 shared-pipeline channel.

    Per trial a seeded coin decides the secret condition (Alice's reader
    withholds readiness or not) and seeded jitter varies Alice's flood
    depth — the nuisance parameter both conditions share.  The observable
    is Eve's probe latency, issue to tagged response.
    """
    from ..attacks.timing_channel import setup_channel

    if trials < 4:
        raise ValueError("need at least 4 trials for a two-group test")
    drv, alice, eve = setup_channel(protected, backend=backend)
    rng = random.Random(seed)
    top, sim = drv.top, drv.sim
    eve_vouch = eve & 0xF
    probe = Observable("probe_latency")

    conditions = _balanced_bits(rng, trials)
    for condition in conditions:
        flood = rng.randint(10, 16)  # nuisance jitter, condition-independent
        for i in range(flood):
            drv.encrypt(alice, 1, 0xA11CE000 + i)
        drv.step(9)  # first of Alice's blocks reaches the pipeline exit

        probe_start = sim.cycle
        drv.encrypt(eve, 2, 0xE7E00001)
        found = None
        cycles = 0
        while found is None and cycles < 300:
            reader = alice if cycles % 2 == 0 else eve
            withhold = (bool(condition) and cycles < stall_cycles
                        and reader == alice)
            sim.poke(f"{top}.rd_user", reader)
            sim.poke(f"{top}.out_ready", 0 if withhold else 1)
            drv.step()
            cycles += 1
            for r in drv.take_responses():
                if (r.tag & 0xF) == eve_vouch:
                    found = r
        latency = (found.cycle - probe_start) if found else 300
        probe.add(condition, latency)

        # drain leftovers so the next trial starts clean
        sim.poke(f"{top}.rd_user", alice)
        sim.poke(f"{top}.out_ready", 1)
        drv.step(60)
        drv.take_responses()

    return LeakageReport(
        "protected" if protected else "baseline",
        "stall_channel", seed, backend, [analyze(probe)])


def _balanced_bits(rng: random.Random, trials: int) -> List[int]:
    """Seeded condition sequence with both conditions guaranteed present."""
    bits = [rng.randint(0, 1) for _ in range(trials)]
    if len(set(bits)) < 2:  # pathological seed: force a balanced tail
        bits[-1] = 1 - bits[0]
    return bits


# -- the SoC-harness campaign ----------------------------------------------------

def run_soc_campaign(protected: bool,
                     trials: int = 6,
                     seed: int = 2026,
                     backend: str = "compiled",
                     victim: str = "bob",
                     co_tenant: str = "alice",
                     victim_blocks: int = 4,
                     co_tenant_blocks: int = 10) -> LeakageReport:
    """Paired SoC runs: co-tenant reader slow (condition 1) vs prompt (0).

    Drives the full :class:`~repro.soc.system.SoCSystem` request path —
    per-user queues, round-robin issue, tagged delivery — and partitions
    the victim's request records (the same cycle stamps the tracer's
    arrival/service spans carry) by the co-tenant's reader behaviour.
    """
    from ..soc import SoCSystem
    from ..soc.requests import encrypt_stream, random_blocks

    if trials < 2:
        raise ValueError("need at least 2 trials (one per condition)")
    rng = random.Random(seed)
    latency = Observable("service_latency")
    queue_delay = Observable("queue_delay")

    conditions = _balanced_bits(rng, trials)
    for condition in conditions:
        block_seed = rng.getrandbits(32)
        soc = SoCSystem(
            protected=protected, backend=backend,
            reader_stutter=3 if condition else 0,
            stutter_users={co_tenant})
        soc.provision_keys()
        slots = {p.name: p.slot for p in soc.principals.values()
                 if p.slot is not None}
        soc.submit_all(encrypt_stream(
            co_tenant, slots[co_tenant],
            random_blocks(co_tenant_blocks, seed=block_seed)))
        soc.submit_all(encrypt_stream(
            victim, slots[victim],
            random_blocks(victim_blocks, seed=block_seed + 1)))
        soc.drain()
        latency.extend(condition,
                       soc.latency_samples().get(victim, ()))
        queue_delay.extend(condition,
                           soc.queue_delay_samples().get(victim, ()))

    return LeakageReport(
        "protected" if protected else "baseline",
        "soc_co_tenant", seed, backend,
        [analyze(latency), analyze(queue_delay)])


# -- paired campaigns and the CLI ------------------------------------------------

class PairedCampaignResult:
    """Baseline and protected reports for one scenario, side by side."""

    def __init__(self, baseline: LeakageReport, protected: LeakageReport):
        self.baseline = baseline
        self.protected = protected

    @property
    def ok(self) -> bool:
        """The paper's claim, as a CI verdict: the baseline's channel is
        detected and the protected design shows none."""
        return self.baseline.leaky and not self.protected.leaky

    def to_dict(self) -> dict:
        return {"ok": self.ok, "baseline": self.baseline.to_dict(),
                "protected": self.protected.to_dict()}

    def render(self) -> str:
        lines = ["=" * 70, "leakage campaign", "=" * 70,
                 self.baseline.render(), "", self.protected.render(), ""]
        if self.ok:
            lines.append("VERDICT: baseline timing channel detected; "
                         "protected design clean")
        else:
            lines.append("VERDICT: UNEXPECTED — baseline leaky="
                         f"{self.baseline.leaky}, protected leaky="
                         f"{self.protected.leaky}")
        return "\n".join(lines)


def run_paired_campaign(scenario: str = "stall",
                        trials: int = 12,
                        seed: int = 2026,
                        backend: str = "compiled",
                        stall_cycles: int = 16) -> PairedCampaignResult:
    """Run one scenario on both designs; see :class:`PairedCampaignResult`."""
    if scenario == "stall":
        run = lambda prot: run_stall_channel_campaign(  # noqa: E731
            prot, trials=trials, seed=seed, backend=backend,
            stall_cycles=stall_cycles)
    elif scenario == "soc":
        run = lambda prot: run_soc_campaign(  # noqa: E731
            prot, trials=max(2, trials // 2), seed=seed, backend=backend)
    else:
        raise ValueError(f"unknown scenario {scenario!r} "
                         "(choose 'stall' or 'soc')")
    return PairedCampaignResult(run(False), run(True))


def coverage_scenarios():
    """Coverage-observatory registration: which attribution planes the
    leakage gate's scenarios exercise (see ``repro.obs.coverage``)."""
    return [
        {"gate": "leakage", "scenario": "stall",
         "planes": ["control", "datapath"]},
        {"gate": "leakage", "scenario": "soc",
         "planes": ["control", "scratchpad", "datapath"]},
    ]


def cmd_obs_leakage(args) -> int:
    """Implementation of ``python -m repro obs leakage``."""
    from ..gate import gate_epilogue

    # 8 trials (4 per condition) is the smallest campaign whose
    # deterministic baseline separation clears the |t| > 4.5 threshold
    trials = 8 if args.demo else args.trials
    result = run_paired_campaign(
        scenario=args.scenario, trials=trials, seed=args.seed,
        backend=args.backend, stall_cycles=args.stall_cycles)
    payload = result.to_dict()
    return gate_epilogue(
        args, ok=result.ok, payload=payload, render=result.render,
        artifacts={"leakage_report.json": payload})
