"""Per-module simulation profiler: wall-time and toggle attribution.

Answers "where do simulated cycles go?" for any of the three backends
(interp / compiled / batched) without touching generated code: a
:class:`SimProfiler` attaches to a :class:`~repro.hdl.sim.Simulator` as
a watcher and, every ``sample_interval`` cycles, snapshots every signal
through the engine's bulk :meth:`~repro.hdl.sim.engine.Simulator.values`
primitive.  From the snapshots it derives

* **toggle activity** — per-net value-change counts, aggregated up the
  module hierarchy and bucketed into cycle windows (the switching
  heatmap);
* **wall-time attribution** — measured wall seconds across the profiled
  run, distributed over modules by each module's share of the netlist's
  expression-node evaluation cost (the same first-reached accounting
  the code generators use, so the estimate tracks what the backends
  actually execute).

Export formats, one per consumer:

* ``flamegraph.folded`` — folded stacks (``aes;pipe;s3 123``) for any
  flamegraph renderer;
* ``profile_trace.json`` — Chrome trace-event counters of per-window
  toggle activity by subsystem (load into chrome://tracing / Perfetto);
* ``toggle_heatmap.json`` — machine-readable per-net / per-module /
  per-window toggle *and* Hamming-distance data (the same per-window
  attribution format the power observatory consumes), the input for
  aiming the next perf PR.

A detached profiler costs nothing: it only exists while attached, and
the disabled-telemetry guard (``benchmarks/bench_obs_overhead.py``)
already pins the bare step path.
"""

from __future__ import annotations

import json
from time import perf_counter
from typing import Dict, List, Optional, Tuple

from ..hdl.nodes import walk


def module_of(path: str) -> str:
    """Owning module of a signal path (``aes.pipe.s3.state`` → ``aes.pipe.s3``)."""
    return path.rsplit(".", 1)[0] if "." in path else path


def subsystem_of(module_path: str, depth: int = 2) -> str:
    """Truncate a module path to its top ``depth`` components."""
    return ".".join(module_path.split(".")[:depth])


def signal_costs(netlist) -> Dict[object, int]:
    """Expression-node evaluation cost per signal, first-reached.

    Walks each driver / reg-next expression in evaluation order and
    charges every node to the first signal that reaches it — the same
    accounting the compiled backends use when they emit each shared node
    exactly once.  Inputs cost 0; registers get +1 for the commit.
    """
    seen: set = set()
    costs: Dict[object, int] = {}

    def charge(roots) -> int:
        fresh = 0
        for node in walk(roots):
            if id(node) not in seen:
                seen.add(id(node))
                fresh += 1
        return fresh

    for sig in netlist.inputs:
        costs[sig] = 0
    for sig in netlist.comb:
        costs[sig] = charge([netlist.drivers[sig]])
    for reg in netlist.regs:
        nxt = netlist.reg_next.get(reg)
        costs[reg] = (charge([nxt]) if nxt is not None else 0) + 1
    return costs


class ProfileReport:
    """Finished attribution: per-net, per-module, per-window."""

    def __init__(self, design: str, backend: str, sample_interval: int,
                 window: int, cycles_sampled: int, wall_seconds: float,
                 net_toggles: Dict[str, int],
                 module_stats: Dict[str, Dict[str, float]],
                 window_series: List[Tuple[int, Dict[str, int]]],
                 hamming_series: Optional[
                     List[Tuple[int, Dict[str, int]]]] = None):
        self.design = design
        self.backend = backend
        self.sample_interval = sample_interval
        self.window = window
        self.cycles_sampled = cycles_sampled
        self.wall_seconds = wall_seconds
        self.net_toggles = net_toggles
        self.module_stats = module_stats
        self.window_series = window_series
        self.hamming_series = hamming_series or []

    # -- folded-stack flamegraph ------------------------------------------------
    def folded_stacks(self) -> List[str]:
        """One line per module: ``root;child;leaf weight``.

        Weights are estimated self-microseconds (wall time × node-cost
        share); when no wall time was observed (e.g. a zero-step run)
        the raw node cost is used so the shape is still renderable.
        """
        wall_us = self.wall_seconds * 1e6
        total_cost = sum(m["node_cost"] for m in self.module_stats.values())
        lines = []
        for mod in sorted(self.module_stats):
            stats = self.module_stats[mod]
            cost = stats["node_cost"]
            if cost <= 0:
                continue
            if wall_us > 0 and total_cost > 0:
                weight = max(1, round(wall_us * cost / total_cost))
            else:
                weight = int(cost)
            lines.append(f"{mod.replace('.', ';')} {weight}")
        return lines

    def write_flamegraph(self, path: str) -> None:
        with open(path, "w") as f:
            f.write("\n".join(self.folded_stacks()) + "\n")

    # -- Chrome trace counters --------------------------------------------------
    def to_chrome_trace(self) -> dict:
        from .tracing import Tracer

        tracer = Tracer()
        tracer.name_track(0, f"profile:{self.design}")
        subsystems = sorted({s for _, counts in self.window_series
                             for s in counts})
        for start_cycle, counts in self.window_series:
            tracer.counter("toggle_activity",
                           {s: float(counts.get(s, 0)) for s in subsystems},
                           ts=start_cycle)
        return tracer.to_chrome_trace()

    def write_chrome_trace(self, path: str) -> None:
        with open(path, "w") as f:
            json.dump(self.to_chrome_trace(), f)

    # -- toggle heatmap ---------------------------------------------------------
    def to_heatmap(self) -> dict:
        return {
            "design": self.design,
            "backend": self.backend,
            "sample_interval": self.sample_interval,
            "window_cycles": self.window,
            "cycles_sampled": self.cycles_sampled,
            "wall_seconds": self.wall_seconds,
            "nets": dict(sorted(self.net_toggles.items())),
            "modules": {m: dict(s) for m, s in
                        sorted(self.module_stats.items())},
            # "hamming" rides along per window (bits flipped, where
            # "toggles" counts nets changed) so the profiler and the
            # power observatory share one attribution format; the
            # original keys are unchanged
            "windows": [{"start_cycle": start, "toggles": dict(counts),
                         "hamming": dict(hamming.get(start, {}))}
                        for hamming in (dict(self.hamming_series),)
                        for start, counts in self.window_series],
        }

    def write_heatmap(self, path: str) -> None:
        with open(path, "w") as f:
            json.dump(self.to_heatmap(), f, sort_keys=True)

    def write_all(self, out_dir: str) -> Dict[str, str]:
        import os

        os.makedirs(out_dir, exist_ok=True)
        paths = {
            "flamegraph": os.path.join(out_dir, "flamegraph.folded"),
            "profile_trace": os.path.join(out_dir, "profile_trace.json"),
            "toggle_heatmap": os.path.join(out_dir, "toggle_heatmap.json"),
        }
        self.write_flamegraph(paths["flamegraph"])
        self.write_chrome_trace(paths["profile_trace"])
        self.write_heatmap(paths["toggle_heatmap"])
        return paths

    # -- human-readable ---------------------------------------------------------
    def render(self, top: int = 8) -> str:
        lines = [f"profile: {self.design} (backend={self.backend}, "
                 f"{self.cycles_sampled} cycles sampled, "
                 f"{self.wall_seconds:.3f}s wall)"]
        by_wall = sorted(self.module_stats.items(),
                         key=lambda kv: kv[1]["est_wall_us"], reverse=True)
        lines.append(f"  {'module':34s} {'est wall':>10s} {'toggles':>9s} "
                     f"{'nets':>5s}")
        for mod, stats in by_wall[:top]:
            lines.append(f"  {mod:34s} {stats['est_wall_us']:8.0f}us "
                         f"{int(stats['toggles']):9d} "
                         f"{int(stats['signals']):5d}")
        hot = sorted(self.net_toggles.items(), key=lambda kv: kv[1],
                     reverse=True)[:top]
        lines.append("  hottest nets:")
        for path, n in hot:
            lines.append(f"    {path:40s} {n} toggles")
        return "\n".join(lines)


class SimProfiler:
    """Attach to a simulator; sample, attribute, report.

    ``sample_interval`` trades fidelity for speed (1 = every cycle);
    ``window`` is the heatmap bucket size in cycles.  Call
    :meth:`detach` (or use as a context manager) before building the
    :class:`ProfileReport` with :meth:`report`.
    """

    def __init__(self, sim, sample_interval: int = 1, window: int = 64):
        if sample_interval < 1:
            raise ValueError("sample_interval must be >= 1")
        self.sim = sim
        self.sample_interval = sample_interval
        self.window = window
        self.signals = sim.value_signals()
        self._paths = [s.path for s in self.signals]
        self._modules = [module_of(p) for p in self._paths]
        self._subsystems = [subsystem_of(m) for m in self._modules]
        self._costs = signal_costs(sim.netlist)
        self.toggles = [0] * len(self.signals)
        self.cycles_sampled = 0
        self.wall_seconds = 0.0
        self._windows: Dict[int, Dict[str, int]] = {}
        self._hwindows: Dict[int, Dict[str, int]] = {}
        self._prev: Optional[List[int]] = None
        self._last_ts: Optional[float] = None
        self._attached = True
        sim.add_watcher(self._on_cycle)

    def __enter__(self) -> "SimProfiler":
        return self

    def __exit__(self, *exc) -> bool:
        self.detach()
        return False

    def detach(self) -> None:
        if self._attached:
            self.sim.remove_watcher(self._on_cycle)
            self._attached = False
            self._last_ts = None

    # -- sampling ---------------------------------------------------------------
    def _on_cycle(self, sim) -> None:
        now = perf_counter()
        if self._last_ts is not None:
            # time since the previous sample point: the backend step plus
            # whatever harness work ran between cycles — the run as the
            # user experiences it
            self.wall_seconds += now - self._last_ts
        cycle = sim.cycle
        if cycle % self.sample_interval == 0:
            vals = sim.values()
            prev = self._prev
            if prev is not None:
                toggles = self.toggles
                subsystems = self._subsystems
                start = (cycle // self.window) * self.window
                wslot = self._windows.setdefault(start, {})
                hslot = self._hwindows.setdefault(start, {})
                for i, v in enumerate(vals):
                    if v != prev[i]:
                        toggles[i] += 1
                        group = subsystems[i]
                        wslot[group] = wslot.get(group, 0) + 1
                        hd = bin(v ^ prev[i]).count("1")
                        hslot[group] = hslot.get(group, 0) + hd
            self._prev = vals
            self.cycles_sampled += 1
        # exclude our own sampling cost from the attributed wall time
        self._last_ts = perf_counter()

    # -- reporting --------------------------------------------------------------
    def report(self) -> ProfileReport:
        module_stats: Dict[str, Dict[str, float]] = {}
        for i, sig in enumerate(self.signals):
            mod = self._modules[i]
            stats = module_stats.setdefault(
                mod, {"toggles": 0, "node_cost": 0, "signals": 0,
                      "est_wall_us": 0.0})
            stats["toggles"] += self.toggles[i]
            stats["node_cost"] += self._costs.get(sig, 0)
            stats["signals"] += 1

        total_cost = sum(m["node_cost"] for m in module_stats.values())
        wall_us = self.wall_seconds * 1e6
        if total_cost > 0:
            for stats in module_stats.values():
                stats["est_wall_us"] = wall_us * stats["node_cost"] / total_cost

        net_toggles = {self._paths[i]: n
                       for i, n in enumerate(self.toggles) if n}
        series = sorted(self._windows.items())
        return ProfileReport(
            design=self.sim.netlist.root.path,
            backend=self.sim.backend_name,
            sample_interval=self.sample_interval,
            window=self.window,
            cycles_sampled=self.cycles_sampled,
            wall_seconds=self.wall_seconds,
            net_toggles=net_toggles,
            module_stats=module_stats,
            window_series=series,
            hamming_series=sorted(self._hwindows.items()),
        )


def profile_workload(blocks_per_tenant: int = 8,
                     backend: str = "compiled",
                     protected: bool = True,
                     reader_stutter: int = 3,
                     seed: int = 2026,
                     sample_interval: int = 1,
                     window: int = 64) -> ProfileReport:
    """Profile the instrumented multi-tenant workload end to end."""
    from .report import run_instrumented_workload

    holder: Dict[str, SimProfiler] = {}

    def attach(soc) -> None:
        holder["prof"] = SimProfiler(soc.driver.sim,
                                     sample_interval=sample_interval,
                                     window=window)

    run_instrumented_workload(
        blocks_per_tenant=blocks_per_tenant, backend=backend,
        protected=protected, reader_stutter=reader_stutter, seed=seed,
        on_soc=attach)
    prof = holder["prof"]
    prof.detach()
    return prof.report()


def cmd_obs_profile(args) -> int:
    """Implementation of ``python -m repro obs profile``."""
    blocks = 2 if args.demo else args.blocks
    report = profile_workload(
        blocks_per_tenant=blocks, backend=args.backend,
        protected=not args.baseline, sample_interval=args.interval,
        window=args.window)
    if args.json:
        print(json.dumps(report.to_heatmap(), sort_keys=True))
    else:
        print(report.render())
    if args.out:
        paths = report.write_all(args.out)
        for kind, path in sorted(paths.items()):
            print(f"wrote {kind}: {path}")
    return 0
