"""Span-based request-lifecycle tracing with a Chrome trace-event exporter.

The tracer records *spans* — named intervals with a start timestamp and
a duration — plus instant events and track metadata.  Timestamps are
whatever the configured clock returns; the SoC harness uses **simulation
cycles**, so a span of 30 "microseconds" in the viewer is 30 pipeline
cycles.  The export format is the Chrome trace-event JSON understood by
``chrome://tracing`` and https://ui.perfetto.dev:

* ``ph: "X"`` complete events — one per span;
* ``ph: "i"`` instant events — point occurrences (drops, denials);
* ``ph: "M"`` metadata — names the per-user tracks.

Spans can be recorded live (``begin``/``end`` or the context manager)
or retroactively via :meth:`Tracer.complete`, which is what the SoC
delivery path does: when a response arrives, it back-fills the queued
and service sub-spans from the cycle stamps on the request record.
"""

from __future__ import annotations

import json
from typing import Callable, Dict, List, Optional


class Span:
    """One named interval on a track."""

    __slots__ = ("name", "cat", "start", "end", "tid", "args")

    def __init__(self, name: str, cat: str, start: float, tid: int,
                 args: Optional[dict] = None):
        self.name = name
        self.cat = cat
        self.start = start
        self.end: Optional[float] = None
        self.tid = tid
        self.args = args or {}

    @property
    def duration(self) -> Optional[float]:
        if self.end is None:
            return None
        return self.end - self.start

    def __repr__(self) -> str:
        return (f"Span({self.name!r}, start={self.start}, "
                f"dur={self.duration}, tid={self.tid})")


class Tracer:
    """Collects spans/instants and renders Chrome trace-event JSON."""

    def __init__(self, clock: Optional[Callable[[], float]] = None,
                 pid: int = 1):
        self.clock = clock or (lambda: 0.0)
        self.pid = pid
        self.events: List[dict] = []
        self._open: List[Span] = []
        self._track_names: Dict[int, str] = {}

    def set_clock(self, clock: Callable[[], float]) -> None:
        self.clock = clock

    # -- recording --------------------------------------------------------------
    def begin(self, name: str, cat: str = "", tid: int = 0,
              ts: Optional[float] = None, **args) -> Span:
        span = Span(name, cat, self.clock() if ts is None else ts, tid, args)
        self._open.append(span)
        return span

    def end(self, span: Span, ts: Optional[float] = None, **args) -> Span:
        span.end = self.clock() if ts is None else ts
        span.args.update(args)
        if span in self._open:
            self._open.remove(span)
        self._emit_span(span)
        return span

    def span(self, name: str, cat: str = "", tid: int = 0, **args):
        """Context manager form: ``with tracer.span("compile"): ...``"""
        tracer = self

        class _Ctx:
            def __enter__(ctx):
                ctx.span = tracer.begin(name, cat, tid, **args)
                return ctx.span

            def __exit__(ctx, *exc):
                tracer.end(ctx.span)
                return False

        return _Ctx()

    def complete(self, name: str, start: float, duration: float,
                 cat: str = "", tid: int = 0, **args) -> None:
        """Record a span retroactively from known timestamps."""
        span = Span(name, cat, start, tid, args)
        span.end = start + duration
        self._emit_span(span)

    def instant(self, name: str, cat: str = "", tid: int = 0,
                ts: Optional[float] = None, **args) -> None:
        self.events.append({
            "name": name, "cat": cat or "event", "ph": "i",
            "ts": float(self.clock() if ts is None else ts),
            "pid": self.pid, "tid": tid, "s": "t",
            "args": args,
        })

    def counter(self, name: str, values: Dict[str, float],
                ts: Optional[float] = None) -> None:
        """Chrome 'C' counter event — stacked series in the viewer."""
        self.events.append({
            "name": name, "ph": "C",
            "ts": float(self.clock() if ts is None else ts),
            "pid": self.pid, "tid": 0,
            "args": dict(values),
        })

    def name_track(self, tid: int, name: str) -> None:
        """Label a track (rendered as a thread name in the viewer)."""
        if self._track_names.get(tid) == name:
            return
        self._track_names[tid] = name
        self.events.append({
            "name": "thread_name", "ph": "M", "pid": self.pid, "tid": tid,
            "args": {"name": name},
        })

    def _emit_span(self, span: Span) -> None:
        self.events.append({
            "name": span.name, "cat": span.cat or "span", "ph": "X",
            "ts": float(span.start), "dur": float(span.duration or 0),
            "pid": self.pid, "tid": span.tid,
            "args": span.args,
        })

    # -- export ----------------------------------------------------------------
    def span_count(self) -> int:
        return sum(1 for e in self.events if e["ph"] == "X")

    def open_spans(self) -> List[Span]:
        """Spans begun but not yet ended (diagnostic view)."""
        return list(self._open)

    def close_open_spans(self, ts: Optional[float] = None) -> int:
        """Force-close every open span at ``ts`` (default: the clock now).

        A span left open at export time used to vanish silently — its
        ``begin`` never emitted anything, so a crashed or forgotten
        ``end`` erased the interval from the trace.  Export now calls
        this instead: each dangling span is closed at the current clock
        (never before its own start), emitted with an
        ``autoclosed: true`` arg, and flagged with a warning instant
        event so the viewer shows exactly where instrumentation lost
        track.  Returns the number of spans closed.
        """
        if not self._open:
            return 0
        now = self.clock() if ts is None else ts
        closed = 0
        for span in list(self._open):
            end = max(float(now), float(span.start))
            span.args["autoclosed"] = True
            self.instant("unclosed_span_autoclosed", cat="warning",
                         tid=span.tid, ts=end, span=span.name)
            self.end(span, ts=end)
            closed += 1
        return closed

    def to_chrome_trace(self) -> dict:
        self.close_open_spans()
        return {
            "traceEvents": list(self.events),
            "displayTimeUnit": "ms",
            "otherData": {"clock": "simulation cycles as microseconds"},
        }

    def to_json(self) -> str:
        return json.dumps(self.to_chrome_trace(), sort_keys=True)

    def write_chrome_trace(self, path: str) -> None:
        with open(path, "w") as f:
            json.dump(self.to_chrome_trace(), f)


class NullTracer(Tracer):
    """Tracer whose recording methods do nothing (disabled fast path)."""

    _NULL_SPAN = Span("null", "", 0.0, 0)

    def begin(self, name, cat="", tid=0, ts=None, **args) -> Span:
        return self._NULL_SPAN

    def end(self, span, ts=None, **args) -> Span:
        return span

    def complete(self, name, start, duration, cat="", tid=0, **args) -> None:
        pass

    def instant(self, name, cat="", tid=0, ts=None, **args) -> None:
        pass

    def counter(self, name, values, ts=None) -> None:
        pass

    def name_track(self, tid, name) -> None:
        pass
