"""Multi-key-size AES engine — AES-128/192/256 in hardware (Fig. 1).

The flagship accelerator fixes AES-128 (the paper's 30-cycle prototype);
this module provides the general engine the paper's Fig. 1 describes:

* :class:`WordSerialKeyExpand` — a word-serial key schedule producing one
  32-bit word per cycle for any ``Nk ∈ {4, 6, 8}`` (FIPS-197 §5.2's
  uniform recurrence, including the extra SubWord of AES-256);
* :class:`AesEngineWide` — a ``3·Nr``-stage pipelined E/D datapath
  (36 cycles for AES-192, 42 for AES-256), one block per cycle, built
  from the same :class:`~repro.accel.round_stages.RoundStage` modules as
  the flagship, with the same per-stage tags and guarded round keys when
  ``protected=True``.

Differential tests pin all three key sizes to the FIPS-197 reference.
"""

from __future__ import annotations

from typing import List

from ..aes.constants import RCON, ROUNDS_BY_KEY_BITS, SBOX
from ..hdl.module import Module, otherwise, when
from ..hdl.nodes import Node, cat, lit, mux
from ..ifc.label import Label
from .common import LATTICE, OP_DEC, TAG_WIDTH
from .hwlabels import hw_flows_to
from .round_exprs import rot_word_expr, sub_word_expr
from .round_stages import StageA, StageB, StageC
from .taglabels import data_label, request_label

PUB_TRUSTED = Label(LATTICE, "public", "trusted")


class WordSerialKeyExpand(Module):
    """FIPS-197 key expansion, one 32-bit word per cycle, any key size.

    On ``start`` the unit latches the (up to 256-bit) key and streams
    ``4·(Nr+1)`` words into its round-key RAM: the first ``Nk`` straight
    from the key, the rest via the recurrence

        temp = w[i-1]
        if i mod Nk == 0:       temp = SubWord(RotWord(temp)) ^ Rcon[i/Nk]
        elif Nk > 6, i mod 8==4: temp = SubWord(temp)
        w[i] = w[i-Nk] ^ temp

    The window of the last ``Nk`` words lives in a register file; a
    ``k`` counter tracks ``i mod Nk`` without a hardware modulo.
    """

    def __init__(self, key_bits: int, protected: bool = False,
                 name: str = "wkexp"):
        super().__init__(name)
        if key_bits not in ROUNDS_BY_KEY_BITS:
            raise ValueError(f"unsupported key size {key_bits}")
        self.key_bits = key_bits
        self.nk = key_bits // 32
        self.rounds = ROUNDS_BY_KEY_BITS[key_bits]
        self.total_words = 4 * (self.rounds + 1)
        ctrl = PUB_TRUSTED if protected else None

        self.start = self.input("start", 1, label=ctrl)
        self.start.meta["enumerate"] = True
        self.key_tag = self.input("key_tag", TAG_WIDTH, label=ctrl)
        self.key = self.input(
            "key", key_bits,
            label=data_label(self.key_tag) if protected else None,
        )
        self.busy = self.output("busy", 1, label=ctrl)
        self.ready = self.output("ready", 1, label=ctrl)

        self.cur_tag = self.reg("cur_tag", TAG_WIDTH, label=ctrl)
        self.rk_mem = self.mem(
            "rk_mem", 64, 32,
            label=data_label(self.cur_tag) if protected else None,
        )

        sbox = self.rom("wsbox", SBOX, 8)
        rcon = self.rom("wrcon", list(RCON) + [0] * (16 - len(RCON)), 8)

        # sliding window of the last Nk words (window[nk-1] most recent)
        self.window: List = []
        for j in range(self.nk):
            w = self.reg(f"w{j}", 32,
                         label=data_label(self.cur_tag) if protected else None)
            self.window.append(w)

        self.busy_r = self.reg("busy_r", 1, label=ctrl)
        self.busy_r.meta["enumerate"] = True
        self.i_r = self.reg("i_r", 6, label=ctrl)          # word index
        self.k_r = self.reg("k_r", 3, label=ctrl)          # i mod Nk
        self.k_r.meta["enumerate"] = True
        self.rcon_r = self.reg("rcon_r", 4, label=ctrl)    # i / Nk

        latest = self.window[self.nk - 1]
        oldest = self.window[0]

        rcon_word = cat(rcon.read(self.rcon_r), lit(0, 24))
        rotated = sub_word_expr(rot_word_expr(latest), sbox) ^ rcon_word
        subbed = sub_word_expr(latest, sbox)

        k_is_zero = self.k_r.eq(0)
        if self.nk > 6:
            temp = mux(k_is_zero, rotated, mux(self.k_r.eq(4), subbed, latest))
        else:
            temp = mux(k_is_zero, rotated, latest)
        generated = oldest ^ temp

        next_word = generated

        # the whole key latches at start (a wide write, like the flagship
        # unit): the checker caught both a stale-window transient and a
        # key-input-changing-mid-load hazard in an earlier word-serial
        # loading scheme, so the key is consumed in exactly one cycle
        key_words = [
            self.key[self.key_bits - 1 - 32 * j:self.key_bits - 32 - 32 * j]
            for j in range(self.nk)
        ]
        with when(self.start & ~self.busy_r):
            self.busy_r <<= 1
            self.i_r <<= self.nk
            self.k_r <<= 0
            self.rcon_r <<= 1
            self.cur_tag <<= self.key_tag
            for j in range(self.nk):
                self.window[j] <<= key_words[j]
                self.rk_mem.write(lit(j, 6), key_words[j], tag=self.key_tag)

        with when(self.busy_r):
            self.rk_mem.write(self.i_r, next_word, tag=self.cur_tag)
            for j in range(self.nk - 1):
                self.window[j] <<= self.window[j + 1]
            self.window[self.nk - 1] <<= next_word

            self.i_r <<= self.i_r + 1
            with when(self.k_r.eq(self.nk - 1)):
                self.k_r <<= 0
                self.rcon_r <<= self.rcon_r + 1
            with otherwise():
                self.k_r <<= self.k_r + 1
            with when(self.i_r.eq(self.total_words - 1)):
                self.busy_r <<= 0

        self.busy <<= self.busy_r
        self.ready <<= ~self.busy_r

    def read_round_key(self, index: Node) -> Node:
        """128-bit round key ``index`` as four word reads."""
        base = cat(index, lit(0, 2))  # index * 4
        words = [self.rk_mem.read((base + lit(j, 6)).trunc(6))
                 for j in range(4)]
        return cat(*words)


class AesEngineWide(Module):
    """Pipelined AES-128/192/256 E/D engine: ``3·Nr`` stages, one
    block/cycle, single key context (re-keyed via the expansion unit)."""

    def __init__(self, key_bits: int = 256, protected: bool = False,
                 name: str = "wide"):
        super().__init__(name)
        self.key_bits = key_bits
        self.rounds = ROUNDS_BY_KEY_BITS[key_bits]
        self.latency = 3 * self.rounds
        ctrl = PUB_TRUSTED if protected else None

        self.advance = self.input("advance", 1, label=ctrl)
        self.advance.meta["enumerate"] = True
        self.in_valid = self.input("in_valid", 1, label=ctrl)
        self.in_user = self.input("in_user", TAG_WIDTH, label=ctrl)
        self.in_op = self.input("in_op", 1, label=ctrl)
        self.in_op.meta["enumerate"] = True
        self.in_data = self.input(
            "in_data", 128,
            label=request_label(self.in_user) if protected else None,
        )

        self.kx_start = self.input("kx_start", 1, label=ctrl)
        self.kx_key_tag = self.input("kx_key_tag", TAG_WIDTH, label=ctrl)
        self.kx_key = self.input(
            "kx_key", key_bits,
            label=data_label(self.kx_key_tag) if protected else None,
        )

        self.keyexp = self.submodule(WordSerialKeyExpand(key_bits, protected))
        self.keyexp.start <<= self.kx_start
        self.keyexp.key <<= self.kx_key
        self.keyexp.key_tag <<= self.kx_key_tag
        self.kx_busy = self.output("kx_busy", 1, label=ctrl)
        self.kx_busy <<= self.keyexp.busy

        def rk(index: Node, block_tag: Node) -> Node:
            value = self.keyexp.read_round_key(index)
            if protected:
                # fail-secure round-key guard, as in the flagship pipeline
                guard = hw_flows_to(self.keyexp.cur_tag, block_tag)
                value = mux(guard, value, lit(0, 128))
            return value

        entry_tag = self.wire("entry_tag", TAG_WIDTH, label=ctrl)
        if protected:
            from .hwlabels import hw_join

            entry_tag <<= hw_join(self.in_user, self.keyexp.cur_tag)
        else:
            entry_tag <<= self.in_user

        init_idx = mux(self.in_op.eq(OP_DEC),
                       lit(self.rounds, 4), lit(0, 4))
        entry_data = self.in_data ^ rk(init_idx, entry_tag)

        self.stages: List = []
        prev = None
        for r in range(1, self.rounds + 1):
            sa = self.submodule(StageA(r, protected, total_rounds=self.rounds))
            sb = self.submodule(StageB(r, protected, total_rounds=self.rounds))
            sc = self.submodule(StageC(r, protected, total_rounds=self.rounds))
            self.stages.extend([sa, sb, sc])
            if prev is None:
                sa.valid_i <<= self.in_valid
                sa.tag_i <<= entry_tag
                sa.op_i <<= self.in_op
                sa.slot_i <<= 0
                sa.data_i <<= entry_data
            else:
                self._chain(prev, sa)
            self._chain(sa, sb)
            self._chain(sb, sc)
            rk_idx = mux(sc.op_i.eq(OP_DEC),
                         lit(self.rounds - r, 4), lit(r, 4))
            sc.rk_i <<= rk(rk_idx, sb.tag_o)
            prev = sc

        for stage in self.stages:
            stage.advance <<= self.advance

        last = self.stages[-1]
        self.out_valid = self.output("out_valid", 1, label=ctrl)
        self.out_tag = self.output("out_tag", TAG_WIDTH, label=ctrl)
        self.out_data = self.output(
            "out_data", 128,
            label=data_label(self.out_tag) if protected else None,
        )
        self.out_valid <<= last.valid_o
        self.out_tag <<= last.tag_o
        self.out_data <<= last.data_o

    def _chain(self, src, dst) -> None:
        dst.valid_i <<= src.valid_o
        dst.tag_i <<= src.tag_o
        dst.op_i <<= src.op_o
        dst.slot_i <<= src.slot_o
        dst.data_i <<= src.data_o
