"""Debug/trace peripheral — the attack surface of Huang & Mishra's
trace-buffer attack (§2.1, [10]).

The peripheral snapshots a mid-pipeline stage into a circular trace
buffer whenever tracing is enabled.  In the **baseline** the buffer is
readable by anyone through the debug port, which discloses intermediate
round state — enough to reconstruct the AES key (see
:mod:`repro.attacks.debug_leak`).

The **protected** variant stores the security tag alongside each trace
entry and releases an entry only to a reader whose label dominates it
(in practice: the supervisor), turning the §2.1 attack into a blocked
flow.  The static checker sees the guard fold and verifies the module.
"""

from __future__ import annotations

from ..hdl.module import Module, when
from ..hdl.nodes import lit, mux
from ..ifc.label import Label
from .common import FREE_TAG, LATTICE, TAG_WIDTH, TRACE_DEPTH
from .taglabels import cell_tag_label, data_label, mark_tag_mem

PUB_TRUSTED = Label(LATTICE, "public", "trusted")


class DebugPeripheral(Module):
    """Trace buffer over one observation point of the pipeline."""

    def __init__(self, protected: bool, name: str = "debug"):
        super().__init__(name)
        self.protected = protected
        ctrl = PUB_TRUSTED if protected else None
        ptr_w = max(1, (TRACE_DEPTH - 1).bit_length())

        self.enable = self.input("enable", 1, label=ctrl)
        self.cap_valid = self.input("cap_valid", 1, label=ctrl)
        self.cap_tag = self.input("cap_tag", TAG_WIDTH, label=ctrl)
        self.cap_data = self.input(
            "cap_data", 128,
            label=data_label(self.cap_tag) if protected else None,
        )
        self.raddr = self.input("raddr", ptr_w, label=ctrl)
        self.reader_tag = self.input("reader_tag", TAG_WIDTH, label=ctrl)

        if protected:
            self.trace_tags = self.mem("trace_tags", TRACE_DEPTH, TAG_WIDTH,
                                       label=PUB_TRUSTED,
                                       init=[FREE_TAG] * TRACE_DEPTH)
            mark_tag_mem(self.trace_tags)
            self.trace = self.mem("trace", TRACE_DEPTH, 128,
                                  label=cell_tag_label(self.trace_tags))
            # the tags are stored alongside the trace words (Table 2's
            # "security tags stored with the on-chip data buffers")
            self.trace_tags.meta["width_rider_of"] = self.trace
        else:
            self.trace_tags = None
            self.trace = self.mem("trace", TRACE_DEPTH, 128)

        self.wptr = self.reg("wptr", ptr_w, label=ctrl)
        with when(self.enable & self.cap_valid):
            if protected:
                self.trace.write(self.wptr, self.cap_data, tag=self.cap_tag)
                self.trace_tags.write(self.wptr, self.cap_tag)
            else:
                self.trace.write(self.wptr, self.cap_data)
            self.wptr <<= self.wptr + 1

        # readout protection is about *disclosure*: the gate checks the
        # confidentiality dimension (requirement 1 of Table 1 is a C
        # policy); the value handed out is labelled untrusted — reading a
        # trace never endorses its contents
        from .taglabels import readout_label

        self.rdata = self.output(
            "rdata", 128,
            label=readout_label(self.reader_tag) if protected else None,
            default=0,
        )
        self.rdenied = self.output("rdenied", 1, label=ctrl, default=0)
        if protected:
            from .hwlabels import conf_bits, hw_conf_leq

            entry_tag = self.wire("entry_tag", TAG_WIDTH, label=ctrl)
            entry_tag <<= self.trace_tags.read(self.raddr)
            allowed = self.wire("rd_allowed", 1, label=ctrl)
            allowed <<= hw_conf_leq(
                conf_bits(entry_tag), conf_bits(self.reader_tag)
            )
            self.rdata <<= mux(allowed, self.trace.read(self.raddr), lit(0, 128))
            self.rdenied <<= ~allowed
        else:
            self.rdata <<= self.trace.read(self.raddr)
