"""Protected AES accelerator — the paper's secured design (Fig. 4).

Everything the baseline does, plus the §3.2 protections:

* per-stage security tags riding with each block (Fig. 7, inside
  :class:`~repro.accel.pipeline.AesPipeline`);
* tagged key scratchpad with checked writes (Fig. 5) — the unchecked
  ``slot*2 + word`` arithmetic is *still here*; the tag check is what
  stops the overrun;
* nonmalleable declassification at the pipeline exit (§3.2.2) — master-
  key misuse by a regular user yields a suppressed output;
* label-aware stall control (Fig. 8) with the output holding buffer for
  denied stalls;
* supervisor-gated configuration registers and debug peripheral;
* reader-routing of outputs: decrypted plaintext only reaches a reader
  whose label dominates it (requirement 4 of Table 1).

One *explicit, reviewed* downgrade remains at the top level: the granted
stall signal is declassified to ``(⊥,⊤)`` before driving the pipeline
``advance``.  Its justification is exactly Fig. 8's meet check (verified
statically at reduced scale in :mod:`repro.accel.mini`, dynamically by
the covert-channel experiment); the paper's §3.2.6 makes the same point:
with IFC, residual risk concentrates in downgrades a human can review.
"""

from __future__ import annotations

from ..hdl.module import Module, when
from ..hdl.nodes import cat, declassify, lit, mux
from ..ifc.label import Label
from .common import (
    CMD_CONFIG,
    CMD_DECRYPT,
    CMD_ENCRYPT,
    CMD_LOAD_KEY,
    LATTICE,
    OP_DEC,
    PIPELINE_STAGES,
    TAG_WIDTH,
    VALID_REQUEST_TAGS,
)
from .config_regs import ConfigRegs
from .debug import DebugPeripheral
from .declassifier import Declassifier
from .hwlabels import conf_bits
from .output_buffer import OutputBuffer
from .pipeline import AesPipeline
from .scratchpad import KeyScratchpad
from .stall import StallController
from .taglabels import authority_label, data_label, released_label

PUB_TRUSTED = Label(LATTICE, "public", "trusted")
SUPERVISOR = Label(LATTICE, "public", "trusted")


class AesAcceleratorProtected(Module):
    """The accelerator with information-flow enforcement."""

    def __init__(self, name: str = "aes"):
        super().__init__(name)
        self.protected = True
        ctrl = PUB_TRUSTED

        # ---- host interface -------------------------------------------------------
        # request metadata is issued by the trusted OS/interconnect (§2.2
        # threat model: the adversary controls applications, not the
        # arbiter), so it carries (⊥,⊤); request *data* carries the
        # requester's label via the tag
        self.in_valid = self.input("in_valid", 1, label=ctrl)
        self.in_cmd = self.input("in_cmd", 2, label=ctrl)
        self.in_cmd.meta["enumerate"] = True
        self.in_user = self.input("in_user", TAG_WIDTH, label=ctrl)
        self.in_user.meta["enumerate"] = True
        self.in_user.meta["enum_domain"] = VALID_REQUEST_TAGS
        self.in_slot = self.input("in_slot", 2, label=ctrl)
        self.in_word = self.input("in_word", 3, label=ctrl)
        self.in_addr = self.input("in_addr", 4, label=ctrl)
        self.in_data = self.input(
            "in_data", 128,
            label=data_label(self.in_user, domain=VALID_REQUEST_TAGS),
        )
        self.out_ready = self.input("out_ready", 1, label=ctrl)
        self.rd_user = self.input("rd_user", TAG_WIDTH, label=ctrl)
        self.rd_user.meta["enumerate"] = True
        self.rd_user.meta["enum_domain"] = VALID_REQUEST_TAGS

        self.scratchpad = self.submodule(KeyScratchpad(protected=True))
        self.pipe = self.submodule(AesPipeline(protected=True))
        self.cfg = self.submodule(ConfigRegs(protected=True))
        self.debug = self.submodule(DebugPeripheral(protected=True))
        self.declass = self.submodule(Declassifier(protected=True))
        self.outbuf = self.submodule(OutputBuffer(protected=True))
        self.stallctl = self.submodule(
            StallController(PIPELINE_STAGES, protected=True)
        )

        is_enc = self.in_valid & self.in_cmd.eq(CMD_ENCRYPT)
        is_dec = self.in_valid & self.in_cmd.eq(CMD_DECRYPT)
        is_load = self.in_valid & self.in_cmd.eq(CMD_LOAD_KEY)
        is_cfg = self.in_valid & self.in_cmd.eq(CMD_CONFIG)

        # ---- stall control (Fig. 8) ---------------------------------------------------
        for i, stage in enumerate(self.pipe.stages):
            self.stallctl.stage_valid[i] <<= stage.valid_o
            self.stallctl.stage_conf[i] <<= conf_bits(stage.tag_o)
        # the stall request carries the *pre-declassification* tag: the
        # sensitivity of "this user's output cannot drain" is the block
        # owner's level, not the released ciphertext's ⊥
        self.stallctl.req_tag <<= self.pipe.out_tag
        # stall requested when the finishing block's buffer slot is occupied
        # (outbuf.full reflects the slot addressed by push_tag, below)
        self.stallctl.stall_req <<= self.declass.out_valid & self.outbuf.full

        advance = self.wire("advance", 1, label=ctrl)
        # explicit, reviewed downgrade (both dimensions): the stall grant is
        # public-trusted *because* the meet check bounded its content (see
        # module docstring) — this is the design's single residual downgrade
        # outside the ciphertext release
        from ..hdl.nodes import endorse

        advance <<= endorse(
            declassify(
                ~self.stallctl.stall, PUB_TRUSTED,
                Label(LATTICE, "public", "trusted"),
            ),
            PUB_TRUSTED,
            Label(LATTICE, "public", "trusted"),
        )
        self.pipe.advance <<= advance
        self.in_ready = self.output("in_ready", 1, label=ctrl)
        self.in_ready <<= advance

        # ---- key loads: same unchecked arithmetic; tags stop the overrun ---------------
        wcell = (cat(self.in_slot, lit(0, 1)) + self.in_word.zext(3)).trunc(3)
        self.scratchpad.we <<= is_load & advance
        self.scratchpad.wcell <<= wcell
        self.scratchpad.wdata <<= self.in_data[63:0]
        self.scratchpad.user_tag <<= self.in_user
        self.scratchpad.rcell <<= 0

        # tag allocation (CMD_CONFIG, addr 8..15): the user-supplied tag
        # value is the user's own public data — declassified by its owner,
        # then gated inside the scratchpad to the supervisor
        self.scratchpad.set_tag <<= is_cfg & self.in_addr[3]
        self.scratchpad.set_cell <<= self.in_addr[2:0]
        self.scratchpad.set_value <<= declassify(
            self.in_data[TAG_WIDTH - 1:0],
            released_label(self.in_user, domain=VALID_REQUEST_TAGS),
            authority_label(self.in_user, domain=VALID_REQUEST_TAGS),
        )

        self.pending_exp = self.reg("pending_exp", 1, label=ctrl)
        self.pending_slot = self.reg("pending_slot", 2, label=ctrl)
        # expansion is (re)triggered by the second half of whichever slot
        # the write actually landed in — i.e. by the computed cell index
        with when(is_load & advance & wcell[0]):
            self.pending_exp <<= 1
            self.pending_slot <<= wcell[2:1]
        self.kx_fire_r = self.reg("kx_fire_r", 1, label=ctrl)
        kx_fire = self.wire("kx_fire", 1, label=ctrl)
        kx_fire <<= self.pending_exp & ~self.pipe.kx_busy & ~self.kx_fire_r
        self.kx_fire_r <<= kx_fire
        with when(kx_fire):
            self.pending_exp <<= 0
        self.scratchpad.rslot <<= self.pending_slot
        self.pipe.kx_start <<= kx_fire
        self.pipe.kx_slot <<= self.pending_slot
        self.pipe.kx_key <<= self.scratchpad.key128
        self.pipe.kx_key_tag <<= self.scratchpad.key_tag

        # ---- encrypt/decrypt issue -------------------------------------------------------
        self.pipe.in_valid <<= (is_enc | is_dec) & advance
        self.pipe.in_user <<= self.in_user
        self.pipe.in_op <<= mux(is_dec, lit(OP_DEC, 1), lit(0, 1))
        self.pipe.in_slot <<= self.in_slot
        self.pipe.in_data <<= self.in_data

        # ---- configuration: supervisor-gated inside the module ------------------------------
        self.cfg.we <<= is_cfg & self.in_addr[3].eq(0)
        self.cfg.addr <<= self.in_addr[1:0]
        self.cfg.wdata <<= declassify(
            self.in_data[31:0],
            released_label(self.in_user, domain=VALID_REQUEST_TAGS),
            authority_label(self.in_user, domain=VALID_REQUEST_TAGS),
        )
        self.cfg.user_tag <<= self.in_user
        self.cfg.raddr <<= self.in_addr[1:0]
        self.cfg_rdata = self.output("cfg_rdata", 32, label=ctrl)
        self.cfg_rdata <<= self.cfg.rdata

        # ---- debug trace: tagged entries, label-checked readout ------------------------------
        self.debug.enable <<= self.cfg.debug_en
        self.debug.cap_valid <<= self.pipe.obs_valid
        self.debug.cap_tag <<= self.pipe.obs_tag
        self.debug.cap_data <<= self.pipe.obs_data
        self.debug.raddr <<= self.in_addr
        self.debug.reader_tag <<= self.rd_user
        from .taglabels import readout_label

        self.dbg_data = self.output(
            "dbg_data", 128,
            label=readout_label(self.rd_user, domain=VALID_REQUEST_TAGS),
        )
        self.dbg_data <<= self.debug.rdata

        # ---- output path: declassifier -> holding buffer -> routed release --------------------
        self.declass.in_valid <<= self.pipe.out_valid
        self.declass.in_tag <<= self.pipe.out_tag
        self.declass.in_op <<= self.pipe.out_op
        self.declass.in_data <<= self.pipe.out_data

        # a granted stall freezes the pipeline (the block retries next
        # cycle); a denied stall with an occupied slot drops the block
        # inside the buffer, never anyone else's
        self.outbuf.push <<= self.declass.out_valid & advance
        self.outbuf.push_tag <<= self.declass.out_tag
        self.outbuf.push_data <<= self.declass.out_data
        self.outbuf.rd_tag <<= self.rd_user
        self.outbuf.pop <<= self.outbuf.out_valid & self.out_ready

        # tagged-bus output (Fig. 2): the buffer only presents entries
        # whose label flows to the polling reader
        self.out_valid = self.output("out_valid", 1, label=ctrl, default=0)
        self.out_valid.meta["enumerate"] = True
        self.out_tag = self.output("out_tag", TAG_WIDTH, label=ctrl, default=0)
        from .common import VALID_CELL_TAGS

        self.out_tag.meta["enumerate"] = True
        self.out_tag.meta["enum_domain"] = VALID_CELL_TAGS
        self.out_valid <<= self.outbuf.out_valid
        self.out_tag <<= self.outbuf.out_tag
        self.out_data = self.output(
            "out_data", 128, label=data_label(self.out_tag), default=0,
        )
        self.out_data <<= self.outbuf.out_data

        # ---- security event counters (supervisor-visible) --------------------------------------
        self.suppressed_cnt = self.reg("suppressed_cnt", 16, label=ctrl)
        with when(self.declass.suppressed):
            self.suppressed_cnt <<= self.suppressed_cnt + 1
        self.blocked_cnt = self.reg("blocked_cnt", 16, label=ctrl)
        with when(self.scratchpad.wr_blocked | self.cfg.wr_blocked
                  | self.debug.rdenied):
            self.blocked_cnt <<= self.blocked_cnt + 1
        self.suppressed_count = self.output("suppressed_count", 16, label=ctrl)
        self.suppressed_count <<= self.suppressed_cnt
        self.blocked_count = self.output("blocked_count", 16, label=ctrl)
        self.blocked_count <<= self.blocked_cnt
        self.dropped_count = self.output("dropped_count", 8, label=ctrl)
        self.dropped_count <<= self.outbuf.dropped
