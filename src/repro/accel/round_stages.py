"""Pipeline stage modules — three stages per AES round (Fig. 7).

Each round ``r`` of the 30-stage datapath is split into:

* **StageA** — SubBytes (encrypt) / InvShiftRows (decrypt);
* **StageB** — ShiftRows + MixColumns (encrypt; MixColumns skipped in the
  last round) / InvSubBytes (decrypt);
* **StageC** — AddRoundKey, plus InvMixColumns for decrypt rounds before
  the last (the straight inverse-cipher ordering of FIPS-197 §5.3).

Every stage registers ``valid``/``tag``/``op``/``slot`` alongside the
128-bit data, so a block and its security tag travel the pipeline in
lockstep — the fine-grained sharing mechanism of the paper.  In the
protected configuration the data register carries the dependent label
``DL(tag)`` and the checker verifies each stage module once (modular
verification); the baseline omits labels and checks.
"""

from __future__ import annotations

from typing import Optional

from ..aes.constants import INV_SBOX, SBOX
from ..hdl.module import Module, when
from ..hdl.nodes import Node, mux
from ..ifc.label import Label
from .common import LATTICE, OP_DEC, PIPELINE_ROUNDS, TAG_WIDTH
from .round_exprs import (
    add_round_key_expr,
    inv_mix_columns_expr,
    inv_shift_rows_expr,
    mix_columns_expr,
    sbox_lookup_expr,
    shift_rows_expr,
)
from .taglabels import data_label

PUB_TRUSTED = Label(LATTICE, "public", "trusted")


class RoundStage(Module):
    """Base class: the registered block-and-tag slice of the pipeline.

    ``total_rounds`` defaults to the AES-128 depth; the wide engine passes
    12 (AES-192) or 14 (AES-256).
    """

    def __init__(self, name: str, round_index: int, protected: bool,
                 needs_round_key: bool = False,
                 total_rounds: int = PIPELINE_ROUNDS):
        super().__init__(name)
        if not 1 <= round_index <= total_rounds:
            raise ValueError(f"round index {round_index} out of range")
        self.round_index = round_index
        self.total_rounds = total_rounds
        self.protected = protected

        ctrl = PUB_TRUSTED if protected else None
        self.advance = self.input("advance", 1, label=ctrl)
        self.advance.meta["enumerate"] = True
        self.valid_i = self.input("valid_i", 1, label=ctrl)
        self.tag_i = self.input("tag_i", TAG_WIDTH, label=ctrl)
        self.op_i = self.input("op_i", 1, label=ctrl)
        self.slot_i = self.input("slot_i", 2, label=ctrl)
        self.data_i = self.input(
            "data_i", 128, label=data_label(self.tag_i) if protected else None
        )
        if needs_round_key:
            # contract: the parent only feeds round-key bits already covered
            # by the block's tag (enforced by the rk_guard in the pipeline)
            self.rk_i = self.input(
                "rk_i", 128, label=data_label(self.tag_i) if protected else None
            )

        self.valid_r = self.reg("valid_r", 1, label=ctrl)
        self.tag_r = self.reg("tag_r", TAG_WIDTH, label=ctrl)
        self.op_r = self.reg("op_r", 1, label=ctrl)
        self.slot_r = self.reg("slot_r", 2, label=ctrl)
        self.data_r = self.reg(
            "data_r", 128, label=data_label(self.tag_r) if protected else None
        )

        with when(self.advance):
            self.valid_r <<= self.valid_i
            self.tag_r <<= self.tag_i
            self.op_r <<= self.op_i
            self.slot_r <<= self.slot_i
            self.data_r <<= self.transform()

        # port labels reference ports (tag_o, not the internal tag_r) so a
        # parent's modular check can correlate data and tag across the
        # module boundary
        from .common import VALID_CELL_TAGS

        self.valid_o = self.output("valid_o", 1, label=ctrl)
        self.valid_o.meta["enumerate"] = True
        self.tag_o = self.output("tag_o", TAG_WIDTH, label=ctrl)
        self.tag_o.meta["enumerate"] = True
        self.tag_o.meta["enum_domain"] = VALID_CELL_TAGS
        self.op_o = self.output("op_o", 1, label=ctrl)
        self.op_o.meta["enumerate"] = True
        self.slot_o = self.output("slot_o", 2, label=ctrl)
        self.slot_o.meta["enumerate"] = True
        self.data_o = self.output(
            "data_o", 128, label=data_label(self.tag_o) if protected else None
        )
        self.valid_o <<= self.valid_r
        self.tag_o <<= self.tag_r
        self.op_o <<= self.op_r
        self.slot_o <<= self.slot_r
        self.data_o <<= self.data_r

    def transform(self) -> Node:
        """The combinational body applied to ``data_i`` before the latch."""
        raise NotImplementedError


class StageA(RoundStage):
    """SubBytes (enc) / InvShiftRows (dec)."""

    def __init__(self, round_index: int, protected: bool,
                 name: Optional[str] = None,
                 total_rounds: int = PIPELINE_ROUNDS):
        super().__init__(name or f"sa{round_index}", round_index, protected,
                         total_rounds=total_rounds)

    def transform(self) -> Node:
        sbox = self.rom("sbox", SBOX, 8)
        enc = sbox_lookup_expr(self.data_i, sbox)
        dec = inv_shift_rows_expr(self.data_i)
        return mux(self.op_i.eq(OP_DEC), dec, enc)


class StageB(RoundStage):
    """ShiftRows + MixColumns (enc; no MixColumns in the last round) /
    InvSubBytes (dec)."""

    def __init__(self, round_index: int, protected: bool,
                 name: Optional[str] = None,
                 total_rounds: int = PIPELINE_ROUNDS):
        super().__init__(name or f"sb{round_index}", round_index, protected,
                         total_rounds=total_rounds)

    def transform(self) -> Node:
        inv_sbox = self.rom("inv_sbox", INV_SBOX, 8)
        shifted = shift_rows_expr(self.data_i)
        if self.round_index < self.total_rounds:
            enc = mix_columns_expr(shifted)
        else:
            enc = shifted
        dec = sbox_lookup_expr(self.data_i, inv_sbox)
        return mux(self.op_i.eq(OP_DEC), dec, enc)


class StageC(RoundStage):
    """AddRoundKey (enc) / AddRoundKey + InvMixColumns (dec, rounds < Nr)."""

    def __init__(self, round_index: int, protected: bool,
                 name: Optional[str] = None,
                 total_rounds: int = PIPELINE_ROUNDS):
        super().__init__(name or f"sc{round_index}", round_index, protected,
                         needs_round_key=True, total_rounds=total_rounds)

    def transform(self) -> Node:
        keyed = add_round_key_expr(self.data_i, self.rk_i)
        if self.round_index < self.total_rounds:
            dec = inv_mix_columns_expr(keyed)
        else:
            dec = keyed
        return mux(self.op_i.eq(OP_DEC), dec, keyed)
