"""Shared geometry, encodings, and security levels for the AES accelerator.

The accelerator matches the paper's prototype (§3.1, §4):

* deeply pipelined E/D datapath — 30 stages (10 rounds × 3 stages for
  AES-128), accepting one 128-bit block per cycle;
* a 512-bit key scratchpad of eight 64-bit cells (Fig. 5), i.e. four
  128-bit key slots, with slot 0 reserved for the master key;
* 8-bit security tags: 4 confidentiality bits + 4 integrity bits (§4),
  which in our lattice means four principal slots;
* configuration registers, a debug/trace peripheral, and an output
  holding buffer.

Command encoding on the host interface (post-arbitration):

====  ===========  =====================================================
code  name         meaning
====  ===========  =====================================================
0     ENCRYPT      encrypt ``in_data`` with the key in ``in_slot``
1     DECRYPT      decrypt ``in_data`` with the key in ``in_slot``
2     LOAD_KEY     write 64 bits of key material (``in_word`` selects the
                   scratchpad cell offset within/beyond the slot)
3     CONFIG       write a configuration register / scratchpad cell tag
====  ===========  =====================================================
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..ifc.label import Label
from ..ifc.lattice import SecurityLattice

# ---------------------------------------------------------------- geometry
PIPELINE_ROUNDS = 10          # AES-128
PIPELINE_STAGES = 3 * PIPELINE_ROUNDS   # 30-cycle latency, 1 block/cycle
SCRATCHPAD_CELLS = 8          # 8 x 64-bit = 512-bit scratchpad (Fig. 5)
CELL_BITS = 64
KEY_SLOTS = 4                 # 128-bit key slots (2 cells each)
MASTER_SLOT = 0               # slot 0 holds the (⊤,⊤) master key
ROUND_KEYS_PER_SLOT = PIPELINE_ROUNDS + 1
RK_MEM_DEPTH = KEY_SLOTS * 16  # slot in addr[5:4], round in addr[3:0]
CONFIG_REGS = 4
CONFIG_WIDTH = 32
OUTPUT_BUFFER_DEPTH = 4
TRACE_DEPTH = 16              # debug trace buffer entries

# ---------------------------------------------------------------- commands
CMD_ENCRYPT = 0
CMD_DECRYPT = 1
CMD_LOAD_KEY = 2
CMD_CONFIG = 3

OP_ENC = 0
OP_DEC = 1

# config-space addresses for CMD_CONFIG
CFG_REG_BASE = 0      # addrs 0..3: configuration registers
CFG_CELL_TAG_BASE = 8  # addrs 8..15: set scratchpad cell tag (arbiter alloc)

# ---------------------------------------------------------------- security levels
#: The four principal slots of the 8-bit tag (§4).
PRINCIPALS: Tuple[str, ...] = ("p0", "p1", "p2", "p3")

#: The shared lattice instance for all accelerator designs.
LATTICE = SecurityLattice(PRINCIPALS)

TAG_WIDTH = LATTICE.tag_width  # 8 bits: conf[7:4], integ[3:0]


def user_label(principal: str) -> Label:
    """Label of an ordinary user: owns its own secrets, vouched only for
    itself."""
    return Label(LATTICE, (principal,), (principal,))


def supervisor_label() -> Label:
    """The supervisor reads everything and is fully trusted."""
    return Label(LATTICE, "secret", "trusted")


def public_label() -> Label:
    return Label(LATTICE, "public", "trusted")


def master_key_label() -> Label:
    """(⊤, ⊤) in the paper's notation."""
    return Label(LATTICE, "secret", "trusted")


USER_LABELS: Dict[str, Label] = {p: user_label(p) for p in PRINCIPALS}

#: Encoded tags the arbiter can legally issue on the request interface.
VALID_REQUEST_TAGS: List[int] = sorted(
    {user_label(p).encode() for p in PRINCIPALS} | {supervisor_label().encode()}
)

#: Tag values a scratchpad / pipeline cell can legally carry: any issued
#: tag, the master-key tag, the free tag, or a join of a user and a key.
FREE_TAG = public_label().encode()


def joined_tags() -> List[int]:
    """All tags a cell/stage/buffer can legally carry: request tags, the
    free and master tags, pairwise joins, and the *released* forms the
    declassifier emits (public confidentiality, the owner's vouch)."""
    tags = set(VALID_REQUEST_TAGS) | {FREE_TAG, master_key_label().encode()}
    for p in PRINCIPALS:
        tags.add(Label(LATTICE, "public", (p,)).encode())
    joined = set(tags)
    for a in tags:
        for b in tags:
            la = Label.decode(LATTICE, a)
            lb = Label.decode(LATTICE, b)
            joined.add(la.join(lb).encode())
    return sorted(joined)


VALID_CELL_TAGS: List[int] = joined_tags()


def tag_conf_bits(tag: int) -> int:
    """Extract the confidentiality nibble of an encoded tag."""
    n = len(PRINCIPALS)
    return (tag >> n) & ((1 << n) - 1)


def tag_integ_bits(tag: int) -> int:
    """Extract the integrity (vouch) nibble of an encoded tag."""
    n = len(PRINCIPALS)
    return tag & ((1 << n) - 1)


def make_tag(conf_bits: int, integ_bits: int) -> int:
    n = len(PRINCIPALS)
    return ((conf_bits & ((1 << n) - 1)) << n) | (integ_bits & ((1 << n) - 1))
