"""Baseline AES accelerator — high performance, no information-flow
protection (§4: "we first built an AES accelerator baseline without
information flow control").

It is a realistic, heavily-optimised design with the paper's §2.1/§3.1
vulnerability classes deliberately present:

* **timing channel (pipeline)** — any output backpressure stalls the whole
  pipeline, so one user's reader modulates every other user's latency;
* **timing channel (key schedule)** — optional data-dependent key
  expansion time (``keyexp_timing_flaw``), the Fig. 6 scenario;
* **scratchpad overrun** — the key-load cell index is computed as
  ``slot*2 + word`` with a 3-bit ``word`` and no bounds check, so a key
  longer than the slot silently overwrites the neighbour's key (Fig. 5's
  threat), including the master key in slot 0;
* **debug disclosure** — the trace buffer snapshots round-1 state and is
  readable by any user (the Huang–Mishra trace-buffer attack);
* **configuration tampering** — any user can write the configuration
  registers (e.g. switch the debug trace on);
* **master-key misuse** — nothing stops a regular user from encrypting
  with slot 0;
* **plaintext disclosure** — outputs are not routed by security level, so
  any reader can collect any user's decrypted plaintext.

The audit experiment (:mod:`repro.eval.audit`) attaches labels to this
design and shows the static checker flagging each class.
"""

from __future__ import annotations

from ..hdl.module import Module, when
from ..hdl.nodes import cat, lit, mux
from .common import (
    CMD_CONFIG,
    CMD_DECRYPT,
    CMD_ENCRYPT,
    CMD_LOAD_KEY,
    OP_DEC,
    TAG_WIDTH,
)
from .config_regs import ConfigRegs
from .debug import DebugPeripheral
from .pipeline import AesPipeline
from .scratchpad import KeyScratchpad


class AesAcceleratorBaseline(Module):
    """The unprotected accelerator (Fig. 4 without tags or checkers)."""

    def __init__(self, keyexp_timing_flaw: bool = False, name: str = "aes"):
        super().__init__(name)
        self.protected = False

        # ---- host interface -----------------------------------------------------
        self.in_valid = self.input("in_valid", 1)
        self.in_cmd = self.input("in_cmd", 2)
        self.in_user = self.input("in_user", TAG_WIDTH)
        self.in_slot = self.input("in_slot", 2)
        self.in_word = self.input("in_word", 3)
        self.in_addr = self.input("in_addr", 4)
        self.in_data = self.input("in_data", 128)
        self.out_ready = self.input("out_ready", 1)
        self.rd_user = self.input("rd_user", TAG_WIDTH)

        self.scratchpad = self.submodule(KeyScratchpad(protected=False))
        self.pipe = self.submodule(
            AesPipeline(protected=False, timing_flaw=keyexp_timing_flaw)
        )
        self.cfg = self.submodule(ConfigRegs(protected=False))
        self.debug = self.submodule(DebugPeripheral(protected=False))

        is_enc = self.in_valid & self.in_cmd.eq(CMD_ENCRYPT)
        is_dec = self.in_valid & self.in_cmd.eq(CMD_DECRYPT)
        is_load = self.in_valid & self.in_cmd.eq(CMD_LOAD_KEY)
        is_cfg = self.in_valid & self.in_cmd.eq(CMD_CONFIG)

        # ---- global stall: ANY backpressure freezes the pipe (the covert
        # channel of §3.1) -----------------------------------------------------------
        stall = self.wire("stall", 1)
        stall <<= self.pipe.out_valid & ~self.out_ready
        advance = self.wire("advance", 1)
        advance <<= ~stall
        self.pipe.advance <<= advance
        self.in_ready = self.output("in_ready", 1)
        self.in_ready <<= advance

        # ---- key loads: unchecked cell arithmetic (overrun bug) ---------------------
        # cell = slot*2 + word — `word` is 3 bits, so word > 1 walks into the
        # next slot's cells with no bounds check
        wcell = (cat(self.in_slot, lit(0, 1)) + self.in_word.zext(3)).trunc(3)
        self.scratchpad.we <<= is_load & advance
        self.scratchpad.wcell <<= wcell
        self.scratchpad.wdata <<= self.in_data[63:0]
        self.scratchpad.user_tag <<= self.in_user
        self.scratchpad.set_tag <<= 0
        self.scratchpad.set_cell <<= 0
        self.scratchpad.set_value <<= 0
        self.scratchpad.rcell <<= 0

        # second half of a slot written -> expand next cycle
        self.pending_exp = self.reg("pending_exp", 1)
        self.pending_slot = self.reg("pending_slot", 2)
        # expansion is (re)triggered by the second half of whichever slot
        # the write actually landed in — i.e. by the computed cell index
        with when(is_load & advance & wcell[0]):
            self.pending_exp <<= 1
            self.pending_slot <<= wcell[2:1]
        self.kx_fire_r = self.reg("kx_fire_r", 1)
        kx_fire = self.wire("kx_fire", 1)
        kx_fire <<= self.pending_exp & ~self.pipe.kx_busy & ~self.kx_fire_r
        self.kx_fire_r <<= kx_fire
        with when(kx_fire):
            self.pending_exp <<= 0
        self.scratchpad.rslot <<= self.pending_slot
        self.pipe.kx_start <<= kx_fire
        self.pipe.kx_slot <<= self.pending_slot
        self.pipe.kx_key <<= self.scratchpad.key128
        self.pipe.kx_key_tag <<= self.scratchpad.key_tag

        # ---- encrypt/decrypt issue ---------------------------------------------------
        self.pipe.in_valid <<= (is_enc | is_dec) & advance
        self.pipe.in_user <<= self.in_user
        self.pipe.in_op <<= mux(is_dec, lit(OP_DEC, 1), lit(0, 1))
        self.pipe.in_slot <<= self.in_slot
        self.pipe.in_data <<= self.in_data

        # ---- configuration: writable by anyone (§3.2.4 violation) ----------------------
        self.cfg.we <<= is_cfg & self.in_addr[3].eq(0)
        self.cfg.addr <<= self.in_addr[1:0]
        self.cfg.wdata <<= self.in_data[31:0]
        self.cfg.user_tag <<= self.in_user
        self.cfg.raddr <<= self.in_addr[1:0]
        self.cfg_rdata = self.output("cfg_rdata", 32)
        self.cfg_rdata <<= self.cfg.rdata

        # ---- debug trace: capture round-1 state, readable by anyone ----------------------
        self.debug.enable <<= self.cfg.debug_en
        self.debug.cap_valid <<= self.pipe.obs_valid
        self.debug.cap_tag <<= self.pipe.obs_tag
        self.debug.cap_data <<= self.pipe.obs_data
        self.debug.raddr <<= self.in_addr
        self.debug.reader_tag <<= self.rd_user
        self.dbg_data = self.output("dbg_data", 128)
        self.dbg_data <<= self.debug.rdata

        # ---- outputs: no routing check, no declassification gate -------------------------
        self.out_valid = self.output("out_valid", 1)
        self.out_tag = self.output("out_tag", TAG_WIDTH)
        self.out_data = self.output("out_data", 128)
        self.out_valid <<= self.pipe.out_valid & self.out_ready
        self.out_tag <<= self.pipe.out_tag
        self.out_data <<= self.pipe.out_data
