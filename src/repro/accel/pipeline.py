"""The pipelined AES E/D engine — Fig. 7 of the paper.

Thirty :class:`~repro.accel.round_stages.RoundStage` instances (three per
round), fed by an entry stage that applies the initial AddRoundKey, with
the :class:`~repro.accel.key_expand_unit.KeyExpandUnit` (and its per-slot
round-key RAMs) embedded.  A block enters with a *joined* tag —
``ℓ(user) ⊔ ℓ(key slot)`` — and block, tag, op, and slot travel the
pipeline together, one stage per cycle: 30-cycle latency, one block per
cycle throughput, matching §4's prototype.

Runtime flow guards (`rk_guard`) zero the round key whenever the slot's
current tag no longer flows to the in-flight block's tag (a slot re-keyed
mid-flight), making key use *structurally* safe — this is one of the
"runtime checkers" the paper's §4 counts among its ~70 changed lines.
"""

from __future__ import annotations

from typing import List

from ..hdl.module import Module
from ..hdl.nodes import Node, lit, mux
from ..ifc.label import Label
from .common import (
    KEY_SLOTS,
    LATTICE,
    OP_DEC,
    PIPELINE_ROUNDS,
    TAG_WIDTH,
)
from .hwlabels import hw_flows_to, hw_join
from .key_expand_unit import KeyExpandUnit
from .round_stages import StageA, StageB, StageC
from .taglabels import data_label, request_label

PUB_TRUSTED = Label(LATTICE, "public", "trusted")


class AesPipeline(Module):
    """30-stage pipelined AES encrypt/decrypt datapath with key expansion."""

    def __init__(self, protected: bool, timing_flaw: bool = False,
                 name: str = "pipe"):
        super().__init__(name)
        self.protected = protected
        ctrl = PUB_TRUSTED if protected else None

        # ---- request side ----------------------------------------------------
        self.advance = self.input("advance", 1, label=ctrl)
        self.advance.meta["enumerate"] = True
        self.in_valid = self.input("in_valid", 1, label=ctrl)
        self.in_user = self.input("in_user", TAG_WIDTH, label=ctrl)
        self.in_op = self.input("in_op", 1, label=ctrl)
        self.in_op.meta["enumerate"] = True
        self.in_slot = self.input("in_slot", 2, label=ctrl)
        self.in_slot.meta["enumerate"] = True
        self.in_data = self.input(
            "in_data", 128,
            label=request_label(self.in_user) if protected else None,
        )

        # ---- key-load side (to the embedded expansion unit) --------------------
        self.kx_start = self.input("kx_start", 1, label=ctrl)
        self.kx_slot = self.input("kx_slot", 2, label=ctrl)
        self.kx_key_tag = self.input("kx_key_tag", TAG_WIDTH, label=ctrl)
        self.kx_key = self.input(
            "kx_key", 128,
            label=data_label(self.kx_key_tag) if protected else None,
        )

        self.keyexp = self.submodule(
            KeyExpandUnit(protected, timing_flaw=timing_flaw)
        )
        self.keyexp.start <<= self.kx_start
        self.keyexp.slot <<= self.kx_slot
        self.keyexp.key <<= self.kx_key
        self.keyexp.key_tag <<= self.kx_key_tag
        self.kx_busy = self.output("kx_busy", 1, label=ctrl)
        self.kx_busy <<= self.keyexp.busy

        # ---- entry: tag join and initial AddRoundKey ---------------------------
        slot_tag = self._slot_tag_of(self.in_slot)
        entry_tag = self.wire("entry_tag", TAG_WIDTH, label=ctrl)
        if protected:
            entry_tag <<= hw_join(self.in_user, slot_tag)
        else:
            entry_tag <<= self.in_user

        init_idx = mux(self.in_op.eq(OP_DEC), lit(PIPELINE_ROUNDS, 4), lit(0, 4))
        init_rk = self._round_key_of(self.in_slot, init_idx)
        if protected:
            rk_ok = hw_flows_to(slot_tag, entry_tag)
            init_rk = mux(rk_ok, init_rk, lit(0, 128))
        entry_data = self.in_data ^ init_rk

        # ---- the 30 stages -----------------------------------------------------
        self.stages: List = []
        prev = None
        for r in range(1, PIPELINE_ROUNDS + 1):
            sa = self.submodule(StageA(r, protected))
            sb = self.submodule(StageB(r, protected))
            sc = self.submodule(StageC(r, protected))
            self.stages.extend([sa, sb, sc])

            if prev is None:
                sa.valid_i <<= self.in_valid
                sa.tag_i <<= entry_tag
                sa.op_i <<= self.in_op
                sa.slot_i <<= self.in_slot
                sa.data_i <<= entry_data
            else:
                self._chain(prev, sa)
            self._chain(sa, sb)
            self._chain(sb, sc)

            # AddRoundKey operand for this round (guarded)
            rk_idx = mux(
                sc.op_i.eq(OP_DEC),
                lit(PIPELINE_ROUNDS - r, 4),
                lit(r, 4),
            )
            rk = self._round_key_of(sb.slot_o, rk_idx)
            if protected:
                guard = hw_flows_to(self._slot_tag_of(sb.slot_o), sb.tag_o)
                rk = mux(guard, rk, lit(0, 128))
            sc.rk_i <<= rk
            prev = sc

        for stage in self.stages:
            stage.advance <<= self.advance

        # ---- observation point for the debug peripheral (after round 1 SubBytes)
        first = self.stages[0]
        self.obs_valid = self.output("obs_valid", 1, label=ctrl)
        self.obs_tag = self.output("obs_tag", TAG_WIDTH, label=ctrl)
        self.obs_data = self.output(
            "obs_data", 128,
            label=data_label(self.obs_tag) if protected else None,
        )
        self.obs_valid <<= first.valid_o
        self.obs_tag <<= first.tag_o
        self.obs_data <<= first.data_o

        # ---- per-stage valid/conf views for the stall controller ----------------
        self.stage_valids = [s.valid_o for s in self.stages]
        self.stage_tags = [s.tag_o for s in self.stages]

        # ---- exit ----------------------------------------------------------------
        last = self.stages[-1]
        self.out_valid = self.output("out_valid", 1, label=ctrl)
        self.out_tag = self.output("out_tag", TAG_WIDTH, label=ctrl)
        self.out_op = self.output("out_op", 1, label=ctrl)
        self.out_data = self.output(
            "out_data", 128,
            label=data_label(self.out_tag) if protected else None,
        )
        self.out_valid <<= last.valid_o
        self.out_tag <<= last.tag_o
        self.out_op <<= last.op_o
        self.out_data <<= last.data_o

    # -- wiring helpers ------------------------------------------------------------
    def _chain(self, src, dst) -> None:
        dst.valid_i <<= src.valid_o
        dst.tag_i <<= src.tag_o
        dst.op_i <<= src.op_o
        dst.slot_i <<= src.slot_o
        dst.data_i <<= src.data_o

    def _slot_tag_of(self, slot: Node) -> Node:
        value: Node = self.keyexp.slot_tags[0]
        for s in range(1, KEY_SLOTS):
            value = mux(slot.eq(s), self.keyexp.slot_tags[s], value)
        return value

    def _round_key_of(self, slot: Node, index: Node) -> Node:
        value: Node = self.keyexp.rk_mems[0].read(index)
        for s in range(1, KEY_SLOTS):
            value = mux(slot.eq(s), self.keyexp.rk_mems[s].read(index), value)
        return value
