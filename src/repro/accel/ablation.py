"""Ablations of the protected design's choices (DESIGN.md §5).

Three knobs the paper's architecture (or our reproduction of it) turns,
each isolated here so the benchmarks can show what breaks without it:

1. **Holding-buffer partitioning.**  :class:`SharedFifoBuffer` is the
   naive single-FIFO holding buffer.  It satisfies the *storage* role of
   §3.2.5 but leaks through head-of-line blocking: one user's unread
   blocks delay every later block.  :func:`buffer_hol_experiment` drives
   both buffers with the same adversarial schedule and returns the
   victim's delay profile under the other user's reader behaviour.

2. **The round-key guard** (`hw_flows_to(slot tag, block tag)` in the
   pipeline).  :func:`rk_guard_ablation` counts the static label errors
   with and without it.

3. **Demand-driven hypothesis refinement** in the checker.
   :func:`refinement_ablation` reports examined vs. potential cases for
   the protected modules — the reason exhaustive SecVerilog-style
   enumeration is intractable here and the refinement is not.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..hdl.module import Module, when
from ..hdl.nodes import lit
from ..ifc.checker import IfcChecker
from .common import LATTICE, TAG_WIDTH
from .hwlabels import hw_flows_to


class SharedFifoBuffer(Module):
    """The naive holding buffer: one FIFO for everyone (16 deep).

    Entries still carry tags and the head is still released only to a
    dominating reader — the *flows* are fine; the *timing* is not:
    a blocked head stalls every entry behind it.
    """

    def __init__(self, name: str = "sharedbuf"):
        super().__init__(name)
        depth = 16
        self.push = self.input("push", 1)
        self.push_tag = self.input("push_tag", TAG_WIDTH)
        self.push_data = self.input("push_data", 128)
        self.rd_tag = self.input("rd_tag", TAG_WIDTH)
        self.pop = self.input("pop", 1)

        self.tagq = self.mem("tagq", depth, TAG_WIDTH)
        self.dataq = self.mem("dataq", depth, 128)
        self.wptr = self.reg("wptr", 4)
        self.rptr = self.reg("rptr", 4)
        self.count = self.reg("count", 5)

        head_tag = self.tagq.read(self.rptr)
        nonempty = ~self.count.eq(0)
        present = self.wire("present", 1)
        present <<= nonempty & hw_flows_to(head_tag, self.rd_tag)

        self.out_valid = self.output("out_valid", 1)
        self.out_valid <<= present
        self.out_tag = self.output("out_tag", TAG_WIDTH, default=0)
        with when(present):
            self.out_tag <<= head_tag
        self.out_data = self.output("out_data", 128, default=0)
        with when(present):
            self.out_data <<= self.dataq.read(self.rptr)

        self.full = self.output("full", 1)
        self.full <<= self.count.eq(depth)
        self.dropped_r = self.reg("dropped_r", 8)
        self.dropped = self.output("dropped", 8)
        self.dropped <<= self.dropped_r

        do_push = self.push & ~self.count.eq(depth)
        do_pop = self.pop & present
        with when(do_push):
            self.dataq.write(self.wptr, self.push_data)
            self.tagq.write(self.wptr, self.push_tag)
            self.wptr <<= self.wptr + 1
        with when(self.push & self.count.eq(depth)):
            self.dropped_r <<= self.dropped_r + 1
        with when(do_pop):
            self.rptr <<= self.rptr + 1
        with when(do_push & ~do_pop):
            self.count <<= self.count + 1
        with when(do_pop & ~do_push):
            self.count <<= self.count - 1


def buffer_hol_experiment(buffer_kind: str,
                          alice_backlog: int) -> Tuple[int, int]:
    """Eve's wait for her own block while Alice leaves ``alice_backlog``
    unread blocks in the buffer.

    Returns ``(eve_wait_cycles, eve_drops)``.  For the partitioned buffer
    the wait is constant in the backlog; for the shared FIFO it grows
    (or Eve's block is dropped outright once the FIFO fills).
    """
    from ..hdl.sim import Simulator
    from ..ifc.label import Label
    from .output_buffer import OutputBuffer

    alice_rel = Label(LATTICE, "public", ("p0",)).encode()
    eve_rel = Label(LATTICE, "public", ("p1",)).encode()
    eve_rd = Label(LATTICE, ("p1",), ("p1",)).encode()

    if buffer_kind == "shared":
        module = SharedFifoBuffer()
    elif buffer_kind == "partitioned":
        module = OutputBuffer(protected=True)
    else:
        raise ValueError(buffer_kind)
    top = module.name
    sim = Simulator(module)

    def push(tag, data):
        sim.poke(f"{top}.push", 1)
        sim.poke(f"{top}.push_tag", tag)
        sim.poke(f"{top}.push_data", data)
        sim.step()
        sim.poke(f"{top}.push", 0)

    for i in range(alice_backlog):
        push(alice_rel, 0xA0 + i)
    drops_before = sim.peek(f"{top}.dropped")
    push(eve_rel, 0xE0)
    eve_drops = sim.peek(f"{top}.dropped") - drops_before

    # Eve polls every cycle; Alice never reads
    sim.poke(f"{top}.rd_tag", eve_rd)
    sim.poke(f"{top}.pop", 1)
    for waited in range(64):
        if (sim.peek(f"{top}.out_valid")
                and sim.peek(f"{top}.out_data") == 0xE0):
            return waited, eve_drops
        sim.step()
    return 64, eve_drops


def rk_guard_ablation() -> Dict[str, int]:
    """Static label errors of the pipeline with and without the round-key
    guard."""
    from unittest import mock

    from ..hdl.elaborate import elaborate_shallow
    from . import pipeline as pipeline_mod

    with_guard = IfcChecker(
        elaborate_shallow(pipeline_mod.AesPipeline(protected=True)), LATTICE
    ).check()

    with mock.patch.object(pipeline_mod, "hw_flows_to",
                           lambda a, b: lit(1, 1)):
        unguarded = pipeline_mod.AesPipeline(protected=True)
    without_guard = IfcChecker(
        elaborate_shallow(unguarded), LATTICE
    ).check()
    return {
        "with_guard_errors": len(with_guard.errors),
        "without_guard_errors": len(without_guard.errors),
    }


def refinement_ablation() -> List[Tuple[str, int, int]]:
    """(module, cases examined, cases an exhaustive enumeration would
    need) for representative protected modules."""
    from ..hdl.elaborate import elaborate
    from .key_expand_unit import KeyExpandUnit
    from .output_buffer import OutputBuffer
    from .round_stages import StageC
    from .scratchpad import KeyScratchpad

    out = []
    for name, module in [
        ("StageC", StageC(5, True)),
        ("KeyExpandUnit", KeyExpandUnit(True)),
        ("KeyScratchpad", KeyScratchpad(True)),
        ("OutputBuffer", OutputBuffer(True)),
    ]:
        checker = IfcChecker(elaborate(module), LATTICE,
                             max_hypotheses=1 << 20)
        report = checker.check()
        assert report.ok()
        out.append((name, report.hypotheses_examined,
                    report.hypotheses_potential))
    return out
