"""Key expansion unit: expands a loaded 128-bit key into round keys.

On ``start`` the unit latches the key and its security tag, then produces
one round key per cycle (11 total for AES-128) into a per-slot round-key
RAM.  Each slot RAM carries a whole-memory dependent label selected by a
per-slot tag register, so the IFC checker verifies that key material can
only land in a RAM whose tag covers it; a runtime flow guard
(`tag matches` comparison) makes the invariant structural, fail-secure.

The **baseline** variant ships the paper's §2.1/Fig. 6 vulnerability: a
"performance optimisation" that skips a cycle whenever the MSB of the
evolving round key is set, making the unit's busy time depend on the key
value (a Koeune–Quisquater-style timing channel).  With labels applied,
the static checker flags the ``busy``/``ready`` signal exactly as in
Fig. 6; the protected variant is constant-time.
"""

from __future__ import annotations

from typing import List

from ..aes.constants import RCON, SBOX
from ..aes.key_schedule import expand_key, round_key_as_int
from ..hdl.module import Module, when
from ..hdl.nodes import Node, cat, mux
from ..ifc.label import Label
from .common import (
    KEY_SLOTS,
    LATTICE,
    MASTER_SLOT,
    PIPELINE_ROUNDS,
    TAG_WIDTH,
    FREE_TAG,
    master_key_label,
)
from .hwlabels import hw_flows_to
from .round_exprs import rot_word_expr, sub_word_expr
from .taglabels import data_label

PUB_TRUSTED = Label(LATTICE, "public", "trusted")

#: Default master key baked into slot 0 at reset (the supervisor may
#: replace it at runtime).  Value from the FIPS-197 example key.
DEFAULT_MASTER_KEY = 0x2B7E151628AED2A6ABF7158809CF4F3C


def _master_rk_init() -> List[int]:
    """Initial contents of the slot-0 round-key RAM: the expanded master key."""
    rks = expand_key(DEFAULT_MASTER_KEY, 128)
    contents = [round_key_as_int(rk) for rk in rks]
    return contents + [0] * (16 - len(contents))


class KeyExpandUnit(Module):
    """Expands keys into per-slot round-key RAMs with security tags."""

    def __init__(self, protected: bool, timing_flaw: bool = False,
                 name: str = "keyexp"):
        super().__init__(name)
        self.protected = protected
        self.timing_flaw = timing_flaw
        ctrl = PUB_TRUSTED if protected else None

        self.start = self.input("start", 1, label=ctrl)
        self.start.meta["enumerate"] = True
        self.slot = self.input("slot", 2, label=ctrl)
        self.slot.meta["enumerate"] = True
        self.key_tag = self.input("key_tag", TAG_WIDTH, label=ctrl)
        self.key = self.input(
            "key", 128, label=data_label(self.key_tag) if protected else None
        )
        self.busy = self.output("busy", 1, label=ctrl)
        self.ready = self.output("ready", 1, label=ctrl)

        # per-slot tag registers and round-key RAMs
        master_tag = master_key_label().encode()
        self.slot_tags = []
        self.rk_mems = []
        for s in range(KEY_SLOTS):
            init_tag = master_tag if s == MASTER_SLOT else FREE_TAG
            tag_reg = self.reg(f"slot_tag_{s}", TAG_WIDTH, init=init_tag,
                               label=ctrl)
            self.slot_tags.append(tag_reg)
            init = _master_rk_init() if s == MASTER_SLOT else None
            mem = self.mem(
                f"rk_mem_{s}", 16, 128, init=init,
                label=data_label(tag_reg) if protected else None,
            )
            self.rk_mems.append(mem)

        sbox = self.rom("ksbox", SBOX, 8)
        rcon = self.rom("rcon", list(RCON) + [0] * (16 - len(RCON)), 8)

        self.busy_r = self.reg("busy_r", 1, label=ctrl)
        self.busy_r.meta["enumerate"] = True
        self.round_r = self.reg("round_r", 4, label=ctrl)
        self.cur_slot = self.reg("cur_slot", 2, label=ctrl)
        self.cur_slot.meta["enumerate"] = True
        self.cur_tag = self.reg("cur_tag", TAG_WIDTH, label=ctrl)
        self.cur_rk = self.reg(
            "cur_rk", 128, label=data_label(self.cur_tag) if protected else None
        )

        # one key-schedule step: w0..w3 -> next round key
        w0 = self.cur_rk[127:96]
        w1 = self.cur_rk[95:64]
        w2 = self.cur_rk[63:32]
        w3 = self.cur_rk[31:0]
        from ..hdl.nodes import lit

        rcon_word = cat(rcon.read(self.round_r), lit(0, 24))
        temp = sub_word_expr(rot_word_expr(w3), sbox) ^ rcon_word
        w0n = w0 ^ temp
        w1n = w1 ^ w0n
        w2n = w2 ^ w1n
        w3n = w3 ^ w2n
        next_rk = cat(w0n, w1n, w2n, w3n)

        if timing_flaw:
            # "optimisation": a second pipeline path for round keys with the
            # MSB set takes an extra cycle — busy time now depends on the key
            self.skip_r = self.reg("skip_r", 1, label=ctrl)
            advance_round = ~self.cur_rk[127] | self.skip_r
            with when(self.busy_r):
                self.skip_r <<= ~advance_round
        else:
            advance_round = None

        with when(self.start & ~self.busy_r):
            self.busy_r <<= 1
            self.round_r <<= 1
            self.cur_slot <<= self.slot
            self.cur_tag <<= self.key_tag
            self.cur_rk <<= self.key
            for s in range(KEY_SLOTS):
                with when(self.slot.eq(s)):
                    self.slot_tags[s] <<= self.key_tag
                    self.rk_mems[s].write(0, self.key)

        with when(self.busy_r):
            for s in range(KEY_SLOTS):
                # runtime flow guard: only write while the slot tag matches
                # the tag of the key being expanded (fail-secure; also what
                # lets the static check discharge without temporal reasoning)
                guard = self.cur_slot.eq(s) & hw_flows_to(
                    self.cur_tag, self.slot_tags[s]
                )
                if advance_round is not None:
                    guard = guard & advance_round
                with when(guard):
                    self.rk_mems[s].write(self.round_r, next_rk)
            step = advance_round if advance_round is not None else self.busy_r
            with when(step):
                self.cur_rk <<= next_rk
                self.round_r <<= self.round_r + 1
                with when(self.round_r.eq(PIPELINE_ROUNDS)):
                    self.busy_r <<= 0

        # registered-only busy view (keeps the parent's start logic free of
        # combinational feedback); the parent covers the 1-cycle set delay
        self.busy <<= self.busy_r
        self.ready <<= ~self.busy_r

    # -- read-side helpers used by the pipeline ---------------------------------
    def read_round_key(self, slot: Node, index: Node) -> Node:
        """Mux the round key ``index`` of ``slot`` out of the slot RAMs."""
        value = self.rk_mems[0].read(index)
        for s in range(1, KEY_SLOTS):
            value = mux(slot.eq(s), self.rk_mems[s].read(index), value)
        return value

    def read_slot_tag(self, slot: Node) -> Node:
        value: Node = self.slot_tags[0]
        for s in range(1, KEY_SLOTS):
            value = mux(slot.eq(s), self.slot_tags[s], value)
        return value
