"""Dependent-label constructors shared by the accelerator modules.

In the protected design every data path signal is labelled by the 8-bit
tag that travels with it (Fig. 7); these helpers build the corresponding
:class:`~repro.ifc.dependent.DependentLabel` objects with domains
restricted to the tags the design can legally produce — which keeps the
checker's case enumeration small (§3.2 of DESIGN.md).
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..hdl.nodes import Node
from ..ifc.dependent import CellTagLabel, DependentLabel
from ..ifc.label import Label
from .common import LATTICE, VALID_CELL_TAGS, VALID_REQUEST_TAGS


def decode_tag(value: int) -> Label:
    return Label.decode(LATTICE, value)


def data_label(tag_sig: Node,
               domain: Optional[Iterable[int]] = None) -> DependentLabel:
    """Full decoded label of the accompanying tag (pipeline data)."""
    return DependentLabel(
        tag_sig, decode_tag, LATTICE,
        domain=list(domain) if domain is not None else VALID_CELL_TAGS,
    )


def request_label(tag_sig: Node) -> DependentLabel:
    """Label of request-side user data (tags issued by the arbiter)."""
    return DependentLabel(tag_sig, decode_tag, LATTICE,
                          domain=VALID_REQUEST_TAGS)


def authority_label(tag_sig: Node,
                    domain: Optional[Iterable[int]] = None) -> DependentLabel:
    """The *principal* behind a tag, for downgrade authority: public
    confidentiality, the tag's vouch set as integrity."""
    def fn(value: int) -> Label:
        decoded = decode_tag(value)
        return Label(LATTICE, "public", decoded.integ)

    return DependentLabel(
        tag_sig, fn, LATTICE,
        domain=list(domain) if domain is not None else VALID_CELL_TAGS,
    )


def released_label(tag_sig: Node,
                   domain: Optional[Iterable[int]] = None) -> DependentLabel:
    """Label of declassified (released) data: public confidentiality with
    the originating user's integrity."""
    def fn(value: int) -> Label:
        decoded = decode_tag(value)
        return Label(LATTICE, "public", decoded.integ)

    return DependentLabel(
        tag_sig, fn, LATTICE,
        domain=list(domain) if domain is not None else VALID_CELL_TAGS,
    )


def readout_label(tag_sig: Node,
                  domain: Optional[Iterable[int]] = None) -> DependentLabel:
    """Label of gated *readout* data (e.g. the debug port): at most the
    reader's confidentiality, but never endorsed — reading does not make
    data trustworthy."""
    def fn(value: int) -> Label:
        decoded = decode_tag(value)
        return Label(LATTICE, decoded.conf, "untrusted")

    return DependentLabel(
        tag_sig, fn, LATTICE,
        domain=list(domain) if domain is not None else VALID_REQUEST_TAGS,
    )


def cell_tag_label(tag_mem, domain: Optional[Iterable[int]] = None) -> CellTagLabel:
    """Label of a tagged memory's data cells (Fig. 5)."""
    return CellTagLabel(
        tag_mem, LATTICE,
        domain=list(domain) if domain is not None else VALID_CELL_TAGS,
    )


def mark_tag_mem(tag_mem, domain: Optional[Iterable[int]] = None) -> None:
    """Mark a memory as holding security tags so the checker hypothesises
    over its cells."""
    tag_mem.meta["tag_role"] = True
    tag_mem.meta["tag_domain"] = (
        list(domain) if domain is not None else VALID_CELL_TAGS
    )
