"""Transaction-level driver for the accelerators.

Wraps a :class:`~repro.hdl.sim.Simulator` of either accelerator top and
provides the operations a software stack would issue: allocate key slots,
load keys, submit encrypt/decrypt requests, collect responses — with
cycle accounting so the experiments can measure latency and throughput.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..hdl.nodes import HdlError
from ..hdl.sim import Simulator
from ..obs import SecurityProbe, telemetry as _telemetry
from .common import (
    CMD_CONFIG,
    CMD_DECRYPT,
    CMD_ENCRYPT,
    CMD_LOAD_KEY,
    supervisor_label,
    user_label,
)


class Response:
    """One block leaving the accelerator."""

    __slots__ = ("cycle", "tag", "data")

    def __init__(self, cycle: int, tag: int, data: int):
        self.cycle = cycle
        self.tag = tag
        self.data = data

    def __repr__(self) -> str:
        return f"Response(cycle={self.cycle}, tag={self.tag:#04x}, data={self.data:#x})"


class AcceleratorDriver:
    """Drives one accelerator instance through its host interface."""

    def __init__(self, accel_module, backend: str = "compiled",
                 fault_targets=None, tag_tracking: bool = False,
                 lattice=None):
        self.module = accel_module
        self.sim = Simulator(accel_module, backend=backend,
                             fault_targets=fault_targets,
                             tag_tracking=tag_tracking, lattice=lattice)
        self.top = accel_module.name
        self.responses: List[Response] = []
        self.probe: Optional[SecurityProbe] = None
        self._obs = _telemetry()
        if self._obs is not None:
            m = self._obs.metrics
            self._m_cmds = m.counter(
                "accel_commands_issued_total",
                "host commands accepted by the accelerator", ("cmd",))
            self._m_resp = m.counter(
                "accel_responses_total",
                "blocks presented on the tagged output bus")
            if getattr(accel_module, "protected", False):
                # stream the enforcement points of the protected design
                self.probe = SecurityProbe(self.sim, self._obs.security,
                                           top=self.top, metrics=m)
        self.sim.poke(f"{self.top}.out_ready", 1)
        self._idle_inputs()

    # -- low level ------------------------------------------------------------
    def _idle_inputs(self) -> None:
        self.sim.poke(f"{self.top}.in_valid", 0)

    def _poke_cmd(self, cmd: int, user_tag: int, slot: int = 0, word: int = 0,
                  addr: int = 0, data: int = 0) -> None:
        s = self.sim
        s.poke(f"{self.top}.in_valid", 1)
        s.poke(f"{self.top}.in_cmd", cmd)
        s.poke(f"{self.top}.in_user", user_tag)
        s.poke(f"{self.top}.in_slot", slot)
        s.poke(f"{self.top}.in_word", word)
        s.poke(f"{self.top}.in_addr", addr)
        s.poke(f"{self.top}.in_data", data)

    def set_reader(self, reader_tag: int, ready: bool = True) -> None:
        self.sim.poke(f"{self.top}.rd_user", reader_tag)
        self.sim.poke(f"{self.top}.out_ready", 1 if ready else 0)

    def step(self, n: int = 1) -> None:
        """Advance cycles, collecting any responses presented."""
        for _ in range(n):
            if self.sim.peek(f"{self.top}.out_valid"):
                self.responses.append(
                    Response(
                        self.sim.cycle,
                        self.sim.peek(f"{self.top}.out_tag"),
                        self.sim.peek(f"{self.top}.out_data"),
                    )
                )
                if self._obs is not None:
                    self._m_resp.inc()
            self.sim.step()

    _CMD_NAMES = {CMD_ENCRYPT: "encrypt", CMD_DECRYPT: "decrypt",
                  CMD_LOAD_KEY: "load_key", CMD_CONFIG: "config"}

    def issue(self, cmd: int, user_tag: int, **kwargs) -> None:
        """Issue one command for exactly one accepted cycle."""
        self._poke_cmd(cmd, user_tag, **kwargs)
        waited = 0
        while not self.sim.peek(f"{self.top}.in_ready"):
            self.step()
            waited += 1
            if waited > 1000:
                raise TimeoutError("accelerator never became ready")
        self.step()
        self._idle_inputs()
        if self._obs is not None:
            self._m_cmds.inc(cmd=self._CMD_NAMES.get(cmd, str(cmd)))

    # -- operations ----------------------------------------------------------------
    def allocate_slot(self, slot: int, owner_tag: int,
                      supervisor_tag: Optional[int] = None) -> None:
        """Supervisor assigns a key slot's two scratchpad cells to a user."""
        sup = supervisor_tag if supervisor_tag is not None else (
            supervisor_label().encode()
        )
        for cell in (2 * slot, 2 * slot + 1):
            self.issue(CMD_CONFIG, sup, addr=8 + cell, data=owner_tag)

    def load_key(self, user_tag: int, slot: int, key: int,
                 wait: bool = True) -> None:
        """Load a 128-bit key into ``slot`` (two 64-bit cell writes)."""
        hi = key >> 64
        lo = key & ((1 << 64) - 1)
        self.issue(CMD_LOAD_KEY, user_tag, slot=slot, word=0, data=hi)
        self.issue(CMD_LOAD_KEY, user_tag, slot=slot, word=1, data=lo)
        if wait:
            self.wait_key_ready()

    def load_key_cell(self, user_tag: int, slot: int, word: int,
                      data64: int) -> None:
        """Raw cell write — ``word`` beyond 1 exercises the overrun path."""
        self.issue(CMD_LOAD_KEY, user_tag, slot=slot, word=word, data=data64)

    def wait_key_ready(self, max_cycles: int = 64) -> int:
        """Wait until key expansion finishes; returns cycles waited."""
        waited = 0
        # expansion fires one cycle after the second half lands
        self.step(2)
        while self.sim.peek(f"{self.top}.pipe.kx_busy"):
            self.step()
            waited += 1
            if waited > max_cycles:
                raise TimeoutError("key expansion did not finish")
        return waited + 2

    def write_config(self, user_tag: int, reg: int, value: int) -> None:
        self.issue(CMD_CONFIG, user_tag, addr=reg, data=value)

    def read_config(self, reg: int) -> int:
        self.sim.poke(f"{self.top}.in_addr", reg)
        return self.sim.peek(f"{self.top}.cfg_rdata")

    def read_debug(self, reader_tag: int, entry: int) -> int:
        self.sim.poke(f"{self.top}.rd_user", reader_tag)
        self.sim.poke(f"{self.top}.in_addr", entry)
        return self.sim.peek(f"{self.top}.dbg_data")

    def encrypt(self, user_tag: int, slot: int, plaintext: int) -> None:
        self.issue(CMD_ENCRYPT, user_tag, slot=slot, data=plaintext)

    def decrypt(self, user_tag: int, slot: int, ciphertext: int) -> None:
        self.issue(CMD_DECRYPT, user_tag, slot=slot, data=ciphertext)

    def run_collect(self, cycles: int) -> List[Response]:
        """Run for ``cycles`` and return the responses gathered so far."""
        self.step(cycles)
        return self.responses

    def take_responses(self) -> List[Response]:
        out = self.responses
        self.responses = []
        return out

    # -- measurements -------------------------------------------------------------
    def encrypt_blocking(self, user_tag: int, slot: int, plaintext: int,
                         max_cycles: int = 200) -> Tuple[Optional[int], int]:
        """Encrypt one block and wait for its response.

        Returns ``(ciphertext or None, latency_cycles)`` measured from
        issue to response (None if suppressed/never released).
        """
        before = len(self.responses)
        start = self.sim.cycle
        self.encrypt(user_tag, slot, plaintext)
        for _ in range(max_cycles):
            if len(self.responses) > before:
                resp = self.responses[-1]
                return resp.data, resp.cycle - start
            self.step()
        return None, max_cycles

    def counters(self) -> Dict[str, int]:
        out = {}
        for name in ("suppressed_count", "blocked_count", "dropped_count"):
            try:
                out[name] = self.sim.peek(f"{self.top}.{name}")
            except HdlError:
                pass  # baseline design has no enforcement counters
        return out


def make_users() -> Dict[str, int]:
    """Convenience: encoded tags for the four users plus the supervisor."""
    tags = {f"u{i}": user_label(p).encode()
            for i, p in enumerate(("p0", "p1", "p2", "p3"))}
    tags["supervisor"] = supervisor_label().encode()
    return tags
