"""Pipeline-exit declassifier — §3.2.2 in hardware.

Ciphertext leaving the last encryption round carries the label
``(ck ⊔C cu, iu)``.  Releasing it to the public output is a
*declassification*, legal under nonmalleable IFC only when
``C(data) ⊑C ⊥ ⊔C r(I(user))`` — i.e. when the originating user's vouch
set covers every key that touched the block.  For a user encrypting with
their own key that holds; for a regular user encrypting with the master
key (``ck = ⊤``) it does not, and the block is suppressed (the paper:
"Only the supervisor has high enough integrity to declassify encryption
with the master key").

Decryption outputs are *not* declassified: recovered plaintext keeps the
user's confidentiality and is routed only to readers whose label
dominates it (requirement 4 of Table 1).

The module contains the runtime tag comparison **and** the static
:func:`~repro.hdl.nodes.declassify` marker, so the checker verifies the
nonmalleable condition for every tag case that can reach the release.
"""

from __future__ import annotations

from ..hdl.module import Module
from ..hdl.nodes import declassify, lit, mux
from ..ifc.label import Label
from .common import LATTICE, OP_DEC, TAG_WIDTH, VALID_CELL_TAGS
from .hwlabels import hw_declassify_ok, integ_bits, make_tag_expr
from .taglabels import authority_label, data_label, released_label

PUB_TRUSTED = Label(LATTICE, "public", "trusted")
_N = len(LATTICE.principals)


class Declassifier(Module):
    """Gate between the pipeline exit and the output buffer / host."""

    def __init__(self, protected: bool, name: str = "declass"):
        super().__init__(name)
        self.protected = protected
        ctrl = PUB_TRUSTED if protected else None

        self.in_valid = self.input("in_valid", 1, label=ctrl)
        self.in_tag = self.input("in_tag", TAG_WIDTH, label=ctrl)
        self.in_op = self.input("in_op", 1, label=ctrl)
        self.in_op.meta["enumerate"] = True
        self.in_data = self.input(
            "in_data", 128,
            label=data_label(self.in_tag) if protected else None,
        )

        self.out_valid = self.output("out_valid", 1, label=ctrl, default=0)
        self.out_tag = self.output("out_tag", TAG_WIDTH, label=ctrl,
                                   default=0)
        self.suppressed = self.output("suppressed", 1, label=ctrl, default=0)

        if not protected:
            self.out_data = self.output("out_data", 128)
            self.out_valid <<= self.in_valid
            self.out_tag <<= self.in_tag
            self.out_data <<= self.in_data
            return

        is_dec = self.in_op.eq(OP_DEC)
        ok = self.wire("declass_ok", 1, label=ctrl)
        ok <<= hw_declassify_ok(self.in_tag, self.in_tag)

        # encrypt: release as public data vouched by the originating user;
        # the static marker carries the nonmalleable obligation
        released = declassify(
            self.in_data,
            target=released_label(self.in_tag, domain=VALID_CELL_TAGS),
            authority=authority_label(self.in_tag, domain=VALID_CELL_TAGS),
        )
        public_tag = make_tag_expr(lit(0, _N), integ_bits(self.in_tag))

        self.out_data = self.output(
            "out_data", 128, label=data_label(self.out_tag),
        )
        # decrypt: plaintext keeps its label and tag (routed by the host
        # interface); encrypt: released if the NM check passes, else dropped
        self.out_valid <<= self.in_valid & (is_dec | ok)
        self.out_tag <<= mux(is_dec, self.in_tag, public_tag)
        self.out_data <<= mux(
            is_dec,
            self.in_data,
            mux(ok, released, lit(0, 128)),
        )
        self.suppressed <<= self.in_valid & ~is_dec & ~ok
