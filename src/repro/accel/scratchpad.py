"""The 512-bit key scratchpad — eight 64-bit cells (Fig. 5).

The protected variant pairs the data cells with a tag array: every cell
carries an 8-bit security tag, the write port checks
``ℓ(writer) ⊑ ℓ(cell)`` before committing, and the read port exports the
cell's tag with the data.  Buffer overruns or overreads across cells
belonging to another principal become tag-check failures and are
blocked — "any buffer overwrite or overread error will cause an
information flow violation and will be prevented."

The baseline variant has no tags and no checks: a host-interface bug that
computes an out-of-range cell index (see ``AesAcceleratorBaseline``)
silently overwrites the neighbouring key.
"""

from __future__ import annotations

from ..hdl.module import Module, when
from ..hdl.nodes import lit
from ..ifc.label import Label
from .common import (
    CELL_BITS,
    FREE_TAG,
    LATTICE,
    MASTER_SLOT,
    SCRATCHPAD_CELLS,
    TAG_WIDTH,
    master_key_label,
)
from .hwlabels import hw_flows_to, hw_is_supervisor
from .key_expand_unit import DEFAULT_MASTER_KEY
from .taglabels import cell_tag_label, data_label, mark_tag_mem

PUB_TRUSTED = Label(LATTICE, "public", "trusted")


class KeyScratchpad(Module):
    """Key storage with per-cell security tags and checked access."""

    def __init__(self, protected: bool, name: str = "scratchpad"):
        super().__init__(name)
        self.protected = protected
        ctrl = PUB_TRUSTED if protected else None

        # write port (key material from the host interface)
        self.we = self.input("we", 1, label=ctrl)
        self.wcell = self.input("wcell", 3, label=ctrl)
        self.user_tag = self.input("user_tag", TAG_WIDTH, label=ctrl)
        self.wdata = self.input(
            "wdata", CELL_BITS,
            label=data_label(self.user_tag) if protected else None,
        )

        # tag-allocation port (driven by the arbiter / supervisor path);
        # the new tag value is public but only as trusted as its writer —
        # the supervisor gate is what admits it into the (⊥,⊤) tag array
        from .common import VALID_REQUEST_TAGS
        from .taglabels import authority_label

        self.set_tag = self.input("set_tag", 1, label=ctrl)
        self.set_cell = self.input("set_cell", 3, label=ctrl)
        self.set_value = self.input(
            "set_value", TAG_WIDTH,
            label=authority_label(self.user_tag, domain=VALID_REQUEST_TAGS)
            if protected else None,
        )

        # read port (towards the key-expansion unit)
        self.rcell = self.input("rcell", 3, label=ctrl)

        master_tag = master_key_label().encode()
        tag_init = [
            master_tag if c in (2 * MASTER_SLOT, 2 * MASTER_SLOT + 1) else FREE_TAG
            for c in range(SCRATCHPAD_CELLS)
        ]
        cell_init = [0] * SCRATCHPAD_CELLS
        cell_init[2 * MASTER_SLOT] = DEFAULT_MASTER_KEY >> 64
        cell_init[2 * MASTER_SLOT + 1] = DEFAULT_MASTER_KEY & ((1 << 64) - 1)

        if protected:
            self.tags = self.mem("tags", SCRATCHPAD_CELLS, TAG_WIDTH,
                                 init=tag_init, label=PUB_TRUSTED)
            mark_tag_mem(self.tags)
            self.cells = self.mem("cells", SCRATCHPAD_CELLS, CELL_BITS,
                                  init=cell_init,
                                  label=cell_tag_label(self.tags))
        else:
            self.tags = None
            self.cells = self.mem("cells", SCRATCHPAD_CELLS, CELL_BITS,
                                  init=cell_init)

        # rdata's dependent label needs the rtag wire, so it is attached
        # after the wire exists (protected branch below)
        self.rdata = self.output("rdata", CELL_BITS)
        self.rtag = self.output("rtag", TAG_WIDTH, label=ctrl, default=FREE_TAG)
        self.wr_blocked = self.output("wr_blocked", 1, label=ctrl, default=0)

        if protected:
            # read side: data leaves together with its tag; the label
            # references the rtag *port* so parents can correlate
            rtag_wire = self.wire("rtag_w", TAG_WIDTH, label=ctrl)
            rtag_wire <<= self.tags.read(self.rcell)
            self.rtag <<= rtag_wire
            self.rdata.label = data_label(self.rtag)
            self.rdata <<= self.cells.read(self.rcell)

            # write side: tag check before commit (Fig. 5)
            wtag = self.wire("wtag_w", TAG_WIDTH, label=ctrl)
            wtag <<= self.tags.read(self.wcell)
            allowed = self.wire("wr_allowed", 1, label=ctrl)
            allowed <<= hw_flows_to(self.user_tag, wtag)
            with when(self.we):
                with when(allowed):
                    self.cells.write(self.wcell, self.wdata)
                self.wr_blocked <<= ~allowed

            # tag allocation: supervisor only (the arbiter's configure step)
            with when(self.set_tag & hw_is_supervisor(self.user_tag)):
                self.tags.write(self.set_cell, self.set_value)
        else:
            self.rdata <<= self.cells.read(self.rcell)
            with when(self.we):
                self.cells.write(self.wcell, self.wdata)

        self._build_key_port(ctrl)

    def _build_key_port(self, ctrl) -> None:
        """128-bit key read port for the expansion unit.

        The same address nodes feed the tag reads and the data reads, so
        the checker correlates each data cell with its own tag and proves
        ``key128 ⊑ DL(key_tag)`` where ``key_tag`` is the join of the two
        cell tags.
        """
        from ..hdl.nodes import cat

        self.rslot = self.input("rslot", 2, label=ctrl)
        addr_hi = cat(self.rslot, lit(0, 1))
        addr_lo = cat(self.rslot, lit(1, 1))

        self.key_tag = self.output("key_tag", TAG_WIDTH, label=ctrl,
                                   default=FREE_TAG)
        if self.protected:
            from .hwlabels import hw_join

            tag_join = self.wire("key_tag_w", TAG_WIDTH, label=ctrl)
            tag_join <<= hw_join(self.tags.read(addr_hi), self.tags.read(addr_lo))
            self.key_tag <<= tag_join
            self.key128 = self.output("key128", 128,
                                      label=data_label(self.key_tag))
        else:
            self.key128 = self.output("key128", 128)
        self.key128 <<= cat(self.cells.read(addr_hi), self.cells.read(addr_lo))
