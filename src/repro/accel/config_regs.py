"""Configuration registers — requirement 6 of Table 1.

Labelled ``(⊥, ⊤)``: public (any user may read) but maximally trusted
(only the supervisor may write).  The protected variant enforces the
write rule with a supervisor check on the requester's tag; the baseline
lets any user write — the misconfiguration vector of §3.2.4 (e.g.
enabling the debug peripheral).

Register map: ``0`` feature flags (bit 0: output buffer enable, bit 1:
debug trace enable), ``1`` arbitration policy, ``2`` interrupt mask,
``3`` scratch.
"""

from __future__ import annotations

from ..hdl.module import Module, when
from ..ifc.label import Label
from .common import CONFIG_REGS, CONFIG_WIDTH, LATTICE, TAG_WIDTH
from .hwlabels import hw_is_supervisor

PUB_TRUSTED = Label(LATTICE, "public", "trusted")

CFG_FEATURES = 0
CFG_ARBITER = 1
CFG_IRQ_MASK = 2
CFG_SCRATCH = 3

FEATURE_OUTBUF_EN = 1 << 0
FEATURE_DEBUG_EN = 1 << 1


class ConfigRegs(Module):
    """The accelerator's configuration register file."""

    def __init__(self, protected: bool, name: str = "cfg"):
        super().__init__(name)
        self.protected = protected
        ctrl = PUB_TRUSTED if protected else None

        self.we = self.input("we", 1, label=ctrl)
        self.addr = self.input("addr", 2, label=ctrl)
        self.user_tag = self.input("user_tag", TAG_WIDTH, label=ctrl)
        # the written value is public but only as trustworthy as its writer;
        # the supervisor gate below is what lets it reach the (⊥,⊤) registers
        from .common import VALID_REQUEST_TAGS
        from .taglabels import authority_label

        self.wdata = self.input(
            "wdata", CONFIG_WIDTH,
            label=authority_label(self.user_tag, domain=VALID_REQUEST_TAGS)
            if protected else None,
        )
        self.raddr = self.input("raddr", 2, label=ctrl)

        self.regs = []
        for i in range(CONFIG_REGS):
            init = FEATURE_OUTBUF_EN if i == CFG_FEATURES else 0
            reg = self.reg(f"r{i}", CONFIG_WIDTH, init=init, label=ctrl)
            self.regs.append(reg)

        write_ok = self.we if not protected else (
            self.we & hw_is_supervisor(self.user_tag)
        )
        ok_wire = self.wire("write_ok", 1, label=ctrl)
        ok_wire <<= write_ok
        self.wr_blocked = self.output("wr_blocked", 1, label=ctrl, default=0)
        if protected:
            self.wr_blocked <<= self.we & ~hw_is_supervisor(self.user_tag)

        with when(ok_wire):
            for i in range(CONFIG_REGS):
                with when(self.addr.eq(i)):
                    self.regs[i] <<= self.wdata

        self.rdata = self.output("rdata", CONFIG_WIDTH, label=ctrl, default=0)
        for i in range(CONFIG_REGS):
            with when(self.raddr.eq(i)):
                self.rdata <<= self.regs[i]

        # decoded feature bits for the rest of the design
        self.outbuf_en = self.output("outbuf_en", 1, label=ctrl)
        self.outbuf_en <<= self.regs[CFG_FEATURES][0]
        self.debug_en = self.output("debug_en", 1, label=ctrl)
        self.debug_en <<= self.regs[CFG_FEATURES][1]
