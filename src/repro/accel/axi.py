"""AXI4-Lite host front-end — the "AXI/RoCC Interface" box of Fig. 4.

Wraps the protected accelerator behind a standard memory-mapped slave:
the host writes the 128-bit operand across four data registers, then a
command register whose write fires the request; responses accumulate in
a result mailbox read back over the AR/R channels.  Security tags ride
on the (trusted-interconnect) ``awuser``/``aruser`` sideband signals —
the Fig. 2 tagged-bus convention.

Register map (word addresses)::

    0x00..0x0C  W  DATA0..DATA3 (operand, DATA0 = most significant)
    0x10        W  CMD: {addr[11:8], word[7:5], slot[4:3], cmd[2:1], go[0]}
    0x14        R  STATUS: {resp_valid[1], in_ready[0]}
    0x18..0x24  R  RESP0..RESP3 (latest routed response)
    0x28        R  RESP_TAG
    0x2C        R  COUNTERS: {dropped[23:16], blocked[15:8], suppressed[7:0]}

The bridge is plain (⊥,⊤) control logic plus user-tagged data paths, so
it verifies modularly like every other component.
"""

from __future__ import annotations

from ..hdl.module import Module, otherwise, when
from ..hdl.nodes import cat, lit, mux
from ..ifc.label import Label
from .common import LATTICE, TAG_WIDTH, VALID_REQUEST_TAGS
from .protected import AesAcceleratorProtected
from .taglabels import data_label

PUB_TRUSTED = Label(LATTICE, "public", "trusted")

# register word indices (byte address / 4)
REG_DATA0, REG_DATA1, REG_DATA2, REG_DATA3 = 0, 1, 2, 3
REG_CMD = 4
REG_STATUS = 5
REG_RESP0, REG_RESP1, REG_RESP2, REG_RESP3 = 6, 7, 8, 9
REG_RESP_TAG = 10
REG_COUNTERS = 11


class AxiLiteFrontend(Module):
    """AXI4-Lite slave wrapping the protected accelerator."""

    def __init__(self, name: str = "axi"):
        super().__init__(name)
        ctrl = PUB_TRUSTED

        # ---- AXI4-Lite slave ports (write address/data/resp, read) ----------
        self.awvalid = self.input("awvalid", 1, label=ctrl)
        self.awvalid.meta["enumerate"] = True
        self.awaddr = self.input("awaddr", 6, label=ctrl)   # word-aligned
        self.awuser = self.input("awuser", TAG_WIDTH, label=ctrl)
        self.awuser.meta["enumerate"] = True
        self.awuser.meta["enum_domain"] = VALID_REQUEST_TAGS
        self.awready = self.output("awready", 1, label=ctrl)

        self.wvalid = self.input("wvalid", 1, label=ctrl)
        self.wvalid.meta["enumerate"] = True
        self.wdata = self.input(
            "wdata", 32,
            label=data_label(self.awuser, domain=VALID_REQUEST_TAGS),
        )
        self.wready = self.output("wready", 1, label=ctrl)

        self.bvalid = self.output("bvalid", 1, label=ctrl)
        self.bready = self.input("bready", 1, label=ctrl)

        self.arvalid = self.input("arvalid", 1, label=ctrl)
        self.araddr = self.input("araddr", 6, label=ctrl)
        self.aruser = self.input("aruser", TAG_WIDTH, label=ctrl)
        self.aruser.meta["enumerate"] = True
        self.aruser.meta["enum_domain"] = VALID_REQUEST_TAGS
        self.arready = self.output("arready", 1, label=ctrl)

        self.rvalid = self.output("rvalid", 1, label=ctrl)
        self.rready = self.input("rready", 1, label=ctrl)

        # ---- the accelerator --------------------------------------------------
        self.accel = self.submodule(AesAcceleratorProtected())

        # ---- write side: operand registers + command fire ----------------------
        wr_fire = self.wire("wr_fire", 1, label=ctrl)
        wr_fire <<= self.awvalid & self.wvalid
        self.awready <<= self.wvalid
        self.wready <<= self.awvalid

        self.owner_tag = self.reg("owner_tag", TAG_WIDTH, label=ctrl)
        self.data_regs = []
        for i in range(4):
            r = self.reg(
                f"data{i}", 32,
                label=data_label(self.owner_tag, domain=VALID_REQUEST_TAGS),
            )
            self.data_regs.append(r)

        word = self.wire("word", 4, label=ctrl)
        word.meta["enumerate"] = True
        word <<= self.awaddr[5:2]
        with when(wr_fire):
            for i in range(4):
                with when(word.eq(REG_DATA0 + i)):
                    self.data_regs[i] <<= self.wdata
                    self.owner_tag <<= self.awuser

        # a data write by a different principal resets the mailbox: the
        # operand registers never mix two users' fragments
        mismatch = ~self.owner_tag.eq(self.awuser)
        with when(wr_fire & mismatch):
            for i in range(4):
                self.data_regs[i] <<= mux(
                    word.eq(REG_DATA0 + i), self.wdata, lit(0, 32)
                )
            self.owner_tag <<= self.awuser

        # command fire.  The command word arrives over the *data* channel,
        # so it carries the writer's label — but commands are request
        # metadata, which the §2.2 threat model says the trusted
        # interconnect vouches for.  The checker forces that assumption to
        # be explicit: the command word is declassified by its owner (it is
        # their own public value) and endorsed by the interconnect, at this
        # one reviewed site.
        from ..hdl.nodes import declassify, endorse

        from .taglabels import authority_label, released_label

        cmd_word = endorse(
            declassify(
                self.wdata,
                released_label(self.awuser, domain=VALID_REQUEST_TAGS),
                authority_label(self.awuser, domain=VALID_REQUEST_TAGS),
            ),
            PUB_TRUSTED, PUB_TRUSTED,
        )
        self.pending = self.reg("pending", 1, label=ctrl)
        self.cmd_bits = self.reg("cmd_bits", 12, label=ctrl)
        with when(wr_fire & word.eq(REG_CMD) & cmd_word[0]):
            self.pending <<= 1
            self.cmd_bits <<= cmd_word[12:1]

        issue = self.wire("issue", 1, label=ctrl)
        issue <<= self.pending & self.accel.in_ready
        with when(issue):
            self.pending <<= 0

        operand = cat(*self.data_regs)
        self.accel.in_valid <<= issue
        self.accel.in_cmd <<= self.cmd_bits[1:0]
        self.accel.in_slot <<= self.cmd_bits[3:2]
        self.accel.in_word <<= self.cmd_bits[6:4]
        self.accel.in_addr <<= self.cmd_bits[10:7]
        self.accel.in_user <<= self.owner_tag
        self.accel.in_data <<= operand

        self.bvalid <<= wr_fire  # single-cycle write response

        # ---- response mailbox ----------------------------------------------------
        self.resp_valid = self.reg("resp_valid", 1, label=ctrl)
        self.resp_tag = self.reg("resp_tag", TAG_WIDTH, label=ctrl)
        self.resp_data = self.reg(
            "resp_data", 128,
            label=data_label(self.resp_tag, domain=None),
        )
        # reads poll with the reader's tag; the accelerator's routed output
        # only presents blocks the reader may take
        self.accel.rd_user <<= self.aruser
        self.accel.out_ready <<= 1
        with when(self.accel.out_valid):
            self.resp_valid <<= 1
            self.resp_tag <<= self.accel.out_tag
            self.resp_data <<= self.accel.out_data

        # ---- read side --------------------------------------------------------------
        self.arready <<= 1
        self.rvalid <<= self.arvalid
        rword = self.araddr[5:2]
        counters = cat(
            self.accel.dropped_count,
            self.accel.blocked_count[7:0],
            self.accel.suppressed_count[7:0],
        )
        status = cat(lit(0, 30), self.resp_valid, self.accel.in_ready)

        self.rdata = self.output(
            "rdata", 32,
            label=data_label(self.resp_tag, domain=None),
            default=0,
        )
        with when(rword.eq(REG_STATUS)):
            self.rdata <<= status
        for i in range(4):
            with when(rword.eq(REG_RESP0 + i)):
                self.rdata <<= self.resp_data[127 - 32 * i:96 - 32 * i]
        with when(rword.eq(REG_RESP_TAG)):
            self.rdata <<= self.resp_tag.zext(32)
        with when(rword.eq(REG_COUNTERS)):
            self.rdata <<= counters.resize(32)
